//===- examples/memory_histogram.cpp - Dynamic memory recording -----------===//
//
// Uses the paper's malloc tool pattern (instrument "before the malloc
// procedure" with REGV a0, the requested size) on an allocation-heavy
// application, and renders the size histogram. Demonstrates selective
// procedure-level instrumentation: two instrumentation points in the whole
// program, near-zero overhead (Figure 6: 1.02x).
//
//===----------------------------------------------------------------------===//

#include "atom/Driver.h"
#include "sim/Machine.h"
#include "tools/Tools.h"

#include <cstdio>
#include <sstream>

using namespace atom;

static const char *Workload = R"(
struct blob {
  long size;
  char *data;
};

struct blob blobs[512];

int main() {
  long i;
  long total = 0;
  long seed = 99;
  for (i = 0; i < 512; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    long size = 1 + seed % 2000;
    blobs[i].size = size;
    blobs[i].data = malloc(size);
    blobs[i].data[0] = (char)i;
    blobs[i].data[size - 1] = (char)(i + 1);
    total = total + size;
  }
  for (i = 0; i < 512; i = i + 2)
    free(blobs[i].data);
  printf("allocated %ld bytes in 512 blobs\n", total);
  return 0;
}
)";

int main() {
  DiagEngine Diags;
  obj::Executable App;
  if (!buildApplication(Workload, App, Diags)) {
    std::fprintf(stderr, "build failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // Run the stock malloc tool from the suite.
  const Tool *MallocTool = tools::findTool("malloc");
  InstrumentedProgram Out;
  if (!runAtom(App, *MallocTool, AtomOptions(), Out, Diags)) {
    std::fprintf(stderr, "atom failed:\n%s", Diags.str().c_str());
    return 1;
  }

  sim::Machine M(Out.Exe);
  if (M.run().Status != sim::RunStatus::Exited) {
    std::fprintf(stderr, "instrumented run failed\n");
    return 1;
  }

  std::printf("--- application output ---\n%s", M.vfs().stdoutText().c_str());
  std::printf("--- malloc histogram (power-of-two size classes) ---\n");
  std::istringstream Report(M.vfs().fileContents("malloc.out"));
  std::string Line;
  while (std::getline(Report, Line)) {
    std::printf("%s", Line.c_str());
    // Render a bar for histogram lines: "class N (<= M bytes) count K".
    size_t P = Line.rfind("count ");
    if (P != std::string::npos) {
      long K = strtol(Line.c_str() + P + 6, nullptr, 10);
      std::printf("  ");
      for (long I = 0; I < K / 4 && I < 60; ++I)
        std::printf("#");
    }
    std::printf("\n");
  }
  std::printf("--- cost ---\n");
  std::printf("instrumentation points: %u (procedure-level only)\n",
              Out.Stats.Points);
  return 0;
}
