//===- examples/address_trace.cpp - Address tracing, the ATOM way ---------===//
//
// The paper's introduction surveys address-tracing systems (Pixie traces,
// ATUM, tracing on the WRL Titan) and argues that ATOM subsumes them: the
// trace consumer runs *in process*, so "there is no need to record traces
// as all data is immediately processed". This example shows both modes:
//
//   1. An in-process consumer (working-set estimator over the reference
//      stream: distinct 64-byte lines touched per 10k-reference window).
//   2. A bounded raw trace written to a file, for offline inspection —
//      what older systems had to do for every reference.
//
//===----------------------------------------------------------------------===//

#include "atom/Driver.h"
#include "sim/Machine.h"

#include <cstdio>

using namespace atom;

static const char *Workload = R"(
long table[8192];

int main() {
  long i;
  long sum = 0;
  // Phase 1: small working set (1 KB).
  for (i = 0; i < 30000; i = i + 1)
    sum = sum + table[i % 128];
  // Phase 2: large working set (64 KB).
  for (i = 0; i < 30000; i = i + 1)
    sum = sum + table[(i * 67) % 8192];
  printf("sum %ld\n", sum);
  return 0;
}
)";

static const char *Analysis = R"(
char seen[8192];       // one flag per 64-byte line of a 512KB window
long refs;
long distinct;
long window;
long tracef;
long traced;

void Init() {
  long f = fopen("wset.out", "w");
  fclose(f);
  tracef = fopen("trace.out", "w");
}

void Ref(long addr) {
  // In-process consumer: windowed working-set estimate.
  long line = (addr >> 6) & 8191;
  if (!seen[line]) {
    seen[line] = 1;
    distinct = distinct + 1;
  }
  refs = refs + 1;
  if (refs % 10000 == 0) {
    long f = fopen("wset.out", "a");
    fprintf(f, "window %ld distinct-lines %ld\n", window, distinct);
    fclose(f);
    window = window + 1;
    distinct = 0;
    memset(seen, 0, 8192);
  }
  // Offline-style raw trace, bounded to keep the file small — this is
  // the firehose older tools emitted for every reference.
  if (traced < 32) {
    fprintf(tracef, "0x%lx\n", addr);
    traced = traced + 1;
  }
}

void Done() {
  fclose(tracef);
}
)";

int main() {
  DiagEngine Diags;
  obj::Executable App;
  if (!buildApplication(Workload, App, Diags)) {
    std::fprintf(stderr, "build failed:\n%s", Diags.str().c_str());
    return 1;
  }

  Tool T;
  T.Name = "wset";
  T.AnalysisSources = {Analysis};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("Init()");
    C.addCallProto("Ref(VALUE)");
    C.addCallProto("Done()");
    for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
      for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B))
        for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I))
          if (C.isInstType(I, InstType::MemRef))
            C.addCallInst(I, InstPoint::InstBefore, "Ref",
                          {Arg::value(RuntimeValue::EffAddrValue)});
    C.addCallProgram(ProgramPoint::ProgramBefore, "Init", {});
    C.addCallProgram(ProgramPoint::ProgramAfter, "Done", {});
  };

  InstrumentedProgram Out;
  if (!runAtom(App, T, AtomOptions(), Out, Diags)) {
    std::fprintf(stderr, "atom failed:\n%s", Diags.str().c_str());
    return 1;
  }
  sim::Machine M(Out.Exe);
  if (M.run().Status != sim::RunStatus::Exited) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }

  std::printf("--- application output ---\n%s",
              M.vfs().stdoutText().c_str());
  std::printf("--- working-set profile (distinct 64B lines per 10k refs) "
              "---\n%s",
              M.vfs().fileContents("wset.out").c_str());
  std::printf("--- first raw trace records (trace.out) ---\n%s",
              M.vfs().fileContents("trace.out").c_str());
  std::printf("\nthe working-set shift between the two program phases is\n"
              "visible without storing the %llu-reference stream anywhere.\n",
              (unsigned long long)(M.stats().Loads + M.stats().Stores));
  return 0;
}
