//===- examples/cache_model.cpp - Data-cache simulation with a size sweep -===//
//
// Builds a parameterized data-cache tool: each load/store is instrumented
// with its effective address (EffAddrValue), and the analysis routine
// models a direct-mapped cache. The example sweeps cache sizes from 1 KB
// to 64 KB over a matrix-multiply workload — the classic use ATOM's cache
// tool was built for (paper §1: "computer architects need such tools to
// evaluate how well programs will perform on new architectures").
//
//===----------------------------------------------------------------------===//

#include "atom/Driver.h"
#include "sim/Machine.h"

#include <cstdio>
#include <string>

using namespace atom;

static const char *MatrixWorkload = R"(
long a[32][32];
long b[32][32];
long c[32][32];

int main() {
  long i;
  long j;
  long k;
  for (i = 0; i < 32; i = i + 1)
    for (j = 0; j < 32; j = j + 1) {
      a[i][j] = i + j;
      b[i][j] = i - j;
    }
  for (i = 0; i < 32; i = i + 1)
    for (j = 0; j < 32; j = j + 1) {
      long s = 0;
      for (k = 0; k < 32; k = k + 1)
        s = s + a[i][k] * b[k][j];
      c[i][j] = s;
    }
  printf("checksum %ld\n", c[7][11] + c[31][31]);
  return 0;
}
)";

/// Analysis routines, parameterized by the number of 32-byte lines (set by
/// the instrumentation side through InitCache).
static const char *CacheAnalysis = R"(
long tags[4096];
long nlines;
long hits;
long misses;

void InitCache(long lines) {
  long i;
  nlines = lines;
  for (i = 0; i < lines; i = i + 1)
    tags[i] = -1;
}

void Reference(long addr) {
  long line = (addr >> 5) % nlines;
  long tag = addr >> 5;
  if (tags[line] == tag)
    hits = hits + 1;
  else {
    tags[line] = tag;
    misses = misses + 1;
  }
}

void Print() {
  long f = fopen("sweep.out", "w");
  fprintf(f, "%ld %ld\n", hits, misses);
  fclose(f);
}
)";

int main() {
  DiagEngine Diags;
  obj::Executable App;
  if (!buildApplication(MatrixWorkload, App, Diags)) {
    std::fprintf(stderr, "build failed:\n%s", Diags.str().c_str());
    return 1;
  }

  std::printf("direct-mapped cache sweep, 32-byte lines, 32x32 matmul\n");
  std::printf("%8s | %10s | %10s | %9s\n", "size", "hits", "misses",
              "miss rate");
  std::printf("---------+------------+------------+----------\n");

  for (long KB : {1, 2, 4, 8, 16, 32, 64}) {
    long Lines = KB * 1024 / 32;

    Tool CacheTool;
    CacheTool.Name = "sweep";
    CacheTool.AnalysisSources = {CacheAnalysis};
    CacheTool.Instrument = [Lines](InstrumentationContext &C) {
      C.addCallProto("InitCache(long)");
      C.addCallProto("Reference(VALUE)");
      C.addCallProto("Print()");
      for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
        for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B))
          for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I))
            if (C.isInstType(I, InstType::MemRef))
              C.addCallInst(I, InstPoint::InstBefore, "Reference",
                            {Arg::value(RuntimeValue::EffAddrValue)});
      C.addCallProgram(ProgramPoint::ProgramBefore, "InitCache",
                       {Arg::imm(Lines)});
      C.addCallProgram(ProgramPoint::ProgramAfter, "Print", {});
    };

    InstrumentedProgram Out;
    if (!runAtom(App, CacheTool, AtomOptions(), Out, Diags)) {
      std::fprintf(stderr, "atom failed:\n%s", Diags.str().c_str());
      return 1;
    }
    sim::Machine M(Out.Exe);
    if (M.run().Status != sim::RunStatus::Exited) {
      std::fprintf(stderr, "instrumented run failed\n");
      return 1;
    }
    long Hits = 0, Misses = 0;
    std::sscanf(M.vfs().fileContents("sweep.out").c_str(), "%ld %ld",
                &Hits, &Misses);
    std::printf("%6ld K | %10ld | %10ld | %8.2f%%\n", KB, Hits, Misses,
                100.0 * double(Misses) / double(Hits + Misses));
  }
  return 0;
}
