//===- examples/quickstart.cpp - The paper's §3 running example -----------===//
//
// Builds the branch-counting tool of the paper's Figures 2 and 3: count how
// many times each conditional branch is taken and not taken, writing the
// results to btaken.out. Then applies it to a small application and runs
// the instrumented executable on the simulator.
//
// The instrumentation routine below mirrors Figure 2 line by line; the
// analysis routines (mini-C) mirror Figure 3.
//
//===----------------------------------------------------------------------===//

#include "atom/Driver.h"
#include "sim/Machine.h"

#include <cstdio>

using namespace atom;

// Figure 3: the analysis routines. (FILE* is a long-valued handle in the
// mini-C runtime.)
static const char *AnalysisRoutines = R"(
long file;

struct BranchInfo {
  long taken;
  long notTaken;
};

struct BranchInfo *bstats;

void OpenFile(long n) {
  bstats = (struct BranchInfo *)malloc(n * sizeof(struct BranchInfo));
  memset((char *)bstats, 0, n * sizeof(struct BranchInfo));
  file = fopen("btaken.out", "w");
  fprintf(file, "PC\tTaken\tNot Taken\n");
}

void CondBranch(long n, long taken) {
  if (taken)
    bstats[n].taken = bstats[n].taken + 1;
  else
    bstats[n].notTaken = bstats[n].notTaken + 1;
}

void PrintBranch(long n, long pc) {
  fprintf(file, "0x%lx\t%ld\t%ld\n", pc, bstats[n].taken, bstats[n].notTaken);
}

void CloseFile() {
  fclose(file);
}
)";

// Figure 2: the instrumentation routine.
static void instrumentBranchCounter(InstrumentationContext &Ctx) {
  int NBranch = 0;
  Ctx.addCallProto("OpenFile(long)");
  Ctx.addCallProto("CondBranch(long, VALUE)");
  Ctx.addCallProto("PrintBranch(long, long)");
  Ctx.addCallProto("CloseFile()");
  for (Proc *P = Ctx.getFirstProc(); P; P = Ctx.getNextProc(P)) {
    for (Block *B = Ctx.getFirstBlock(P); B; B = Ctx.getNextBlock(B)) {
      Inst *I = Ctx.getLastInst(B);
      if (Ctx.isInstType(I, InstType::CondBranch)) {
        Ctx.addCallInst(I, InstPoint::InstBefore, "CondBranch",
                        {Arg::imm(NBranch),
                         Arg::value(RuntimeValue::BrCondValue)});
        Ctx.addCallProgram(ProgramPoint::ProgramAfter, "PrintBranch",
                           {Arg::imm(NBranch),
                            Arg::imm(int64_t(Ctx.instPC(I)))});
        ++NBranch;
      }
    }
  }
  Ctx.addCallProgram(ProgramPoint::ProgramBefore, "OpenFile",
                     {Arg::imm(NBranch)});
  Ctx.addCallProgram(ProgramPoint::ProgramAfter, "CloseFile", {});
}

// A small application to instrument.
static const char *Application = R"(
long collatz(long n) {
  long steps = 0;
  while (n != 1) {
    if (n % 2 == 0)
      n = n / 2;
    else
      n = 3 * n + 1;
    steps = steps + 1;
  }
  return steps;
}

int main() {
  long total = 0;
  long i;
  for (i = 1; i <= 40; i = i + 1)
    total = total + collatz(i);
  printf("total collatz steps: %ld\n", total);
  return 0;
}
)";

int main() {
  DiagEngine Diags;

  // 1. Build the application (the "fully linked program in object-module
  //    format" that atom takes as input).
  obj::Executable App;
  if (!buildApplication(Application, App, Diags)) {
    std::fprintf(stderr, "build failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // 2. atom app inst.c anal.c -o app.atom
  Tool BranchCounter;
  BranchCounter.Name = "btaken";
  BranchCounter.Description = "Figures 2+3 branch counting tool";
  BranchCounter.Instrument = instrumentBranchCounter;
  BranchCounter.AnalysisSources = {AnalysisRoutines};

  InstrumentedProgram Out;
  if (!runAtom(App, BranchCounter, AtomOptions(), Out, Diags)) {
    std::fprintf(stderr, "atom failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // 3. Run the instrumented executable; the branch statistics appear as a
  //    side effect of normal execution (paper §3).
  sim::Machine M(Out.Exe);
  sim::RunResult R = M.run();
  if (R.Status != sim::RunStatus::Exited) {
    std::fprintf(stderr, "instrumented program did not exit cleanly: %s\n",
                 R.FaultMessage.c_str());
    return 1;
  }

  std::printf("--- application output ---\n%s", M.vfs().stdoutText().c_str());
  std::printf("--- btaken.out (first lines) ---\n");
  std::string Contents = M.vfs().fileContents("btaken.out");
  size_t Lines = 0, Pos = 0;
  while (Lines < 12 && Pos < Contents.size()) {
    size_t NL = Contents.find('\n', Pos);
    if (NL == std::string::npos)
      NL = Contents.size();
    std::printf("%s\n", Contents.substr(Pos, NL - Pos).c_str());
    Pos = NL + 1;
    ++Lines;
  }
  std::printf("--- instrumentation stats ---\n");
  std::printf("points: %u, inserted instructions: %u, wrappers: %u\n",
              Out.Stats.Points, Out.Stats.InsertedInsts, Out.Stats.Wrappers);
  return 0;
}
