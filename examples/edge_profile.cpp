//===- examples/edge_profile.cpp - CFG edge profiling ---------------------===//
//
// Profile-driven optimizers want *edge* counts, not just block counts
// (the paper's intro: tools "provide input for profile-driven
// optimizations"; its §4 notes edge instrumentation was not implemented —
// it is here). This example instruments every CFG edge of the hot
// procedure, then reconstructs the hottest path through it.
//
//===----------------------------------------------------------------------===//

#include "atom/Driver.h"
#include "sim/Machine.h"

#include <cstdio>
#include <sstream>
#include <vector>

using namespace atom;

static const char *Workload = R"(
long classify(long v) {
  if (v < 0)
    return 0;          // cold: inputs are non-negative
  if (v % 2 == 0) {
    if (v % 4 == 0)
      return 1;        // multiples of 4: 25%
    return 2;          // even, not multiple of 4: 25%
  }
  return 3;            // odd: 50%
}

int main() {
  long hist[4];
  long i;
  hist[0] = 0;
  hist[1] = 0;
  hist[2] = 0;
  hist[3] = 0;
  for (i = 0; i < 4000; i = i + 1) {
    long c = classify(i * 7 % 1000);
    hist[c] = hist[c] + 1;
  }
  printf("hist %ld %ld %ld %ld\n", hist[0], hist[1], hist[2], hist[3]);
  return 0;
}
)";

static const char *Analysis = R"(
long counts[256];
long n;

void Edge(long id) {
  counts[id] = counts[id] + 1;
}

void SetCount(long total) {
  n = total;
}

void Report() {
  long f = fopen("edges.out", "w");
  long i;
  for (i = 0; i < n; i = i + 1)
    fprintf(f, "%ld %ld\n", i, counts[i]);
  fclose(f);
}
)";

int main() {
  DiagEngine Diags;
  obj::Executable App;
  if (!buildApplication(Workload, App, Diags)) {
    std::fprintf(stderr, "build failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // Edge descriptors gathered during instrumentation.
  struct EdgeDesc {
    uint64_t FromPC, ToPC;
    int SuccIdx;
  };
  std::vector<EdgeDesc> Edges;

  Tool T;
  T.Name = "edgeprof";
  T.AnalysisSources = {Analysis};
  T.Instrument = [&Edges](InstrumentationContext &C) {
    C.addCallProto("Edge(long)");
    C.addCallProto("SetCount(long)");
    C.addCallProto("Report()");
    Proc *Hot = C.findProc("classify");
    long Id = 0;
    for (Block *B = C.getFirstBlock(Hot); B; B = C.getNextBlock(B))
      for (int S = 0; S < C.blockSuccCount(B); ++S) {
        Block *To = C.blockSucc(B, unsigned(S));
        Edges.push_back({C.blockPC(B), C.blockPC(To), S});
        C.addCallEdge(B, unsigned(S), "Edge", {Arg::imm(Id)});
        ++Id;
      }
    C.addCallProgram(ProgramPoint::ProgramBefore, "SetCount",
                     {Arg::imm(Id)});
    C.addCallProgram(ProgramPoint::ProgramAfter, "Report", {});
  };

  InstrumentedProgram Out;
  if (!runAtom(App, T, AtomOptions(), Out, Diags)) {
    std::fprintf(stderr, "atom failed:\n%s", Diags.str().c_str());
    return 1;
  }
  sim::Machine M(Out.Exe);
  if (M.run().Status != sim::RunStatus::Exited) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }

  std::printf("--- application output ---\n%s",
              M.vfs().stdoutText().c_str());
  std::printf("--- edge profile of classify() ---\n");
  std::printf("%-12s -> %-12s %-6s %10s\n", "from", "to", "edge", "count");

  std::istringstream Report(M.vfs().fileContents("edges.out"));
  long Id, Count, Hottest = -1, HottestCount = -1;
  while (Report >> Id >> Count) {
    const EdgeDesc &E = Edges[size_t(Id)];
    std::printf("0x%-10llx -> 0x%-10llx %-6s %10ld\n",
                (unsigned long long)E.FromPC, (unsigned long long)E.ToPC,
                E.SuccIdx == 0 ? "taken" : "fall", Count);
    if (Count > HottestCount) {
      HottestCount = Count;
      Hottest = Id;
    }
  }
  if (Hottest >= 0)
    std::printf("hottest edge: 0x%llx -> 0x%llx (%ld executions)\n",
                (unsigned long long)Edges[size_t(Hottest)].FromPC,
                (unsigned long long)Edges[size_t(Hottest)].ToPC,
                HottestCount);
  return 0;
}
