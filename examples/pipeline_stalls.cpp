//===- examples/pipeline_stalls.cpp - Static scheduling at instrument time ===//
//
// The pipe tool pattern (paper Figure 5: "pipe ... does static CPU
// pipeline scheduling for each basic block at instrumentation time"):
// expensive per-block analysis happens once, in the instrumentation
// routine; the run-time analysis merely accumulates two counters per
// block execution. This example compares the estimated CPI of a
// load-dependent pointer-chasing loop against a dense arithmetic loop.
//
//===----------------------------------------------------------------------===//

#include "atom/Driver.h"
#include "sim/Machine.h"
#include "tools/Tools.h"

#include <cstdio>

using namespace atom;

static const char *PointerChase = R"(
long nodes[4096];

int main() {
  long i;
  // Build a permutation cycle, then chase it: every iteration is a
  // load-use dependence.
  for (i = 0; i < 4096; i = i + 1)
    nodes[i] = (i * 33 + 1) % 4096;
  long p = 0;
  long steps = 0;
  for (i = 0; i < 40000; i = i + 1) {
    p = nodes[p];
    steps = steps + 1;
  }
  printf("chase end %ld steps %ld\n", p, steps);
  return 0;
}
)";

static const char *MulChain = R"(
int main() {
  long s = 1;
  long i;
  for (i = 0; i < 40000; i = i + 1)
    s = s * 31 + i;
  printf("mulchain %ld\n", s);
  return 0;
}
)";

static bool measure(const char *Name, const char *Source) {
  DiagEngine Diags;
  obj::Executable App;
  if (!buildApplication(Source, App, Diags)) {
    std::fprintf(stderr, "build failed:\n%s", Diags.str().c_str());
    return false;
  }
  InstrumentedProgram Out;
  if (!runAtom(App, *tools::findTool("pipe"), AtomOptions(), Out, Diags)) {
    std::fprintf(stderr, "atom failed:\n%s", Diags.str().c_str());
    return false;
  }
  sim::Machine M(Out.Exe);
  if (M.run().Status != sim::RunStatus::Exited) {
    std::fprintf(stderr, "instrumented run failed\n");
    return false;
  }
  long Insts = 0, Cycles = 0, Stalls = 0, Cpi = 0;
  std::sscanf(M.vfs().fileContents("pipe.out").c_str(),
              "insts %ld\ncycles %ld\nstalls %ld\ncpi-x100 %ld", &Insts,
              &Cycles, &Stalls, &Cpi);
  std::printf("%-14s | %10ld | %10ld | %9ld | %5.2f\n", Name, Insts,
              Cycles, Stalls, double(Cpi) / 100.0);
  return true;
}

int main() {
  std::printf("pipeline model: loads 3 cycles, multiplies 8, divides 16, "
              "others 1\n");
  std::printf("%-14s | %10s | %10s | %9s | %5s\n", "workload", "insts",
              "cycles", "stalls", "CPI");
  std::printf("---------------+------------+------------+-----------+------"
              "\n");
  if (!measure("pointer-chase", PointerChase))
    return 1;
  if (!measure("mul-chain", MulChain))
    return 1;
  std::printf("\nthe dependent-multiply loop shows the higher estimated "
              "CPI (8-cycle\nmultiplies back to back), computed without "
              "simulating a single cycle\nat run time.\n");
  return 0;
}
