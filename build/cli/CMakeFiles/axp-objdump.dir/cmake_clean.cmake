file(REMOVE_RECURSE
  "CMakeFiles/axp-objdump.dir/axp-objdump.cpp.o"
  "CMakeFiles/axp-objdump.dir/axp-objdump.cpp.o.d"
  "axp-objdump"
  "axp-objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axp-objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
