# Empty compiler generated dependencies file for axp-objdump.
# This may be replaced when dependencies are built.
