file(REMOVE_RECURSE
  "CMakeFiles/axp-as.dir/axp-as.cpp.o"
  "CMakeFiles/axp-as.dir/axp-as.cpp.o.d"
  "axp-as"
  "axp-as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axp-as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
