# Empty dependencies file for axp-as.
# This may be replaced when dependencies are built.
