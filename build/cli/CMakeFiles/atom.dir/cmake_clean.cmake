file(REMOVE_RECURSE
  "CMakeFiles/atom.dir/atom.cpp.o"
  "CMakeFiles/atom.dir/atom.cpp.o.d"
  "atom"
  "atom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
