# Empty compiler generated dependencies file for atom.
# This may be replaced when dependencies are built.
