# Empty compiler generated dependencies file for axp-ld.
# This may be replaced when dependencies are built.
