file(REMOVE_RECURSE
  "CMakeFiles/axp-ld.dir/axp-ld.cpp.o"
  "CMakeFiles/axp-ld.dir/axp-ld.cpp.o.d"
  "axp-ld"
  "axp-ld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axp-ld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
