# Empty compiler generated dependencies file for axp-run.
# This may be replaced when dependencies are built.
