file(REMOVE_RECURSE
  "CMakeFiles/axp-run.dir/axp-run.cpp.o"
  "CMakeFiles/axp-run.dir/axp-run.cpp.o.d"
  "axp-run"
  "axp-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axp-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
