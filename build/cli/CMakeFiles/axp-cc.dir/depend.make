# Empty dependencies file for axp-cc.
# This may be replaced when dependencies are built.
