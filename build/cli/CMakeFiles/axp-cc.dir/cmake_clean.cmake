file(REMOVE_RECURSE
  "CMakeFiles/axp-cc.dir/axp-cc.cpp.o"
  "CMakeFiles/axp-cc.dir/axp-cc.cpp.o.d"
  "axp-cc"
  "axp-cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axp-cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
