# Empty compiler generated dependencies file for atomlib.
# This may be replaced when dependencies are built.
