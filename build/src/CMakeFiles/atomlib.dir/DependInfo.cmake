
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asm/Assembler.cpp" "src/CMakeFiles/atomlib.dir/asm/Assembler.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/asm/Assembler.cpp.o.d"
  "/root/repo/src/atom/Api.cpp" "src/CMakeFiles/atomlib.dir/atom/Api.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/atom/Api.cpp.o.d"
  "/root/repo/src/atom/Driver.cpp" "src/CMakeFiles/atomlib.dir/atom/Driver.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/atom/Driver.cpp.o.d"
  "/root/repo/src/atom/Engine.cpp" "src/CMakeFiles/atomlib.dir/atom/Engine.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/atom/Engine.cpp.o.d"
  "/root/repo/src/isa/ConstantSynth.cpp" "src/CMakeFiles/atomlib.dir/isa/ConstantSynth.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/isa/ConstantSynth.cpp.o.d"
  "/root/repo/src/isa/Isa.cpp" "src/CMakeFiles/atomlib.dir/isa/Isa.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/isa/Isa.cpp.o.d"
  "/root/repo/src/link/Linker.cpp" "src/CMakeFiles/atomlib.dir/link/Linker.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/link/Linker.cpp.o.d"
  "/root/repo/src/mcc/CodeGen.cpp" "src/CMakeFiles/atomlib.dir/mcc/CodeGen.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/mcc/CodeGen.cpp.o.d"
  "/root/repo/src/mcc/Compiler.cpp" "src/CMakeFiles/atomlib.dir/mcc/Compiler.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/mcc/Compiler.cpp.o.d"
  "/root/repo/src/mcc/Lexer.cpp" "src/CMakeFiles/atomlib.dir/mcc/Lexer.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/mcc/Lexer.cpp.o.d"
  "/root/repo/src/mcc/Parser.cpp" "src/CMakeFiles/atomlib.dir/mcc/Parser.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/mcc/Parser.cpp.o.d"
  "/root/repo/src/mcc/Sema.cpp" "src/CMakeFiles/atomlib.dir/mcc/Sema.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/mcc/Sema.cpp.o.d"
  "/root/repo/src/obj/ObjectModule.cpp" "src/CMakeFiles/atomlib.dir/obj/ObjectModule.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/obj/ObjectModule.cpp.o.d"
  "/root/repo/src/om/DataFlow.cpp" "src/CMakeFiles/atomlib.dir/om/DataFlow.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/om/DataFlow.cpp.o.d"
  "/root/repo/src/om/Layout.cpp" "src/CMakeFiles/atomlib.dir/om/Layout.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/om/Layout.cpp.o.d"
  "/root/repo/src/om/Lift.cpp" "src/CMakeFiles/atomlib.dir/om/Lift.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/om/Lift.cpp.o.d"
  "/root/repo/src/om/Liveness.cpp" "src/CMakeFiles/atomlib.dir/om/Liveness.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/om/Liveness.cpp.o.d"
  "/root/repo/src/om/Program.cpp" "src/CMakeFiles/atomlib.dir/om/Program.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/om/Program.cpp.o.d"
  "/root/repo/src/om/Rename.cpp" "src/CMakeFiles/atomlib.dir/om/Rename.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/om/Rename.cpp.o.d"
  "/root/repo/src/runtime/Runtime.cpp" "src/CMakeFiles/atomlib.dir/runtime/Runtime.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/runtime/Runtime.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/CMakeFiles/atomlib.dir/sim/Machine.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/sim/Machine.cpp.o.d"
  "/root/repo/src/sim/Syscalls.cpp" "src/CMakeFiles/atomlib.dir/sim/Syscalls.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/sim/Syscalls.cpp.o.d"
  "/root/repo/src/support/Support.cpp" "src/CMakeFiles/atomlib.dir/support/Support.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/support/Support.cpp.o.d"
  "/root/repo/src/tools/Tools.cpp" "src/CMakeFiles/atomlib.dir/tools/Tools.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/tools/Tools.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/CMakeFiles/atomlib.dir/workloads/Workloads.cpp.o" "gcc" "src/CMakeFiles/atomlib.dir/workloads/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
