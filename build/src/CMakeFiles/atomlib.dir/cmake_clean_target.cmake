file(REMOVE_RECURSE
  "libatomlib.a"
)
