
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AsmLinkTests.cpp" "tests/CMakeFiles/atom_tests.dir/AsmLinkTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/AsmLinkTests.cpp.o.d"
  "/root/repo/tests/AtomTests.cpp" "tests/CMakeFiles/atom_tests.dir/AtomTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/AtomTests.cpp.o.d"
  "/root/repo/tests/CliTests.cpp" "tests/CMakeFiles/atom_tests.dir/CliTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/CliTests.cpp.o.d"
  "/root/repo/tests/IsaTests.cpp" "tests/CMakeFiles/atom_tests.dir/IsaTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/IsaTests.cpp.o.d"
  "/root/repo/tests/MccPropertyTests.cpp" "tests/CMakeFiles/atom_tests.dir/MccPropertyTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/MccPropertyTests.cpp.o.d"
  "/root/repo/tests/MccTests.cpp" "tests/CMakeFiles/atom_tests.dir/MccTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/MccTests.cpp.o.d"
  "/root/repo/tests/OmTests.cpp" "tests/CMakeFiles/atom_tests.dir/OmTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/OmTests.cpp.o.d"
  "/root/repo/tests/SimTests.cpp" "tests/CMakeFiles/atom_tests.dir/SimTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/SimTests.cpp.o.d"
  "/root/repo/tests/SupportTests.cpp" "tests/CMakeFiles/atom_tests.dir/SupportTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/SupportTests.cpp.o.d"
  "/root/repo/tests/ToolsTests.cpp" "tests/CMakeFiles/atom_tests.dir/ToolsTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/ToolsTests.cpp.o.d"
  "/root/repo/tests/WorkloadTests.cpp" "tests/CMakeFiles/atom_tests.dir/WorkloadTests.cpp.o" "gcc" "tests/CMakeFiles/atom_tests.dir/WorkloadTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atomlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
