# Empty compiler generated dependencies file for atom_tests.
# This may be replaced when dependencies are built.
