file(REMOVE_RECURSE
  "CMakeFiles/atom_tests.dir/AsmLinkTests.cpp.o"
  "CMakeFiles/atom_tests.dir/AsmLinkTests.cpp.o.d"
  "CMakeFiles/atom_tests.dir/AtomTests.cpp.o"
  "CMakeFiles/atom_tests.dir/AtomTests.cpp.o.d"
  "CMakeFiles/atom_tests.dir/CliTests.cpp.o"
  "CMakeFiles/atom_tests.dir/CliTests.cpp.o.d"
  "CMakeFiles/atom_tests.dir/IsaTests.cpp.o"
  "CMakeFiles/atom_tests.dir/IsaTests.cpp.o.d"
  "CMakeFiles/atom_tests.dir/MccPropertyTests.cpp.o"
  "CMakeFiles/atom_tests.dir/MccPropertyTests.cpp.o.d"
  "CMakeFiles/atom_tests.dir/MccTests.cpp.o"
  "CMakeFiles/atom_tests.dir/MccTests.cpp.o.d"
  "CMakeFiles/atom_tests.dir/OmTests.cpp.o"
  "CMakeFiles/atom_tests.dir/OmTests.cpp.o.d"
  "CMakeFiles/atom_tests.dir/SimTests.cpp.o"
  "CMakeFiles/atom_tests.dir/SimTests.cpp.o.d"
  "CMakeFiles/atom_tests.dir/SupportTests.cpp.o"
  "CMakeFiles/atom_tests.dir/SupportTests.cpp.o.d"
  "CMakeFiles/atom_tests.dir/ToolsTests.cpp.o"
  "CMakeFiles/atom_tests.dir/ToolsTests.cpp.o.d"
  "CMakeFiles/atom_tests.dir/WorkloadTests.cpp.o"
  "CMakeFiles/atom_tests.dir/WorkloadTests.cpp.o.d"
  "atom_tests"
  "atom_tests.pdb"
  "atom_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atom_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
