# Empty dependencies file for ablation_regsave.
# This may be replaced when dependencies are built.
