file(REMOVE_RECURSE
  "../bench/ablation_regsave"
  "../bench/ablation_regsave.pdb"
  "CMakeFiles/ablation_regsave.dir/ablation_regsave.cpp.o"
  "CMakeFiles/ablation_regsave.dir/ablation_regsave.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regsave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
