file(REMOVE_RECURSE
  "../bench/arg_setup_cost"
  "../bench/arg_setup_cost.pdb"
  "CMakeFiles/arg_setup_cost.dir/arg_setup_cost.cpp.o"
  "CMakeFiles/arg_setup_cost.dir/arg_setup_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arg_setup_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
