# Empty dependencies file for arg_setup_cost.
# This may be replaced when dependencies are built.
