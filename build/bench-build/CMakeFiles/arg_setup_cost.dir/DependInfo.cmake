
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/arg_setup_cost.cpp" "bench-build/CMakeFiles/arg_setup_cost.dir/arg_setup_cost.cpp.o" "gcc" "bench-build/CMakeFiles/arg_setup_cost.dir/arg_setup_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atomlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
