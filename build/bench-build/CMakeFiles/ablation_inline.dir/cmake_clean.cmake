file(REMOVE_RECURSE
  "../bench/ablation_inline"
  "../bench/ablation_inline.pdb"
  "CMakeFiles/ablation_inline.dir/ablation_inline.cpp.o"
  "CMakeFiles/ablation_inline.dir/ablation_inline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
