# Empty compiler generated dependencies file for fig6_exec_overhead.
# This may be replaced when dependencies are built.
