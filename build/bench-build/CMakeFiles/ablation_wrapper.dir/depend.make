# Empty dependencies file for ablation_wrapper.
# This may be replaced when dependencies are built.
