file(REMOVE_RECURSE
  "../bench/ablation_wrapper"
  "../bench/ablation_wrapper.pdb"
  "CMakeFiles/ablation_wrapper.dir/ablation_wrapper.cpp.o"
  "CMakeFiles/ablation_wrapper.dir/ablation_wrapper.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
