file(REMOVE_RECURSE
  "../bench/ablation_delayed_saves"
  "../bench/ablation_delayed_saves.pdb"
  "CMakeFiles/ablation_delayed_saves.dir/ablation_delayed_saves.cpp.o"
  "CMakeFiles/ablation_delayed_saves.dir/ablation_delayed_saves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delayed_saves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
