# Empty dependencies file for ablation_delayed_saves.
# This may be replaced when dependencies are built.
