# Empty dependencies file for memory_histogram.
# This may be replaced when dependencies are built.
