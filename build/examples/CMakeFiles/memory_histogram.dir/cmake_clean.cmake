file(REMOVE_RECURSE
  "CMakeFiles/memory_histogram.dir/memory_histogram.cpp.o"
  "CMakeFiles/memory_histogram.dir/memory_histogram.cpp.o.d"
  "memory_histogram"
  "memory_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
