# Empty compiler generated dependencies file for address_trace.
# This may be replaced when dependencies are built.
