file(REMOVE_RECURSE
  "CMakeFiles/address_trace.dir/address_trace.cpp.o"
  "CMakeFiles/address_trace.dir/address_trace.cpp.o.d"
  "address_trace"
  "address_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
