file(REMOVE_RECURSE
  "CMakeFiles/pipeline_stalls.dir/pipeline_stalls.cpp.o"
  "CMakeFiles/pipeline_stalls.dir/pipeline_stalls.cpp.o.d"
  "pipeline_stalls"
  "pipeline_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
