# Empty dependencies file for pipeline_stalls.
# This may be replaced when dependencies are built.
