# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_model "/root/repo/build/examples/cache_model")
set_tests_properties(example_cache_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memory_histogram "/root/repo/build/examples/memory_histogram")
set_tests_properties(example_memory_histogram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline_stalls "/root/repo/build/examples/pipeline_stalls")
set_tests_properties(example_pipeline_stalls PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_edge_profile "/root/repo/build/examples/edge_profile")
set_tests_properties(example_edge_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_address_trace "/root/repo/build/examples/address_trace")
set_tests_properties(example_address_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
