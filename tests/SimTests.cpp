//===- tests/SimTests.cpp - Machine simulator semantics -------------------===//
//
// Each case assembles a tiny program that computes one value into v0 and
// halts; the harness checks v0. Covers every instruction's semantics plus
// memory, syscalls, and statistics.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "link/Linker.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace atom;
using namespace atom::sim;

namespace {

/// Assembles and links \p Body (placed inside a 'start' procedure) and runs
/// it; returns the final machine state through \p Out.
RunResult runAsm(const std::string &Body, Machine **Out = nullptr) {
  std::string Src = "        .text\n        .ent start\n"
                    "        .globl start\nstart:\n" +
                    Body + "        .end start\n";
  DiagEngine Diags;
  obj::ObjectModule M;
  if (!assembler::assemble(Src, "t", M, Diags)) {
    ADD_FAILURE() << "assembly failed:\n" << Diags.str() << "\n" << Src;
    abort();
  }
  obj::Executable Exe;
  link::LinkOptions Opts;
  Opts.EntrySymbol = "start";
  if (!link::linkExecutable({M}, Exe, Diags, Opts)) {
    ADD_FAILURE() << "link failed:\n" << Diags.str();
    abort();
  }
  static Machine *Keep = nullptr;
  delete Keep;
  Keep = new Machine(Exe);
  if (Out)
    *Out = Keep;
  return Keep->run(1'000'000);
}

/// Runs \p Body and expects a halt with v0 == \p Expected.
void expectV0(const std::string &Body, uint64_t Expected) {
  Machine *M = nullptr;
  RunResult R = runAsm(Body + "        halt\n", &M);
  ASSERT_EQ(R.Status, RunStatus::Halted) << R.FaultMessage;
  EXPECT_EQ(M->reg(isa::RegV0), Expected);
}

struct SemCase {
  const char *Name;
  const char *Body;
  uint64_t Expected;
};

class Semantics : public ::testing::TestWithParam<SemCase> {};

TEST_P(Semantics, V0) { expectV0(GetParam().Body, GetParam().Expected); }

const SemCase SemCases[] = {
    {"lda", "lda v0, 42(zero)\n", 42},
    {"ldaNegative", "lda v0, -1(zero)\n", uint64_t(-1)},
    {"ldah", "ldah v0, 2(zero)\n", 0x20000},
    {"ldahNegative", "ldah v0, -1(zero)\n", uint64_t(-0x10000)},
    {"ldaBase", "lda t0, 100(zero)\n lda v0, -30(t0)\n", 70},

    {"addq", "lda t0, 20(zero)\n lda t1, 22(zero)\n addq t0, t1, v0\n", 42},
    {"addqLit", "lda t0, 40(zero)\n addq t0, #2, v0\n", 42},
    {"subq", "lda t0, 10(zero)\n subq t0, #14, v0\n", uint64_t(-4)},
    {"addl", "ldah t0, 0x7fff(zero)\n lda t0, 0x7fff(t0)\n"
             " ldah t1, 1(zero)\n addl t0, t1, v0\n",
     uint64_t(int64_t(int32_t(0x7fff7fff + 0x10000)))},
    {"subl", "lconst t0, 0x80000000\n subl t0, #1, v0\n",
     uint64_t(int64_t(int32_t(0x7fffffff)))},
    {"mulq", "lda t0, -6(zero)\n lda t1, 7(zero)\n mulq t0, t1, v0\n",
     uint64_t(-42)},
    {"mull", "lconst t0, 100000\n lconst t1, 100000\n mull t0, t1, v0\n",
     uint64_t(int64_t(int32_t(10000000000LL)))},
    {"umulh", "lconst t0, 0x100000000\n lconst t1, 0x100000000\n"
              " umulh t0, t1, v0\n",
     1},
    {"divq", "lda t0, -17(zero)\n lda t1, 5(zero)\n divq t0, t1, v0\n",
     uint64_t(-3)},
    {"remq", "lda t0, -17(zero)\n lda t1, 5(zero)\n remq t0, t1, v0\n",
     uint64_t(-2)},
    {"divByZero", "lda t0, 9(zero)\n divq t0, #0, v0\n", 0},
    {"divqu", "lda t0, -1(zero)\n lda t1, 2(zero)\n divqu t0, t1, v0\n",
     0x7FFFFFFFFFFFFFFFULL},
    {"remqu", "lda t0, 17(zero)\n remqu t0, #5, v0\n", 2},

    {"and", "lda t0, 12(zero)\n and t0, #10, v0\n", 8},
    {"bic", "lda t0, 15(zero)\n bic t0, #6, v0\n", 9},
    {"bis", "lda t0, 12(zero)\n bis t0, #3, v0\n", 15},
    {"ornot", "lda t0, 0(zero)\n ornot t0, #0, v0\n", ~uint64_t(0)},
    {"xor", "lda t0, 12(zero)\n xor t0, #10, v0\n", 6},
    {"eqv", "lda t0, 12(zero)\n eqv t0, #10, v0\n", uint64_t(-7)},
    {"sll", "lda t0, 1(zero)\n sll t0, #40, v0\n", uint64_t(1) << 40},
    {"srl", "lda t0, -1(zero)\n srl t0, #60, v0\n", 15},
    {"sra", "lda t0, -16(zero)\n sra t0, #2, v0\n", uint64_t(-4)},
    {"sextb", "lda t0, 0xff(zero)\n sextb t0, t0, v0\n", uint64_t(-1)},
    {"sextw", "lconst t0, 0x8000\n sextw t0, t0, v0\n", uint64_t(-32768)},

    {"cmpeqTrue", "lda t0, 5(zero)\n cmpeq t0, #5, v0\n", 1},
    {"cmpeqFalse", "lda t0, 5(zero)\n cmpeq t0, #6, v0\n", 0},
    {"cmplt", "lda t0, -1(zero)\n cmplt t0, #0, v0\n", 1},
    {"cmple", "lda t0, 5(zero)\n cmple t0, #5, v0\n", 1},
    {"cmpult", "lda t0, -1(zero)\n cmpult t0, #0, v0\n", 0},
    {"cmpule", "lda t0, 0(zero)\n cmpule t0, #0, v0\n", 1},

    {"storeLoad", "lconst t0, 0x10000000\n lconst t1, 0x1122334455667788\n"
                  " stq t1, 0(t0)\n ldq v0, 0(t0)\n",
     0x1122334455667788ULL},
    {"storeLoadByte", "lconst t0, 0x10000000\n lda t1, 0x7f(zero)\n"
                      " stb t1, 3(t0)\n ldbu v0, 3(t0)\n",
     0x7f},
    {"ldlSignExtends", "lconst t0, 0x10000000\n lconst t1, 0x80000000\n"
                       " stl t1, 0(t0)\n ldl v0, 0(t0)\n",
     uint64_t(int64_t(int32_t(0x80000000)))},
    {"ldwuZeroExtends", "lconst t0, 0x10000000\n lconst t1, 0xffff\n"
                        " stw t1, 0(t0)\n ldwu v0, 0(t0)\n",
     0xffff},
    {"unalignedLoad", "lconst t0, 0x10000000\n lconst t1, 0x1122334455667788\n"
                      " stq t1, 1(t0)\n ldq v0, 1(t0)\n",
     0x1122334455667788ULL},
    {"littleEndian", "lconst t0, 0x10000000\n lconst t1, 0x11223344\n"
                     " stl t1, 0(t0)\n ldbu v0, 0(t0)\n",
     0x44},

    {"brSkips", "br Lx\n lda v0, 1(zero)\nLx:\n lda v0, 2(zero)\n", 2},
    {"beqTaken", "lda t0, 0(zero)\n beq t0, Ly\n lda v0, 1(zero)\n halt\n"
                 "Ly:\n lda v0, 2(zero)\n",
     2},
    {"beqNotTaken", "lda t0, 1(zero)\n beq t0, Lz\n lda v0, 7(zero)\n halt\n"
                    "Lz:\n lda v0, 2(zero)\n",
     7},
    {"bltNegative", "lda t0, -5(zero)\n blt t0, Lw\n lda v0, 1(zero)\n halt\n"
                    "Lw:\n lda v0, 3(zero)\n",
     3},
    {"blbsOdd", "lda t0, 7(zero)\n blbs t0, Lv\n lda v0, 1(zero)\n halt\n"
                "Lv:\n lda v0, 4(zero)\n",
     4},
    {"bsrLinks", "bsr ra, Lsub\n lda v0, 9(zero)\n halt\n"
                 "Lsub:\n ret\n",
     9},
    {"jsrIndirect", "laddr pv, Lsub2\n jsr ra, (pv)\n lda v0, 11(zero)\n"
                    " halt\nLsub2:\n ret\n",
     11},
    {"loop10", "lda t0, 10(zero)\n clr v0\nLloop:\n addq v0, #1, v0\n"
               " subq t0, #1, t0\n bne t0, Lloop\n",
     10},
};

INSTANTIATE_TEST_SUITE_P(All, Semantics, ::testing::ValuesIn(SemCases),
                         [](const ::testing::TestParamInfo<SemCase> &I) {
                           return I.param.Name;
                         });

//===----------------------------------------------------------------------===//
// Faults and fuel
//===----------------------------------------------------------------------===//

TEST(SimFaults, BadPC) {
  RunResult R = runAsm("lda t0, 0(zero)\n jmp zero, (t0)\n");
  EXPECT_EQ(R.Status, RunStatus::Trap);
  EXPECT_NE(R.FaultMessage.find("bad pc"), std::string::npos);
}

TEST(SimFaults, FuelExhausted) {
  RunResult R = runAsm("Lspin:\n br Lspin\n");
  EXPECT_EQ(R.Status, RunStatus::FuelExhausted);
}

TEST(SimFaults, UnknownSyscall) {
  RunResult R = runAsm("lconst v0, 999\n callsys\n");
  EXPECT_EQ(R.Status, RunStatus::Trap);
  EXPECT_NE(R.FaultMessage.find("syscall"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Syscalls and the VFS
//===----------------------------------------------------------------------===//

TEST(SimSyscalls, ExitCode) {
  RunResult R = runAsm("lda a0, 42(zero)\n lda v0, 1(zero)\n callsys\n");
  ASSERT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(SimSyscalls, WriteStdout) {
  Machine *M = nullptr;
  // Write 3 bytes from the data section to fd 1.
  std::string Src = R"(
        .text
        .ent start
        .globl start
start:
        lda     a0, 1(zero)
        laddr   a1, msg
        lda     a2, 3(zero)
        lda     v0, 3(zero)
        callsys
        mov     v0, t5
        clr     a0
        lda     v0, 1(zero)
        callsys
        .end start
        .data
msg:    .ascii  "hey"
)";
  DiagEngine Diags;
  obj::ObjectModule Mod;
  ASSERT_TRUE(assembler::assemble(Src, "t", Mod, Diags)) << Diags.str();
  obj::Executable Exe;
  link::LinkOptions Opts;
  Opts.EntrySymbol = "start";
  ASSERT_TRUE(link::linkExecutable({Mod}, Exe, Diags, Opts)) << Diags.str();
  M = new Machine(Exe);
  RunResult R = M->run();
  ASSERT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(M->vfs().stdoutText(), "hey");
  EXPECT_EQ(M->reg(isa::RegT5), 3u); // write() returned 3
  delete M;
}

TEST(Vfs, OpenWriteReadRoundTrip) {
  Vfs V;
  int64_t Fd = V.open("f.txt", OpenWriteCreate);
  ASSERT_GE(Fd, 3);
  std::vector<uint8_t> Data = {'a', 'b', 'c'};
  EXPECT_EQ(V.write(Fd, Data), 3);
  EXPECT_EQ(V.close(Fd), 0);
  EXPECT_EQ(V.fileContents("f.txt"), "abc");

  int64_t Rd = V.open("f.txt", OpenRead);
  ASSERT_GE(Rd, 3);
  std::vector<uint8_t> Out;
  EXPECT_EQ(V.read(Rd, 10, Out), 3);
  EXPECT_EQ(V.read(Rd, 10, Out), 0); // EOF
  EXPECT_EQ(V.close(Rd), 0);
}

TEST(Vfs, Errors) {
  Vfs V;
  EXPECT_EQ(V.open("missing", OpenRead), -1);
  EXPECT_EQ(V.close(99), -1);
  EXPECT_EQ(V.close(1), -1); // stdout cannot be closed
  std::vector<uint8_t> Out;
  EXPECT_EQ(V.read(42, 1, Out), -1);
  // fds are recycled after close.
  int64_t A = V.open("a", OpenWriteCreate);
  V.close(A);
  int64_t B = V.open("b", OpenWriteCreate);
  EXPECT_EQ(A, B);
}

//===----------------------------------------------------------------------===//
// Statistics and tracing (the oracle used by the tool tests)
//===----------------------------------------------------------------------===//

TEST(SimStats, CountsClasses) {
  Machine *M = nullptr;
  RunResult R = runAsm(
      "lconst t0, 0x10000000\n stq zero, 0(t0)\n ldq t1, 0(t0)\n"
      " lda t2, 3(zero)\nLl:\n subq t2, #1, t2\n bne t2, Ll\n halt\n",
      &M);
  ASSERT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(M->stats().Loads, 1u);
  EXPECT_EQ(M->stats().Stores, 1u);
  EXPECT_EQ(M->stats().CondBranches, 3u);
  EXPECT_EQ(M->stats().TakenBranches, 2u);
  EXPECT_GT(M->stats().Instructions, 8u);
}

TEST(SimTrace, EffAddrAndTaken) {
  std::string Src =
      "lconst t0, 0x10000008\n stq zero, 8(t0)\n lda t1, 1(zero)\n"
      " beq t1, Lt\n lda t2, 1(zero)\nLt:\n halt\n";
  DiagEngine Diags;
  obj::ObjectModule Mod;
  std::string Full = "        .text\n        .ent start\n"
                     "        .globl start\nstart:\n" +
                     Src + "        .end start\n";
  ASSERT_TRUE(assembler::assemble(Full, "t", Mod, Diags)) << Diags.str();
  obj::Executable Exe;
  link::LinkOptions Opts;
  Opts.EntrySymbol = "start";
  ASSERT_TRUE(link::linkExecutable({Mod}, Exe, Diags, Opts));
  Machine M(Exe);
  std::vector<TraceEvent> Events;
  M.setTraceHook([&](const TraceEvent &E) { Events.push_back(E); });
  ASSERT_EQ(M.run().Status, RunStatus::Halted);
  bool SawStore = false, SawBranch = false;
  for (const TraceEvent &E : Events) {
    if (isa::isStore(E.I.Op)) {
      SawStore = true;
      EXPECT_EQ(E.EffAddr, 0x10000010u);
    }
    if (isa::isCondBranch(E.I.Op)) {
      SawBranch = true;
      EXPECT_FALSE(E.Taken);
    }
  }
  EXPECT_TRUE(SawStore);
  EXPECT_TRUE(SawBranch);
}

} // namespace

namespace {

TEST(SimMemory, PageBoundaryCrossingAccesses) {
  // 8 KB pages: a quad written across the first page boundary of the data
  // segment reads back identically.
  Machine *M = nullptr;
  RunResult R = runAsm(
      "lconst t0, 0x10001ffc\n lconst t1, 0x1122334455667788\n"
      " stq t1, 0(t0)\n ldq v0, 0(t0)\n halt\n",
      &M);
  ASSERT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(M->reg(isa::RegV0), 0x1122334455667788ULL);
  // The simulator flags it as unaligned.
  EXPECT_EQ(M->stats().UnalignedAccesses, 2u);
}

TEST(SimMemory, BssReadsAsZero) {
  Machine *M = nullptr;
  RunResult R = runAsm("lconst t0, 0x10004000\n ldq v0, 0(t0)\n halt\n", &M);
  ASSERT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(M->reg(isa::RegV0), 0u);
}

} // namespace
