//===- tests/ObsTraceTests.cpp - Cross-process request tracing ------------===//
//
// The tracing layer of docs/OBSERVABILITY.md ("Tracing"):
//
//  * obs::TraceContext — 128-bit ids, hex round-trips, the thread-local
//    current-context scope;
//  * obs::FlightRecorder — lock-free ring semantics (wrap, drop counting,
//    snapshot ordering) and the async-signal-safe JSON dump;
//  * trace rows — writeTraceRow/parseTraceRow round-trips, reply splicing,
//    and the Chrome trace_event export;
//  * the daemon end to end — one instrument request produces a stitched
//    trace tree whose client-minted trace id appears in daemon AND worker
//    records, with queue-wait/dispatch/pipeline/store segments, while the
//    reply binary stays byte-identical to standalone atom; protocol-v2
//    clients (no trace fields) still interoperate.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "atomd/Client.h"
#include "atomd/Daemon.h"
#include "obs/Json.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "tools/Tools.h"

#include <fstream>
#include <gtest/gtest.h>
#include <memory>
#include <set>
#include <unistd.h>

using namespace atom;
using namespace atom::atomd;
using namespace atom::obs;
using namespace atom::test;

namespace {

const char *AppA = R"(
int main() {
  long i;
  long sum = 0;
  for (i = 0; i < 25; i = i + 1)
    sum = sum + i;
  printf("sum %ld\n", sum);
  return 0;
}
)";

std::string atomdExe() { return std::string(ATOM_CLI_DIR) + "/atomd"; }

//===----------------------------------------------------------------------===//
// TraceContext
//===----------------------------------------------------------------------===//

TEST(ObsTrace, MintedContextsAreUniqueAndRoundTrip) {
  TraceContext A = TraceContext::mint();
  TraceContext B = TraceContext::mint();
  EXPECT_TRUE(A.valid());
  EXPECT_TRUE(B.valid());
  EXPECT_FALSE(A.Hi == B.Hi && A.Lo == B.Lo); // fresh ids every mint
  EXPECT_NE(A.SpanId, 0u);
  EXPECT_NE(A.SpanId, B.SpanId);

  std::string Hex = A.traceIdHex();
  ASSERT_EQ(Hex.size(), 32u);
  uint64_t Hi = 0, Lo = 0;
  ASSERT_TRUE(TraceContext::parseTraceId(Hex, Hi, Lo));
  EXPECT_EQ(Hi, A.Hi);
  EXPECT_EQ(Lo, A.Lo);

  uint64_t Span = 0;
  ASSERT_EQ(A.spanIdHex().size(), 16u);
  ASSERT_TRUE(TraceContext::parseHex64(A.spanIdHex(), Span));
  EXPECT_EQ(Span, A.SpanId);
}

TEST(ObsTrace, ParseRejectsMalformedIds) {
  uint64_t Hi = 7, Lo = 9, V = 5;
  EXPECT_FALSE(TraceContext::parseTraceId("", Hi, Lo));
  EXPECT_FALSE(TraceContext::parseTraceId(std::string(31, 'a'), Hi, Lo));
  EXPECT_FALSE(TraceContext::parseTraceId(std::string(33, 'a'), Hi, Lo));
  EXPECT_FALSE(TraceContext::parseTraceId(std::string(32, 'g'), Hi, Lo));
  EXPECT_EQ(Hi, 7u); // rejected parses never write
  EXPECT_EQ(Lo, 9u);
  EXPECT_FALSE(TraceContext::parseHex64("12345", V));
  EXPECT_FALSE(TraceContext::parseHex64(std::string(16, 'x'), V));
  EXPECT_EQ(V, 5u);

  TraceContext None;
  EXPECT_FALSE(None.valid());
  EXPECT_EQ(None.traceIdHex(), "");
}

TEST(ObsTrace, ScopeInstallsAndRestoresTheThreadContext) {
  TraceContext Outer = currentTrace(); // whatever the harness left
  TraceContext A = TraceContext::mint();
  {
    TraceScope SA(A);
    EXPECT_EQ(currentTrace().traceIdHex(), A.traceIdHex());
    TraceContext B = TraceContext::mint();
    {
      TraceScope SB(B);
      EXPECT_EQ(currentTrace().traceIdHex(), B.traceIdHex());
    }
    EXPECT_EQ(currentTrace().traceIdHex(), A.traceIdHex());
  }
  EXPECT_EQ(currentTrace().traceIdHex(), Outer.traceIdHex());
}

//===----------------------------------------------------------------------===//
// FlightRecorder ring
//===----------------------------------------------------------------------===//

TEST(ObsTrace, RingWrapsOldestFirstAndCountsDrops) {
  auto FR = std::make_unique<FlightRecorder>();
  TraceContext Ctx = TraceContext::mint();
  const size_t Extra = 100;
  for (size_t I = 0; I < FlightRecorder::Capacity + Extra; ++I)
    FR->recordSpan(Ctx, "w", int64_t(I), 1);
  EXPECT_EQ(FR->written(), FlightRecorder::Capacity + Extra);
  EXPECT_EQ(FR->dropped(), Extra);

  std::vector<FlightRecord> Recs = FR->snapshot();
  ASSERT_EQ(Recs.size(), FlightRecorder::Capacity);
  EXPECT_EQ(Recs.front().TsUs, int64_t(Extra)); // oldest survivor
  EXPECT_EQ(Recs.back().TsUs,
            int64_t(FlightRecorder::Capacity + Extra - 1));
}

TEST(ObsTrace, RecordsStampContextThreadAndTruncateNames) {
  auto FR = std::make_unique<FlightRecorder>();
  TraceContext Ctx = TraceContext::mint();
  std::string Long(100, 'n');
  FR->recordSpan(Ctx, Long.c_str(), 42, 7);
  FR->recordEvent(Ctx, "boom", /*Error=*/true);
  EXPECT_EQ(FR->dropped(), 0u);

  std::vector<FlightRecord> Recs = FR->snapshot();
  ASSERT_EQ(Recs.size(), 2u);
  EXPECT_EQ(Recs[0].TraceHi, Ctx.Hi);
  EXPECT_EQ(Recs[0].TraceLo, Ctx.Lo);
  EXPECT_EQ(Recs[0].Span, Ctx.SpanId);
  EXPECT_NE(Recs[0].Tid, 0u);
  EXPECT_EQ(Recs[0].RecKind, FlightRecord::KSpan);
  EXPECT_EQ(std::string(Recs[0].Name), std::string(38, 'n')); // truncated
  EXPECT_EQ(Recs[1].RecKind, FlightRecord::KError);
  EXPECT_EQ(std::string(Recs[1].Name), "boom");
}

TEST(ObsTrace, DumpToFdEmitsParseableJsonNamingTheCurrentTrace) {
  auto FR = std::make_unique<FlightRecorder>();
  TraceContext Ctx = TraceContext::mint();
  TraceScope Scope(Ctx); // the dump header names the thread's trace
  FR->recordSpan(Ctx, "phase", 10, 5);
  FR->recordEvent(Ctx, "boom", /*Error=*/true);

  char Path[] = "/tmp/atom-obstrace-XXXXXX";
  int Fd = ::mkstemp(Path);
  ASSERT_GE(Fd, 0);
  EXPECT_TRUE(FR->dumpToFd(Fd));
  ::close(Fd);

  std::ifstream In(Path);
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  ::unlink(Path);

  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(Text, V, Err)) << Err << "\n" << Text;
  EXPECT_EQ(V.str("postmortem"), "flight-recorder");
  EXPECT_EQ(V.str("trace_id"), Ctx.traceIdHex());
  EXPECT_EQ(V.u64("flightrec-dropped"), 0u);
  const json::Value *Recs = V.find("records");
  ASSERT_NE(Recs, nullptr);
  ASSERT_EQ(Recs->Items.size(), 2u);
  EXPECT_EQ(Recs->Items[0].str("name"), "phase");
  EXPECT_EQ(Recs->Items[0].str("kind"), "span");
  EXPECT_EQ(Recs->Items[0].u64("dur-us"), 5u);
  EXPECT_EQ(Recs->Items[0].str("trace"), Ctx.traceIdHex());
  EXPECT_EQ(Recs->Items[1].str("kind"), "error");
}

//===----------------------------------------------------------------------===//
// Trace rows
//===----------------------------------------------------------------------===//

TEST(ObsTrace, RowsFilterByTraceIdAndRoundTripAsJson) {
  TraceContext A = TraceContext::mint();
  TraceContext B = TraceContext::mint();
  auto FR = std::make_unique<FlightRecorder>();
  FR->recordSpan(A, "mine", 1, 2);
  FR->recordSpan(B, "theirs", 3, 4);

  std::vector<TraceRecordRow> Mine =
      rowsFromRecords(FR->snapshot(), "worker", A.Hi, A.Lo);
  ASSERT_EQ(Mine.size(), 1u);
  EXPECT_EQ(Mine[0].Name, "mine");
  EXPECT_EQ(Mine[0].Proc, "worker");
  std::vector<TraceRecordRow> All = rowsFromRecords(FR->snapshot(), "p");
  EXPECT_EQ(All.size(), 2u); // 0:0 keeps everything

  JsonWriter W;
  writeTraceRow(W, Mine[0]);
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(W.take(), V, Err)) << Err;
  TraceRecordRow Back;
  ASSERT_TRUE(parseTraceRow(V, Back));
  EXPECT_EQ(Back.Proc, Mine[0].Proc);
  EXPECT_EQ(Back.Name, Mine[0].Name);
  EXPECT_EQ(Back.Kind, Mine[0].Kind);
  EXPECT_EQ(Back.TsUs, Mine[0].TsUs);
  EXPECT_EQ(Back.DurUs, Mine[0].DurUs);
  EXPECT_EQ(Back.Hi, Mine[0].Hi);
  EXPECT_EQ(Back.Lo, Mine[0].Lo);
  EXPECT_EQ(Back.Span, Mine[0].Span);
}

TEST(ObsTrace, SpliceAppendsTraceWithoutBreakingTheDocument) {
  TraceContext Ctx = TraceContext::mint();
  TraceRecordRow Row;
  Row.Proc = "worker";
  Row.Name = "request";
  Row.Kind = "span";
  Row.DurUs = 11;
  Row.Hi = Ctx.Hi;
  Row.Lo = Ctx.Lo;

  std::string Json = "{\"id\":7,\"ok\":true}";
  spliceTraceIntoReply(Json, Ctx, {Row});
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(Json, V, Err)) << Err << "\n" << Json;
  EXPECT_EQ(V.u64("id"), 7u);
  EXPECT_EQ(V.str("trace_id"), Ctx.traceIdHex());
  const json::Value *TR = V.find("trace");
  ASSERT_NE(TR, nullptr);
  ASSERT_EQ(TR->Items.size(), 1u);
  EXPECT_EQ(TR->Items[0].str("name"), "request");

  // Non-object documents are left alone rather than corrupted.
  std::string NotDoc = "[1,2]";
  spliceTraceIntoReply(NotDoc, Ctx, {Row});
  EXPECT_EQ(NotDoc, "[1,2]");

  // An empty object reply must not grow a leading comma ("{,...}").
  for (const char *EmptyDoc : {"{}", "{ }", "{\n}"}) {
    std::string Empty = EmptyDoc;
    spliceTraceIntoReply(Empty, Ctx, {Row});
    json::Value EV;
    ASSERT_TRUE(json::parse(Empty, EV, Err)) << Err << "\n" << Empty;
    EXPECT_EQ(EV.str("trace_id"), Ctx.traceIdHex());
  }
}

TEST(ObsTrace, ChromeExportIsValidJsonWithPerProcessTracks) {
  TraceContext Ctx = TraceContext::mint();
  std::vector<TraceRecordRow> Rows(3);
  Rows[0] = {"client", "request", "span", 0, 50, 1, Ctx.Hi, Ctx.Lo, 1, 0};
  Rows[1] = {"daemon", "dispatch", "span", 5, 40, 2, Ctx.Hi, Ctx.Lo, 2, 1};
  Rows[2] = {"worker", "boom", "error", 9, 0, 3, Ctx.Hi, Ctx.Lo, 3, 2};

  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(chromeTraceJson(Rows), V, Err)) << Err;
  const json::Value *Ev = V.find("traceEvents");
  ASSERT_NE(Ev, nullptr);
  // Three process_name metadata events + three records.
  ASSERT_EQ(Ev->Items.size(), 6u);
  std::set<std::string> Names;
  unsigned Meta = 0, Complete = 0, Instant = 0;
  for (const json::Value &E : Ev->Items) {
    std::string Ph = E.str("ph");
    if (Ph == "M") {
      ++Meta;
      const json::Value *Args = E.find("args");
      ASSERT_NE(Args, nullptr);
      Names.insert(Args->str("name"));
    } else if (Ph == "X") {
      ++Complete;
      EXPECT_GT(E.u64("dur"), 0u);
    } else if (Ph == "i") {
      ++Instant;
    }
  }
  EXPECT_EQ(Meta, 3u);
  EXPECT_EQ(Complete, 2u);
  EXPECT_EQ(Instant, 1u);
  EXPECT_EQ(Names, (std::set<std::string>{"client", "daemon", "worker"}));
}

//===----------------------------------------------------------------------===//
// End to end through the daemon
//===----------------------------------------------------------------------===//

class ObsTraceFixture : public ::testing::Test {
protected:
  void SetUp() override {
    Name = ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Dir = ::testing::TempDir() + "atomtrace-" + Name;
    std::string Cmd = "rm -rf '" + Dir + "' && mkdir -p '" + Dir + "'";
    ASSERT_EQ(std::system(Cmd.c_str()), 0);
  }

  std::string socketPath() const { return Dir + "/d.sock"; }

  DaemonOptions isolateOptions() const {
    DaemonOptions O;
    O.SocketPath = socketPath();
    O.Isolate = true;
    O.WorkerExe = atomdExe();
    O.Jobs = 2;
    O.StoreDir = Dir + "/store";
    return O;
  }

  /// Fetches the stitched trace document for \p IdHex via the trace op.
  void fetchTrace(Client &Cl, const std::string &IdHex, json::Value &Doc) {
    JsonWriter W;
    W.beginObject();
    W.key("op");
    W.value("trace");
    W.key("id");
    W.value(Cl.nextId());
    W.key("trace");
    W.value(IdHex);
    W.endObject();
    Reply R;
    Frame F;
    std::string Err;
    ASSERT_TRUE(Cl.call(W.take(), {}, R, F, Err)) << Err;
    ASSERT_TRUE(R.Ok) << R.Error;
    const json::Value *T = R.Doc.find("trace");
    ASSERT_NE(T, nullptr);
    Doc = *T;
  }

  std::string Name, Dir;
};

TEST_F(ObsTraceFixture, OneRequestStitchesIntoOneCrossProcessTree) {
  Daemon D(isolateOptions());
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  std::vector<uint8_t> Bin = App.serialize();
  std::vector<uint8_t> Local =
      instrumentOrDie(App, *tools::findTool("prof")).Exe.serialize();

  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;

  // The client mints the trace; every hop must carry it.
  TraceContext Ctx = TraceContext::mint();
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(), "prof", "obs",
                                            AtomOptions(), 0, Ctx),
                      Bin, R, F, Err))
      << Err;
  ASSERT_TRUE(R.Ok) << R.Error;

  // Tracing never perturbs the artifact: byte-identical to standalone.
  EXPECT_EQ(F.Bin, Local);

  // The reply names our trace and carries the worker hop's records.
  EXPECT_EQ(R.TraceId, Ctx.traceIdHex());
  const json::Value *WT = R.Doc.find("trace");
  ASSERT_NE(WT, nullptr);
  ASSERT_FALSE(WT->Items.empty());
  bool SawRequestSpan = false;
  for (const json::Value &Row : WT->Items) {
    EXPECT_EQ(Row.str("trace_id"), Ctx.traceIdHex());
    EXPECT_EQ(Row.str("proc"), "worker");
    if (Row.str("name") == "request" && Row.str("kind") == "span")
      SawRequestSpan = true;
  }
  EXPECT_TRUE(SawRequestSpan);

  // The daemon's stitched view: one tree spanning both processes, every
  // record stamped with the same id, segments priced.
  json::Value Doc;
  fetchTrace(Cl, Ctx.traceIdHex(), Doc);
  EXPECT_EQ(Doc.str("trace_id"), Ctx.traceIdHex());
  EXPECT_EQ(Doc.str("tool"), "prof");
  EXPECT_EQ(Doc.str("outcome"), "ok");
  const json::Value *Seg = Doc.find("segments");
  ASSERT_NE(Seg, nullptr);
  ASSERT_NE(Seg->find("queue-wait-us"), nullptr);
  ASSERT_NE(Seg->find("dispatch-us"), nullptr);
  ASSERT_NE(Seg->find("store-io-us"), nullptr);
  EXPECT_GT(Seg->u64("pipeline-us"), 0u); // a cold build is never free
  EXPECT_GT(Doc.u64("total-us"), 0u);

  const json::Value *Recs = Doc.find("records");
  ASSERT_NE(Recs, nullptr);
  std::set<std::string> Procs;
  std::set<std::string> DaemonSpans;
  for (const json::Value &Row : Recs->Items) {
    EXPECT_EQ(Row.str("trace_id"), Ctx.traceIdHex());
    Procs.insert(Row.str("proc"));
    if (Row.str("proc") == "daemon")
      DaemonSpans.insert(Row.str("name"));
  }
  EXPECT_EQ(Procs, (std::set<std::string>{"daemon", "worker"}));
  EXPECT_TRUE(DaemonSpans.count("queue-wait"));
  EXPECT_TRUE(DaemonSpans.count("dispatch"));

  // tail lists the finished request, newest last.
  Reply TR;
  Frame TF;
  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "tail"), {}, TR, TF,
                      Err))
      << Err;
  ASSERT_TRUE(TR.Ok) << TR.Error;
  const json::Value *Ts = TR.Doc.find("traces");
  ASSERT_NE(Ts, nullptr);
  bool Listed = false;
  for (const json::Value &S : Ts->Items)
    if (S.str("trace_id") == Ctx.traceIdHex()) {
      Listed = true;
      EXPECT_EQ(S.str("outcome"), "ok");
    }
  EXPECT_TRUE(Listed);

  // Unknown ids are an explicit error, not an empty document.
  JsonWriter W;
  W.beginObject();
  W.key("op");
  W.value("trace");
  W.key("id");
  W.value(Cl.nextId());
  W.key("trace");
  W.value(std::string(32, 'f'));
  W.endObject();
  ASSERT_TRUE(Cl.call(W.take(), {}, TR, TF, Err)) << Err;
  EXPECT_FALSE(TR.Ok);
}

TEST_F(ObsTraceFixture, InProcessDaemonTracesWithoutAWorkerHop) {
  // In-process pipeline spans reach the flight recorder through obs::Span,
  // which records only while the registry is enabled — as the CLI daemon
  // always arranges (cli/atomd.cpp). Isolate mode needs no such setup
  // here because the worker process enables its own registry.
  obs::Registry::global().setEnabled(true);
  DaemonOptions O = isolateOptions();
  O.Isolate = false;
  O.WorkerExe.clear();
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  TraceContext Ctx = TraceContext::mint();
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(), "prof", "obs",
                                            AtomOptions(), 0, Ctx),
                      App.serialize(), R, F, Err))
      << Err;
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.TraceId, Ctx.traceIdHex());

  json::Value Doc;
  fetchTrace(Cl, Ctx.traceIdHex(), Doc);
  EXPECT_EQ(Doc.str("outcome"), "ok");
  const json::Value *Recs = Doc.find("records");
  ASSERT_NE(Recs, nullptr);
  bool SawRequest = false;
  for (const json::Value &Row : Recs->Items) {
    EXPECT_EQ(Row.str("proc"), "daemon"); // no worker process exists
    if (Row.str("name") == "request")
      SawRequest = true;
  }
  EXPECT_TRUE(SawRequest);
  const json::Value *Seg = Doc.find("segments");
  ASSERT_NE(Seg, nullptr);
  EXPECT_GT(Seg->u64("pipeline-us"), 0u);

  Registry::global().reset();
  Registry::global().setEnabled(false);
}

TEST_F(ObsTraceFixture, UntracedV2RequestsStillWorkAndGetServerIds) {
  Daemon D(isolateOptions());
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  std::vector<uint8_t> Local =
      instrumentOrDie(App, *tools::findTool("prof")).Exe.serialize();

  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  // A v2 client: no trace_id/parent_span in the header (the default
  // TraceContext is invalid, so makeInstrumentRequest omits them).
  std::string Req =
      makeInstrumentRequest(Cl.nextId(), "prof", "old", AtomOptions());
  EXPECT_EQ(Req.find("trace_id"), std::string::npos);
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.call(Req, App.serialize(), R, F, Err)) << Err;
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(F.Bin, Local);
  // The daemon minted ids on the old client's behalf.
  EXPECT_EQ(R.TraceId.size(), 32u);

  json::Value Doc;
  fetchTrace(Cl, R.TraceId, Doc);
  EXPECT_EQ(Doc.str("outcome"), "ok");
}

} // namespace
