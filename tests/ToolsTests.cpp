//===- tests/ToolsTests.cpp - Tool outputs vs. the simulator oracle -------===//
//
// The simulator's own statistics and trace hook are ground truth for what
// the instrumented tools measure: branch outcomes, memory references,
// unaligned accesses, system calls, dynamic instruction counts, calls.
// Each tool's output file is parsed and cross-checked.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "tools/Tools.h"
#include "workloads/Workloads.h"

#include <map>
#include <sstream>

using namespace atom;
using namespace atom::test;

namespace {

/// Parses "key value" lines into a map (values as signed 64-bit; hex
/// 0x-prefixed values supported).
std::map<std::string, int64_t> parseReport(const std::string &Text) {
  std::map<std::string, int64_t> Out;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Space = Line.rfind(' ');
    if (Space == std::string::npos)
      continue;
    std::string Key = Line.substr(0, Space);
    std::string Val = Line.substr(Space + 1);
    int64_t V = 0;
    if (Val.rfind("0x", 0) == 0)
      V = int64_t(strtoull(Val.c_str() + 2, nullptr, 16));
    else
      V = strtoll(Val.c_str(), nullptr, 10);
    Out[Key] = V;
  }
  return Out;
}

/// Ground truth computed from the simulator's reference trace. Counting
/// stops when control reaches __exit: that is where ProgramAfter hooks
/// print the tool reports, so events in the shutdown path (the exit
/// syscall itself, __exit's instructions) are after the measurement
/// window by construction.
struct OracleRun {
  sim::Stats Stats; ///< Event counts within the measurement window.
  std::string Stdout;
  uint64_t SizedRefs = 0;   ///< loads/stores with access size > 1
  uint64_t MallocCalls = 0; ///< dynamic bsr executions targeting malloc
};

OracleRun runOracle(const obj::Executable &App) {
  OracleRun O;
  sim::Machine M(App);
  int MallocSym = App.findSymbol("malloc");
  uint64_t MallocAddr =
      MallocSym >= 0 ? App.Symbols[size_t(MallocSym)].Value : 0;
  int ExitSym = App.findSymbol("__exit");
  uint64_t ExitAddr = ExitSym >= 0 ? App.Symbols[size_t(ExitSym)].Value : 0;
  bool Done = false;
  M.setTraceHook([&](const sim::TraceEvent &E) {
    if (Done || (ExitAddr && E.PC == ExitAddr)) {
      Done = true;
      return;
    }
    ++O.Stats.Instructions;
    if (isa::isLoad(E.I.Op))
      ++O.Stats.Loads;
    if (isa::isStore(E.I.Op))
      ++O.Stats.Stores;
    if (isa::isCondBranch(E.I.Op)) {
      ++O.Stats.CondBranches;
      if (E.Taken)
        ++O.Stats.TakenBranches;
    }
    if (isa::isCall(E.I.Op))
      ++O.Stats.Calls;
    if (E.I.Op == isa::Opcode::Callsys)
      ++O.Stats.Syscalls;
    if (isa::isMemRef(E.I.Op)) {
      unsigned Size = isa::memAccessSize(E.I.Op);
      if (Size > 1)
        ++O.SizedRefs;
      if (E.EffAddr & (Size - 1))
        ++O.Stats.UnalignedAccesses;
    }
    if (E.I.Op == isa::Opcode::Bsr && MallocAddr) {
      uint64_t Target = E.PC + 4 + uint64_t(int64_t(E.I.Disp)) * 4;
      if (Target == MallocAddr)
        ++O.MallocCalls;
    }
  });
  sim::RunResult R = M.run();
  EXPECT_EQ(R.Status, sim::RunStatus::Exited);
  O.Stdout = M.vfs().stdoutText();
  return O;
}

/// Runs tool \p ToolName on workload \p WorkloadName; returns the parsed
/// report plus the oracle of the uninstrumented run.
struct ToolRun {
  std::map<std::string, int64_t> Report;
  OracleRun Oracle;
  std::string RawReport;
  sim::Stats InstrStats;
};

ToolRun runTool(const char *ToolName, const char *WorkloadName,
                AtomOptions Opts = AtomOptions()) {
  const Tool *T = tools::findTool(ToolName);
  const workloads::Workload *W = workloads::findWorkload(WorkloadName);
  EXPECT_NE(T, nullptr);
  EXPECT_NE(W, nullptr);
  obj::Executable App = buildOrDie(W->Source);

  ToolRun TR;
  TR.Oracle = runOracle(App);

  InstrumentedProgram Out = instrumentOrDie(App, *T, Opts);
  sim::Machine M(Out.Exe);
  sim::RunResult R = M.run();
  EXPECT_TRUE(R.exitedWith(0)) << R.FaultMessage;
  EXPECT_EQ(M.vfs().stdoutText(), TR.Oracle.Stdout);
  TR.RawReport = M.vfs().fileContents(std::string(ToolName) + ".out");
  TR.Report = parseReport(TR.RawReport);
  TR.InstrStats = M.stats();
  return TR;
}

//===----------------------------------------------------------------------===//
// branch
//===----------------------------------------------------------------------===//

class BranchOracle : public ::testing::TestWithParam<const char *> {};

TEST_P(BranchOracle, CountsMatchSimulator) {
  ToolRun TR = runTool("branch", GetParam());
  EXPECT_EQ(uint64_t(TR.Report["taken"]), TR.Oracle.Stats.TakenBranches);
  EXPECT_EQ(uint64_t(TR.Report["taken"] + TR.Report["nottaken"]),
            TR.Oracle.Stats.CondBranches);
  // A 2-bit predictor must beat always-wrong and can't beat perfect.
  EXPECT_GE(TR.Report["mispredicted"], 0);
  EXPECT_LE(uint64_t(TR.Report["mispredicted"]),
            TR.Oracle.Stats.CondBranches);
}

INSTANTIATE_TEST_SUITE_P(Workloads, BranchOracle,
                         ::testing::Values("fib", "qsort", "sieve",
                                           "dijkstra"));

TEST(BranchPredictor, LearnsLoopBranches) {
  // A long-running loop branch is highly predictable: misprediction rate
  // must be far below 50%.
  ToolRun TR = runTool("branch", "crc");
  double Total = double(TR.Report["taken"] + TR.Report["nottaken"]);
  EXPECT_LT(double(TR.Report["mispredicted"]), 0.25 * Total)
      << TR.RawReport;
}

//===----------------------------------------------------------------------===//
// cache
//===----------------------------------------------------------------------===//

class CacheOracle : public ::testing::TestWithParam<const char *> {};

TEST_P(CacheOracle, ReferencesMatchSimulator) {
  ToolRun TR = runTool("cache", GetParam());
  EXPECT_EQ(uint64_t(TR.Report["references"]),
            TR.Oracle.Stats.Loads + TR.Oracle.Stats.Stores);
  EXPECT_EQ(TR.Report["references"],
            TR.Report["hits"] + TR.Report["misses"]);
  EXPECT_GT(TR.Report["hits"], 0);
  EXPECT_GT(TR.Report["misses"], 0);
}

INSTANTIATE_TEST_SUITE_P(Workloads, CacheOracle,
                         ::testing::Values("matmul", "list", "crc"));

TEST(CacheModel, SequentialScanHasHighHitRate) {
  // crc streams sequentially over 16 KB: with 32-byte lines the miss rate
  // on data accesses should be low.
  ToolRun TR = runTool("cache", "crc");
  EXPECT_GT(TR.Report["hits"], TR.Report["misses"] * 3) << TR.RawReport;
}

//===----------------------------------------------------------------------===//
// dyninst
//===----------------------------------------------------------------------===//

class DyninstOracle : public ::testing::TestWithParam<const char *> {};

TEST_P(DyninstOracle, DynamicCountsMatchSimulator) {
  ToolRun TR = runTool("dyninst", GetParam());
  EXPECT_EQ(uint64_t(TR.Report["dynamic-insts"]),
            TR.Oracle.Stats.Instructions);
  EXPECT_EQ(uint64_t(TR.Report["dynamic-memrefs"]),
            TR.Oracle.Stats.Loads + TR.Oracle.Stats.Stores);
  EXPECT_GT(TR.Report["blocks-executed"], 0);
  EXPECT_LE(TR.Report["blocks-executed"], TR.Report["blocks"]);
}

INSTANTIATE_TEST_SUITE_P(Workloads, DyninstOracle,
                         ::testing::Values("fib", "bubble", "fft"));

//===----------------------------------------------------------------------===//
// unalign
//===----------------------------------------------------------------------===//

TEST(UnalignOracle, FindsExactlyTheUnalignedAccesses) {
  ToolRun TR = runTool("unalign", "unaligned");
  EXPECT_EQ(uint64_t(TR.Report["accesses"]), TR.Oracle.SizedRefs);
  EXPECT_EQ(uint64_t(TR.Report["unaligned"]),
            TR.Oracle.Stats.UnalignedAccesses);
  EXPECT_GT(TR.Report["unaligned"], 0);
  EXPECT_GT(TR.Report["first-unaligned-pc"], 0);
}

TEST(UnalignOracle, CleanWorkloadHasNone) {
  ToolRun TR = runTool("unalign", "sieve");
  EXPECT_EQ(TR.Report["unaligned"], 0) << TR.RawReport;
  EXPECT_EQ(uint64_t(TR.Report["accesses"]), TR.Oracle.SizedRefs);
}

//===----------------------------------------------------------------------===//
// syscall
//===----------------------------------------------------------------------===//

TEST(SyscallOracle, TotalsMatchSimulator) {
  ToolRun TR = runTool("syscall", "iobound");
  EXPECT_EQ(uint64_t(TR.Report["syscalls"]), TR.Oracle.Stats.Syscalls);
  // iobound opens, writes repeatedly, closes. The exit syscall happens
  // after the ProgramAfter report is printed, so it is not in the report.
  EXPECT_EQ(TR.Report["sysno 4 count"], 1);  // open
  EXPECT_EQ(TR.Report["sysno 5 count"], 1);  // close
  EXPECT_GT(TR.Report["sysno 3 count"], 10); // write
  EXPECT_EQ(TR.Report["sysno 1 count"], 0);  // exit: post-report
}

//===----------------------------------------------------------------------===//
// malloc
//===----------------------------------------------------------------------===//

TEST(MallocOracle, CountsEveryAllocation) {
  ToolRun TR = runTool("malloc", "mallocmix");
  EXPECT_EQ(uint64_t(TR.Report["calls"]), TR.Oracle.MallocCalls);
  EXPECT_EQ(TR.Report["calls"], 1024); // 4 rounds x 256 allocations
  EXPECT_GT(TR.Report["bytes"], 1024 * 8);
}

TEST(MallocOracle, HistogramCoversAllCalls) {
  ToolRun TR = runTool("malloc", "hash");
  int64_t HistTotal = 0;
  for (const auto &[K, V] : TR.Report)
    if (K.rfind("class ", 0) == 0)
      HistTotal += V;
  EXPECT_EQ(HistTotal, TR.Report["calls"]) << TR.RawReport;
  EXPECT_EQ(uint64_t(TR.Report["calls"]), TR.Oracle.MallocCalls);
}

//===----------------------------------------------------------------------===//
// io
//===----------------------------------------------------------------------===//

TEST(IoOracle, ByteCountsMatchOutput) {
  ToolRun TR = runTool("io", "iobound");
  // Everything requested was written, and it equals stdout + the file.
  EXPECT_EQ(TR.Report["bytes-requested"], TR.Report["bytes-written"]);
  sim::Machine M(buildOrDie(workloads::findWorkload("iobound")->Source));
  ASSERT_TRUE(M.run().exitedWith(0));
  int64_t Expected = int64_t(M.vfs().stdoutText().size() +
                             M.vfs().fileContents("iobound.tmp").size());
  EXPECT_EQ(TR.Report["bytes-written"], Expected);
  EXPECT_GT(TR.Report["write-calls"], 100);
}

//===----------------------------------------------------------------------===//
// pipe
//===----------------------------------------------------------------------===//

class PipeOracle : public ::testing::TestWithParam<const char *> {};

TEST_P(PipeOracle, CycleAccounting) {
  ToolRun TR = runTool("pipe", GetParam());
  EXPECT_EQ(uint64_t(TR.Report["insts"]), TR.Oracle.Stats.Instructions);
  EXPECT_GE(TR.Report["cycles"], TR.Report["insts"]);
  EXPECT_EQ(TR.Report["stalls"], TR.Report["cycles"] - TR.Report["insts"]);
  EXPECT_GE(TR.Report["cpi-x100"], 100);
}

INSTANTIATE_TEST_SUITE_P(Workloads, PipeOracle,
                         ::testing::Values("matmul", "bitops"));

//===----------------------------------------------------------------------===//
// prof / gprof
//===----------------------------------------------------------------------===//

TEST(ProfOracle, TotalsMatchSimulator) {
  ToolRun TR = runTool("prof", "fib");
  EXPECT_EQ(uint64_t(TR.Report["total-insts"]),
            TR.Oracle.Stats.Instructions);
}

TEST(GprofOracle, ArcsAndCalls) {
  ToolRun TR = runTool("gprof", "fib");
  // fib(18): fib is entered fib-call-count times; main once. Identify
  // procs by scanning the report for plausible counts.
  // The self-recursive arc for fib must dominate.
  int64_t MaxArc = 0;
  for (const auto &[K, V] : TR.Report)
    if (K.rfind("arc ", 0) == 0)
      MaxArc = std::max(MaxArc, V);
  // fib(18) performs 8361 calls of fib total; 8360 of them recursive.
  EXPECT_EQ(MaxArc, 8360) << TR.RawReport;
}

//===----------------------------------------------------------------------===//
// inline
//===----------------------------------------------------------------------===//

TEST(InlineOracle, SiteCountsSumToDynamicCalls) {
  ToolRun TR = runTool("inline", "tree");
  // Sum of per-site counts == dynamic calls in the uninstrumented run.
  int64_t Sum = 0;
  std::istringstream In(TR.RawReport);
  std::string Line;
  bool SawCandidate = false;
  while (std::getline(In, Line)) {
    size_t P = Line.find("count ");
    if (P == std::string::npos)
      continue;
    Sum += strtoll(Line.c_str() + P + 6, nullptr, 10);
    if (Line.find("INLINE-CANDIDATE") != std::string::npos)
      SawCandidate = true;
  }
  EXPECT_EQ(uint64_t(Sum), TR.Oracle.Stats.Calls) << TR.RawReport;
  EXPECT_TRUE(SawCandidate) << TR.RawReport;
}

//===----------------------------------------------------------------------===//
// Optimization presets: byte-identical reports at O0/O1/O2, interpreted
// and DBT-translated (docs/EXPERIMENTS.md E7)
//===----------------------------------------------------------------------===//

/// A workload that exercises each tool's instrumentation points (malloc
/// wants allocations, io/syscall want write traffic, the rest get a
/// branch/memory/call mix).
const char *matrixWorkloadFor(const std::string &ToolName) {
  if (ToolName == "malloc")
    return "mallocmix";
  if (ToolName == "io" || ToolName == "syscall")
    return "iobound";
  return "qsort";
}

class OptPresetMatrix : public ::testing::TestWithParam<const char *> {};

TEST_P(OptPresetMatrix, ReportsByteIdenticalAcrossPresetsAndDbt) {
  const Tool *T = tools::findTool(GetParam());
  ASSERT_NE(T, nullptr);
  const char *WName = matrixWorkloadFor(T->Name);
  obj::Executable App =
      buildOrDie(workloads::findWorkload(WName)->Source);

  sim::Machine Base(App);
  ASSERT_TRUE(Base.run().exitedWith(0));
  const std::string BaseStdout = Base.vfs().stdoutText();

  const AtomOptions::OptPreset Presets[] = {AtomOptions::OptPreset::O0,
                                            AtomOptions::OptPreset::O1,
                                            AtomOptions::OptPreset::O2};
  std::string Reference; // the O0 interpreter report
  for (AtomOptions::OptPreset P : Presets) {
    AtomOptions Opts;
    Opts.Opt = P;
    InstrumentedProgram Out = instrumentOrDie(App, *T, Opts);
    for (bool Dbt : {false, true}) {
      sim::MachineOptions MO;
      MO.EnableDbt = Dbt;
      MO.DbtThreshold = 0; // translate everything when the tier is on
      sim::Machine M(Out.Exe, MO);
      sim::RunResult R = M.run();
      ASSERT_TRUE(R.exitedWith(0))
          << T->Name << " preset " << optPresetName(Opts.Opt)
          << (Dbt ? " dbt" : " interp") << ": " << R.FaultMessage;
      EXPECT_EQ(M.vfs().stdoutText(), BaseStdout) << T->Name;
      std::string Report =
          M.vfs().fileContents(std::string(T->Name) + ".out");
      EXPECT_FALSE(Report.empty()) << T->Name;
      if (Reference.empty())
        Reference = Report;
      else
        EXPECT_EQ(Report, Reference)
            << T->Name << " preset " << optPresetName(Opts.Opt)
            << (Dbt ? " dbt" : " interp");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTools, OptPresetMatrix,
                         ::testing::Values("branch", "cache", "dyninst",
                                           "gprof", "inline", "io",
                                           "malloc", "pipe", "prof",
                                           "syscall", "unalign"));

TEST(OptPresetMatrix, O2ActuallyOptimizes) {
  // The preset must do real work where it applies: cache's handler is
  // branchy-inlined at every reference site, and O2 must strictly cut the
  // dynamic instruction count versus O0.
  const Tool *T = tools::findTool("cache");
  obj::Executable App = buildOrDie(workloads::findWorkload("qsort")->Source);
  AtomOptions O0;
  O0.Opt = AtomOptions::OptPreset::O0;
  AtomOptions O2;
  O2.Opt = AtomOptions::OptPreset::O2;
  InstrumentedProgram A = instrumentOrDie(App, *T, O0);
  InstrumentedProgram B = instrumentOrDie(App, *T, O2);
  EXPECT_EQ(A.Stats.ProbeInlinedSites, 0u);
  EXPECT_GT(B.Stats.ProbeInlinedSites, 0u);
  sim::Machine MA(A.Exe), MB(B.Exe);
  ASSERT_TRUE(MA.run().exitedWith(0));
  ASSERT_TRUE(MB.run().exitedWith(0));
  EXPECT_LT(MB.stats().Instructions, MA.stats().Instructions);
  EXPECT_EQ(MA.vfs().fileContents("cache.out"),
            MB.vfs().fileContents("cache.out"));
}

//===----------------------------------------------------------------------===//
// Suite shape (Figure 5's tool list)
//===----------------------------------------------------------------------===//

TEST(ToolSuite, MatchesThePaper) {
  const char *Expected[] = {"branch", "cache", "dyninst", "gprof",
                            "inline", "io",    "malloc",  "pipe",
                            "prof",   "syscall", "unalign"};
  ASSERT_EQ(tools::allTools().size(), 11u);
  for (size_t I = 0; I < 11; ++I)
    EXPECT_EQ(tools::allTools()[I].Name, Expected[I]);
  EXPECT_EQ(tools::findTool("nope"), nullptr);
}

} // namespace
