//===- tests/ProbeOptTests.cpp - Optimizing probe codegen planners --------===//
//
// Unit tests for the --opt=O2 planners (src/atom/ProbeOpt.h): which
// analysis-routine shapes the branching inliner accepts, the precise
// reason each ineligible shape is rejected (the atom.probe-reject-*
// taxonomy), and guard-hoist eligibility. Bodies are assembled from the
// same hand-written-asm surface the real hot handlers use.
//
//===----------------------------------------------------------------------===//

#include "atom/Driver.h"
#include "atom/ProbeOpt.h"
#include "om/DataFlow.h"

#include "TestUtil.h"

using namespace atom;
using namespace atom::test;
using namespace atom::probeopt;

namespace {

/// Assembles \p Asm (plus optional mini-C \p MiniC) into an analysis unit
/// exactly as the pipeline would — linked with the runtime, lifted to om
/// IR — and returns it with its data-flow result.
struct AnalysisFixture {
  om::Unit Unit;
  om::DataFlowResult DF;

  AnalysisFixture(const std::string &Asm, const std::string &MiniC = "") {
    Tool T;
    T.Name = "probeopt-test";
    if (!MiniC.empty())
      T.AnalysisSources.push_back(MiniC);
    if (!Asm.empty())
      T.AnalysisAsmSources.push_back(Asm);
    std::vector<obj::ObjectModule> Mods;
    DiagEngine Diags;
    if (!compileAnalysisModules(T, Mods, Diags) ||
        !buildAnalysisUnit(Mods, Unit, Diags)) {
      ADD_FAILURE() << "analysis unit failed to build:\n" << Diags.str();
      abort();
    }
    DF = om::computeDataFlow(Unit);
  }

  Reject plan(const char *Proc, unsigned NumArgs, InlinePlan &Plan,
              unsigned Limit = 48) {
    auto It = Unit.ProcByName.find(Proc);
    if (It == Unit.ProcByName.end()) {
      ADD_FAILURE() << "no procedure '" << Proc << "' in analysis unit";
      abort();
    }
    return planInline(Unit, It->second, NumArgs, Limit, DF, Plan);
  }

  Reject guard(const char *Proc, GuardPlan &Plan) {
    const om::Procedure *P = Unit.findProc(Proc);
    if (!P) {
      ADD_FAILURE() << "no procedure '" << Proc << "' in analysis unit";
      abort();
    }
    return planGuard(*P, Plan);
  }
};

/// Globals live in the asm module itself so no mini-C companion is needed.
const char *DataCell = R"(
        .data
pocell: .quad   0
posave: .quad   0
)";

std::string withData(const std::string &Text) {
  return Text + DataCell;
}

TEST(ProbeOptInline, AcceptsStraightLineBodyAndFoldsLiteralArg) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoAdd
        .globl  PoAdd
PoAdd:
        laddr   t0, pocell
        ldq     t1, 0(t0)
        addq    t1, a0, t1
        stq     t1, 0(t0)
        ret
        .end    PoAdd
)"));
  InlinePlan P;
  ASSERT_EQ(F.plan("PoAdd", 1, P), Reject::None);
  // laddr expands to ldah+lda, so the body is six elements ending in ret.
  ASSERT_EQ(P.Elems.size(), 6u);
  EXPECT_TRUE(P.Elems.back().IsRet);
  EXPECT_FALSE(P.HasColdCall);
  EXPECT_EQ(P.UsedArgs, 1u);
  // a0 is only ever the Rb of a non-literal addq: a small-constant actual
  // can be folded into the copied body as a literal.
  EXPECT_EQ(P.FoldableArgs, 1u);
  EXPECT_TRUE(P.BodyMod & (1u << isa::RegT0));
  EXPECT_TRUE(P.BodyMod & (1u << isa::RegT1));
  EXPECT_FALSE(P.BodyMod & (1u << isa::RegRA));
}

TEST(ProbeOptInline, AcceptsForwardBranches) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoBr
        .globl  PoBr
PoBr:
        beq     a0, PoBr$skip
        laddr   t0, pocell
        ldq     t1, 0(t0)
        addq    t1, #1, t1
        stq     t1, 0(t0)
PoBr$skip:
        ret
        .end    PoBr
)"));
  InlinePlan P;
  ASSERT_EQ(F.plan("PoBr", 1, P), Reject::None);
  ASSERT_FALSE(P.Elems.empty());
  // The branch resolves to an intra-body element index (the final ret).
  EXPECT_EQ(P.Elems[0].BranchTo, int(P.Elems.size() - 1));
  EXPECT_EQ(P.UsedArgs, 1u);
  // Read by a branch, not an operate Rb: not foldable.
  EXPECT_EQ(P.FoldableArgs, 0u);
}

TEST(ProbeOptInline, RejectsSevenArguments) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoNop
        .globl  PoNop
PoNop:
        ret
        .end    PoNop
)"));
  InlinePlan P;
  EXPECT_EQ(F.plan("PoNop", 7, P), Reject::TooManyArgs);
}

TEST(ProbeOptInline, RejectsBodyOverTheInlineLimit) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoAdd
        .globl  PoAdd
PoAdd:
        laddr   t0, pocell
        ldq     t1, 0(t0)
        addq    t1, a0, t1
        stq     t1, 0(t0)
        ret
        .end    PoAdd
)"));
  InlinePlan P;
  EXPECT_EQ(F.plan("PoAdd", 1, P, /*Limit=*/2), Reject::TooBig);
}

TEST(ProbeOptInline, RejectsBackwardBranches) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoLoop
        .globl  PoLoop
PoLoop:
        lda     t0, 4(zero)
PoLoop$top:
        subq    t0, #1, t0
        bne     t0, PoLoop$top
        ret
        .end    PoLoop
)"));
  InlinePlan P;
  EXPECT_EQ(F.plan("PoLoop", 0, P), Reject::BackwardBranch);
}

TEST(ProbeOptInline, RejectsSyscalls) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoSys
        .globl  PoSys
PoSys:
        lda     v0, 1(zero)
        callsys
        ret
        .end    PoSys
)"));
  InlinePlan P;
  EXPECT_EQ(F.plan("PoSys", 0, P), Reject::Syscall);
}

TEST(ProbeOptInline, RejectsIndirectFlow) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoJmp
        .globl  PoJmp
PoJmp:
        laddr   t0, pocell
        jmp     (t0)
        .end    PoJmp
)"));
  InlinePlan P;
  EXPECT_EQ(F.plan("PoJmp", 0, P), Reject::IndirectFlow);
}

TEST(ProbeOptInline, RejectsStackUse) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoStack
        .globl  PoStack
PoStack:
        ldq     t0, 0(sp)
        ret
        .end    PoStack
)"));
  InlinePlan P;
  EXPECT_EQ(F.plan("PoStack", 0, P), Reject::StackUse);
}

TEST(ProbeOptInline, RejectsReadsOfUndefinedRegisters) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoUndef
        .globl  PoUndef
PoUndef:
        addq    t5, #1, t0
        ret
        .end    PoUndef
)"));
  InlinePlan P;
  EXPECT_EQ(F.plan("PoUndef", 0, P), Reject::ReadsUndefined);
}

TEST(ProbeOptInline, RejectsWritesToCalleeSavedRegisters) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoProt
        .globl  PoProt
PoProt:
        lda     s0, 1(zero)
        ret
        .end    PoProt
)"));
  InlinePlan P;
  EXPECT_EQ(F.plan("PoProt", 0, P), Reject::WritesProtected);
}

/// The trace handlers' cold-call shape: spill ra to a cell, bsr, reload.
/// The idiom is value-preserving in both the called and the inlined world,
/// so the bsr's bracket omits ra and ra stays out of BodyMod.
TEST(ProbeOptInline, RecognizesTheRaSpillIdiomAroundColdCalls) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoCold
        .globl  PoCold
PoCold:
        laddr   t0, posave
        stq     ra, 0(t0)
        bsr     PoCallee
        laddr   t0, posave
        ldq     ra, 0(t0)
        ret
        .end    PoCold

        .ent    PoCallee
        .globl  PoCallee
PoCallee:
        lda     t2, 1(zero)
        ret
        .end    PoCallee
)"));
  InlinePlan P;
  ASSERT_EQ(F.plan("PoCold", 0, P), Reject::None);
  EXPECT_TRUE(P.HasColdCall);
  const InlineElem *Call = nullptr;
  for (const InlineElem &E : P.Elems)
    if (E.IsCall)
      Call = &E;
  ASSERT_NE(Call, nullptr);
  EXPECT_TRUE(Call->RaProtected);
  EXPECT_TRUE(Call->CalleeTransMod & (1u << isa::RegT2));
  EXPECT_FALSE(P.BodyMod & (1u << isa::RegRA));
}

TEST(ProbeOptInline, RejectsReadsOfCallClobberedRegisters) {
  AnalysisFixture F(withData(R"(
        .text
        .ent    PoCcr
        .globl  PoCcr
PoCcr:
        lda     t2, 5(zero)
        laddr   t0, posave
        stq     ra, 0(t0)
        bsr     PoCallee
        laddr   t0, posave
        ldq     ra, 0(t0)
        addq    t2, #1, t2
        ret
        .end    PoCcr

        .ent    PoCallee
        .globl  PoCallee
PoCallee:
        lda     t2, 1(zero)
        ret
        .end    PoCallee
)"));
  InlinePlan P;
  // PoCallee clobbers t2; at the inlined site the bracket restores the
  // application's t2, so the read after the bsr would observe the wrong
  // world's value.
  EXPECT_EQ(F.plan("PoCcr", 0, P), Reject::CallClobberRead);
}

TEST(ProbeOptGuard, HoistsALeadingTestAndSkipPredicate) {
  AnalysisFixture F("", R"(
long genabled;
long gcount;

void GuardCount(long n) {
  if (genabled == 0)
    return;
  gcount = gcount + n;
}
)");
  GuardPlan G;
  ASSERT_EQ(F.guard("GuardCount", G), Reject::None);
  EXPECT_FALSE(G.Pred.empty());
  EXPECT_TRUE(isa::isCondBranch(G.Branch.Op));
  EXPECT_NE(G.PredMod, 0u);
  // The predicate is pure: loads and arithmetic only, nothing touching sp.
  for (const om::InstNode &N : G.Pred) {
    EXPECT_FALSE(isa::isStore(N.I.Op));
    EXPECT_FALSE(isa::isControlTransfer(N.I.Op));
  }
}

TEST(ProbeOptGuard, RejectsBodiesWithoutAPredicate) {
  AnalysisFixture F("", R"(
long gsum;

void NoGuard(long n) {
  gsum = gsum + n;
}
)");
  GuardPlan G;
  EXPECT_EQ(F.guard("NoGuard", G), Reject::NotGuardable);
}

TEST(ProbeOpt, InvertsConditionalBranches) {
  using isa::Opcode;
  EXPECT_EQ(invertCondBranch(Opcode::Beq), Opcode::Bne);
  EXPECT_EQ(invertCondBranch(Opcode::Bne), Opcode::Beq);
  EXPECT_EQ(invertCondBranch(Opcode::Blt), Opcode::Bge);
  EXPECT_EQ(invertCondBranch(Opcode::Bge), Opcode::Blt);
  EXPECT_EQ(invertCondBranch(Opcode::Ble), Opcode::Bgt);
  EXPECT_EQ(invertCondBranch(Opcode::Bgt), Opcode::Ble);
  EXPECT_EQ(invertCondBranch(Opcode::Blbc), Opcode::Blbs);
  EXPECT_EQ(invertCondBranch(Opcode::Blbs), Opcode::Blbc);
}

TEST(ProbeOpt, RejectNamesAreStableAndKebabCase) {
  EXPECT_STREQ(rejectName(Reject::BackwardBranch), "backward-branch");
  EXPECT_STREQ(rejectName(Reject::CallClobberRead), "call-clobber-read");
  for (unsigned R = 1; R < NumRejectReasons; ++R) {
    const char *N = rejectName(Reject(R));
    ASSERT_NE(N, nullptr);
    for (const char *C = N; *C; ++C)
      EXPECT_TRUE((*C >= 'a' && *C <= 'z') || *C == '-') << N;
  }
}

} // namespace
