//===- tests/FaultTests.cpp - Precise traps, protection, recovery ---------===//
//
// Covers the fault subsystem end to end: one test per trap kind, memory
// protection (null page, read-only text, stack guard), crash-surviving
// analysis (a trapped instrumented program still emits its report, with
// the fault PC translated to uninstrumented addresses), deterministic
// fault injection, and a decoder fuzz smoke test.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "asm/Assembler.h"
#include "atom/Recovery.h"
#include "link/Linker.h"
#include "runtime/Runtime.h"
#include "sim/Inject.h"
#include "tools/Tools.h"
#include "trace/Atf.h"
#include "trace/TraceSink.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

using namespace atom;
using namespace atom::sim;
using namespace atom::test;

namespace {

/// Assembles \p Body into a standalone 'start' procedure (no runtime) and
/// runs it under \p Opts.
RunResult runAsm(const std::string &Body,
                 const MachineOptions &Opts = MachineOptions(),
                 std::unique_ptr<Machine> *Keep = nullptr) {
  std::string Src = "        .text\n        .ent start\n"
                    "        .globl start\nstart:\n" +
                    Body + "        .end start\n";
  DiagEngine Diags;
  obj::ObjectModule M;
  if (!assembler::assemble(Src, "t", M, Diags)) {
    ADD_FAILURE() << "assembly failed:\n" << Diags.str() << "\n" << Src;
    abort();
  }
  obj::Executable Exe;
  link::LinkOptions LOpts;
  LOpts.EntrySymbol = "start";
  if (!link::linkExecutable({M}, Exe, Diags, LOpts)) {
    ADD_FAILURE() << "link failed:\n" << Diags.str();
    abort();
  }
  auto Mach = std::make_unique<Machine>(Exe, Opts);
  RunResult R = Mach->run(1'000'000);
  if (Keep)
    *Keep = std::move(Mach);
  return R;
}

/// Assembles a full application (the module must define main) and links
/// it with the runtime, like buildApplication does for mini-C.
obj::Executable buildAsmApp(const std::string &Src) {
  DiagEngine Diags;
  obj::ObjectModule M;
  if (!assembler::assemble(Src, "app", M, Diags)) {
    ADD_FAILURE() << "assembly failed:\n" << Diags.str();
    abort();
  }
  std::vector<obj::ObjectModule> Modules{M};
  for (const obj::ObjectModule &R : runtime::modules())
    Modules.push_back(R);
  obj::Executable Exe;
  if (!link::linkExecutable(Modules, Exe, Diags)) {
    ADD_FAILURE() << "link failed:\n" << Diags.str();
    abort();
  }
  return Exe;
}

//===----------------------------------------------------------------------===//
// Trap taxonomy: one test per kind, with kind + faulting address checked.
//===----------------------------------------------------------------------===//

TEST(Traps, StoreToNullTraps) {
  RunResult R = runAsm("clr t0\n stq t1, 0(t0)\n halt\n");
  ASSERT_EQ(R.Status, RunStatus::Trap) << R.FaultMessage;
  EXPECT_EQ(R.Trap, TrapKind::UnmappedAccess);
  EXPECT_EQ(R.FaultAddr, 0u);
  EXPECT_NE(R.FaultMessage.find("store"), std::string::npos);
}

TEST(Traps, LoadFromUnmappedTraps) {
  RunResult R = runAsm("lconst t0, 0x03000000\n ldq t1, 0(t0)\n halt\n");
  ASSERT_EQ(R.Status, RunStatus::Trap);
  EXPECT_EQ(R.Trap, TrapKind::UnmappedAccess);
  EXPECT_EQ(R.FaultAddr, 0x03000000u);
  EXPECT_NE(R.FaultMessage.find("load"), std::string::npos);
}

TEST(Traps, StoreToTextTraps) {
  RunResult R = runAsm("lconst t0, 0x02000000\n stq t1, 0(t0)\n halt\n");
  ASSERT_EQ(R.Status, RunStatus::Trap);
  EXPECT_EQ(R.Trap, TrapKind::WriteProtected);
  EXPECT_EQ(R.FaultAddr, obj::DefaultTextStart);
}

TEST(Traps, TextIsReadable) {
  RunResult R = runAsm("lconst t0, 0x02000000\n ldq t1, 0(t0)\n halt\n");
  EXPECT_EQ(R.Status, RunStatus::Halted) << R.FaultMessage;
}

TEST(Traps, StackGuardPageTraps) {
  // The guard page sits just below StackStart - StackMaxBytes:
  // [0x02000000 - 8MB - 8KB, 0x02000000 - 8MB).
  uint64_t Guard = obj::DefaultTextStart - 8 * 1024 * 1024 - 16;
  std::string Body =
      formatString("lconst t0, 0x%llx\n stq t1, 0(t0)\n halt\n",
                   (unsigned long long)Guard);
  RunResult R = runAsm(Body);
  ASSERT_EQ(R.Status, RunStatus::Trap);
  EXPECT_EQ(R.Trap, TrapKind::StackGuard);
  EXPECT_EQ(R.FaultAddr, Guard);
}

TEST(Traps, CachedRegionDoesNotLeakPermissions) {
  // A valid stack store caches the RW stack region in the fast path; a
  // following store above that region's End (read-only text here) must
  // fall through to the slow path and trap, not inherit the cached
  // RW permissions via an End - Addr underflow.
  RunResult R = runAsm("stq t1, -8(sp)\n"
                       "        lconst t0, 0x02000000\n"
                       "        stq t1, 0(t0)\n halt\n");
  ASSERT_EQ(R.Status, RunStatus::Trap) << R.FaultMessage;
  EXPECT_EQ(R.Trap, TrapKind::WriteProtected);
  EXPECT_EQ(R.FaultAddr, obj::DefaultTextStart);
}

TEST(Traps, DeepStackIsUsable) {
  // Well inside the 8 MB stack window: no trap.
  uint64_t Deep = obj::DefaultTextStart - 4 * 1024 * 1024;
  std::string Body =
      formatString("lconst t0, 0x%llx\n stq t1, 0(t0)\n halt\n",
                   (unsigned long long)Deep);
  RunResult R = runAsm(Body);
  EXPECT_EQ(R.Status, RunStatus::Halted) << R.FaultMessage;
}

TEST(Traps, UnalignedTrapsOnlyWhenStrict) {
  std::string Body = "lconst t0, 0x10000001\n ldq t1, 0(t0)\n halt\n";
  EXPECT_EQ(runAsm(Body).Status, RunStatus::Halted);

  MachineOptions Strict;
  Strict.StrictAlignment = true;
  RunResult R = runAsm(Body, Strict);
  ASSERT_EQ(R.Status, RunStatus::Trap);
  EXPECT_EQ(R.Trap, TrapKind::Unaligned);
  EXPECT_EQ(R.FaultAddr, 0x10000001u);
}

TEST(Traps, DivideByZeroTrapsOnlyWhenOptedIn) {
  std::string Body = "lda t0, 9(zero)\n divq t0, #0, v0\n halt\n";
  EXPECT_EQ(runAsm(Body).Status, RunStatus::Halted);

  MachineOptions Opts;
  Opts.TrapOnDivideByZero = true;
  RunResult R = runAsm(Body, Opts);
  ASSERT_EQ(R.Status, RunStatus::Trap);
  EXPECT_EQ(R.Trap, TrapKind::Arithmetic);
}

TEST(Traps, BadPCCarriesKindAndTarget) {
  RunResult R = runAsm("clr t0\n jmp zero, (t0)\n");
  ASSERT_EQ(R.Status, RunStatus::Trap);
  EXPECT_EQ(R.Trap, TrapKind::BadPC);
  EXPECT_EQ(R.FaultPC, 0u);
}

TEST(Traps, BadSyscallCarriesKindAndNumber) {
  RunResult R = runAsm("lconst v0, 999\n callsys\n");
  ASSERT_EQ(R.Status, RunStatus::Trap);
  EXPECT_EQ(R.Trap, TrapKind::BadSyscall);
  EXPECT_EQ(R.FaultAddr, 999u);
}

TEST(Traps, IllegalInstructionAfterDecodeCorruption) {
  // 'halt' encodes as PAL word 0x00000001; XOR with 3 gives PAL function
  // 2, which no opcode uses.
  std::unique_ptr<Machine> M;
  std::string Src = "        .text\n        .ent start\n"
                    "        .globl start\nstart:\n halt\n        .end start\n";
  DiagEngine Diags;
  obj::ObjectModule Mod;
  ASSERT_TRUE(assembler::assemble(Src, "t", Mod, Diags)) << Diags.str();
  obj::Executable Exe;
  link::LinkOptions LOpts;
  LOpts.EntrySymbol = "start";
  ASSERT_TRUE(link::linkExecutable({Mod}, Exe, Diags, LOpts)) << Diags.str();
  Machine Mach(Exe);
  Mach.corruptTextWord(0, 0x3);
  RunResult R = Mach.run(100);
  ASSERT_EQ(R.Status, RunStatus::Trap);
  EXPECT_EQ(R.Trap, TrapKind::IllegalInstruction);
  EXPECT_EQ(R.FaultPC, Exe.Entry);
}

TEST(Traps, ProtectionCanBeDisabled) {
  MachineOptions Off;
  Off.MemoryProtection = false;
  // With protection off a wild store silently materializes the page —
  // the historical behavior, kept reachable for differential testing.
  RunResult R = runAsm("clr t0\n stq t1, 0(t0)\n ldq v0, 0(t0)\n halt\n",
                       Off);
  EXPECT_EQ(R.Status, RunStatus::Halted) << R.FaultMessage;
}

//===----------------------------------------------------------------------===//
// Decoder fuzz smoke test: random byte streams never abort the host.
//===----------------------------------------------------------------------===//

TEST(Traps, DecoderFuzzNeverAbortsHost) {
  uint64_t Seed = 0x9E3779B97F4A7C15ULL;
  auto Next = [&Seed]() {
    Seed ^= Seed << 13;
    Seed ^= Seed >> 7;
    Seed ^= Seed << 17;
    return Seed;
  };
  for (int Round = 0; Round < 100; ++Round) {
    obj::Executable Exe;
    Exe.TextStart = obj::DefaultTextStart;
    Exe.DataStart = obj::DefaultDataStart;
    Exe.StackStart = obj::DefaultTextStart;
    Exe.HeapStart = obj::DefaultDataStart;
    Exe.Entry = Exe.TextStart;
    Exe.Text.resize(64 * 4);
    for (size_t I = 0; I < Exe.Text.size(); ++I)
      Exe.Text[I] = uint8_t(Next());
    Machine M(Exe);
    RunResult R = M.run(10'000);
    // Any clean outcome is fine; the host must simply survive.
    EXPECT_TRUE(R.Status == RunStatus::Trap ||
                R.Status == RunStatus::Halted ||
                R.Status == RunStatus::Exited ||
                R.Status == RunStatus::FuelExhausted);
  }
}

//===----------------------------------------------------------------------===//
// PC map: serialization and original-address translation.
//===----------------------------------------------------------------------===//

TEST(PCMap, SerializeRoundTrip) {
  obj::Executable Exe;
  Exe.TextStart = obj::DefaultTextStart;
  Exe.Text.resize(8);
  Exe.PCMap = {{0x2000000, 0x2000000}, {0x2000010, 0x2000004}};
  std::vector<uint8_t> Bytes = Exe.serialize();
  obj::Executable Back;
  ASSERT_TRUE(obj::Executable::deserialize(Bytes, Back));
  EXPECT_EQ(Back.PCMap, Exe.PCMap);
}

TEST(PCMap, FilesWithoutMapStillLoad) {
  obj::Executable Exe;
  Exe.TextStart = obj::DefaultTextStart;
  Exe.Text.resize(8);
  std::vector<uint8_t> Bytes = Exe.serialize();
  obj::Executable Back;
  ASSERT_TRUE(obj::Executable::deserialize(Bytes, Back));
  EXPECT_TRUE(Back.PCMap.empty());
}

TEST(PCMap, OriginalPCTranslation) {
  obj::Executable Exe;
  // No map: identity (ordinary executable).
  EXPECT_EQ(originalPC(Exe, 0x2000008), 0x2000008u);
  Exe.PCMap = {{0x2000000, 0x2000000}, {0x2000010, 0x2000004}};
  EXPECT_EQ(originalPC(Exe, 0x2000010), 0x2000004u);
  // Inserted (analysis) instructions have no original address.
  EXPECT_EQ(originalPC(Exe, 0x2000008), 0u);
}

TEST(PCMap, InstrumentationEmbedsMap) {
  obj::Executable App = buildOrDie(
      "int main() { printf(\"x=%ld\\n\", (long)6); return 0; }");
  EXPECT_TRUE(App.PCMap.empty());
  InstrumentedProgram Out =
      instrumentOrDie(App, *tools::findTool("dyninst"));
  ASSERT_FALSE(Out.Exe.PCMap.empty());
  EXPECT_TRUE(isInstrumented(Out.Exe));
  // Every original-PC value refers into the original text.
  for (const auto &[NewPC, OldPC] : Out.Exe.PCMap) {
    EXPECT_GE(NewPC, Out.Exe.TextStart);
    EXPECT_GE(OldPC, App.TextStart);
    EXPECT_LT(OldPC, App.TextStart + App.Text.size());
  }
}

//===----------------------------------------------------------------------===//
// Crash-surviving analysis.
//===----------------------------------------------------------------------===//

const char *CrashingApp = R"(
int main() {
  long i;
  long sum = 0;
  long buf[8];
  for (i = 0; i < 8; i = i + 1)
    buf[i] = i;
  for (i = 0; i < 8; i = i + 1)
    sum = sum + buf[i];
  printf("sum=%ld\n", sum);
  char *p = (char *)0;
  p[0] = 1;  // traps: store to the null page
  return 0;
}
)";

TEST(Recovery, ReportSurvivesCrash) {
  obj::Executable App = buildOrDie(CrashingApp);

  // The uninstrumented program traps at the null store.
  Machine Plain(App);
  RunResult PR = Plain.run();
  ASSERT_EQ(PR.Status, RunStatus::Trap) << PR.FaultMessage;
  ASSERT_EQ(PR.Trap, TrapKind::UnmappedAccess);

  // The instrumented one traps too — but recovery re-enters __exit, the
  // registered finalization runs, and the report is written.
  InstrumentedProgram Out = instrumentOrDie(App, *tools::findTool("cache"));
  Machine M(Out.Exe);
  RecoveryResult RR = runWithRecovery(Out.Exe, M);
  ASSERT_EQ(RR.Result.Status, RunStatus::Trap) << RR.Result.FaultMessage;
  EXPECT_EQ(RR.Result.Trap, TrapKind::UnmappedAccess);
  EXPECT_TRUE(RR.Recovered);
  ASSERT_TRUE(M.vfs().fileExists("cache.out"));
  EXPECT_NE(M.vfs().fileContents("cache.out").find("references"),
            std::string::npos);

  // The fault PC translates back to the pristine (uninstrumented) address
  // — the very instruction the plain run trapped on.
  EXPECT_EQ(RR.OrigFaultPC, PR.FaultPC);
}

// Exit-vs-crash equivalence: two programs with an identical instruction
// prefix; one then exits cleanly, the other jumps to PC 0. The analysis
// report an instrumented run emits must be identical in both cases.
const char *EquivPrefix = R"(
        .text
        .ent    main
        .globl  main
main:
        lda     sp, -16(sp)
        stq     ra, 8(sp)
        laddr   t0, wrk
        lda     t3, 4(zero)
Lgo:
        ldq     t1, 0(t0)
        addq    t1, #1, t1
        stq     t1, 0(t0)
        subq    t3, #1, t3
        bne     t3, Lgo
)";
const char *EquivData = R"(
        .end    main
        .data
        .align  3
wrk:
        .quad   0
)";

std::string reportAfterRun(const obj::Executable &App, const char *ToolName,
                           const char *ReportFile, bool ExpectTrap) {
  InstrumentedProgram Out =
      instrumentOrDie(App, *tools::findTool(ToolName));
  Machine M(Out.Exe);
  RecoveryResult RR = runWithRecovery(Out.Exe, M);
  if (ExpectTrap) {
    EXPECT_EQ(RR.Result.Status, RunStatus::Trap) << RR.Result.FaultMessage;
    EXPECT_TRUE(RR.Recovered);
  } else {
    EXPECT_TRUE(RR.Result.exitedWith(0)) << RR.Result.FaultMessage;
  }
  EXPECT_TRUE(M.vfs().fileExists(ReportFile));
  return M.vfs().fileContents(ReportFile);
}

TEST(Recovery, ReportIdenticalWhetherExitOrCrash) {
  std::string ExitTail = "        clr     a0\n        bsr     ra, __exit\n";
  std::string CrashTail = "        jmp     zero, (zero)\n";
  obj::Executable Exits =
      buildAsmApp(EquivPrefix + ExitTail + EquivData);
  obj::Executable Crashes =
      buildAsmApp(EquivPrefix + CrashTail + EquivData);

  std::string CacheA = reportAfterRun(Exits, "cache", "cache.out", false);
  std::string CacheB = reportAfterRun(Crashes, "cache", "cache.out", true);
  EXPECT_EQ(CacheA, CacheB);
  EXPECT_NE(CacheA.find("references"), std::string::npos);

  std::string BranchA = reportAfterRun(Exits, "branch", "branch.out", false);
  std::string BranchB = reportAfterRun(Crashes, "branch", "branch.out", true);
  EXPECT_EQ(BranchA, BranchB);
}

TEST(Recovery, UninstrumentedProgramIsNotRecovered) {
  obj::Executable App = buildOrDie(CrashingApp);
  Machine M(App);
  RecoveryResult RR = runWithRecovery(App, M);
  EXPECT_EQ(RR.Result.Status, RunStatus::Trap);
  EXPECT_FALSE(RR.Recovered);
  // Identity translation for ordinary executables.
  EXPECT_EQ(RR.OrigFaultPC, RR.Result.FaultPC);
}

//===----------------------------------------------------------------------===//
// Deterministic fault injection.
//===----------------------------------------------------------------------===//

TEST(Inject, SpecParsing) {
  InjectSpec S;
  std::string Err;
  ASSERT_TRUE(parseInjectSpec("regbit@1000", S, Err)) << Err;
  EXPECT_EQ(S.K, InjectSpec::Kind::RegBit);
  EXPECT_EQ(S.ICount, 1000u);
  EXPECT_EQ(S.Seed, 1u);
  ASSERT_TRUE(parseInjectSpec("membit@5,42", S, Err)) << Err;
  EXPECT_EQ(S.K, InjectSpec::Kind::MemBit);
  EXPECT_EQ(S.Seed, 42u);
  ASSERT_TRUE(parseInjectSpec("decode@0", S, Err));
  ASSERT_TRUE(parseInjectSpec("io@7", S, Err));

  EXPECT_FALSE(parseInjectSpec("regbit", S, Err));
  EXPECT_FALSE(parseInjectSpec("nope@3", S, Err));
  EXPECT_FALSE(parseInjectSpec("regbit@x", S, Err));
  EXPECT_FALSE(parseInjectSpec("regbit@3,", S, Err));
}

TEST(Inject, SpecParsingStrict) {
  InjectSpec S;
  std::string Err;
  // Trailing garbage after a valid number must be rejected, not silently
  // truncated to the leading digits.
  EXPECT_FALSE(parseInjectSpec("decode@4x", S, Err));
  EXPECT_FALSE(parseInjectSpec("decode@4 ", S, Err));
  EXPECT_FALSE(parseInjectSpec("membit@5,42x", S, Err));
  // Signs and whitespace are not part of an unsigned count.
  EXPECT_FALSE(parseInjectSpec("regbit@-3", S, Err));
  EXPECT_FALSE(parseInjectSpec("regbit@+3", S, Err));
  EXPECT_FALSE(parseInjectSpec("regbit@ 3", S, Err));
  EXPECT_FALSE(parseInjectSpec("membit@5,-1", S, Err));
  // Overflow must fail instead of saturating to ULLONG_MAX.
  EXPECT_FALSE(parseInjectSpec("regbit@99999999999999999999999", S, Err));
  EXPECT_FALSE(parseInjectSpec("membit@5,99999999999999999999999", S, Err));
  // Hex and the 64-bit maximum still parse.
  ASSERT_TRUE(parseInjectSpec("decode@0x10,0xff", S, Err)) << Err;
  EXPECT_EQ(S.ICount, 16u);
  EXPECT_EQ(S.Seed, 255u);
  ASSERT_TRUE(parseInjectSpec("regbit@18446744073709551615", S, Err)) << Err;
  EXPECT_EQ(S.ICount, ~uint64_t(0));
}

struct InjectOutcome {
  RunStatus Status = RunStatus::Trap;
  TrapKind Trap = TrapKind::None;
  int64_t ExitCode = 0;
  uint64_t FaultPC = 0;
  uint64_t Instructions = 0;
  std::string Stdout;

  bool operator==(const InjectOutcome &O) const = default;
};

InjectOutcome runInjected(const obj::Executable &Exe,
                          const std::string &Spec) {
  InjectSpec S;
  std::string Err;
  EXPECT_TRUE(parseInjectSpec(Spec, S, Err)) << Err;
  Machine M(Exe);
  armInjections({S}, M);
  RunResult R = M.run(1'000'000);
  InjectOutcome O;
  O.Status = R.Status;
  O.Trap = R.Trap;
  O.ExitCode = R.ExitCode;
  O.FaultPC = R.FaultPC;
  O.Instructions = M.stats().Instructions;
  O.Stdout = M.vfs().stdoutText();
  return O;
}

TEST(Inject, DeterministicAcrossRuns) {
  obj::Executable App = buildOrDie(R"(
int main() {
  long i;
  long sum = 0;
  for (i = 0; i < 200; i = i + 1)
    sum = sum + i * i;
  printf("sum=%ld\n", sum);
  return 0;
}
)");
  for (const char *Spec :
       {"regbit@500,7", "membit@500,7", "decode@500,7", "io@0,7"}) {
    InjectOutcome A = runInjected(App, Spec);
    InjectOutcome B = runInjected(App, Spec);
    EXPECT_EQ(A, B) << "nondeterministic outcome for " << Spec;
  }
  // Different seeds must be able to produce different corruptions: at
  // minimum the run is still deterministic per seed.
  InjectOutcome C = runInjected(App, "regbit@500,8");
  InjectOutcome D = runInjected(App, "regbit@500,8");
  EXPECT_EQ(C, D);
}

TEST(Inject, IoInjectionFailsNextSyscall) {
  obj::Executable App = buildOrDie(R"(
int main() {
  long f = fopen("x.txt", "w");
  if (f < 0) {
    printf("open-failed\n");
    return 0;
  }
  printf("open-ok\n");
  return 0;
}
)");
  // Uninjected: open succeeds.
  Machine Plain(App);
  Plain.run(1'000'000);
  EXPECT_NE(Plain.vfs().stdoutText().find("open-ok"), std::string::npos);

  InjectOutcome O = runInjected(App, "io@0");
  EXPECT_EQ(O.Status, RunStatus::Exited);
  EXPECT_NE(O.Stdout.find("open-failed"), std::string::npos) << O.Stdout;
}

//===----------------------------------------------------------------------===//
// CLI: exit codes and --inject determinism.
//===----------------------------------------------------------------------===//

struct CmdResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr
};

CmdResult runCmd(const std::string &Cmd) {
  CmdResult R;
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

class FaultCli : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "atomfault-" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    runCmd("rm -rf " + Dir + " && mkdir -p " + Dir);
    Bin = ATOM_CLI_DIR;
  }

  /// Writes \p Exe into the scratch dir and returns its path.
  std::string writeExe(const obj::Executable &Exe, const std::string &Name) {
    std::string Path = Dir + "/" + Name;
    std::vector<uint8_t> Bytes = Exe.serialize();
    std::ofstream Out(Path, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              std::streamsize(Bytes.size()));
    return Path;
  }

  std::string tool(const std::string &Name) { return Bin + "/" + Name; }

  std::string Dir, Bin;
};

TEST_F(FaultCli, TrapExitCodeAndDiagnostics) {
  std::string Exe = writeExe(buildOrDie(CrashingApp), "crash.exe");
  CmdResult R = runCmd(tool("axp-run") + " " + Exe);
  EXPECT_EQ(R.ExitCode, 124) << R.Output;
  EXPECT_NE(R.Output.find("trap (unmapped-access)"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("faulting address 0x"), std::string::npos);
}

TEST_F(FaultCli, FuelExitCode) {
  std::string Exe = writeExe(buildOrDie("int main() { while (1) {} "
                                        "return 0; }"),
                             "spin.exe");
  CmdResult R = runCmd(tool("axp-run") + " " + Exe + " --fuel 1000");
  EXPECT_EQ(R.ExitCode, 125) << R.Output;
  EXPECT_NE(R.Output.find("budget exhausted"), std::string::npos);
}

TEST_F(FaultCli, CleanExitCodeUnchanged) {
  std::string Exe = writeExe(buildOrDie("int main() { return 3; }"),
                             "ok.exe");
  CmdResult R = runCmd(tool("axp-run") + " " + Exe);
  EXPECT_EQ(R.ExitCode, 3) << R.Output;
}

TEST_F(FaultCli, InjectIsDeterministic) {
  std::string Exe = writeExe(buildOrDie(R"(
int main() {
  long i;
  long sum = 0;
  for (i = 0; i < 300; i = i + 1)
    sum = sum + i;
  printf("sum=%ld\n", sum);
  return 0;
}
)"),
                             "p.exe");
  std::string Cmd =
      tool("axp-run") + " " + Exe + " --inject regbit@400,9 --stats";
  CmdResult A = runCmd(Cmd);
  CmdResult B = runCmd(Cmd);
  EXPECT_EQ(A.ExitCode, B.ExitCode);
  EXPECT_EQ(A.Output, B.Output); // byte-identical outcome for a fixed seed
}

TEST_F(FaultCli, InstrumentedTrapStillDumpsReport) {
  obj::Executable App = buildOrDie(CrashingApp);
  InstrumentedProgram Out = instrumentOrDie(App, *tools::findTool("cache"));
  std::string Exe = writeExe(Out.Exe, "crash.atom");
  CmdResult R = runCmd(tool("axp-run") + " " + Exe + " --dump cache.out");
  EXPECT_EQ(R.ExitCode, 124) << R.Output;
  EXPECT_NE(R.Output.find("references"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("original pc 0x"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("finalization ran"), std::string::npos) << R.Output;

  // --no-recover suppresses the report path.
  CmdResult NR = runCmd(tool("axp-run") + " " + Exe +
                        " --no-recover --dump cache.out");
  EXPECT_EQ(NR.ExitCode, 124);
  EXPECT_EQ(NR.Output.find("references"), std::string::npos) << NR.Output;
}

//===----------------------------------------------------------------------===//
// Truncated traces.
//===----------------------------------------------------------------------===//

TEST(Traps, TrapFlushesTruncatedTrace) {
  obj::Executable App = buildOrDie(CrashingApp);
  DiagEngine Diags;
  std::vector<uint8_t> Atf;
  RunResult Run;
  ASSERT_TRUE(trace::recordTrace(App, /*FullRun=*/false, Atf, Run, Diags))
      << Diags.str();
  EXPECT_EQ(Run.Status, RunStatus::Trap);

  trace::AtfReader R;
  ASSERT_EQ(R.open(Atf), trace::AtfReader::Error::None);
  EXPECT_TRUE(R.stat().Truncated);
  EXPECT_GT(R.stat().EventCount, 0u);
  // The partial stream decodes cleanly end to end.
  uint64_t N = 0;
  ASSERT_TRUE(R.forEach([&](const trace::Event &) {
    ++N;
    return true;
  }));
  EXPECT_EQ(N, R.stat().EventCount);

  // A cleanly exiting program records an untruncated trace.
  obj::Executable Ok =
      buildOrDie("int main() { printf(\"hi\\n\"); return 0; }");
  std::vector<uint8_t> OkAtf;
  ASSERT_TRUE(trace::recordTrace(Ok, false, OkAtf, Run, Diags))
      << Diags.str();
  EXPECT_EQ(Run.Status, RunStatus::Exited);
  trace::AtfReader R2;
  ASSERT_EQ(R2.open(OkAtf), trace::AtfReader::Error::None);
  EXPECT_FALSE(R2.stat().Truncated);
}

} // namespace
