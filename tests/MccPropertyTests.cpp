//===- tests/MccPropertyTests.cpp - Generated-program property tests ------===//
//
// Generates deterministic pseudo-random mini-C expression programs, runs
// them through the full pipeline (mcc -> assembler -> linker -> simulator)
// and compares every result against a host-side evaluator implementing the
// same semantics (64-bit two's-complement longs, C-style truncating
// division). Each seed produces a different program shape, so this sweeps
// the code generator's expression machinery (temp allocation, spilling,
// short-circuit control flow, calls) far beyond the hand-written cases.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace atom;
using namespace atom::test;

namespace {

/// Deterministic PRNG (xorshift64*), independent of libc rand.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ULL) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  }
  /// Uniform in [0, N).
  uint64_t below(uint64_t N) { return next() % N; }

private:
  uint64_t State;
};

/// An expression tree over long-typed variables a..h plus literals.
struct GenExpr {
  enum Kind { Lit, Var, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
              Lt, Eq, LAnd, LOr, Neg, Not, Cond } K;
  int64_t Value = 0; ///< Lit.
  int VarIdx = 0;    ///< Var.
  std::unique_ptr<GenExpr> A, B, C;
};

constexpr int NumVars = 8;

std::unique_ptr<GenExpr> genExpr(Rng &R, int Depth) {
  auto E = std::make_unique<GenExpr>();
  if (Depth <= 0 || R.below(4) == 0) {
    if (R.below(2) == 0) {
      E->K = GenExpr::Lit;
      // Mix of small and large constants (exercises lconst synthesis).
      switch (R.below(4)) {
      case 0: E->Value = int64_t(R.below(20)) - 10; break;
      case 1: E->Value = int64_t(R.below(100000)) - 50000; break;
      case 2: E->Value = int64_t(R.next() & 0xFFFFFFFF) - 0x80000000LL; break;
      default: E->Value = int64_t(R.next()); break;
      }
    } else {
      E->K = GenExpr::Var;
      E->VarIdx = int(R.below(NumVars));
    }
    return E;
  }
  static const GenExpr::Kind Ops[] = {
      GenExpr::Add, GenExpr::Sub, GenExpr::Mul, GenExpr::Div, GenExpr::Rem,
      GenExpr::And, GenExpr::Or,  GenExpr::Xor, GenExpr::Shl, GenExpr::Shr,
      GenExpr::Lt,  GenExpr::Eq,  GenExpr::LAnd, GenExpr::LOr,
      GenExpr::Neg, GenExpr::Not, GenExpr::Cond};
  E->K = Ops[R.below(sizeof(Ops) / sizeof(Ops[0]))];
  E->A = genExpr(R, Depth - 1);
  if (E->K != GenExpr::Neg && E->K != GenExpr::Not)
    E->B = genExpr(R, Depth - 1);
  if (E->K == GenExpr::Cond)
    E->C = genExpr(R, Depth - 1);
  return E;
}

/// Host-side evaluation with mini-C semantics.
int64_t evalExpr(const GenExpr &E, const int64_t *Vars) {
  auto U = [&](const GenExpr &X) { return evalExpr(X, Vars); };
  switch (E.K) {
  case GenExpr::Lit: return E.Value;
  case GenExpr::Var: return Vars[E.VarIdx];
  case GenExpr::Add: return int64_t(uint64_t(U(*E.A)) + uint64_t(U(*E.B)));
  case GenExpr::Sub: return int64_t(uint64_t(U(*E.A)) - uint64_t(U(*E.B)));
  case GenExpr::Mul: return int64_t(uint64_t(U(*E.A)) * uint64_t(U(*E.B)));
  case GenExpr::Div: {
    int64_t A = U(*E.A), B = U(*E.B);
    if (B == 0)
      return 0; // divq semantics
    if (A == INT64_MIN && B == -1)
      return INT64_MIN;
    return A / B;
  }
  case GenExpr::Rem: {
    int64_t A = U(*E.A), B = U(*E.B);
    if (B == 0)
      return 0;
    if (A == INT64_MIN && B == -1)
      return 0;
    return A % B;
  }
  case GenExpr::And: return U(*E.A) & U(*E.B);
  case GenExpr::Or: return U(*E.A) | U(*E.B);
  case GenExpr::Xor: return U(*E.A) ^ U(*E.B);
  case GenExpr::Shl:
    return int64_t(uint64_t(U(*E.A)) << (uint64_t(U(*E.B)) & 63));
  case GenExpr::Shr: return U(*E.A) >> (uint64_t(U(*E.B)) & 63);
  case GenExpr::Lt: return U(*E.A) < U(*E.B);
  case GenExpr::Eq: return U(*E.A) == U(*E.B);
  case GenExpr::LAnd: return U(*E.A) ? (U(*E.B) != 0) : 0;
  case GenExpr::LOr: return U(*E.A) ? 1 : (U(*E.B) != 0);
  case GenExpr::Neg: return int64_t(-uint64_t(U(*E.A)));
  case GenExpr::Not: return !U(*E.A);
  case GenExpr::Cond: return U(*E.A) ? U(*E.B) : U(*E.C);
  }
  return 0;
}

/// Renders the tree as mini-C source. Shift amounts are masked in the
/// source too so both sides compute the same thing.
std::string render(const GenExpr &E) {
  auto Bin = [&](const char *Op) {
    return "(" + render(*E.A) + " " + Op + " " + render(*E.B) + ")";
  };
  switch (E.K) {
  case GenExpr::Lit:
    // INT64_MIN has no literal form; build it. All literals are cast to
    // long: a bare literal that fits in 32 bits would type as int and
    // wrap at 32 bits in mini-C, while the host oracle computes in 64.
    if (E.Value == INT64_MIN)
      return "((long)(-9223372036854775807 - 1))";
    return formatString("((long)%lld)", (long long)E.Value);
  case GenExpr::Var: return std::string(1, char('a' + E.VarIdx));
  case GenExpr::Add: return Bin("+");
  case GenExpr::Sub: return Bin("-");
  case GenExpr::Mul: return Bin("*");
  case GenExpr::Div: return Bin("/");
  case GenExpr::Rem: return Bin("%");
  case GenExpr::And: return Bin("&");
  case GenExpr::Or: return Bin("|");
  case GenExpr::Xor: return Bin("^");
  case GenExpr::Shl:
    return "(" + render(*E.A) + " << (" + render(*E.B) + " & 63))";
  case GenExpr::Shr:
    return "(" + render(*E.A) + " >> (" + render(*E.B) + " & 63))";
  // Comparison and logical results are int-typed in mini-C (as in C);
  // cast them back to long so 64-bit shift semantics match the oracle.
  case GenExpr::Lt: return "((long)" + Bin("<") + ")";
  case GenExpr::Eq: return "((long)" + Bin("==") + ")";
  case GenExpr::LAnd: return "((long)" + Bin("&&") + ")";
  case GenExpr::LOr: return "((long)" + Bin("||") + ")";
  case GenExpr::Neg: return "(- " + render(*E.A) + ")";
  case GenExpr::Not: return "((long)(!" + render(*E.A) + "))";
  case GenExpr::Cond:
    return "(" + render(*E.A) + " ? " + render(*E.B) + " : " +
           render(*E.C) + ")";
  }
  return "0";
}

class ExprProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExprProperty, GeneratedProgramMatchesHostEvaluator) {
  Rng R(uint64_t(GetParam()) * 0xABCDEF12345ULL + 1);

  // Variable values for this seed.
  int64_t Vars[NumVars];
  std::string Source = "int main() {\n";
  for (int V = 0; V < NumVars; ++V) {
    Vars[V] = int64_t(R.next());
    if (V % 3 == 0)
      Vars[V] = int64_t(R.below(1000)) - 500; // keep some small
    Source += formatString("  long %c = %lld;\n", char('a' + V),
                           (long long)Vars[V]);
  }

  // Several expressions per program, each printed.
  std::string Expected;
  int NumExprs = 3 + int(R.below(4));
  for (int I = 0; I < NumExprs; ++I) {
    std::unique_ptr<GenExpr> E = genExpr(R, 4 + int(R.below(3)));
    int64_t Want = evalExpr(*E, Vars);
    Source += "  printf(\"%ld\\n\", " + render(*E) + ");\n";
    Expected += formatString("%lld\n", (long long)Want);
  }
  Source += "  return 0;\n}\n";

  EXPECT_EQ(compileAndRun(Source), Expected) << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprProperty, ::testing::Range(1, 49));

//===----------------------------------------------------------------------===//
// Generated straight-line statement programs: chains of compound
// assignments and increments over a small variable set.
//===----------------------------------------------------------------------===//

class StmtProperty : public ::testing::TestWithParam<int> {};

TEST_P(StmtProperty, GeneratedStatementsMatchHostEvaluator) {
  Rng R(uint64_t(GetParam()) * 0x1234567ULL + 99);
  int64_t Vars[4] = {int64_t(R.below(100)), int64_t(R.below(100)) - 50,
                     int64_t(R.next()), 7};
  std::string Source = "int main() {\n";
  for (int V = 0; V < 4; ++V)
    Source += formatString("  long %c = %lld;\n", char('a' + V),
                           (long long)Vars[V]);

  int NumStmts = 10 + int(R.below(20));
  for (int I = 0; I < NumStmts; ++I) {
    int Dst = int(R.below(4));
    int Src = int(R.below(4));
    int64_t K = int64_t(R.below(50)) + 1;
    switch (R.below(6)) {
    case 0:
      Source += formatString("  %c += %c;\n", 'a' + Dst, 'a' + Src);
      Vars[Dst] = int64_t(uint64_t(Vars[Dst]) + uint64_t(Vars[Src]));
      break;
    case 1:
      Source += formatString("  %c -= %lld;\n", 'a' + Dst, (long long)K);
      Vars[Dst] = int64_t(uint64_t(Vars[Dst]) - uint64_t(K));
      break;
    case 2:
      Source += formatString("  %c *= %lld;\n", 'a' + Dst, (long long)K);
      Vars[Dst] = int64_t(uint64_t(Vars[Dst]) * uint64_t(K));
      break;
    case 3:
      Source += formatString("  %c ^= %c;\n", 'a' + Dst, 'a' + Src);
      Vars[Dst] ^= Vars[Src];
      break;
    case 4:
      Source += formatString("  %c++;\n", 'a' + Dst);
      Vars[Dst] = int64_t(uint64_t(Vars[Dst]) + 1);
      break;
    default:
      Source += formatString("  if (%c < %c) %c = %c + 1; else %c--;\n",
                             'a' + Dst, 'a' + Src, 'a' + Dst, 'a' + Src,
                             'a' + Dst);
      if (Vars[Dst] < Vars[Src])
        Vars[Dst] = int64_t(uint64_t(Vars[Src]) + 1);
      else
        Vars[Dst] = int64_t(uint64_t(Vars[Dst]) - 1);
      break;
    }
  }
  std::string Expected;
  Source += "  printf(\"%ld %ld %ld %ld\\n\", a, b, c, d);\n  return 0;\n}\n";
  Expected = formatString("%lld %lld %lld %lld\n", (long long)Vars[0],
                          (long long)Vars[1], (long long)Vars[2],
                          (long long)Vars[3]);
  EXPECT_EQ(compileAndRun(Source), Expected) << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StmtProperty, ::testing::Range(1, 17));

} // namespace
