//===- tests/ChaosTests.cpp - Deterministic fault injection ---------------===//
//
// The support::FaultPoints chaos layer (docs/RESILIENCE.md) over the atomd
// Store's file I/O: spec parsing, one-shot vs periodic firing, seeded
// determinism, and the durability contracts under injected faults —
// EINTR and short writes are invisible, persistent EIO/ENOSPC degrade the
// store to cache-bypass (and a later probe recovers it), and a torn
// rename can never result in a corrupt entry being served.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "atom/Batch.h"
#include "atomd/Store.h"
#include "support/FaultPoints.h"
#include "tools/Tools.h"

#include <fstream>
#include <gtest/gtest.h>

using namespace atom;
using namespace atom::atomd;
using namespace atom::test;

namespace {

class ChaosFixture : public ::testing::Test {
protected:
  void SetUp() override { disarm(); }

  /// Hand the layer back to ATOMD_FAULTPOINTS, so a CI sweep's env spec
  /// stays armed for whatever test runs next in this process.
  void TearDown() override { FaultPoints::instance().configureFromEnv(); }

  void arm(const std::string &Spec) {
    std::string Err;
    ASSERT_TRUE(FaultPoints::instance().configure(Spec, Err)) << Err;
  }
  void disarm() {
    std::string Err;
    ASSERT_TRUE(FaultPoints::instance().configure("", Err)) << Err;
  }

  std::string scratchDir(const char *Tag = "") {
    std::string Dir =
        ::testing::TempDir() + "atomchaos-" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        Tag;
    std::string Cmd = "rm -rf '" + Dir + "'";
    if (std::system(Cmd.c_str()) != 0)
      abort();
    return Dir;
  }
};

const Tool &toolOrDie(const char *Name) {
  const Tool *T = tools::findTool(Name);
  if (!T)
    abort();
  return *T;
}

CachedUnit builtUnit(const char *ToolName) {
  PipelineCache Cache;
  PipelineCache::UnitPtr P = Cache.analysisUnit(toolOrDie(ToolName));
  CachedUnit U = *P;
  EXPECT_TRUE(U.Ok);
  return U;
}

uint64_t hostFileSize(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  return In ? uint64_t(In.tellg()) : 0;
}

TEST_F(ChaosFixture, SpecParsingAcceptsAndRejects) {
  FaultPoints &FP = FaultPoints::instance();
  std::string Err;
  EXPECT_FALSE(FP.enabled());
  EXPECT_TRUE(FP.configure("eio@3", Err)) << Err;
  EXPECT_TRUE(FP.enabled());
  EXPECT_TRUE(
      FP.configure("short-write@2+,42;torn-rename@1,7;enospc@9", Err))
      << Err;
  EXPECT_TRUE(FP.enabled());

  // Malformed specs are rejected and leave the previous arming in place.
  for (const char *Bad :
       {"frobnicate@1", "eio", "eio@", "eio@0", "eio@x", "eio@3,", "@3"}) {
    Err.clear();
    EXPECT_FALSE(FP.configure(Bad, Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
    EXPECT_TRUE(FP.enabled()) << Bad;
  }

  EXPECT_TRUE(FP.configure("", Err)); // empty spec disarms
  EXPECT_FALSE(FP.enabled());
}

TEST_F(ChaosFixture, OneShotFiresOnExactlyTheNthConsultation) {
  arm("eio@3");
  FaultPoints &FP = FaultPoints::instance();
  EXPECT_FALSE(FP.trip(FaultKind::Eio));
  EXPECT_FALSE(FP.trip(FaultKind::Eio));
  EXPECT_TRUE(FP.trip(FaultKind::Eio));
  for (int I = 0; I < 8; ++I)
    EXPECT_FALSE(FP.trip(FaultKind::Eio)) << I; // one-shot: never again
  EXPECT_FALSE(FP.trip(FaultKind::Enospc));     // other kinds unarmed
}

TEST_F(ChaosFixture, PeriodicFiresOnEveryNth) {
  arm("enospc@2+");
  FaultPoints &FP = FaultPoints::instance();
  for (int I = 1; I <= 12; ++I)
    EXPECT_EQ(FP.trip(FaultKind::Enospc), I % 2 == 0) << I;
}

TEST_F(ChaosFixture, SeededRandIsDeterministic) {
  arm("short-write@1,42");
  FaultPoints &FP = FaultPoints::instance();
  std::vector<uint64_t> First;
  for (int I = 0; I < 8; ++I)
    First.push_back(FP.rand(FaultKind::ShortWrite));

  arm("short-write@1,42"); // re-arming restarts the stream
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(FP.rand(FaultKind::ShortWrite), First[I]) << I;

  arm("short-write@1,43"); // a different seed diverges
  bool AnyDiff = false;
  for (int I = 0; I < 8; ++I)
    AnyDiff |= FP.rand(FaultKind::ShortWrite) != First[I];
  EXPECT_TRUE(AnyDiff);
}

TEST_F(ChaosFixture, EintrIsInvisibleToTheStore) {
  // Periodic EINTR on every 2nd syscall: retryEintr must absorb each one,
  // so the store round-trips byte-identically with zero I/O errors.
  arm("eintr@2+");
  CachedUnit U = builtUnit("prof");
  std::string Dir = scratchDir();
  Store S(Dir);
  std::string Err;
  ASSERT_TRUE(S.open(Err)) << Err;
  S.store(11, U);
  CachedUnit Out;
  ASSERT_TRUE(S.load(11, Out));
  EXPECT_EQ(om::dumpUnit(Out.U), om::dumpUnit(U.U));
  EXPECT_EQ(S.stats().IoErrors, 0u);
  EXPECT_FALSE(S.degraded());
}

TEST_F(ChaosFixture, ShortWritesAreCompletedByTheLoop) {
  // Every write transfers only a seeded fraction; the short-transfer loop
  // must finish the job and the published entry must be whole.
  arm("short-write@1+,7");
  CachedUnit U = builtUnit("prof");
  std::string Dir = scratchDir();
  Store S(Dir);
  std::string Err;
  ASSERT_TRUE(S.open(Err)) << Err;
  S.store(21, U);
  disarm();
  CachedUnit Out;
  ASSERT_TRUE(S.load(21, Out));
  EXPECT_EQ(om::dumpUnit(Out.U), om::dumpUnit(U.U));
  EXPECT_EQ(S.stats().IoErrors, 0u);
  EXPECT_EQ(S.stats().LoadFailures, 0u);
  EXPECT_EQ(hostFileSize(Store::entryPath(Dir, 21)),
            Store::encodeEntry(21, U).size());
}

TEST_F(ChaosFixture, PersistentEioDegradesAndProbeRecovers) {
  CachedUnit U = builtUnit("prof");
  std::string Dir = scratchDir();
  Store S(Dir);
  std::string Err;
  ASSERT_TRUE(S.open(Err)) << Err;

  // A dead disk: every write fails. After StoreDegradeThreshold
  // consecutive errors the store flips to cache-bypass instead of burning
  // a syscall (and an error) per request.
  arm("eio@1+");
  for (unsigned I = 0; I < StoreDegradeThreshold; ++I) {
    EXPECT_FALSE(S.degraded());
    S.store(CacheKey(100 + I, 0), U);
  }
  EXPECT_TRUE(S.degraded());
  StoreStats St = S.stats();
  EXPECT_EQ(St.IoErrors, uint64_t(StoreDegradeThreshold));
  EXPECT_EQ(St.Degrades, 1u);
  CachedUnit Out;
  EXPECT_FALSE(S.load(CacheKey(100, 0), Out)); // nothing was persisted

  // Disk comes back: within StoreProbeInterval operations one probe goes
  // through for real, succeeds, and the store recovers.
  disarm();
  unsigned Ops = 0;
  while (S.degraded() && Ops < 2 * StoreProbeInterval) {
    S.store(7, U);
    ++Ops;
  }
  EXPECT_FALSE(S.degraded());
  EXPECT_LE(Ops, StoreProbeInterval);
  ASSERT_TRUE(S.load(7, Out));
  EXPECT_EQ(om::dumpUnit(Out.U), om::dumpUnit(U.U));
  EXPECT_EQ(S.stats().Degrades, 1u);
}

TEST_F(ChaosFixture, EnospcDegradesTheSameWay) {
  CachedUnit U = builtUnit("malloc");
  std::string Dir = scratchDir();
  Store S(Dir);
  std::string Err;
  ASSERT_TRUE(S.open(Err)) << Err;
  arm("enospc@1+");
  for (unsigned I = 0; I < StoreDegradeThreshold; ++I)
    S.store(CacheKey(200 + I, 0), U);
  EXPECT_TRUE(S.degraded());
  EXPECT_EQ(S.stats().Degrades, 1u);
  EXPECT_EQ(S.entryCount(), 0u); // no partial entries published
}

TEST_F(ChaosFixture, TornRenameIsNeverServed) {
  CachedUnit U = builtUnit("prof");
  std::string Dir = scratchDir();
  Store S(Dir);
  std::string Err;
  ASSERT_TRUE(S.open(Err)) << Err;

  // The publish rename lands a truncated file (non-atomic filesystem or a
  // crash window). The store believes the write succeeded...
  arm("torn-rename@1,99");
  S.store(31, U);
  EXPECT_TRUE(S.contains(31));
  uint64_t Full = Store::encodeEntry(31, U).size();
  uint64_t Torn = hostFileSize(Store::entryPath(Dir, 31));
  EXPECT_GT(Torn, 0u);
  EXPECT_LT(Torn, Full);

  // ...but the checksum rejects the entry on load: dropped and deleted,
  // never served.
  disarm();
  CachedUnit Out;
  EXPECT_FALSE(S.load(31, Out));
  EXPECT_EQ(S.stats().LoadFailures, 1u);
  EXPECT_FALSE(S.contains(31));
  EXPECT_EQ(hostFileSize(Store::entryPath(Dir, 31)), 0u);
  EXPECT_FALSE(S.degraded()); // corruption is not a disk-health signal

  // The slot is clean for the rebuild.
  S.store(31, U);
  ASSERT_TRUE(S.load(31, Out));
  EXPECT_EQ(om::dumpUnit(Out.U), om::dumpUnit(U.U));
}

TEST_F(ChaosFixture, TornRenameLengthIsSeedDeterministic) {
  CachedUnit U = builtUnit("prof");
  uint64_t Sizes[2];
  for (int Round = 0; Round < 2; ++Round) {
    arm("torn-rename@1,1234");
    std::string Dir = scratchDir(Round == 0 ? "-a" : "-b");
    Store S(Dir);
    std::string Err;
    ASSERT_TRUE(S.open(Err)) << Err;
    S.store(5, U);
    Sizes[Round] = hostFileSize(Store::entryPath(Dir, 5));
  }
  EXPECT_GT(Sizes[0], 0u);
  EXPECT_EQ(Sizes[0], Sizes[1]);
}

TEST_F(ChaosFixture, FlakyReadKeepsTheEntryForRetry) {
  CachedUnit U = builtUnit("prof");
  std::string Dir = scratchDir();
  Store S(Dir);
  std::string Err;
  ASSERT_TRUE(S.open(Err)) << Err;
  S.store(41, U);

  // One transient read error: the load fails, but the entry survives —
  // unlike corruption, a flaky disk says nothing about the bytes.
  arm("eio@1");
  CachedUnit Out;
  EXPECT_FALSE(S.load(41, Out));
  StoreStats St = S.stats();
  EXPECT_EQ(St.IoErrors, 1u);
  EXPECT_EQ(St.LoadFailures, 0u);
  EXPECT_TRUE(S.contains(41));

  ASSERT_TRUE(S.load(41, Out)); // the retry is served
  EXPECT_EQ(om::dumpUnit(Out.U), om::dumpUnit(U.U));
}

TEST_F(ChaosFixture, EnvSweepWorkloadNeverServesCorruptData) {
  // Runs under whatever ATOMD_FAULTPOINTS the environment armed (the CI
  // sweep mode) — or none. Only invariants are asserted: a successful
  // load always decodes to exactly what was stored, and the store never
  // crashes, whatever the disk does.
  FaultPoints::instance().configureFromEnv();
  CachedUnit U = builtUnit("prof");
  std::string Dump = om::dumpUnit(U.U);
  std::string Dir = scratchDir();
  Store S(Dir);
  std::string Err;
  ASSERT_TRUE(S.open(Err)) << Err;
  unsigned Served = 0;
  for (unsigned I = 0; I < 48; ++I) {
    CacheKey K(300 + I % 6, 0);
    S.store(K, U);
    CachedUnit Out;
    if (S.load(K, Out)) {
      ASSERT_TRUE(Out.Ok);
      EXPECT_EQ(om::dumpUnit(Out.U), Dump) << I;
      ++Served;
    }
  }
  if (!chaosActive()) {
    EXPECT_EQ(Served, 48u);
    EXPECT_EQ(S.stats().IoErrors, 0u);
  }
}

} // namespace
