//===- tests/IsaTests.cpp - ISA encode/decode and constant synthesis ------===//

#include "isa/ConstantSynth.h"
#include "isa/Isa.h"

#include <gtest/gtest.h>

using namespace atom;
using namespace atom::isa;

namespace {

TEST(Registers, CallingConventionPartition) {
  unsigned CallerSaved = 0, CalleeSaved = 0;
  for (unsigned R = 0; R < NumRegs; ++R) {
    EXPECT_FALSE(isCallerSaved(R) && isCalleeSaved(R))
        << "register " << regName(R) << " in both classes";
    CallerSaved += isCallerSaved(R);
    CalleeSaved += isCalleeSaved(R);
  }
  EXPECT_EQ(CallerSaved, 22u); // v0, t0..t11, a0..a5, ra, pv, at
  EXPECT_EQ(CalleeSaved, 7u);  // s0..s5, fp
  EXPECT_FALSE(isCallerSaved(RegSP));
  EXPECT_FALSE(isCallerSaved(RegGP));
  EXPECT_FALSE(isCallerSaved(RegZero));
}

TEST(Registers, NameRoundTrip) {
  for (unsigned R = 0; R < NumRegs; ++R) {
    EXPECT_EQ(parseRegName(regName(R)), R);
    EXPECT_EQ(parseRegName(formatString("$%u", R)), R);
  }
  EXPECT_EQ(parseRegName("nosuch"), unsigned(NumRegs));
  EXPECT_EQ(parseRegName("$32"), unsigned(NumRegs));
}

/// Round-trip every opcode through encode/decode in each operand shape it
/// supports.
class OpcodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeRoundTrip, EncodeDecode) {
  auto Op = Opcode(GetParam());
  std::vector<Inst> Variants;
  switch (formatOf(Op)) {
  case Format::Memory:
    Variants.push_back(makeMem(Op, RegA0, 1234, RegSP));
    Variants.push_back(makeMem(Op, RegT3, -32768, RegV0));
    Variants.push_back(makeMem(Op, RegRA, 32767, RegZero));
    break;
  case Format::Branch:
    Variants.push_back(makeBranch(Op, RegT0, 1000));
    Variants.push_back(makeBranch(Op, RegZero, -1048576));
    Variants.push_back(makeBranch(Op, RegRA, 1048575));
    break;
  case Format::Jump:
    Variants.push_back(makeJump(Op, RegRA, RegPV));
    Variants.push_back(makeJump(Op, RegZero, RegRA));
    break;
  case Format::Operate:
    Variants.push_back(makeOp(Op, RegT0, RegT1, RegT2));
    Variants.push_back(makeOpLit(Op, RegA5, 255, RegV0));
    Variants.push_back(makeOpLit(Op, RegZero, 0, RegT11));
    break;
  case Format::Pal:
    Variants.push_back(makePal(Op));
    break;
  }
  for (const Inst &I : Variants) {
    uint32_t W = encode(I);
    Inst D;
    ASSERT_TRUE(decode(W, D)) << disassemble(I, 0);
    EXPECT_EQ(I, D) << disassemble(I, 0) << " vs " << disassemble(D, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::Range(0, int(Opcode::NumOpcodes)),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return opcodeName(Opcode(Info.param));
                         });

TEST(Decode, RejectsGarbage) {
  Inst I;
  EXPECT_FALSE(decode(0x00000000, I)); // PAL function 0
  EXPECT_FALSE(decode(uint32_t(0x04) << 26, I)); // unused major
  EXPECT_FALSE(decode(uint32_t(0x07) << 26, I));
}

TEST(Classify, Predicates) {
  EXPECT_TRUE(isLoad(Opcode::Ldq));
  EXPECT_FALSE(isLoad(Opcode::Lda));
  EXPECT_FALSE(isLoad(Opcode::Ldah));
  EXPECT_TRUE(isStore(Opcode::Stb));
  EXPECT_TRUE(isMemRef(Opcode::Ldl));
  EXPECT_TRUE(isCondBranch(Opcode::Blbs));
  EXPECT_FALSE(isCondBranch(Opcode::Br));
  EXPECT_TRUE(isUncondBranch(Opcode::Br));
  EXPECT_TRUE(isCall(Opcode::Bsr));
  EXPECT_TRUE(isCall(Opcode::Jsr));
  EXPECT_FALSE(isCall(Opcode::Jmp));
  EXPECT_TRUE(isReturn(Opcode::Ret));
  EXPECT_TRUE(isControlTransfer(Opcode::Beq));
  EXPECT_FALSE(isControlTransfer(Opcode::Callsys));
  EXPECT_EQ(memAccessSize(Opcode::Ldbu), 1u);
  EXPECT_EQ(memAccessSize(Opcode::Ldwu), 2u);
  EXPECT_EQ(memAccessSize(Opcode::Stl), 4u);
  EXPECT_EQ(memAccessSize(Opcode::Stq), 8u);
  EXPECT_EQ(memAccessSize(Opcode::Addq), 0u);
}

TEST(Classify, ReadWriteSets) {
  // stq a0, 8(sp) reads a0 and sp, writes nothing.
  Inst St = makeMem(Opcode::Stq, RegA0, 8, RegSP);
  EXPECT_EQ(writtenRegs(St), 0u);
  EXPECT_EQ(readRegs(St), (1u << RegA0) | (1u << RegSP));

  // ldq v0, 0(t0) writes v0, reads t0.
  Inst Ld = makeMem(Opcode::Ldq, RegV0, 0, RegT0);
  EXPECT_EQ(writtenRegs(Ld), 1u << RegV0);
  EXPECT_EQ(readRegs(Ld), 1u << RegT0);

  // addq t0, t1, t2.
  Inst Add = makeOp(Opcode::Addq, RegT0, RegT1, RegT2);
  EXPECT_EQ(writtenRegs(Add), 1u << RegT2);
  EXPECT_EQ(readRegs(Add), (1u << RegT0) | (1u << RegT1));

  // Literal form reads only ra.
  Inst AddL = makeOpLit(Opcode::Addq, RegT0, 5, RegT2);
  EXPECT_EQ(readRegs(AddL), 1u << RegT0);

  // bsr ra, x writes ra.
  Inst Call = makeBranch(Opcode::Bsr, RegRA, 0);
  EXPECT_EQ(writtenRegs(Call), 1u << RegRA);

  // Writes to the zero register are filtered.
  Inst Zero = makeOp(Opcode::Addq, RegT0, RegT1, RegZero);
  EXPECT_EQ(writtenRegs(Zero), 0u);

  // callsys reads v0/a0..a2, writes v0.
  Inst Sys = makePal(Opcode::Callsys);
  EXPECT_EQ(writtenRegs(Sys), 1u << RegV0);
  EXPECT_EQ(readRegs(Sys), (1u << RegV0) | (1u << RegA0) | (1u << RegA1) |
                               (1u << RegA2));
}

//===----------------------------------------------------------------------===//
// Constant synthesis
//===----------------------------------------------------------------------===//

/// Simulates an lda/ldah/sll sequence starting from a zeroed register file.
static int64_t evalSequence(const std::vector<Inst> &Seq, unsigned Rd) {
  int64_t Regs[NumRegs] = {};
  for (const Inst &I : Seq) {
    switch (I.Op) {
    case Opcode::Lda:
      Regs[I.Ra] = Regs[I.Rb] + I.Disp;
      break;
    case Opcode::Ldah:
      Regs[I.Ra] = Regs[I.Rb] + (int64_t(I.Disp) << 16);
      break;
    case Opcode::Sll:
      Regs[I.Rc] = int64_t(uint64_t(Regs[I.Ra]) << I.Lit);
      break;
    default:
      ADD_FAILURE() << "unexpected opcode in constant sequence";
    }
    Regs[RegZero] = 0;
  }
  return Regs[Rd];
}

class ConstantSynthTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(ConstantSynthTest, ValueRoundTrip) {
  int64_t V = GetParam();
  std::vector<Inst> Seq;
  synthesizeConstant(V, RegT5, Seq);
  EXPECT_EQ(evalSequence(Seq, RegT5), V);
  EXPECT_EQ(Seq.size(), constantCost(V));
}

INSTANTIATE_TEST_SUITE_P(
    Values, ConstantSynthTest,
    ::testing::Values(
        int64_t(0), int64_t(1), int64_t(-1), int64_t(42), int64_t(-42),
        int64_t(32767), int64_t(-32768), int64_t(32768), int64_t(-32769),
        int64_t(65536), int64_t(0x7FFF0000), int64_t(0x7FFFFFFF),
        int64_t(-0x80000000LL), int64_t(0x80000000LL), int64_t(0x12345678),
        int64_t(0x123456789ALL), int64_t(-0x123456789ALL),
        int64_t(0x7FFFFFFFFFFFFFFFLL), int64_t(0x8000000000000000ULL),
        int64_t(0x0200000000000001LL), int64_t(0xDEADBEEFCAFEF00DULL),
        int64_t(0x0000000100000000LL), int64_t(0xFFFFFFFF00000000ULL),
        int64_t(0x00007FFF8000FFFFLL)));

TEST(ConstantSynth, CostModel) {
  // Paper §4: 16-bit constants take 1 instruction, 32-bit take 2.
  EXPECT_EQ(constantCost(0), 1u);
  EXPECT_EQ(constantCost(100), 1u);
  EXPECT_EQ(constantCost(-32768), 1u);
  EXPECT_EQ(constantCost(0x12345678), 2u);
  EXPECT_EQ(constantCost(0x7FFF0000), 1u); // single ldah
  EXPECT_LE(constantCost(int64_t(0xDEADBEEFCAFEF00DULL)), 5u);
}

TEST(Disassemble, Formats) {
  EXPECT_EQ(disassemble(makeMem(Opcode::Ldq, RegV0, 16, RegSP), 0),
            "ldq     v0, 16(sp)");
  EXPECT_EQ(disassemble(makeOpLit(Opcode::Addq, RegT0, 8, RegT1), 0),
            "addq    t0, #8, t1");
  std::string Br = disassemble(makeBranch(Opcode::Beq, RegT0, 2), 0x1000);
  EXPECT_NE(Br.find("0x100c"), std::string::npos) << Br;
}

} // namespace

namespace {

TEST(Decode, StableUnderReencoding) {
  // Pseudo-random 32-bit words: whatever decodes must re-encode to a word
  // that decodes to the same instruction (encode/decode form a retract).
  uint64_t State = 0x853C49E6748FEA9BULL;
  unsigned Decoded = 0;
  for (int I = 0; I < 200000; ++I) {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    uint32_t Word = uint32_t(State * 0x2545F4914F6CDD1DULL >> 32);
    Inst A;
    if (!decode(Word, A))
      continue;
    ++Decoded;
    uint32_t W2 = encode(A);
    Inst B;
    ASSERT_TRUE(decode(W2, B)) << std::hex << Word;
    ASSERT_EQ(A, B) << std::hex << Word;
  }
  EXPECT_GT(Decoded, 1000u); // the sweep actually hit valid encodings
}

} // namespace
