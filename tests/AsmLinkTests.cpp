//===- tests/AsmLinkTests.cpp - Assembler, linker, object format ----------===//

#include "asm/Assembler.h"
#include "link/Linker.h"
#include "obj/ObjectModule.h"

#include <gtest/gtest.h>

using namespace atom;
using namespace atom::obj;

namespace {

ObjectModule assembleOrDie(const std::string &Src) {
  DiagEngine Diags;
  ObjectModule M;
  if (!assembler::assemble(Src, "t", M, Diags)) {
    ADD_FAILURE() << Diags.str();
    abort();
  }
  return M;
}

//===----------------------------------------------------------------------===//
// Assembler
//===----------------------------------------------------------------------===//

TEST(Assembler, SectionsAndSymbols) {
  ObjectModule M = assembleOrDie(R"(
        .text
        .ent f
        .globl f
f:      addq a0, a1, v0
        ret
        .end f
g:      nop
        .data
        .globl var
var:    .quad 42
str:    .asciiz "hi\n"
        .bss
        .align 3
buf:    .space 64
)");
  EXPECT_EQ(M.Text.size(), 12u);
  EXPECT_EQ(M.BssSize, 64u);

  int F = M.findSymbol("f");
  ASSERT_GE(F, 0);
  EXPECT_TRUE(M.Symbols[F].IsProc);
  EXPECT_TRUE(M.Symbols[F].Global);
  EXPECT_EQ(M.Symbols[F].Size, 8u);
  EXPECT_EQ(M.Symbols[F].Section, SymSection::Text);

  int G = M.findSymbol("g");
  ASSERT_GE(G, 0);
  EXPECT_FALSE(M.Symbols[G].IsProc);
  EXPECT_FALSE(M.Symbols[G].Global);
  EXPECT_EQ(M.Symbols[G].Value, 8u);

  int V = M.findSymbol("var");
  ASSERT_GE(V, 0);
  EXPECT_EQ(M.Symbols[V].Section, SymSection::Data);
  EXPECT_EQ(read64(M.Data, 0), 42u);

  int S = M.findSymbol("str");
  ASSERT_GE(S, 0);
  EXPECT_EQ(M.Data[M.Symbols[S].Value], 'h');
  EXPECT_EQ(M.Data[M.Symbols[S].Value + 2], '\n');
  EXPECT_EQ(M.Data[M.Symbols[S].Value + 3], '\0');

  int B = M.findSymbol("buf");
  ASSERT_GE(B, 0);
  EXPECT_EQ(M.Symbols[B].Section, SymSection::Bss);
}

TEST(Assembler, RelocationsEmitted) {
  ObjectModule M = assembleOrDie(R"(
        .text
        .ent f
f:      laddr t0, target
        bsr ra, callee
        beq t1, f
        ret
        .end f
        .data
target: .quad 0
ptr:    .quad target+8
)");
  // laddr -> Hi16+Lo16; bsr -> Br21; beq -> Br21.
  ASSERT_EQ(M.TextRelocs.size(), 4u);
  EXPECT_EQ(M.TextRelocs[0].Kind, RelocKind::Hi16);
  EXPECT_EQ(M.TextRelocs[1].Kind, RelocKind::Lo16);
  EXPECT_EQ(M.TextRelocs[2].Kind, RelocKind::Br21);
  EXPECT_EQ(M.TextRelocs[3].Kind, RelocKind::Br21);
  ASSERT_EQ(M.DataRelocs.size(), 1u);
  EXPECT_EQ(M.DataRelocs[0].Kind, RelocKind::Abs64);
  EXPECT_EQ(M.DataRelocs[0].Addend, 8);
  // 'callee' stays undefined (extern).
  int C = M.findSymbol("callee");
  ASSERT_GE(C, 0);
  EXPECT_EQ(M.Symbols[C].Section, SymSection::Undefined);
}

struct AsmErrorCase {
  const char *Name;
  const char *Source;
  const char *Fragment;
};

class AssemblerErrors : public ::testing::TestWithParam<AsmErrorCase> {};

TEST_P(AssemblerErrors, Rejected) {
  DiagEngine Diags;
  ObjectModule M;
  EXPECT_FALSE(assembler::assemble(GetParam().Source, "bad", M, Diags));
  EXPECT_NE(Diags.str().find(GetParam().Fragment), std::string::npos)
      << Diags.str();
}

const AsmErrorCase AsmErrors[] = {
    {"unknownMnemonic", ".text\nfrobnicate t0, t1\n", "unknown mnemonic"},
    {"badRegister", ".text\naddq q9, t1, t2\n", "operate format"},
    {"litOutOfRange", ".text\naddq t0, #256, t1\n", "out of range"},
    {"dispOutOfRange", ".text\nldq t0, 40000(sp)\n", "out of"},
    {"unterminatedEnt", ".text\n.ent f\nf: ret\n", "unterminated"},
    {"mismatchedEnd", ".text\n.ent f\nf: ret\n.end g\n", "does not match"},
    {"redefinedLabel", ".text\na: ret\na: ret\n", "redefined"},
    {"dataInText", ".text\n.quad 1\n", "only allowed in .data"},
    {"badDirective", ".text\n.bogus 1\n", "unknown directive"},
    {"instInData", ".data\naddq t0, t1, t2\n", "instruction outside"},
};

INSTANTIATE_TEST_SUITE_P(Cases, AssemblerErrors,
                         ::testing::ValuesIn(AsmErrors),
                         [](const ::testing::TestParamInfo<AsmErrorCase> &I) {
                           return I.param.Name;
                         });

//===----------------------------------------------------------------------===//
// Linker
//===----------------------------------------------------------------------===//

TEST(Linker, CrossModuleCallsAndData) {
  ObjectModule A = assembleOrDie(R"(
        .text
        .ent start
        .globl start
start:  bsr ra, helper
        laddr t0, shared
        ldq v0, 0(t0)
        halt
        .end start
)");
  ObjectModule B = assembleOrDie(R"(
        .text
        .ent helper
        .globl helper
helper: ret
        .end helper
        .data
        .globl shared
shared: .quad 777
)");
  DiagEngine Diags;
  Executable Exe;
  link::LinkOptions Opts;
  Opts.EntrySymbol = "start";
  ASSERT_TRUE(link::linkExecutable({A, B}, Exe, Diags, Opts)) << Diags.str();

  // Symbols resolved to absolute addresses; relocations applied AND
  // retained.
  int H = Exe.findSymbol("helper");
  ASSERT_GE(H, 0);
  EXPECT_GE(Exe.Symbols[H].Value, Exe.TextStart);
  EXPECT_EQ(Exe.Entry, Exe.TextStart); // start is the first module
  EXPECT_FALSE(Exe.TextRelocs.empty());

  // The shared data word is there.
  int S = Exe.findSymbol("shared");
  ASSERT_GE(S, 0);
  EXPECT_EQ(read64(Exe.Data, Exe.Symbols[S].Value - Exe.DataStart), 777u);
}

TEST(Linker, DuplicateGlobalRejected) {
  ObjectModule A = assembleOrDie(".text\n.ent f\n.globl f\nf: ret\n.end f\n");
  DiagEngine Diags;
  Executable Exe;
  EXPECT_FALSE(link::linkExecutable({A, A}, Exe, Diags));
  EXPECT_NE(Diags.str().find("duplicate global"), std::string::npos);
}

TEST(Linker, UndefinedSymbolRejected) {
  ObjectModule A = assembleOrDie(
      ".text\n.ent f\n.globl f\nf: bsr ra, nowhere\n ret\n.end f\n");
  DiagEngine Diags;
  Executable Exe;
  EXPECT_FALSE(link::linkExecutable({A}, Exe, Diags));
  EXPECT_NE(Diags.str().find("undefined symbol 'nowhere'"),
            std::string::npos);
}

TEST(Linker, HeapStartSymbolProvided) {
  ObjectModule A = assembleOrDie(R"(
        .text
        .ent f
        .globl f
f:      laddr t0, __heap_start
        ret
        .end f
)");
  DiagEngine Diags;
  Executable Exe;
  ASSERT_TRUE(link::linkExecutable({A}, Exe, Diags)) << Diags.str();
  int H = Exe.findSymbol("__heap_start");
  ASSERT_GE(H, 0);
  EXPECT_EQ(Exe.Symbols[H].Value, Exe.HeapStart);
  EXPECT_EQ(Exe.HeapStart % PageSize, 0u);
}

TEST(Linker, RelocatableMergeKeepsRelocations) {
  ObjectModule A = assembleOrDie(
      ".text\n.ent f\n.globl f\nf: bsr ra, g\n ret\n.end f\n");
  ObjectModule B = assembleOrDie(
      ".text\n.ent g\n.globl g\ng: ret\n.end g\n.data\nd: .quad g\n");
  DiagEngine Diags;
  ObjectModule Merged;
  ASSERT_TRUE(link::linkRelocatable({A, B}, "m", Merged, Diags))
      << Diags.str();
  EXPECT_EQ(Merged.Text.size(), A.Text.size() + B.Text.size());
  ASSERT_EQ(Merged.TextRelocs.size(), 1u);
  // The reloc from module A now points at B's 'g' in the merged table.
  EXPECT_EQ(Merged.Symbols[Merged.TextRelocs[0].SymIndex].Name, "g");
  EXPECT_EQ(Merged.Symbols[Merged.TextRelocs[0].SymIndex].Section,
            SymSection::Text);
}

//===----------------------------------------------------------------------===//
// Serialization round-trips
//===----------------------------------------------------------------------===//

TEST(Serialization, ObjectModuleRoundTrip) {
  ObjectModule M = assembleOrDie(R"(
        .text
        .ent f
        .globl f
f:      laddr t0, d
        ret
        .end f
        .data
d:      .quad f
)");
  std::vector<uint8_t> Bytes = M.serialize();
  ObjectModule M2;
  ASSERT_TRUE(ObjectModule::deserialize(Bytes, M2));
  EXPECT_EQ(M2.Text, M.Text);
  EXPECT_EQ(M2.Data, M.Data);
  EXPECT_EQ(M2.BssSize, M.BssSize);
  ASSERT_EQ(M2.Symbols.size(), M.Symbols.size());
  for (size_t I = 0; I < M.Symbols.size(); ++I) {
    EXPECT_EQ(M2.Symbols[I].Name, M.Symbols[I].Name);
    EXPECT_EQ(M2.Symbols[I].Value, M.Symbols[I].Value);
    EXPECT_EQ(M2.Symbols[I].Section, M.Symbols[I].Section);
  }
  EXPECT_EQ(M2.TextRelocs.size(), M.TextRelocs.size());
  EXPECT_EQ(M2.DataRelocs.size(), M.DataRelocs.size());
}

TEST(Serialization, ExecutableRoundTrip) {
  ObjectModule M = assembleOrDie(
      ".text\n.ent f\n.globl f\nf: halt\n.end f\n.data\nd: .quad 5\n");
  DiagEngine Diags;
  Executable E;
  ASSERT_TRUE(link::linkExecutable({M}, E, Diags));
  E.Segments.push_back({0x3000000, {1, 2, 3}});
  std::vector<uint8_t> Bytes = E.serialize();
  Executable E2;
  ASSERT_TRUE(Executable::deserialize(Bytes, E2));
  EXPECT_EQ(E2.Text, E.Text);
  EXPECT_EQ(E2.Data, E.Data);
  EXPECT_EQ(E2.Entry, E.Entry);
  EXPECT_EQ(E2.HeapStart, E.HeapStart);
  ASSERT_EQ(E2.Segments.size(), 1u);
  EXPECT_EQ(E2.Segments[0].Addr, 0x3000000u);
  EXPECT_EQ(E2.Segments[0].Bytes, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Serialization, RejectsCorruptInput) {
  ObjectModule M;
  EXPECT_FALSE(ObjectModule::deserialize({}, M));
  EXPECT_FALSE(ObjectModule::deserialize({1, 2, 3, 4}, M));
  std::vector<uint8_t> Good = assembleOrDie(".text\nnop\n").serialize();
  Good.resize(Good.size() / 2); // truncate
  EXPECT_FALSE(ObjectModule::deserialize(Good, M));
  Executable E;
  EXPECT_FALSE(Executable::deserialize(Good, E));
}

} // namespace
