//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//

#ifndef ATOM_TESTS_TESTUTIL_H
#define ATOM_TESTS_TESTUTIL_H

#include "atom/Driver.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

namespace atom {
namespace test {

/// Compiles and links \p Source (mini-C); aborts the test on failure.
inline obj::Executable buildOrDie(const std::string &Source) {
  DiagEngine Diags;
  obj::Executable Exe;
  if (!buildApplication(Source, Exe, Diags)) {
    ADD_FAILURE() << "build failed:\n" << Diags.str();
    abort();
  }
  return Exe;
}

struct RunOutcome {
  sim::RunResult Result;
  std::string Stdout;
  uint64_t Instructions = 0;
};

/// Runs \p Exe to completion and returns outcome; keeps \p M alive for
/// further inspection if provided.
inline RunOutcome runProgram(const obj::Executable &Exe,
                             sim::Machine *Keep = nullptr) {
  sim::Machine M(Exe);
  RunOutcome O;
  O.Result = M.run();
  O.Stdout = M.vfs().stdoutText();
  O.Instructions = M.stats().Instructions;
  if (Keep)
    *Keep = std::move(M);
  return O;
}

/// Compile+link+run, expecting a clean exit 0; returns stdout.
inline std::string compileAndRun(const std::string &Source) {
  obj::Executable Exe = buildOrDie(Source);
  sim::Machine M(Exe);
  sim::RunResult R = M.run();
  EXPECT_EQ(R.Status, sim::RunStatus::Exited)
      << R.FaultMessage << " at pc 0x" << std::hex << R.FaultPC;
  EXPECT_EQ(R.ExitCode, 0) << M.vfs().stdoutText();
  return M.vfs().stdoutText();
}

/// Instruments \p App with \p T; aborts the test on failure.
inline InstrumentedProgram instrumentOrDie(const obj::Executable &App,
                                           const Tool &T,
                                           const AtomOptions &Opts =
                                               AtomOptions()) {
  DiagEngine Diags;
  InstrumentedProgram Out;
  if (!runAtom(App, T, Opts, Out, Diags)) {
    ADD_FAILURE() << "atom failed:\n" << Diags.str();
    abort();
  }
  return Out;
}

} // namespace test
} // namespace atom

#endif // ATOM_TESTS_TESTUTIL_H
