//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//

#ifndef ATOM_TESTS_TESTUTIL_H
#define ATOM_TESTS_TESTUTIL_H

#include "atom/Driver.h"
#include "sim/Machine.h"

#include <cstdlib>
#include <gtest/gtest.h>

namespace atom {
namespace test {

/// True when a CI chaos sweep armed ATOMD_FAULTPOINTS for this process.
/// Exact-count assertions (cache/store statistics) are relaxed under a
/// sweep — injected faults legitimately change them — while identity and
/// never-serve-corruption invariants stay enforced.
inline bool chaosActive() {
  const char *E = ::getenv("ATOMD_FAULTPOINTS");
  return E && *E;
}

/// True when the armed sweep injects faults that are *visible* (EIO,
/// ENOSPC, torn renames) rather than transparent (EINTR, short writes).
/// Tests whose logic depends on writes actually landing skip or relax
/// under these; benign sweeps must pass every test unchanged.
inline bool destructiveChaosActive() {
  const char *E = ::getenv("ATOMD_FAULTPOINTS");
  if (!E)
    return false;
  std::string S(E);
  return S.find("eio") != std::string::npos ||
         S.find("enospc") != std::string::npos ||
         S.find("torn-rename") != std::string::npos;
}

/// Compiles and links \p Source (mini-C); aborts the test on failure.
inline obj::Executable buildOrDie(const std::string &Source) {
  DiagEngine Diags;
  obj::Executable Exe;
  if (!buildApplication(Source, Exe, Diags)) {
    ADD_FAILURE() << "build failed:\n" << Diags.str();
    abort();
  }
  return Exe;
}

struct RunOutcome {
  sim::RunResult Result;
  std::string Stdout;
  uint64_t Instructions = 0;
};

/// Runs \p Exe to completion and returns outcome; keeps \p M alive for
/// further inspection if provided.
inline RunOutcome runProgram(const obj::Executable &Exe,
                             sim::Machine *Keep = nullptr) {
  sim::Machine M(Exe);
  RunOutcome O;
  O.Result = M.run();
  O.Stdout = M.vfs().stdoutText();
  O.Instructions = M.stats().Instructions;
  if (Keep)
    *Keep = std::move(M);
  return O;
}

/// Compile+link+run, expecting a clean exit 0; returns stdout.
inline std::string compileAndRun(const std::string &Source) {
  obj::Executable Exe = buildOrDie(Source);
  sim::Machine M(Exe);
  sim::RunResult R = M.run();
  EXPECT_EQ(R.Status, sim::RunStatus::Exited)
      << R.FaultMessage << " at pc 0x" << std::hex << R.FaultPC;
  EXPECT_EQ(R.ExitCode, 0) << M.vfs().stdoutText();
  return M.vfs().stdoutText();
}

/// Instruments \p App with \p T; aborts the test on failure.
inline InstrumentedProgram instrumentOrDie(const obj::Executable &App,
                                           const Tool &T,
                                           const AtomOptions &Opts =
                                               AtomOptions()) {
  DiagEngine Diags;
  InstrumentedProgram Out;
  if (!runAtom(App, T, Opts, Out, Diags)) {
    ADD_FAILURE() << "atom failed:\n" << Diags.str();
    abort();
  }
  return Out;
}

} // namespace test
} // namespace atom

#endif // ATOM_TESTS_TESTUTIL_H
