//===- tests/WorkloadTests.cpp - The 20 synthetic workloads ---------------===//

#include "TestUtil.h"

#include "workloads/Workloads.h"

using namespace atom;
using namespace atom::test;
using namespace atom::workloads;

namespace {

class WorkloadRun : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadRun, RunsCleanly) {
  const Workload &W = GetParam();
  obj::Executable Exe = buildOrDie(W.Source);
  sim::Machine M(Exe);
  sim::RunResult R = M.run();
  ASSERT_EQ(R.Status, sim::RunStatus::Exited)
      << W.Name << ": " << R.FaultMessage << " at 0x" << std::hex
      << R.FaultPC;
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_FALSE(M.vfs().stdoutText().empty())
      << W.Name << " produced no output";
  if (W.ExpectedStdout && *W.ExpectedStdout)
    EXPECT_EQ(M.vfs().stdoutText(), W.ExpectedStdout);
  // Each workload must do a nontrivial amount of work for the Figure 6
  // ratios to be meaningful, but stay small enough for the test matrix.
  EXPECT_GT(M.stats().Instructions, 10000u) << W.Name;
  EXPECT_LT(M.stats().Instructions, 20'000'000u) << W.Name;
}

TEST_P(WorkloadRun, Deterministic) {
  const Workload &W = GetParam();
  obj::Executable Exe = buildOrDie(W.Source);
  RunOutcome A = runProgram(Exe);
  RunOutcome B = runProgram(Exe);
  EXPECT_EQ(A.Stdout, B.Stdout) << W.Name;
  EXPECT_EQ(A.Instructions, B.Instructions) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadRun,
                         ::testing::ValuesIn(allWorkloads()),
                         [](const ::testing::TestParamInfo<Workload> &I) {
                           return I.param.Name;
                         });

TEST(Workloads, SuiteShape) {
  // The paper instruments 20 SPEC92 programs.
  EXPECT_EQ(allWorkloads().size(), 20u);
  EXPECT_NE(findWorkload("fib"), nullptr);
  EXPECT_EQ(findWorkload("nope"), nullptr);
}

TEST(Workloads, CoverToolDimensions) {
  // The suite must exercise what the tools measure: unaligned accesses,
  // file I/O, and heap allocation.
  {
    obj::Executable Exe = buildOrDie(findWorkload("unaligned")->Source);
    sim::Machine M(Exe);
    ASSERT_TRUE(M.run().exitedWith(0));
    EXPECT_GT(M.stats().UnalignedAccesses, 100u);
  }
  {
    obj::Executable Exe = buildOrDie(findWorkload("iobound")->Source);
    sim::Machine M(Exe);
    ASSERT_TRUE(M.run().exitedWith(0));
    EXPECT_FALSE(M.vfs().fileContents("iobound.tmp").empty());
  }
  {
    obj::Executable Exe = buildOrDie(findWorkload("mallocmix")->Source);
    sim::Machine M(Exe);
    ASSERT_TRUE(M.run().exitedWith(0));
  }
}

} // namespace
