//===- tests/CliTests.cpp - Command-line toolchain integration ------------===//
//
// Drives the installed binaries (axp-cc, axp-as, axp-ld, axp-run,
// axp-objdump, atom) through a scratch directory, checking the full
// compile -> assemble -> link -> instrument -> run flow a downstream user
// would follow.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef ATOM_CLI_DIR
#define ATOM_CLI_DIR "."
#endif

struct CommandResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr
};

CommandResult runCommand(const std::string &Cmd) {
  CommandResult R;
  std::string Full = Cmd + " 2>&1";
  FILE *P = popen(Full.c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

class CliFixture : public ::testing::Test {
protected:
  void SetUp() override {
    // One scratch directory per test: tests run concurrently under
    // `ctest -j`, and a shared directory would let one test's rm -rf
    // race another's compile.
    Dir = ::testing::TempDir() + "atomcli-" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    runCommand("rm -rf " + Dir + " && mkdir -p " + Dir);
    Bin = ATOM_CLI_DIR;
  }

  void writeSource(const std::string &Name, const std::string &Contents) {
    std::ofstream Out(Dir + "/" + Name);
    Out << Contents;
  }

  std::string tool(const std::string &Name) { return Bin + "/" + Name; }
  std::string path(const std::string &Name) { return Dir + "/" + Name; }

  std::string Dir, Bin;
};

TEST_F(CliFixture, CompileLinkRun) {
  writeSource("p.mc", "int main() { printf(\"v=%ld\\n\", (long)6 * 7); "
                      "return 0; }");
  CommandResult C =
      runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  C = runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " +
                 path("p.exe"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  C = runCommand(tool("axp-run") + " " + path("p.exe"));
  EXPECT_EQ(C.ExitCode, 0);
  EXPECT_EQ(C.Output, "v=42\n");
}

TEST_F(CliFixture, ExitCodePropagates) {
  writeSource("p.mc", "int main() { return 7; }");
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));
  CommandResult C = runCommand(tool("axp-run") + " " + path("p.exe"));
  EXPECT_EQ(C.ExitCode, 7);
}

TEST_F(CliFixture, AssembleAndDisassemble) {
  writeSource("f.s", R"(
        .text
        .ent f
        .globl f
f:      addq a0, a1, v0
        ret
        .end f
)");
  CommandResult C =
      runCommand(tool("axp-as") + " " + path("f.s") + " -o " + path("f.obj"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  C = runCommand(tool("axp-objdump") + " " + path("f.obj") + " -d -t");
  EXPECT_EQ(C.ExitCode, 0);
  EXPECT_NE(C.Output.find("addq"), std::string::npos) << C.Output;
  EXPECT_NE(C.Output.find("f:"), std::string::npos);
  EXPECT_NE(C.Output.find("SYMBOL TABLE"), std::string::npos);
}

TEST_F(CliFixture, CompilerEmitsAssembly) {
  writeSource("p.mc", "int main() { return 0; }");
  CommandResult C = runCommand(tool("axp-cc") + " " + path("p.mc") + " -S");
  EXPECT_EQ(C.ExitCode, 0);
  EXPECT_NE(C.Output.find(".ent    main"), std::string::npos) << C.Output;
}

TEST_F(CliFixture, CompileErrorsAreReported) {
  writeSource("bad.mc", "int main() { return x; }");
  CommandResult C = runCommand(tool("axp-cc") + " " + path("bad.mc"));
  EXPECT_NE(C.ExitCode, 0);
  EXPECT_NE(C.Output.find("undeclared"), std::string::npos) << C.Output;
}

TEST_F(CliFixture, AtomInstrumentAndRun) {
  writeSource("p.mc", R"(
int main() {
  long i;
  long sum = 0;
  for (i = 0; i < 50; i = i + 1)
    sum = sum + i;
  printf("sum %ld\n", sum);
  return 0;
}
)");
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));

  CommandResult C = runCommand(tool("atom") + " " + path("p.exe") +
                               " --tool dyninst -o " + path("p.atom") +
                               " --run --dump dyninst.out");
  EXPECT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("sum 1225"), std::string::npos) << C.Output;
  EXPECT_NE(C.Output.find("dynamic-insts"), std::string::npos) << C.Output;

  // The instrumented executable is a valid AEXE runnable on its own.
  C = runCommand(tool("axp-run") + " " + path("p.atom") +
                 " --dump dyninst.out");
  EXPECT_EQ(C.ExitCode, 0);
  EXPECT_NE(C.Output.find("sum 1225"), std::string::npos);
}

TEST_F(CliFixture, AtomListsTools) {
  CommandResult C = runCommand(tool("atom") + " --list-tools");
  EXPECT_EQ(C.ExitCode, 0);
  for (const char *N : {"branch", "cache", "dyninst", "gprof", "inline",
                        "io", "malloc", "pipe", "prof", "syscall",
                        "unalign"})
    EXPECT_NE(C.Output.find(N), std::string::npos) << N;
}

TEST_F(CliFixture, AtomRejectsUnknownTool) {
  writeSource("p.mc", "int main() { return 0; }");
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));
  CommandResult C =
      runCommand(tool("atom") + " " + path("p.exe") + " --tool nope");
  EXPECT_NE(C.ExitCode, 0);
  EXPECT_NE(C.Output.find("unknown tool"), std::string::npos);
}

TEST_F(CliFixture, TraceRecordStatDumpReplay) {
  writeSource("p.mc", R"(
int main() {
  long i;
  long sum = 0;
  for (i = 0; i < 50; i = i + 1)
    sum = sum + i;
  printf("sum %ld\n", sum);
  return 0;
}
)");
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));

  CommandResult C = runCommand(tool("axp-trace") + " record " +
                               path("p.exe") + " -o " + path("p.atf"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("events"), std::string::npos) << C.Output;

  C = runCommand(tool("axp-trace") + " stat " + path("p.atf"));
  EXPECT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("version 1"), std::string::npos) << C.Output;
  EXPECT_NE(C.Output.find("cond-branch"), std::string::npos) << C.Output;

  C = runCommand(tool("axp-trace") + " dump " + path("p.atf") +
                 " --limit 5");
  EXPECT_EQ(C.ExitCode, 0) << C.Output;

  C = runCommand(tool("axp-trace") + " replay cache " + path("p.atf"));
  EXPECT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("references"), std::string::npos) << C.Output;

  C = runCommand(tool("axp-trace") + " replay branch " + path("p.atf"));
  EXPECT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("mispredicted"), std::string::npos) << C.Output;

  // The instrumentation-tool producer records the same trace.
  C = runCommand(tool("axp-trace") + " record " + path("p.exe") +
                 " --tool -o " + path("p2.atf"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  CommandResult C2 = runCommand("cmp " + path("p.atf") + " " + path("p2.atf"));
  EXPECT_EQ(C2.ExitCode, 0) << C2.Output;

  // Damaged files are rejected, not misparsed.
  C = runCommand("head -c 50 " + path("p.atf") + " > " + path("cut.atf"));
  C = runCommand(tool("axp-trace") + " stat " + path("cut.atf"));
  EXPECT_NE(C.ExitCode, 0);
}

TEST_F(CliFixture, RelocatableLink) {
  writeSource("a.mc", "extern long g();\nint main() { return (int)g(); }");
  writeSource("b.mc", "long g() { return 0; }");
  runCommand(tool("axp-cc") + " " + path("a.mc") + " -o " + path("a.obj"));
  runCommand(tool("axp-cc") + " " + path("b.mc") + " -o " + path("b.obj"));
  CommandResult C = runCommand(tool("axp-ld") + " " + path("a.obj") + " " +
                               path("b.obj") + " -r " + path("ab.obj"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  C = runCommand(tool("axp-ld") + " " + path("ab.obj") + " -o " +
                 path("ab.exe"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  C = runCommand(tool("axp-run") + " " + path("ab.exe"));
  EXPECT_EQ(C.ExitCode, 0);
}

} // namespace

namespace {

TEST_F(CliFixture, AtomStrategyAndInlineFlags) {
  writeSource("p.mc", R"(
int main() {
  long i;
  long s = 0;
  for (i = 0; i < 30; i = i + 1)
    s = s + i * i;
  printf("s %ld\n", s);
  return 0;
}
)");
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));

  for (const char *Strategy :
       {"wrapper", "direct", "distributed", "save-all", "liveness"}) {
    CommandResult C = runCommand(
        tool("atom") + " " + path("p.exe") + " --tool prof --strategy " +
        Strategy + " --run -o " + path("p.atom"));
    EXPECT_EQ(C.ExitCode, 0) << Strategy << ": " << C.Output;
    EXPECT_NE(C.Output.find("s 8555"), std::string::npos)
        << Strategy << ": " << C.Output;
  }
  CommandResult C =
      runCommand(tool("atom") + " " + path("p.exe") +
                 " --tool prof --inline --no-rename --stats --run");
  EXPECT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("s 8555"), std::string::npos);
  EXPECT_NE(C.Output.find("points"), std::string::npos);

  C = runCommand(tool("atom") + " " + path("p.exe") +
                 " --tool malloc --heap-offset 1048576 --run");
  EXPECT_EQ(C.ExitCode, 0) << C.Output;

  C = runCommand(tool("atom") + " " + path("p.exe") + " --strategy bogus");
  EXPECT_NE(C.ExitCode, 0);
}

TEST_F(CliFixture, AtomOptPresetFlag) {
  writeSource("p.mc", R"(
int main() {
  long i;
  long s = 0;
  for (i = 0; i < 30; i = i + 1)
    s = s + i * i;
  printf("s %ld\n", s);
  return 0;
}
)");
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));

  // Both spellings of every preset instrument and run; the report tool's
  // output is identical at each level (the byte-identity contract).
  for (const char *Preset : {"O0", "O1", "O2"}) {
    CommandResult C = runCommand(
        tool("atom") + " " + path("p.exe") + " --tool cache --opt " +
        Preset + " --run -o " + path(std::string("p.") + Preset));
    EXPECT_EQ(C.ExitCode, 0) << Preset << ": " << C.Output;
    EXPECT_NE(C.Output.find("s 8555"), std::string::npos)
        << Preset << ": " << C.Output;
    C = runCommand(tool("atom") + " " + path("p.exe") +
                   " --tool cache --opt=" + Preset + " -o " +
                   path(std::string("q.") + Preset));
    EXPECT_EQ(C.ExitCode, 0) << Preset << ": " << C.Output;
    C = runCommand("cmp " + path(std::string("p.") + Preset) + " " +
                   path(std::string("q.") + Preset));
    EXPECT_EQ(C.ExitCode, 0) << Preset;
  }
  // O2 actually rewrites the probes: its output differs from O0's.
  CommandResult C =
      runCommand("cmp -s " + path("p.O0") + " " + path("p.O2"));
  EXPECT_NE(C.ExitCode, 0);

  // Unknown presets are a hard error naming the valid values, in both
  // spellings.
  for (const char *Bad : {" --opt O3", " --opt=o2", " --opt full"}) {
    C = runCommand(tool("atom") + " " + path("p.exe") + " --tool cache" +
                   Bad);
    EXPECT_EQ(C.ExitCode, 1) << Bad << ": " << C.Output;
    EXPECT_NE(C.Output.find("unknown opt preset"), std::string::npos)
        << Bad << ": " << C.Output;
    EXPECT_NE(C.Output.find("valid: O0, O1, O2"), std::string::npos)
        << Bad << ": " << C.Output;
  }
}

//===----------------------------------------------------------------------===//
// Observability: --stats phase tree, --metrics-out, --profile, --json-diag,
// stat histograms (docs/OBSERVABILITY.md).
//===----------------------------------------------------------------------===//

std::string readHostFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// Polls \p File until a line containing \p Needle appears (the atomd
/// smoke test starts the daemon in the background and must wait for its
/// readiness line) or ~10s pass.
bool waitForLogLine(const std::string &File, const std::string &Needle) {
  for (int I = 0; I < 200; ++I) {
    if (readHostFile(File).find(Needle) != std::string::npos)
      return true;
    runCommand("sleep 0.05");
  }
  return false;
}

/// First line of \p File containing \p Needle ("" if absent).
std::string grepLogLine(const std::string &File, const std::string &Needle) {
  std::string Text = readHostFile(File);
  size_t Pos = Text.find(Needle);
  if (Pos == std::string::npos)
    return "";
  size_t End = Text.find('\n', Pos);
  return Text.substr(Pos, End == std::string::npos ? End : End - Pos);
}

const char *ObsLoopProgram = R"(
int main() {
  long i;
  long sum = 0;
  for (i = 0; i < 50; i = i + 1)
    sum = sum + i;
  printf("sum %ld\n", sum);
  return 0;
}
)";

TEST_F(CliFixture, AtomStatsPrintsPhaseTimingTree) {
  writeSource("p.mc", ObsLoopProgram);
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));
  CommandResult C = runCommand(tool("atom") + " " + path("p.exe") +
                               " --tool prof --stats -o " + path("p.atom"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("phase timing"), std::string::npos) << C.Output;
  // The pipeline phases appear as children of the atom span, and the
  // CLI-level read/write spans bracket them.
  for (const char *Phase : {"read", "atom", "compile-analysis", "lift",
                            "link-analysis", "instrument", "plan", "rename",
                            "dataflow", "setup-calls", "insert",
                            "link-heaps", "layout", "write"})
    EXPECT_NE(C.Output.find(Phase), std::string::npos) << Phase;
}

TEST_F(CliFixture, AtomMetricsOutWritesDocument) {
  writeSource("p.mc", ObsLoopProgram);
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));
  CommandResult C = runCommand(
      tool("atom") + " " + path("p.exe") + " --tool dyninst -o " +
      path("p.atom") + " --metrics-out " + path("m.json"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  std::string Doc = readHostFile(path("m.json"));
  ASSERT_FALSE(Doc.empty());
  EXPECT_NE(Doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(Doc.find("\"atom.points\""), std::string::npos);
  EXPECT_NE(Doc.find("\"spans\""), std::string::npos);
  EXPECT_NE(Doc.find("\"lift\""), std::string::npos);

  // The same flag with = syntax and the Prometheus format.
  C = runCommand(tool("atom") + " " + path("p.exe") +
                 " --tool dyninst -o " + path("p.atom") +
                 " --metrics-out=" + path("m.prom") +
                 " --metrics-format=prom");
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  std::string Prom = readHostFile(path("m.prom"));
  EXPECT_NE(Prom.find("atom_atom_points"), std::string::npos) << Prom;
  EXPECT_NE(Prom.find("atom_span_seconds{path=\"atom/lift\"}"),
            std::string::npos)
      << Prom;
}

TEST_F(CliFixture, RunProfileMapsToOriginalAddresses) {
  writeSource("p.mc", ObsLoopProgram);
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));
  CommandResult C =
      runCommand(tool("atom") + " " + path("p.exe") + " --tool dyninst -o " +
                 path("p.atom"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;

  // Profile the uninstrumented program: identity addresses.
  C = runCommand(tool("axp-run") + " " + path("p.exe") +
                 " --profile=" + path("base.prof"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  std::string Base = readHostFile(path("base.prof"));
  EXPECT_NE(Base.find("hot blocks:"), std::string::npos) << Base;

  // Profile the instrumented program: application blocks resolve to
  // original addresses, inserted/analysis blocks print '-'.
  C = runCommand(tool("axp-run") + " " + path("p.atom") + " --profile " +
                 path("inst.prof"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  std::string Inst = readHostFile(path("inst.prof"));
  EXPECT_NE(Inst.find("hot blocks:"), std::string::npos) << Inst;
  EXPECT_NE(Inst.find("original"), std::string::npos);
  EXPECT_NE(Inst.find(" - "), std::string::npos) << Inst;
  // At least one original address from the base profile reappears.
  size_t AddrPos = Base.find("0x");
  ASSERT_NE(AddrPos, std::string::npos);
  std::string FirstAddr = Base.substr(AddrPos, Base.find(' ', AddrPos) -
                                                   AddrPos);
  EXPECT_NE(Inst.find(FirstAddr), std::string::npos)
      << "expected " << FirstAddr << " in:\n" << Inst;
}

TEST_F(CliFixture, RunJsonDiagEmitsSingleObject) {
  writeSource("c.mc", R"(
int main() {
  long *p;
  p = (long *)0;
  *p = 42;
  return 0;
}
)");
  runCommand(tool("axp-cc") + " " + path("c.mc") + " -o " + path("c.obj"));
  runCommand(tool("axp-ld") + " " + path("c.obj") + " -o " + path("c.exe"));
  CommandResult C =
      runCommand(tool("axp-run") + " " + path("c.exe") + " --json-diag");
  EXPECT_EQ(C.ExitCode, 124);
  EXPECT_EQ(C.Output.find("{\"event\":\"trap-diag\""), 0u) << C.Output;
  EXPECT_NE(C.Output.find("\"kind\":\"unmapped-access\""),
            std::string::npos);
  EXPECT_NE(C.Output.find("\"exit-code\":124"), std::string::npos);
  // One line only: the human-readable diagnostics are suppressed.
  EXPECT_EQ(C.Output.find("axp-run: trap"), std::string::npos) << C.Output;
}

TEST_F(CliFixture, TraceStatPrintsRecordSizeHistogram) {
  writeSource("p.mc", ObsLoopProgram);
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));
  CommandResult C = runCommand(tool("axp-trace") + " record " +
                               path("p.exe") + " -o " + path("t.atf"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  C = runCommand(tool("axp-trace") + " stat " + path("t.atf") +
                 " --metrics-out " + path("t.json"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("record-size histogram"), std::string::npos)
      << C.Output;
  EXPECT_NE(C.Output.find("count "), std::string::npos);
  std::string Doc = readHostFile(path("t.json"));
  EXPECT_NE(Doc.find("\"trace.record-bytes\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"trace.kind.load\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"buckets\""), std::string::npos);
}

TEST_F(CliFixture, NumericFlagsRejectGarbage) {
  // strtoul-style silent acceptance is a bug class of its own: every
  // numeric flag must reject non-numeric text with a hard error instead
  // of quietly parsing it as 0.
  for (const char *Bad :
       {" --jobs max", " -j 4x", " --jobs -4", " --heap-offset lots",
        " --cache-bytes huge", " --cache-bytes 1z", " --inline-limit big",
        " --inline-limit 24k"}) {
    CommandResult C = runCommand(tool("atom") + " p.exe --tool prof" + Bad);
    EXPECT_EQ(C.ExitCode, 1) << Bad << ": " << C.Output;
    EXPECT_NE(C.Output.find("invalid value"), std::string::npos)
        << Bad << ": " << C.Output;
  }
  for (const char *Bad :
       {" --jobs many", " --queue-max banana", " --client-quota 2q",
        " --store-bytes 10z", " --metrics-http http"}) {
    CommandResult C =
        runCommand(tool("atomd") + " serve --socket s.sock" + Bad);
    EXPECT_EQ(C.ExitCode, 1) << Bad << ": " << C.Output;
    EXPECT_NE(C.Output.find("invalid value"), std::string::npos)
        << Bad << ": " << C.Output;
  }
  // Suffixed byte sizes are fine; zero queue capacity is not.
  CommandResult C =
      runCommand(tool("atomd") + " serve --socket s.sock --queue-max 0");
  EXPECT_EQ(C.ExitCode, 1);
  EXPECT_NE(C.Output.find("at least 1"), std::string::npos) << C.Output;
}

TEST_F(CliFixture, AtomdServeConnectScrapeShutdown) {
  writeSource("p.mc", R"(
int main() {
  long i;
  long s = 0;
  for (i = 0; i < 25; i = i + 1)
    s = s + i;
  printf("s %ld\n", s);
  return 0;
}
)");
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));
  CommandResult C = runCommand(tool("atom") + " " + path("p.exe") +
                               " --tool prof -o " + path("local.atom"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;

  std::string Sock = path("d.sock");
  std::string Log = path("d.log");
  // --no-isolate: this test pins the daemon's own in-process cache
  // counters, which worker processes would keep to themselves. The
  // isolate path has its own suite (tests/ResilienceTests.cpp).
  runCommand(tool("atomd") + " serve --socket " + Sock + " --no-isolate" +
             " --store " + path("store") + " --metrics-http 0 > " + Log +
             " 2>&1 &");
  ASSERT_TRUE(waitForLogLine(Log, "atomd: listening")) << readHostFile(Log);

  // The daemon result is byte-identical to the standalone run.
  C = runCommand(tool("atom") + " --connect " + Sock + " " + path("p.exe") +
                 " --tool prof -o " + path("remote.atom"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  C = runCommand("cmp " + path("local.atom") + " " + path("remote.atom"));
  EXPECT_EQ(C.ExitCode, 0) << C.Output;
  C = runCommand(tool("axp-run") + " " + path("remote.atom") +
                 " --dump prof.out");
  EXPECT_EQ(C.ExitCode, 0);
  EXPECT_NE(C.Output.find("s 300"), std::string::npos) << C.Output;

  // A repeat request is served warm; the Prometheus scrape shows the hits.
  C = runCommand(tool("atom") + " --connect " + Sock + " " + path("p.exe") +
                 " --tool prof -o " + path("warm.atom"));
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  C = runCommand("cmp " + path("local.atom") + " " + path("warm.atom"));
  EXPECT_EQ(C.ExitCode, 0) << C.Output;

  std::string Line = grepLogLine(Log, "atomd: metrics on http://127.0.0.1:");
  ASSERT_FALSE(Line.empty()) << readHostFile(Log);
  std::string Port = Line.substr(Line.rfind(':') + 1);
  Port = Port.substr(0, Port.find('/'));
  C = runCommand("bash -c 'exec 3<>/dev/tcp/127.0.0.1/" + Port +
                 " && printf \"GET /metrics HTTP/1.0\\r\\n\\r\\n\" >&3 && "
                 "cat <&3'");
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("atom_atomd_requests 2"), std::string::npos)
      << C.Output;
  EXPECT_NE(C.Output.find("atom_atom_cache_hits 2"), std::string::npos)
      << C.Output;
  EXPECT_NE(C.Output.find("atom_atomd_request_latency_us_count 2"),
            std::string::npos)
      << C.Output;

  C = runCommand(tool("atomd") + " status --socket " + Sock);
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("\"store\""), std::string::npos) << C.Output;
  EXPECT_NE(C.Output.find("\"atom\""), std::string::npos)
      << C.Output; // the client label

  C = runCommand(tool("atomd") + " shutdown --socket " + Sock);
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  EXPECT_NE(C.Output.find("shutdown requested"), std::string::npos);
  ASSERT_TRUE(waitForLogLine(Log, "atomd: stopped")) << readHostFile(Log);
}

TEST_F(CliFixture, AtomdConnectOptPresetsMatchStandalone) {
  // The optimization surface travels over the wire: at every --opt level,
  // the daemon-served executable is byte-identical to the standalone one
  // built with the same flags.
  writeSource("p.mc", R"(
int main() {
  long i;
  long s = 0;
  for (i = 0; i < 25; i = i + 1)
    s = s + i;
  printf("s %ld\n", s);
  return 0;
}
)");
  runCommand(tool("axp-cc") + " " + path("p.mc") + " -o " + path("p.obj"));
  runCommand(tool("axp-ld") + " " + path("p.obj") + " -o " + path("p.exe"));

  std::string Sock = path("d.sock");
  std::string Log = path("d.log");
  runCommand(tool("atomd") + " serve --socket " + Sock + " --metrics-http 0 "
             "> " + Log + " 2>&1 &");
  ASSERT_TRUE(waitForLogLine(Log, "atomd: listening")) << readHostFile(Log);

  for (const char *Preset : {"O0", "O1", "O2"}) {
    std::string Flags = std::string(" --tool cache --opt ") + Preset;
    CommandResult C = runCommand(tool("atom") + " " + path("p.exe") + Flags +
                                 " -o " + path("local.atom"));
    ASSERT_EQ(C.ExitCode, 0) << Preset << ": " << C.Output;
    C = runCommand(tool("atom") + " --connect " + Sock + " " +
                   path("p.exe") + Flags + " -o " + path("remote.atom"));
    ASSERT_EQ(C.ExitCode, 0) << Preset << ": " << C.Output;
    C = runCommand("cmp " + path("local.atom") + " " + path("remote.atom"));
    EXPECT_EQ(C.ExitCode, 0) << Preset << ": " << C.Output;
    C = runCommand(tool("axp-run") + " " + path("remote.atom") +
                   " --dump cache.out");
    EXPECT_EQ(C.ExitCode, 0) << Preset;
    EXPECT_NE(C.Output.find("s 300"), std::string::npos)
        << Preset << ": " << C.Output;
  }

  CommandResult C = runCommand(tool("atomd") + " shutdown --socket " + Sock);
  ASSERT_EQ(C.ExitCode, 0) << C.Output;
  ASSERT_TRUE(waitForLogLine(Log, "atomd: stopped")) << readHostFile(Log);
}

} // namespace
