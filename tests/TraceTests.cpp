//===- tests/TraceTests.cpp - ATF encode/decode and replay equivalence ----===//
//
// Three layers of coverage: (1) the ATF wire format round-trips arbitrary
// event streams and rejects truncated or corrupt files, (2) the two
// producers — simulator sink and `trace` instrumentation tool — record
// identical event streams, and (3) offline replay of a recorded trace
// reproduces the live cache/branch tool reports bit-for-bit.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "tools/Tools.h"
#include "trace/Replay.h"
#include "trace/TraceSink.h"
#include "trace/TraceTool.h"
#include "workloads/Workloads.h"

#include <random>

using namespace atom;
using namespace atom::test;
using namespace atom::trace;

namespace {

obj::Executable buildWorkload(const char *Name) {
  const workloads::Workload *W = workloads::findWorkload(Name);
  EXPECT_NE(W, nullptr) << Name;
  return buildOrDie(W->Source);
}

/// Runs the live tool \p ToolName on \p App and returns its report file.
std::string liveToolReport(const char *ToolName, const obj::Executable &App) {
  const Tool *T = tools::findTool(ToolName);
  EXPECT_NE(T, nullptr);
  InstrumentedProgram Out = instrumentOrDie(App, *T);
  sim::Machine M(Out.Exe);
  sim::RunResult R = M.run();
  EXPECT_TRUE(R.exitedWith(0)) << R.FaultMessage;
  return M.vfs().fileContents(std::string(ToolName) + ".out");
}

std::vector<uint8_t> recordSink(const obj::Executable &App,
                                uint32_t EventsPerBlock = 4096) {
  DiagEngine Diags;
  std::vector<uint8_t> Atf;
  sim::RunResult Run;
  bool Ok = recordTrace(App, /*FullRun=*/false, Atf, Run, Diags,
                        EventsPerBlock);
  EXPECT_TRUE(Ok) << Diags.str();
  return Atf;
}

std::vector<uint8_t> recordTool(const obj::Executable &App) {
  DiagEngine Diags;
  std::vector<uint8_t> Atf;
  sim::RunResult Run;
  bool Ok = recordTraceViaTool(App, ToolRecordOptions(), Atf, Run, Diags);
  EXPECT_TRUE(Ok) << Diags.str();
  return Atf;
}

AtfReader openOrFail(const std::vector<uint8_t> &Bytes) {
  AtfReader R;
  EXPECT_EQ(R.open(Bytes), AtfReader::Error::None)
      << AtfReader::errorString(R.error());
  return R;
}

//===----------------------------------------------------------------------===//
// Varint primitives
//===----------------------------------------------------------------------===//

TEST(AtfVarint, RoundTripsEdgeValues) {
  const uint64_t Values[] = {0,    1,    127,  128,   129,    16383, 16384,
                             1ULL << 32, ~0ULL, ~0ULL - 1, 0x8000000000000000ULL};
  std::vector<uint8_t> Buf;
  for (uint64_t V : Values)
    appendVarint(Buf, V);
  size_t Pos = 0;
  for (uint64_t V : Values) {
    uint64_t Got = 0;
    ASSERT_TRUE(readVarint(Buf.data(), Pos, Buf.size(), Got));
    EXPECT_EQ(Got, V);
  }
  EXPECT_EQ(Pos, Buf.size());
}

TEST(AtfVarint, RejectsTruncatedAndOverlong) {
  std::vector<uint8_t> Buf;
  appendVarint(Buf, ~0ULL);
  uint64_t V = 0;
  for (size_t Cut = 0; Cut < Buf.size(); ++Cut) {
    size_t Pos = 0;
    EXPECT_FALSE(readVarint(Buf.data(), Pos, Cut, V)) << Cut;
  }
  // Eleven continuation bytes can't be a valid 64-bit varint.
  std::vector<uint8_t> Overlong(11, 0x80);
  size_t Pos = 0;
  EXPECT_FALSE(readVarint(Overlong.data(), Pos, Overlong.size(), V));
}

TEST(AtfVarint, ZigzagIsAnInvolution) {
  const int64_t Values[] = {0, -1, 1, -2, 2, INT64_MIN, INT64_MAX, -4096};
  for (int64_t V : Values) {
    EXPECT_EQ(zigzagDecode(zigzagEncode(V)), V);
    EXPECT_LE(zigzagEncode(V >= -64 && V < 64 ? V : 0), 127u);
  }
}

//===----------------------------------------------------------------------===//
// Round-trip
//===----------------------------------------------------------------------===//

Event randomEvent(std::mt19937_64 &Rng, uint64_t &PC) {
  Event E;
  E.Kind = EventKind(Rng() % NumEventKinds);
  // Mostly sequential PCs with occasional jumps, like real code.
  PC = (Rng() % 8 == 0) ? (Rng() % (1ULL << 40)) & ~3ULL : PC + 4;
  E.PC = PC;
  switch (E.Kind) {
  case EventKind::Load:
  case EventKind::Store:
    E.Addr = Rng() % (1ULL << 44);
    E.Size = uint8_t(1u << (Rng() % 4));
    break;
  case EventKind::CondBranch:
    E.Taken = Rng() % 2;
    break;
  case EventKind::Call:
    if (Rng() % 4)
      E.Target = (Rng() % (1ULL << 40)) & ~3ULL;
    break;
  case EventKind::Syscall:
    E.Sysno = Rng() % 64;
    break;
  default:
    break;
  }
  return E;
}

TEST(AtfRoundTrip, RandomEventsManyBlocks) {
  std::mt19937_64 Rng(7);
  uint64_t PC = 0x120000000;
  std::vector<Event> Events;
  for (int I = 0; I < 20000; ++I)
    Events.push_back(randomEvent(Rng, PC));

  AtfWriter W(/*EventsPerBlock=*/64);
  W.setStaticCondBranches(123);
  for (const Event &E : Events)
    W.append(E);
  std::vector<uint8_t> Bytes = W.finish();

  AtfReader R = openOrFail(Bytes);
  EXPECT_EQ(R.stat().EventCount, Events.size());
  EXPECT_EQ(R.stat().BlockCount, (Events.size() + 63) / 64);
  EXPECT_EQ(R.stat().StaticCondBranches, 123u);
  EXPECT_EQ(R.stat().FileBytes, Bytes.size());

  std::vector<Event> Decoded = R.readAll();
  EXPECT_EQ(R.error(), AtfReader::Error::None);
  ASSERT_EQ(Decoded.size(), Events.size());
  for (size_t I = 0; I < Events.size(); ++I)
    ASSERT_EQ(Decoded[I], Events[I]) << "event " << I;

  // Header kind totals agree with the payload.
  uint64_t Counts[NumEventKinds] = {};
  for (const Event &E : Events)
    ++Counts[unsigned(E.Kind)];
  for (unsigned K = 0; K < NumEventKinds; ++K)
    EXPECT_EQ(R.stat().KindCounts[K], Counts[K]) << eventKindName(EventKind(K));
}

TEST(AtfRoundTrip, EmptyTrace) {
  AtfWriter W;
  std::vector<uint8_t> Bytes = W.finish();
  AtfReader R = openOrFail(Bytes);
  EXPECT_EQ(R.stat().EventCount, 0u);
  EXPECT_EQ(R.stat().BlockCount, 0u);
  EXPECT_TRUE(R.readAll().empty());
  EXPECT_EQ(R.error(), AtfReader::Error::None);
}

TEST(AtfRoundTrip, EarlyStopAndRestart) {
  AtfWriter W(/*EventsPerBlock=*/8);
  for (int I = 0; I < 100; ++I) {
    Event E;
    E.PC = 0x1000 + 4 * unsigned(I);
    W.append(E);
  }
  std::vector<uint8_t> Bytes = W.finish();
  AtfReader R = openOrFail(Bytes);
  int Seen = 0;
  EXPECT_TRUE(R.forEach([&](const Event &) { return ++Seen < 10; }));
  EXPECT_EQ(Seen, 10);
  // The reader is restartable: a second pass sees everything.
  Seen = 0;
  EXPECT_TRUE(R.forEach([&](const Event &) { return ++Seen, true; }));
  EXPECT_EQ(Seen, 100);
}

TEST(AtfRoundTrip, SequentialCodeCostsAboutOneBytePerEvent) {
  AtfWriter W;
  for (unsigned I = 0; I < 10000; ++I) {
    Event E;
    E.PC = 0x120000000 + 4 * I;
    W.append(E);
  }
  std::vector<uint8_t> Bytes = W.finish();
  AtfReader R = openOrFail(Bytes);
  EXPECT_LE(R.stat().PayloadBytes, uint64_t(10000 * 1.01 + 16));
}

//===----------------------------------------------------------------------===//
// Rejection of damaged files
//===----------------------------------------------------------------------===//

std::vector<uint8_t> smallValidTrace() {
  AtfWriter W(/*EventsPerBlock=*/16);
  uint64_t PC = 0x1000;
  std::mt19937_64 Rng(11);
  for (int I = 0; I < 100; ++I)
    W.append(randomEvent(Rng, PC));
  return W.finish();
}

TEST(AtfReject, TruncatedFiles) {
  std::vector<uint8_t> Bytes = smallValidTrace();
  // Every proper prefix must be rejected at open() — header, blocks, and
  // index sizes are all cross-checked against the file size.
  for (size_t Len = 0; Len < Bytes.size(); Len += 7) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + long(Len));
    AtfReader R;
    EXPECT_NE(R.open(Cut), AtfReader::Error::None) << "length " << Len;
  }
}

TEST(AtfReject, BadMagicAndVersion) {
  std::vector<uint8_t> Bytes = smallValidTrace();
  {
    std::vector<uint8_t> Bad = Bytes;
    Bad[0] = 'X';
    AtfReader R;
    EXPECT_EQ(R.open(Bad), AtfReader::Error::BadMagic);
  }
  {
    std::vector<uint8_t> Bad = Bytes;
    Bad[4] = 0xFF; // version
    AtfReader R;
    EXPECT_EQ(R.open(Bad), AtfReader::Error::BadVersion);
  }
}

TEST(AtfReject, InconsistentHeaderCounts) {
  std::vector<uint8_t> Bytes = smallValidTrace();
  // Bump the event-count field: kind totals no longer add up.
  Bytes[16] += 1;
  AtfReader R;
  EXPECT_EQ(R.open(Bytes), AtfReader::Error::BadHeader);
}

TEST(AtfReject, CorruptIndex) {
  std::vector<uint8_t> Bytes = smallValidTrace();
  AtfReader Good;
  ASSERT_EQ(Good.open(Bytes), AtfReader::Error::None);
  ASSERT_GT(Good.stat().BlockCount, 1u);
  // Point the first index entry's file offset past the end of the file.
  uint64_t IndexOff = Bytes.size() - Good.stat().BlockCount * 24;
  for (int I = 0; I < 8; ++I)
    Bytes[size_t(IndexOff) + size_t(I)] = 0xFF;
  AtfReader R;
  EXPECT_EQ(R.open(Bytes), AtfReader::Error::BadIndex);
}

TEST(AtfReject, CorruptPayload) {
  std::vector<uint8_t> Bytes = smallValidTrace();
  // Force a dangling continuation bit on the last byte of the first
  // block's payload: the decoder must fail, not read out of bounds.
  uint32_t PayloadSize = uint32_t(Bytes[104]) | uint32_t(Bytes[105]) << 8 |
                         uint32_t(Bytes[106]) << 16 |
                         uint32_t(Bytes[107]) << 24;
  Bytes[104 + 24 + PayloadSize - 1] = 0x80;
  AtfReader R;
  ASSERT_EQ(R.open(Bytes), AtfReader::Error::None);
  EXPECT_FALSE(R.forEach([](const Event &) { return true; }));
  EXPECT_EQ(R.error(), AtfReader::Error::BadPayload);
}

//===----------------------------------------------------------------------===//
// The sink producer: measurement window
//===----------------------------------------------------------------------===//

TEST(TraceWindow, EventCountMatchesOracleWindow) {
  obj::Executable App = buildWorkload("fib");
  // Count retired instructions up to __exit with a bare hook — the same
  // window the tools' reports cover.
  int ExitSym = App.findSymbol("__exit");
  ASSERT_GE(ExitSym, 0);
  uint64_t ExitAddr = App.Symbols[size_t(ExitSym)].Value;
  uint64_t Expected = 0;
  bool Done = false;
  sim::Machine M(App);
  M.setTraceHook([&](const sim::TraceEvent &E) {
    if (Done || E.PC == ExitAddr) {
      Done = true;
      return;
    }
    ++Expected;
  });
  ASSERT_EQ(M.run().Status, sim::RunStatus::Exited);

  std::vector<uint8_t> Atf = recordSink(App);
  AtfReader R = openOrFail(Atf);
  EXPECT_EQ(R.stat().EventCount, Expected);
}

TEST(TraceWindow, FullRunRecordsMoreThanWindow) {
  obj::Executable App = buildWorkload("fib");
  DiagEngine Diags;
  std::vector<uint8_t> Windowed, Full;
  sim::RunResult Run;
  ASSERT_TRUE(recordTrace(App, /*FullRun=*/false, Windowed, Run, Diags));
  ASSERT_TRUE(recordTrace(App, /*FullRun=*/true, Full, Run, Diags));
  AtfReader RW = openOrFail(Windowed), RF = openOrFail(Full);
  EXPECT_GT(RF.stat().EventCount, RW.stat().EventCount);
}

//===----------------------------------------------------------------------===//
// Producer equivalence: instrumentation tool vs. simulator sink
//===----------------------------------------------------------------------===//

class ProducerEquivalence : public ::testing::TestWithParam<const char *> {};

TEST_P(ProducerEquivalence, ToolTraceEqualsSinkTrace) {
  obj::Executable App = buildWorkload(GetParam());
  std::vector<uint8_t> SinkAtf = recordSink(App);
  std::vector<uint8_t> ToolAtf = recordTool(App);

  AtfReader SR = openOrFail(SinkAtf), TR = openOrFail(ToolAtf);
  EXPECT_EQ(SR.stat().StaticCondBranches, TR.stat().StaticCondBranches);
  std::vector<Event> Sink = SR.readAll(), Tool = TR.readAll();
  ASSERT_EQ(SR.error(), AtfReader::Error::None);
  ASSERT_EQ(TR.error(), AtfReader::Error::None);
  ASSERT_EQ(Sink.size(), Tool.size());
  for (size_t I = 0; I < Sink.size(); ++I)
    ASSERT_EQ(Sink[I], Tool[I])
        << "event " << I << ": sink pc 0x" << std::hex << Sink[I].PC
        << " kind " << eventKindName(Sink[I].Kind) << ", tool pc 0x"
        << Tool[I].PC << " kind " << eventKindName(Tool[I].Kind);
}

INSTANTIATE_TEST_SUITE_P(Workloads, ProducerEquivalence,
                         ::testing::Values("fib", "crc", "list"));

//===----------------------------------------------------------------------===//
// Replay equivalence: offline analyzers vs. live tools, bit for bit
//===----------------------------------------------------------------------===//

class CacheReplayEquivalence : public ::testing::TestWithParam<const char *> {
};

TEST_P(CacheReplayEquivalence, SinkReplayMatchesLiveReport) {
  obj::Executable App = buildWorkload(GetParam());
  std::string Live = liveToolReport("cache", App);
  ASSERT_FALSE(Live.empty());

  std::vector<uint8_t> Atf = recordSink(App);
  AtfReader R = openOrFail(Atf);
  CacheReplayResult Res;
  ASSERT_TRUE(replayCache(R, Res));
  EXPECT_EQ(Res.report(), Live);
}

INSTANTIATE_TEST_SUITE_P(Workloads, CacheReplayEquivalence,
                         ::testing::Values("matmul", "list", "crc"));

class BranchReplayEquivalence : public ::testing::TestWithParam<const char *> {
};

TEST_P(BranchReplayEquivalence, SinkReplayMatchesLiveReport) {
  obj::Executable App = buildWorkload(GetParam());
  std::string Live = liveToolReport("branch", App);
  ASSERT_FALSE(Live.empty());

  std::vector<uint8_t> Atf = recordSink(App);
  AtfReader R = openOrFail(Atf);
  BranchReplayResult Res;
  ASSERT_TRUE(replayBranch(R, Res));
  EXPECT_EQ(Res.report(), Live);
}

INSTANTIATE_TEST_SUITE_P(Workloads, BranchReplayEquivalence,
                         ::testing::Values("fib", "qsort", "sieve",
                                           "dijkstra"));

TEST(ToolTraceReplay, MatchesLiveReports) {
  // The full paper workflow: record once with the trace tool, then run
  // both offline analyzers against the one recording.
  obj::Executable App = buildWorkload("qsort");
  std::vector<uint8_t> Atf = recordTool(App);
  AtfReader R = openOrFail(Atf);

  CacheReplayResult Cache;
  ASSERT_TRUE(replayCache(R, Cache));
  EXPECT_EQ(Cache.report(), liveToolReport("cache", App));

  BranchReplayResult Branch;
  ASSERT_TRUE(replayBranch(R, Branch));
  EXPECT_EQ(Branch.report(), liveToolReport("branch", App));
}

//===----------------------------------------------------------------------===//
// The trace tool is addressable but not part of the Figure 5 suite
//===----------------------------------------------------------------------===//

TEST(TraceTool, FindableButNotInSuite) {
  const Tool *T = tools::findTool("trace");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Name, "trace");
  for (const Tool &Suite : tools::allTools())
    EXPECT_NE(Suite.Name, "trace");
}

} // namespace
