//===- tests/AtomTests.cpp - ATOM engine and pristine-behaviour tests -----===//
//
// Verifies the paper's §4 guarantees: the instrumented program behaves
// exactly like the uninstrumented one (same output, same data/heap/stack
// addresses), analysis code lives between program text and data, register
// state is preserved across analysis calls under every save strategy, and
// the two-sbrk heap schemes work.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "om/Lift.h"
#include "tools/Tools.h"
#include "workloads/Workloads.h"

using namespace atom;
using namespace atom::test;

namespace {

//===----------------------------------------------------------------------===//
// API validation
//===----------------------------------------------------------------------===//

class ApiFixture : public ::testing::Test {
protected:
  void SetUp() override {
    App = buildOrDie("int main() { long x = 1; if (x) x = 2; return 0; }");
    ASSERT_TRUE(om::liftExecutable(App, Unit, Diags)) << Diags.str();
    Ctx = std::make_unique<InstrumentationContext>(Unit);
  }

  /// First conditional branch instruction in the program.
  Inst *findCondBranch() {
    for (Proc *P = Ctx->getFirstProc(); P; P = Ctx->getNextProc(P))
      for (Block *B = Ctx->getFirstBlock(P); B; B = Ctx->getNextBlock(B))
        for (Inst *I = Ctx->getFirstInst(B); I; I = Ctx->getNextInst(I))
          if (Ctx->isInstType(I, InstType::CondBranch))
            return I;
    return nullptr;
  }

  Inst *findLoad() {
    for (Proc *P = Ctx->getFirstProc(); P; P = Ctx->getNextProc(P))
      for (Block *B = Ctx->getFirstBlock(P); B; B = Ctx->getNextBlock(B))
        for (Inst *I = Ctx->getFirstInst(B); I; I = Ctx->getNextInst(I))
          if (Ctx->isInstType(I, InstType::Load))
            return I;
    return nullptr;
  }

  obj::Executable App;
  om::Unit Unit;
  DiagEngine Diags;
  std::unique_ptr<InstrumentationContext> Ctx;
};

TEST_F(ApiFixture, ProtoParsing) {
  EXPECT_TRUE(Ctx->addCallProto("F(int, long, REGV, VALUE)"));
  EXPECT_TRUE(Ctx->addCallProto("G()"));
  EXPECT_FALSE(Ctx->addCallProto("NoParens"));
  EXPECT_FALSE(Ctx->addCallProto("F(int)")); // duplicate
  EXPECT_FALSE(Ctx->addCallProto("H(float)"));
  ASSERT_NE(Ctx->findProto("F"), nullptr);
  EXPECT_EQ(Ctx->findProto("F")->Params.size(), 4u);
  EXPECT_EQ(Ctx->findProto("Zzz"), nullptr);
}

TEST_F(ApiFixture, CallWithoutProtoFails) {
  EXPECT_FALSE(
      Ctx->addCallProgram(ProgramPoint::ProgramBefore, "Missing", {}));
  EXPECT_TRUE(Ctx->hasErrors());
}

TEST_F(ApiFixture, ArgCountAndKindChecking) {
  Ctx->addCallProto("F(int, REGV)");
  Inst *Br = findCondBranch();
  ASSERT_NE(Br, nullptr);
  EXPECT_FALSE(Ctx->addCallInst(Br, InstPoint::InstBefore, "F",
                                {Arg::imm(1)})); // too few
  EXPECT_FALSE(Ctx->addCallInst(
      Br, InstPoint::InstBefore, "F",
      {Arg::imm(1), Arg::imm(2)})); // const into a REGV slot
  EXPECT_TRUE(Ctx->addCallInst(Br, InstPoint::InstBefore, "F",
                               {Arg::imm(1), Arg::regv(isa::RegSP)}));
}

TEST_F(ApiFixture, ValueArgsRequireMatchingSite) {
  Ctx->addCallProto("V(VALUE)");
  Inst *Br = findCondBranch();
  Inst *Ld = findLoad();
  ASSERT_NE(Br, nullptr);
  ASSERT_NE(Ld, nullptr);
  // BrCondValue only on conditional branches; EffAddrValue only on
  // loads/stores (paper §3).
  EXPECT_TRUE(Ctx->addCallInst(Br, InstPoint::InstBefore, "V",
                               {Arg::value(RuntimeValue::BrCondValue)}));
  EXPECT_FALSE(Ctx->addCallInst(Ld, InstPoint::InstBefore, "V",
                                {Arg::value(RuntimeValue::BrCondValue)}));
  EXPECT_TRUE(Ctx->addCallInst(Ld, InstPoint::InstBefore, "V",
                               {Arg::value(RuntimeValue::EffAddrValue)}));
  EXPECT_FALSE(Ctx->addCallInst(Br, InstPoint::InstBefore, "V",
                                {Arg::value(RuntimeValue::EffAddrValue)}));
  // VALUE args make no sense at block/proc/program level.
  EXPECT_FALSE(Ctx->addCallProgram(ProgramPoint::ProgramBefore, "V",
                                   {Arg::value(RuntimeValue::BrCondValue)}));
}

TEST_F(ApiFixture, InstAfterOnBranchRejected) {
  Ctx->addCallProto("F()");
  Inst *Br = findCondBranch();
  ASSERT_NE(Br, nullptr);
  EXPECT_FALSE(Ctx->addCallInst(Br, InstPoint::InstAfter, "F", {}));
}

TEST_F(ApiFixture, TraversalShape) {
  // Traversal visits every instruction exactly once and getLastInst
  // matches the last of getFirst/getNext iteration.
  unsigned Total = 0;
  for (Proc *P = Ctx->getFirstProc(); P; P = Ctx->getNextProc(P)) {
    EXPECT_FALSE(Ctx->procName(P).empty());
    unsigned ProcTotal = 0;
    for (Block *B = Ctx->getFirstBlock(P); B; B = Ctx->getNextBlock(B)) {
      Inst *Last = nullptr;
      unsigned N = 0;
      for (Inst *I = Ctx->getFirstInst(B); I; I = Ctx->getNextInst(I)) {
        Last = I;
        ++N;
      }
      EXPECT_EQ(Last, Ctx->getLastInst(B));
      EXPECT_EQ(int(N), Ctx->instCount(B));
      ProcTotal += N;
      Total += N;
    }
    EXPECT_EQ(int(ProcTotal), Ctx->procInstTotal(P));
  }
  EXPECT_GT(Total, 100u); // app + runtime
  EXPECT_NE(Ctx->findProc("main"), nullptr);
  EXPECT_NE(Ctx->findProc("_start"), nullptr);
  EXPECT_EQ(Ctx->findProc("no_such_proc"), nullptr);
}

//===----------------------------------------------------------------------===//
// Pristine behaviour across all tools (paper §4)
//===----------------------------------------------------------------------===//

struct ToolWorkloadCase {
  const char *ToolName;
  const char *WorkloadName;
};

class PristineBehaviour : public ::testing::TestWithParam<ToolWorkloadCase> {
};

TEST_P(PristineBehaviour, OutputAndLayout) {
  const Tool *T = tools::findTool(GetParam().ToolName);
  const workloads::Workload *W =
      workloads::findWorkload(GetParam().WorkloadName);
  ASSERT_NE(T, nullptr);
  ASSERT_NE(W, nullptr);

  obj::Executable App = buildOrDie(W->Source);
  RunOutcome Base = runProgram(App);
  ASSERT_TRUE(Base.Result.exitedWith(0)) << Base.Result.FaultMessage;

  InstrumentedProgram Out = instrumentOrDie(App, *T);

  // Layout properties (Figure 4): program data, bss, heap and stack
  // anchors unchanged; analysis placed strictly between program text and
  // program data.
  EXPECT_EQ(Out.Exe.DataStart, App.DataStart);
  EXPECT_EQ(Out.Exe.BssSize, App.BssSize);
  EXPECT_EQ(Out.Exe.HeapStart, App.HeapStart);
  EXPECT_EQ(Out.Exe.StackStart, App.StackStart);
  EXPECT_EQ(Out.Exe.TextStart, App.TextStart);
  EXPECT_GE(Out.Exe.Text.size(), App.Text.size());
  EXPECT_LE(Out.Exe.TextStart + Out.Exe.Text.size(), Out.Exe.DataStart);
  for (const obj::Segment &S : Out.Exe.Segments) {
    EXPECT_GE(S.Addr, Out.Layout.AnalysisTextStart);
    EXPECT_LE(S.Addr + S.Bytes.size(), Out.Exe.DataStart);
  }

  // Program data unchanged except the statically initialized heap-break
  // cell.
  ASSERT_EQ(Out.Exe.Data.size(), App.Data.size());
  int Cell = App.findSymbol("__heap_break");
  uint64_t CellOff = Cell >= 0 ? App.Symbols[size_t(Cell)].Value -
                                     App.DataStart
                               : ~uint64_t(0);
  for (size_t I = 0; I < App.Data.size(); ++I) {
    if (I >= CellOff && I < CellOff + 8)
      continue;
    ASSERT_EQ(Out.Exe.Data[I], App.Data[I]) << "data byte " << I;
  }

  // Behavioural property: identical application output and exit status.
  sim::Machine M(Out.Exe);
  sim::RunResult R = M.run();
  ASSERT_TRUE(R.exitedWith(0))
      << GetParam().ToolName << "/" << GetParam().WorkloadName << ": "
      << R.FaultMessage << " at 0x" << std::hex << R.FaultPC;
  EXPECT_EQ(M.vfs().stdoutText(), Base.Stdout);

  // The tool must have produced its output file.
  std::string OutFile = std::string(GetParam().ToolName) + ".out";
  EXPECT_TRUE(M.vfs().fileExists(OutFile)) << OutFile;

  // And instrumentation must cost something (except tools that found no
  // instrumentation points in this workload).
  EXPECT_GE(M.stats().Instructions, Base.Instructions);
}

std::vector<ToolWorkloadCase> pristineMatrix() {
  // Every tool against a representative workload mix.
  const char *Loads[] = {"fib",       "sieve",  "hash",   "unaligned",
                         "iobound",   "qsort",  "tree",   "mallocmix",
                         "crc"};
  std::vector<ToolWorkloadCase> Cases;
  for (const Tool &T : tools::allTools())
    for (const char *W : Loads)
      Cases.push_back({T.Name.c_str(), W});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PristineBehaviour, ::testing::ValuesIn(pristineMatrix()),
    [](const ::testing::TestParamInfo<ToolWorkloadCase> &I) {
      return std::string(I.param.ToolName) + "_" + I.param.WorkloadName;
    });

//===----------------------------------------------------------------------===//
// Save strategies (paper §4 "Reducing Procedure Call Overhead")
//===----------------------------------------------------------------------===//

class SaveStrategyTest
    : public ::testing::TestWithParam<AtomOptions::SaveStrategy> {};

TEST_P(SaveStrategyTest, PreservesBehaviourAndToolOutput) {
  const Tool *T = tools::findTool("branch");
  const workloads::Workload *W = workloads::findWorkload("qsort");
  obj::Executable App = buildOrDie(W->Source);
  RunOutcome Base = runProgram(App);

  AtomOptions Opts;
  Opts.Strategy = GetParam();
  InstrumentedProgram Out = instrumentOrDie(App, *T, Opts);
  sim::Machine M(Out.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  EXPECT_EQ(M.vfs().stdoutText(), Base.Stdout);

  // The tool results must be identical under every strategy.
  static std::string Reference;
  std::string Result = M.vfs().fileContents("branch.out");
  EXPECT_FALSE(Result.empty());
  if (GetParam() == AtomOptions::SaveStrategy::SaveAll)
    Reference = Result; // first in the instantiation order below
  else if (!Reference.empty())
    EXPECT_EQ(Result, Reference);
}

INSTANTIATE_TEST_SUITE_P(
    All, SaveStrategyTest,
    ::testing::Values(AtomOptions::SaveStrategy::SaveAll,
                      AtomOptions::SaveStrategy::WrapperSummary,
                      AtomOptions::SaveStrategy::DirectInline,
                      AtomOptions::SaveStrategy::Distributed,
                      AtomOptions::SaveStrategy::SiteLiveness),
    [](const ::testing::TestParamInfo<AtomOptions::SaveStrategy> &I) {
      switch (I.param) {
      case AtomOptions::SaveStrategy::SaveAll: return "SaveAll";
      case AtomOptions::SaveStrategy::WrapperSummary: return "Wrapper";
      case AtomOptions::SaveStrategy::DirectInline: return "DirectInline";
      case AtomOptions::SaveStrategy::Distributed: return "Distributed";
      case AtomOptions::SaveStrategy::SiteLiveness: return "SiteLiveness";
      }
      return "Unknown";
    });

TEST(SaveStrategies, SummaryBeatsSaveAll) {
  // The data-flow summary must shrink the save sets (fewer inserted
  // instructions than the save-everything baseline).
  const Tool *T = tools::findTool("cache");
  obj::Executable App = buildOrDie(workloads::findWorkload("fib")->Source);

  AtomOptions All;
  All.Strategy = AtomOptions::SaveStrategy::SaveAll;
  AtomOptions Summary;
  Summary.Strategy = AtomOptions::SaveStrategy::WrapperSummary;

  InstrumentedProgram A = instrumentOrDie(App, *T, All);
  InstrumentedProgram B = instrumentOrDie(App, *T, Summary);
  EXPECT_LT(B.Stats.SaveSlots, A.Stats.SaveSlots);

  sim::Machine MA(A.Exe), MB(B.Exe);
  ASSERT_TRUE(MA.run().exitedWith(0));
  ASSERT_TRUE(MB.run().exitedWith(0));
  EXPECT_LT(MB.stats().Instructions, MA.stats().Instructions);
  EXPECT_EQ(MA.vfs().fileContents("cache.out"),
            MB.vfs().fileContents("cache.out"));
}

//===----------------------------------------------------------------------===//
// Register-state preservation under an adversarial analysis routine
//===----------------------------------------------------------------------===//

TEST(RegisterPreservation, HotRegistersSurviveAnalysisCalls) {
  // The application computes with long dependency chains across
  // instrumented points; an analysis routine that touches many scratch
  // registers (printf formatting into a dead file) must not perturb it.
  const char *AppSrc = R"(
long chain(long x) {
  long a = x + 1;
  long b = a * 3;
  long c = b - x;
  long d = c ^ a;
  long e = d + b;
  long f = e * c;
  long g = f - d;
  long h = g + e;
  return a + b + c + d + e + f + g + h;
}
int main() {
  long sum = 0;
  long i;
  for (i = 0; i < 50; i = i + 1)
    sum = sum ^ chain(i * 7);
  printf("chain %ld\n", sum);
  return 0;
})";
  const char *AnalSrc = R"(
long junkfile;
long counter;
void Init() { junkfile = fopen("junk.out", "w"); }
void Touch(long a, long b) {
  // Touch lots of state; occasionally do heavy formatting work.
  counter = counter + a + b;
  if ((counter & 1023) == 0)
    fprintf(junkfile, "c=%ld a=%ld b=%ld %s\n", counter, a, b, "noise");
}
)";

  obj::Executable App = buildOrDie(AppSrc);
  RunOutcome Base = runProgram(App);

  Tool T;
  T.Name = "adversary";
  T.AnalysisSources = {AnalSrc};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("Init()");
    C.addCallProto("Touch(long, REGV)");
    C.addCallProgram(ProgramPoint::ProgramBefore, "Init", {});
    long Id = 0;
    for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
      for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B))
        for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I))
          C.addCallInst(I, InstPoint::InstBefore, "Touch",
                        {Arg::imm(Id++), Arg::regv(isa::RegT3)});
  };

  for (auto Strategy : {AtomOptions::SaveStrategy::WrapperSummary,
                        AtomOptions::SaveStrategy::DirectInline,
                        AtomOptions::SaveStrategy::Distributed,
                        AtomOptions::SaveStrategy::SiteLiveness}) {
    AtomOptions Opts;
    Opts.Strategy = Strategy;
    InstrumentedProgram Out = instrumentOrDie(App, T, Opts);
    sim::Machine M(Out.Exe);
    ASSERT_TRUE(M.run().exitedWith(0)) << int(Strategy);
    EXPECT_EQ(M.vfs().stdoutText(), Base.Stdout)
        << "strategy " << int(Strategy);
  }
}

//===----------------------------------------------------------------------===//
// Original-PC reporting (paper §4: the static new->old map)
//===----------------------------------------------------------------------===//

TEST(PcMap, InstPCReportsOriginalAddresses) {
  obj::Executable App =
      buildOrDie(workloads::findWorkload("fib")->Source);

  std::vector<uint64_t> ReportedPCs;
  Tool T;
  T.Name = "pcs";
  T.AnalysisSources = {"void Nop(long pc) {}"};
  T.Instrument = [&](InstrumentationContext &C) {
    C.addCallProto("Nop(long)");
    for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
      for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B)) {
        Inst *I = C.getFirstInst(B);
        ReportedPCs.push_back(C.instPC(I));
        C.addCallInst(I, InstPoint::InstBefore, "Nop",
                      {Arg::imm(int64_t(C.instPC(I)))});
      }
  };
  InstrumentedProgram Out = instrumentOrDie(App, T);

  // Every reported PC is a valid original text address...
  for (uint64_t PC : ReportedPCs) {
    EXPECT_GE(PC, App.TextStart);
    EXPECT_LT(PC, App.TextStart + App.Text.size());
  }
  // ...and the layout's new->old map inverts to them.
  unsigned Found = 0;
  for (const auto &[New, Old] : Out.Layout.NewToOldPC) {
    EXPECT_EQ(Out.Layout.origPC(New), Old);
    ++Found;
  }
  EXPECT_EQ(Found, App.Text.size() / 4); // every original instruction kept
  EXPECT_EQ(Out.Layout.origPC(0x1234), 0u);
}

//===----------------------------------------------------------------------===//
// Call order at a single point (paper §2: calls run in the order added)
//===----------------------------------------------------------------------===//

TEST(CallOrder, MultipleCallsAtOnePointRunInOrder) {
  obj::Executable App = buildOrDie("int main() { return 0; }");
  Tool T;
  T.Name = "order";
  T.AnalysisSources = {R"(
void A() { printf("A"); }
void B() { printf("B"); }
void C() { printf("C"); }
)"};
  T.Instrument = [](InstrumentationContext &Ctx) {
    Ctx.addCallProto("A()");
    Ctx.addCallProto("B()");
    Ctx.addCallProto("C()");
    Ctx.addCallProgram(ProgramPoint::ProgramBefore, "A", {});
    Ctx.addCallProgram(ProgramPoint::ProgramBefore, "B", {});
    Ctx.addCallProgram(ProgramPoint::ProgramBefore, "C", {});
    Ctx.addCallProgram(ProgramPoint::ProgramAfter, "C", {});
    Ctx.addCallProgram(ProgramPoint::ProgramAfter, "A", {});
  };
  InstrumentedProgram Out = instrumentOrDie(App, T);
  sim::Machine M(Out.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  EXPECT_EQ(M.vfs().stdoutText(), "ABCCA");
}

//===----------------------------------------------------------------------===//
// Heap schemes (paper §4 "Keeping Pristine Behavior")
//===----------------------------------------------------------------------===//

/// An application that prints its own heap addresses — the strongest form
/// of the pristine-heap property.
const char *HeapApp = R"(
int main() {
  char *a = malloc(100);
  char *b = malloc(200);
  printf("%lx %lx\n", (long)a, (long)b);
  return 0;
})";

/// Analysis routines that allocate aggressively.
const char *AllocAnal = R"(
char *blocks[64];
long n;
void Grab() {
  if (n < 64) {
    blocks[n] = malloc(96);
    blocks[n][0] = 1;
    n = n + 1;
  }
}
void Done() { printf_dummy(); }
void printf_dummy() {}
)";

Tool allocTool() {
  Tool T;
  T.Name = "alloc";
  T.AnalysisSources = {AllocAnal};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("Grab()");
    C.addCallProto("Done()");
    if (Proc *Main = C.findProc("main"))
      for (Block *B = C.getFirstBlock(Main); B; B = C.getNextBlock(B))
        C.addCallBlock(B, BlockPoint::BlockBefore, "Grab", {});
    C.addCallProgram(ProgramPoint::ProgramAfter, "Done", {});
  };
  return T;
}

TEST(HeapSchemes, LinkedSbrksInterleaveWithoutCorruption) {
  // Method 1 (default): both sbrks bump the same break; the program still
  // behaves identically apart from heap addresses.
  obj::Executable App = buildOrDie(HeapApp);
  RunOutcome Base = runProgram(App);
  InstrumentedProgram Out = instrumentOrDie(App, allocTool());
  sim::Machine M(Out.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  // Output exists and parses, but heap addresses may differ from the
  // uninstrumented run (documented paper behaviour for method 1).
  EXPECT_FALSE(M.vfs().stdoutText().empty());
  EXPECT_NE(M.vfs().stdoutText().find(' '), std::string::npos);
  (void)Base;
}

TEST(HeapSchemes, PartitionedHeapKeepsApplicationAddresses) {
  // Method 2: with a heap offset, application heap addresses are exactly
  // those of the uninstrumented run even though analysis routines
  // allocate.
  obj::Executable App = buildOrDie(HeapApp);
  RunOutcome Base = runProgram(App);

  AtomOptions Opts;
  Opts.AnalysisHeapOffset = 1 << 20; // 1 MB away
  InstrumentedProgram Out = instrumentOrDie(App, allocTool(), Opts);
  sim::Machine M(Out.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  EXPECT_EQ(M.vfs().stdoutText(), Base.Stdout)
      << "application heap addresses must be pristine under method 2";
}

//===----------------------------------------------------------------------===//
// Engine options
//===----------------------------------------------------------------------===//

TEST(EngineOptions, ForceJsrStillWorks) {
  obj::Executable App = buildOrDie(workloads::findWorkload("fib")->Source);
  RunOutcome Base = runProgram(App);
  AtomOptions Opts;
  Opts.ForceJsr = true;
  InstrumentedProgram Out =
      instrumentOrDie(App, *tools::findTool("branch"), Opts);
  sim::Machine M(Out.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  EXPECT_EQ(M.vfs().stdoutText(), Base.Stdout);
}

TEST(EngineOptions, StrippingRemovesUnreachableAnalysisProcs) {
  obj::Executable App = buildOrDie("int main() { return 0; }");
  Tool T;
  T.Name = "strip";
  T.AnalysisSources = {R"(
void Used() {}
void Unused() { printf("never\n"); }
)"};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("Used()");
    C.addCallProgram(ProgramPoint::ProgramBefore, "Used", {});
  };
  AtomOptions Strip;
  AtomOptions NoStrip;
  NoStrip.StripUnreachableAnalysis = false;
  InstrumentedProgram A = instrumentOrDie(App, T, Strip);
  InstrumentedProgram B = instrumentOrDie(App, T, NoStrip);
  EXPECT_GT(A.Stats.StrippedProcs, 0u);
  EXPECT_EQ(B.Stats.StrippedProcs, 0u);
  EXPECT_LT(A.Exe.Text.size(), B.Exe.Text.size());
  sim::Machine MA(A.Exe), MB(B.Exe);
  EXPECT_TRUE(MA.run().exitedWith(0));
  EXPECT_TRUE(MB.run().exitedWith(0));
}

TEST(EngineErrors, UnknownAnalysisProcedure) {
  obj::Executable App = buildOrDie("int main() { return 0; }");
  Tool T;
  T.Name = "bad";
  T.AnalysisSources = {"void Exists() {}"};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("Missing()");
    C.addCallProgram(ProgramPoint::ProgramBefore, "Missing", {});
  };
  DiagEngine Diags;
  InstrumentedProgram Out;
  EXPECT_FALSE(runAtom(App, T, AtomOptions(), Out, Diags));
  EXPECT_NE(Diags.str().find("not defined"), std::string::npos)
      << Diags.str();
}

TEST(EngineErrors, InstrumentationErrorsPropagate) {
  obj::Executable App = buildOrDie("int main() { return 0; }");
  Tool T;
  T.Name = "bad2";
  T.AnalysisSources = {"void F() {}"};
  T.Instrument = [](InstrumentationContext &C) {
    // No prototype registered: the annotation fails and instrumentation
    // must be rejected.
    C.addCallProgram(ProgramPoint::ProgramBefore, "F", {});
  };
  DiagEngine Diags;
  InstrumentedProgram Out;
  EXPECT_FALSE(runAtom(App, T, AtomOptions(), Out, Diags));
  EXPECT_NE(Diags.str().find("prototype"), std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===//
// Analysis inlining (paper future work, implemented as an extension)
//===----------------------------------------------------------------------===//

namespace {

TEST(InlineAnalysis, PreservesBehaviourAndToolOutput) {
  for (const char *ToolName : {"dyninst", "pipe", "prof", "cache"}) {
    const Tool *T = tools::findTool(ToolName);
    obj::Executable App =
        buildOrDie(workloads::findWorkload("qsort")->Source);
    RunOutcome Base = runProgram(App);

    AtomOptions Off;
    AtomOptions On;
    On.InlineAnalysis = true;
    InstrumentedProgram A = instrumentOrDie(App, *T, Off);
    InstrumentedProgram B = instrumentOrDie(App, *T, On);

    sim::Machine MA(A.Exe), MB(B.Exe);
    ASSERT_TRUE(MA.run().exitedWith(0)) << ToolName;
    ASSERT_TRUE(MB.run().exitedWith(0)) << ToolName;
    EXPECT_EQ(MB.vfs().stdoutText(), Base.Stdout) << ToolName;
    std::string File = std::string(ToolName) + ".out";
    EXPECT_EQ(MA.vfs().fileContents(File), MB.vfs().fileContents(File))
        << ToolName;
  }
}

TEST(InlineAnalysis, InliningReducesDynamicCost) {
  // The block-counting tool's handler is straight-line: inlining must
  // strictly reduce the instrumented instruction count.
  const Tool *T = tools::findTool("dyninst");
  obj::Executable App = buildOrDie(workloads::findWorkload("fib")->Source);
  AtomOptions Off;
  Off.Opt = AtomOptions::OptPreset::O0; // pin against the ATOM_OPT sweep
  AtomOptions On;
  On.InlineAnalysis = true;
  On.Opt = AtomOptions::OptPreset::O1;
  InstrumentedProgram A = instrumentOrDie(App, *T, Off);
  InstrumentedProgram B = instrumentOrDie(App, *T, On);
  sim::Machine MA(A.Exe), MB(B.Exe);
  ASSERT_TRUE(MA.run().exitedWith(0));
  ASSERT_TRUE(MB.run().exitedWith(0));
  EXPECT_LT(MB.stats().Instructions, MA.stats().Instructions);
}

TEST(InlineAnalysis, BranchyRoutinesAreNotInlined) {
  // The branch tool's handler has internal control flow: it must fall back
  // to the call path (and still work).
  const Tool *T = tools::findTool("branch");
  obj::Executable App = buildOrDie(workloads::findWorkload("fib")->Source);
  RunOutcome Base = runProgram(App);
  AtomOptions On;
  On.InlineAnalysis = true;
  On.Opt = AtomOptions::OptPreset::O1; // the straight-line inliner only
  InstrumentedProgram B = instrumentOrDie(App, *T, On);
  sim::Machine M(B.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  EXPECT_EQ(M.vfs().stdoutText(), Base.Stdout);
  EXPECT_GT(B.Stats.Wrappers, 0u); // the call path still exists
}

} // namespace

//===----------------------------------------------------------------------===//
// Edge instrumentation (unimplemented in the paper, implemented here)
//===----------------------------------------------------------------------===//

namespace {

TEST(EdgeInstrumentation, CountsMatchBranchOutcomes) {
  // Count both edges of every conditional branch via addCallEdge and
  // cross-check against the taken/not-taken totals from BrCondValue
  // instrumentation of the same program.
  const char *AppSrc = R"(
int main() {
  long i;
  long odd = 0;
  for (i = 0; i < 100; i = i + 1)
    if (i % 3 == 0)
      odd = odd + 1;
  printf("odd %ld\n", odd);
  return 0;
}
)";
  const char *AnalSrc = R"(
long taken;
long fallthrough;
long condTaken;
long condNot;

void EdgeTaken() { taken = taken + 1; }
void EdgeFall() { fallthrough = fallthrough + 1; }
void Cond(long t) {
  if (t)
    condTaken = condTaken + 1;
  else
    condNot = condNot + 1;
}
void Report() {
  long f = fopen("edges.out", "w");
  fprintf(f, "%ld %ld %ld %ld\n", taken, fallthrough, condTaken, condNot);
  fclose(f);
}
)";

  obj::Executable App = buildOrDie(AppSrc);
  RunOutcome Base = runProgram(App);

  Tool T;
  T.Name = "edges";
  T.AnalysisSources = {AnalSrc};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("EdgeTaken()");
    C.addCallProto("EdgeFall()");
    C.addCallProto("Cond(VALUE)");
    C.addCallProto("Report()");
    for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
      for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B)) {
        Inst *Last = C.getLastInst(B);
        if (!C.isInstType(Last, InstType::CondBranch))
          continue;
        ASSERT_EQ(C.blockSuccCount(B), 2);
        EXPECT_NE(C.blockSucc(B, 0), nullptr);
        C.addCallEdge(B, 0, "EdgeTaken", {});
        C.addCallEdge(B, 1, "EdgeFall", {});
        C.addCallInst(Last, InstPoint::InstBefore, "Cond",
                      {Arg::value(RuntimeValue::BrCondValue)});
      }
    C.addCallProgram(ProgramPoint::ProgramAfter, "Report", {});
  };

  InstrumentedProgram Out = instrumentOrDie(App, T);
  sim::Machine M(Out.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  EXPECT_EQ(M.vfs().stdoutText(), Base.Stdout);

  long Taken = 0, Fall = 0, CondTaken = 0, CondNot = 0;
  std::sscanf(M.vfs().fileContents("edges.out").c_str(), "%ld %ld %ld %ld",
              &Taken, &Fall, &CondTaken, &CondNot);
  EXPECT_GT(Taken, 0);
  EXPECT_GT(Fall, 0);
  EXPECT_EQ(Taken, CondTaken);
  EXPECT_EQ(Fall, CondNot);
}

TEST(EdgeInstrumentation, UnconditionalAndFallthroughEdges) {
  const char *AppSrc = R"(
int main() {
  long i;
  long s = 0;
  for (i = 0; i < 10; i = i + 1)
    s = s + i;
  printf("%ld\n", s);
  return 0;
}
)";
  const char *AnalSrc = R"(
long edges;
void E() { edges = edges + 1; }
void Report() {
  long f = fopen("edgecount.out", "w");
  fprintf(f, "%ld\n", edges);
  fclose(f);
}
)";
  obj::Executable App = buildOrDie(AppSrc);
  RunOutcome Base = runProgram(App);

  Tool T;
  T.Name = "alledges";
  T.AnalysisSources = {AnalSrc};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("E()");
    C.addCallProto("Report()");
    // Instrument every CFG edge of main.
    Proc *Main = C.findProc("main");
    for (Block *B = C.getFirstBlock(Main); B; B = C.getNextBlock(B))
      for (int S = 0; S < C.blockSuccCount(B); ++S)
        C.addCallEdge(B, unsigned(S), "E", {});
    C.addCallProgram(ProgramPoint::ProgramAfter, "Report", {});
  };
  InstrumentedProgram Out = instrumentOrDie(App, T);
  sim::Machine M(Out.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  EXPECT_EQ(M.vfs().stdoutText(), Base.Stdout);
  long Edges = strtol(M.vfs().fileContents("edgecount.out").c_str(),
                      nullptr, 10);
  // Every block transition inside main takes exactly one edge: the loop
  // header's two edges fire 11 times total, the back edge 10 times, plus
  // the entry/exit transitions.
  EXPECT_GT(Edges, 20);
  EXPECT_LT(Edges, 40);
}

TEST(EdgeInstrumentation, Validation) {
  obj::Executable App = buildOrDie("int main() { return 0; }");
  om::Unit U;
  DiagEngine Diags;
  ASSERT_TRUE(om::liftExecutable(App, U, Diags));
  InstrumentationContext C(U);
  C.addCallProto("E()");
  C.addCallProto("V(VALUE)");
  Proc *Main = C.findProc("main");
  Block *B = C.getFirstBlock(Main);
  // Successor index out of range is rejected.
  EXPECT_FALSE(C.addCallEdge(B, 99, "E", {}));
  // VALUE arguments make no sense on edges.
  int NSucc = C.blockSuccCount(B);
  if (NSucc > 0)
    EXPECT_FALSE(C.addCallEdge(B, 0, "V",
                               {Arg::value(RuntimeValue::BrCondValue)}));
  EXPECT_EQ(C.blockSucc(B, 99), nullptr);
}

} // namespace

//===----------------------------------------------------------------------===//
// Stack arguments through every call mechanism
//===----------------------------------------------------------------------===//

namespace {

/// An analysis procedure with 8 parameters: two travel on the stack, which
/// exercises the site's outgoing-argument staging and the wrapper's
/// stack-argument forwarding (and the same paths under each strategy).
TEST(StackArguments, EightArgAnalysisCall) {
  const char *AnalSrc = R"(
long sum;
long count;
void Take8(long a, long b, long c, long d, long e, long f, long g, long h) {
  sum = sum + a + b + c + d + e + f + g + h;
  count = count + 1;
}
void Report() {
  long fd = fopen("take8.out", "w");
  fprintf(fd, "%ld %ld\n", count, sum);
  fclose(fd);
}
)";
  obj::Executable App = buildOrDie(R"(
int main() {
  long i;
  long x = 0;
  for (i = 0; i < 10; i = i + 1)
    x = x + i;
  printf("%ld\n", x);
  return 0;
})");
  RunOutcome Base = runProgram(App);

  Tool T;
  T.Name = "take8";
  T.AnalysisSources = {AnalSrc};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("Take8(long, long, long, long, long, long, long, long)");
    C.addCallProto("Report()");
    Proc *Main = C.findProc("main");
    C.addCallProc(Main, ProcPoint::ProcBefore, "Take8",
                  {Arg::imm(1), Arg::imm(2), Arg::imm(3), Arg::imm(4),
                   Arg::imm(5), Arg::imm(6), Arg::imm(7), Arg::imm(8)});
    C.addCallProgram(ProgramPoint::ProgramAfter, "Report", {});
  };

  for (auto Strategy : {AtomOptions::SaveStrategy::WrapperSummary,
                        AtomOptions::SaveStrategy::SaveAll,
                        AtomOptions::SaveStrategy::DirectInline,
                        AtomOptions::SaveStrategy::Distributed,
                        AtomOptions::SaveStrategy::SiteLiveness}) {
    AtomOptions Opts;
    Opts.Strategy = Strategy;
    InstrumentedProgram Out = instrumentOrDie(App, T, Opts);
    sim::Machine M(Out.Exe);
    ASSERT_TRUE(M.run().exitedWith(0)) << int(Strategy);
    EXPECT_EQ(M.vfs().stdoutText(), Base.Stdout) << int(Strategy);
    EXPECT_EQ(M.vfs().fileContents("take8.out"), "1 36\n")
        << "strategy " << int(Strategy);
  }

  // And through jsr-based calls.
  AtomOptions Jsr;
  Jsr.ForceJsr = true;
  InstrumentedProgram Out = instrumentOrDie(App, T, Jsr);
  sim::Machine M(Out.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  EXPECT_EQ(M.vfs().fileContents("take8.out"), "1 36\n");
}

/// REGV arguments must read application values even when the source
/// registers double as argument registers the site clobbers (the
/// save-slot read path).
TEST(StackArguments, RegvFromClobberedArgRegisters) {
  const char *AnalSrc = R"(
long got0;
long got1;
long calls;
void Peek(long v1, long v0) { // note: swapped on purpose
  if (calls == 0) {
    got0 = v0;
    got1 = v1;
  }
  calls = calls + 1;
}
void Report() {
  long fd = fopen("peek.out", "w");
  fprintf(fd, "%ld %ld\n", got0, got1);
  fclose(fd);
}
)";
  // flip(a, b) is called as flip(111, 222): at its entry a0=111, a1=222.
  obj::Executable App = buildOrDie(R"(
long flip(long a, long b) { return b - a; }
int main() {
  printf("%ld\n", flip(111, 222));
  return 0;
})");
  Tool T;
  T.Name = "peek";
  T.AnalysisSources = {AnalSrc};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("Peek(REGV, REGV)");
    C.addCallProto("Report()");
    Proc *Flip = C.findProc("flip");
    ASSERT_NE(Flip, nullptr);
    // Pass a1 as the first argument and a0 as the second: both sources
    // are argument registers the call sequence itself overwrites.
    C.addCallProc(Flip, ProcPoint::ProcBefore, "Peek",
                  {Arg::regv(isa::RegA1), Arg::regv(isa::RegA0)});
    C.addCallProgram(ProgramPoint::ProgramAfter, "Report", {});
  };
  InstrumentedProgram Out = instrumentOrDie(App, T);
  sim::Machine M(Out.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  EXPECT_EQ(M.vfs().stdoutText(), "111\n");
  EXPECT_EQ(M.vfs().fileContents("peek.out"), "111 222\n");
}

} // namespace

//===----------------------------------------------------------------------===//
// One tool combining several analyses (multiple analysis source modules)
//===----------------------------------------------------------------------===//

namespace {

TEST(CombinedTool, BranchAndCacheInOnePass) {
  // A user tool that measures branches AND memory references in a single
  // instrumentation pass, with the two analyses in separate mini-C
  // modules sharing one private runtime.
  const char *BranchPart = R"(
long taken;
long nottaken;
void Br(long t) {
  if (t)
    taken = taken + 1;
  else
    nottaken = nottaken + 1;
}
)";
  const char *MemPart = R"(
extern long taken;     // cross-module reference within the analysis unit
extern long nottaken;
long refs;
void Mem(long addr) { refs = refs + 1; }
void Report() {
  long f = fopen("combined.out", "w");
  fprintf(f, "taken %ld\nnottaken %ld\nrefs %ld\n", taken, nottaken, refs);
  fclose(f);
}
)";
  const workloads::Workload *W = workloads::findWorkload("sieve");
  obj::Executable App = buildOrDie(W->Source);

  // Oracle from the simulator.
  sim::Machine Base(App);
  ASSERT_TRUE(Base.run().exitedWith(0));

  Tool T;
  T.Name = "combined";
  T.AnalysisSources = {BranchPart, MemPart};
  T.Instrument = [](InstrumentationContext &C) {
    C.addCallProto("Br(VALUE)");
    C.addCallProto("Mem(VALUE)");
    C.addCallProto("Report()");
    for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
      for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B))
        for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I)) {
          if (C.isInstType(I, InstType::CondBranch))
            C.addCallInst(I, InstPoint::InstBefore, "Br",
                          {Arg::value(RuntimeValue::BrCondValue)});
          if (C.isInstType(I, InstType::MemRef))
            C.addCallInst(I, InstPoint::InstBefore, "Mem",
                          {Arg::value(RuntimeValue::EffAddrValue)});
        }
    C.addCallProgram(ProgramPoint::ProgramAfter, "Report", {});
  };

  InstrumentedProgram Out = instrumentOrDie(App, T);
  sim::Machine M(Out.Exe);
  ASSERT_TRUE(M.run().exitedWith(0));
  EXPECT_EQ(M.vfs().stdoutText(), Base.vfs().stdoutText());

  long Taken = 0, NotTaken = 0, Refs = 0;
  std::sscanf(M.vfs().fileContents("combined.out").c_str(),
              "taken %ld\nnottaken %ld\nrefs %ld", &Taken, &NotTaken,
              &Refs);
  // The report is printed before the shutdown path, so compare against
  // totals minus that path's events — accept a tiny slack.
  EXPECT_LE(uint64_t(Taken), Base.stats().TakenBranches);
  EXPECT_GE(uint64_t(Taken), Base.stats().TakenBranches - 4);
  EXPECT_LE(uint64_t(Taken + NotTaken), Base.stats().CondBranches);
  EXPECT_GE(uint64_t(Refs) + 16, Base.stats().Loads + Base.stats().Stores);
}

} // namespace
