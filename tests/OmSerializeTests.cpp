//===- tests/OmSerializeTests.cpp - om::Unit serialization ----------------===//
//
// The AOMU format (om/Serialize.h) carries pipeline artifacts into the
// atomd persistent store, so these tests pin down the property the daemon
// depends on: a deserialized unit is indistinguishable from the one that
// was serialized — same dump, same re-serialization bytes, and identical
// instrumented executables when fed back through PipelineReuse. Malformed
// input (truncation, header corruption) must be rejected, never crash.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "atom/Batch.h"
#include "om/Serialize.h"
#include "tools/Tools.h"

#include <gtest/gtest.h>

using namespace atom;
using namespace atom::test;

namespace {

const char *AppSrc = R"(
long fib(long n) {
  if (n < 2)
    return n;
  return fib(n - 1) + fib(n - 2);
}
int main() {
  printf("fib %ld\n", fib(12));
  return 0;
}
)";

const Tool &toolOrDie(const char *Name) {
  const Tool *T = tools::findTool(Name);
  if (!T)
    abort();
  return *T;
}

om::Unit roundTrip(const om::Unit &U) {
  std::vector<uint8_t> Bytes = om::serializeUnit(U);
  om::Unit Out;
  EXPECT_TRUE(om::deserializeUnit(Bytes, Out));
  return Out;
}

TEST(OmSerialize, AnalysisUnitRoundTripsExactly) {
  PipelineCache Cache;
  PipelineCache::UnitPtr TA = Cache.analysisUnit(toolOrDie("prof"));
  ASSERT_TRUE(TA->Ok);

  std::vector<uint8_t> B1 = om::serializeUnit(TA->U);
  om::Unit Back;
  ASSERT_TRUE(om::deserializeUnit(B1, Back));
  EXPECT_EQ(om::dumpUnit(Back), om::dumpUnit(TA->U));
  // Serialization is canonical: a round-trip re-serializes to the same
  // bytes, which is what makes the store's content-addressing coherent.
  EXPECT_EQ(om::serializeUnit(Back), B1);
}

TEST(OmSerialize, LiftedAppRoundTripsExactly) {
  obj::Executable App = buildOrDie(AppSrc);
  PipelineCache Cache;
  PipelineCache::UnitPtr AA = Cache.liftedApp(App);
  ASSERT_TRUE(AA->Ok);
  std::vector<uint8_t> B1 = om::serializeUnit(AA->U);
  om::Unit Back;
  ASSERT_TRUE(om::deserializeUnit(B1, Back));
  EXPECT_EQ(om::dumpUnit(Back), om::dumpUnit(AA->U));
  EXPECT_EQ(om::serializeUnit(Back), B1);
}

TEST(OmSerialize, InstrumentingFromDeserializedUnitsMatchesFresh) {
  obj::Executable App = buildOrDie(AppSrc);
  const Tool &T = toolOrDie("dyninst");
  PipelineCache Cache;
  PipelineCache::UnitPtr TA = Cache.analysisUnit(T);
  PipelineCache::UnitPtr AA = Cache.liftedApp(App);
  ASSERT_TRUE(TA->Ok && AA->Ok);

  om::Unit TA2 = roundTrip(TA->U);
  om::Unit AA2 = roundTrip(AA->U);

  InstrumentedProgram Fresh, FromDisk;
  DiagEngine D1, D2;
  ASSERT_TRUE(runAtom(App, T, AtomOptions(), Fresh, D1)) << D1.str();
  PipelineReuse Reuse;
  Reuse.AnalysisUnit = &TA2;
  Reuse.LiftedApp = &AA2;
  ASSERT_TRUE(runAtomPipeline(App, T, AtomOptions(), &Reuse, FromDisk, D2))
      << D2.str();
  // The whole point of the persistent store: artifacts that crossed a
  // serialize/deserialize boundary still produce bit-identical output.
  EXPECT_EQ(FromDisk.Exe.serialize(), Fresh.Exe.serialize());
}

TEST(OmSerialize, RejectsTruncation) {
  PipelineCache Cache;
  PipelineCache::UnitPtr TA = Cache.analysisUnit(toolOrDie("malloc"));
  ASSERT_TRUE(TA->Ok);
  std::vector<uint8_t> Bytes = om::serializeUnit(TA->U);
  ASSERT_GT(Bytes.size(), 64u);

  // Every header prefix, then a sweep of longer prefixes.
  for (size_t Len = 0; Len < 64; ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + long(Len));
    om::Unit U;
    EXPECT_FALSE(om::deserializeUnit(Cut, U)) << "prefix " << Len;
  }
  size_t Step = std::max<size_t>(1, Bytes.size() / 203);
  for (size_t Len = 64; Len < Bytes.size(); Len += Step) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + long(Len));
    om::Unit U;
    EXPECT_FALSE(om::deserializeUnit(Cut, U)) << "prefix " << Len;
  }
}

TEST(OmSerialize, CorruptionNeverCrashes) {
  PipelineCache Cache;
  PipelineCache::UnitPtr TA = Cache.analysisUnit(toolOrDie("prof"));
  ASSERT_TRUE(TA->Ok);
  std::vector<uint8_t> Bytes = om::serializeUnit(TA->U);

  // Magic and version flips must be rejected outright.
  for (size_t I = 0; I < 8; ++I) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0x40;
    om::Unit U;
    EXPECT_FALSE(om::deserializeUnit(Bad, U)) << "header byte " << I;
  }
  // Arbitrary flips elsewhere may or may not validate, but the parser's
  // bounds checks must hold (this is what the store relies on after its
  // checksum, and what a hostile entry file would exercise).
  size_t Step = std::max<size_t>(1, Bytes.size() / 509);
  for (size_t I = 8; I < Bytes.size(); I += Step) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0xFF;
    om::Unit U;
    (void)om::deserializeUnit(Bad, U);
  }
}

TEST(OmSerialize, RejectsEmptyAndGarbage) {
  om::Unit U;
  EXPECT_FALSE(om::deserializeUnit({}, U));
  std::vector<uint8_t> Garbage(256, 0xAB);
  EXPECT_FALSE(om::deserializeUnit(Garbage, U));
}

} // namespace
