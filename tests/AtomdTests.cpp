//===- tests/AtomdTests.cpp - Instrumentation-as-a-service daemon ---------===//
//
// In-process atomd::Daemon + atomd::Client tests for the contracts in
// docs/DAEMON.md:
//
//  * daemon-served executables are byte-identical to standalone runAtom(),
//    for any mix of concurrent clients and request kinds — including after
//    a restart that reloads the persistent store;
//  * shared artifacts are built once, however many clients ask;
//  * the bounded queue and per-client quota reject with explicit retry
//    replies, never silent drops or deadlocks;
//  * a torn store entry is rejected by checksum and rebuilt, never served.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "atomd/Client.h"
#include "atomd/Daemon.h"
#include "obs/Json.h"
#include "tools/Tools.h"

#include <arpa/inet.h>
#include <fstream>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <set>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace atom;
using namespace atom::atomd;
using namespace atom::test;

namespace {

const char *AppA = R"(
int main() {
  long i;
  long sum = 0;
  for (i = 0; i < 40; i = i + 1)
    sum = sum + i;
  printf("sum %ld\n", sum);
  return 0;
}
)";

const char *AppB = R"(
long square(long x) { return x * x; }
int main() {
  printf("sq %ld\n", square(9));
  return 0;
}
)";

class AtomdFixture : public ::testing::Test {
protected:
  void SetUp() override {
    Name = ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Dir = ::testing::TempDir() + "atomd-" + Name;
    std::string Cmd = "rm -rf '" + Dir + "' && mkdir -p '" + Dir + "'";
    ASSERT_EQ(std::system(Cmd.c_str()), 0);
  }

  std::string socketPath() const { return Dir + "/d.sock"; }
  std::string storeDir() const { return Dir + "/store"; }

  /// One instrument round-trip (with backpressure retries); the returned
  /// reply's frame binary lands in \p ExeBytes.
  void instrumentVia(Client &Cl, const std::string &ToolName,
                     const obj::Executable &App, const AtomOptions &O,
                     std::vector<uint8_t> &ExeBytes, Reply &R) {
    Frame F;
    std::string Err;
    ASSERT_TRUE(Cl.call(
        makeInstrumentRequest(Cl.nextId(), ToolName, "test", O),
        App.serialize(), R, F, Err))
        << Err;
    ExeBytes = std::move(F.Bin);
  }

  std::string Name, Dir;
};

TEST_F(AtomdFixture, PingStatusShutdown) {
  DaemonOptions O;
  O.SocketPath = socketPath();
  O.Jobs = 2;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "ping"), {}, R, F,
                      Err))
      << Err;
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Doc.u64("version"), uint64_t(ProtocolVersion));

  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "status"), {}, R, F,
                      Err))
      << Err;
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Doc.u64("workers"), 2u);
  EXPECT_EQ(R.Doc.u64("queue-max"), 64u);

  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "shutdown"), {}, R, F,
                      Err))
      << Err;
  EXPECT_TRUE(R.Ok);
  D.wait(); // returns because the shutdown op fired

  // The daemon is gone: fresh connections fail.
  Client Cl2;
  EXPECT_FALSE(Cl2.connect(socketPath(), Err));
}

/// One HTTP/1.0 GET against the daemon's loopback metrics endpoint,
/// optionally sending an Accept header (OpenMetrics negotiation).
std::string httpGet(int Port, const std::string &Path,
                    const std::string &Accept = "") {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in In{};
  In.sin_family = AF_INET;
  In.sin_port = htons(uint16_t(Port));
  In.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&In), sizeof(In)) != 0) {
    ::close(Fd);
    return "";
  }
  std::string Req = "GET " + Path + " HTTP/1.0\r\n";
  if (!Accept.empty())
    Req += "Accept: " + Accept + "\r\n";
  Req += "\r\n";
  (void)!::write(Fd, Req.data(), Req.size());
  std::string Out;
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    Out.append(Buf, size_t(N));
  ::close(Fd);
  return Out;
}

TEST_F(AtomdFixture, HealthzServesLivenessNextToTheMetrics) {
  // The CLI daemon always enables the registry (cli/atomd.cpp); the
  // library leaves it to the embedder, so this test plays the CLI.
  obs::Registry::global().setEnabled(true);
  DaemonOptions O;
  O.SocketPath = socketPath();
  O.MetricsPort = 0; // ephemeral
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;
  ASSERT_GT(D.metricsPort(), 0);

  Client Cl; // one live connection the health document should count
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  // A ping round-trip guarantees the accept loop registered us before
  // the scrape below counts live connections.
  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "ping"), {}, R, F,
                      Err))
      << Err;

  std::string Resp = httpGet(D.metricsPort(), "/healthz");
  ASSERT_NE(Resp.find("200 OK"), std::string::npos) << Resp;
  ASSERT_NE(Resp.find("application/json"), std::string::npos) << Resp;
  size_t BodyAt = Resp.find("\r\n\r\n");
  ASSERT_NE(BodyAt, std::string::npos);
  obs::json::Value V;
  ASSERT_TRUE(obs::json::parse(Resp.substr(BodyAt + 4), V, Err)) << Err;
  EXPECT_TRUE(V.boolean("ok"));
  EXPECT_EQ(V.u64("version"), uint64_t(ProtocolVersion));
  ASSERT_NE(V.find("uptime-s"), nullptr);
  EXPECT_GE(V.u64("live-connections"), 1u);

  // The plain metrics path still serves the classic Prometheus
  // exposition: no OpenMetrics-only exemplar suffixes or EOF marker,
  // which its parser would reject.
  std::string Metrics = httpGet(D.metricsPort(), "/metrics");
  EXPECT_NE(Metrics.find("text/plain"), std::string::npos);
  EXPECT_NE(Metrics.find("# TYPE"), std::string::npos);
  EXPECT_EQ(Metrics.find(" # {"), std::string::npos) << Metrics;
  EXPECT_EQ(Metrics.find("# EOF"), std::string::npos);

  // A scraper that negotiates OpenMetrics gets that content type and the
  // explicit terminator (and with it, exemplar suffixes when present).
  std::string OM = httpGet(D.metricsPort(), "/metrics",
                           "application/openmetrics-text");
  EXPECT_NE(OM.find("application/openmetrics-text"), std::string::npos)
      << OM;
  EXPECT_NE(OM.find("# EOF"), std::string::npos);

  obs::Registry::global().reset();
  obs::Registry::global().setEnabled(false);
}

TEST_F(AtomdFixture, RejectsMalformedAndUnknownRequests) {
  DaemonOptions O;
  O.SocketPath = socketPath();
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.send("{not json", {}, Err));
  ASSERT_TRUE(Cl.recv(R, F, Err)) << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("malformed"), std::string::npos);

  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "frobnicate"), {}, R,
                      F, Err))
      << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown op"), std::string::npos);

  ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(), "no-such-tool",
                                            "test", AtomOptions()),
                      {1, 2, 3}, R, F, Err))
      << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown tool"), std::string::npos);
}

TEST_F(AtomdFixture, InstrumentMatchesStandaloneByteForByte) {
  DaemonOptions O;
  O.SocketPath = socketPath();
  O.Jobs = 2;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  for (const char *ToolName : {"prof", "dyninst"}) {
    AtomOptions AO;
    InstrumentedProgram Local = instrumentOrDie(
        App, *tools::findTool(ToolName), AO);

    Client Cl;
    ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
    std::vector<uint8_t> Exe;
    Reply R;
    instrumentVia(Cl, ToolName, App, AO, Exe, R);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(Exe, Local.Exe.serialize()) << ToolName;
    EXPECT_EQ(R.Stats.Points, Local.Stats.Points);
    EXPECT_EQ(R.Stats.InsertedInsts, Local.Stats.InsertedInsts);
  }

  // Non-default options travel with the request and change the output the
  // same way they do locally.
  AtomOptions Direct;
  Direct.Strategy = AtomOptions::SaveStrategy::DirectInline;
  Direct.InlineAnalysis = true;
  InstrumentedProgram Local = instrumentOrDie(
      App, *tools::findTool("prof"), Direct);
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  std::vector<uint8_t> Exe;
  Reply R;
  instrumentVia(Cl, "prof", App, Direct, Exe, R);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(Exe, Local.Exe.serialize());
}

TEST_F(AtomdFixture, OptPresetsMatchStandaloneByteForByte) {
  // The full optimization surface travels with the request: each preset's
  // daemon-served executable must match standalone runAtom() at the same
  // preset byte for byte, and the probe-codegen statistics must round-trip
  // through the reply.
  DaemonOptions O;
  O.SocketPath = socketPath();
  O.Jobs = 2;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  for (AtomOptions::OptPreset P :
       {AtomOptions::OptPreset::O0, AtomOptions::OptPreset::O1,
        AtomOptions::OptPreset::O2}) {
    AtomOptions AO;
    AO.Opt = P;
    InstrumentedProgram Local =
        instrumentOrDie(App, *tools::findTool("cache"), AO);
    std::vector<uint8_t> Exe;
    Reply R;
    instrumentVia(Cl, "cache", App, AO, Exe, R);
    ASSERT_TRUE(R.Ok) << optPresetName(P) << ": " << R.Error;
    EXPECT_EQ(Exe, Local.Exe.serialize()) << optPresetName(P);
    EXPECT_EQ(R.Stats.Points, Local.Stats.Points) << optPresetName(P);
    EXPECT_EQ(R.Stats.ProbeInlinedSites, Local.Stats.ProbeInlinedSites)
        << optPresetName(P);
    EXPECT_EQ(R.Stats.ProbeGuardedSites, Local.Stats.ProbeGuardedSites)
        << optPresetName(P);
    EXPECT_EQ(R.Stats.ProbeArgsElided, Local.Stats.ProbeArgsElided)
        << optPresetName(P);
    EXPECT_EQ(R.Stats.ProbeConstsFolded, Local.Stats.ProbeConstsFolded)
        << optPresetName(P);
    if (P == AtomOptions::OptPreset::O2)
      EXPECT_GT(R.Stats.ProbeInlinedSites, 0u);
  }
}

TEST_F(AtomdFixture, FailedPipelineReturnsDiagnostics) {
  DaemonOptions O;
  O.SocketPath = socketPath();
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  // A garbage application image is rejected before any pipeline work.
  ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(), "prof", "test",
                                            AtomOptions()),
                      std::vector<uint8_t>(64, 0xEE), R, F, Err))
      << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("malformed application"), std::string::npos);
}

TEST_F(AtomdFixture, ConcurrentClientsBuildOnceAndMatchStandalone) {
  DaemonOptions O;
  O.SocketPath = socketPath();
  O.Jobs = 4;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable AppsArr[2] = {buildOrDie(AppA), buildOrDie(AppB)};
  const char *ToolNames[2] = {"prof", "malloc"};
  std::vector<uint8_t> Local[2][2];
  for (int T = 0; T < 2; ++T)
    for (int A = 0; A < 2; ++A)
      Local[T][A] = instrumentOrDie(AppsArr[A],
                                    *tools::findTool(ToolNames[T]))
                        .Exe.serialize();

  // 8 clients, each sending every (tool, app) pair — plenty of identical
  // and distinct requests in flight at once.
  constexpr int NumClients = 8;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int C = 0; C < NumClients; ++C)
    Threads.emplace_back([&, C] {
      Client Cl;
      std::string CErr;
      if (!Cl.connect(socketPath(), CErr)) {
        ++Failures;
        return;
      }
      for (int T = 0; T < 2; ++T)
        for (int A = 0; A < 2; ++A) {
          Reply R;
          Frame F;
          std::string Json = makeInstrumentRequest(
              Cl.nextId(), ToolNames[T], "client-" + std::to_string(C),
              AtomOptions());
          if (!Cl.call(Json, AppsArr[A].serialize(), R, F, CErr) ||
              !R.Ok || F.Bin != Local[T][A])
            ++Failures;
        }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);

  // Build-once: 32 requests, but only 4 artifacts (2 tools + 2 apps).
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "status"), {}, R, F,
                      Err))
      << Err;
  const obs::json::Value *Cache = R.Doc.find("cache");
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->u64("misses"), 4u);
  EXPECT_EQ(Cache->u64("hits"), uint64_t(NumClients * 4 * 2 - 4));
  const obs::json::Value *Clients = R.Doc.find("clients");
  ASSERT_NE(Clients, nullptr);
  EXPECT_EQ(Clients->Members.size(), size_t(NumClients));
}

TEST_F(AtomdFixture, QuotaRejectionIsExplicitRetry) {
  DaemonOptions O;
  O.SocketPath = socketPath();
  O.Jobs = 4;
  O.ClientQuota = 1; // one in-flight request per connection
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  // First request parks a worker; the second (same connection, still in
  // flight) trips the quota.
  ASSERT_TRUE(Cl.send("{\"op\":\"stall\",\"id\":1,\"ms\":400}", {}, Err));
  ASSERT_TRUE(Cl.send("{\"op\":\"stall\",\"id\":2,\"ms\":0}", {}, Err));
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.recv(R, F, Err)) << Err;
  EXPECT_EQ(R.Id, 2u); // the rejection overtakes the stalled request
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Retry);
  EXPECT_EQ(R.Error, "quota");
  EXPECT_GT(R.RetryAfterMs, 0u);
  ASSERT_TRUE(Cl.recv(R, F, Err)) << Err; // the stall finishes fine
  EXPECT_EQ(R.Id, 1u);
  EXPECT_TRUE(R.Ok);

  // A second connection has its own quota and is not affected.
  Client Cl2;
  ASSERT_TRUE(Cl2.connect(socketPath(), Err)) << Err;
  ASSERT_TRUE(Cl2.call("{\"op\":\"stall\",\"id\":7,\"ms\":0}", {}, R, F,
                       Err))
      << Err;
  EXPECT_TRUE(R.Ok);
}

TEST_F(AtomdFixture, QueueFullRejectionIsExplicitRetry) {
  DaemonOptions O;
  O.SocketPath = socketPath();
  O.Jobs = 1;
  O.QueueMax = 1; // one admitted request total
  O.ClientQuota = 8;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  ASSERT_TRUE(Cl.send("{\"op\":\"stall\",\"id\":1,\"ms\":400}", {}, Err));
  ASSERT_TRUE(Cl.send("{\"op\":\"stall\",\"id\":2,\"ms\":0}", {}, Err));
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.recv(R, F, Err)) << Err;
  EXPECT_EQ(R.Id, 2u);
  EXPECT_TRUE(R.Retry);
  EXPECT_EQ(R.Error, "queue-full");
  ASSERT_TRUE(Cl.recv(R, F, Err)) << Err;
  EXPECT_EQ(R.Id, 1u);
  EXPECT_TRUE(R.Ok);

  // Client::call retries transparently until the queue drains: while Cl's
  // stall occupies the whole queue, a second connection's request is first
  // rejected, then admitted on a later resend.
  ASSERT_TRUE(Cl.send("{\"op\":\"stall\",\"id\":3,\"ms\":300}", {}, Err));
  Client Cl2;
  ASSERT_TRUE(Cl2.connect(socketPath(), Err)) << Err;
  ASSERT_TRUE(Cl2.call("{\"op\":\"stall\",\"id\":4,\"ms\":0}", {}, R, F,
                       Err))
      << Err;
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Id, 4u);
  ASSERT_TRUE(Cl.recv(R, F, Err)) << Err; // drain id 3's reply
  EXPECT_EQ(R.Id, 3u);
}

TEST_F(AtomdFixture, PipelinedFloodCompletesWithoutDeadlock) {
  // Regression: a client that pipelines far past its quota before reading
  // any replies used to wedge the daemon — the reader blocked writing a
  // retry reply into a full socket buffer while holding the admission
  // lock. Replies now drain through a per-connection writer thread, so
  // every request must eventually complete, byte-identical.
  DaemonOptions O;
  O.SocketPath = socketPath();
  O.Jobs = 4;
  O.ClientQuota = 8;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  std::vector<uint8_t> Local =
      instrumentOrDie(App, *tools::findTool("prof")).Exe.serialize();
  std::vector<uint8_t> Bin = App.serialize();

  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  constexpr int N = 48;
  std::set<uint64_t> Pending;
  for (int I = 0; I < N; ++I) {
    uint64_t Id = Cl.nextId();
    ASSERT_TRUE(Cl.send(
        makeInstrumentRequest(Id, "prof", "flood", AtomOptions()), Bin,
        Err))
        << Err;
    Pending.insert(Id);
  }
  while (!Pending.empty()) {
    Reply R;
    Frame F;
    ASSERT_TRUE(Cl.recv(R, F, Err)) << Err;
    ASSERT_EQ(Pending.count(R.Id), 1u);
    if (R.Retry) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(R.RetryAfterMs ? R.RetryAfterMs : 1));
      ASSERT_TRUE(Cl.send(
          makeInstrumentRequest(R.Id, "prof", "flood", AtomOptions()),
          Bin, Err))
          << Err;
      continue;
    }
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(F.Bin, Local);
    Pending.erase(R.Id);
  }
}

TEST_F(AtomdFixture, ClientLabelMetricsAreBounded) {
  // Labels are client-controlled; past MaxClientLabels distinct ones the
  // daemon folds new labels into a single "other" bucket instead of
  // growing the per-client map and metric registry without bound.
  DaemonOptions O;
  O.SocketPath = socketPath();
  O.Jobs = 2;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  constexpr size_t Extra = 10;
  for (size_t I = 0; I < MaxClientLabels + Extra; ++I) {
    Reply R;
    Frame F;
    std::string Req = "{\"op\":\"stall\",\"id\":" +
                      std::to_string(Cl.nextId()) +
                      ",\"ms\":0,\"client\":\"c" + std::to_string(I) +
                      "\"}";
    ASSERT_TRUE(Cl.call(Req, {}, R, F, Err)) << Err;
    ASSERT_TRUE(R.Ok);
  }

  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "status"), {}, R, F,
                      Err))
      << Err;
  const obs::json::Value *Clients = R.Doc.find("clients");
  ASSERT_NE(Clients, nullptr);
  EXPECT_EQ(Clients->Members.size(), MaxClientLabels + 1);
  EXPECT_EQ(Clients->u64("other"), uint64_t(Extra));
  EXPECT_EQ(Clients->u64("c0"), 1u);
}

TEST_F(AtomdFixture, ClosedConnectionsAreReaped) {
  // A long-running daemon serving short-lived connections must not
  // accumulate dead Conn records: readers deregister as they exit.
  DaemonOptions O;
  O.SocketPath = socketPath();
  O.Jobs = 1;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  for (int I = 0; I < 20; ++I) {
    Client Cl;
    ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
    Reply R;
    Frame F;
    ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "ping"), {}, R, F,
                        Err))
        << Err;
  }
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "ping"), {}, R, F,
                      Err))
      << Err;
  // Deregistration runs on each reader thread moments after its client
  // disconnects; wait for the count to settle at just our live one.
  for (int Tries = 0; D.liveConnections() > 1 && Tries < 400; ++Tries)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(D.liveConnections(), 1u);
}

TEST_F(AtomdFixture, RestartReloadsStoreAndStaysByteIdentical) {
  obj::Executable App = buildOrDie(AppA);
  std::vector<uint8_t> Local =
      instrumentOrDie(App, *tools::findTool("prof")).Exe.serialize();
  std::string Err;

  DaemonOptions O;
  O.SocketPath = socketPath();
  O.StoreDir = storeDir();

  { // First daemon: cold build, artifacts spilled to disk.
    Daemon D(O);
    ASSERT_TRUE(D.start(Err)) << Err;
    Client Cl;
    ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
    Reply R;
    Frame F;
    ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(), "prof", "t",
                                              AtomOptions()),
                        App.serialize(), R, F, Err))
        << Err;
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(F.Bin, Local);
    ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "status"), {}, R, F,
                        Err))
        << Err;
    const obs::json::Value *St = R.Doc.find("store");
    ASSERT_NE(St, nullptr);
    if (!destructiveChaosActive())
      EXPECT_EQ(St->u64("writes"), 2u); // analysis unit + lifted app
    D.requestShutdown();
    D.wait();
  }

  // Second daemon, same store: the request is served from disk (tier
  // hits, no rebuild) and the output is still byte-identical.
  Daemon D2(O);
  ASSERT_TRUE(D2.start(Err)) << Err;
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(), "prof", "t",
                                            AtomOptions()),
                      App.serialize(), R, F, Err))
      << Err;
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(F.Bin, Local);
  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "status"), {}, R, F,
                      Err))
      << Err;
  const obs::json::Value *Cache = R.Doc.find("cache");
  const obs::json::Value *St = R.Doc.find("store");
  ASSERT_NE(Cache, nullptr);
  ASSERT_NE(St, nullptr);
  // Byte-identity above is unconditional; the exact hit accounting only
  // holds when no chaos sweep is failing store I/O underneath.
  if (!destructiveChaosActive()) {
    EXPECT_EQ(Cache->u64("tier-hits"), 2u);
    EXPECT_EQ(St->u64("hits"), 2u);
    EXPECT_EQ(St->u64("writes"), 0u);
  }
}

TEST_F(AtomdFixture, TornStoreEntryIsRebuiltNotServed) {
  if (destructiveChaosActive())
    GTEST_SKIP() << "tears entries by hand; ChaosTests covers torn-rename";
  obj::Executable App = buildOrDie(AppB);
  std::vector<uint8_t> Local =
      instrumentOrDie(App, *tools::findTool("malloc")).Exe.serialize();
  std::string Err;

  DaemonOptions O;
  O.SocketPath = socketPath();
  O.StoreDir = storeDir();
  { // Populate the store, then tear every entry mid-file (as a crashed
    // writer or interrupted disk would).
    Daemon D(O);
    ASSERT_TRUE(D.start(Err)) << Err;
    Client Cl;
    ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
    Reply R;
    Frame F;
    ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(), "malloc", "t",
                                              AtomOptions()),
                        App.serialize(), R, F, Err))
        << Err;
    ASSERT_TRUE(R.Ok) << R.Error;
    D.requestShutdown();
    D.wait();
  }
  std::string Cmd =
      "for f in '" + storeDir() +
      "'/*.au; do sz=$(wc -c < \"$f\"); head -c $((sz * 6 / 10)) \"$f\" > "
      "\"$f.t\" && mv \"$f.t\" \"$f\"; done";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);

  Daemon D2(O);
  ASSERT_TRUE(D2.start(Err)) << Err;
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(), "malloc", "t",
                                            AtomOptions()),
                      App.serialize(), R, F, Err))
      << Err;
  ASSERT_TRUE(R.Ok) << R.Error;
  // The torn entries were rejected by checksum and rebuilt from scratch;
  // the output is still exactly the standalone result.
  EXPECT_EQ(F.Bin, Local);
  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "status"), {}, R, F,
                      Err))
      << Err;
  const obs::json::Value *St = R.Doc.find("store");
  ASSERT_NE(St, nullptr);
  if (!destructiveChaosActive()) {
    EXPECT_EQ(St->u64("load-failures"), 2u);
    EXPECT_EQ(St->u64("hits"), 0u);
    EXPECT_EQ(St->u64("writes"), 2u); // rebuilt artifacts re-spilled
  }
}

} // namespace
