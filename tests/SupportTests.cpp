//===- tests/SupportTests.cpp - Support utilities -------------------------===//

#include "support/Support.h"

#include <gtest/gtest.h>

using namespace atom;

namespace {

TEST(Support, FitsSigned) {
  EXPECT_TRUE(fitsSigned(0, 1));
  EXPECT_TRUE(fitsSigned(-1, 1));
  EXPECT_FALSE(fitsSigned(1, 1));
  EXPECT_TRUE(fitsSigned(32767, 16));
  EXPECT_FALSE(fitsSigned(32768, 16));
  EXPECT_TRUE(fitsSigned(-32768, 16));
  EXPECT_FALSE(fitsSigned(-32769, 16));
  EXPECT_TRUE(fitsSigned(1048575, 21));
  EXPECT_FALSE(fitsSigned(1048576, 21));
  EXPECT_TRUE(fitsSigned(INT64_MAX, 64));
  EXPECT_TRUE(fitsSigned(INT64_MIN, 64));
}

TEST(Support, SignExtend) {
  EXPECT_EQ(signExtend(0xFF, 8), -1);
  EXPECT_EQ(signExtend(0x7F, 8), 127);
  EXPECT_EQ(signExtend(0x8000, 16), -32768);
  EXPECT_EQ(signExtend(0xFFFFF, 21), 0xFFFFF);
  EXPECT_EQ(signExtend(0x100000, 21), -1048576);
  EXPECT_EQ(signExtend(0xDEADBEEFCAFEF00D, 64),
            int64_t(0xDEADBEEFCAFEF00DULL));
  // Upper bits beyond the field are ignored.
  EXPECT_EQ(signExtend(0xABCD00FF, 8), -1);
}

TEST(Support, AlignTo) {
  EXPECT_EQ(alignTo(0, 16), 0u);
  EXPECT_EQ(alignTo(1, 16), 16u);
  EXPECT_EQ(alignTo(16, 16), 16u);
  EXPECT_EQ(alignTo(17, 8), 24u);
  EXPECT_EQ(alignTo(0x1FFF, 0x2000), 0x2000u);
}

TEST(Support, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 42, "hi"), "x=42 y=hi");
  EXPECT_EQ(formatString("%lld", (long long)INT64_MIN),
            "-9223372036854775808");
  EXPECT_EQ(formatString("empty"), "empty");
  // Long outputs are not truncated.
  std::string Long = formatString("%0500d", 7);
  EXPECT_EQ(Long.size(), 500u);
}

TEST(Support, DiagEngine) {
  DiagEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.error(3, "first");
  D.error(0, "second");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.diags().size(), 2u);
  std::string S = D.str();
  EXPECT_NE(S.find("line 3: first"), std::string::npos);
  EXPECT_NE(S.find("second"), std::string::npos);
}

TEST(Support, StopwatchAdvances) {
  Stopwatch W;
  double A = W.seconds();
  EXPECT_GE(A, 0.0);
  W.reset();
  EXPECT_GE(W.seconds(), 0.0);
}

} // namespace
