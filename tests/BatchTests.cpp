//===- tests/BatchTests.cpp - Worker pool, pipeline cache, batch driver ---===//
//
// Concurrency suites (also run under ThreadSanitizer in CI): the thread
// pool, the thread-safe observability registry, the content-keyed pipeline
// cache, and the determinism contract of runAtomBatch() — instrumented
// executables must be byte-identical at every job count and with the cache
// on or off.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "atom/Batch.h"
#include "obs/Obs.h"
#include "support/ThreadPool.h"
#include "tools/Tools.h"

#include <atomic>
#include <thread>

using namespace atom;
using namespace atom::test;

namespace {

const char *AppA = R"(
int add(int a, int b) { return a + b; }
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 8; i = i + 1)
    s = add(s, i);
  return 0;
}
)";

const char *AppB = R"(
int main() {
  char *p;
  p = malloc(16);
  p[0] = (char)7;
  free(p);
  return 0;
}
)";

const char *AppC = R"(
int f(int n) { if (n < 2) return n; return f(n - 1) + f(n - 2); }
int main() { return f(10) == 55 ? 0 : 1; }
)";

const Tool &toolOrDie(const char *Name) {
  const Tool *T = tools::findTool(Name);
  if (!T) {
    ADD_FAILURE() << "missing built-in tool " << Name;
    abort();
  }
  return *T;
}

Tool badTool() {
  Tool T;
  T.Name = "bad";
  T.AnalysisSources = {"int broken( { return }"};
  T.Instrument = [](InstrumentationContext &) {};
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryIndexAcrossWaves) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);

  std::vector<std::atomic<int>> Seen(100);
  Pool.parallelFor(100, [&](size_t I) { Seen[I].fetch_add(1); });
  for (size_t I = 0; I < Seen.size(); ++I)
    EXPECT_EQ(Seen[I].load(), 1) << "index " << I;

  // The pool is reusable for a second wave.
  std::atomic<int> Count{0};
  Pool.parallelFor(37, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 37);
}

TEST(ThreadPool, WaitBlocksUntilSubmittedTasksFinish) {
  ThreadPool Pool(2);
  std::atomic<int> Done{0};
  for (int I = 0; I < 16; ++I)
    Pool.submit([&Done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Done.fetch_add(1);
    });
  Pool.wait();
  EXPECT_EQ(Done.load(), 16);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> Done{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I < 8; ++I)
      Pool.submit([&Done] { Done.fetch_add(1); });
  }
  EXPECT_EQ(Done.load(), 8);
}

//===----------------------------------------------------------------------===//
// Thread-safe observability
//===----------------------------------------------------------------------===//

TEST(ObsThreads, ConcurrentMutationsAggregateExactly) {
  obs::Registry R;
  R.setEnabled(true);
  ThreadPool Pool(4);
  Pool.parallelFor(4, [&](size_t) {
    for (int I = 0; I < 1000; ++I) {
      R.addCounter("work");
      R.recordValue("size", 8);
      R.emitEvent(obs::Event("tick"));
    }
  });
  EXPECT_EQ(R.counter("work"), 4000u);
  ASSERT_NE(R.histogram("size"), nullptr);
  EXPECT_EQ(R.histogram("size")->count(), 4000u);
  EXPECT_EQ(R.events().size(), 4000u);
}

TEST(ObsThreads, DisabledStaysZeroAllocationUnderThreads) {
  obs::Registry R;
  ThreadPool Pool(4);
  Pool.parallelFor(8, [&](size_t) {
    for (int I = 0; I < 500; ++I) {
      R.addCounter("work");
      R.recordValue("size", 8);
      obs::Span S(R, "phase");
    }
  });
  EXPECT_EQ(R.allocations(), 0u);
  EXPECT_FALSE(R.hasSpans());
}

TEST(ObsThreads, WorkerSpansStitchUnderTheAnchor) {
  obs::Registry R;
  R.setEnabled(true);
  {
    obs::Span Batch(R, "batch");
    obs::ThreadSpanAnchor Anchor(R);
    ThreadPool Pool(2);
    Pool.parallelFor(8, [&](size_t) {
      obs::Span Task(R, "task");
      obs::Span Phase(R, "phase");
    });
  }
  // root -> batch -> task (count 8) -> phase (count 8): every worker span
  // landed under the batch span, and nesting survived per thread.
  const obs::Registry::SpanNode &Root = R.spanRoot();
  ASSERT_EQ(Root.Children.size(), 1u);
  const obs::Registry::SpanNode &Batch = *Root.Children[0];
  EXPECT_EQ(Batch.Name, "batch");
  ASSERT_EQ(Batch.Children.size(), 1u);
  const obs::Registry::SpanNode &Task = *Batch.Children[0];
  EXPECT_EQ(Task.Name, "task");
  EXPECT_EQ(Task.Count, 8u);
  ASSERT_EQ(Task.Children.size(), 1u);
  EXPECT_EQ(Task.Children[0]->Name, "phase");
  EXPECT_EQ(Task.Children[0]->Count, 8u);

  // After the anchor is restored, new spans attach at the root again.
  { obs::Span After(R, "after"); }
  EXPECT_EQ(R.spanRoot().Children.size(), 2u);
}

//===----------------------------------------------------------------------===//
// PipelineCache
//===----------------------------------------------------------------------===//

TEST(PipelineCache, CountsHitsMissesAndBytes) {
  obj::Executable App = buildOrDie(AppA);
  PipelineCache Cache;

  PipelineCache::UnitPtr P1 = Cache.analysisUnit(toolOrDie("prof"));
  PipelineCache::UnitPtr P2 = Cache.analysisUnit(toolOrDie("prof"));
  ASSERT_TRUE(P1->Ok);
  EXPECT_EQ(P1.get(), P2.get()); // same slot, not a rebuild

  PipelineCache::UnitPtr M1 = Cache.analysisUnit(toolOrDie("malloc"));
  ASSERT_TRUE(M1->Ok);

  PipelineCache::UnitPtr A1 = Cache.liftedApp(App);
  PipelineCache::UnitPtr A2 = Cache.liftedApp(App);
  ASSERT_TRUE(A1->Ok);
  EXPECT_EQ(A1.get(), A2.get());

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 3u); // prof, malloc, app
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_GT(S.Bytes, 0u);
  EXPECT_EQ(S.Bytes, om::unitMemoryBytes(P1->U) + om::unitMemoryBytes(M1->U) +
                         om::unitMemoryBytes(A1->U));
  EXPECT_EQ(S.Resident, S.Bytes); // nothing evicted: resident == cumulative
}

TEST(PipelineCache, FailedBuildsAreCachedWithIdenticalDiags) {
  PipelineCache Cache;
  Tool Bad = badTool();
  PipelineCache::UnitPtr B1 = Cache.analysisUnit(Bad);
  PipelineCache::UnitPtr B2 = Cache.analysisUnit(Bad);
  EXPECT_FALSE(B1->Ok);
  EXPECT_EQ(B1.get(), B2.get());
  EXPECT_FALSE(B1->Diags.empty());
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Bytes, 0u);
}

TEST(PipelineCache, ConcurrentRequestsBuildOnce) {
  obj::Executable App = buildOrDie(AppB);
  PipelineCache Cache;
  ThreadPool Pool(4);
  std::atomic<int> OkCount{0};
  Pool.parallelFor(16, [&](size_t I) {
    PipelineCache::UnitPtr U = I % 2 ? Cache.analysisUnit(toolOrDie("dyninst"))
                                     : Cache.liftedApp(App);
    if (U->Ok)
      OkCount.fetch_add(1);
  });
  EXPECT_EQ(OkCount.load(), 16);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Hits, 14u);
}

TEST(PipelineCache, EvictsLeastRecentlyUsedPastByteCap) {
  obs::Registry &Reg = obs::Registry::global();
  Reg.reset();
  Reg.setEnabled(true);

  obj::Executable App = buildOrDie(AppA);
  PipelineCache Cache(1); // any completed entry exceeds the cap

  PipelineCache::UnitPtr P1 = Cache.analysisUnit(toolOrDie("prof"));
  PipelineCache::UnitPtr A1 = Cache.liftedApp(App);
  ASSERT_TRUE(P1->Ok && A1->Ok);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 2u);
  EXPECT_EQ(S.Resident, 0u); // both entries were over the cap
  EXPECT_GT(S.Bytes, 0u);    // cumulative accounting is not rolled back

  // Eviction erases the slot, not the artifact: outstanding handles stay
  // valid, and the next request is a rebuild (miss), not a hit.
  std::string Dump = om::dumpUnit(P1->U);
  EXPECT_FALSE(Dump.empty());
  PipelineCache::UnitPtr P2 = Cache.analysisUnit(toolOrDie("prof"));
  ASSERT_TRUE(P2->Ok);
  EXPECT_NE(P2.get(), P1.get());
  EXPECT_EQ(om::dumpUnit(P2->U), Dump); // rebuild is deterministic
  S = Cache.stats();
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Evictions, 3u);

  Cache.publishStats();
  EXPECT_EQ(Reg.counter("atom.cache-evictions"), 3u);
  ASSERT_EQ(Reg.gauges().count("atom.cache-resident-bytes"), 1u);
  EXPECT_EQ(Reg.gauges().at("atom.cache-resident-bytes"), 0.0);

  Reg.setEnabled(false);
  Reg.reset();
}

//===----------------------------------------------------------------------===//
// Batch driver determinism
//===----------------------------------------------------------------------===//

namespace {

/// Fingerprint of everything a batch run produces for one pair.
struct RunPrint {
  std::vector<uint8_t> Exe;
  std::vector<std::pair<uint64_t, uint64_t>> PCMap;
  InstrStats Stats;
};

bool samePrint(const RunPrint &A, const RunPrint &B) {
  return A.Exe == B.Exe && A.PCMap == B.PCMap &&
         A.Stats.Points == B.Stats.Points &&
         A.Stats.InsertedInsts == B.Stats.InsertedInsts &&
         A.Stats.Wrappers == B.Stats.Wrappers &&
         A.Stats.PatchedProcs == B.Stats.PatchedProcs &&
         A.Stats.AnalysisProcs == B.Stats.AnalysisProcs &&
         A.Stats.StrippedProcs == B.Stats.StrippedProcs &&
         A.Stats.SaveSlots == B.Stats.SaveSlots;
}

RunPrint printOf(const InstrumentedProgram &P) {
  return {P.Exe.serialize(), P.Exe.PCMap, P.Stats};
}

} // namespace

TEST(Batch, OutputsIdenticalAcrossJobsAndCache) {
  std::vector<obj::Executable> Apps = {buildOrDie(AppA), buildOrDie(AppB),
                                       buildOrDie(AppC)};
  std::vector<const obj::Executable *> AppPtrs;
  for (const obj::Executable &A : Apps)
    AppPtrs.push_back(&A);
  std::vector<const Tool *> Ts = {&toolOrDie("prof"), &toolOrDie("malloc"),
                                  &toolOrDie("dyninst")};

  // Reference: the legacy serial pipeline, one pair at a time.
  std::vector<RunPrint> Ref;
  for (const Tool *T : Ts)
    for (const obj::Executable *App : AppPtrs) {
      DiagEngine Diags;
      InstrumentedProgram Out;
      ASSERT_TRUE(runAtom(*App, *T, AtomOptions(), Out, Diags))
          << Diags.str();
      Ref.push_back(printOf(Out));
    }

  auto checkBatch = [&](unsigned Jobs, bool Cache) {
    AtomOptions Opts;
    Opts.Jobs = Jobs;
    Opts.CachePipeline = Cache;
    DiagEngine Diags;
    std::vector<BatchResult> Results;
    ASSERT_TRUE(runAtomBatch(AppPtrs, Ts, Opts, Results, Diags))
        << Diags.str();
    ASSERT_EQ(Results.size(), Ref.size());
    for (size_t I = 0; I < Results.size(); ++I) {
      ASSERT_TRUE(Results[I].Ok);
      EXPECT_TRUE(samePrint(printOf(Results[I].Prog), Ref[I]))
          << "jobs=" << Jobs << " cache=" << Cache << " pair " << I;
    }
  };
  checkBatch(1, true);
  checkBatch(2, true);
  checkBatch(4, true);
  checkBatch(4, false);
}

TEST(Batch, DiagnosticsReplayDeterministically) {
  std::vector<obj::Executable> Apps = {buildOrDie(AppA), buildOrDie(AppC)};
  std::vector<const obj::Executable *> AppPtrs = {&Apps[0], &Apps[1]};
  Tool Bad = badTool();
  std::vector<const Tool *> Ts = {&toolOrDie("prof"), &Bad};

  auto diagsAt = [&](unsigned Jobs) {
    AtomOptions Opts;
    Opts.Jobs = Jobs;
    DiagEngine Diags;
    std::vector<BatchResult> Results;
    EXPECT_FALSE(runAtomBatch(AppPtrs, Ts, Opts, Results, Diags));
    EXPECT_TRUE(Results[0].Ok && Results[1].Ok);   // prof pairs
    EXPECT_FALSE(Results[2].Ok || Results[3].Ok);  // bad pairs
    return Diags.str();
  };
  std::string D1 = diagsAt(1);
  EXPECT_FALSE(D1.empty());
  EXPECT_NE(D1.find("tool 'bad'"), std::string::npos);
  EXPECT_EQ(D1, diagsAt(2));
  EXPECT_EQ(D1, diagsAt(4));
}

TEST(Batch, LiftOnceInstrumentTwiceMatchesFreshRuns) {
  obj::Executable App = buildOrDie(AppB);
  PipelineCache Cache;
  PipelineCache::UnitPtr Lifted = Cache.liftedApp(App);
  ASSERT_TRUE(Lifted->Ok);
  std::string Before = om::dumpUnit(Lifted->U);

  for (const char *Name : {"malloc", "prof"}) {
    const Tool &T = toolOrDie(Name);
    PipelineReuse Reuse;
    Reuse.LiftedApp = &Lifted->U;
    DiagEngine D1, D2;
    InstrumentedProgram FromCache, Fresh;
    ASSERT_TRUE(
        runAtomPipeline(App, T, AtomOptions(), &Reuse, FromCache, D1))
        << D1.str();
    ASSERT_TRUE(runAtom(App, T, AtomOptions(), Fresh, D2)) << D2.str();
    EXPECT_EQ(FromCache.Exe.serialize(), Fresh.Exe.serialize()) << Name;
  }
  // Instrumenting from the cached unit must not have mutated it.
  EXPECT_EQ(om::dumpUnit(Lifted->U), Before);
}

TEST(Batch, MetricsArePerRunAndCumulative) {
  obs::Registry &Reg = obs::Registry::global();
  Reg.reset();
  Reg.setEnabled(true);

  obj::Executable App = buildOrDie(AppA);
  DiagEngine Diags;
  InstrumentedProgram P1, P2;
  ASSERT_TRUE(runAtom(App, toolOrDie("prof"), AtomOptions(), P1, Diags));
  ASSERT_TRUE(runAtom(App, toolOrDie("dyninst"), AtomOptions(), P2, Diags));

  EXPECT_EQ(Reg.counter("atom.runs"), 2u);
  // Counters accumulate across runs...
  EXPECT_EQ(Reg.counter("atom.points"), P1.Stats.Points + P2.Stats.Points);
  // ...and the per-run events keep each run's values recoverable.
  std::vector<const obs::Event *> Runs;
  for (const obs::Event &E : Reg.events())
    if (E.kind() == "instrument-run")
      Runs.push_back(&E);
  ASSERT_EQ(Runs.size(), 2u);
  std::string L1 = Runs[0]->jsonLine(), L2 = Runs[1]->jsonLine();
  EXPECT_NE(L1.find("\"tool\":\"prof\""), std::string::npos) << L1;
  EXPECT_NE(L1.find(formatString("\"points\":%u", P1.Stats.Points)),
            std::string::npos)
      << L1;
  EXPECT_NE(L2.find("\"tool\":\"dyninst\""), std::string::npos) << L2;
  EXPECT_NE(L2.find(formatString("\"points\":%u", P2.Stats.Points)),
            std::string::npos)
      << L2;

  Reg.setEnabled(false);
  Reg.reset();
}

TEST(Batch, PublishesCacheCountersAndBatchSpan) {
  obs::Registry &Reg = obs::Registry::global();
  Reg.reset();
  Reg.setEnabled(true);

  std::vector<obj::Executable> Apps = {buildOrDie(AppA), buildOrDie(AppB)};
  std::vector<const obj::Executable *> AppPtrs = {&Apps[0], &Apps[1]};
  std::vector<const Tool *> Ts = {&toolOrDie("prof"), &toolOrDie("malloc")};

  AtomOptions Opts;
  Opts.Jobs = 2;
  DiagEngine Diags;
  std::vector<BatchResult> Results;
  ASSERT_TRUE(runAtomBatch(AppPtrs, Ts, Opts, Results, Diags));

  // 2 tools + 2 apps built once each; the remaining lookups hit.
  EXPECT_EQ(Reg.counter("atom.cache-misses"), 4u);
  EXPECT_EQ(Reg.counter("atom.cache-hits"), 4u);
  EXPECT_GT(Reg.counter("atom.cache-bytes"), 0u);
  EXPECT_EQ(Reg.counter("atom.runs"), 4u);

  // Every pipeline span landed under the batch span.
  const obs::Registry::SpanNode &Root = Reg.spanRoot();
  const obs::Registry::SpanNode *Batch = nullptr;
  for (const auto &C : Root.Children)
    if (C->Name == "atom-batch")
      Batch = C.get();
  ASSERT_NE(Batch, nullptr);
  uint64_t PipelineRuns = 0;
  for (const auto &C : Batch->Children)
    if (C->Name == "atom")
      PipelineRuns += C->Count;
  EXPECT_EQ(PipelineRuns, 4u);

  Reg.setEnabled(false);
  Reg.reset();
}
