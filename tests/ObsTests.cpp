//===- tests/ObsTests.cpp - Observability layer tests ---------------------===//
//
// Covers the obs subsystem: histogram bucketing, the disabled-registry
// zero-allocation contract, span-tree nesting and accumulation, JSON
// round-tripping, the Prometheus exposition, event serialization, and the
// simulator's block profile with original-address translation.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "atom/Recovery.h"
#include "obs/Json.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "tools/Tools.h"

#include <gtest/gtest.h>

using namespace atom;
using namespace atom::obs;
using namespace atom::test;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(7), 3u);
  EXPECT_EQ(Histogram::bucketOf(8), 4u);
  EXPECT_EQ(Histogram::bucketOf(1024), 11u);
  EXPECT_EQ(Histogram::bucketOf(~uint64_t(0)), 64u);

  EXPECT_EQ(Histogram::bucketLo(0), 0u);
  EXPECT_EQ(Histogram::bucketHi(0), 0u);
  EXPECT_EQ(Histogram::bucketLo(1), 1u);
  EXPECT_EQ(Histogram::bucketHi(1), 1u);
  EXPECT_EQ(Histogram::bucketLo(4), 8u);
  EXPECT_EQ(Histogram::bucketHi(4), 15u);
  EXPECT_EQ(Histogram::bucketHi(64), ~uint64_t(0));

  // Every bucket's bounds agree with bucketOf.
  for (unsigned I = 0; I < Histogram::NumBuckets; ++I) {
    EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLo(I)), I);
    EXPECT_EQ(Histogram::bucketOf(Histogram::bucketHi(I)), I);
  }
}

TEST(Histogram, RecordsStatsAndBuckets) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.mean(), 0.0);
  for (uint64_t V : {0, 1, 2, 3, 1000})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1006u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_DOUBLE_EQ(H.mean(), 1006.0 / 5.0);
  EXPECT_EQ(H.bucketCount(0), 1u); // 0
  EXPECT_EQ(H.bucketCount(1), 1u); // 1
  EXPECT_EQ(H.bucketCount(2), 2u); // 2, 3
  EXPECT_EQ(H.bucketCount(10), 1u); // 1000 in [512, 1023]
  std::string R = H.render("B");
  EXPECT_NE(R.find("count 5"), std::string::npos);
  EXPECT_NE(R.find("max 1000"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Registry: metrics and the disabled contract
//===----------------------------------------------------------------------===//

TEST(ObsRegistry, CountersGaugesHistograms) {
  Registry R;
  R.setEnabled(true);
  R.addCounter("a");
  R.addCounter("a", 4);
  R.setGauge("g", 2.5);
  R.recordValue("h", 7);
  R.recordValue("h", 9);
  EXPECT_EQ(R.counter("a"), 5u);
  EXPECT_EQ(R.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(R.gauges().at("g"), 2.5);
  ASSERT_NE(R.histogram("h"), nullptr);
  EXPECT_EQ(R.histogram("h")->count(), 2u);
  EXPECT_EQ(R.histogram("missing"), nullptr);
}

TEST(ObsRegistry, DisabledMeansZeroAllocations) {
  Registry R;
  ASSERT_FALSE(R.enabled());
  R.addCounter("a", 10);
  R.setGauge("g", 1.0);
  R.recordValue("h", 42);
  R.emitEvent(Event("trap").num("pc", 1));
  {
    Span Outer(R, "outer");
    Span Inner(R, "inner");
  }
  EXPECT_EQ(R.allocations(), 0u);
  EXPECT_TRUE(R.counters().empty());
  EXPECT_TRUE(R.gauges().empty());
  EXPECT_TRUE(R.histograms().empty());
  EXPECT_TRUE(R.events().empty());
  EXPECT_FALSE(R.hasSpans());
}

TEST(ObsRegistry, ResetKeepsEnabledFlag) {
  Registry R;
  R.setEnabled(true);
  R.addCounter("a");
  { Span S(R, "p"); }
  R.reset();
  EXPECT_TRUE(R.enabled());
  EXPECT_TRUE(R.counters().empty());
  EXPECT_FALSE(R.hasSpans());
  EXPECT_EQ(R.allocations(), 0u);
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TEST(Spans, NestAndAccumulate) {
  Registry R;
  R.setEnabled(true);
  {
    Span Pipeline(R, "pipeline");
    { Span S(R, "lift"); }
    { Span S(R, "lift"); } // same name, same parent: accumulates
    { Span S(R, "layout"); }
  }
  { Span Pipeline(R, "pipeline"); }

  const Registry::SpanNode &Root = R.spanRoot();
  ASSERT_EQ(Root.Children.size(), 1u);
  const Registry::SpanNode &P = *Root.Children[0];
  EXPECT_EQ(P.Name, "pipeline");
  EXPECT_EQ(P.Count, 2u);
  ASSERT_EQ(P.Children.size(), 2u);
  EXPECT_EQ(P.Children[0]->Name, "lift");
  EXPECT_EQ(P.Children[0]->Count, 2u);
  EXPECT_EQ(P.Children[1]->Name, "layout");
  EXPECT_EQ(P.Children[1]->Count, 1u);
  // A parent's time covers its children's.
  EXPECT_GE(P.Seconds,
            P.Children[0]->Seconds + P.Children[1]->Seconds);

  std::string Tree = R.timingTree();
  EXPECT_NE(Tree.find("pipeline"), std::string::npos);
  EXPECT_NE(Tree.find("lift"), std::string::npos);
  EXPECT_NE(Tree.find("x2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Events
//===----------------------------------------------------------------------===//

TEST(Events, JsonLineEscapesAndTypes) {
  Event E("trap");
  E.str("kind", "bad \"pc\"\n\\")
      .num("pc", 0x2000000)
      .flt("ratio", 1.5)
      .boolean("recovered", true);
  std::string L = E.jsonLine();
  EXPECT_EQ(L.find("{\"event\":\"trap\""), 0u);
  EXPECT_NE(L.find("\"kind\":\"bad \\\"pc\\\"\\n\\\\\""), std::string::npos);
  EXPECT_NE(L.find("\"pc\":33554432"), std::string::npos);
  EXPECT_NE(L.find("\"ratio\":1.5"), std::string::npos);
  EXPECT_NE(L.find("\"recovered\":true"), std::string::npos);
  EXPECT_EQ(L.find('\n'), std::string::npos) << "JSONL: single line";
}

TEST(Events, RegistryCollectsInOrder) {
  Registry R;
  R.setEnabled(true);
  R.emitEvent(Event("first"));
  R.emitEvent(Event("second").num("n", 2));
  ASSERT_EQ(R.events().size(), 2u);
  EXPECT_EQ(R.events()[0].kind(), "first");
  EXPECT_EQ(R.events()[1].kind(), "second");
}

//===----------------------------------------------------------------------===//
// Serialization: JSON round-trip and Prometheus exposition
//===----------------------------------------------------------------------===//

// Registry holds a mutex (it is shared across worker threads), so it is
// not movable; tests populate one in place.
static void populateRegistry(Registry &R) {
  R.setEnabled(true);
  R.addCounter("atom.points", 184);
  R.addCounter("sim.instructions", 123456789);
  R.setGauge("overhead", 2.91);
  R.recordValue("trace.record-bytes", 1);
  R.recordValue("trace.record-bytes", 3);
  R.recordValue("trace.record-bytes", 900);
  {
    Span Pipeline(R, "atom");
    { Span S(R, "lift"); }
    { Span S(R, "layout"); }
  }
  R.emitEvent(Event("trap")
                  .str("kind", "unmapped-access")
                  .num("pc", 0x2000010)
                  .boolean("recovered", true)
                  .flt("x", 0.5));
}

TEST(ObsJson, RoundTripIsExact) {
  Registry R;
  populateRegistry(R);
  std::string Doc = R.toJson();
  // The document looks like the schema docs/OBSERVABILITY.md promises.
  EXPECT_NE(Doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(Doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(Doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(Doc.find("\"spans\""), std::string::npos);
  EXPECT_NE(Doc.find("\"events\""), std::string::npos);

  Registry Back;
  std::string Err;
  ASSERT_TRUE(Registry::fromJson(Doc, Back, Err)) << Err;
  EXPECT_EQ(Back.counter("atom.points"), 184u);
  EXPECT_EQ(Back.counter("sim.instructions"), 123456789u);
  EXPECT_DOUBLE_EQ(Back.gauges().at("overhead"), 2.91);
  ASSERT_NE(Back.histogram("trace.record-bytes"), nullptr);
  EXPECT_TRUE(*Back.histogram("trace.record-bytes") ==
              *R.histogram("trace.record-bytes"));
  ASSERT_EQ(Back.events().size(), 1u);
  EXPECT_TRUE(Back.events()[0] == R.events()[0]);
  ASSERT_EQ(Back.spanRoot().Children.size(), 1u);
  EXPECT_EQ(Back.spanRoot().Children[0]->Name, "atom");
  EXPECT_EQ(Back.spanRoot().Children[0]->Children.size(), 2u);

  // Serialize -> parse -> serialize is byte-stable.
  EXPECT_EQ(Back.toJson(), Doc);
}

TEST(ObsJson, RejectsMalformedDocuments) {
  Registry Back;
  std::string Err;
  EXPECT_FALSE(Registry::fromJson("", Back, Err));
  EXPECT_FALSE(Registry::fromJson("{", Back, Err));
  EXPECT_FALSE(Registry::fromJson("[]", Back, Err));
  EXPECT_FALSE(Registry::fromJson("{\"counters\":[]}", Back, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(ObsJson, RejectsDeepNestingWithoutOverflowingTheStack) {
  // The daemon feeds the parser multi-megabyte untrusted socket input; a
  // '['-bomb must come back as a parse error, not a stack overflow.
  auto Nest = [](size_t Depth, const char *Leaf) {
    std::string S(Depth, '[');
    S += Leaf;
    S.append(Depth, ']');
    return S;
  };
  json::Value V;
  std::string Err;
  EXPECT_TRUE(json::parse(Nest(60, "1"), V, Err)) << Err;
  EXPECT_FALSE(json::parse(Nest(65, "1"), V, Err));
  EXPECT_NE(Err.find("nesting too deep"), std::string::npos);
  // A megabyte of unclosed brackets (the cheap hostile case: no closers
  // needed to drive recursion) fails the same way.
  EXPECT_FALSE(json::parse(std::string(1u << 20, '['), V, Err));
  EXPECT_NE(Err.find("nesting too deep"), std::string::npos);
  // Objects count against the same bound.
  std::string ObjBomb;
  for (int I = 0; I < 100; ++I)
    ObjBomb += "{\"k\":";
  EXPECT_FALSE(json::parse(ObjBomb, V, Err));
  EXPECT_NE(Err.find("nesting too deep"), std::string::npos);
}

TEST(ObsPrometheus, ExposesAllMetricKinds) {
  Registry R;
  populateRegistry(R);
  std::string P = R.toPrometheus();
  EXPECT_NE(P.find("atom_atom_points 184"), std::string::npos);
  EXPECT_NE(P.find("atom_overhead 2.91"), std::string::npos);
  EXPECT_NE(P.find("atom_trace_record_bytes_count 3"), std::string::npos);
  EXPECT_NE(P.find("atom_trace_record_bytes_sum 904"), std::string::npos);
  EXPECT_NE(P.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(P.find("atom_span_seconds{path=\"atom/lift\"}"),
            std::string::npos);
}

TEST(ObsPrometheus, EscapesHostileSpanPathLabels) {
  // Span names are caller-controlled; quotes, backslashes, and newlines
  // must be escaped in the label value or one span corrupts the scrape.
  Registry R;
  R.setEnabled(true);
  { Span S(R, "evil\"quote\\back\nline"); }
  std::string P = R.toPrometheus();
  EXPECT_NE(P.find("path=\"evil\\\"quote\\\\back\\nline\""),
            std::string::npos)
      << P;
  EXPECT_EQ(P.find("back\nline"), std::string::npos); // no raw newline
}

TEST(ObsPrometheus, BucketUpperBoundsAreInclusive) {
  // le is inclusive: bucket 4 spans [8, 15], so both edge values land
  // under le="15" and the first value past it starts le="31".
  Registry R;
  R.setEnabled(true);
  R.recordValue("edge", 8);
  R.recordValue("edge", 15);
  R.recordValue("edge", 16);
  std::string P = R.toPrometheus();
  EXPECT_NE(P.find("atom_edge_bucket{le=\"15\"} 2"), std::string::npos)
      << P;
  EXPECT_NE(P.find("atom_edge_bucket{le=\"31\"} 3"), std::string::npos)
      << P;
  EXPECT_EQ(P.find("le=\"7\""), std::string::npos); // empty buckets elided
  EXPECT_NE(P.find("atom_edge_bucket{le=\"+Inf\"} 3"), std::string::npos);
}

TEST(ObsHistogram, ExemplarsRoundTripAndAnnotateTheExposition) {
  Registry R;
  R.setEnabled(true);
  R.recordValue("lat", 3); // untraced: no exemplar
  ASSERT_NE(R.histogram("lat"), nullptr);
  EXPECT_FALSE(R.histogram("lat")->hasExemplar());

  TraceContext Ctx = TraceContext::mint();
  {
    TraceScope Scope(Ctx);
    R.recordValue("lat", 12); // traced: stamps the exemplar
  }
  const Histogram *H = R.histogram("lat");
  ASSERT_TRUE(H->hasExemplar());
  EXPECT_EQ(H->exemplarValue(), 12u);
  EXPECT_EQ(H->exemplarTraceHi(), Ctx.Hi);
  EXPECT_EQ(H->exemplarTraceLo(), Ctx.Lo);

  // The exemplar survives the JSON round trip.
  Registry Back;
  std::string Err;
  ASSERT_TRUE(Registry::fromJson(R.toJson(), Back, Err)) << Err;
  const Histogram *BH = Back.histogram("lat");
  ASSERT_NE(BH, nullptr);
  ASSERT_TRUE(BH->hasExemplar());
  EXPECT_EQ(BH->exemplarValue(), 12u);
  EXPECT_EQ(BH->exemplarTraceLo(), Ctx.Lo);
  EXPECT_EQ(Back.toJson(), R.toJson());

  // In a negotiated OpenMetrics exposition the bucket holding 12
  // ([8, 15], cumulative count 2) carries the exemplar suffix pointing at
  // the traced request, and the document is explicitly terminated.
  std::string OM = R.toPrometheus(/*OpenMetrics=*/true);
  std::string Line = "atom_lat_bucket{le=\"15\"} 2 # {trace_id=\"" +
                     Ctx.traceIdHex() + "\"} 12";
  EXPECT_NE(OM.find(Line), std::string::npos) << OM;
  EXPECT_NE(OM.find("# EOF\n"), std::string::npos) << OM;

  // The classic text/plain exposition must stay exemplar-free: its parser
  // reads the trailing "#" token as a malformed timestamp and fails the
  // whole scrape.
  std::string P = R.toPrometheus();
  EXPECT_EQ(P.find(" # {"), std::string::npos) << P;
  EXPECT_EQ(P.find("# EOF"), std::string::npos) << P;
  EXPECT_NE(P.find("atom_lat_bucket{le=\"15\"} 2\n"), std::string::npos)
      << P;
}

//===----------------------------------------------------------------------===//
// Block profile: leader counting and original-address translation
//===----------------------------------------------------------------------===//

namespace {
const char *LoopProgram = "int main() {\n"
                          "  int S; int I;\n"
                          "  S = 0; I = 0;\n"
                          "  while (I < 50) { S = S + I; I = I + 1; }\n"
                          "  return 0;\n"
                          "}\n";
} // namespace

TEST(BlockProfile, OffByDefaultOnWhenEnabled) {
  obj::Executable Exe = buildOrDie(LoopProgram);
  {
    sim::Machine M(Exe);
    ASSERT_TRUE(M.run().exitedWith(0));
    EXPECT_TRUE(M.blockProfile().empty());
  }
  sim::Machine M(Exe);
  M.enableBlockProfile();
  ASSERT_TRUE(M.run().exitedWith(0));
  ASSERT_FALSE(M.blockProfile().empty());
  // The loop body's leader must be the hottest application block: it runs
  // ~50 times. Every counted leader lies in text.
  uint64_t MaxCount = 0;
  for (const auto &[PC, Count] : M.blockProfile()) {
    EXPECT_GE(PC, Exe.TextStart);
    EXPECT_LT(PC, Exe.TextStart + Exe.Text.size());
    MaxCount = std::max(MaxCount, Count);
  }
  EXPECT_GE(MaxCount, 50u);
}

TEST(BlockProfile, UninstrumentedReportUsesIdentityAddresses) {
  obj::Executable Exe = buildOrDie(LoopProgram);
  sim::Machine M(Exe);
  M.enableBlockProfile();
  ASSERT_TRUE(M.run().exitedWith(0));
  std::vector<HotBlock> Blocks = hotBlocks(Exe, M);
  ASSERT_FALSE(Blocks.empty());
  // Sorted hottest-first; no PCMap means identity translation.
  for (size_t I = 1; I < Blocks.size(); ++I)
    EXPECT_GE(Blocks[I - 1].Count, Blocks[I].Count);
  for (const HotBlock &B : Blocks)
    EXPECT_EQ(B.OrigPC, B.PC);
}

TEST(BlockProfile, InstrumentedReportMapsToOriginalAddresses) {
  obj::Executable App = buildOrDie(LoopProgram);
  InstrumentedProgram Out =
      instrumentOrDie(App, *tools::findTool("dyninst"));
  ASSERT_TRUE(isInstrumented(Out.Exe));

  sim::Machine M(Out.Exe);
  M.enableBlockProfile();
  ASSERT_TRUE(M.run().exitedWith(0));

  std::vector<HotBlock> Blocks = hotBlocks(Out.Exe, M);
  ASSERT_FALSE(Blocks.empty());
  size_t Mapped = 0;
  for (const HotBlock &B : Blocks) {
    if (!B.OrigPC)
      continue; // inserted/analysis code
    ++Mapped;
    // Mapped addresses land in the ORIGINAL text, not the instrumented
    // executable's (which is strictly larger).
    EXPECT_GE(B.OrigPC, App.TextStart);
    EXPECT_LT(B.OrigPC, App.TextStart + App.Text.size());
  }
  EXPECT_GT(Mapped, 0u) << "application blocks must resolve";

  // The hottest application block in the instrumented run is the same
  // original block as in an uninstrumented run.
  sim::Machine Base(App);
  Base.enableBlockProfile();
  ASSERT_TRUE(Base.run().exitedWith(0));
  std::vector<HotBlock> BaseBlocks = hotBlocks(App, Base);
  uint64_t HotOrig = 0;
  for (const HotBlock &B : Blocks)
    if (B.OrigPC) {
      HotOrig = B.OrigPC;
      break;
    }
  ASSERT_FALSE(BaseBlocks.empty());
  EXPECT_EQ(HotOrig, BaseBlocks[0].PC);

  std::string Report = hotProfileReport(Out.Exe, M, 10);
  EXPECT_NE(Report.find("hot blocks:"), std::string::npos);
  EXPECT_NE(Report.find("original"), std::string::npos);
  EXPECT_NE(Report.find("-"), std::string::npos);
}

TEST(BlockProfile, RecoveryReentryCountsNewLeader) {
  // setPC (used by trap recovery) must start a new block so re-entry at
  // __exit is counted even when the trap wasn't at a block boundary.
  obj::Executable Exe = buildOrDie(LoopProgram);
  sim::Machine M(Exe);
  M.enableBlockProfile();
  ASSERT_TRUE(M.run().exitedWith(0));
  size_t Before = M.blockProfile().size();
  uint64_t Entry = Exe.Entry;
  uint64_t Count = M.blockProfile().count(Entry)
                       ? M.blockProfile().at(Entry)
                       : 0;
  M.setPC(Entry);
  (void)M.run(1); // one instruction is enough to retire the leader
  EXPECT_GE(M.blockProfile().size(), Before);
  EXPECT_EQ(M.blockProfile().at(Entry), Count + 1);
}
