//===- tests/DbtTests.cpp - DBT tier vs interpreter oracle ----------------===//
//
// The interpreter is the oracle: every observable of a DBT-dispatched run
// — RunResult (status, exit code, trap kind, fault PC/address), Stats
// (including PerOpcode and UnalignedAccesses), final register file, and
// VFS output — must be bit-identical to the same program run with
// EnableDbt = false. This suite enforces that with:
//
//   * a differential fuzzer over random straight-line blocks (ALU ops,
//     literals, aligned and misaligned loads/stores),
//   * directed trap-parity tests covering every memory/arithmetic/control
//     TrapKind the translated code can encounter,
//   * translation-cache coherence tests: a decode-corrupted word is never
//     executed from stale translated code, and a ranged invalidation
//     drops only the blocks it intersects,
//   * chaining / indirect-exit / fuel-accounting checks, and
//   * whole-workload oracle runs with translation forced (threshold 0).
//
// Everything honors the ATOM_SIM_DBT environment override: under `off`
// the differential pairs degenerate to interpreter-vs-interpreter (still
// valid, trivially), and DBT-activity assertions are skipped.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "asm/Assembler.h"
#include "link/Linker.h"
#include "sim/Inject.h"
#include "sim/dbt/Dbt.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

using namespace atom;
using namespace atom::sim;
using namespace atom::test;

namespace {

/// True when this host can actually run translated code and the CI sweep
/// has not disabled the tier; activity assertions are gated on this.
bool dbtActive() {
  return dbt::DbtTier::supported() && dbt::envMode() != dbt::EnvMode::Off;
}

MachineOptions dbtForced() {
  MachineOptions O;
  O.DbtThreshold = 0; // translate on first execution
  return O;
}

MachineOptions dbtOff() {
  MachineOptions O;
  O.EnableDbt = false;
  return O;
}

std::unique_ptr<Machine> makeAsmMachine(const std::string &Body,
                                        const MachineOptions &Opts) {
  std::string Src = "        .text\n        .ent start\n"
                    "        .globl start\nstart:\n" +
                    Body + "        .end start\n";
  DiagEngine Diags;
  obj::ObjectModule M;
  if (!assembler::assemble(Src, "t", M, Diags)) {
    ADD_FAILURE() << "assembly failed:\n" << Diags.str() << "\n" << Src;
    abort();
  }
  obj::Executable Exe;
  link::LinkOptions LOpts;
  LOpts.EntrySymbol = "start";
  if (!link::linkExecutable({M}, Exe, Diags, LOpts)) {
    ADD_FAILURE() << "link failed:\n" << Diags.str();
    abort();
  }
  return std::make_unique<Machine>(Exe, Opts);
}

/// Everything a run can observe, captured for differential comparison.
struct Observed {
  RunResult R;
  Stats S;
  std::array<uint64_t, isa::NumRegs> Regs{};
  std::string Stdout;
};

Observed observe(Machine &M, uint64_t Fuel) {
  Observed O;
  O.R = M.run(Fuel);
  O.S = M.stats();
  for (unsigned I = 0; I < isa::NumRegs; ++I)
    O.Regs[I] = M.reg(I);
  O.Stdout = M.vfs().stdoutText();
  return O;
}

void expectSame(const Observed &D, const Observed &I, const std::string &Tag) {
  EXPECT_EQ(int(D.R.Status), int(I.R.Status)) << Tag;
  EXPECT_EQ(D.R.ExitCode, I.R.ExitCode) << Tag;
  EXPECT_EQ(int(D.R.Trap), int(I.R.Trap)) << Tag;
  EXPECT_EQ(D.R.FaultPC, I.R.FaultPC) << Tag;
  EXPECT_EQ(D.R.FaultAddr, I.R.FaultAddr) << Tag;
  EXPECT_EQ(D.S.Instructions, I.S.Instructions) << Tag;
  EXPECT_EQ(D.S.Loads, I.S.Loads) << Tag;
  EXPECT_EQ(D.S.Stores, I.S.Stores) << Tag;
  EXPECT_EQ(D.S.CondBranches, I.S.CondBranches) << Tag;
  EXPECT_EQ(D.S.TakenBranches, I.S.TakenBranches) << Tag;
  EXPECT_EQ(D.S.Calls, I.S.Calls) << Tag;
  EXPECT_EQ(D.S.Returns, I.S.Returns) << Tag;
  EXPECT_EQ(D.S.Syscalls, I.S.Syscalls) << Tag;
  EXPECT_EQ(D.S.UnalignedAccesses, I.S.UnalignedAccesses) << Tag;
  for (size_t Op = 0; Op < D.S.PerOpcode.size(); ++Op)
    EXPECT_EQ(D.S.PerOpcode[Op], I.S.PerOpcode[Op])
        << Tag << " opcode " << Op;
  for (unsigned R = 0; R < isa::NumRegs; ++R)
    EXPECT_EQ(D.Regs[R], I.Regs[R]) << Tag << " reg " << R;
  EXPECT_EQ(D.Stdout, I.Stdout) << Tag;
}

/// Assembles \p Body twice and runs it under DBT-forced and DBT-off
/// options, asserting identical observables.
void differential(const std::string &Body, const std::string &Tag,
                  uint64_t Fuel = 1'000'000,
                  MachineOptions Base = MachineOptions()) {
  MachineOptions D = Base;
  D.DbtThreshold = 0;
  std::unique_ptr<Machine> MD = makeAsmMachine(Body, D);
  Observed OD = observe(*MD, Fuel);

  MachineOptions N = Base;
  N.EnableDbt = false;
  std::unique_ptr<Machine> MN = makeAsmMachine(Body, N);
  Observed ON = observe(*MN, Fuel);

  expectSame(OD, ON, Tag);
}

/// xorshift64 for the fuzzer — deterministic across platforms.
uint64_t nextRand(uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential fuzz: random straight-line blocks.
//===----------------------------------------------------------------------===//

TEST(DbtFuzz, RandomStraightLineBlocksMatchInterpreter) {
  // Writable scratch register pool; s0 stays the heap base for memory ops.
  static const char *Regs[] = {"t1", "t2", "t3", "t4", "t5", "t6", "t7",
                               "s1", "s2", "s3", "s4", "s5", "a0", "a1",
                               "a2", "a3", "a4", "a5"};
  constexpr size_t NR = sizeof(Regs) / sizeof(Regs[0]);
  static const char *Alu3[] = {"addq", "subq",  "addl",   "subl",  "mulq",
                               "mull", "umulh", "and",    "bis",   "xor",
                               "bic",  "ornot", "eqv",    "cmpeq", "cmplt",
                               "cmple", "cmpult", "cmpule", "sll",  "srl",
                               "sra"};
  constexpr size_t NA = sizeof(Alu3) / sizeof(Alu3[0]);
  static const char *Loads[] = {"ldq", "ldl", "ldwu", "ldbu"};
  static const char *Stores[] = {"stq", "stl", "stw", "stb"};

  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    uint64_t S = Seed * 0x9E3779B97F4A7C15ull;
    std::string Body = "lconst s0, 0x10000000\n";
    // Seed a few registers with non-trivial values.
    for (size_t I = 0; I < 6; ++I)
      Body += "        lda " + std::string(Regs[nextRand(S) % NR]) + ", " +
              std::to_string(int64_t(nextRand(S) % 0x7fff) - 0x4000) +
              "(zero)\n";
    for (size_t I = 0; I < 70; ++I) {
      uint64_t Pick = nextRand(S) % 10;
      const char *A = Regs[nextRand(S) % NR];
      const char *B = Regs[nextRand(S) % NR];
      const char *C = Regs[nextRand(S) % NR];
      if (Pick < 5) { // reg-reg ALU
        Body += "        " + std::string(Alu3[nextRand(S) % NA]) + " " + A +
                ", " + B + ", " + C + "\n";
      } else if (Pick < 7) { // literal ALU
        Body += "        " + std::string(Alu3[nextRand(S) % NA]) + " " + A +
                ", #" + std::to_string(nextRand(S) % 256) + ", " + C + "\n";
      } else if (Pick < 8) { // divide/remainder (0 divisor sometimes)
        static const char *Div[] = {"divq", "remq", "divqu", "remqu"};
        Body += "        " + std::string(Div[nextRand(S) % 4]) + " " + A +
                ", #" + std::to_string(nextRand(S) % 8) + ", " + C + "\n";
      } else if (Pick < 9) { // load (aligned and misaligned offsets)
        Body += "        " + std::string(Loads[nextRand(S) % 4]) + " " + A +
                ", " + std::to_string(nextRand(S) % 2048) + "(s0)\n";
      } else { // store
        Body += "        " + std::string(Stores[nextRand(S) % 4]) + " " + A +
                ", " + std::to_string(nextRand(S) % 2048) + "(s0)\n";
      }
    }
    Body += "        halt\n";
    differential(Body, "fuzz seed " + std::to_string(Seed));
  }
}

//===----------------------------------------------------------------------===//
// Trap parity: every fault kind translated code can reach.
//===----------------------------------------------------------------------===//

TEST(DbtFaults, UnmappedLoadParity) {
  differential("lconst t0, 0x03000000\n"
               "        ldq t1, 0(t0)\n        halt\n",
               "unmapped load");
}

TEST(DbtFaults, UnmappedStoreParity) {
  differential("lconst t0, 0x03000000\n"
               "        stq t1, 0(t0)\n        halt\n",
               "unmapped store");
}

TEST(DbtFaults, WriteProtectedStoreParity) {
  differential("lconst t0, 0x02000000\n" // text start
               "        stq t1, 0(t0)\n        halt\n",
               "write-protected store");
}

TEST(DbtFaults, StrictAlignmentTrapParity) {
  MachineOptions Strict;
  Strict.StrictAlignment = true;
  differential("lconst t0, 0x10000001\n"
               "        ldq t1, 0(t0)\n        halt\n",
               "strict unaligned", 1'000'000, Strict);
}

TEST(DbtFaults, LenientMisalignedAccessParity) {
  // Misaligned accesses retire inline on the DBT hot path; the unaligned
  // counter and loaded values must still match the interpreter exactly.
  differential("lconst t0, 0x10000000\n"
               "        lconst t1, 0x0123456789abcdef\n"
               "        stq t1, 0(t0)\n"
               "        stq t1, 8(t0)\n"
               "        ldq t2, 3(t0)\n"
               "        ldl t3, 1(t0)\n"
               "        ldwu t4, 5(t0)\n"
               "        stq t2, 17(t0)\n"
               "        stl t3, 33(t0)\n"
               "        ldq t5, 17(t0)\n"
               "        halt\n",
               "lenient misaligned");
}

TEST(DbtFaults, DivideByZeroTrapParity) {
  MachineOptions TrapDiv;
  TrapDiv.TrapOnDivideByZero = true;
  differential("lconst t0, 42\n"
               "        clr t1\n"
               "        divq t0, t1, t2\n        halt\n",
               "divide by zero trap", 1'000'000, TrapDiv);
}

TEST(DbtFaults, DivideByZeroDefaultParity) {
  differential("lconst t0, 42\n"
               "        clr t1\n"
               "        divq t0, t1, t2\n"
               "        remq t0, t1, t3\n        halt\n",
               "divide by zero default");
}

TEST(DbtFaults, BadIndirectTargetParity) {
  // jmp to a misaligned / out-of-text target: the indirect exit hands the
  // PC to the dispatcher, whose checked loop reports BadPC.
  differential("lconst t0, 0x02000002\n"
               "        jmp zero, (t0)\n        halt\n",
               "bad indirect target");
}

TEST(DbtFaults, FaultInsideHotLoopParity) {
  // The faulting load only fires once the loop pointer walks off the heap
  // region: the trace is hot (translated) when the fault arrives, so the
  // precise side exit and prefix commit are exercised.
  differential("lconst t0, 0x1fffff00\n" // near the heap region end
               "Lloop:  ldq t1, 0(t0)\n"
               "        addq t0, #8, t0\n"
               "        br Lloop\n",
               "fault inside hot loop");
}

//===----------------------------------------------------------------------===//
// Fuel accounting.
//===----------------------------------------------------------------------===//

TEST(DbtFuel, ExhaustionIsInstructionExact) {
  for (uint64_t Fuel : {1u, 7u, 100u, 999u, 5000u}) {
    MachineOptions D = dbtForced();
    std::unique_ptr<Machine> M = makeAsmMachine(
        "Lloop:  addq t0, #1, t0\n"
        "        subq t1, #3, t1\n"
        "        br Lloop\n",
        D);
    RunResult R = M->run(Fuel);
    ASSERT_EQ(int(R.Status), int(RunStatus::FuelExhausted)) << Fuel;
    EXPECT_EQ(M->stats().Instructions, Fuel) << Fuel;
  }
}

TEST(DbtFuel, ResumedRunMatchesInterpreter) {
  // Stop mid-loop, then resume to completion: segmented DBT runs must
  // retire exactly what one interpreter run does.
  const std::string Body = "lda t0, 5000(zero)\n"
                           "Lloop:  subq t0, #1, t0\n"
                           "        bne t0, Lloop\n"
                           "        halt\n";
  std::unique_ptr<Machine> MD = makeAsmMachine(Body, dbtForced());
  ASSERT_EQ(int(MD->run(1234).Status), int(RunStatus::FuelExhausted));
  RunResult RD = MD->run(1'000'000);

  std::unique_ptr<Machine> MN = makeAsmMachine(Body, dbtOff());
  ASSERT_EQ(int(MN->run(1234).Status), int(RunStatus::FuelExhausted));
  RunResult RN = MN->run(1'000'000);

  EXPECT_EQ(int(RD.Status), int(RN.Status));
  EXPECT_EQ(MD->stats().Instructions, MN->stats().Instructions);
  EXPECT_EQ(MD->stats().TakenBranches, MN->stats().TakenBranches);
}

//===----------------------------------------------------------------------===//
// Translation-cache coherence (the satellite-2 contract).
//===----------------------------------------------------------------------===//

TEST(DbtInvalidation, CorruptedWordNeverRunsFromStaleCode) {
  // Translate the hot loop, corrupt its body word into `halt` mid-run,
  // and resume: execution must see the new word immediately. Stale
  // translated code would keep looping and retire a different count.
  const std::string Body = "lda t0, 30000(zero)\n"
                           "Lloop:  subq t0, #1, t0\n"
                           "        bne t0, Lloop\n"
                           "        halt\n";
  auto RunCorrupted = [&](const MachineOptions &O) {
    std::unique_ptr<Machine> M = makeAsmMachine(Body, O);
    EXPECT_EQ(int(M->run(5000).Status), int(RunStatus::FuelExhausted));
    // Make word 1 (the subq at Lloop) a halt, byte-identical to word 3.
    uint64_t Text = obj::DefaultTextStart;
    uint32_t Subq = M->memory().load32(Text + 4);
    uint32_t Halt = M->memory().load32(Text + 12);
    M->corruptTextWord(1, Subq ^ Halt);
    RunResult R = M->run(1'000'000);
    EXPECT_EQ(int(R.Status), int(RunStatus::Halted));
    return std::pair(M->stats().Instructions, std::move(M));
  };
  auto [DbtInsts, MD] = RunCorrupted(dbtForced());
  auto [IntInsts, MN] = RunCorrupted(dbtOff());
  EXPECT_EQ(DbtInsts, IntInsts) << "stale translated code executed";
  if (dbtActive()) {
    ASSERT_NE(MD->dbtPerf(), nullptr);
    EXPECT_GT(MD->dbtPerf()->BlocksTranslated, 0u);
    EXPECT_GT(MD->dbtPerf()->Invalidations + MD->dbtPerf()->CacheFlushes, 0u)
        << "corruption did not drop the translated loop";
  }
}

TEST(DbtInvalidation, RangedEventSparesDisjointBlocks) {
  // Corrupting a never-executed word must not drop the hot loop's
  // translation: the ranged invalidation only intersects [word, word+4).
  const std::string Body = "lda t0, 20000(zero)\n"
                           "Lloop:  subq t0, #1, t0\n"
                           "        bne t0, Lloop\n"
                           "        halt\n"
                           "        addq s0, s0, s0\n"  // dead, word 4
                           "        addq s0, s0, s0\n"; // dead, word 5
  std::unique_ptr<Machine> M = makeAsmMachine(Body, dbtForced());
  ASSERT_EQ(int(M->run(5000).Status), int(RunStatus::FuelExhausted));
  uint32_t Dead = M->memory().load32(obj::DefaultTextStart + 16);
  M->corruptTextWord(4, Dead ^ 0xFFFFFFFF);
  RunResult R = M->run(1'000'000);
  EXPECT_EQ(int(R.Status), int(RunStatus::Halted)) << R.FaultMessage;
  EXPECT_GT(M->memory().perf().TransRangedInvalidations, 0u);
  if (dbtActive()) {
    ASSERT_NE(M->dbtPerf(), nullptr);
    EXPECT_GT(M->dbtPerf()->BlocksTranslated, 0u);
    EXPECT_EQ(M->dbtPerf()->Invalidations, 0u)
        << "a disjoint corruption evicted live translations";
    EXPECT_EQ(M->dbtPerf()->CacheFlushes, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Chaining, indirect exits, and tier observability.
//===----------------------------------------------------------------------===//

TEST(DbtPerfCounters, NestedLoopChainsAndStaysInCache) {
  const std::string Body = "lda s0, 100(zero)\n"
                           "Louter: lda t0, 50(zero)\n"
                           "Linner: subq t0, #1, t0\n"
                           "        bne t0, Linner\n"
                           "        subq s0, #1, s0\n"
                           "        bne s0, Louter\n"
                           "        halt\n";
  differential(Body, "nested loop");
  if (!dbtActive())
    GTEST_SKIP() << "DBT unavailable on this host or disabled by env";
  std::unique_ptr<Machine> M = makeAsmMachine(Body, dbtForced());
  ASSERT_EQ(int(M->run(1'000'000).Status), int(RunStatus::Halted));
  ASSERT_NE(M->dbtPerf(), nullptr);
  const dbt::DbtPerf &P = *M->dbtPerf();
  EXPECT_GT(P.BlocksTranslated, 0u);
  EXPECT_GT(P.ChainLinks, 0u) << "hot direct exits never chained";
  EXPECT_GT(P.CacheBytes, 0u);
  // ~5000 inner iterations: the dispatcher must not be re-entered per
  // iteration once the loop traces are chained.
  EXPECT_LT(P.InterpFallbacks, 200u);
}

TEST(DbtPerfCounters, CallReturnLoopParity) {
  const std::string Body = "lda s0, 500(zero)\n"
                           "Lloop:  bsr ra, Lfn\n"
                           "        subq s0, #1, s0\n"
                           "        bne s0, Lloop\n"
                           "        halt\n"
                           "Lfn:    addq s1, #1, s1\n"
                           "        ret\n";
  differential(Body, "call-return loop");
}

TEST(DbtPerfCounters, TierReportsActivity) {
  if (!dbtActive())
    GTEST_SKIP() << "DBT unavailable on this host or disabled by env";
  std::unique_ptr<Machine> M = makeAsmMachine(
      "lconst s0, 0x10000000\n"
      "        lda t0, 2000(zero)\n"
      "Lloop:  stq t0, 0(s0)\n"
      "        ldq t1, 0(s0)\n"
      "        subq t0, #1, t0\n"
      "        bne t0, Lloop\n"
      "        halt\n",
      dbtForced());
  ASSERT_EQ(int(M->run(1'000'000).Status), int(RunStatus::Halted));
  ASSERT_NE(M->dbtPerf(), nullptr);
  const dbt::DbtPerf &P = *M->dbtPerf();
  EXPECT_GT(P.BlocksTranslated, 0u);
  EXPECT_GT(P.TlbFills, 0u);
  // The loop's loads/stores must run inline, not through the helpers.
  EXPECT_LT(P.SlowMemOps, 100u);
}

//===----------------------------------------------------------------------===//
// Injection schedules: seeded corruption parity across backends.
//===----------------------------------------------------------------------===//

TEST(DbtInject, SeededSchedulesMatchInterpreter) {
  const workloads::Workload *W = workloads::findWorkload("crc");
  ASSERT_NE(W, nullptr);
  obj::Executable Exe = buildOrDie(W->Source);
  static const char *Specs[] = {"regbit@1000,7",  "regbit@5000,99",
                                "membit@2000,3",  "membit@700,11",
                                "decode@3000,5",  "decode@800,21",
                                "io@100,1"};
  for (const char *Spec : Specs) {
    InjectSpec S;
    std::string Err;
    ASSERT_TRUE(parseInjectSpec(Spec, S, Err)) << Err;

    MachineOptions D = dbtForced();
    Machine MD(Exe, D);
    armInjections({S}, MD);
    Observed OD = observe(MD, 10'000'000);

    Machine MN(Exe, dbtOff());
    armInjections({S}, MN);
    Observed ON = observe(MN, 10'000'000);

    expectSame(OD, ON, std::string("inject ") + Spec);
  }
}

//===----------------------------------------------------------------------===//
// Whole-workload oracle.
//===----------------------------------------------------------------------===//

TEST(DbtOracle, WorkloadsMatchInterpreterWithTranslationForced) {
  for (const char *Name : {"crc", "qsort", "matmul", "sieve", "rle",
                           "iobound"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    ASSERT_NE(W, nullptr) << Name;
    obj::Executable Exe = buildOrDie(W->Source);

    Machine MD(Exe, dbtForced());
    Observed OD = observe(MD, 2'000'000'000);
    Machine MN(Exe, dbtOff());
    Observed ON = observe(MN, 2'000'000'000);

    ASSERT_EQ(int(OD.R.Status), int(RunStatus::Exited)) << Name;
    expectSame(OD, ON, Name);
    if (dbtActive()) {
      ASSERT_NE(MD.dbtPerf(), nullptr) << Name;
      EXPECT_GT(MD.dbtPerf()->BlocksTranslated, 0u) << Name;
    }
  }
}

TEST(DbtOracle, DefaultThresholdWorkloadParity) {
  // The production configuration (threshold 16) against the interpreter.
  for (const char *Name : {"crc", "qsort"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    ASSERT_NE(W, nullptr) << Name;
    obj::Executable Exe = buildOrDie(W->Source);
    Machine MD(Exe); // defaults: DBT on, threshold 16
    Observed OD = observe(MD, 2'000'000'000);
    Machine MN(Exe, dbtOff());
    Observed ON = observe(MN, 2'000'000'000);
    expectSame(OD, ON, Name);
  }
}
