//===- tests/StoreTests.cpp - Persistent artifact store -------------------===//
//
// The atomd on-disk store (atomd/Store.h): entry round-trips, the
// checksum/torn-write durability contract (a corrupted or truncated entry
// is rejected, deleted, and rebuilt — never served), LRU eviction against
// the byte cap, rescan on open, and layering under atom::PipelineCache as
// its CacheTier.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "atom/Batch.h"
#include "atomd/Store.h"
#include "tools/Tools.h"

#include <fstream>
#include <gtest/gtest.h>

using namespace atom;
using namespace atom::atomd;
using namespace atom::test;

namespace {

std::string scratchDir() {
  std::string Dir =
      ::testing::TempDir() + "atomstore-" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::string Cmd = "rm -rf '" + Dir + "'";
  if (std::system(Cmd.c_str()) != 0)
    abort();
  return Dir;
}

const Tool &toolOrDie(const char *Name) {
  const Tool *T = tools::findTool(Name);
  if (!T)
    abort();
  return *T;
}

CachedUnit builtUnit(const char *ToolName) {
  PipelineCache Cache;
  PipelineCache::UnitPtr P = Cache.analysisUnit(toolOrDie(ToolName));
  CachedUnit U = *P;
  EXPECT_TRUE(U.Ok);
  return U;
}

std::vector<uint8_t> readHostFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeHostFile(const std::string &Path, const std::vector<uint8_t> &B) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(B.data()), long(B.size()));
}

bool hostFileExists(const std::string &Path) {
  std::ifstream In(Path);
  return bool(In);
}

TEST(Store, EntryRoundTripsOkAndFailedUnits) {
  CachedUnit U = builtUnit("prof");
  std::vector<uint8_t> Entry = Store::encodeEntry(42, U);
  CachedUnit Back;
  ASSERT_TRUE(Store::decodeEntry(Entry, 42, Back));
  EXPECT_TRUE(Back.Ok);
  EXPECT_EQ(om::dumpUnit(Back.U), om::dumpUnit(U.U));

  // Failed builds are stored too (negative caching with replayed diags).
  CachedUnit Bad;
  Bad.Ok = false;
  Bad.Diags = {{3, "unknown identifier 'x'"}, {9, "type mismatch"}};
  Entry = Store::encodeEntry(7, Bad);
  ASSERT_TRUE(Store::decodeEntry(Entry, 7, Back));
  EXPECT_FALSE(Back.Ok);
  ASSERT_EQ(Back.Diags.size(), 2u);
  EXPECT_EQ(Back.Diags[0].Line, 3);
  EXPECT_EQ(Back.Diags[0].Message, "unknown identifier 'x'");
  EXPECT_EQ(Back.Diags[1].Message, "type mismatch");
}

TEST(Store, DecodeRejectsWrongKeyTruncationAndBitFlips) {
  CachedUnit U = builtUnit("malloc");
  std::vector<uint8_t> Entry = Store::encodeEntry(99, U);
  CachedUnit Back;

  // The key is part of the addressed content: a file renamed to another
  // key's slot must not decode — and both 64-bit lanes of the 128-bit
  // key are verified, so a single-lane collision is not enough.
  EXPECT_FALSE(Store::decodeEntry(Entry, 100, Back));
  EXPECT_FALSE(Store::decodeEntry(Entry, CacheKey(99, 1), Back));
  EXPECT_TRUE(Store::decodeEntry(Entry, CacheKey(99, 0), Back));

  size_t Step = std::max<size_t>(1, Entry.size() / 211);
  for (size_t Len = 0; Len < Entry.size(); Len += Step) {
    std::vector<uint8_t> Cut(Entry.begin(), Entry.begin() + long(Len));
    EXPECT_FALSE(Store::decodeEntry(Cut, 99, Back)) << "prefix " << Len;
  }
  // Any single bit flip anywhere breaks the FNV-1a payload checksum (or
  // the header): a torn entry can never be served.
  for (size_t I = 0; I < Entry.size(); I += Step) {
    std::vector<uint8_t> Bad = Entry;
    Bad[I] ^= 0x10;
    EXPECT_FALSE(Store::decodeEntry(Bad, 99, Back)) << "byte " << I;
  }
}

TEST(Store, CacheKeysPopulateBothHashLanes) {
  // The persistent identity is 128-bit: two independently mixed lanes
  // over the same content. Same content -> same key; different content
  // differs in both lanes; the lanes are not copies of each other.
  CacheKey T1 = toolCacheKey(toolOrDie("prof"));
  CacheKey T2 = toolCacheKey(toolOrDie("malloc"));
  EXPECT_EQ(T1, toolCacheKey(toolOrDie("prof")));
  EXPECT_NE(T1.K0, T2.K0);
  EXPECT_NE(T1.K1, T2.K1);
  EXPECT_NE(T1.K0, T1.K1);

  obj::Executable App = buildOrDie("int main() { return 0; }");
  CacheKey A = appCacheKey(App);
  EXPECT_EQ(A, appCacheKey(App));
  EXPECT_NE(A.K0, T1.K0); // tool/app domains separated in both lanes
  EXPECT_NE(A.K1, T1.K1);
}

TEST(Store, StoreThenLoadAcrossInstances) {
  std::string Dir = scratchDir();
  CachedUnit U = builtUnit("prof");
  // Under a destructive chaos sweep writes/reads may legitimately fail;
  // only the no-corruption invariant (a served entry decodes to exactly
  // what was stored) stays enforced.
  bool Chaos = destructiveChaosActive();
  {
    Store S(Dir);
    std::string Err;
    ASSERT_TRUE(S.open(Err)) << Err;
    S.store(11, U);
    if (!Chaos) {
      EXPECT_TRUE(S.contains(11));
      EXPECT_EQ(S.stats().Writes, 1u);
    }
    CachedUnit Out;
    bool Loaded = S.load(11, Out);
    if (!Chaos) {
      ASSERT_TRUE(Loaded);
      EXPECT_EQ(S.stats().Hits, 1u);
    }
    if (Loaded)
      EXPECT_EQ(om::dumpUnit(Out.U), om::dumpUnit(U.U));
  }
  // A fresh instance (daemon restart) rescans the directory.
  Store S2(Dir);
  std::string Err;
  ASSERT_TRUE(S2.open(Err)) << Err;
  if (!Chaos)
    EXPECT_EQ(S2.entryCount(), 1u);
  CachedUnit Out;
  bool Loaded = S2.load(11, Out);
  if (!Chaos)
    ASSERT_TRUE(Loaded);
  if (Loaded) {
    EXPECT_TRUE(Out.Ok);
    EXPECT_EQ(om::dumpUnit(Out.U), om::dumpUnit(U.U));
  }
  EXPECT_FALSE(S2.load(12, Out)); // unknown key is a miss
  if (!Chaos)
    EXPECT_EQ(S2.stats().Misses, 1u);
}

TEST(Store, CorruptEntryIsRejectedAndDeleted) {
  if (destructiveChaosActive())
    GTEST_SKIP() << "hand-corrupts specific files; covered by ChaosTests";
  std::string Dir = scratchDir();
  CachedUnit U = builtUnit("dyninst");
  Store S(Dir);
  std::string Err;
  ASSERT_TRUE(S.open(Err)) << Err;
  S.store(5, U);

  // Tear the entry on disk (as an interrupted write or bit rot would).
  std::string Path = Store::entryPath(Dir, 5);
  std::vector<uint8_t> Bytes = readHostFile(Path);
  ASSERT_FALSE(Bytes.empty());
  Bytes[Bytes.size() / 2] ^= 0xFF;
  writeHostFile(Path, Bytes);

  CachedUnit Out;
  EXPECT_FALSE(S.load(5, Out));
  StoreStats St = S.stats();
  EXPECT_EQ(St.LoadFailures, 1u);
  EXPECT_EQ(St.Misses, 1u);
  // The bad file is gone, so the rebuilt artifact can be re-spilled.
  EXPECT_FALSE(hostFileExists(Path));
  EXPECT_FALSE(S.contains(5));
  S.store(5, U);
  ASSERT_TRUE(S.load(5, Out));
  EXPECT_EQ(om::dumpUnit(Out.U), om::dumpUnit(U.U));
}

TEST(Store, TruncatedEntryIsRejectedOnRestart) {
  if (destructiveChaosActive())
    GTEST_SKIP() << "hand-truncates specific files; covered by ChaosTests";
  std::string Dir = scratchDir();
  CachedUnit U = builtUnit("prof");
  {
    Store S(Dir);
    std::string Err;
    ASSERT_TRUE(S.open(Err)) << Err;
    S.store(8, U);
  }
  std::string Path = Store::entryPath(Dir, 8);
  std::vector<uint8_t> Bytes = readHostFile(Path);
  Bytes.resize(Bytes.size() / 3);
  writeHostFile(Path, Bytes);

  Store S2(Dir);
  std::string Err;
  ASSERT_TRUE(S2.open(Err)) << Err;
  CachedUnit Out;
  EXPECT_FALSE(S2.load(8, Out));
  EXPECT_EQ(S2.stats().LoadFailures, 1u);
  EXPECT_FALSE(hostFileExists(Path));
}

TEST(Store, StaleTempFilesAreRemovedOnOpen) {
  std::string Dir = scratchDir();
  {
    Store S(Dir);
    std::string Err;
    ASSERT_TRUE(S.open(Err)) << Err;
  }
  // Simulate a crash mid-write: a tmp.* file left behind.
  std::string Tmp = Dir + "/tmp.1234.00000000000000aa";
  writeHostFile(Tmp, std::vector<uint8_t>(100, 0x55));
  ASSERT_TRUE(hostFileExists(Tmp));
  Store S2(Dir);
  std::string Err;
  ASSERT_TRUE(S2.open(Err)) << Err;
  EXPECT_FALSE(hostFileExists(Tmp));
  EXPECT_EQ(S2.entryCount(), 0u); // tmp files are not entries
}

TEST(Store, EvictsLeastRecentlyUsedPastByteCap) {
  if (destructiveChaosActive())
    GTEST_SKIP() << "LRU accounting assumes every write lands";
  std::string Dir = scratchDir();
  CachedUnit U = builtUnit("prof");
  uint64_t EntryBytes = Store::encodeEntry(1, U).size();

  // Cap fits exactly two entries; a third evicts the least recently used.
  Store S(Dir, 2 * EntryBytes);
  std::string Err;
  ASSERT_TRUE(S.open(Err)) << Err;
  S.store(1, U);
  S.store(2, U);
  EXPECT_EQ(S.entryCount(), 2u);

  CachedUnit Out;
  ASSERT_TRUE(S.load(1, Out)); // key 2 is now the LRU entry
  S.store(3, U);
  EXPECT_EQ(S.entryCount(), 2u);
  EXPECT_TRUE(S.contains(1));
  EXPECT_FALSE(S.contains(2));
  EXPECT_TRUE(S.contains(3));
  EXPECT_FALSE(hostFileExists(Store::entryPath(Dir, 2)));
  StoreStats St = S.stats();
  EXPECT_EQ(St.Evictions, 1u);
  EXPECT_LE(St.Bytes, 2 * EntryBytes);
}

TEST(Store, ActsAsPipelineCacheTier) {
  std::string Dir = scratchDir();
  obj::Executable App = buildOrDie("int main() { return 0; }");
  std::string FreshDump, FreshAppDump;

  {
    Store S(Dir);
    std::string Err;
    ASSERT_TRUE(S.open(Err)) << Err;
    PipelineCache Cache;
    Cache.setTier(&S);
    PipelineCache::UnitPtr TA = Cache.analysisUnit(toolOrDie("prof"));
    PipelineCache::UnitPtr AA = Cache.liftedApp(App);
    ASSERT_TRUE(TA->Ok && AA->Ok);
    FreshDump = om::dumpUnit(TA->U);
    FreshAppDump = om::dumpUnit(AA->U);
    // Both builds were spilled through the tier.
    if (!destructiveChaosActive()) {
      EXPECT_EQ(S.stats().Writes, 2u);
      EXPECT_EQ(Cache.stats().TierHits, 0u);
    }
  }

  // A second process: in-memory cold, disk warm. The tier satisfies the
  // misses without a rebuild, and the loaded artifacts are identical.
  Store S2(Dir);
  std::string Err;
  ASSERT_TRUE(S2.open(Err)) << Err;
  PipelineCache Cache2;
  Cache2.setTier(&S2);
  PipelineCache::UnitPtr TA = Cache2.analysisUnit(toolOrDie("prof"));
  PipelineCache::UnitPtr AA = Cache2.liftedApp(App);
  ASSERT_TRUE(TA->Ok && AA->Ok);
  // Whether the tier hit or the chaos sweep forced a rebuild, the
  // artifacts are identical either way.
  EXPECT_EQ(om::dumpUnit(TA->U), FreshDump);
  EXPECT_EQ(om::dumpUnit(AA->U), FreshAppDump);
  if (!destructiveChaosActive()) {
    CacheStats CS = Cache2.stats();
    EXPECT_EQ(CS.Misses, 2u);
    EXPECT_EQ(CS.TierHits, 2u);
    EXPECT_EQ(S2.stats().Hits, 2u);
    // No duplicate spill of tier-loaded artifacts.
    EXPECT_EQ(S2.stats().Writes, 0u);
  }
}

} // namespace
