//===- tests/OmTests.cpp - OM IR: lifting, CFG, dataflow, regeneration ----===//

#include "TestUtil.h"

#include "asm/Assembler.h"
#include "link/Linker.h"
#include "om/DataFlow.h"
#include "om/Layout.h"
#include "om/Lift.h"
#include "om/Liveness.h"
#include "om/Rename.h"

using namespace atom;
using namespace atom::test;
using namespace atom::om;
using namespace atom::isa;

namespace {

om::Unit liftAsm(const std::string &Src) {
  DiagEngine Diags;
  obj::ObjectModule M;
  if (!assembler::assemble(Src, "t", M, Diags)) {
    ADD_FAILURE() << Diags.str();
    abort();
  }
  om::Unit U;
  if (!om::liftObjectModule(M, UnitTag::Analysis, U, Diags)) {
    ADD_FAILURE() << Diags.str();
    abort();
  }
  return U;
}

//===----------------------------------------------------------------------===//
// CFG construction
//===----------------------------------------------------------------------===//

TEST(Lift, BlocksAndEdges) {
  om::Unit U = liftAsm(R"(
        .text
        .ent f
        .globl f
f:      beq a0, Lelse       ; block 0: cond -> block 1 (fallthrough), 2
        addq a0, #1, v0     ; block 1
        br Lend             ; -> block 3
Lelse:  subq a0, #1, v0     ; block 2, falls through
Lend:   ret                 ; block 3
        .end f
)");
  ASSERT_EQ(U.Procs.size(), 1u);
  const Procedure &P = U.Procs[0];
  ASSERT_EQ(P.Blocks.size(), 4u);
  EXPECT_EQ(P.instCount(), 5u);

  // Block 0 ends with beq: successors are the target (block 2) and the
  // fallthrough (block 1).
  ASSERT_EQ(P.Blocks[0].Succs.size(), 2u);
  EXPECT_EQ(P.Blocks[0].Succs[0], 2);
  EXPECT_EQ(P.Blocks[0].Succs[1], 1);
  // Block 1 ends with br -> block 3 only.
  ASSERT_EQ(P.Blocks[1].Succs.size(), 1u);
  EXPECT_EQ(P.Blocks[1].Succs[0], 3);
  // Block 2 falls through to 3.
  ASSERT_EQ(P.Blocks[2].Succs.size(), 1u);
  EXPECT_EQ(P.Blocks[2].Succs[0], 3);
  // Block 3 (ret) has no successors; preds of 3 are 1 and 2.
  EXPECT_TRUE(P.Blocks[3].Succs.empty());
  EXPECT_EQ(P.Blocks[3].Preds.size(), 2u);
}

TEST(Lift, CallsDoNotEndBlocks) {
  om::Unit U = liftAsm(R"(
        .text
        .ent f
        .globl f
f:      bsr ra, g
        addq v0, #1, v0
        ret
        .end f
        .ent g
        .globl g
g:      ret
        .end g
)");
  const Procedure &F = U.Procs[0];
  ASSERT_EQ(F.Blocks.size(), 1u); // bsr does not terminate the block
  EXPECT_EQ(F.Blocks[0].Insts.size(), 3u);
  // The call is symbolic (Br21 to g).
  const InstNode &Call = F.Blocks[0].Insts[0];
  EXPECT_TRUE(Call.HasReloc);
  EXPECT_EQ(Call.RelKind, obj::RelocKind::Br21);
  EXPECT_EQ(U.Symbols[size_t(Call.Ref.SymIndex)].Name, "g");
}

TEST(Lift, LoopBackEdge) {
  om::Unit U = liftAsm(R"(
        .text
        .ent f
        .globl f
f:      clr t0
Loop:   addq t0, #1, t0
        cmplt t0, #10, t1
        bne t1, Loop
        ret
        .end f
)");
  DataFlowResult DF = computeDataFlow(U);
  EXPECT_TRUE(DF.Summaries[0].HasLoop);
  EXPECT_FALSE(DF.Summaries[0].HasCall);
}

//===----------------------------------------------------------------------===//
// Data-flow summaries
//===----------------------------------------------------------------------===//

TEST(DataFlow, DirectAndTransitive) {
  om::Unit U = liftAsm(R"(
        .text
        .ent leaf
        .globl leaf
leaf:   addq t5, #1, t5
        ret
        .end leaf
        .ent caller
        .globl caller
caller: lda sp, -16(sp)
        stq ra, 0(sp)
        addq t0, #1, t0
        bsr ra, leaf
        ldq ra, 0(sp)
        lda sp, 16(sp)
        ret
        .end caller
)");
  DataFlowResult DF = computeDataFlow(U);
  const ProcSummary &Leaf = DF.forProc(U, "leaf");
  const ProcSummary &Caller = DF.forProc(U, "caller");

  EXPECT_EQ(Leaf.DirectMod & (1u << RegT5), 1u << RegT5);
  EXPECT_FALSE(Leaf.HasCall);
  EXPECT_TRUE(Caller.HasCall);
  // Caller directly modifies t0 and ra (bsr), transitively t5.
  EXPECT_TRUE(Caller.DirectMod & (1u << RegT0));
  EXPECT_TRUE(Caller.DirectMod & (1u << RegRA));
  EXPECT_FALSE(Caller.DirectMod & (1u << RegT5));
  EXPECT_TRUE(Caller.TransMod & (1u << RegT5));
  // sp is never in a summary (not caller-save).
  EXPECT_FALSE(Caller.TransMod & (1u << RegSP));
}

TEST(DataFlow, IndirectCallIsConservative) {
  om::Unit U = liftAsm(R"(
        .text
        .ent f
        .globl f
f:      jsr ra, (pv)
        ret
        .end f
)");
  DataFlowResult DF = computeDataFlow(U);
  EXPECT_TRUE(DF.Summaries[0].HasIndirectCall);
  EXPECT_EQ(DF.Summaries[0].TransMod, callerSavedMask());
}

TEST(DataFlow, MutualRecursionConverges) {
  om::Unit U = liftAsm(R"(
        .text
        .ent a
        .globl a
a:      addq t1, #1, t1
        bsr ra, b
        ret
        .end a
        .ent b
        .globl b
b:      addq t2, #1, t2
        bsr ra, a
        ret
        .end b
)");
  DataFlowResult DF = computeDataFlow(U);
  uint32_t Want = (1u << RegT1) | (1u << RegT2) | (1u << RegRA);
  EXPECT_EQ(DF.forProc(U, "a").TransMod & Want, Want);
  EXPECT_EQ(DF.forProc(U, "b").TransMod & Want, Want);
}

//===----------------------------------------------------------------------===//
// Register renaming
//===----------------------------------------------------------------------===//

TEST(Rename, CompactsScratchRegisters) {
  om::Unit U = liftAsm(R"(
        .text
        .ent f
        .globl f
f:      addq t9, #1, t9
        addq t11, t9, t4
        stq t4, 0(a0)
        ret
        .end f
)");
  EXPECT_EQ(renameScratchRegs(U), 1u);
  DataFlowResult DF = computeDataFlow(U);
  // Used scratch registers {t4, t9, t11} map to {t0, t1, t2}; the two
  // *written* ones (t4 and t9) land in the compact prefix.
  uint32_t Mask = DF.Summaries[0].DirectMod;
  EXPECT_EQ(Mask, (1u << RegT0) | (1u << RegT1));
}

TEST(Rename, AlreadyCompactIsUntouched) {
  om::Unit U = liftAsm(R"(
        .text
        .ent f
        .globl f
f:      addq t0, #1, t1
        ret
        .end f
)");
  EXPECT_EQ(renameScratchRegs(U), 0u);
}

TEST(Rename, PreservesSemantics) {
  // A function that computes with high-numbered scratch registers must
  // produce the same result after renaming (exercised end to end through
  // ATOM in AtomTests; here we spot-check operand rewriting).
  om::Unit U = liftAsm(R"(
        .text
        .ent f
        .globl f
f:      lda t10, 5(zero)
        lda t11, 7(zero)
        addq t10, t11, t9
        mov t9, v0
        ret
        .end f
)");
  renameScratchRegs(U);
  const Procedure &P = U.Procs[0];
  // t10->t0, t11->t1, t9->t2 (canonical order of first use does not
  // matter; what matters is consistency).
  const InstNode &Add = P.Blocks[0].Insts[2];
  const InstNode &Mov = P.Blocks[0].Insts[3];
  EXPECT_EQ(Add.I.Rc, Mov.I.Ra); // the def feeding the move stays consistent
  EXPECT_TRUE(Add.I.Ra < RegT8 && Add.I.Rb < RegT8 && Add.I.Rc < RegT8);
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(Liveness, DeadAfterLastUse) {
  om::Unit U = liftAsm(R"(
        .text
        .ent f
        .globl f
f:      addq t0, t1, t2
        addq t2, #1, v0
        ret
        .end f
)");
  LivenessInfo L(U.Procs[0]);
  // Before inst 0: t0 and t1 live (t2 not: it is defined here).
  uint32_t L0 = L.liveBefore(0, 0);
  EXPECT_TRUE(L0 & (1u << RegT0));
  EXPECT_TRUE(L0 & (1u << RegT1));
  EXPECT_FALSE(L0 & (1u << RegT2));
  // Before inst 1: t2 live, t0/t1 dead.
  uint32_t L1 = L.liveBefore(0, 1);
  EXPECT_TRUE(L1 & (1u << RegT2));
  EXPECT_FALSE(L1 & (1u << RegT0));
  // Before ret: v0 live (return value convention).
  uint32_t L2 = L.liveBefore(0, 2);
  EXPECT_TRUE(L2 & (1u << RegV0));
}

TEST(Liveness, CallsKillCallerSaveRegs) {
  om::Unit U = liftAsm(R"(
        .text
        .ent f
        .globl f
f:      addq zero, #1, t7
        bsr ra, g
        addq v0, #0, v0
        ret
        .end f
        .ent g
        .globl g
g:      ret
        .end g
)");
  LivenessInfo L(U.Procs[0]);
  // Before the first inst, t7 is not live across the call (caller-save
  // registers die at calls).
  EXPECT_FALSE(L.liveBefore(0, 0) & (1u << RegT7));
  // Argument registers are conservatively live into the call.
  EXPECT_TRUE(L.liveBefore(0, 1) & (1u << RegA0));
}

//===----------------------------------------------------------------------===//
// Layout: identity regeneration
//===----------------------------------------------------------------------===//

TEST(Layout, UninstrumentedRegenerationPreservesBehaviour) {
  // Lift a real program and regenerate it with no instrumentation at all:
  // the result must behave identically (same output, same instruction
  // count) even though every branch was re-resolved from symbolic form.
  obj::Executable App = buildOrDie(R"(
long fib(long n) {
  if (n < 2)
    return n;
  return fib(n - 1) + fib(n - 2);
}
int main() {
  printf("%ld\n", fib(15));
  return 0;
})");
  RunOutcome Base = runProgram(App);

  DiagEngine Diags;
  om::Unit U;
  ASSERT_TRUE(om::liftExecutable(App, U, Diags)) << Diags.str();
  obj::Executable Regen;
  om::LayoutResult LR;
  ASSERT_TRUE(om::layoutProgram(U, nullptr, Regen, LR, Diags))
      << Diags.str();

  EXPECT_EQ(Regen.Text.size(), App.Text.size());
  RunOutcome After = runProgram(Regen);
  EXPECT_EQ(After.Stdout, Base.Stdout);
  EXPECT_EQ(After.Instructions, Base.Instructions);
  EXPECT_TRUE(After.Result.exitedWith(0));

  // Identity layout: every instruction maps to itself.
  for (const auto &[New, Old] : LR.NewToOldPC)
    EXPECT_EQ(New, Old);
}

TEST(Layout, TotalInstsAndDump) {
  om::Unit U = liftAsm(R"(
        .text
        .ent f
        .globl f
f:      nop
        nop
        ret
        .end f
)");
  EXPECT_EQ(totalInsts(U), 3u);
  std::string Dump = dumpUnit(U);
  EXPECT_NE(Dump.find("proc f"), std::string::npos);
  EXPECT_NE(Dump.find("ret"), std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===//
// Interprocedural liveness (USE/MOD summaries)
//===----------------------------------------------------------------------===//

namespace {

TEST(InterProcLiveness, CalleeSummariesRefineCallSites) {
  om::Unit U = liftAsm(R"(
        .text
        .ent leaf
        .globl leaf
leaf:   addq a0, #1, v0     ; reads a0 only, writes v0
        ret
        .end leaf
        .ent caller
        .globl caller
caller: lda sp, -16(sp)
        stq ra, 0(sp)
        bsr ra, leaf
        ldq ra, 0(sp)
        lda sp, 16(sp)
        ret
        .end caller
)");
  UseDefSummaries S(U);
  // leaf reads only a0 (plus sp by convention at most).
  EXPECT_TRUE(S.useOf("leaf") & (1u << RegA0));
  EXPECT_FALSE(S.useOf("leaf") & (1u << RegA1));
  EXPECT_FALSE(S.useOf("leaf") & (1u << RegA5));
  // leaf modifies v0 but not t7.
  EXPECT_TRUE(S.modOf("leaf") & (1u << RegV0));
  EXPECT_FALSE(S.modOf("leaf") & (1u << RegT7));
  // Unknown procedures fall back to the conventions.
  EXPECT_EQ(S.useOf("unknown"), UseDefSummaries::conservativeUse());

  // At the call site inside caller, interprocedural liveness knows a1 is
  // dead (leaf never reads it), while the intraprocedural version must
  // assume all argument registers are read.
  const om::Procedure &Caller = *U.findProc("caller");
  LivenessInfo Intra(Caller);
  LivenessInfo Inter(Caller, &U, &S);
  // Find the call instruction.
  unsigned CallIdx = 0;
  for (unsigned I = 0; I < Caller.Blocks[0].Insts.size(); ++I)
    if (Caller.Blocks[0].Insts[I].I.Op == isa::Opcode::Bsr)
      CallIdx = I;
  EXPECT_TRUE(Intra.liveBefore(0, CallIdx) & (1u << RegA1));
  EXPECT_FALSE(Inter.liveBefore(0, CallIdx) & (1u << RegA1));
  EXPECT_TRUE(Inter.liveBefore(0, CallIdx) & (1u << RegA0));
}

TEST(InterProcLiveness, RecursionConverges) {
  om::Unit U = liftAsm(R"(
        .text
        .ent rec
        .globl rec
rec:    lda sp, -16(sp)
        stq ra, 0(sp)
        beq a0, rec$done
        subq a0, #1, a0
        bsr ra, rec
rec$done:
        ldq ra, 0(sp)
        lda sp, 16(sp)
        ret
        .end rec
)");
  UseDefSummaries S(U);
  EXPECT_TRUE(S.useOf("rec") & (1u << RegA0));
  EXPECT_TRUE(S.modOf("rec") & (1u << RegRA));
}

} // namespace
