//===- tests/SimFastPathTests.cpp - Hot path + syscall fault fixes --------===//
//
// Regression tests for the precise-fault holes in the syscall/bulk-memory
// layer and for the fast-path machinery (translation cache, span copies,
// fused loop):
//
//   * SysWrite/SysRead validate guest ranges before host allocation / VFS
//     side effects (huge guest lengths trap instead of OOMing the host,
//     trapped reads never advance the fd offset).
//   * SysOpen refuses unterminated path strings instead of truncating.
//   * Bulk readBytes/writeBytes are side-effect free on fault.
//   * Scalar accesses straddling a region boundary trap precisely.
//   * corruptTextWord stays coherent with the memory image and the
//     translation cache.
//   * The fast loop is observationally equivalent to the checked loop.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "asm/Assembler.h"
#include "link/Linker.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

using namespace atom;
using namespace atom::sim;
using namespace atom::test;

namespace {

/// Assembles \p Body into a standalone 'start' procedure and returns a
/// Machine ready to run, so tests can seed memory or the VFS first.
std::unique_ptr<Machine> makeAsmMachine(const std::string &Body,
                                        const MachineOptions &Opts =
                                            MachineOptions()) {
  std::string Src = "        .text\n        .ent start\n"
                    "        .globl start\nstart:\n" +
                    Body + "        .end start\n";
  DiagEngine Diags;
  obj::ObjectModule M;
  if (!assembler::assemble(Src, "t", M, Diags)) {
    ADD_FAILURE() << "assembly failed:\n" << Diags.str() << "\n" << Src;
    abort();
  }
  obj::Executable Exe;
  link::LinkOptions LOpts;
  LOpts.EntrySymbol = "start";
  if (!link::linkExecutable({M}, Exe, Diags, LOpts)) {
    ADD_FAILURE() << "link failed:\n" << Diags.str();
    abort();
  }
  return std::make_unique<Machine>(Exe, Opts);
}

RunResult runAsm(const std::string &Body,
                 const MachineOptions &Opts = MachineOptions()) {
  return makeAsmMachine(Body, Opts)->run(1'000'000);
}

} // namespace

//===----------------------------------------------------------------------===//
// Syscall precise-fault fixes.
//===----------------------------------------------------------------------===//

TEST(SyscallFaults, WriteHugeLengthTrapsInsteadOfHostAllocation) {
  // a2 = 1 TiB. The pre-fix SysWrite allocated a host buffer of that size
  // before any validation; now the source range is validated first and the
  // guest traps precisely.
  RunResult R = runAsm("lconst v0, 3\n"          // SysWrite
                       "        lconst a0, 1\n"  // stdout
                       "        lconst a1, 0x10000000\n"
                       "        lconst a2, 0x10000000000\n"
                       "        callsys\n halt\n");
  ASSERT_EQ(R.Status, RunStatus::Trap) << R.FaultMessage;
  EXPECT_EQ(R.Trap, TrapKind::UnmappedAccess);
}

TEST(SyscallFaults, ReadHugeLengthTrapsBeforeVfs) {
  // Destination [a1, a1+a2) reaches past the heap limit; the read must
  // trap without consulting the VFS at all (pre-fix it returned the VFS
  // error and halted cleanly).
  RunResult R = runAsm("lconst v0, 2\n"          // SysRead
                       "        clr a0\n"
                       "        lconst a1, 0x10000000\n"
                       "        lconst a2, 0x10000000000\n"
                       "        callsys\n halt\n");
  ASSERT_EQ(R.Status, RunStatus::Trap) << R.FaultMessage;
  EXPECT_EQ(R.Trap, TrapKind::UnmappedAccess);
}

TEST(SyscallFaults, TrappedReadDoesNotAdvanceFdOffset) {
  // open("in.txt") then read(fd, unmapped, 16): the read traps, and the
  // file offset must still be 0 so recovery or replay re-reads the same
  // bytes. Pre-fix, Fs.read consumed the bytes before validation.
  std::unique_ptr<Machine> M = makeAsmMachine(
      "lconst v0, 4\n"                      // SysOpen
      "        lconst a0, 0x10000000\n"     // path seeded below
      "        clr a1\n"                    // OpenRead
      "        callsys\n"
      "        mov v0, a0\n"                // fd
      "        lconst v0, 2\n"              // SysRead
      "        lconst a1, 0x03000000\n"     // unmapped destination
      "        lconst a2, 16\n"
      "        callsys\n halt\n");
  M->vfs().addFile("in.txt", "hello, precise faults");
  const char Path[] = "in.txt";
  M->memory().writeBytes(0x10000000, reinterpret_cast<const uint8_t *>(Path),
                         sizeof(Path));
  ASSERT_FALSE(M->memory().memFault().Faulted);

  RunResult R = M->run(1'000'000);
  ASSERT_EQ(R.Status, RunStatus::Trap) << R.FaultMessage;
  EXPECT_EQ(R.Trap, TrapKind::UnmappedAccess);
  EXPECT_EQ(R.FaultAddr, 0x03000000u);
  // fd 3 is the first descriptor handed out; its position is untouched.
  EXPECT_EQ(M->vfs().tell(3), 0);
}

TEST(SyscallFaults, OpenUnterminatedPathTraps) {
  // 5000 non-NUL bytes at the path pointer: pre-fix SysOpen silently
  // truncated at 4096 and opened the garbage name; now it traps.
  std::unique_ptr<Machine> M = makeAsmMachine(
      "lconst v0, 4\n"
      "        lconst a0, 0x10000000\n"
      "        clr a1\n"
      "        callsys\n halt\n");
  std::vector<uint8_t> Junk(5000, uint8_t('A'));
  M->memory().writeBytes(0x10000000, Junk.data(), Junk.size());
  ASSERT_FALSE(M->memory().memFault().Faulted);

  RunResult R = M->run(1'000'000);
  ASSERT_EQ(R.Status, RunStatus::Trap) << R.FaultMessage;
  EXPECT_EQ(R.Trap, TrapKind::UnmappedAccess);
  EXPECT_EQ(R.FaultAddr, 0x10000000u);
  EXPECT_NE(R.FaultMessage.find("NUL-terminated"), std::string::npos)
      << R.FaultMessage;
  EXPECT_FALSE(M->vfs().fileExists(std::string(4096, 'A')));
}

TEST(SyscallFaults, OpenPathEndingAtUnmappedByteTraps) {
  // The path scan runs off the end of the heap region without a NUL: the
  // scalar load faults and the fault (not a truncated open) is reported.
  MachineOptions Opts;
  Opts.HeapMaxBytes = 0x1000; // tiny heap: region is [0x10000000, +4K)
  std::unique_ptr<Machine> M = makeAsmMachine(
      "lconst v0, 4\n"
      "        lconst a0, 0x10000ffc\n" // 4 bytes before the region end
      "        clr a1\n"
      "        callsys\n halt\n",
      Opts);
  const uint8_t Tail[4] = {'x', 'y', 'z', 'w'}; // no NUL before the edge
  M->memory().writeBytes(0x10000ffc, Tail, sizeof(Tail));
  ASSERT_FALSE(M->memory().memFault().Faulted);

  RunResult R = M->run(1'000'000);
  ASSERT_EQ(R.Status, RunStatus::Trap) << R.FaultMessage;
  EXPECT_EQ(R.Trap, TrapKind::UnmappedAccess);
  EXPECT_EQ(R.FaultAddr, 0x10001000u);
}

//===----------------------------------------------------------------------===//
// Bulk-op side-effect freedom.
//===----------------------------------------------------------------------===//

TEST(BulkOps, FaultingWriteLeavesMemoryUntouched) {
  // A 16-byte write starting in the RW stack and running into read-only
  // text: the whole range is validated up front, so not even the allowed
  // stack prefix is modified (pre-fix the prefix was committed).
  std::unique_ptr<Machine> M = makeAsmMachine("halt\n");
  Memory &Mem = M->memory();
  const uint64_t Text = obj::DefaultTextStart;

  std::vector<uint8_t> Data(16, 0xAA);
  Mem.writeBytes(Text - 8, Data.data(), Data.size());
  ASSERT_TRUE(Mem.memFault().Faulted);
  EXPECT_EQ(Mem.memFault().Addr, Text);
  EXPECT_EQ(Mem.memFault().Kind, TrapKind::WriteProtected);
  Mem.clearMemFault();

  EXPECT_EQ(Mem.load64(Text - 8), 0u) << "allowed prefix was committed";
  ASSERT_FALSE(Mem.memFault().Faulted);
}

TEST(BulkOps, FaultingReadLeavesBufferUntouched) {
  // A read straddling the end of the text region: the destination buffer
  // must not receive the allowed prefix.
  std::unique_ptr<Machine> M = makeAsmMachine("halt\n");
  Memory &Mem = M->memory();
  const uint64_t Text = obj::DefaultTextStart;

  // One word of text exists ('halt' = 4 bytes); read 64 bytes spanning
  // past the text region end.
  std::vector<uint8_t> Buf(64, 0xEE);
  Mem.readBytes(Text, Buf.data(), Buf.size());
  ASSERT_TRUE(Mem.memFault().Faulted);
  Mem.clearMemFault();
  for (uint8_t B : Buf)
    EXPECT_EQ(B, 0xEE) << "allowed prefix was copied out";
}

TEST(BulkOps, SpanCopyAcrossPagesRoundTrips) {
  // A bulk write/read crossing several 8K pages inside one region comes
  // back byte-identical (exercises the span splitting).
  std::unique_ptr<Machine> M = makeAsmMachine("halt\n");
  Memory &Mem = M->memory();
  std::vector<uint8_t> Out(3 * obj::PageSize + 123);
  for (size_t I = 0; I < Out.size(); ++I)
    Out[I] = uint8_t(I * 7 + 3);
  const uint64_t Base = 0x10000000 + 100; // unaligned start
  Mem.writeBytes(Base, Out.data(), Out.size());
  ASSERT_FALSE(Mem.memFault().Faulted);
  std::vector<uint8_t> In(Out.size(), 0);
  Mem.readBytes(Base, In.data(), In.size());
  ASSERT_FALSE(Mem.memFault().Faulted);
  EXPECT_EQ(In, Out);
  EXPECT_GT(Mem.perf().BulkSpans, 0u);
  EXPECT_GE(Mem.perf().BulkBytes, 2 * Out.size());
}

//===----------------------------------------------------------------------===//
// Scalar fast path: straddles and translation-cache coherence.
//===----------------------------------------------------------------------===//

TEST(ScalarFastPath, StoreStraddlingRegionBoundaryTrapsPrecisely) {
  // stq at TextStart-4 covers 4 writable stack bytes and 4 read-only text
  // bytes; it must trap at the text byte and leave the stack bytes alone.
  RunResult R = runAsm("lconst t0, 0x01fffffc\n"
                       "        lconst t1, -1\n"
                       "        stq t1, 0(t0)\n halt\n");
  ASSERT_EQ(R.Status, RunStatus::Trap) << R.FaultMessage;
  EXPECT_EQ(R.Trap, TrapKind::WriteProtected);
  EXPECT_EQ(R.FaultAddr, obj::DefaultTextStart);
}

TEST(ScalarFastPath, StraddlingStoreHasNoSideEffects) {
  std::unique_ptr<Machine> M = makeAsmMachine(
      "lconst t0, 0x01fffffc\n"
      "        lconst t1, -1\n"
      "        stq t1, 0(t0)\n halt\n");
  RunResult R = M->run(1'000'000);
  ASSERT_EQ(R.Status, RunStatus::Trap);
  Memory &Mem = M->memory();
  Mem.clearMemFault();
  EXPECT_EQ(Mem.load32(obj::DefaultTextStart - 4), 0u)
      << "stack prefix of a straddling store was committed";
}

TEST(ScalarFastPath, TranslationCacheSeesCorruptTextWord) {
  // Prime the translation cache with a load from the text page, corrupt
  // the word under it, and load again: the corrupted bytes must be
  // visible (corruptTextWord writes through to the memory image and
  // invalidates the cache).
  std::unique_ptr<Machine> M = makeAsmMachine("halt\n");
  Memory &Mem = M->memory();
  const uint64_t Text = obj::DefaultTextStart;

  uint32_t Before = Mem.load32(Text);
  ASSERT_FALSE(Mem.memFault().Faulted);
  M->corruptTextWord(0, 0xFFFFFFFF);
  uint32_t After = Mem.load32(Text);
  ASSERT_FALSE(Mem.memFault().Faulted);
  EXPECT_EQ(After, Before ^ 0xFFFFFFFFu);
  EXPECT_GT(Mem.perf().TransInvalidations, 0u);
}

TEST(ScalarFastPath, TranslationCacheCountsHits) {
  std::unique_ptr<Machine> M = makeAsmMachine(
      "lconst t0, 0x10000000\n"
      "        stq t1, 0(t0)\n"
      "        ldq t2, 0(t0)\n"
      "        ldq t3, 0(t0)\n halt\n");
  RunResult R = M->run(1'000'000);
  ASSERT_EQ(R.Status, RunStatus::Halted) << R.FaultMessage;
  const Memory::Perf &P = M->memory().perf();
  EXPECT_GT(P.TransHits + P.TransMisses, 0u);
  EXPECT_GT(P.TransHits, 0u) << "repeated same-page accesses never hit";
}

//===----------------------------------------------------------------------===//
// Fast loop vs checked loop equivalence.
//===----------------------------------------------------------------------===//

TEST(FastLoop, MatchesCheckedLoopOnWorkloads) {
  for (const char *Name : {"crc", "qsort", "iobound"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    ASSERT_NE(W, nullptr) << Name;
    obj::Executable Exe = buildOrDie(W->Source);

    MachineOptions FastOpts;
    FastOpts.EnableFastPath = true;
    Machine MF(Exe, FastOpts);
    RunResult RF = MF.run();

    MachineOptions SlowOpts;
    SlowOpts.EnableFastPath = false;
    Machine MS(Exe, SlowOpts);
    RunResult RS = MS.run();

    ASSERT_EQ(RF.Status, RunStatus::Exited) << Name;
    ASSERT_EQ(RS.Status, RunStatus::Exited) << Name;
    EXPECT_EQ(RF.ExitCode, RS.ExitCode) << Name;
    EXPECT_EQ(MF.vfs().stdoutText(), MS.vfs().stdoutText()) << Name;

    const Stats &SF = MF.stats(), &SS = MS.stats();
    EXPECT_EQ(SF.Instructions, SS.Instructions) << Name;
    EXPECT_EQ(SF.Loads, SS.Loads) << Name;
    EXPECT_EQ(SF.Stores, SS.Stores) << Name;
    EXPECT_EQ(SF.CondBranches, SS.CondBranches) << Name;
    EXPECT_EQ(SF.TakenBranches, SS.TakenBranches) << Name;
    EXPECT_EQ(SF.Calls, SS.Calls) << Name;
    EXPECT_EQ(SF.Returns, SS.Returns) << Name;
    EXPECT_EQ(SF.Syscalls, SS.Syscalls) << Name;
    EXPECT_EQ(SF.UnalignedAccesses, SS.UnalignedAccesses) << Name;
    for (size_t Op = 0; Op < SF.PerOpcode.size(); ++Op)
      EXPECT_EQ(SF.PerOpcode[Op], SS.PerOpcode[Op])
          << Name << " opcode " << Op;
    EXPECT_EQ(MF.loopPerf().FastEntries, 1u) << Name;
    EXPECT_EQ(MS.loopPerf().SlowEntries, 1u) << Name;
  }
}

TEST(FastLoop, ArmedHookForcesCheckedLoop) {
  // A pending pre-inst hook makes the fast loop illegal; the dispatcher
  // must take the checked loop so the hook fires at the exact count.
  std::unique_ptr<Machine> M = makeAsmMachine(
      "lconst t0, 5\n"
      "loop:   subq t0, #1, t0\n"
      "        bne t0, loop\n halt\n");
  uint64_t SeenAt = ~uint64_t(0);
  M->addPreInstHook(4, [&](Machine &Mach) {
    SeenAt = Mach.stats().Instructions;
  });
  RunResult R = M->run(1'000'000);
  ASSERT_EQ(R.Status, RunStatus::Halted) << R.FaultMessage;
  EXPECT_EQ(SeenAt, 4u);
  EXPECT_EQ(M->loopPerf().FastEntries, 0u);
  EXPECT_GE(M->loopPerf().SlowEntries, 1u);
}

TEST(FastLoop, FuelExhaustionCommitsBatchedStats) {
  // Stop mid-run on the fast path: the batched counters must be flushed
  // into Stats at the FuelExhausted exit.
  std::unique_ptr<Machine> M = makeAsmMachine(
      "loop:   addq t0, #1, t0\n"
      "        br loop\n");
  RunResult R = M->run(100);
  ASSERT_EQ(R.Status, RunStatus::FuelExhausted);
  EXPECT_EQ(M->stats().Instructions, 100u);
}
