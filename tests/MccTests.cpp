//===- tests/MccTests.cpp - Mini-C compiler golden tests ------------------===//
//
// Each case compiles a mini-C program with the full pipeline (mcc ->
// assembler -> linker -> simulator) and checks its output — these are the
// deepest integration tests of the substrate below ATOM.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "mcc/Compiler.h"

using namespace atom;
using namespace atom::test;

namespace {

struct GoldenCase {
  const char *Name;
  const char *Source;
  const char *Expected;
};

class MccGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(MccGolden, CompilesAndRuns) {
  EXPECT_EQ(compileAndRun(GetParam().Source), GetParam().Expected);
}

const GoldenCase Cases[] = {
    {"return0", "int main() { return 0; }", ""},

    {"arith", R"(
int main() {
  long a = 7;
  long b = 3;
  printf("%ld %ld %ld %ld %ld\n", a + b, a - b, a * b, a / b, a % b);
  return 0;
})",
     "10 4 21 2 1\n"},

    {"negatives", R"(
int main() {
  long a = -17;
  printf("%ld %ld %ld %ld\n", a / 5, a % 5, -a, a * -2);
  return 0;
})",
     "-3 -2 17 34\n"},

    {"intWrap", R"(
int main() {
  int h = 2147483647;
  h = h + 1;                      // 32-bit wrap
  int m = 1000000;
  int p = m * m;                  // wraps in 32 bits
  printf("%ld %ld\n", (long)h, (long)p);
  return 0;
})",
     "-2147483648 -727379968\n"},

    {"charOps", R"(
int main() {
  char c = 'A';
  c = (char)(c + 2);
  char big = (char)300;           // truncates to 44
  printf("%c %ld\n", c, (long)big);
  return 0;
})",
     "C 44\n"},

    {"shifts", R"(
int main() {
  long v = 1;
  printf("%ld %ld %ld\n", v << 40, (100 >> 2), -16 >> 2);
  return 0;
})",
     "1099511627776 25 -4\n"},

    {"bitwise", R"(
int main() {
  printf("%ld %ld %ld %ld\n", 12 & 10, 12 | 3, 12 ^ 10, ~(long)0);
  return 0;
})",
     "8 15 6 -1\n"},

    {"compare", R"(
int main() {
  printf("%ld%ld%ld%ld%ld%ld\n", (long)(1 < 2), (long)(2 <= 1),
         (long)(3 > 2), (long)(2 >= 3), (long)(5 == 5), (long)(5 != 5));
  return 0;
})",
     "101010\n"},

    {"shortCircuit", R"(
long calls;
long bump(long v) { calls = calls + 1; return v; }
int main() {
  long a = bump(0) && bump(1);
  long b = bump(1) || bump(1);
  printf("%ld %ld %ld\n", a, b, calls);
  return 0;
})",
     "0 1 2\n"},

    {"ternary", R"(
int main() {
  long x = 5;
  printf("%ld %ld\n", x > 3 ? 111 : 222, x < 3 ? 111 : 222);
  return 0;
})",
     "111 222\n"},

    {"whileLoop", R"(
int main() {
  long i = 0;
  long sum = 0;
  while (i < 10) {
    sum = sum + i;
    i = i + 1;
  }
  printf("%ld\n", sum);
  return 0;
})",
     "45\n"},

    {"doWhile", R"(
int main() {
  long i = 10;
  long n = 0;
  do {
    n = n + 1;
    i = i - 3;
  } while (i > 0);
  printf("%ld %ld\n", n, i);
  return 0;
})",
     "4 -2\n"},

    {"breakContinue", R"(
int main() {
  long sum = 0;
  long i;
  for (i = 0; i < 100; i = i + 1) {
    if (i % 2 == 0)
      continue;
    if (i > 10)
      break;
    sum = sum + i;
  }
  printf("%ld\n", sum);
  return 0;
})",
     "25\n"},

    {"incDec", R"(
int main() {
  long i = 5;
  long a = i++;
  long b = ++i;
  long c = i--;
  long d = --i;
  printf("%ld %ld %ld %ld %ld\n", a, b, c, d, i);
  return 0;
})",
     "5 7 7 5 5\n"},

    {"compoundAssign", R"(
int main() {
  long v = 10;
  v += 5;
  v -= 3;
  v *= 2;
  v /= 4;
  v %= 4;
  v <<= 3;
  v >>= 1;
  v |= 1;
  v &= 7;
  v ^= 2;
  printf("%ld\n", v);
  return 0;
})",
     "3\n"},

    {"pointers", R"(
int main() {
  long x = 42;
  long *p = &x;
  *p = *p + 1;
  long **pp = &p;
  **pp = **pp * 2;
  printf("%ld\n", x);
  return 0;
})",
     "86\n"},

    {"pointerArith", R"(
long arr[8];
int main() {
  long i;
  for (i = 0; i < 8; i = i + 1)
    arr[i] = i * i;
  long *p = arr;
  long *q = p + 5;
  printf("%ld %ld %ld\n", *q, *(q - 2), q - p);
  return 0;
})",
     "25 9 5\n"},

    {"arrays2d", R"(
long m[4][6];
int main() {
  long i;
  long j;
  for (i = 0; i < 4; i = i + 1)
    for (j = 0; j < 6; j = j + 1)
      m[i][j] = i * 10 + j;
  printf("%ld %ld %ld\n", m[0][0], m[2][3], m[3][5]);
  return 0;
})",
     "0 23 35\n"},

    {"localArray", R"(
int main() {
  long buf[16];
  long i;
  for (i = 0; i < 16; i = i + 1)
    buf[i] = i * 3;
  long sum = 0;
  for (i = 0; i < 16; i = i + 1)
    sum = sum + buf[i];
  printf("%ld\n", sum);
  return 0;
})",
     "360\n"},

    {"structs", R"(
struct point {
  long x;
  long y;
};
struct rect {
  struct point lo;
  struct point hi;
  int tag;
};
int main() {
  struct rect r;
  r.lo.x = 1;
  r.lo.y = 2;
  r.hi.x = 10;
  r.hi.y = 20;
  r.tag = 7;
  struct rect *p = &r;
  long area = (p->hi.x - p->lo.x) * (p->hi.y - p->lo.y);
  printf("%ld %ld\n", area, (long)p->tag);
  return 0;
})",
     "162 7\n"},

    {"structArray", R"(
struct kv {
  long key;
  char name[8];
};
struct kv table[4];
int main() {
  long i;
  for (i = 0; i < 4; i = i + 1) {
    table[i].key = i * 100;
    table[i].name[0] = (char)('a' + i);
    table[i].name[1] = 0;
  }
  printf("%ld %s %s\n", table[3].key, table[0].name, table[2].name);
  return 0;
})",
     "300 a c\n"},

    {"recursion", R"(
long fact(long n) {
  if (n <= 1)
    return 1;
  return n * fact(n - 1);
}
int main() {
  printf("%ld\n", fact(12));
  return 0;
})",
     "479001600\n"},

    {"mutualRecursion", R"(
long isOdd(long n);
long isEven(long n) {
  if (n == 0)
    return 1;
  return isOdd(n - 1);
}
long isOdd(long n) {
  if (n == 0)
    return 0;
  return isEven(n - 1);
}
int main() {
  printf("%ld %ld\n", isEven(10), isOdd(7));
  return 0;
})",
     "1 1\n"},

    {"manyArgs", R"(
long sum8(long a, long b, long c, long d, long e, long f, long g, long h) {
  return a + b + c + d + e + f + g + h;
}
int main() {
  printf("%ld\n", sum8(1, 2, 3, 4, 5, 6, 7, 8));
  return 0;
})",
     "36\n"},

    {"nestedCalls", R"(
long add(long a, long b) { return a + b; }
long mul(long a, long b) { return a * b; }
int main() {
  printf("%ld\n", add(mul(2, 3), add(mul(4, 5), mul(1, add(6, 7)))));
  return 0;
})",
     "39\n"},

    {"sizeofOp", R"(
struct s {
  char c;
  long l;
  int i;
};
int main() {
  printf("%ld %ld %ld %ld %ld\n", sizeof(char), sizeof(int), sizeof(long),
         sizeof(char *), sizeof(struct s));
  return 0;
})",
     "1 4 8 8 24\n"},

    {"globalsInit", R"(
long g1 = 42;
int g2 = -7;
char g3 = 'x';
long g4 = 3 * 7 + 1;
char *msg = "hello";
long uninit;
int main() {
  printf("%ld %ld %c %ld %s %ld\n", g1, (long)g2, g3, g4, msg, uninit);
  return 0;
})",
     "42 -7 x 22 hello 0\n"},

    {"stringOps", R"(
char dst[32];
int main() {
  strcpy(dst, "abc");
  printf("%ld %ld %ld\n", strlen(dst), strcmp(dst, "abc"),
         strcmp(dst, "abd") < 0 ? -1 : 1);
  return 0;
})",
     "3 0 -1\n"},

    {"mallocFree", R"(
int main() {
  long *p = (long *)malloc(10 * sizeof(long));
  long i;
  for (i = 0; i < 10; i = i + 1)
    p[i] = i;
  long sum = 0;
  for (i = 0; i < 10; i = i + 1)
    sum = sum + p[i];
  free((char *)p);
  long *q = (long *)malloc(10 * sizeof(long)); // reuses the freed block
  printf("%ld %ld\n", sum, (long)(p == q));
  return 0;
})",
     "45 1\n"},

    {"callocZero", R"(
int main() {
  long *p = (long *)calloc(8, sizeof(long));
  long sum = 0;
  long i;
  for (i = 0; i < 8; i = i + 1)
    sum = sum + p[i];
  printf("%ld\n", sum);
  return 0;
})",
     "0\n"},

    {"fileIo", R"(
int main() {
  long f = fopen("out.txt", "w");
  fprintf(f, "x=%ld\n", 99);
  fclose(f);
  puts("wrote");
  return 0;
})",
     "wrote\n"},

    {"printfFormats", R"(
int main() {
  printf("%d %u %x %lx %c %s %% %ld\n", 42, 7, 255, 4096, 'Z', "str", -5);
  return 0;
})",
     "42 7 ff 1000 Z str % -5\n"},

    {"atoiTest", R"(
int main() {
  printf("%ld %ld %ld\n", atoi("123"), atoi("-45"), atoi("0"));
  return 0;
})",
     "123 -45 0\n"},

    {"exitCall", R"(
int main() {
  puts("before");
  exit(0);
  puts("after");
  return 1;
})",
     "before\n"},

    {"unalignedPtr", R"(
char buf[64];
int main() {
  long *p = (long *)(buf + 3);
  *p = 0x1122334455667788;
  int *q = (int *)(buf + 3);
  printf("0x%lx\n", (long)*q & 0xffffffff);
  return 0;
})",
     "0x55667788\n"},

    {"castTruncate", R"(
int main() {
  long big = 0x123456789abcdef0;
  int low = (int)big;
  char byte = (char)big;
  printf("%ld %ld\n", (long)low, (long)byte);
  return 0;
})",
     "-1698898192 240\n"},

    {"commaDecls", R"(
long a = 1, b = 2, c;
int main() {
  c = a + b;
  printf("%ld\n", c);
  return 0;
})",
     "3\n"},

    {"deepExpr", R"(
int main() {
  long v = ((((1 + 2) * (3 + 4)) - ((5 - 6) * (7 + 8))) * 2 +
            (((9 + 10) * (11 - 12)) + ((13 * 14) - (15 + 16))));
  printf("%ld\n", v);
  return 0;
})",
     "204\n"},
};

INSTANTIATE_TEST_SUITE_P(Golden, MccGolden, ::testing::ValuesIn(Cases),
                         [](const ::testing::TestParamInfo<GoldenCase> &I) {
                           return I.param.Name;
                         });

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

struct ErrorCase {
  const char *Name;
  const char *Source;
  const char *MessageFragment;
};

class MccErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(MccErrors, Rejected) {
  DiagEngine Diags;
  obj::ObjectModule M;
  EXPECT_FALSE(mcc::compile(GetParam().Source, "bad", M, Diags));
  EXPECT_NE(Diags.str().find(GetParam().MessageFragment), std::string::npos)
      << "diagnostics were:\n"
      << Diags.str();
}

const ErrorCase ErrorCases[] = {
    {"undeclaredVar", "int main() { return x; }", "undeclared"},
    {"undeclaredFunc", "int main() { return nope(); }", "undeclared function"},
    {"badArgCount", "long f(long a) { return a; }\n"
                    "int main() { return (int)f(1, 2); }",
     "wrong number of arguments"},
    {"assignToRValue", "int main() { 3 = 4; return 0; }", "lvalue"},
    {"derefInt", "int main() { long x = 1; return (int)*x; }",
     "cannot dereference"},
    {"redefinedVar", "int main() { long a = 1; long a = 2; return 0; }",
     "redefinition"},
    {"redefinedFunc", "int main() { return 0; }\nint main() { return 1; }",
     "redefinition of function"},
    {"breakOutsideLoop", "int main() { break; return 0; }",
     "break outside"},
    {"unknownField", "struct s { long a; };\n"
                     "int main() { struct s v; v.b = 1; return 0; }",
     "no field"},
    {"voidReturnValue", "void f() { return 3; }\nint main() { return 0; }",
     "void function returns a value"},
    {"syntaxError", "int main() { long x = ; return 0; }",
     "expected expression"},
    {"unterminatedString", "int main() { puts(\"abc); return 0; }",
     "unterminated string"},
    {"largeFrame", "int main() { long big[8000]; return 0; }",
     "too large"},
    {"incompleteStruct", "int main() { struct s v; return 0; }",
     "incomplete type"},
};

INSTANTIATE_TEST_SUITE_P(Errors, MccErrors, ::testing::ValuesIn(ErrorCases),
                         [](const ::testing::TestParamInfo<ErrorCase> &I) {
                           return I.param.Name;
                         });

} // namespace

//===----------------------------------------------------------------------===//
// switch statements (lowered to compare chains)
//===----------------------------------------------------------------------===//

namespace {

TEST(MccSwitch, BasicDispatchAndDefault) {
  EXPECT_EQ(compileAndRun(R"(
long pick(long v) {
  switch (v) {
  case 1:
    return 100;
  case 2:
  case 3:
    return 200;
  case -4:
    return 300;
  default:
    return 999;
  }
}
int main() {
  printf("%ld %ld %ld %ld %ld\n", pick(1), pick(2), pick(3), pick(-4),
         pick(42));
  return 0;
})"),
            "100 200 200 300 999\n");
}

TEST(MccSwitch, FallthroughAndBreak) {
  EXPECT_EQ(compileAndRun(R"(
int main() {
  long sum = 0;
  long i;
  for (i = 0; i < 5; i = i + 1) {
    switch (i) {
    case 0:
      sum = sum + 1;
      // fall through
    case 1:
      sum = sum + 10;
      break;
    case 3:
      sum = sum + 100;
      break;
    }
  }
  printf("%ld\n", sum);
  return 0;
})"),
            "121\n"); // i=0: 1+10, i=1: 10, i=3: 100
}

TEST(MccSwitch, NoDefaultFallsPast) {
  EXPECT_EQ(compileAndRun(R"(
int main() {
  long r = 7;
  switch (99) {
  case 1:
    r = 1;
    break;
  }
  printf("%ld\n", r);
  return 0;
})"),
            "7\n");
}

TEST(MccSwitch, NestedInLoopWithCharLabels) {
  EXPECT_EQ(compileAndRun(R"(
int main() {
  char *s = "abcab";
  long a = 0;
  long b = 0;
  long other = 0;
  long i;
  for (i = 0; s[i]; i = i + 1) {
    switch ((long)s[i]) {
    case 'a':
      a = a + 1;
      break;
    case 'b':
      b = b + 1;
      break;
    default:
      other = other + 1;
      break;
    }
  }
  printf("%ld %ld %ld\n", a, b, other);
  return 0;
})"),
            "2 2 1\n");
}

TEST(MccSwitch, DuplicateCaseRejected) {
  DiagEngine Diags;
  obj::ObjectModule M;
  EXPECT_FALSE(mcc::compile(
      "int main() { switch (1) { case 2: break; case 2: break; } return 0; }",
      "bad", M, Diags));
  EXPECT_NE(Diags.str().find("duplicate case"), std::string::npos);
}

TEST(MccSwitch, BreakOutsideLoopOrSwitchStillRejected) {
  DiagEngine Diags;
  obj::ObjectModule M;
  EXPECT_FALSE(mcc::compile("int main() { break; return 0; }", "bad", M,
                            Diags));
  EXPECT_NE(Diags.str().find("break outside"), std::string::npos);
}

} // namespace
