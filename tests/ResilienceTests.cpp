//===- tests/ResilienceTests.cpp - Crash-proof atomd ----------------------===//
//
// The resilience layer of docs/RESILIENCE.md:
//
//  * support::Subprocess — spawn/capture/kill/wait-with-deadline plumbing;
//  * support::Backoff — capped jittered exponential retry delays;
//  * atomd::Breaker — the closed/open/half-open state machine, driven by
//    a fake clock;
//  * the daemon under --isolate — a deliberately crashing tool yields a
//    structured worker-crashed reply while concurrent requests stay
//    byte-identical to standalone atom, hung workers are deadline-killed,
//    consecutive crashes open the per-tool breaker, and kill -9 of the
//    whole daemon mid-work never corrupts the store across restarts.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "atomd/Breaker.h"
#include "atomd/Client.h"
#include "atomd/Daemon.h"
#include "atomd/Worker.h"
#include "obs/Json.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "support/Subprocess.h"
#include "tools/Tools.h"

#include <csignal>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>
#include <unistd.h>

using namespace atom;
using namespace atom::atomd;
using namespace atom::test;

namespace {

const char *AppA = R"(
int main() {
  long i;
  long sum = 0;
  for (i = 0; i < 40; i = i + 1)
    sum = sum + i;
  printf("sum %ld\n", sum);
  return 0;
}
)";

std::string atomdExe() { return std::string(ATOM_CLI_DIR) + "/atomd"; }

//===----------------------------------------------------------------------===//
// Subprocess
//===----------------------------------------------------------------------===//

std::string drainFd(int Fd) {
  std::string Out;
  char Buf[4096];
  for (;;) {
    ssize_t N = retryEintr([&] { return ::read(Fd, Buf, sizeof(Buf)); });
    if (N <= 0)
      return Out;
    Out.append(Buf, size_t(N));
  }
}

TEST(Subprocess, CapturesOutputAndExitCode) {
  Subprocess P;
  std::string Err;
  ASSERT_TRUE(P.spawn({{"/bin/sh", "-c", "echo chirp; exit 3"},
                       Subprocess::Io::Capture},
                      Err))
      << Err;
  std::string Out = drainFd(P.outputFd());
  ASSERT_TRUE(P.waitExit(-1));
  EXPECT_EQ(P.exitCode(), 3);
  EXPECT_EQ(P.termSignal(), 0);
  EXPECT_FALSE(P.exitedCleanly());
  EXPECT_NE(Out.find("chirp"), std::string::npos);
}

TEST(Subprocess, KillIsReportedAsSignal) {
  Subprocess P;
  std::string Err;
  // exec, not fork: this sh forks simple commands, and an orphaned sleep
  // would hold the test's inherited stdout open long after the kill.
  ASSERT_TRUE(P.spawn({{"/bin/sh", "-c", "exec sleep 30"},
                       Subprocess::Io::Inherit},
                      Err))
      << Err;
  EXPECT_TRUE(P.alive());
  P.kill();
  ASSERT_TRUE(P.waitExit(5000));
  EXPECT_EQ(P.termSignal(), SIGKILL);
  EXPECT_FALSE(P.exitedCleanly());
  EXPECT_FALSE(P.alive());
}

TEST(Subprocess, WaitExitHonorsDeadline) {
  Subprocess P;
  std::string Err;
  ASSERT_TRUE(P.spawn({{"/bin/sh", "-c", "exec sleep 30"},
                       Subprocess::Io::Inherit},
                      Err))
      << Err;
  Stopwatch W;
  EXPECT_FALSE(P.waitExit(60)); // times out, child still running
  EXPECT_GE(W.seconds(), 0.05);
  EXPECT_TRUE(P.alive());
  P.kill();
  EXPECT_TRUE(P.waitExit(-1));
}

TEST(Subprocess, ExecFailureSurfacesAs127) {
  Subprocess P;
  std::string Err;
  ASSERT_TRUE(P.spawn({{"/no/such/binary-atom-test"},
                       Subprocess::Io::Inherit},
                      Err))
      << Err;
  ASSERT_TRUE(P.waitExit(5000));
  EXPECT_EQ(P.exitCode(), 127);
}

TEST(Subprocess, ChannelRoundTripsAndEofShutsChildDown) {
  // The worker-protocol shape: a bidirectional channel on child fd 3,
  // with the parent's closeChannel() as the graceful-shutdown signal.
  Subprocess P;
  std::string Err;
  ASSERT_TRUE(P.spawn({{"/bin/sh", "-c", "cat <&3 >&3"},
                       Subprocess::Io::Channel},
                      Err))
      << Err;
  int Fd = P.channelFd();
  ASSERT_GE(Fd, 0);
  const char Msg[] = "ping-over-channel";
  ASSERT_EQ(retryEintr([&] { return ::write(Fd, Msg, sizeof(Msg)); }),
            ssize_t(sizeof(Msg)));
  char Buf[64] = {};
  ASSERT_EQ(retryEintr([&] { return ::read(Fd, Buf, sizeof(Buf)); }),
            ssize_t(sizeof(Msg)));
  EXPECT_STREQ(Buf, Msg);
  P.closeChannel();
  ASSERT_TRUE(P.waitExit(5000)); // EOF ends cat; no kill needed
  EXPECT_TRUE(P.exitedCleanly());
}

//===----------------------------------------------------------------------===//
// Backoff
//===----------------------------------------------------------------------===//

TEST(Backoff, DelaysAreBoundedAndSeedDeterministic) {
  Backoff A(5, 250, 42), B(5, 250, 42), C(5, 250, 43);
  bool Diverged = false;
  for (unsigned At = 0; At < 16; ++At) {
    uint64_t DA = A.delayMs(At), DB = B.delayMs(At);
    EXPECT_EQ(DA, DB) << At;        // same seed, same schedule
    EXPECT_GE(DA, 1u);              // always sleeps at least a tick
    EXPECT_LE(DA, 250u);            // never past the cap
    uint64_t Target = std::min<uint64_t>(250, 5ull << std::min(At, 31u));
    EXPECT_LE(DA, Target) << At;    // jitter stays inside the window
    Diverged |= C.delayMs(At) != DA;
  }
  EXPECT_TRUE(Diverged); // a different seed decorrelates
}

TEST(Backoff, AdviseFloorsTheWindow) {
  // The server's retry_after_ms is a hard floor on the delay — a client
  // must never re-arrive before the daemon said to — while the cap still
  // wins over absurd advice. With advice above the exponential window the
  // delay is exact; below it, jitter fills [advice, window].
  Backoff B(5, 250, 7);
  for (int I = 0; I < 32; ++I) {
    EXPECT_EQ(B.delayMs(0, 100), 100u);    // floor == target: no jitter room
    EXPECT_EQ(B.delayMs(0, 100000), 250u); // capped advice: exactly the cap
    uint64_t D = B.delayMs(3, 20);         // window is [20, 5 << 3]
    EXPECT_GE(D, 20u);
    EXPECT_LE(D, 40u);
  }
}

//===----------------------------------------------------------------------===//
// WorkerPool failure classification (fake workers standing in for atomd
// __worker, so the protocol-violation and hung-channel paths are exact)
//===----------------------------------------------------------------------===//

TEST(WorkerPool, GarbageFrameFromLiveWorkerIsReapedNotHung) {
  // A worker that violates the protocol while staying alive (bad frame
  // magic, then sleeps) must be classified as crashed and reaped via the
  // SIGKILL escalation. An unbounded reap here used to wedge the pool
  // thread forever and deadlock ~WorkerPool.
  WorkerPoolOptions O;
  O.WorkerArgv = {"/bin/sh", "-c",
                  "printf XXXXXXXXXXXXXXXX >&3; exec sleep 30"};
  O.NumWorkers = 1;
  WorkerPool P(O);
  Frame Req;
  Req.Json = "{}";
  Stopwatch W;
  WorkerPool::Result R = P.execute(Req, /*DeadlineMs=*/-1);
  EXPECT_EQ(R.Out, WorkerPool::Outcome::Crashed);
  EXPECT_EQ(R.TermSignal, SIGKILL); // the live violator was escalated
  EXPECT_LT(W.seconds(), 10.0);
  EXPECT_EQ(P.stats().Crashes, 1u);
}

TEST(WorkerPool, DeadlineCoversTheRequestSend) {
  // A worker that never drains its channel must not park the pool thread
  // in a blocking send: the request write shares the deadline budget with
  // the reply read, and expiry kills the worker either way.
  WorkerPoolOptions O;
  O.WorkerArgv = {"/bin/sh", "-c", "exec sleep 30"};
  O.NumWorkers = 1;
  WorkerPool P(O);
  Frame Req;
  Req.Json = "{}";
  Req.Bin.assign(32u << 20, 0xAB); // far beyond any socketpair buffer
  Stopwatch W;
  WorkerPool::Result R = P.execute(Req, /*DeadlineMs=*/400);
  EXPECT_EQ(R.Out, WorkerPool::Outcome::DeadlineKilled);
  EXPECT_LT(W.seconds(), 10.0);
  EXPECT_EQ(P.stats().DeadlineKills, 1u);
}

//===----------------------------------------------------------------------===//
// Breaker
//===----------------------------------------------------------------------===//

struct FakeClock {
  uint64_t Now = 1000;
  std::function<uint64_t()> fn() {
    return [this] { return Now; };
  }
};

TEST(Breaker, OpensAfterThresholdConsecutiveFailures) {
  FakeClock Clk;
  Breaker B({3, 500}, Clk.fn());
  EXPECT_EQ(B.state("prof"), Breaker::State::Closed);
  for (int I = 0; I < 3; ++I) {
    Breaker::Decision D = B.admit("prof");
    EXPECT_TRUE(D.Allow);
    B.recordFailure("prof");
  }
  EXPECT_EQ(B.state("prof"), Breaker::State::Open);

  Breaker::Decision D = B.admit("prof");
  EXPECT_FALSE(D.Allow);
  EXPECT_GT(D.RetryAfterMs, 0u);
  EXPECT_LE(D.RetryAfterMs, 500u);
  EXPECT_EQ(B.state("other"), Breaker::State::Closed); // keys independent
  EXPECT_TRUE(B.admit("other").Allow);
}

TEST(Breaker, HalfOpenProbeClosesOnSuccess) {
  FakeClock Clk;
  Breaker B({2, 500}, Clk.fn());
  for (int I = 0; I < 2; ++I) {
    B.admit("t");
    B.recordFailure("t");
  }
  EXPECT_FALSE(B.admit("t").Allow);

  Clk.Now += 501; // cooldown elapses: exactly one probe is admitted
  Breaker::Decision D = B.admit("t");
  EXPECT_TRUE(D.Allow);
  EXPECT_TRUE(D.Probe);
  EXPECT_EQ(B.state("t"), Breaker::State::HalfOpen);
  EXPECT_FALSE(B.admit("t").Allow); // second request waits on the probe

  B.recordSuccess("t");
  EXPECT_EQ(B.state("t"), Breaker::State::Closed);
  EXPECT_TRUE(B.admit("t").Allow);
  EXPECT_TRUE(B.snapshot().empty()); // healthy keys carry no state
}

TEST(Breaker, FailedProbeReopensImmediately) {
  FakeClock Clk;
  Breaker B({2, 500}, Clk.fn());
  for (int I = 0; I < 2; ++I) {
    B.admit("t");
    B.recordFailure("t");
  }
  Clk.Now += 501;
  ASSERT_TRUE(B.admit("t").Probe);
  B.recordFailure("t"); // one failed probe re-opens — no threshold count
  EXPECT_EQ(B.state("t"), Breaker::State::Open);
  EXPECT_FALSE(B.admit("t").Allow);
  Clk.Now += 501;
  EXPECT_TRUE(B.admit("t").Probe); // and the cycle repeats
}

TEST(Breaker, ReleaseProbeReturnsTheSlot) {
  // A probe that is admitted by the breaker but then rejected further down
  // the admission path (quota, queue) must hand the half-open slot back,
  // or the breaker would wait forever on a request that never ran.
  FakeClock Clk;
  Breaker B({1, 500}, Clk.fn());
  B.admit("t");
  B.recordFailure("t");
  Clk.Now += 501;
  ASSERT_TRUE(B.admit("t").Probe);
  EXPECT_FALSE(B.admit("t").Allow);
  B.releaseProbe("t");
  EXPECT_TRUE(B.admit("t").Probe); // the next request probes instead
}

TEST(Breaker, SuccessResetsTheConsecutiveCount) {
  FakeClock Clk;
  Breaker B({3, 500}, Clk.fn());
  for (int Round = 0; Round < 4; ++Round) {
    B.admit("t");
    B.recordFailure("t");
    B.admit("t");
    B.recordFailure("t");
    B.admit("t");
    B.recordSuccess("t"); // never three in a row
  }
  EXPECT_EQ(B.state("t"), Breaker::State::Closed);
}

//===----------------------------------------------------------------------===//
// Thread names in observability output
//===----------------------------------------------------------------------===//

TEST(ThreadNames, StampEventsAndSpans) {
  obs::Registry &Reg = obs::Registry::global();
  Reg.setEnabled(true);
  Reg.reset();
  setCurrentThreadName("resil-test");
  Reg.emitEvent(obs::Event("stuck-worker").str("tool", "prof"));
  { obs::Span S("phase"); }
  ASSERT_EQ(Reg.events().size(), 1u);
  EXPECT_NE(Reg.events()[0].jsonLine().find("\"thread\":\"resil-test\""),
            std::string::npos);
  EXPECT_NE(Reg.toJson().find("\"thread\":\"resil-test\""),
            std::string::npos);
  setCurrentThreadName("");
  Reg.reset();
  Reg.setEnabled(false);
}

//===----------------------------------------------------------------------===//
// Daemon under --isolate
//===----------------------------------------------------------------------===//

class IsolateFixture : public ::testing::Test {
protected:
  void SetUp() override {
    // The deliberately misbehaving __crash/__hang tools are env-gated so
    // no production daemon can ever be asked to run them by accident.
    ::setenv("ATOM_ENABLE_CRASH_TOOL", "1", 1);
    Name = ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Dir = ::testing::TempDir() + "atomresil-" + Name;
    std::string Cmd = "rm -rf '" + Dir + "' && mkdir -p '" + Dir + "'";
    ASSERT_EQ(std::system(Cmd.c_str()), 0);
  }
  void TearDown() override { ::unsetenv("ATOM_ENABLE_CRASH_TOOL"); }

  std::string socketPath() const { return Dir + "/d.sock"; }
  std::string storeDir() const { return Dir + "/store"; }

  DaemonOptions isolateOptions() const {
    DaemonOptions O;
    O.SocketPath = socketPath();
    O.Isolate = true;
    O.WorkerExe = atomdExe();
    O.Jobs = 2;
    return O;
  }

  /// One instrument round-trip through \p Cl (with backpressure retries).
  void instrumentVia(Client &Cl, const std::string &ToolName,
                     const std::vector<uint8_t> &AppBytes, Reply &R,
                     Frame &F, uint64_t TimeoutMs = 0) {
    std::string Err;
    ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(), ToolName,
                                              "resil", AtomOptions(),
                                              TimeoutMs),
                        AppBytes, R, F, Err))
        << Err;
  }

  std::string Name, Dir;
};

TEST_F(IsolateFixture, CrashIsStructuredAndConcurrentRequestsUnharmed) {
  DaemonOptions O = isolateOptions();
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  std::vector<uint8_t> Bin = App.serialize();
  std::vector<uint8_t> Local =
      instrumentOrDie(App, *tools::findTool("prof")).Exe.serialize();

  // Well-formed traffic on another connection, concurrent with the crash.
  std::atomic<int> GoodFailures{0};
  std::thread Good([&] {
    Client Cl;
    std::string CErr;
    if (!Cl.connect(socketPath(), CErr)) {
      ++GoodFailures;
      return;
    }
    for (int I = 0; I < 4; ++I) {
      Reply R;
      Frame F;
      if (!Cl.call(makeInstrumentRequest(Cl.nextId(), "prof", "good",
                                         AtomOptions()),
                   Bin, R, F, CErr) ||
          !R.Ok || F.Bin != Local)
        ++GoodFailures;
    }
  });

  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  instrumentVia(Cl, "__crash", Bin, R, F);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Error, "worker-crashed");
  // Plain builds report the SIGSEGV; sanitizer builds intercept it and
  // exit non-zero. Either way the failure is attributed, never silent.
  EXPECT_TRUE(R.Doc.u64("signal") != 0 ||
              R.Doc.find("exit") != nullptr);

  Good.join();
  EXPECT_EQ(GoodFailures.load(), 0);

  // The daemon (and its cache) survived: same connection, next request.
  instrumentVia(Cl, "prof", Bin, R, F);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(F.Bin, Local);

  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "status"), {}, R, F,
                      Err))
      << Err;
  const obs::json::Value *WP = R.Doc.find("worker-pool");
  ASSERT_NE(WP, nullptr);
  EXPECT_GE(WP->u64("crashes"), 1u);
  EXPECT_GE(WP->u64("spawns"), 2u); // the crashed worker was replaced
}

TEST_F(IsolateFixture, ClientTimeoutKillsHungWorker) {
  DaemonOptions O = isolateOptions();
  O.Jobs = 1;
  O.BreakerThreshold = 100; // keep the breaker out of this test
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  std::vector<uint8_t> Bin = App.serialize();
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  instrumentVia(Cl, "__hang", Bin, R, F, /*TimeoutMs=*/400);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Error, "deadline-exceeded");
  EXPECT_EQ(R.Doc.u64("deadline_ms"), 400u);

  // The single worker was hung and killed; a fresh one serves on.
  std::vector<uint8_t> Local =
      instrumentOrDie(App, *tools::findTool("prof")).Exe.serialize();
  instrumentVia(Cl, "prof", Bin, R, F);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(F.Bin, Local);

  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "status"), {}, R, F,
                      Err))
      << Err;
  const obs::json::Value *WP = R.Doc.find("worker-pool");
  ASSERT_NE(WP, nullptr);
  EXPECT_EQ(WP->u64("deadline-kills"), 1u);
}

TEST_F(IsolateFixture, ServerDeadlineCapsEveryRequest) {
  DaemonOptions O = isolateOptions();
  O.Jobs = 1;
  O.DeadlineMs = 400;
  O.BreakerThreshold = 100;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  instrumentVia(Cl, "__hang", App.serialize(), R, F); // no client timeout
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Error, "deadline-exceeded");
  EXPECT_EQ(R.Doc.u64("deadline_ms"), 400u);
}

TEST_F(IsolateFixture, BreakerFailsFastAfterConsecutiveCrashes) {
  DaemonOptions O = isolateOptions();
  O.Jobs = 1;
  O.BreakerThreshold = 2;
  O.BreakerCooldownMs = 300;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  std::vector<uint8_t> Bin = App.serialize();
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  Reply R;
  Frame F;
  for (int I = 0; I < 2; ++I) {
    instrumentVia(Cl, "__crash", Bin, R, F);
    EXPECT_EQ(R.Error, "worker-crashed") << I;
  }

  // Two consecutive crashes opened __crash's breaker: the next request
  // fails fast — no worker burned — with retry advice.
  instrumentVia(Cl, "__crash", Bin, R, F);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Error, "breaker-open");
  EXPECT_GT(R.Doc.u64("retry_after_ms"), 0u);

  // Other tools are unaffected.
  std::vector<uint8_t> Local =
      instrumentOrDie(App, *tools::findTool("prof")).Exe.serialize();
  instrumentVia(Cl, "prof", Bin, R, F);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(F.Bin, Local);

  ASSERT_TRUE(Cl.call(makeSimpleRequest(Cl.nextId(), "status"), {}, R, F,
                      Err))
      << Err;
  const obs::json::Value *Brk = R.Doc.find("breakers");
  ASSERT_NE(Brk, nullptr);
  const obs::json::Value *Key = Brk->find("__crash");
  ASSERT_NE(Key, nullptr);
  EXPECT_EQ(Key->str("state"), "open");

  // After the cooldown exactly one probe is admitted and really runs (it
  // crashes again here, so the breaker re-opens for another round).
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  instrumentVia(Cl, "__crash", Bin, R, F);
  EXPECT_EQ(R.Error, "worker-crashed");
  instrumentVia(Cl, "__crash", Bin, R, F);
  EXPECT_EQ(R.Error, "breaker-open");
}

TEST_F(IsolateFixture, CrashedWorkerLeavesAParseablePostmortem) {
  // A worker SIGSEGVing mid-request must not just be attributed — the
  // structured error names a flight-recorder postmortem on disk that
  // parses and carries the request's trace id (docs/OBSERVABILITY.md).
  DaemonOptions O = isolateOptions();
  O.StoreDir = storeDir();
  O.Jobs = 1;
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  obs::TraceContext Ctx = obs::TraceContext::mint();
  Reply R;
  Frame F;
  ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(), "__crash",
                                            "resil", AtomOptions(), 0,
                                            Ctx),
                      App.serialize(), R, F, Err))
      << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Error, "worker-crashed");
  EXPECT_EQ(R.TraceId, Ctx.traceIdHex());

  if (destructiveChaosActive())
    return; // injected EIO/ENOSPC may legitimately lose the dump

  ASSERT_FALSE(R.Postmortem.empty());
  std::ifstream In(R.Postmortem);
  ASSERT_TRUE(In.good()) << R.Postmortem;
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  obs::json::Value V;
  std::string PErr;
  ASSERT_TRUE(obs::json::parse(Text, V, PErr)) << PErr << "\n" << Text;
  EXPECT_EQ(V.str("postmortem"), "flight-recorder");
  EXPECT_EQ(V.str("trace_id"), Ctx.traceIdHex());
  const obs::json::Value *Recs = V.find("records");
  ASSERT_NE(Recs, nullptr);
  EXPECT_FALSE(Recs->Items.empty());
}

TEST_F(IsolateFixture, WorkerPathStaysByteIdenticalColdAndWarm) {
  DaemonOptions O = isolateOptions();
  O.StoreDir = storeDir();
  Daemon D(O);
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  obj::Executable App = buildOrDie(AppA);
  std::vector<uint8_t> Bin = App.serialize();
  Client Cl;
  ASSERT_TRUE(Cl.connect(socketPath(), Err)) << Err;
  for (const char *ToolName : {"prof", "malloc"}) {
    std::vector<uint8_t> Local =
        instrumentOrDie(App, *tools::findTool(ToolName)).Exe.serialize();
    for (int Round = 0; Round < 2; ++Round) { // cold, then warm
      Reply R;
      Frame F;
      instrumentVia(Cl, ToolName, Bin, R, F);
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_EQ(F.Bin, Local) << ToolName << " round " << Round;
    }
  }
}

TEST_F(IsolateFixture, Kill9MidWorkNeverCorruptsTheStoreAcrossRestarts) {
  // The full crash-recovery loop over the real CLI binary: a daemon
  // kill -9'd mid-request leaves at worst torn tmp files; every restart
  // over the same store must keep serving byte-identical results.
  obj::Executable App = buildOrDie(AppA);
  std::vector<uint8_t> Bin = App.serialize();
  const char *ToolNames[3] = {"prof", "malloc", "dyninst"};
  std::vector<uint8_t> Local[3];
  for (int I = 0; I < 3; ++I)
    Local[I] =
        instrumentOrDie(App, *tools::findTool(ToolNames[I])).Exe.serialize();

  for (int Iter = 0; Iter < 3; ++Iter) {
    std::string Sock = Dir + "/d" + std::to_string(Iter) + ".sock";
    Subprocess Daemon;
    std::string Err;
    ASSERT_TRUE(Daemon.spawn({{atomdExe(), "serve", "--socket", Sock,
                               "--store", storeDir(), "--jobs", "2"},
                              Subprocess::Io::Capture},
                             Err))
        << Err;

    Client Cl;
    bool Connected = false;
    for (int Tries = 0; Tries < 200 && !Connected; ++Tries) {
      Connected = Cl.connect(Sock, Err);
      if (!Connected)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_TRUE(Connected) << Err;

    // A fresh tool each iteration forces new pipeline builds and new
    // store writes on every restart.
    Reply R;
    Frame F;
    ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(),
                                              ToolNames[Iter], "resil",
                                              AtomOptions()),
                        Bin, R, F, Err))
        << Err;
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(F.Bin, Local[Iter]) << "iter " << Iter;

    if (Iter > 0) {
      // Whatever the previous kill tore, yesterday's tool still serves
      // byte-identical (rebuilt if its entries were lost mid-write).
      ASSERT_TRUE(Cl.call(makeInstrumentRequest(Cl.nextId(),
                                                ToolNames[Iter - 1],
                                                "resil", AtomOptions()),
                          Bin, R, F, Err))
          << Err;
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_EQ(F.Bin, Local[Iter - 1]) << "iter " << Iter;
    }

    // Fire one more request and kill the daemon while it is (likely)
    // mid-pipeline or mid-store-write — then SIGKILL, no goodbyes.
    ASSERT_TRUE(Cl.send(makeInstrumentRequest(Cl.nextId(), "trace",
                                              "resil", AtomOptions()),
                        Bin, Err))
        << Err;
    std::this_thread::sleep_for(std::chrono::milliseconds(10 * Iter));
    Daemon.kill();
    ASSERT_TRUE(Daemon.waitExit(5000));
    EXPECT_EQ(Daemon.termSignal(), SIGKILL);
  }
}

} // namespace
