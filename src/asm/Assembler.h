//===- asm/Assembler.h - Two-pass assembler ---------------------*- C++ -*-===//
//
// Assembles AXP64-lite assembly text into a relocatable ObjectModule.
//
// Syntax summary (one statement per line, ';' or '#' comments):
//   label:            defines a symbol at the current section offset
//   .text/.data/.bss  section switch
//   .globl name       export a symbol
//   .ent name/.end name   bracket a procedure (sets IsProc and Size)
//   .align n          align to 2^n bytes
//   .quad/.long/.word/.byte expr,...   data emission (symbols allowed in
//                      .quad, producing Abs64 relocations)
//   .asciiz "s" / .ascii "s" / .space n
//   ldq ra, disp(rb)  memory format ('(rb)' optional => zero register)
//   addq ra, rb, rc   operate format; 'addq ra, #imm, rc' for literals
//   beq ra, target    branch format (symbol or numeric displacement)
//   br/bsr [ra,] target
//   jmp/jsr [ra,] (rb) ; ret [(rb)]
//   laddr rd, sym[+off]  pseudo: ldah+lda with Hi16/Lo16 relocations
//   lconst rd, imm64     pseudo: minimal constant-synthesis sequence
//   mov rs, rd / clr rd / nop   pseudo-operations
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ASM_ASSEMBLER_H
#define ATOM_ASM_ASSEMBLER_H

#include "obj/ObjectModule.h"
#include "support/Support.h"

namespace atom {
namespace assembler {

/// Assembles \p Source into \p Out. Returns false (with diagnostics in
/// \p Diags) on any error.
bool assemble(const std::string &Source, const std::string &ModuleName,
              obj::ObjectModule &Out, DiagEngine &Diags);

} // namespace assembler
} // namespace atom

#endif // ATOM_ASM_ASSEMBLER_H
