//===- asm/Assembler.cpp --------------------------------------------------===//

#include "asm/Assembler.h"

#include "isa/ConstantSynth.h"
#include "isa/Isa.h"

#include <cctype>
#include <map>

using namespace atom;
using namespace atom::assembler;
using namespace atom::isa;
using namespace atom::obj;

namespace {

/// A parsed operand.
struct Operand {
  enum Kind { Register, Immediate, SymbolRef, MemRef, RegIndirect, Literal };
  Kind K = Immediate;
  unsigned Reg = RegZero; ///< Register / MemRef base / RegIndirect target.
  int64_t Imm = 0;        ///< Immediate / MemRef displacement / Literal.
  std::string Sym;        ///< SymbolRef name.
  int64_t SymAddend = 0;  ///< SymbolRef addend.
};

class Assembler {
public:
  Assembler(const std::string &ModuleName, DiagEngine &Diags)
      : Diags(Diags) {
    M.Name = ModuleName;
  }

  bool run(const std::string &Source, ObjectModule &Out);

private:
  enum class Section { Text, Data, Bss };

  void error(const std::string &Msg) { Diags.error(Line, Msg); Failed = true; }

  // --- symbol management -------------------------------------------------
  unsigned symbolIndex(const std::string &Name) {
    auto It = SymIdx.find(Name);
    if (It != SymIdx.end())
      return It->second;
    Symbol S;
    S.Name = Name;
    S.Section = SymSection::Undefined;
    M.Symbols.push_back(S);
    unsigned Idx = unsigned(M.Symbols.size() - 1);
    SymIdx.emplace(Name, Idx);
    return Idx;
  }

  void defineLabel(const std::string &Name) {
    unsigned Idx = symbolIndex(Name);
    Symbol &S = M.Symbols[Idx];
    if (S.Section != SymSection::Undefined) {
      error("symbol '" + Name + "' redefined");
      return;
    }
    switch (Cur) {
    case Section::Text:
      S.Section = SymSection::Text;
      S.Value = M.Text.size();
      break;
    case Section::Data:
      S.Section = SymSection::Data;
      S.Value = M.Data.size();
      break;
    case Section::Bss:
      S.Section = SymSection::Bss;
      S.Value = M.BssSize;
      break;
    }
  }

  // --- emission ----------------------------------------------------------
  void emitInst(const Inst &I) {
    uint64_t Off = M.Text.size();
    M.Text.resize(Off + 4);
    write32(M.Text, Off, encode(I));
  }

  void addTextReloc(RelocKind Kind, const std::string &Sym, int64_t Addend,
                    uint64_t Offset) {
    M.TextRelocs.push_back({Kind, Offset, symbolIndex(Sym), Addend});
  }

  // --- parsing helpers ---------------------------------------------------
  static std::string trim(const std::string &S) {
    size_t B = S.find_first_not_of(" \t");
    if (B == std::string::npos)
      return "";
    size_t E = S.find_last_not_of(" \t");
    return S.substr(B, E - B + 1);
  }

  bool parseInt(const std::string &Tok, int64_t &V) {
    std::string T = trim(Tok);
    if (T.empty())
      return false;
    if (T.size() >= 3 && T[0] == '\'' && T.back() == '\'') {
      std::string Body = T.substr(1, T.size() - 2);
      if (Body.size() == 1) {
        V = uint8_t(Body[0]);
        return true;
      }
      if (Body.size() == 2 && Body[0] == '\\') {
        switch (Body[1]) {
        case 'n': V = '\n'; return true;
        case 't': V = '\t'; return true;
        case '0': V = 0; return true;
        case '\\': V = '\\'; return true;
        case '\'': V = '\''; return true;
        default: return false;
        }
      }
      return false;
    }
    bool Neg = false;
    size_t I = 0;
    if (T[0] == '-') {
      Neg = true;
      I = 1;
    } else if (T[0] == '+') {
      I = 1;
    }
    if (I >= T.size())
      return false;
    uint64_t U = 0;
    if (T.size() > I + 2 && T[I] == '0' && (T[I + 1] == 'x' || T[I + 1] == 'X')) {
      for (size_t J = I + 2; J < T.size(); ++J) {
        char C = char(std::tolower(T[J]));
        unsigned D;
        if (C >= '0' && C <= '9')
          D = unsigned(C - '0');
        else if (C >= 'a' && C <= 'f')
          D = unsigned(C - 'a' + 10);
        else
          return false;
        U = U * 16 + D;
      }
    } else {
      for (size_t J = I; J < T.size(); ++J) {
        if (!std::isdigit(uint8_t(T[J])))
          return false;
        U = U * 10 + unsigned(T[J] - '0');
      }
    }
    V = Neg ? -int64_t(U) : int64_t(U);
    return true;
  }

  static bool isSymbolChar(char C) {
    return std::isalnum(uint8_t(C)) || C == '_' || C == '.' || C == '$' ||
           C == '@';
  }

  static bool isSymbolName(const std::string &T) {
    if (T.empty() || std::isdigit(uint8_t(T[0])) || T[0] == '-' || T[0] == '+')
      return false;
    for (char C : T)
      if (!isSymbolChar(C))
        return false;
    return true;
  }

  /// Parses "sym", "sym+N", "sym-N".
  bool parseSymExpr(const std::string &Tok, std::string &Sym, int64_t &Add) {
    std::string T = trim(Tok);
    size_t P = T.find_first_of("+-", 1);
    std::string Base = P == std::string::npos ? T : trim(T.substr(0, P));
    if (!isSymbolName(Base))
      return false;
    Sym = Base;
    Add = 0;
    if (P == std::string::npos)
      return true;
    int64_t V;
    if (!parseInt(T.substr(P), V))
      return false;
    Add = V;
    return true;
  }

  bool parseOperand(const std::string &Tok, Operand &Op) {
    std::string T = trim(Tok);
    if (T.empty())
      return false;

    // '#imm' operate literal.
    if (T[0] == '#') {
      int64_t V;
      if (!parseInt(T.substr(1), V) || V < 0 || V > 255) {
        error("operate literal out of range [0,255]: " + T);
        return false;
      }
      Op.K = Operand::Literal;
      Op.Imm = V;
      return true;
    }

    // '(reg)' or 'disp(reg)'.
    size_t LP = T.find('(');
    if (LP != std::string::npos && T.back() == ')') {
      std::string RegStr = trim(T.substr(LP + 1, T.size() - LP - 2));
      unsigned R = parseRegName(RegStr);
      if (R == NumRegs) {
        error("bad base register: " + RegStr);
        return false;
      }
      std::string DispStr = trim(T.substr(0, LP));
      int64_t D = 0;
      if (!DispStr.empty() && !parseInt(DispStr, D)) {
        error("bad memory displacement: " + DispStr);
        return false;
      }
      if (!fitsSigned(D, 16)) {
        error("memory displacement out of 16-bit range: " + DispStr);
        return false;
      }
      Op.K = DispStr.empty() && LP == 0 ? Operand::RegIndirect : Operand::MemRef;
      Op.Reg = R;
      Op.Imm = D;
      return true;
    }

    unsigned R = parseRegName(T);
    if (R != NumRegs) {
      Op.K = Operand::Register;
      Op.Reg = R;
      return true;
    }

    int64_t V;
    if (parseInt(T, V)) {
      Op.K = Operand::Immediate;
      Op.Imm = V;
      return true;
    }

    std::string Sym;
    int64_t Add;
    if (parseSymExpr(T, Sym, Add)) {
      Op.K = Operand::SymbolRef;
      Op.Sym = Sym;
      Op.SymAddend = Add;
      return true;
    }
    error("cannot parse operand: " + T);
    return false;
  }

  std::vector<std::string> splitOperands(const std::string &Rest) {
    std::vector<std::string> Out;
    std::string Cur;
    int Depth = 0;
    bool InStr = false;
    for (size_t I = 0; I < Rest.size(); ++I) {
      char C = Rest[I];
      if (InStr) {
        Cur += C;
        if (C == '\\' && I + 1 < Rest.size())
          Cur += Rest[++I];
        else if (C == '"')
          InStr = false;
        continue;
      }
      if (C == '"') {
        InStr = true;
        Cur += C;
      } else if (C == '(') {
        ++Depth;
        Cur += C;
      } else if (C == ')') {
        --Depth;
        Cur += C;
      } else if (C == ',' && Depth == 0) {
        Out.push_back(trim(Cur));
        Cur.clear();
      } else {
        Cur += C;
      }
    }
    std::string Last = trim(Cur);
    if (!Last.empty())
      Out.push_back(Last);
    return Out;
  }

  bool parseString(const std::string &Tok, std::string &Out) {
    std::string T = trim(Tok);
    if (T.size() < 2 || T.front() != '"' || T.back() != '"') {
      error("expected string literal");
      return false;
    }
    Out.clear();
    for (size_t I = 1; I + 1 < T.size(); ++I) {
      char C = T[I];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (I + 2 >= T.size() + 1) {
        error("bad escape in string");
        return false;
      }
      char E = T[++I];
      switch (E) {
      case 'n': Out += '\n'; break;
      case 't': Out += '\t'; break;
      case '0': Out += '\0'; break;
      case '\\': Out += '\\'; break;
      case '"': Out += '"'; break;
      default:
        error(std::string("unknown escape '\\") + E + "'");
        return false;
      }
    }
    return true;
  }

  // --- statement handlers -------------------------------------------------
  void handleDirective(const std::string &Name,
                       const std::vector<std::string> &Ops);
  void handleInstruction(const std::string &Mnemonic,
                         const std::vector<std::string> &Ops);
  void processLine(std::string LineText);

  DiagEngine &Diags;
  ObjectModule M;
  std::map<std::string, unsigned> SymIdx;
  Section Cur = Section::Text;
  int Line = 0;
  bool Failed = false;
  std::string PendingEnt; ///< Procedure opened by .ent, closed by .end.
  uint64_t EntStart = 0;
};

void Assembler::handleDirective(const std::string &Name,
                                const std::vector<std::string> &Ops) {
  if (Name == ".text") {
    Cur = Section::Text;
    return;
  }
  if (Name == ".data") {
    Cur = Section::Data;
    return;
  }
  if (Name == ".bss") {
    Cur = Section::Bss;
    return;
  }
  if (Name == ".globl" || Name == ".global") {
    if (Ops.size() != 1) {
      error(".globl takes one symbol");
      return;
    }
    M.Symbols[symbolIndex(Ops[0])].Global = true;
    return;
  }
  if (Name == ".ent") {
    if (Ops.size() != 1) {
      error(".ent takes one symbol");
      return;
    }
    if (!PendingEnt.empty()) {
      error(".ent '" + Ops[0] + "' inside unterminated .ent '" + PendingEnt +
            "'");
      return;
    }
    PendingEnt = Ops[0];
    EntStart = M.Text.size();
    return;
  }
  if (Name == ".end") {
    if (Ops.size() != 1 || Ops[0] != PendingEnt) {
      error(".end does not match .ent '" + PendingEnt + "'");
      return;
    }
    Symbol &S = M.Symbols[symbolIndex(PendingEnt)];
    S.IsProc = true;
    S.Size = M.Text.size() - EntStart;
    PendingEnt.clear();
    return;
  }
  if (Name == ".align") {
    int64_t N;
    if (Ops.size() != 1 || !parseInt(Ops[0], N) || N < 0 || N > 12) {
      error(".align takes an exponent in [0,12]");
      return;
    }
    uint64_t A = uint64_t(1) << N;
    switch (Cur) {
    case Section::Text:
      while (M.Text.size() % A)
        M.Text.push_back(0);
      break;
    case Section::Data:
      while (M.Data.size() % A)
        M.Data.push_back(0);
      break;
    case Section::Bss:
      M.BssSize = alignTo(M.BssSize, A);
      break;
    }
    return;
  }
  if (Name == ".space") {
    int64_t N;
    if (Ops.size() != 1 || !parseInt(Ops[0], N) || N < 0) {
      error(".space takes a non-negative size");
      return;
    }
    switch (Cur) {
    case Section::Bss:
      M.BssSize += uint64_t(N);
      break;
    case Section::Data:
      M.Data.resize(M.Data.size() + uint64_t(N));
      break;
    case Section::Text:
      error(".space not allowed in .text");
      break;
    }
    return;
  }
  if (Name == ".quad" || Name == ".long" || Name == ".word" ||
      Name == ".byte") {
    if (Cur != Section::Data) {
      error(Name + " only allowed in .data");
      return;
    }
    unsigned Size = Name == ".quad" ? 8 : Name == ".long" ? 4
                    : Name == ".word" ? 2 : 1;
    for (const std::string &OpStr : Ops) {
      int64_t V;
      std::string Sym;
      int64_t Add;
      if (parseInt(OpStr, V)) {
        uint64_t Off = M.Data.size();
        M.Data.resize(Off + Size);
        for (unsigned I = 0; I < Size; ++I)
          M.Data[Off + I] = uint8_t(uint64_t(V) >> (8 * I));
        continue;
      }
      if (Size == 8 && parseSymExpr(OpStr, Sym, Add)) {
        uint64_t Off = M.Data.size();
        M.Data.resize(Off + 8);
        M.DataRelocs.push_back(
            {RelocKind::Abs64, Off, symbolIndex(Sym), Add});
        continue;
      }
      error("bad data expression: " + OpStr);
    }
    return;
  }
  if (Name == ".asciiz" || Name == ".ascii") {
    if (Cur != Section::Data) {
      error(Name + " only allowed in .data");
      return;
    }
    if (Ops.size() != 1) {
      error(Name + " takes one string");
      return;
    }
    std::string S;
    if (!parseString(Ops[0], S))
      return;
    M.Data.insert(M.Data.end(), S.begin(), S.end());
    if (Name == ".asciiz")
      M.Data.push_back(0);
    return;
  }
  error("unknown directive " + Name);
}

void Assembler::handleInstruction(const std::string &Mnemonic,
                                  const std::vector<std::string> &OpStrs) {
  if (Cur != Section::Text) {
    error("instruction outside .text");
    return;
  }

  // Pseudo-instructions.
  if (Mnemonic == "nop") {
    emitInst(makeNop());
    return;
  }
  if (Mnemonic == "mov") {
    Operand A, B;
    if (OpStrs.size() != 2 || !parseOperand(OpStrs[0], A) ||
        !parseOperand(OpStrs[1], B) || A.K != Operand::Register ||
        B.K != Operand::Register) {
      error("mov takes two registers");
      return;
    }
    emitInst(makeMove(A.Reg, B.Reg));
    return;
  }
  if (Mnemonic == "clr") {
    Operand A;
    if (OpStrs.size() != 1 || !parseOperand(OpStrs[0], A) ||
        A.K != Operand::Register) {
      error("clr takes one register");
      return;
    }
    emitInst(makeMove(RegZero, A.Reg));
    return;
  }
  if (Mnemonic == "laddr") {
    Operand A;
    if (OpStrs.size() != 2 || !parseOperand(OpStrs[0], A) ||
        A.K != Operand::Register) {
      error("laddr takes a register and a symbol");
      return;
    }
    std::string Sym;
    int64_t Add;
    if (!parseSymExpr(OpStrs[1], Sym, Add)) {
      error("laddr takes a symbol operand");
      return;
    }
    addTextReloc(RelocKind::Hi16, Sym, Add, M.Text.size());
    emitInst(makeMem(Opcode::Ldah, A.Reg, 0, RegZero));
    addTextReloc(RelocKind::Lo16, Sym, Add, M.Text.size());
    emitInst(makeMem(Opcode::Lda, A.Reg, 0, A.Reg));
    return;
  }
  if (Mnemonic == "lconst") {
    Operand A;
    int64_t V;
    if (OpStrs.size() != 2 || !parseOperand(OpStrs[0], A) ||
        A.K != Operand::Register || !parseInt(OpStrs[1], V)) {
      error("lconst takes a register and an integer");
      return;
    }
    std::vector<Inst> Seq;
    synthesizeConstant(V, A.Reg, Seq);
    for (const Inst &I : Seq)
      emitInst(I);
    return;
  }

  // Real opcodes.
  Opcode Op = Opcode::NumOpcodes;
  for (size_t K = 0; K < size_t(Opcode::NumOpcodes); ++K)
    if (Mnemonic == opcodeName(Opcode(K))) {
      Op = Opcode(K);
      break;
    }
  if (Op == Opcode::NumOpcodes) {
    error("unknown mnemonic '" + Mnemonic + "'");
    return;
  }

  std::vector<Operand> Ops;
  for (const std::string &S : OpStrs) {
    Operand O;
    if (!parseOperand(S, O))
      return;
    Ops.push_back(O);
  }

  switch (formatOf(Op)) {
  case Format::Memory: {
    if (Ops.size() != 2 || Ops[0].K != Operand::Register) {
      error("memory format: op ra, disp(rb)");
      return;
    }
    if (Ops[1].K == Operand::MemRef || Ops[1].K == Operand::RegIndirect) {
      emitInst(makeMem(Op, Ops[0].Reg, int32_t(Ops[1].Imm), Ops[1].Reg));
      return;
    }
    if (Ops[1].K == Operand::Immediate && fitsSigned(Ops[1].Imm, 16)) {
      emitInst(makeMem(Op, Ops[0].Reg, int32_t(Ops[1].Imm), RegZero));
      return;
    }
    error("bad memory operand");
    return;
  }
  case Format::Branch: {
    // 'br target' and 'bsr target' default the link register.
    std::vector<Operand> B = Ops;
    if (B.size() == 1 && (Op == Opcode::Br || Op == Opcode::Bsr)) {
      Operand Link;
      Link.K = Operand::Register;
      Link.Reg = Op == Opcode::Bsr ? RegRA : RegZero;
      B.insert(B.begin(), Link);
    }
    if (B.size() != 2 || B[0].K != Operand::Register) {
      error("branch format: op ra, target");
      return;
    }
    if (B[1].K == Operand::SymbolRef) {
      addTextReloc(RelocKind::Br21, B[1].Sym, B[1].SymAddend, M.Text.size());
      emitInst(makeBranch(Op, B[0].Reg, 0));
      return;
    }
    if (B[1].K == Operand::Immediate && fitsSigned(B[1].Imm, 21)) {
      emitInst(makeBranch(Op, B[0].Reg, int32_t(B[1].Imm)));
      return;
    }
    error("bad branch target");
    return;
  }
  case Format::Jump: {
    std::vector<Operand> J = Ops;
    if (Op == Opcode::Ret && J.empty()) {
      Operand R;
      R.K = Operand::RegIndirect;
      R.Reg = RegRA;
      J.push_back(R);
    }
    if (J.size() == 1) {
      Operand Link;
      Link.K = Operand::Register;
      Link.Reg = Op == Opcode::Jsr ? RegRA : RegZero;
      J.insert(J.begin(), Link);
    }
    if (J.size() != 2 || J[0].K != Operand::Register ||
        (J[1].K != Operand::RegIndirect && J[1].K != Operand::Register &&
         J[1].K != Operand::MemRef)) {
      error("jump format: op ra, (rb)");
      return;
    }
    emitInst(makeJump(Op, J[0].Reg, J[1].Reg));
    return;
  }
  case Format::Operate: {
    if (Ops.size() != 3 || Ops[0].K != Operand::Register ||
        Ops[2].K != Operand::Register) {
      error("operate format: op ra, rb|#lit, rc");
      return;
    }
    if (Ops[1].K == Operand::Register) {
      emitInst(makeOp(Op, Ops[0].Reg, Ops[1].Reg, Ops[2].Reg));
      return;
    }
    if (Ops[1].K == Operand::Literal ||
        (Ops[1].K == Operand::Immediate && Ops[1].Imm >= 0 &&
         Ops[1].Imm <= 255)) {
      emitInst(makeOpLit(Op, Ops[0].Reg, uint8_t(Ops[1].Imm), Ops[2].Reg));
      return;
    }
    error("bad operate operand");
    return;
  }
  case Format::Pal:
    if (!Ops.empty()) {
      error("PAL instructions take no operands");
      return;
    }
    emitInst(makePal(Op));
    return;
  }
}

void Assembler::processLine(std::string LineText) {
  // Strip comments (respecting string literals).
  bool InStr = false;
  for (size_t I = 0; I < LineText.size(); ++I) {
    char C = LineText[I];
    if (InStr) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InStr = false;
      continue;
    }
    if (C == '"') {
      InStr = true;
    } else if (C == ';') {
      // ';' starts a comment. '#' cannot: it introduces operate literals.
      LineText.resize(I);
      break;
    }
  }

  std::string T = trim(LineText);

  // Labels (possibly several on one line).
  while (true) {
    size_t Colon = std::string::npos;
    for (size_t I = 0; I < T.size(); ++I) {
      if (T[I] == ':') {
        Colon = I;
        break;
      }
      if (!isSymbolChar(T[I]))
        break;
    }
    if (Colon == std::string::npos)
      break;
    std::string Label = T.substr(0, Colon);
    if (!isSymbolName(Label)) {
      error("bad label '" + Label + "'");
      return;
    }
    defineLabel(Label);
    T = trim(T.substr(Colon + 1));
  }
  if (T.empty())
    return;

  size_t SpacePos = T.find_first_of(" \t");
  std::string Head = SpacePos == std::string::npos ? T : T.substr(0, SpacePos);
  std::string Rest = SpacePos == std::string::npos ? "" : T.substr(SpacePos);
  std::vector<std::string> Ops = splitOperands(Rest);

  if (Head[0] == '.')
    handleDirective(Head, Ops);
  else
    handleInstruction(Head, Ops);
}

bool Assembler::run(const std::string &Source, ObjectModule &Out) {
  size_t Pos = 0;
  Line = 0;
  while (Pos <= Source.size()) {
    size_t NL = Source.find('\n', Pos);
    std::string LineText = Source.substr(
        Pos, NL == std::string::npos ? std::string::npos : NL - Pos);
    ++Line;
    processLine(LineText);
    if (NL == std::string::npos)
      break;
    Pos = NL + 1;
  }
  if (!PendingEnt.empty())
    error("unterminated .ent '" + PendingEnt + "'");
  if (Failed)
    return false;
  Out = std::move(M);
  return true;
}

} // namespace

bool assembler::assemble(const std::string &Source,
                         const std::string &ModuleName, ObjectModule &Out,
                         DiagEngine &Diags) {
  Assembler A(ModuleName, Diags);
  return A.run(Source, Out);
}
