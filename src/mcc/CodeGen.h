//===- mcc/CodeGen.h - Mini-C code generator --------------------*- C++ -*-===//

#ifndef ATOM_MCC_CODEGEN_H
#define ATOM_MCC_CODEGEN_H

#include "mcc/Ast.h"

namespace atom {
namespace mcc {

/// Generates AXP64-lite assembly text for an analyzed translation unit.
/// Returns false on codegen limits (oversized stack frame, expression too
/// deep, non-constant global initializer, ...).
bool generate(const TranslationUnit &Unit, std::string &AsmOut,
              DiagEngine &Diags);

} // namespace mcc
} // namespace atom

#endif // ATOM_MCC_CODEGEN_H
