//===- mcc/Lexer.h - Mini-C lexer -------------------------------*- C++ -*-===//

#ifndef ATOM_MCC_LEXER_H
#define ATOM_MCC_LEXER_H

#include "support/Support.h"

#include <string>
#include <vector>

namespace atom {
namespace mcc {

struct Token {
  enum Kind {
    End,
    Ident,
    Keyword,
    IntLit,
    StrLit,
    CharLit,
    Punct,
  } K = End;

  int Line = 0;
  std::string Text; ///< Identifier/keyword/punctuator spelling.
  int64_t Value = 0;
  std::string Str; ///< String literal contents (escapes resolved).

  bool is(Kind Kd, const std::string &T) const { return K == Kd && Text == T; }
  bool isPunct(const std::string &T) const { return is(Punct, T); }
  bool isKeyword(const std::string &T) const { return is(Keyword, T); }
};

/// Tokenizes \p Source. Returns false on lexical errors (reported in
/// \p Diags). The token stream always ends with an End token.
bool lex(const std::string &Source, std::vector<Token> &Out,
         DiagEngine &Diags);

} // namespace mcc
} // namespace atom

#endif // ATOM_MCC_LEXER_H
