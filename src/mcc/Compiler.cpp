//===- mcc/Compiler.cpp ---------------------------------------------------===//

#include "mcc/Compiler.h"

#include "asm/Assembler.h"
#include "mcc/CodeGen.h"
#include "mcc/Lexer.h"
#include "mcc/Parser.h"
#include "mcc/Sema.h"

using namespace atom;
using namespace atom::mcc;

const char *mcc::runtimePrelude() {
  return R"(
extern long printf(char *fmt, ...);
extern long fprintf(long f, char *fmt, ...);
extern long fopen(char *path, char *mode);
extern long fclose(long f);
extern char *malloc(long n);
extern void free(char *p);
extern char *sbrk(long n);
extern char *calloc(long n, long size);
extern long strlen(char *s);
extern long strcmp(char *a, char *b);
extern char *strcpy(char *d, char *s);
extern char *memset(char *d, long c, long n);
extern char *memcpy(char *d, char *s, long n);
extern long puts(char *s);
extern long atoi(char *s);
extern void exit(long code);
extern long __sys_write(long fd, char *buf, long n);
extern long __sys_read(long fd, char *buf, long n);
extern long __sys_open(char *path, long flags);
extern long __sys_close(long fd);
)";
}

bool mcc::compileToAsm(const std::string &Source,
                       const std::string &ModuleName, std::string &AsmOut,
                       DiagEngine &Diags) {
  (void)ModuleName;
  TypeContext Types;
  TranslationUnit Unit;

  std::vector<Token> PreludeToks;
  if (!lex(runtimePrelude(), PreludeToks, Diags))
    return false;
  if (!parse(PreludeToks, Types, Unit, Diags))
    return false;

  std::vector<Token> Toks;
  if (!lex(Source, Toks, Diags))
    return false;
  if (!parse(Toks, Types, Unit, Diags))
    return false;
  if (!analyze(Unit, Types, Diags))
    return false;
  return generate(Unit, AsmOut, Diags);
}

bool mcc::compile(const std::string &Source, const std::string &ModuleName,
                  obj::ObjectModule &Out, DiagEngine &Diags) {
  std::string Asm;
  if (!compileToAsm(Source, ModuleName, Asm, Diags))
    return false;
  if (!assembler::assemble(Asm, ModuleName, Out, Diags)) {
    // An assembler diagnostic here is a compiler bug: surface the context.
    Diags.error(0, "internal error: generated assembly failed to assemble "
                   "for module '" + ModuleName + "'");
    return false;
  }
  return true;
}
