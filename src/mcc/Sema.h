//===- mcc/Sema.h - Mini-C semantic analysis --------------------*- C++ -*-===//

#ifndef ATOM_MCC_SEMA_H
#define ATOM_MCC_SEMA_H

#include "mcc/Ast.h"

namespace atom {
namespace mcc {

/// Resolves names, assigns types to every expression, and checks the
/// language rules. Returns false on semantic errors.
bool analyze(TranslationUnit &Unit, TypeContext &Types, DiagEngine &Diags);

} // namespace mcc
} // namespace atom

#endif // ATOM_MCC_SEMA_H
