//===- mcc/Lexer.cpp ------------------------------------------------------===//

#include "mcc/Lexer.h"

#include <cctype>
#include <cstring>
#include <set>

using namespace atom;
using namespace atom::mcc;

static const std::set<std::string> Keywords = {
    "void", "char", "int",      "long",  "struct", "if",
    "else", "while", "for",     "do",    "return", "break",
    "continue", "sizeof", "extern", "switch", "case", "default"};

/// Multi-character punctuators, longest-match-first.
static const char *const Puncts[] = {
    "...", "<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+",   "-",   "*",   "/",  "%",  "=",  "<",  ">",  "!",  "~",  "&",
    "|",   "^",   "(",   ")",  "{",  "}",  "[",  "]",  ",",  ";",  ".",
    "?",   ":"};

namespace {

class Lexer {
public:
  Lexer(const std::string &Src, DiagEngine &Diags) : Src(Src), Diags(Diags) {}

  bool run(std::vector<Token> &Out);

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char get() {
    char C = peek();
    ++Pos;
    if (C == '\n')
      ++Line;
    return C;
  }
  void error(const std::string &Msg) {
    Diags.error(Line, Msg);
    Failed = true;
  }

  bool lexEscape(char &Out) {
    char E = get();
    switch (E) {
    case 'n': Out = '\n'; return true;
    case 't': Out = '\t'; return true;
    case 'r': Out = '\r'; return true;
    case '0': Out = '\0'; return true;
    case '\\': Out = '\\'; return true;
    case '\'': Out = '\''; return true;
    case '"': Out = '"'; return true;
    default:
      error(std::string("unknown escape '\\") + E + "'");
      return false;
    }
  }

  const std::string &Src;
  DiagEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  bool Failed = false;
};

bool Lexer::run(std::vector<Token> &Out) {
  while (Pos < Src.size()) {
    char C = peek();

    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      get();
      continue;
    }
    // Comments.
    if (C == '/' && peek(1) == '/') {
      while (Pos < Src.size() && peek() != '\n')
        get();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      get();
      get();
      while (Pos < Src.size() && !(peek() == '*' && peek(1) == '/'))
        get();
      if (Pos >= Src.size()) {
        error("unterminated comment");
        break;
      }
      get();
      get();
      continue;
    }

    Token T;
    T.Line = Line;

    if (std::isalpha(uint8_t(C)) || C == '_') {
      std::string Id;
      while (std::isalnum(uint8_t(peek())) || peek() == '_')
        Id += get();
      T.K = Keywords.count(Id) ? Token::Keyword : Token::Ident;
      T.Text = Id;
      Out.push_back(T);
      continue;
    }

    if (std::isdigit(uint8_t(C))) {
      uint64_t V = 0;
      if (C == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        get();
        get();
        bool Any = false;
        while (std::isxdigit(uint8_t(peek()))) {
          char D = char(std::tolower(get()));
          V = V * 16 + uint64_t(D <= '9' ? D - '0' : D - 'a' + 10);
          Any = true;
        }
        if (!Any)
          error("bad hex literal");
      } else {
        while (std::isdigit(uint8_t(peek())))
          V = V * 10 + uint64_t(get() - '0');
      }
      // Optional L/U suffixes are accepted and ignored.
      while (peek() == 'l' || peek() == 'L' || peek() == 'u' || peek() == 'U')
        get();
      T.K = Token::IntLit;
      T.Value = int64_t(V);
      Out.push_back(T);
      continue;
    }

    if (C == '\'') {
      get();
      char V;
      if (peek() == '\\') {
        get();
        if (!lexEscape(V))
          continue;
      } else {
        V = get();
      }
      if (get() != '\'')
        error("unterminated character literal");
      T.K = Token::CharLit;
      T.Value = uint8_t(V);
      Out.push_back(T);
      continue;
    }

    if (C == '"') {
      get();
      std::string S;
      while (true) {
        if (Pos >= Src.size()) {
          error("unterminated string literal");
          break;
        }
        char V = get();
        if (V == '"')
          break;
        if (V == '\\') {
          char E;
          if (!lexEscape(E))
            break;
          S += E;
        } else {
          S += V;
        }
      }
      T.K = Token::StrLit;
      T.Str = S;
      // Adjacent string literals concatenate.
      if (!Out.empty() && Out.back().K == Token::StrLit) {
        Out.back().Str += S;
        continue;
      }
      Out.push_back(T);
      continue;
    }

    bool Matched = false;
    for (const char *P : Puncts) {
      size_t Len = std::strlen(P);
      if (Src.compare(Pos, Len, P) == 0) {
        T.K = Token::Punct;
        T.Text = P;
        Out.push_back(T);
        Pos += Len;
        Matched = true;
        break;
      }
    }
    if (!Matched) {
      error(formatString("unexpected character '%c'", C));
      get();
    }
  }

  Token End;
  End.K = Token::End;
  End.Line = Line;
  Out.push_back(End);
  return !Failed;
}

} // namespace

bool mcc::lex(const std::string &Source, std::vector<Token> &Out,
              DiagEngine &Diags) {
  Lexer L(Source, Diags);
  return L.run(Out);
}
