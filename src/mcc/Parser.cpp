//===- mcc/Parser.cpp - Recursive-descent parser for mini-C ---------------===//

#include "mcc/Parser.h"

using namespace atom;
using namespace atom::mcc;

//===----------------------------------------------------------------------===//
// TypeContext
//===----------------------------------------------------------------------===//

TypeContext::TypeContext() {
  VoidT.K = Type::Void;
  CharT.K = Type::Char;
  IntT.K = Type::Int;
  LongT.K = Type::Long;
}

const Type *TypeContext::ptrTo(const Type *Pointee) {
  for (const auto &T : Owned)
    if (T->K == Type::Ptr && T->Pointee == Pointee)
      return T.get();
  auto T = std::make_unique<Type>();
  T->K = Type::Ptr;
  T->Pointee = Pointee;
  Owned.push_back(std::move(T));
  return Owned.back().get();
}

const Type *TypeContext::arrayOf(const Type *Elem, int64_t N) {
  for (const auto &T : Owned)
    if (T->K == Type::Array && T->Pointee == Elem && T->ArraySize == N)
      return T.get();
  auto T = std::make_unique<Type>();
  T->K = Type::Array;
  T->Pointee = Elem;
  T->ArraySize = N;
  Owned.push_back(std::move(T));
  return Owned.back().get();
}

const Type *TypeContext::structTy(const StructDef *SD) {
  for (const auto &T : Owned)
    if (T->K == Type::Struct && T->SD == SD)
      return T.get();
  auto T = std::make_unique<Type>();
  T->K = Type::Struct;
  T->SD = SD;
  Owned.push_back(std::move(T));
  return Owned.back().get();
}

StructDef *TypeContext::createStruct(const std::string &Name) {
  Structs.push_back(std::make_unique<StructDef>());
  Structs.back()->Name = Name;
  return Structs.back().get();
}

StructDef *TypeContext::findStruct(const std::string &Name) {
  for (const auto &S : Structs)
    if (S->Name == Name)
      return S.get();
  return nullptr;
}

uint64_t Type::size() const {
  switch (K) {
  case Void: return 0;
  case Char: return 1;
  case Int: return 4;
  case Long: return 8;
  case Ptr: return 8;
  case Array: return uint64_t(ArraySize) * Pointee->size();
  case Struct: return SD->Size;
  }
  return 0;
}

uint64_t Type::align() const {
  switch (K) {
  case Void: return 1;
  case Char: return 1;
  case Int: return 4;
  case Long: return 8;
  case Ptr: return 8;
  case Array: return Pointee->align();
  case Struct: return SD->Align;
  }
  return 1;
}

std::string Type::str() const {
  switch (K) {
  case Void: return "void";
  case Char: return "char";
  case Int: return "int";
  case Long: return "long";
  case Ptr: return Pointee->str() + "*";
  case Array:
    return Pointee->str() + formatString("[%lld]", (long long)ArraySize);
  case Struct: return "struct " + SD->Name;
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::vector<Token> &Toks, TypeContext &Types,
         TranslationUnit &Unit, DiagEngine &Diags)
      : Toks(Toks), Types(Types), Unit(Unit), Diags(Diags) {}

  bool run();

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t I = std::min(Pos + Ahead, Toks.size() - 1);
    return Toks[I];
  }
  const Token &get() {
    const Token &T = Toks[std::min(Pos, Toks.size() - 1)];
    if (Pos < Toks.size() - 1)
      ++Pos;
    return T;
  }
  bool consumePunct(const std::string &P) {
    if (!peek().isPunct(P))
      return false;
    get();
    return true;
  }
  bool expectPunct(const std::string &P) {
    if (consumePunct(P))
      return true;
    error("expected '" + P + "' but found '" + describe(peek()) + "'");
    return false;
  }
  static std::string describe(const Token &T) {
    switch (T.K) {
    case Token::End: return "<eof>";
    case Token::IntLit: return formatString("%lld", (long long)T.Value);
    case Token::CharLit: return "char literal";
    case Token::StrLit: return "string literal";
    default: return T.Text;
    }
  }
  void error(const std::string &Msg) {
    Diags.error(peek().Line, Msg);
    Failed = true;
    // Best-effort recovery: skip to the next ';' or '}'.
    while (peek().K != Token::End && !peek().isPunct(";") &&
           !peek().isPunct("}"))
      get();
  }

  bool atTypeStart() const {
    const Token &T = peek();
    return T.isKeyword("void") || T.isKeyword("char") || T.isKeyword("int") ||
           T.isKeyword("long") || T.isKeyword("struct");
  }

  /// Parses a base type plus pointer stars: 'struct foo **'.
  const Type *parseTypeSpec();
  /// Parses trailing array dimensions on a declarator.
  const Type *parseArraySuffix(const Type *Base);

  void parseStructDef();
  void parseTopLevel();
  std::unique_ptr<FuncDecl> parseFunctionRest(const Type *RetTy,
                                              const std::string &Name,
                                              bool IsExtern);
  StmtPtr parseBlock();
  StmtPtr parseStatement();

  ExprPtr parseExpr() { return parseAssign(); }
  ExprPtr parseAssign();
  ExprPtr parseCond();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  ExprPtr makeExpr(Expr::Kind K) {
    auto E = std::make_unique<Expr>(K);
    E->Line = peek().Line;
    return E;
  }

  const std::vector<Token> &Toks;
  TypeContext &Types;
  TranslationUnit &Unit;
  DiagEngine &Diags;
  size_t Pos = 0;
  bool Failed = false;
};

const Type *Parser::parseTypeSpec() {
  const Type *T = nullptr;
  if (peek().isKeyword("void")) {
    get();
    T = Types.voidTy();
  } else if (peek().isKeyword("char")) {
    get();
    T = Types.charTy();
  } else if (peek().isKeyword("int")) {
    get();
    T = Types.intTy();
  } else if (peek().isKeyword("long")) {
    get();
    // Accept 'long long' and 'long int' as long.
    if (peek().isKeyword("long") || peek().isKeyword("int"))
      get();
    T = Types.longTy();
  } else if (peek().isKeyword("struct")) {
    get();
    if (peek().K != Token::Ident) {
      error("expected struct name");
      return Types.intTy();
    }
    std::string Name = get().Text;
    StructDef *SD = Types.findStruct(Name);
    if (!SD)
      SD = Types.createStruct(Name); // forward reference
    T = Types.structTy(SD);
  } else {
    error("expected type");
    return Types.intTy();
  }
  while (consumePunct("*"))
    T = Types.ptrTo(T);
  return T;
}

const Type *Parser::parseArraySuffix(const Type *Base) {
  // Collect dimensions, then build inside-out.
  std::vector<int64_t> Dims;
  while (consumePunct("[")) {
    if (peek().K != Token::IntLit) {
      error("array size must be an integer literal");
      return Base;
    }
    Dims.push_back(get().Value);
    expectPunct("]");
  }
  for (size_t I = Dims.size(); I-- > 0;)
    Base = Types.arrayOf(Base, Dims[I]);
  return Base;
}

void Parser::parseStructDef() {
  // 'struct' Ident '{' fields '}' ';'
  get(); // struct
  if (peek().K != Token::Ident) {
    error("expected struct name");
    return;
  }
  std::string Name = get().Text;
  StructDef *SD = Types.findStruct(Name);
  if (!SD)
    SD = Types.createStruct(Name);
  if (SD->Complete) {
    error("struct '" + Name + "' redefined");
    return;
  }
  expectPunct("{");
  uint64_t Offset = 0, Align = 1;
  while (!peek().isPunct("}") && peek().K != Token::End) {
    const Type *FT = parseTypeSpec();
    if (peek().K != Token::Ident) {
      error("expected field name");
      return;
    }
    std::string FName = get().Text;
    FT = parseArraySuffix(FT);
    if (FT->size() == 0) {
      error("field '" + FName + "' has incomplete type");
      return;
    }
    Offset = alignTo(Offset, FT->align());
    SD->Fields.push_back({FName, FT, Offset});
    Offset += FT->size();
    Align = std::max(Align, FT->align());
    expectPunct(";");
  }
  expectPunct("}");
  expectPunct(";");
  SD->Size = alignTo(Offset, Align);
  SD->Align = Align;
  SD->Complete = true;
}

std::unique_ptr<FuncDecl> Parser::parseFunctionRest(const Type *RetTy,
                                                    const std::string &Name,
                                                    bool IsExtern) {
  auto F = std::make_unique<FuncDecl>();
  F->Name = Name;
  F->RetTy = RetTy;
  F->Line = peek().Line;
  // '(' already consumed by the caller? No: consume here.
  expectPunct("(");
  if (peek().isKeyword("void") && peek(1).isPunct(")")) {
    get();
  }
  bool First = true;
  while (!peek().isPunct(")") && peek().K != Token::End) {
    // A malformed parameter list can leave error recovery parked on a
    // token this loop never consumes (e.g. '}'); bail out rather than
    // spin without making progress.
    size_t Before = Pos;
    if (!First)
      expectPunct(",");
    First = false;
    if (peek().isPunct("...")) {
      get();
      F->IsVariadic = true;
      break;
    }
    const Type *PT = parseTypeSpec();
    if (Failed && Pos == Before)
      break;
    auto P = std::make_unique<VarDecl>();
    P->IsParam = true;
    P->ParamIndex = int(F->Params.size());
    if (peek().K == Token::Ident)
      P->Name = get().Text;
    PT = parseArraySuffix(PT);
    // Array parameters decay to pointers.
    if (PT->isArray())
      PT = Types.ptrTo(PT->Pointee);
    P->Ty = PT;
    F->Params.push_back(std::move(P));
  }
  expectPunct(")");

  if (consumePunct(";")) {
    F->IsExtern = true;
    return F;
  }
  if (IsExtern)
    error("extern function cannot have a body");
  F->Body = parseBlock();
  return F;
}

void Parser::parseTopLevel() {
  bool IsExtern = false;
  if (peek().isKeyword("extern")) {
    get();
    IsExtern = true;
  }
  if (peek().isKeyword("struct") && peek(1).K == Token::Ident &&
      peek(2).isPunct("{")) {
    if (IsExtern)
      error("extern struct definition");
    parseStructDef();
    return;
  }
  const Type *T = parseTypeSpec();
  if (peek().K != Token::Ident) {
    error("expected declarator name");
    consumePunct(";");
    return;
  }
  std::string Name = get().Text;

  if (peek().isPunct("(")) {
    Unit.Funcs.push_back(parseFunctionRest(T, Name, IsExtern));
    return;
  }

  // Global variable(s).
  while (true) {
    auto V = std::make_unique<VarDecl>();
    V->Name = Name;
    V->IsGlobal = true;
    V->IsExtern = IsExtern;
    V->Ty = parseArraySuffix(T);
    if (consumePunct("=")) {
      if (IsExtern)
        error("extern variable cannot have an initializer");
      V->Init = parseAssign();
    }
    Unit.Globals.push_back(std::move(V));
    if (consumePunct(",")) {
      if (peek().K != Token::Ident) {
        error("expected declarator name");
        break;
      }
      Name = get().Text;
      continue;
    }
    break;
  }
  expectPunct(";");
}

StmtPtr Parser::parseBlock() {
  auto S = std::make_unique<Stmt>(Stmt::Block);
  S->Line = peek().Line;
  expectPunct("{");
  while (!peek().isPunct("}") && peek().K != Token::End)
    S->Body.push_back(parseStatement());
  expectPunct("}");
  return S;
}

StmtPtr Parser::parseStatement() {
  int Line = peek().Line;

  if (peek().isPunct("{"))
    return parseBlock();

  if (consumePunct(";")) {
    auto S = std::make_unique<Stmt>(Stmt::Empty);
    S->Line = Line;
    return S;
  }

  if (peek().isKeyword("if")) {
    get();
    auto S = std::make_unique<Stmt>(Stmt::If);
    S->Line = Line;
    expectPunct("(");
    S->Cond = parseExpr();
    expectPunct(")");
    S->Then = parseStatement();
    if (peek().isKeyword("else")) {
      get();
      S->Else = parseStatement();
    }
    return S;
  }

  if (peek().isKeyword("while")) {
    get();
    auto S = std::make_unique<Stmt>(Stmt::While);
    S->Line = Line;
    expectPunct("(");
    S->Cond = parseExpr();
    expectPunct(")");
    S->Loop = parseStatement();
    return S;
  }

  if (peek().isKeyword("do")) {
    get();
    auto S = std::make_unique<Stmt>(Stmt::DoWhile);
    S->Line = Line;
    S->Loop = parseStatement();
    if (!peek().isKeyword("while"))
      error("expected 'while' after do body");
    else
      get();
    expectPunct("(");
    S->Cond = parseExpr();
    expectPunct(")");
    expectPunct(";");
    return S;
  }

  if (peek().isKeyword("for")) {
    get();
    auto S = std::make_unique<Stmt>(Stmt::For);
    S->Line = Line;
    expectPunct("(");
    if (!peek().isPunct(";"))
      S->Init = parseExpr();
    expectPunct(";");
    if (!peek().isPunct(";"))
      S->Cond = parseExpr();
    expectPunct(";");
    if (!peek().isPunct(")"))
      S->Step = parseExpr();
    expectPunct(")");
    S->Loop = parseStatement();
    return S;
  }

  if (peek().isKeyword("switch")) {
    get();
    auto S = std::make_unique<Stmt>(Stmt::Switch);
    S->Line = Line;
    expectPunct("(");
    S->E = parseExpr();
    expectPunct(")");
    // The switch value lives in a hidden compiler-generated local so the
    // compare chain can reload it per case.
    auto Hidden = std::make_unique<VarDecl>();
    Hidden->Name = formatString("$switch%d", Line);
    S->Decl = std::move(Hidden);
    expectPunct("{");
    while (!peek().isPunct("}") && peek().K != Token::End) {
      if (peek().isKeyword("case")) {
        get();
        // Case labels are integer constant expressions: an optional minus
        // followed by an integer or character literal.
        bool Neg = consumePunct("-");
        int64_t V = 0;
        if (peek().K == Token::IntLit || peek().K == Token::CharLit)
          V = get().Value;
        else
          error("case label must be an integer constant");
        expectPunct(":");
        S->Cases.emplace_back(Neg ? -V : V, int(S->Body.size()));
        continue;
      }
      if (peek().isKeyword("default")) {
        get();
        expectPunct(":");
        if (S->DefaultIndex >= 0)
          error("duplicate default label");
        S->DefaultIndex = int(S->Body.size());
        continue;
      }
      S->Body.push_back(parseStatement());
    }
    expectPunct("}");
    return S;
  }

  if (peek().isKeyword("return")) {
    get();
    auto S = std::make_unique<Stmt>(Stmt::Return);
    S->Line = Line;
    if (!peek().isPunct(";"))
      S->E = parseExpr();
    expectPunct(";");
    return S;
  }

  if (peek().isKeyword("break")) {
    get();
    auto S = std::make_unique<Stmt>(Stmt::Break);
    S->Line = Line;
    expectPunct(";");
    return S;
  }

  if (peek().isKeyword("continue")) {
    get();
    auto S = std::make_unique<Stmt>(Stmt::Continue);
    S->Line = Line;
    expectPunct(";");
    return S;
  }

  if (atTypeStart()) {
    auto S = std::make_unique<Stmt>(Stmt::DeclStmt);
    S->Line = Line;
    const Type *T = parseTypeSpec();
    if (peek().K != Token::Ident) {
      error("expected local variable name");
      consumePunct(";");
      return S;
    }
    auto V = std::make_unique<VarDecl>();
    V->Name = get().Text;
    V->Ty = parseArraySuffix(T);
    if (consumePunct("="))
      V->Init = parseAssign();
    S->Decl = std::move(V);
    expectPunct(";");
    return S;
  }

  auto S = std::make_unique<Stmt>(Stmt::ExprStmt);
  S->Line = Line;
  S->E = parseExpr();
  expectPunct(";");
  return S;
}

ExprPtr Parser::parseAssign() {
  ExprPtr L = parseCond();
  static const char *const AssignOps[] = {"=",  "+=", "-=", "*=",
                                          "/=", "%=", "&=", "|=",
                                          "^=", "<<=", ">>="};
  for (const char *Op : AssignOps) {
    if (peek().isPunct(Op)) {
      get();
      auto E = makeExpr(Expr::Assign);
      E->Op = Op;
      E->Lhs = std::move(L);
      E->Rhs = parseAssign();
      return E;
    }
  }
  return L;
}

ExprPtr Parser::parseCond() {
  ExprPtr C = parseBinary(0);
  if (!peek().isPunct("?"))
    return C;
  get();
  auto E = makeExpr(Expr::Cond);
  E->Lhs = std::move(C);
  E->Rhs = parseExpr();
  expectPunct(":");
  E->Third = parseCond();
  return E;
}

/// Binary operator precedence (higher binds tighter).
static int precOf(const std::string &Op) {
  if (Op == "||") return 1;
  if (Op == "&&") return 2;
  if (Op == "|") return 3;
  if (Op == "^") return 4;
  if (Op == "&") return 5;
  if (Op == "==" || Op == "!=") return 6;
  if (Op == "<" || Op == "<=" || Op == ">" || Op == ">=") return 7;
  if (Op == "<<" || Op == ">>") return 8;
  if (Op == "+" || Op == "-") return 9;
  if (Op == "*" || Op == "/" || Op == "%") return 10;
  return -1;
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr L = parseUnary();
  while (peek().K == Token::Punct) {
    int Prec = precOf(peek().Text);
    if (Prec < 0 || Prec < MinPrec)
      break;
    std::string Op = get().Text;
    ExprPtr R = parseBinary(Prec + 1);
    auto E = makeExpr(Expr::Binary);
    E->Op = Op;
    E->Lhs = std::move(L);
    E->Rhs = std::move(R);
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseUnary() {
  static const char *const UnOps[] = {"-", "!", "~", "*", "&", "++", "--"};
  for (const char *Op : UnOps) {
    if (peek().isPunct(Op)) {
      get();
      auto E = makeExpr(Expr::Unary);
      E->Op = Op;
      E->Lhs = parseUnary();
      return E;
    }
  }
  if (peek().isKeyword("sizeof")) {
    get();
    expectPunct("(");
    auto E = makeExpr(Expr::SizeofTy);
    if (atTypeStart()) {
      const Type *T = parseTypeSpec();
      E->CastTy = T;
    } else {
      // sizeof(expr): parse and keep for Sema to size.
      E->Lhs = parseExpr();
    }
    expectPunct(")");
    return E;
  }
  // Cast: '(' type ')' unary.
  if (peek().isPunct("(") &&
      (peek(1).isKeyword("void") || peek(1).isKeyword("char") ||
       peek(1).isKeyword("int") || peek(1).isKeyword("long") ||
       peek(1).isKeyword("struct"))) {
    get();
    auto E = makeExpr(Expr::Cast);
    E->CastTy = parseTypeSpec();
    expectPunct(")");
    E->Lhs = parseUnary();
    return E;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (true) {
    if (peek().isPunct("[")) {
      get();
      auto N = makeExpr(Expr::Index);
      N->Lhs = std::move(E);
      N->Rhs = parseExpr();
      expectPunct("]");
      E = std::move(N);
      continue;
    }
    if (peek().isPunct("(")) {
      get();
      auto N = makeExpr(Expr::Call);
      if (E->K != Expr::VarRef) {
        error("calls are only supported through a function name");
        return E;
      }
      N->Name = E->Name;
      while (!peek().isPunct(")") && peek().K != Token::End) {
        if (!N->Args.empty())
          expectPunct(",");
        N->Args.push_back(parseAssign());
      }
      expectPunct(")");
      E = std::move(N);
      continue;
    }
    if (peek().isPunct(".") || peek().isPunct("->")) {
      bool Arrow = get().Text == "->";
      if (peek().K != Token::Ident) {
        error("expected field name");
        return E;
      }
      auto N = makeExpr(Expr::Member);
      N->Name = get().Text;
      N->IsArrow = Arrow;
      N->Lhs = std::move(E);
      E = std::move(N);
      continue;
    }
    if (peek().isPunct("++") || peek().isPunct("--")) {
      auto N = makeExpr(Expr::Postfix);
      N->Op = get().Text;
      N->Lhs = std::move(E);
      E = std::move(N);
      continue;
    }
    break;
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  const Token &T = peek();
  if (T.K == Token::IntLit || T.K == Token::CharLit) {
    auto E = makeExpr(Expr::IntLit);
    E->IntValue = get().Value;
    return E;
  }
  if (T.K == Token::StrLit) {
    auto E = makeExpr(Expr::StrLit);
    E->StrValue = get().Str;
    return E;
  }
  if (T.K == Token::Ident) {
    auto E = makeExpr(Expr::VarRef);
    E->Name = get().Text;
    return E;
  }
  if (consumePunct("(")) {
    ExprPtr E = parseExpr();
    expectPunct(")");
    return E;
  }
  error("expected expression, found '" + describe(T) + "'");
  auto E = makeExpr(Expr::IntLit);
  E->IntValue = 0;
  get();
  return E;
}

bool Parser::run() {
  while (peek().K != Token::End)
    parseTopLevel();
  return !Failed;
}

} // namespace

bool mcc::parse(const std::vector<Token> &Tokens, TypeContext &Types,
                TranslationUnit &Out, DiagEngine &Diags) {
  Parser P(Tokens, Types, Out, Diags);
  return P.run();
}
