//===- mcc/Sema.cpp -------------------------------------------------------===//

#include "mcc/Sema.h"

#include <map>

using namespace atom;
using namespace atom::mcc;

namespace {

class Sema {
public:
  Sema(TranslationUnit &Unit, TypeContext &Types, DiagEngine &Diags)
      : Unit(Unit), Types(Types), Diags(Diags) {}

  bool run();

private:
  void error(int Line, const std::string &Msg) {
    Diags.error(Line, Msg);
    Failed = true;
  }

  // Scope management.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declareLocal(VarDecl *V, int Line) {
    if (Scopes.back().count(V->Name))
      error(Line, "redefinition of '" + V->Name + "'");
    Scopes.back()[V->Name] = V;
  }
  const VarDecl *lookupVar(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return F->second;
    }
    auto G = GlobalVars.find(Name);
    return G == GlobalVars.end() ? nullptr : G->second;
  }

  /// Array-to-pointer decay for rvalue use.
  void decay(Expr &E) {
    if (E.Ty && E.Ty->isArray()) {
      E.Ty = Types.ptrTo(E.Ty->Pointee);
      E.IsLValue = false;
      E.DecayedArray = true;
    }
  }

  /// Integer promotion: char -> int.
  const Type *promote(const Type *T) {
    return T->K == Type::Char ? Types.intTy() : T;
  }

  /// Usual arithmetic conversions for two integer types.
  const Type *arith(const Type *A, const Type *B) {
    A = promote(A);
    B = promote(B);
    return (A->K == Type::Long || B->K == Type::Long) ? Types.longTy()
                                                      : Types.intTy();
  }

  bool assignable(const Type *Dst, const Type *Src) {
    if (Dst->isInteger() && Src->isInteger())
      return true;
    if (Dst->isPointer() && Src->isPointer())
      return true; // untyped pointer compatibility
    if (Dst->isPointer() && Src->isInteger())
      return true; // allows p = 0
    if (Dst->isInteger() && Src->isPointer())
      return true; // address arithmetic idioms
    return false;
  }

  void checkExpr(Expr &E);
  void checkCondition(ExprPtr &E) {
    if (!E)
      return;
    checkExpr(*E);
    decay(*E);
    if (E->Ty && !E->Ty->isScalar())
      error(E->Line, "condition must be scalar");
  }
  void checkStmt(Stmt &S);

  TranslationUnit &Unit;
  TypeContext &Types;
  DiagEngine &Diags;
  bool Failed = false;

  std::map<std::string, const VarDecl *> GlobalVars;
  std::map<std::string, const FuncDecl *> FuncsByName;
  std::vector<std::map<std::string, VarDecl *>> Scopes;
  const FuncDecl *CurFunc = nullptr;
  int LoopDepth = 0;
  int SwitchDepth = 0;
};

void Sema::checkExpr(Expr &E) {
  switch (E.K) {
  case Expr::IntLit:
    E.Ty = fitsSigned(E.IntValue, 32) ? Types.intTy() : Types.longTy();
    return;

  case Expr::StrLit:
    E.Ty = Types.ptrTo(Types.charTy());
    return;

  case Expr::VarRef: {
    const VarDecl *V = lookupVar(E.Name);
    if (!V) {
      error(E.Line, "use of undeclared identifier '" + E.Name + "'");
      E.Ty = Types.intTy();
      return;
    }
    E.Var = V;
    E.Ty = V->Ty;
    E.IsLValue = !V->Ty->isArray(); // arrays are addresses, not assignable
    return;
  }

  case Expr::FuncRef:
    error(E.Line, "function name used as a value");
    E.Ty = Types.intTy();
    return;

  case Expr::Unary: {
    checkExpr(*E.Lhs);
    if (E.Op == "*") {
      decay(*E.Lhs);
      if (!E.Lhs->Ty->isPointer() || E.Lhs->Ty->Pointee->K == Type::Void) {
        error(E.Line, "cannot dereference value of type " + E.Lhs->Ty->str());
        E.Ty = Types.intTy();
        return;
      }
      E.Ty = E.Lhs->Ty->Pointee;
      E.IsLValue = !E.Ty->isArray();
      return;
    }
    if (E.Op == "&") {
      if (!E.Lhs->IsLValue && !E.Lhs->Ty->isArray()) {
        error(E.Line, "cannot take the address of an rvalue");
        E.Ty = Types.ptrTo(Types.intTy());
        return;
      }
      const Type *T = E.Lhs->Ty;
      E.Ty = Types.ptrTo(T->isArray() ? T : T);
      return;
    }
    if (E.Op == "++" || E.Op == "--") {
      if (!E.Lhs->IsLValue || !E.Lhs->Ty->isScalar()) {
        error(E.Line, "operand of " + E.Op + " must be a scalar lvalue");
        E.Ty = Types.intTy();
        return;
      }
      E.Ty = E.Lhs->Ty;
      return;
    }
    decay(*E.Lhs);
    if (!E.Lhs->Ty->isScalar()) {
      error(E.Line, "operand of unary " + E.Op + " must be scalar");
      E.Ty = Types.intTy();
      return;
    }
    if (E.Op == "!") {
      E.Ty = Types.intTy();
      return;
    }
    if (!E.Lhs->Ty->isInteger())
      error(E.Line, "operand of unary " + E.Op + " must be integer");
    E.Ty = promote(E.Lhs->Ty);
    return;
  }

  case Expr::Postfix: {
    checkExpr(*E.Lhs);
    if (!E.Lhs->IsLValue || !E.Lhs->Ty->isScalar()) {
      error(E.Line, "operand of postfix " + E.Op + " must be a scalar lvalue");
      E.Ty = Types.intTy();
      return;
    }
    E.Ty = E.Lhs->Ty;
    return;
  }

  case Expr::Binary: {
    checkExpr(*E.Lhs);
    checkExpr(*E.Rhs);
    decay(*E.Lhs);
    decay(*E.Rhs);
    const Type *L = E.Lhs->Ty, *R = E.Rhs->Ty;

    if (E.Op == "&&" || E.Op == "||") {
      if (!L->isScalar() || !R->isScalar())
        error(E.Line, "operands of " + E.Op + " must be scalar");
      E.Ty = Types.intTy();
      return;
    }
    if (E.Op == "==" || E.Op == "!=" || E.Op == "<" || E.Op == "<=" ||
        E.Op == ">" || E.Op == ">=") {
      if (!L->isScalar() || !R->isScalar())
        error(E.Line, "cannot compare these operands");
      E.Ty = Types.intTy();
      return;
    }
    if (E.Op == "+" && L->isPointer() && R->isInteger()) {
      E.Ty = L;
      return;
    }
    if (E.Op == "+" && L->isInteger() && R->isPointer()) {
      E.Ty = R;
      return;
    }
    if (E.Op == "-" && L->isPointer() && R->isInteger()) {
      E.Ty = L;
      return;
    }
    if (E.Op == "-" && L->isPointer() && R->isPointer()) {
      E.Ty = Types.longTy(); // element difference
      return;
    }
    if (!L->isInteger() || !R->isInteger()) {
      error(E.Line, "invalid operands to binary " + E.Op + " (" + L->str() +
                        ", " + R->str() + ")");
      E.Ty = Types.intTy();
      return;
    }
    if (E.Op == "<<" || E.Op == ">>") {
      E.Ty = promote(L);
      return;
    }
    E.Ty = arith(L, R);
    return;
  }

  case Expr::Assign: {
    checkExpr(*E.Lhs);
    checkExpr(*E.Rhs);
    decay(*E.Rhs);
    if (!E.Lhs->IsLValue || !E.Lhs->Ty->isScalar()) {
      error(E.Line, "left side of assignment must be a scalar lvalue");
      E.Ty = Types.intTy();
      return;
    }
    if (!assignable(E.Lhs->Ty, E.Rhs->Ty))
      error(E.Line, "cannot assign " + E.Rhs->Ty->str() + " to " +
                        E.Lhs->Ty->str());
    if (E.Op != "=") {
      // Compound assignment: pointer += int is allowed for "+="/"-=".
      bool PtrOk = (E.Op == "+=" || E.Op == "-=") && E.Lhs->Ty->isPointer() &&
                   E.Rhs->Ty->isInteger();
      if (!PtrOk && (!E.Lhs->Ty->isInteger() || !E.Rhs->Ty->isInteger()))
        error(E.Line, "invalid compound assignment");
    }
    E.Ty = E.Lhs->Ty;
    return;
  }

  case Expr::Cond: {
    checkCondition(E.Lhs);
    checkExpr(*E.Rhs);
    checkExpr(*E.Third);
    decay(*E.Rhs);
    decay(*E.Third);
    const Type *A = E.Rhs->Ty, *B = E.Third->Ty;
    if (A->isInteger() && B->isInteger())
      E.Ty = arith(A, B);
    else if (A->isPointer() && (B->isPointer() || B->isInteger()))
      E.Ty = A;
    else if (B->isPointer() && A->isInteger())
      E.Ty = B;
    else {
      error(E.Line, "incompatible branches of ?:");
      E.Ty = Types.intTy();
    }
    return;
  }

  case Expr::Call: {
    // __vararg(i) builtin reads the i-th variadic stack argument.
    if (E.Name == "__vararg") {
      if (E.Args.size() != 1) {
        error(E.Line, "__vararg takes one argument");
      } else {
        checkExpr(*E.Args[0]);
        decay(*E.Args[0]);
        if (!CurFunc || !CurFunc->IsVariadic)
          error(E.Line, "__vararg used outside a variadic function");
      }
      E.Ty = Types.longTy();
      return;
    }
    auto It = FuncsByName.find(E.Name);
    if (It == FuncsByName.end()) {
      error(E.Line, "call to undeclared function '" + E.Name + "'");
      E.Ty = Types.intTy();
      return;
    }
    const FuncDecl *F = It->second;
    E.Callee = F;
    if (E.Args.size() < F->Params.size() ||
        (!F->IsVariadic && E.Args.size() > F->Params.size())) {
      error(E.Line, formatString("wrong number of arguments to '%s'",
                                 F->Name.c_str()));
    }
    if (E.Args.size() > 16)
      error(E.Line, "too many arguments (max 16)");
    if (F->IsVariadic && F->Params.size() > 6)
      error(E.Line, "variadic functions support at most 6 named parameters");
    for (size_t I = 0; I < E.Args.size(); ++I) {
      checkExpr(*E.Args[I]);
      decay(*E.Args[I]);
      if (!E.Args[I]->Ty->isScalar()) {
        error(E.Args[I]->Line, "arguments must be scalar");
        continue;
      }
      if (I < F->Params.size() &&
          !assignable(F->Params[I]->Ty, E.Args[I]->Ty))
        error(E.Args[I]->Line,
              formatString("argument %zu to '%s' has incompatible type",
                           I + 1, F->Name.c_str()));
    }
    E.Ty = F->RetTy;
    return;
  }

  case Expr::Index: {
    checkExpr(*E.Lhs);
    checkExpr(*E.Rhs);
    decay(*E.Rhs);
    const Type *Base = E.Lhs->Ty;
    if (Base->isArray())
      Base = Types.ptrTo(Base->Pointee);
    else
      decay(*E.Lhs);
    if (!Base->isPointer() && !E.Lhs->Ty->isPointer()) {
      error(E.Line, "subscripted value is not a pointer or array");
      E.Ty = Types.intTy();
      return;
    }
    if (E.Lhs->Ty->isPointer())
      Base = E.Lhs->Ty;
    if (!E.Rhs->Ty->isInteger())
      error(E.Line, "array subscript must be an integer");
    E.Ty = Base->Pointee;
    E.IsLValue = !E.Ty->isArray();
    return;
  }

  case Expr::Member: {
    checkExpr(*E.Lhs);
    const StructDef *SD = nullptr;
    if (E.IsArrow) {
      decay(*E.Lhs);
      if (!E.Lhs->Ty->isPointer() || !E.Lhs->Ty->Pointee->isStruct()) {
        error(E.Line, "-> requires a pointer to struct");
        E.Ty = Types.intTy();
        return;
      }
      SD = E.Lhs->Ty->Pointee->SD;
    } else {
      if (!E.Lhs->Ty->isStruct() || !E.Lhs->IsLValue) {
        error(E.Line, ". requires a struct lvalue");
        E.Ty = Types.intTy();
        return;
      }
      SD = E.Lhs->Ty->SD;
    }
    const StructField *F = SD->findField(E.Name);
    if (!F) {
      error(E.Line,
            "no field '" + E.Name + "' in struct '" + SD->Name + "'");
      E.Ty = Types.intTy();
      return;
    }
    E.Ty = F->Ty;
    E.IsLValue = !F->Ty->isArray();
    return;
  }

  case Expr::Cast: {
    checkExpr(*E.Lhs);
    decay(*E.Lhs);
    if (E.CastTy->K != Type::Void &&
        (!E.CastTy->isScalar() || !E.Lhs->Ty->isScalar()))
      error(E.Line, "invalid cast");
    E.Ty = E.CastTy;
    return;
  }

  case Expr::SizeofTy: {
    const Type *T = E.CastTy;
    if (!T) {
      checkExpr(*E.Lhs);
      T = E.Lhs->Ty;
    }
    E.IntValue = int64_t(T->size());
    E.Ty = Types.longTy();
    return;
  }
  }
}

void Sema::checkStmt(Stmt &S) {
  switch (S.K) {
  case Stmt::Block:
    pushScope();
    for (StmtPtr &Sub : S.Body)
      checkStmt(*Sub);
    popScope();
    return;
  case Stmt::If:
    checkCondition(S.Cond);
    checkStmt(*S.Then);
    if (S.Else)
      checkStmt(*S.Else);
    return;
  case Stmt::While:
  case Stmt::DoWhile:
    checkCondition(S.Cond);
    ++LoopDepth;
    checkStmt(*S.Loop);
    --LoopDepth;
    return;
  case Stmt::For:
    if (S.Init)
      checkExpr(*S.Init);
    checkCondition(S.Cond);
    if (S.Step)
      checkExpr(*S.Step);
    ++LoopDepth;
    checkStmt(*S.Loop);
    --LoopDepth;
    return;
  case Stmt::Switch: {
    checkExpr(*S.E);
    decay(*S.E);
    if (!S.E->Ty->isInteger())
      error(S.Line, "switch value must be an integer");
    // Duplicate case values.
    for (size_t I = 0; I < S.Cases.size(); ++I)
      for (size_t J = I + 1; J < S.Cases.size(); ++J)
        if (S.Cases[I].first == S.Cases[J].first)
          error(S.Line, formatString("duplicate case value %lld",
                                     (long long)S.Cases[I].first));
    S.Decl->Ty = Types.longTy();
    ++SwitchDepth;
    pushScope();
    for (StmtPtr &Sub : S.Body)
      checkStmt(*Sub);
    popScope();
    --SwitchDepth;
    return;
  }
  case Stmt::Return:
    if (S.E) {
      checkExpr(*S.E);
      decay(*S.E);
      if (CurFunc->RetTy->K == Type::Void)
        error(S.Line, "void function returns a value");
      else if (!assignable(CurFunc->RetTy, S.E->Ty))
        error(S.Line, "incompatible return type");
    } else if (CurFunc->RetTy->K != Type::Void) {
      error(S.Line, "non-void function returns no value");
    }
    return;
  case Stmt::Break:
    if (!LoopDepth && !SwitchDepth)
      error(S.Line, "break outside a loop or switch");
    return;
  case Stmt::Continue:
    if (!LoopDepth)
      error(S.Line, "continue outside a loop");
    return;
  case Stmt::ExprStmt:
    checkExpr(*S.E);
    return;
  case Stmt::DeclStmt: {
    VarDecl *V = S.Decl.get();
    if (V->Ty->size() == 0) {
      error(S.Line, "variable '" + V->Name + "' has incomplete type");
      return;
    }
    if (V->Init) {
      checkExpr(*V->Init);
      decay(*V->Init);
      if (!V->Ty->isScalar())
        error(S.Line, "only scalar locals can be initialized");
      else if (!assignable(V->Ty, V->Init->Ty))
        error(S.Line, "incompatible initializer for '" + V->Name + "'");
    }
    declareLocal(V, S.Line);
    return;
  }
  case Stmt::Empty:
    return;
  }
}

bool Sema::run() {
  // Register functions (a later definition overrides an extern declaration).
  for (auto &F : Unit.Funcs) {
    auto It = FuncsByName.find(F->Name);
    if (It != FuncsByName.end()) {
      if (It->second->Body && F->Body) {
        error(F->Line, "redefinition of function '" + F->Name + "'");
        continue;
      }
      if (F->Body)
        FuncsByName[F->Name] = F.get();
      continue;
    }
    FuncsByName[F->Name] = F.get();
  }

  // Register and check globals.
  for (auto &G : Unit.Globals) {
    if (GlobalVars.count(G->Name)) {
      error(0, "redefinition of global '" + G->Name + "'");
      continue;
    }
    GlobalVars[G->Name] = G.get();
    if (!G->IsExtern && G->Ty->size() == 0)
      error(0, "global '" + G->Name + "' has incomplete type");
    if (G->Init) {
      checkExpr(*G->Init);
      decay(*G->Init);
      // Constant-ness is validated by codegen (int literal, negated
      // literal, sizeof, or string literal).
    }
  }

  for (auto &F : Unit.Funcs) {
    if (!F->Body)
      continue;
    CurFunc = F.get();
    pushScope();
    for (auto &P : F->Params)
      if (!P->Name.empty())
        declareLocal(P.get(), F->Line);
    // The body is a Block which pushes its own scope; parameters live in
    // the enclosing one.
    checkStmt(*F->Body);
    popScope();
    CurFunc = nullptr;
  }
  return !Failed;
}

} // namespace

bool mcc::analyze(TranslationUnit &Unit, TypeContext &Types,
                  DiagEngine &Diags) {
  Sema S(Unit, Types, Diags);
  return S.run();
}
