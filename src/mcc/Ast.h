//===- mcc/Ast.h - Mini-C abstract syntax tree ------------------*- C++ -*-===//
//
// The mini-C language: the C subset in which analysis routines and the
// synthetic workloads are written. Supported: char/int/long/void, pointers,
// arrays, structs, the full statement set, variadic declarations (used by
// printf), and the usual expression operators.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_MCC_AST_H
#define ATOM_MCC_AST_H

#include "support/Support.h"

#include <memory>
#include <string>
#include <vector>

namespace atom {
namespace mcc {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

struct StructDef;

struct Type {
  enum Kind { Void, Char, Int, Long, Ptr, Array, Struct } K = Void;
  const Type *Pointee = nullptr; ///< Ptr/Array element type.
  int64_t ArraySize = 0;
  const StructDef *SD = nullptr;

  bool isInteger() const { return K == Char || K == Int || K == Long; }
  bool isPointer() const { return K == Ptr; }
  bool isScalar() const { return isInteger() || isPointer(); }
  bool isArray() const { return K == Array; }
  bool isStruct() const { return K == Struct; }

  uint64_t size() const;
  uint64_t align() const;
  std::string str() const;
};

struct StructField {
  std::string Name;
  const Type *Ty = nullptr;
  uint64_t Offset = 0;
};

struct StructDef {
  std::string Name;
  std::vector<StructField> Fields;
  uint64_t Size = 0;
  uint64_t Align = 1;
  bool Complete = false;

  const StructField *findField(const std::string &N) const {
    for (const StructField &F : Fields)
      if (F.Name == N)
        return &F;
    return nullptr;
  }
};

/// Owns and uniques types. One per compilation.
class TypeContext {
public:
  TypeContext();

  const Type *voidTy() const { return &VoidT; }
  const Type *charTy() const { return &CharT; }
  const Type *intTy() const { return &IntT; }
  const Type *longTy() const { return &LongT; }
  const Type *ptrTo(const Type *Pointee);
  const Type *arrayOf(const Type *Elem, int64_t N);
  const Type *structTy(const StructDef *SD);
  StructDef *createStruct(const std::string &Name);
  StructDef *findStruct(const std::string &Name);

private:
  Type VoidT, CharT, IntT, LongT;
  std::vector<std::unique_ptr<Type>> Owned;
  std::vector<std::unique_ptr<StructDef>> Structs;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct Expr;
struct FuncDecl;
struct VarDecl;

using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum Kind {
    IntLit,
    StrLit,
    VarRef,   ///< Resolved to a VarDecl (global, local, or parameter).
    FuncRef,  ///< Function name used as a call target.
    Unary,    ///< - ! ~ * & ++x --x
    Postfix,  ///< x++ x--
    Binary,   ///< arithmetic / comparison / logical / shifts
    Assign,   ///< = += -= *= /=
    Cond,     ///< ?:
    Call,
    Index,    ///< a[i]
    Member,   ///< s.f and p->f
    Cast,
    SizeofTy,
  } K;

  int Line = 0;
  const Type *Ty = nullptr; ///< Set by Sema.
  bool IsLValue = false;    ///< Set by Sema.
  bool DecayedArray = false; ///< Array-to-pointer decay applied: the
                             ///< expression's value is an address.

  // IntLit / SizeofTy value.
  int64_t IntValue = 0;
  // StrLit contents (without quotes, escapes resolved).
  std::string StrValue;
  // VarRef / FuncRef / Member field / Call callee name.
  std::string Name;
  // Resolved declarations (Sema).
  const VarDecl *Var = nullptr;
  const FuncDecl *Callee = nullptr;

  // Operator spelling for Unary/Postfix/Binary/Assign ("+", "<=", "+=", ...).
  std::string Op;

  ExprPtr Lhs, Rhs, Third; ///< Sub-expressions (Third for ?:).
  std::vector<ExprPtr> Args;
  const Type *CastTy = nullptr; ///< Cast/SizeofTy target.
  bool IsArrow = false;         ///< Member: -> vs .

  explicit Expr(Kind K) : K(K) {}
};

//===----------------------------------------------------------------------===//
// Statements and declarations
//===----------------------------------------------------------------------===//

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct VarDecl {
  std::string Name;
  const Type *Ty = nullptr;
  ExprPtr Init;  ///< Optional initializer.
  bool IsGlobal = false;
  bool IsExtern = false;
  bool IsParam = false;
  int ParamIndex = -1;
  // Codegen info.
  mutable int64_t FrameOffset = 0; ///< Locals/params: sp-relative offset.
  mutable std::string AsmLabel;    ///< Globals: symbol name.
};

struct Stmt {
  enum Kind {
    Block,
    If,
    While,
    DoWhile,
    For,
    Switch,
    Return,
    Break,
    Continue,
    ExprStmt,
    DeclStmt,
    Empty,
  } K;

  int Line = 0;
  std::vector<StmtPtr> Body;       ///< Block / Switch body (flat).
  ExprPtr Cond, Init, Step, E;     ///< Control/expression payloads.
  StmtPtr Then, Else, Loop;        ///< Sub-statements.
  std::unique_ptr<VarDecl> Decl;   ///< DeclStmt; Switch: hidden control
                                   ///< variable holding the switch value.
  /// Switch only: (case value, index into Body where the case starts).
  std::vector<std::pair<int64_t, int>> Cases;
  int DefaultIndex = -1; ///< Switch: Body index of 'default:', or -1.

  explicit Stmt(Kind K) : K(K) {}
};

struct FuncDecl {
  std::string Name;
  const Type *RetTy = nullptr;
  std::vector<std::unique_ptr<VarDecl>> Params;
  bool IsVariadic = false;
  bool IsExtern = false; ///< Declaration only.
  StmtPtr Body;          ///< Null for extern declarations.
  int Line = 0;
};

/// A parsed translation unit.
struct TranslationUnit {
  std::vector<std::unique_ptr<VarDecl>> Globals;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;
};

} // namespace mcc
} // namespace atom

#endif // ATOM_MCC_AST_H
