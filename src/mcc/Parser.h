//===- mcc/Parser.h - Mini-C parser -----------------------------*- C++ -*-===//

#ifndef ATOM_MCC_PARSER_H
#define ATOM_MCC_PARSER_H

#include "mcc/Ast.h"
#include "mcc/Lexer.h"

namespace atom {
namespace mcc {

/// Parses a token stream into a TranslationUnit. Types are created in
/// \p Types. Returns false on syntax errors.
bool parse(const std::vector<Token> &Tokens, TypeContext &Types,
           TranslationUnit &Out, DiagEngine &Diags);

} // namespace mcc
} // namespace atom

#endif // ATOM_MCC_PARSER_H
