//===- mcc/CodeGen.cpp - AST -> AXP64-lite assembly -----------------------===//
//
// Calling convention implemented here (and relied upon by ATOM's data-flow
// summaries): first six arguments in a0..a5, rest on the stack at the
// caller's sp; variadic arguments all go to the stack after the named ones;
// return value in v0; t0..t11 are scratch and never live across calls;
// s0..s5/fp are never used (so analysis routines modify only caller-save
// registers, which is what ATOM must save at instrumentation points).
//
// Frame layout, offsets from sp after the prologue:
//   [0,128)    outgoing stack-argument area (only if the function calls)
//   [128,384)  argument staging slots (32)    (only if the function calls)
//   [S,S+256)  expression spill slots (32)
//   [...]      locals and parameter home slots
//   [F-8,F)    saved ra
//
//===----------------------------------------------------------------------===//

#include "mcc/CodeGen.h"

#include "isa/Isa.h"

#include <map>

using namespace atom;
using namespace atom::mcc;
using namespace atom::isa;

namespace {

constexpr int NumTempRegs = 12;
constexpr unsigned TempRegs[NumTempRegs] = {RegT0, RegT1, RegT2,  RegT3,
                                            RegT4, RegT5, RegT6,  RegT7,
                                            RegT8, RegT9, RegT10, RegT11};
constexpr int NumStageSlots = 32;
constexpr int NumSpillSlots = 32;

/// A handle to an expression value held by the register/spill manager.
struct Temp {
  int Id = -1;
  bool valid() const { return Id >= 0; }
};

class CodeGen {
public:
  CodeGen(const TranslationUnit &Unit, DiagEngine &Diags)
      : Unit(Unit), Diags(Diags) {}

  bool run(std::string &AsmOut);

private:
  void error(int Line, const std::string &Msg) {
    Diags.error(Line, Msg);
    Failed = true;
  }

  //===--------------------------------------------------------------------===
  // Assembly emission
  //===--------------------------------------------------------------------===

  void emit(const std::string &S) { Text += "        " + S + "\n"; }
  void emitLabel(const std::string &L) { Text += L + ":\n"; }
  std::string newLabel() {
    return formatString("L$%s$%d", CurFuncName.c_str(), LabelCounter++);
  }
  const char *regN(unsigned R) { return regName(R); }

  //===--------------------------------------------------------------------===
  // Temp / spill management
  //===--------------------------------------------------------------------===

  struct TempInfo {
    int Reg = -1;       ///< Index into TempRegs, or -1 if spilled.
    int Slot = -1;      ///< Spill slot, or -1.
    bool Live = false;
    uint64_t Stamp = 0; ///< For LRU spilling.
  };

  int64_t spillSlotOffset(int Slot) const { return SpillBase + 8 * Slot; }
  int64_t stageSlotOffset(int Slot) const { return StageBase + 8 * Slot; }

  int allocSpillSlot(int Line) {
    for (int I = 0; I < NumSpillSlots; ++I)
      if (!SpillUsed[I]) {
        SpillUsed[I] = true;
        return I;
      }
    error(Line, "expression too complex (out of spill slots)");
    return 0;
  }
  void freeSpillSlot(int S) { SpillUsed[S] = false; }

  /// Spills the least-recently-used in-register temp to a slot.
  void spillOne(int Line) {
    int Victim = -1;
    uint64_t Best = ~uint64_t(0);
    for (size_t I = 0; I < Temps.size(); ++I)
      if (Temps[I].Live && Temps[I].Reg >= 0 && Temps[I].Stamp < Best) {
        Best = Temps[I].Stamp;
        Victim = int(I);
      }
    assert(Victim >= 0 && "no spillable temp");
    TempInfo &T = Temps[size_t(Victim)];
    if (T.Slot < 0)
      T.Slot = allocSpillSlot(Line);
    emit(formatString("stq %s, %lld(sp)", regN(TempRegs[T.Reg]),
                      (long long)spillSlotOffset(T.Slot)));
    RegHolder[T.Reg] = -1;
    T.Reg = -1;
  }

  int takeFreeReg(int Line) {
    for (int R = 0; R < NumTempRegs; ++R)
      if (RegHolder[R] < 0)
        return R;
    spillOne(Line);
    for (int R = 0; R < NumTempRegs; ++R)
      if (RegHolder[R] < 0)
        return R;
    fatalError("spill did not free a register");
  }

  Temp allocTemp(int Line) {
    int R = takeFreeReg(Line);
    TempInfo T;
    T.Reg = R;
    T.Live = true;
    T.Stamp = ++StampCounter;
    Temps.push_back(T);
    int Id = int(Temps.size() - 1);
    RegHolder[R] = Id;
    return Temp{Id};
  }

  /// Ensures \p T is in a register and returns its name.
  unsigned regOf(Temp T, int Line) {
    assert(T.valid() && Temps[size_t(T.Id)].Live && "dead temp");
    TempInfo &I = Temps[size_t(T.Id)];
    I.Stamp = ++StampCounter;
    if (I.Reg >= 0)
      return TempRegs[I.Reg];
    int R = takeFreeReg(Line);
    I.Reg = R;
    RegHolder[R] = T.Id;
    emit(formatString("ldq %s, %lld(sp)", regN(TempRegs[R]),
                      (long long)spillSlotOffset(I.Slot)));
    freeSpillSlot(I.Slot);
    I.Slot = -1;
    return TempRegs[R];
  }

  void freeTemp(Temp T) {
    if (!T.valid())
      return;
    TempInfo &I = Temps[size_t(T.Id)];
    assert(I.Live && "double free of temp");
    I.Live = false;
    if (I.Reg >= 0)
      RegHolder[I.Reg] = -1;
    if (I.Slot >= 0)
      freeSpillSlot(I.Slot);
    I.Reg = I.Slot = -1;
  }

  /// Spills every live temp to memory (before calls and before any
  /// intra-expression control flow, so both paths of a branch agree on
  /// where values live).
  void spillAllLive(int Line) {
    for (size_t I = 0; I < Temps.size(); ++I) {
      TempInfo &T = Temps[I];
      if (!T.Live || T.Reg < 0)
        continue;
      if (T.Slot < 0)
        T.Slot = allocSpillSlot(Line);
      emit(formatString("stq %s, %lld(sp)", regN(TempRegs[T.Reg]),
                        (long long)spillSlotOffset(T.Slot)));
      RegHolder[T.Reg] = -1;
      T.Reg = -1;
    }
  }

  void assertAllFree(int Line) {
    for (const TempInfo &T : Temps)
      if (T.Live)
        fatalError(formatString("temp leak near line %d", Line));
    Temps.clear();
  }

  //===--------------------------------------------------------------------===
  // Expression generation
  //===--------------------------------------------------------------------===

  static bool isWordType(const Type *T) { return T->K == Type::Int; }

  /// Emits a load of *Addr with the memory type \p T into \p Dst.
  void emitLoad(unsigned Dst, unsigned Addr, int64_t Disp, const Type *T) {
    const char *Op = "ldq";
    if (T->K == Type::Char)
      Op = "ldbu";
    else if (T->K == Type::Int)
      Op = "ldl";
    emit(formatString("%s %s, %lld(%s)", Op, regN(Dst), (long long)Disp,
                      regN(Addr)));
  }

  void emitStore(unsigned Src, unsigned Addr, int64_t Disp, const Type *T) {
    const char *Op = "stq";
    if (T->K == Type::Char)
      Op = "stb";
    else if (T->K == Type::Int)
      Op = "stl";
    emit(formatString("%s %s, %lld(%s)", Op, regN(Src), (long long)Disp,
                      regN(Addr)));
  }

  /// Re-establishes the register invariant after converting to \p To.
  void emitConvert(unsigned R, const Type *From, const Type *To) {
    if (From == To)
      return;
    if (To->K == Type::Int && From->K != Type::Int &&
        From->K != Type::Char)
      emit(formatString("addl %s, #0, %s", regN(R), regN(R)));
    else if (To->K == Type::Char)
      emit(formatString("and %s, #255, %s", regN(R), regN(R)));
    // Widening (char->int/long, int->long) is a no-op: values are already
    // sign/zero extended in registers.
  }

  /// Multiplies the value in \p T by \p Factor (pointer scaling).
  void emitScale(Temp T, uint64_t Factor, int Line) {
    if (Factor == 1)
      return;
    unsigned R = regOf(T, Line);
    if ((Factor & (Factor - 1)) == 0) {
      unsigned Sh = 0;
      while ((uint64_t(1) << Sh) < Factor)
        ++Sh;
      emit(formatString("sll %s, #%u, %s", regN(R), Sh, regN(R)));
      return;
    }
    if (Factor <= 255) {
      emit(formatString("mulq %s, #%llu, %s", regN(R),
                        (unsigned long long)Factor, regN(R)));
      return;
    }
    Temp F = allocTemp(Line);
    unsigned FR = regOf(F, Line);
    R = regOf(T, Line);
    emit(formatString("lconst %s, %llu", regN(FR),
                      (unsigned long long)Factor));
    emit(formatString("mulq %s, %s, %s", regN(R), regN(FR), regN(R)));
    freeTemp(F);
  }

  std::string stringLabel(const std::string &S) {
    for (auto &[L, V] : Strings)
      if (V == S)
        return L;
    std::string L = formatString("Lstr$%d", int(Strings.size()));
    Strings.emplace_back(L, S);
    return L;
  }

  Temp genExpr(const Expr &E);
  Temp genAddr(const Expr &E);
  Temp genIncDec(const Expr &E, bool IsPre, bool IsInc);
  Temp genShortCircuit(const Expr &E);
  Temp genCondExpr(const Expr &E);
  Temp genCall(const Expr &E);
  Temp genBinaryOp(const std::string &Op, Temp L, Temp R, const Type *LT,
                   const Type *RT, const Type *ResTy, int Line);
  /// Stores the value of \p V (typed \p ValTy) through the lvalue \p E.
  void genStoreTo(const Expr &E, Temp V, const Type *ValTy);

  //===--------------------------------------------------------------------===
  // Statements and functions
  //===--------------------------------------------------------------------===

  void genStmt(const Stmt &S);
  void genFunction(const FuncDecl &F);
  void layoutFrame(const FuncDecl &F);
  void collectLocals(const Stmt &S);
  static bool stmtHasCall(const Stmt &S);
  static bool exprHasCall(const Expr &E);

  bool genGlobal(const VarDecl &G);
  bool foldConst(const Expr &E, int64_t &V, std::string &SymOut);

  //===--------------------------------------------------------------------===

  const TranslationUnit &Unit;
  DiagEngine &Diags;
  bool Failed = false;

  std::string Text; ///< .text body.
  std::string DataSection;
  std::string BssSection;
  std::vector<std::pair<std::string, std::string>> Strings;

  // Per-function state.
  std::string CurFuncName;
  const FuncDecl *CurFunc = nullptr;
  int LabelCounter = 0;
  int64_t FrameSize = 0;
  int64_t StageBase = 0, SpillBase = 0;
  std::string RetLabel;
  std::vector<std::string> BreakLabels, ContinueLabels;

  std::vector<TempInfo> Temps;
  int RegHolder[NumTempRegs];
  bool SpillUsed[NumSpillSlots] = {};
  uint64_t StampCounter = 0;
  int StageDepth = 0;
};

//===----------------------------------------------------------------------===//
// Frame layout
//===----------------------------------------------------------------------===//

bool CodeGen::exprHasCall(const Expr &E) {
  if (E.K == Expr::Call && E.Name != "__vararg")
    return true;
  for (const ExprPtr *Sub : {&E.Lhs, &E.Rhs, &E.Third})
    if (*Sub && exprHasCall(**Sub))
      return true;
  for (const ExprPtr &A : E.Args)
    if (exprHasCall(*A))
      return true;
  return false;
}

bool CodeGen::stmtHasCall(const Stmt &S) {
  for (const ExprPtr *E : {&S.Cond, &S.Init, &S.Step, &S.E})
    if (*E && exprHasCall(**E))
      return true;
  if (S.Decl && S.Decl->Init && exprHasCall(*S.Decl->Init))
    return true;
  for (const StmtPtr &Sub : S.Body)
    if (Sub && stmtHasCall(*Sub))
      return true;
  for (const StmtPtr *Sub : {&S.Then, &S.Else, &S.Loop})
    if (*Sub && stmtHasCall(**Sub))
      return true;
  return false;
}

void CodeGen::collectLocals(const Stmt &S) {
  if ((S.K == Stmt::DeclStmt || S.K == Stmt::Switch) && S.Decl) {
    const VarDecl *V = S.Decl.get();
    uint64_t Align = std::min<uint64_t>(8, std::max<uint64_t>(V->Ty->align(), 1));
    FrameSize = int64_t(alignTo(uint64_t(FrameSize), Align));
    V->FrameOffset = FrameSize;
    FrameSize += int64_t(alignTo(std::max<uint64_t>(V->Ty->size(), 8), 8));
  }
  for (const StmtPtr &Sub : S.Body)
    if (Sub)
      collectLocals(*Sub);
  for (const StmtPtr *Sub : {&S.Then, &S.Else, &S.Loop})
    if (*Sub)
      collectLocals(**Sub);
}

void CodeGen::layoutFrame(const FuncDecl &F) {
  bool HasCalls = F.Body && stmtHasCall(*F.Body);
  int64_t OutArgBytes = HasCalls ? 128 : 0;
  int64_t StageBytes = HasCalls ? 8 * NumStageSlots : 0;
  StageBase = OutArgBytes;
  SpillBase = OutArgBytes + StageBytes;
  FrameSize = SpillBase + 8 * NumSpillSlots;

  // Parameter home slots.
  for (const auto &P : F.Params) {
    P->FrameOffset = FrameSize;
    FrameSize += 8;
  }
  // Locals.
  if (F.Body)
    collectLocals(*F.Body);
  // Saved ra.
  FrameSize += 8;
  FrameSize = int64_t(alignTo(uint64_t(FrameSize), 16));
  if (FrameSize > 32000)
    error(F.Line, "stack frame of '" + F.Name +
                      "' too large; move large arrays to globals");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Temp CodeGen::genAddr(const Expr &E) {
  switch (E.K) {
  case Expr::VarRef: {
    const VarDecl *V = E.Var;
    Temp T = allocTemp(E.Line);
    unsigned R = regOf(T, E.Line);
    if (V->IsGlobal)
      emit(formatString("laddr %s, %s", regN(R), V->Name.c_str()));
    else
      emit(formatString("lda %s, %lld(sp)", regN(R),
                        (long long)V->FrameOffset));
    return T;
  }
  case Expr::Unary:
    assert(E.Op == "*" && "not an lvalue unary");
    return genExpr(*E.Lhs);
  case Expr::Index: {
    Temp Base = genExpr(*E.Lhs); // pointer or array address
    Temp Idx = genExpr(*E.Rhs);
    uint64_t ElemSize =
        E.Lhs->Ty->isPointer() ? E.Lhs->Ty->Pointee->size()
                               : E.Lhs->Ty->Pointee->size();
    emitScale(Idx, ElemSize, E.Line);
    unsigned BR = regOf(Base, E.Line);
    unsigned IR = regOf(Idx, E.Line);
    emit(formatString("addq %s, %s, %s", regN(BR), regN(IR), regN(BR)));
    freeTemp(Idx);
    return Base;
  }
  case Expr::Member: {
    Temp Base = E.IsArrow ? genExpr(*E.Lhs) : genAddr(*E.Lhs);
    const StructDef *SD =
        E.IsArrow ? E.Lhs->Ty->Pointee->SD : E.Lhs->Ty->SD;
    const StructField *F = SD->findField(E.Name);
    assert(F && "sema missed field");
    if (F->Offset) {
      unsigned R = regOf(Base, E.Line);
      if (fitsSigned(int64_t(F->Offset), 16))
        emit(formatString("lda %s, %llu(%s)", regN(R),
                          (unsigned long long)F->Offset, regN(R)));
      else
        error(E.Line, "struct field offset too large");
    }
    return Base;
  }
  default:
    fatalError("genAddr on non-lvalue");
  }
}

Temp CodeGen::genBinaryOp(const std::string &Op, Temp L, Temp R,
                          const Type *LT, const Type *RT, const Type *ResTy,
                          int Line) {
  // Pointer arithmetic scaling.
  if ((Op == "+" || Op == "-") && LT->isPointer() && RT->isInteger())
    emitScale(R, LT->Pointee->size(), Line);
  else if (Op == "+" && LT->isInteger() && RT->isPointer())
    emitScale(L, RT->Pointee->size(), Line);

  unsigned LR = regOf(L, Line);
  unsigned RR = regOf(R, Line);
  bool Word = isWordType(ResTy); // 32-bit operation
  bool Unsigned = LT->isPointer() || RT->isPointer();
  std::string D = regN(LR); // reuse the left register for the result

  auto op3 = [&](const char *M) {
    emit(formatString("%s %s, %s, %s", M, regN(LR), regN(RR), D.c_str()));
  };
  auto resext = [&]() {
    if (Word)
      emit(formatString("addl %s, #0, %s", D.c_str(), D.c_str()));
  };

  if (Op == "+") {
    op3(Word ? "addl" : "addq");
  } else if (Op == "-") {
    op3(Word ? "subl" : "subq");
    if (LT->isPointer() && RT->isPointer()) {
      // Pointer difference: divide by element size.
      uint64_t Sz = LT->Pointee->size();
      if (Sz > 1) {
        if ((Sz & (Sz - 1)) == 0) {
          unsigned Sh = 0;
          while ((uint64_t(1) << Sh) < Sz)
            ++Sh;
          emit(formatString("sra %s, #%u, %s", D.c_str(), Sh, D.c_str()));
        } else if (Sz <= 255) {
          emit(formatString("divq %s, #%llu, %s", D.c_str(),
                            (unsigned long long)Sz, D.c_str()));
        } else {
          emit(formatString("lconst %s, %llu", regN(RR),
                            (unsigned long long)Sz));
          emit(formatString("divq %s, %s, %s", D.c_str(), regN(RR),
                            D.c_str()));
        }
      }
    }
  } else if (Op == "*") {
    op3(Word ? "mull" : "mulq");
  } else if (Op == "/") {
    op3("divq");
    resext();
  } else if (Op == "%") {
    op3("remq");
    resext();
  } else if (Op == "&") {
    op3("and");
  } else if (Op == "|") {
    op3("bis");
  } else if (Op == "^") {
    op3("xor");
  } else if (Op == "<<") {
    op3("sll");
    resext();
  } else if (Op == ">>") {
    op3("sra");
  } else if (Op == "==") {
    op3("cmpeq");
  } else if (Op == "!=") {
    op3("cmpeq");
    emit(formatString("xor %s, #1, %s", D.c_str(), D.c_str()));
  } else if (Op == "<") {
    op3(Unsigned ? "cmpult" : "cmplt");
  } else if (Op == "<=") {
    op3(Unsigned ? "cmpule" : "cmple");
  } else if (Op == ">") {
    emit(formatString("%s %s, %s, %s", Unsigned ? "cmpult" : "cmplt",
                      regN(RR), regN(LR), D.c_str()));
  } else if (Op == ">=") {
    emit(formatString("%s %s, %s, %s", Unsigned ? "cmpule" : "cmple",
                      regN(RR), regN(LR), D.c_str()));
  } else {
    fatalError("unknown binary operator " + Op);
  }
  freeTemp(R);
  return L;
}

Temp CodeGen::genShortCircuit(const Expr &E) {
  spillAllLive(E.Line);
  int Slot = allocSpillSlot(E.Line);
  std::string LShort = newLabel();
  std::string LEnd = newLabel();
  bool IsAnd = E.Op == "&&";

  Temp L = genExpr(*E.Lhs);
  unsigned LR = regOf(L, E.Line);
  emit(formatString("%s %s, %s", IsAnd ? "beq" : "bne", regN(LR),
                    LShort.c_str()));
  freeTemp(L);

  Temp R = genExpr(*E.Rhs);
  unsigned RR = regOf(R, E.Line);
  // Normalize to 0/1.
  emit(formatString("cmpult zero, %s, %s", regN(RR), regN(RR)));
  emit(formatString("stq %s, %lld(sp)", regN(RR),
                    (long long)spillSlotOffset(Slot)));
  freeTemp(R);
  emit(formatString("br %s", LEnd.c_str()));

  emitLabel(LShort);
  {
    Temp C = allocTemp(E.Line);
    unsigned CR = regOf(C, E.Line);
    emit(formatString("lda %s, %d(zero)", regN(CR), IsAnd ? 0 : 1));
    emit(formatString("stq %s, %lld(sp)", regN(CR),
                      (long long)spillSlotOffset(Slot)));
    freeTemp(C);
  }
  emitLabel(LEnd);

  Temp Res = allocTemp(E.Line);
  unsigned RegRes = regOf(Res, E.Line);
  emit(formatString("ldq %s, %lld(sp)", regN(RegRes),
                    (long long)spillSlotOffset(Slot)));
  freeSpillSlot(Slot);
  return Res;
}

Temp CodeGen::genCondExpr(const Expr &E) {
  spillAllLive(E.Line);
  int Slot = allocSpillSlot(E.Line);
  std::string LElse = newLabel();
  std::string LEnd = newLabel();

  Temp C = genExpr(*E.Lhs);
  unsigned CR = regOf(C, E.Line);
  emit(formatString("beq %s, %s", regN(CR), LElse.c_str()));
  freeTemp(C);

  Temp A = genExpr(*E.Rhs);
  unsigned AR = regOf(A, E.Line);
  emitConvert(AR, E.Rhs->Ty, E.Ty);
  emit(formatString("stq %s, %lld(sp)", regN(AR),
                    (long long)spillSlotOffset(Slot)));
  freeTemp(A);
  emit(formatString("br %s", LEnd.c_str()));

  emitLabel(LElse);
  Temp B = genExpr(*E.Third);
  unsigned BR = regOf(B, E.Line);
  emitConvert(BR, E.Third->Ty, E.Ty);
  emit(formatString("stq %s, %lld(sp)", regN(BR),
                    (long long)spillSlotOffset(Slot)));
  freeTemp(B);
  emitLabel(LEnd);

  Temp Res = allocTemp(E.Line);
  unsigned RR = regOf(Res, E.Line);
  emit(formatString("ldq %s, %lld(sp)", regN(RR),
                    (long long)spillSlotOffset(Slot)));
  freeSpillSlot(Slot);
  return Res;
}

Temp CodeGen::genCall(const Expr &E) {
  // __vararg(i): load the i-th variadic stack argument of this function.
  if (E.Name == "__vararg") {
    Temp I = genExpr(*E.Args[0]);
    unsigned R = regOf(I, E.Line);
    emit(formatString("sll %s, #3, %s", regN(R), regN(R)));
    emit(formatString("addq %s, sp, %s", regN(R), regN(R)));
    emit(formatString("ldq %s, %lld(%s)", regN(R), (long long)FrameSize,
                      regN(R)));
    return I;
  }

  const FuncDecl *F = E.Callee;
  size_t NArgs = E.Args.size();
  size_t NFixed = F->IsVariadic ? F->Params.size() : std::min<size_t>(NArgs, 6);

  // Reserve contiguous staging slots for this call (nested calls bump
  // StageDepth so they use disjoint slots).
  int D0 = StageDepth;
  if (D0 + int(NArgs) > NumStageSlots) {
    error(E.Line, "call nesting too deep (out of staging slots)");
    return allocTemp(E.Line);
  }
  StageDepth += int(NArgs);

  for (size_t I = 0; I < NArgs; ++I) {
    Temp A = genExpr(*E.Args[I]);
    unsigned R = regOf(A, E.Line);
    if (I < F->Params.size())
      emitConvert(R, E.Args[I]->Ty, F->Params[I]->Ty);
    emit(formatString("stq %s, %lld(sp)", regN(R),
                      (long long)stageSlotOffset(D0 + int(I))));
    freeTemp(A);
  }

  // All argument values are now in memory; park every other live temp too.
  spillAllLive(E.Line);

  // Load register arguments.
  for (size_t I = 0; I < std::min(NFixed, size_t(6)); ++I)
    emit(formatString("ldq %s, %lld(sp)", regN(RegA0 + unsigned(I)),
                      (long long)stageSlotOffset(D0 + int(I))));
  // Store stack arguments into the outgoing area.
  for (size_t I = NFixed; I < NArgs; ++I) {
    emit(formatString("ldq at, %lld(sp)",
                      (long long)stageSlotOffset(D0 + int(I))));
    emit(formatString("stq at, %lld(sp)", (long long)(8 * (I - NFixed))));
  }

  emit(formatString("bsr ra, %s", F->Name.c_str()));
  StageDepth = D0;

  Temp Res = allocTemp(E.Line);
  unsigned RR = regOf(Res, E.Line);
  emit(formatString("mov v0, %s", regN(RR)));
  return Res;
}

void CodeGen::genStoreTo(const Expr &E, Temp V, const Type *ValTy) {
  // Fast paths: direct variable stores avoid materializing an address.
  if (E.K == Expr::VarRef && !E.Var->IsGlobal) {
    unsigned VR = regOf(V, E.Line);
    emitConvert(VR, ValTy, E.Ty);
    emitStore(VR, RegSP, E.Var->FrameOffset, E.Ty);
    return;
  }
  Temp A = genAddr(E);
  unsigned VR = regOf(V, E.Line);
  emitConvert(VR, ValTy, E.Ty);
  unsigned AR = regOf(A, E.Line);
  VR = regOf(V, E.Line); // regOf(A) may have spilled V
  emitStore(VR, AR, 0, E.Ty);
  freeTemp(A);
}

Temp CodeGen::genIncDec(const Expr &E, bool IsPre, bool IsInc) {
  const Expr &LV = *E.Lhs;
  uint64_t Step =
      LV.Ty->isPointer() ? LV.Ty->Pointee->size() : 1;

  Temp A = genAddr(LV);
  unsigned AR = regOf(A, E.Line);
  Temp Val = allocTemp(E.Line);
  unsigned VR = regOf(Val, E.Line);
  AR = regOf(A, E.Line);
  emitLoad(VR, AR, 0, LV.Ty);

  Temp Result;
  if (!IsPre) {
    // Postfix: keep the old value as the result.
    Result = allocTemp(E.Line);
    unsigned RR = regOf(Result, E.Line);
    VR = regOf(Val, E.Line);
    emit(formatString("mov %s, %s", regN(VR), regN(RR)));
  }

  VR = regOf(Val, E.Line);
  bool Word = isWordType(LV.Ty);
  const char *Op = IsInc ? (Word ? "addl" : "addq") : (Word ? "subl" : "subq");
  if (Step <= 255) {
    emit(formatString("%s %s, #%llu, %s", Op, regN(VR),
                      (unsigned long long)Step, regN(VR)));
  } else {
    Temp S = allocTemp(E.Line);
    unsigned SR = regOf(S, E.Line);
    VR = regOf(Val, E.Line);
    emit(formatString("lconst %s, %llu", regN(SR), (unsigned long long)Step));
    emit(formatString("%s %s, %s, %s", Op, regN(VR), regN(SR), regN(VR)));
    freeTemp(S);
  }
  if (LV.Ty->K == Type::Char) {
    VR = regOf(Val, E.Line);
    emit(formatString("and %s, #255, %s", regN(VR), regN(VR)));
  }
  AR = regOf(A, E.Line);
  VR = regOf(Val, E.Line);
  emitStore(VR, AR, 0, LV.Ty);
  freeTemp(A);

  if (IsPre)
    return Val;
  freeTemp(Val);
  return Result;
}

Temp CodeGen::genExpr(const Expr &E) {
  switch (E.K) {
  case Expr::IntLit:
  case Expr::SizeofTy: {
    Temp T = allocTemp(E.Line);
    emit(formatString("lconst %s, %lld", regN(regOf(T, E.Line)),
                      (long long)E.IntValue));
    return T;
  }

  case Expr::StrLit: {
    Temp T = allocTemp(E.Line);
    emit(formatString("laddr %s, %s", regN(regOf(T, E.Line)),
                      stringLabel(E.StrValue).c_str()));
    return T;
  }

  case Expr::VarRef: {
    const VarDecl *V = E.Var;
    Temp T = allocTemp(E.Line);
    unsigned R = regOf(T, E.Line);
    if (V->Ty->isArray() || V->Ty->isStruct()) {
      // Arrays (and structs used via &/member) evaluate to their address.
      if (V->IsGlobal)
        emit(formatString("laddr %s, %s", regN(R), V->Name.c_str()));
      else
        emit(formatString("lda %s, %lld(sp)", regN(R),
                          (long long)V->FrameOffset));
      return T;
    }
    if (V->IsGlobal) {
      emit(formatString("laddr %s, %s", regN(R), V->Name.c_str()));
      emitLoad(R, R, 0, V->Ty);
    } else {
      emitLoad(R, RegSP, V->FrameOffset, V->Ty);
    }
    return T;
  }

  case Expr::FuncRef:
    fatalError("function reference as value");

  case Expr::Unary: {
    if (E.Op == "*") {
      Temp A = genExpr(*E.Lhs);
      if (E.Ty->isArray() || E.Ty->isStruct() || E.DecayedArray)
        return A; // address is the value
      unsigned R = regOf(A, E.Line);
      emitLoad(R, R, 0, E.Ty);
      return A;
    }
    if (E.Op == "&")
      return genAddr(*E.Lhs);
    if (E.Op == "++" || E.Op == "--")
      return genIncDec(E, /*IsPre=*/true, E.Op == "++");
    Temp T = genExpr(*E.Lhs);
    unsigned R = regOf(T, E.Line);
    if (E.Op == "-")
      emit(formatString("%s zero, %s, %s",
                        isWordType(E.Ty) ? "subl" : "subq", regN(R),
                        regN(R)));
    else if (E.Op == "!")
      emit(formatString("cmpeq %s, #0, %s", regN(R), regN(R)));
    else if (E.Op == "~") {
      emit(formatString("ornot zero, %s, %s", regN(R), regN(R)));
      if (isWordType(E.Ty))
        emit(formatString("addl %s, #0, %s", regN(R), regN(R)));
    } else
      fatalError("unknown unary " + E.Op);
    return T;
  }

  case Expr::Postfix:
    return genIncDec(E, /*IsPre=*/false, E.Op == "++");

  case Expr::Binary:
    if (E.Op == "&&" || E.Op == "||")
      return genShortCircuit(E);
    else {
      Temp L = genExpr(*E.Lhs);
      Temp R = genExpr(*E.Rhs);
      return genBinaryOp(E.Op, L, R, E.Lhs->Ty, E.Rhs->Ty, E.Ty, E.Line);
    }

  case Expr::Assign: {
    if (E.Op == "=") {
      Temp V = genExpr(*E.Rhs);
      genStoreTo(*E.Lhs, V, E.Rhs->Ty);
      return V; // already converted to the lvalue type by genStoreTo
    }
    // Compound assignment: load, op, store.
    std::string BinOp = E.Op.substr(0, E.Op.size() - 1);
    Temp A = genAddr(*E.Lhs);
    Temp Cur = allocTemp(E.Line);
    unsigned CR = regOf(Cur, E.Line);
    unsigned AR = regOf(A, E.Line);
    emitLoad(CR, AR, 0, E.Lhs->Ty);
    Temp R = genExpr(*E.Rhs);
    Temp Res = genBinaryOp(BinOp, Cur, R, E.Lhs->Ty, E.Rhs->Ty,
                           E.Lhs->Ty->isPointer() ? E.Lhs->Ty : E.Ty, E.Line);
    unsigned RR = regOf(Res, E.Line);
    emitConvert(RR, E.Ty, E.Lhs->Ty);
    AR = regOf(A, E.Line);
    RR = regOf(Res, E.Line);
    emitStore(RR, AR, 0, E.Lhs->Ty);
    freeTemp(A);
    return Res;
  }

  case Expr::Cond:
    return genCondExpr(E);

  case Expr::Call: {
    Temp T = genCall(E);
    return T;
  }

  case Expr::Index: {
    Temp A = genAddr(E);
    if (E.Ty->isArray() || E.Ty->isStruct() || E.DecayedArray)
      return A;
    unsigned R = regOf(A, E.Line);
    emitLoad(R, R, 0, E.Ty);
    return A;
  }

  case Expr::Member: {
    Temp A = genAddr(E);
    if (E.Ty->isArray() || E.Ty->isStruct() || E.DecayedArray)
      return A;
    unsigned R = regOf(A, E.Line);
    emitLoad(R, R, 0, E.Ty);
    return A;
  }

  case Expr::Cast: {
    Temp T = genExpr(*E.Lhs);
    unsigned R = regOf(T, E.Line);
    emitConvert(R, E.Lhs->Ty, E.Ty);
    return T;
  }
  }
  fatalError("unhandled expression kind");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void CodeGen::genStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Block:
    for (const StmtPtr &Sub : S.Body)
      genStmt(*Sub);
    return;

  case Stmt::If: {
    std::string LElse = newLabel();
    Temp C = genExpr(*S.Cond);
    emit(formatString("beq %s, %s", regN(regOf(C, S.Line)), LElse.c_str()));
    freeTemp(C);
    assertAllFree(S.Line);
    genStmt(*S.Then);
    if (S.Else) {
      std::string LEnd = newLabel();
      emit(formatString("br %s", LEnd.c_str()));
      emitLabel(LElse);
      genStmt(*S.Else);
      emitLabel(LEnd);
    } else {
      emitLabel(LElse);
    }
    return;
  }

  case Stmt::While: {
    std::string LCond = newLabel(), LEnd = newLabel();
    emitLabel(LCond);
    Temp C = genExpr(*S.Cond);
    emit(formatString("beq %s, %s", regN(regOf(C, S.Line)), LEnd.c_str()));
    freeTemp(C);
    assertAllFree(S.Line);
    BreakLabels.push_back(LEnd);
    ContinueLabels.push_back(LCond);
    genStmt(*S.Loop);
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    emit(formatString("br %s", LCond.c_str()));
    emitLabel(LEnd);
    return;
  }

  case Stmt::DoWhile: {
    std::string LTop = newLabel(), LCont = newLabel(), LEnd = newLabel();
    emitLabel(LTop);
    BreakLabels.push_back(LEnd);
    ContinueLabels.push_back(LCont);
    genStmt(*S.Loop);
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    emitLabel(LCont);
    Temp C = genExpr(*S.Cond);
    emit(formatString("bne %s, %s", regN(regOf(C, S.Line)), LTop.c_str()));
    freeTemp(C);
    assertAllFree(S.Line);
    emitLabel(LEnd);
    return;
  }

  case Stmt::For: {
    std::string LCond = newLabel(), LCont = newLabel(), LEnd = newLabel();
    if (S.Init) {
      freeTemp(genExpr(*S.Init));
      assertAllFree(S.Line);
    }
    emitLabel(LCond);
    if (S.Cond) {
      Temp C = genExpr(*S.Cond);
      emit(formatString("beq %s, %s", regN(regOf(C, S.Line)), LEnd.c_str()));
      freeTemp(C);
      assertAllFree(S.Line);
    }
    BreakLabels.push_back(LEnd);
    ContinueLabels.push_back(LCont);
    genStmt(*S.Loop);
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    emitLabel(LCont);
    if (S.Step) {
      freeTemp(genExpr(*S.Step));
      assertAllFree(S.Line);
    }
    emit(formatString("br %s", LCond.c_str()));
    emitLabel(LEnd);
    return;
  }

  case Stmt::Switch: {
    // Lowered to a compare chain (no jump tables: OM's CFG recovery stays
    // exact). The control value lives in a hidden local.
    Temp V = genExpr(*S.E);
    unsigned VR = regOf(V, S.Line);
    emit(formatString("stq %s, %lld(sp)", regN(VR),
                      (long long)S.Decl->FrameOffset));
    freeTemp(V);
    assertAllFree(S.Line);

    std::vector<std::string> CaseLabels;
    for (size_t CI = 0; CI < S.Cases.size(); ++CI)
      CaseLabels.push_back(newLabel());
    std::string LEnd = newLabel();
    std::string LDefault = S.DefaultIndex >= 0 ? newLabel() : LEnd;

    for (size_t CI = 0; CI < S.Cases.size(); ++CI) {
      Temp C = allocTemp(S.Line);
      unsigned CR = regOf(C, S.Line);
      emit(formatString("ldq %s, %lld(sp)", regN(CR),
                        (long long)S.Decl->FrameOffset));
      Temp K = allocTemp(S.Line);
      unsigned KR = regOf(K, S.Line);
      CR = regOf(C, S.Line);
      emit(formatString("lconst %s, %lld", regN(KR),
                        (long long)S.Cases[CI].first));
      emit(formatString("cmpeq %s, %s, %s", regN(CR), regN(KR), regN(CR)));
      emit(formatString("bne %s, %s", regN(CR), CaseLabels[CI].c_str()));
      freeTemp(C);
      freeTemp(K);
      assertAllFree(S.Line);
    }
    emit(formatString("br %s", LDefault.c_str()));

    BreakLabels.push_back(LEnd);
    for (size_t I = 0; I < S.Body.size(); ++I) {
      for (size_t CI = 0; CI < S.Cases.size(); ++CI)
        if (S.Cases[CI].second == int(I))
          emitLabel(CaseLabels[CI]);
      if (S.DefaultIndex == int(I))
        emitLabel(LDefault);
      genStmt(*S.Body[I]);
    }
    // Labels that point past the last statement.
    for (size_t CI = 0; CI < S.Cases.size(); ++CI)
      if (S.Cases[CI].second == int(S.Body.size()))
        emitLabel(CaseLabels[CI]);
    if (S.DefaultIndex == int(S.Body.size()))
      emitLabel(LDefault);
    BreakLabels.pop_back();
    emitLabel(LEnd);
    return;
  }

  case Stmt::Return:
    if (S.E) {
      Temp V = genExpr(*S.E);
      unsigned R = regOf(V, S.Line);
      emitConvert(R, S.E->Ty, CurFunc->RetTy);
      emit(formatString("mov %s, v0", regN(R)));
      freeTemp(V);
    }
    assertAllFree(S.Line);
    emit(formatString("br %s", RetLabel.c_str()));
    return;

  case Stmt::Break:
    assert(!BreakLabels.empty());
    emit(formatString("br %s", BreakLabels.back().c_str()));
    return;

  case Stmt::Continue:
    assert(!ContinueLabels.empty());
    emit(formatString("br %s", ContinueLabels.back().c_str()));
    return;

  case Stmt::ExprStmt:
    freeTemp(genExpr(*S.E));
    assertAllFree(S.Line);
    return;

  case Stmt::DeclStmt: {
    const VarDecl *V = S.Decl.get();
    if (V->Init) {
      Temp I = genExpr(*V->Init);
      unsigned R = regOf(I, S.Line);
      emitConvert(R, V->Init->Ty, V->Ty);
      emitStore(R, RegSP, V->FrameOffset, V->Ty);
      freeTemp(I);
    }
    assertAllFree(S.Line);
    return;
  }

  case Stmt::Empty:
    return;
  }
}

void CodeGen::genFunction(const FuncDecl &F) {
  CurFunc = &F;
  CurFuncName = F.Name;
  LabelCounter = 0;
  Temps.clear();
  for (int I = 0; I < NumTempRegs; ++I)
    RegHolder[I] = -1;
  for (int I = 0; I < NumSpillSlots; ++I)
    SpillUsed[I] = false;
  StageDepth = 0;
  RetLabel = formatString("L$%s$ret", F.Name.c_str());

  layoutFrame(F);

  Text += formatString("        .ent    %s\n", F.Name.c_str());
  Text += formatString("        .globl  %s\n", F.Name.c_str());
  emitLabel(F.Name);
  emit(formatString("lda sp, -%lld(sp)", (long long)FrameSize));
  emit(formatString("stq ra, %lld(sp)", (long long)(FrameSize - 8)));

  // Home parameters.
  for (size_t I = 0; I < F.Params.size(); ++I) {
    const VarDecl *P = F.Params[I].get();
    if (I < 6) {
      emit(formatString("stq %s, %lld(sp)", regN(RegA0 + unsigned(I)),
                        (long long)P->FrameOffset));
    } else {
      emit(formatString("ldq at, %lld(sp)",
                        (long long)(FrameSize + 8 * int64_t(I - 6))));
      emit(formatString("stq at, %lld(sp)", (long long)P->FrameOffset));
    }
  }

  genStmt(*F.Body);

  emitLabel(RetLabel);
  emit(formatString("ldq ra, %lld(sp)", (long long)(FrameSize - 8)));
  emit(formatString("lda sp, %lld(sp)", (long long)FrameSize));
  emit("ret");
  Text += formatString("        .end    %s\n", F.Name.c_str());
  CurFunc = nullptr;
}

//===----------------------------------------------------------------------===//
// Globals
//===----------------------------------------------------------------------===//

bool CodeGen::foldConst(const Expr &E, int64_t &V, std::string &SymOut) {
  switch (E.K) {
  case Expr::IntLit:
  case Expr::SizeofTy:
    V = E.IntValue;
    return true;
  case Expr::StrLit:
    SymOut = stringLabel(E.StrValue);
    V = 0;
    return true;
  case Expr::Unary: {
    std::string Sym;
    int64_t Sub;
    if (!foldConst(*E.Lhs, Sub, Sym) || !Sym.empty())
      return false;
    if (E.Op == "-")
      V = -Sub;
    else if (E.Op == "~")
      V = ~Sub;
    else if (E.Op == "!")
      V = !Sub;
    else
      return false;
    return true;
  }
  case Expr::Cast:
    return foldConst(*E.Lhs, V, SymOut);
  case Expr::Binary: {
    std::string S1, S2;
    int64_t A, B;
    if (!foldConst(*E.Lhs, A, S1) || !foldConst(*E.Rhs, B, S2) ||
        !S1.empty() || !S2.empty())
      return false;
    if (E.Op == "+") V = A + B;
    else if (E.Op == "-") V = A - B;
    else if (E.Op == "*") V = A * B;
    else if (E.Op == "/") V = B ? A / B : 0;
    else if (E.Op == "<<") V = A << (B & 63);
    else if (E.Op == ">>") V = A >> (B & 63);
    else if (E.Op == "|") V = A | B;
    else if (E.Op == "&") V = A & B;
    else if (E.Op == "^") V = A ^ B;
    else return false;
    return true;
  }
  default:
    return false;
  }
}

bool CodeGen::genGlobal(const VarDecl &G) {
  if (G.IsExtern)
    return true;
  unsigned AlignExp = 0;
  uint64_t A = std::max<uint64_t>(G.Ty->align(), 1);
  while ((uint64_t(1) << AlignExp) < A)
    ++AlignExp;

  if (!G.Init) {
    BssSection += formatString("        .align  %u\n", std::max(AlignExp, 3u));
    BssSection += formatString("        .globl  %s\n", G.Name.c_str());
    BssSection += G.Name + ":\n";
    BssSection += formatString("        .space  %llu\n",
                               (unsigned long long)alignTo(G.Ty->size(), 8));
    return true;
  }

  int64_t V = 0;
  std::string Sym;
  if (!foldConst(*G.Init, V, Sym)) {
    error(0, "initializer for global '" + G.Name + "' is not constant");
    return false;
  }
  DataSection += formatString("        .align  %u\n", AlignExp);
  DataSection += formatString("        .globl  %s\n", G.Name.c_str());
  DataSection += G.Name + ":\n";
  if (!Sym.empty()) {
    DataSection += formatString("        .quad   %s\n", Sym.c_str());
    return true;
  }
  const char *Dir = ".quad";
  if (G.Ty->K == Type::Int)
    Dir = ".long";
  else if (G.Ty->K == Type::Char)
    Dir = ".byte";
  DataSection +=
      formatString("        %s   %lld\n", Dir, (long long)V);
  return true;
}

bool CodeGen::run(std::string &AsmOut) {
  Text = "        .text\n";
  for (const auto &F : Unit.Funcs)
    if (F->Body)
      genFunction(*F);
  for (const auto &G : Unit.Globals)
    genGlobal(*G);

  std::string Out = Text;
  Out += "        .data\n";
  Out += DataSection;
  for (const auto &[Label, S] : Strings) {
    Out += Label + ":\n";
    std::string Esc;
    for (char C : S) {
      switch (C) {
      case '\n': Esc += "\\n"; break;
      case '\t': Esc += "\\t"; break;
      case '\\': Esc += "\\\\"; break;
      case '"': Esc += "\\\""; break;
      case '\0': Esc += "\\0"; break;
      default: Esc += C;
      }
    }
    Out += formatString("        .asciiz \"%s\"\n", Esc.c_str());
  }
  Out += "        .bss\n";
  Out += BssSection;
  AsmOut = std::move(Out);
  return !Failed;
}

} // namespace

bool mcc::generate(const TranslationUnit &Unit, std::string &AsmOut,
                   DiagEngine &Diags) {
  CodeGen CG(Unit, Diags);
  return CG.run(AsmOut);
}
