//===- mcc/Compiler.h - Mini-C compiler driver ------------------*- C++ -*-===//

#ifndef ATOM_MCC_COMPILER_H
#define ATOM_MCC_COMPILER_H

#include "obj/ObjectModule.h"
#include "support/Support.h"

namespace atom {
namespace mcc {

/// Compiles mini-C \p Source into an object module. The runtime-library
/// declarations (printf, malloc, ...) are pre-declared automatically.
/// Returns false with diagnostics on any error.
bool compile(const std::string &Source, const std::string &ModuleName,
             obj::ObjectModule &Out, DiagEngine &Diags);

/// Like compile() but also returns the generated assembly text (used by
/// tests and for debugging).
bool compileToAsm(const std::string &Source, const std::string &ModuleName,
                  std::string &AsmOut, DiagEngine &Diags);

/// The implicit prelude: extern declarations for the runtime library.
const char *runtimePrelude();

} // namespace mcc
} // namespace atom

#endif // ATOM_MCC_COMPILER_H
