//===- obj/ObjectModule.h - Relocatable object modules ----------*- C++ -*-===//
//
// The object-module format consumed by the linker and by OM. A module has
// text/data/bss sections, a symbol table, and relocations. ATOM operates on
// object modules rather than source, which is what makes it "independent of
// compiler and language systems" (paper §2).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_OBJ_OBJECTMODULE_H
#define ATOM_OBJ_OBJECTMODULE_H

#include "support/Support.h"

#include <cstdint>
#include <string>
#include <vector>

namespace atom {
namespace obj {

/// Relocation kinds.
enum class RelocKind : uint8_t {
  Abs64, ///< 64-bit absolute address in data: *loc = S + A.
  Hi16,  ///< ldah displacement: adjusted high 16 bits of S + A.
  Lo16,  ///< lda/load/store displacement: low 16 bits (signed) of S + A.
  Br21,  ///< 21-bit branch displacement to S + A from the branch site.
};

/// Which section a symbol is defined in (or Undefined / Absolute).
enum class SymSection : uint8_t { Text, Data, Bss, Absolute, Undefined };

struct Symbol {
  std::string Name;
  SymSection Section = SymSection::Undefined;
  /// Section-relative offset, or the value itself for Absolute symbols.
  /// After linking, an absolute address.
  uint64_t Value = 0;
  bool Global = false;
  bool IsProc = false; ///< Marks procedure entry points (.ent/.end).
  uint64_t Size = 0;   ///< Procedure size in bytes (0 if unknown).
};

struct Reloc {
  RelocKind Kind = RelocKind::Abs64;
  uint64_t Offset = 0;  ///< Byte offset within the holding section.
  uint32_t SymIndex = 0;
  int64_t Addend = 0;
};

/// A relocatable object module. Section contents are raw bytes; text is a
/// multiple of 4 bytes of encoded instructions.
struct ObjectModule {
  std::string Name;
  std::vector<uint8_t> Text;
  std::vector<uint8_t> Data;
  uint64_t BssSize = 0;
  std::vector<Symbol> Symbols;
  std::vector<Reloc> TextRelocs; ///< Offsets into Text.
  std::vector<Reloc> DataRelocs; ///< Offsets into Data.

  /// Serializes to a stable binary format (magic "AOBJ").
  std::vector<uint8_t> serialize() const;
  /// Deserializes; returns false on malformed input.
  static bool deserialize(const std::vector<uint8_t> &Bytes, ObjectModule &M);

  /// Finds a symbol index by name; returns -1 if absent.
  int findSymbol(const std::string &SymName) const;
};

/// An extra loadable region (ATOM places the analysis routines' data
/// between the program's text and data segments, paper Figure 4).
struct Segment {
  uint64_t Addr = 0;
  std::vector<uint8_t> Bytes;
};

/// A fully linked executable image. Symbols hold absolute addresses;
/// relocations are *retained* (with resolved symbol indices) so OM can lift
/// the code symbolically — this stands in for the paper's "fully linked
/// application program in object-module format".
struct Executable {
  uint64_t TextStart = 0;
  uint64_t DataStart = 0;
  uint64_t Entry = 0;
  std::vector<uint8_t> Text;
  std::vector<uint8_t> Data;
  uint64_t BssSize = 0;
  uint64_t HeapStart = 0;  ///< First byte past bss, page aligned.
  uint64_t StackStart = 0; ///< Initial sp; the stack grows down.
  std::vector<Symbol> Symbols; ///< Values are absolute addresses.
  std::vector<Reloc> TextRelocs; ///< Offsets relative to TextStart.
  std::vector<Reloc> DataRelocs; ///< Offsets relative to DataStart.
  std::vector<Segment> Segments; ///< Extra regions (analysis data).
  /// Instrumented executables only: (new PC, original PC) for every
  /// retained application instruction, sorted by new PC. Lets a loader
  /// translate a fault PC back to pristine (uninstrumented) addresses.
  /// Empty for ordinary executables; serialized as an optional trailing
  /// section, so pre-PCMap AEXE files still load.
  std::vector<std::pair<uint64_t, uint64_t>> PCMap;

  int findSymbol(const std::string &SymName) const;

  /// Serializes to a stable binary format (magic "AEXE").
  std::vector<uint8_t> serialize() const;
  static bool deserialize(const std::vector<uint8_t> &Bytes, Executable &E);
};

/// Default memory layout (see DESIGN.md: addresses fit in 31 bits so a
/// 2-instruction ldah/lda pair reaches everything).
constexpr uint64_t DefaultTextStart = 0x02000000; ///< Stack grows down from
                                                  ///< here (paper Figure 4).
constexpr uint64_t DefaultDataStart = 0x10000000;
constexpr uint64_t PageSize = 0x2000; ///< 8 KB pages, as on Alpha.

/// Reads/writes little-endian scalars in section byte vectors.
uint64_t read64(const std::vector<uint8_t> &B, uint64_t Off);
uint32_t read32(const std::vector<uint8_t> &B, uint64_t Off);
void write64(std::vector<uint8_t> &B, uint64_t Off, uint64_t V);
void write32(std::vector<uint8_t> &B, uint64_t Off, uint32_t V);

} // namespace obj
} // namespace atom

#endif // ATOM_OBJ_OBJECTMODULE_H
