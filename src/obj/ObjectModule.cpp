//===- obj/ObjectModule.cpp -----------------------------------------------===//

#include "obj/ObjectModule.h"

#include <cstring>

using namespace atom;
using namespace atom::obj;

uint64_t obj::read64(const std::vector<uint8_t> &B, uint64_t Off) {
  assert(Off + 8 <= B.size() && "read64 out of bounds");
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | B[Off + uint64_t(I)];
  return V;
}

uint32_t obj::read32(const std::vector<uint8_t> &B, uint64_t Off) {
  assert(Off + 4 <= B.size() && "read32 out of bounds");
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | B[Off + uint64_t(I)];
  return V;
}

void obj::write64(std::vector<uint8_t> &B, uint64_t Off, uint64_t V) {
  assert(Off + 8 <= B.size() && "write64 out of bounds");
  for (int I = 0; I < 8; ++I)
    B[Off + uint64_t(I)] = uint8_t(V >> (8 * I));
}

void obj::write32(std::vector<uint8_t> &B, uint64_t Off, uint32_t V) {
  assert(Off + 4 <= B.size() && "write32 out of bounds");
  for (int I = 0; I < 4; ++I)
    B[Off + uint64_t(I)] = uint8_t(V >> (8 * I));
}

namespace {

/// Simple growable binary writer/reader for the serialization formats.
class Writer {
public:
  void u8(uint8_t V) { Out.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back(uint8_t(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back(uint8_t(V >> (8 * I)));
  }
  void str(const std::string &S) {
    u32(uint32_t(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }
  void bytes(const std::vector<uint8_t> &B) {
    u64(B.size());
    Out.insert(Out.end(), B.begin(), B.end());
  }
  std::vector<uint8_t> Out;
};

class Reader {
public:
  explicit Reader(const std::vector<uint8_t> &B) : B(B) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > B.size())
      return false;
    V = B[Pos++];
    return true;
  }
  bool u32(uint32_t &V) {
    if (Pos + 4 > B.size())
      return false;
    V = 0;
    for (int I = 3; I >= 0; --I)
      V = (V << 8) | B[Pos + size_t(I)];
    Pos += 4;
    return true;
  }
  bool u64(uint64_t &V) {
    if (Pos + 8 > B.size())
      return false;
    V = 0;
    for (int I = 7; I >= 0; --I)
      V = (V << 8) | B[Pos + size_t(I)];
    Pos += 8;
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || Pos + N > B.size())
      return false;
    S.assign(B.begin() + long(Pos), B.begin() + long(Pos + N));
    Pos += N;
    return true;
  }
  bool bytes(std::vector<uint8_t> &V) {
    uint64_t N;
    if (!u64(N) || Pos + N > B.size())
      return false;
    V.assign(B.begin() + long(Pos), B.begin() + long(Pos + N));
    Pos += N;
    return true;
  }

  bool atEnd() const { return Pos >= B.size(); }
  size_t remaining() const { return B.size() - Pos; }

private:
  const std::vector<uint8_t> &B;
  size_t Pos = 0;
};

void writeSymbols(Writer &W, const std::vector<Symbol> &Symbols) {
  W.u32(uint32_t(Symbols.size()));
  for (const Symbol &S : Symbols) {
    W.str(S.Name);
    W.u8(uint8_t(S.Section));
    W.u64(S.Value);
    W.u8(S.Global ? 1 : 0);
    W.u8(S.IsProc ? 1 : 0);
    W.u64(S.Size);
  }
}

bool readSymbols(Reader &R, std::vector<Symbol> &Symbols) {
  uint32_t N;
  if (!R.u32(N))
    return false;
  Symbols.resize(N);
  for (Symbol &S : Symbols) {
    uint8_t Sec, Glob, Proc;
    if (!R.str(S.Name) || !R.u8(Sec) || !R.u64(S.Value) || !R.u8(Glob) ||
        !R.u8(Proc) || !R.u64(S.Size))
      return false;
    if (Sec > uint8_t(SymSection::Undefined))
      return false;
    S.Section = SymSection(Sec);
    S.Global = Glob != 0;
    S.IsProc = Proc != 0;
  }
  return true;
}

void writeRelocs(Writer &W, const std::vector<Reloc> &Relocs) {
  W.u32(uint32_t(Relocs.size()));
  for (const Reloc &R : Relocs) {
    W.u8(uint8_t(R.Kind));
    W.u64(R.Offset);
    W.u32(R.SymIndex);
    W.u64(uint64_t(R.Addend));
  }
}

bool readRelocs(Reader &R, std::vector<Reloc> &Relocs) {
  uint32_t N;
  if (!R.u32(N))
    return false;
  Relocs.resize(N);
  for (Reloc &Rel : Relocs) {
    uint8_t Kind;
    uint64_t Addend;
    if (!R.u8(Kind) || !R.u64(Rel.Offset) || !R.u32(Rel.SymIndex) ||
        !R.u64(Addend))
      return false;
    if (Kind > uint8_t(RelocKind::Br21))
      return false;
    Rel.Kind = RelocKind(Kind);
    Rel.Addend = int64_t(Addend);
  }
  return true;
}

constexpr uint32_t ObjMagic = 0x4A424F41; // "AOBJ"
constexpr uint32_t ExeMagic = 0x45584541; // "AEXE"

} // namespace

std::vector<uint8_t> ObjectModule::serialize() const {
  Writer W;
  W.u32(ObjMagic);
  W.str(Name);
  W.bytes(Text);
  W.bytes(Data);
  W.u64(BssSize);
  writeSymbols(W, Symbols);
  writeRelocs(W, TextRelocs);
  writeRelocs(W, DataRelocs);
  return std::move(W.Out);
}

bool ObjectModule::deserialize(const std::vector<uint8_t> &Bytes,
                               ObjectModule &M) {
  Reader R(Bytes);
  uint32_t Magic;
  if (!R.u32(Magic) || Magic != ObjMagic)
    return false;
  M = ObjectModule();
  return R.str(M.Name) && R.bytes(M.Text) && R.bytes(M.Data) &&
         R.u64(M.BssSize) && readSymbols(R, M.Symbols) &&
         readRelocs(R, M.TextRelocs) && readRelocs(R, M.DataRelocs);
}

int ObjectModule::findSymbol(const std::string &SymName) const {
  for (size_t I = 0; I < Symbols.size(); ++I)
    if (Symbols[I].Name == SymName)
      return int(I);
  return -1;
}

int Executable::findSymbol(const std::string &SymName) const {
  for (size_t I = 0; I < Symbols.size(); ++I)
    if (Symbols[I].Name == SymName)
      return int(I);
  return -1;
}

std::vector<uint8_t> Executable::serialize() const {
  Writer W;
  W.u32(ExeMagic);
  W.u64(TextStart);
  W.u64(DataStart);
  W.u64(Entry);
  W.bytes(Text);
  W.bytes(Data);
  W.u64(BssSize);
  W.u64(HeapStart);
  W.u64(StackStart);
  writeSymbols(W, Symbols);
  writeRelocs(W, TextRelocs);
  writeRelocs(W, DataRelocs);
  W.u32(uint32_t(Segments.size()));
  for (const Segment &S : Segments) {
    W.u64(S.Addr);
    W.bytes(S.Bytes);
  }
  // Optional trailing section (absent in pre-PCMap files).
  if (!PCMap.empty()) {
    W.u64(PCMap.size());
    for (const auto &[NewPC, OrigPC] : PCMap) {
      W.u64(NewPC);
      W.u64(OrigPC);
    }
  }
  return std::move(W.Out);
}

bool Executable::deserialize(const std::vector<uint8_t> &Bytes,
                             Executable &E) {
  Reader R(Bytes);
  uint32_t Magic;
  if (!R.u32(Magic) || Magic != ExeMagic)
    return false;
  E = Executable();
  if (!(R.u64(E.TextStart) && R.u64(E.DataStart) && R.u64(E.Entry) &&
        R.bytes(E.Text) && R.bytes(E.Data) && R.u64(E.BssSize) &&
        R.u64(E.HeapStart) && R.u64(E.StackStart) &&
        readSymbols(R, E.Symbols) && readRelocs(R, E.TextRelocs) &&
        readRelocs(R, E.DataRelocs)))
    return false;
  uint32_t NSeg;
  if (!R.u32(NSeg))
    return false;
  E.Segments.resize(NSeg);
  for (Segment &S : E.Segments)
    if (!R.u64(S.Addr) || !R.bytes(S.Bytes))
      return false;
  if (R.atEnd())
    return true; // pre-PCMap file
  uint64_t NMap;
  if (!R.u64(NMap) || NMap > R.remaining() / 16)
    return false;
  E.PCMap.resize(NMap);
  for (auto &[NewPC, OrigPC] : E.PCMap)
    if (!R.u64(NewPC) || !R.u64(OrigPC))
      return false;
  return true;
}
