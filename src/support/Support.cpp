//===- support/Support.cpp ------------------------------------------------===//

#include "support/Support.h"

#include <cstdio>
#include <cstdlib>

using namespace atom;

void atom::fatalError(const std::string &Msg) {
  std::fprintf(stderr, "atom: fatal error: %s\n", Msg.c_str());
  std::abort();
}

std::string atom::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Len > 0) {
    Out.resize(size_t(Len) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, Args);
    Out.resize(size_t(Len));
  }
  va_end(Args);
  return Out;
}

std::string DiagEngine::str() const {
  std::string Out;
  for (const Diag &D : Diags)
    Out += formatString("line %d: %s\n", D.Line, D.Message.c_str());
  return Out;
}
