//===- support/Support.cpp ------------------------------------------------===//

#include "support/Support.h"

#include <cstdio>
#include <cstdlib>
#include <pthread.h>

using namespace atom;

namespace {

thread_local std::string ThreadName;

} // namespace

void atom::setCurrentThreadName(const std::string &Name) {
  ThreadName = Name;
#if defined(__linux__)
  // The kernel caps comm at 15 characters + NUL; truncate rather than fail.
  char Short[16];
  std::snprintf(Short, sizeof(Short), "%s", Name.c_str());
  pthread_setname_np(pthread_self(), Short);
#endif
}

const std::string &atom::currentThreadName() { return ThreadName; }

uint64_t Backoff::delayMs(unsigned Attempt, uint64_t AdviseMs) {
  // Exponential target, saturating well before the shift overflows.
  uint64_t Target = Attempt < 32 ? BaseMs << Attempt : CapMs;
  if (Target < AdviseMs)
    Target = AdviseMs;
  if (Target > CapMs)
    Target = CapMs;
  // The server's advice is a hard floor on the delay, not just a stretch
  // of the jitter window — a client must never re-arrive before the
  // daemon said to. Capped, so absurd advice cannot park a client forever.
  uint64_t Floor = AdviseMs < CapMs ? AdviseMs : CapMs;
  if (Floor < 1)
    Floor = 1;
  // xorshift64 jitter: uniform in [Floor, Target].
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return Floor + State % (Target - Floor + 1);
}

void atom::fatalError(const std::string &Msg) {
  std::fprintf(stderr, "atom: fatal error: %s\n", Msg.c_str());
  std::abort();
}

std::string atom::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Len > 0) {
    Out.resize(size_t(Len) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, Args);
    Out.resize(size_t(Len));
  }
  va_end(Args);
  return Out;
}

std::string DiagEngine::str() const {
  std::string Out;
  for (const Diag &D : Diags)
    Out += formatString("line %d: %s\n", D.Line, D.Message.c_str());
  return Out;
}
