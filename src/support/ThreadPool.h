//===- support/ThreadPool.h - Small reusable worker pool --------*- C++ -*-===//
//
// A fixed-size FIFO worker pool for the batched instrumentation driver
// (atom/Batch.h) and the benchmark suite builders. Tasks are plain
// std::function<void()>; wait() blocks until every submitted task has
// finished, after which the pool can be reused for another wave. The
// destructor drains any queued work before joining.
//
// Tasks must not throw: the toolchain reports failures through DiagEngine,
// and an escaping exception would terminate the worker.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_SUPPORT_THREADPOOL_H
#define ATOM_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace atom {

class ThreadPool {
public:
  /// Spawns \p Threads workers (0 = defaultConcurrency()).
  explicit ThreadPool(unsigned Threads = 0);
  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned threadCount() const { return unsigned(Workers.size()); }

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has completed. If multiple threads
  /// submit concurrently, wait() waits for all of them.
  void wait();

  /// Runs Fn(0), Fn(1), ..., Fn(N-1) across the pool and returns once all
  /// have completed. Indices may execute in any order and concurrently.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned defaultConcurrency();

private:
  void workerLoop();

  std::mutex Mu;
  std::condition_variable HasWork; ///< Signaled on submit and shutdown.
  std::condition_variable Idle;    ///< Signaled when Pending reaches 0.
  std::queue<std::function<void()>> Queue;
  size_t Pending = 0; ///< Queued plus currently-running tasks.
  bool Stop = false;
  std::vector<std::thread> Workers;
};

} // namespace atom

#endif // ATOM_SUPPORT_THREADPOOL_H
