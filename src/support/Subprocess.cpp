//===- support/Subprocess.cpp ---------------------------------------------===//

#include "support/Subprocess.h"

#include "support/Support.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace atom;

Subprocess::~Subprocess() {
  if (started() && !Reaped) {
    kill();
    waitExit(-1);
  }
  closeChannel();
}

bool Subprocess::spawn(const Options &O, std::string &Err) {
  if (started()) {
    Err = "subprocess already spawned";
    return false;
  }
  if (O.Argv.empty()) {
    Err = "empty argv";
    return false;
  }

  int Chan[2] = {-1, -1};
  int Out[2] = {-1, -1};
  if (O.Mode == Io::Channel &&
      ::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, Chan) != 0) {
    Err = std::string("socketpair: ") + std::strerror(errno);
    return false;
  }
  if (O.Mode == Io::Capture && ::pipe2(Out, O_CLOEXEC) != 0) {
    Err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }

  // execv wants mutable char*; keep the strings alive across fork.
  std::vector<std::string> Args = O.Argv;
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);

  pid_t P = ::fork();
  if (P < 0) {
    Err = std::string("fork: ") + std::strerror(errno);
    for (int Fd : {Chan[0], Chan[1], Out[0], Out[1]})
      if (Fd >= 0)
        ::close(Fd);
    return false;
  }
  if (P == 0) {
    // Child: only async-signal-safe calls until exec.
    if (O.Mode == Io::Channel) {
      if (Chan[1] != SubprocessChannelFd) {
        ::dup2(Chan[1], SubprocessChannelFd); // clears CLOEXEC on the copy
        ::close(Chan[1]);
      } else {
        ::fcntl(Chan[1], F_SETFD, 0);
      }
    } else if (O.Mode == Io::Capture) {
      ::dup2(Out[1], 1);
      ::dup2(Out[1], 2);
    }
    ::execv(Argv[0], Argv.data());
    _exit(127);
  }

  Pid = P;
  if (O.Mode == Io::Channel) {
    ::close(Chan[1]);
    ChanFd = Chan[0];
  } else if (O.Mode == Io::Capture) {
    ::close(Out[1]);
    OutFd = Out[0];
  }
  return true;
}

void Subprocess::closeChannel() {
  if (ChanFd >= 0) {
    ::close(ChanFd);
    ChanFd = -1;
  }
  if (OutFd >= 0) {
    ::close(OutFd);
    OutFd = -1;
  }
}

bool Subprocess::alive() {
  if (!started() || Reaped)
    return false;
  int Status = 0;
  pid_t R = retryEintr([&] { return ::waitpid(Pid, &Status, WNOHANG); });
  if (R == 0)
    return true;
  if (R == Pid) {
    Reaped = true;
    if (WIFEXITED(Status))
      ExitCode = WEXITSTATUS(Status);
    else if (WIFSIGNALED(Status))
      TermSignal = WTERMSIG(Status);
  }
  return false;
}

bool Subprocess::waitExit(int64_t DeadlineMs) {
  if (!started())
    return false;
  if (Reaped)
    return true;
  // Polling waitpid keeps this usable from any thread without a SIGCHLD
  // handler; worker lifecycles are milliseconds-coarse anyway.
  Stopwatch W;
  for (;;) {
    if (!alive())
      return Reaped;
    if (DeadlineMs >= 0 && W.seconds() * 1000.0 >= double(DeadlineMs))
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void Subprocess::kill(int Sig) {
  if (started() && !Reaped)
    ::kill(Pid, Sig);
}

bool Subprocess::exitedCleanly() const {
  return Reaped && TermSignal == 0 && ExitCode == 0;
}
