//===- support/Subprocess.h - Child-process plumbing ------------*- C++ -*-===//
//
// A small fork/exec wrapper for the process-isolation layer of atomd
// (docs/RESILIENCE.md): spawn a child with either an inherited stdio, a
// bidirectional AF_UNIX channel on a fixed descriptor (the atomd worker
// protocol), or stdout+stderr captured through a pipe (test harnesses
// driving a real daemon). Provides wait-with-deadline, kill-on-timeout,
// and exit/signal reporting, so a crashing or hanging child is always
// observable and reapable — never a zombie, never a silent hang.
//
// All parent-side descriptors are CLOEXEC: one worker never inherits a
// sibling's channel (which would defeat EOF-based lifecycle tracking).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_SUPPORT_SUBPROCESS_H
#define ATOM_SUPPORT_SUBPROCESS_H

#include <string>
#include <sys/types.h>
#include <vector>

namespace atom {

/// The descriptor number the child finds its channel on in Io::Channel
/// mode (stdin/stdout stay untouched, so stray prints from pipeline code
/// can never corrupt the frame stream).
constexpr int SubprocessChannelFd = 3;

class Subprocess {
public:
  enum class Io {
    Inherit, ///< Child shares the parent's stdio.
    Channel, ///< Bidirectional socketpair on child fd SubprocessChannelFd;
             ///< parent end at channelFd(). stderr is inherited.
    Capture, ///< Child stdout+stderr redirected into a pipe readable at
             ///< outputFd().
  };

  struct Options {
    std::vector<std::string> Argv; ///< Argv[0] is the executable path.
    Io Mode = Io::Inherit;
  };

  Subprocess() = default;
  /// Kills (SIGKILL) and reaps the child if it is still running.
  ~Subprocess();

  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;

  /// Forks and execs. Returns false with \p Err on setup failure; an
  /// executable that cannot be exec'd surfaces as the child exiting 127.
  bool spawn(const Options &O, std::string &Err);

  pid_t pid() const { return Pid; }
  bool started() const { return Pid > 0; }

  /// Parent end of the Io::Channel socketpair (-1 otherwise).
  int channelFd() const { return ChanFd; }
  /// Read end of the Io::Capture pipe (-1 otherwise).
  int outputFd() const { return OutFd; }

  /// Closes the parent's channel/capture descriptor (the child sees EOF —
  /// the graceful shutdown signal for atomd workers).
  void closeChannel();

  /// True while the child has not been reaped and waitpid(WNOHANG) says it
  /// is still alive.
  bool alive();

  /// Waits up to \p DeadlineMs for the child to exit and reaps it
  /// (negative = wait forever). Returns false on timeout, leaving the
  /// child running.
  bool waitExit(int64_t DeadlineMs);

  /// Sends \p Sig (default SIGKILL). No-op once reaped.
  void kill(int Sig = 9);

  // Valid after waitExit() returned true.
  bool exitedCleanly() const; ///< Exited (not signaled) with status 0.
  int exitCode() const { return ExitCode; }     ///< -1 if killed by signal.
  int termSignal() const { return TermSignal; } ///< 0 if exited normally.

private:
  pid_t Pid = -1;
  int ChanFd = -1;
  int OutFd = -1;
  bool Reaped = false;
  int ExitCode = -1;
  int TermSignal = 0;
};

} // namespace atom

#endif // ATOM_SUPPORT_SUBPROCESS_H
