//===- support/FaultPoints.h - Deterministic I/O chaos layer ----*- C++ -*-===//
//
// A seeded, deterministic fault injector for the daemon's I/O paths,
// modeled on sim/Inject: where Inject corrupts the *simulated* machine at
// a chosen instruction count, FaultPoints fails the *host* syscalls behind
// the atomd Store and the daemon's socket writes at a chosen consultation
// count. The environment variable
//
//   ATOMD_FAULTPOINTS=kind@count[,seed][;kind@count[,seed]...]
//
// arms one or more specs, where kind is one of
//
//   short-write   write/send transfers only a seeded fraction of the
//                 buffer (exercises every partial-write loop)
//   eio           read/write/send fails with EIO
//   enospc        write fails with ENOSPC
//   eintr         read/write/send fails with EINTR once (must be
//                 invisible: retryEintr retries it)
//   torn-rename   the store's publish rename lands a truncated file
//                 (simulates a non-atomic filesystem or a crash window)
//
// and count selects *which* consultation of that kind faults: "kind@N"
// fires on the Nth consultation only; "kind@N+" fires on every Nth
// (periodic — the sweep mode CI uses). All randomness (short-write
// fractions, torn-file lengths) comes from the spec's xorshift64 seed, so
// a given spec reproduces byte-identical failures run after run.
//
// Sites consult the layer through the fp* wrappers below, which are plain
// EINTR-faithful syscalls when nothing is armed (one relaxed atomic load
// on the fast path).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_SUPPORT_FAULTPOINTS_H
#define ATOM_SUPPORT_FAULTPOINTS_H

#include <cstdint>
#include <string>
#include <sys/types.h>

namespace atom {

enum class FaultKind : unsigned {
  ShortWrite,
  Eio,
  Enospc,
  Eintr,
  TornRename,
};
constexpr unsigned NumFaultKinds = 5;

const char *faultKindName(FaultKind K);

class FaultPoints {
public:
  /// The process-wide injector. First use arms it from ATOMD_FAULTPOINTS
  /// (unset or empty = disabled).
  static FaultPoints &instance();

  /// Replaces the armed specs with \p Spec (the env syntax; empty string
  /// disarms). Counters restart from zero. Returns false with \p Err on a
  /// malformed spec, leaving the previous arming in place.
  bool configure(const std::string &Spec, std::string &Err);

  /// Re-arms from the environment (what tests call after a programmatic
  /// configure(), so a CI sweep's env spec stays in force around them).
  void configureFromEnv();

  bool enabled() const;

  /// Consults the injector: true when the armed spec for \p K says this
  /// (atomically counted) consultation must fault.
  bool trip(FaultKind K);

  /// Seeded per-kind RNG for fault parameters (short-write and torn-file
  /// lengths). Only meaningful right after trip(K) returned true.
  uint64_t rand(FaultKind K);

private:
  FaultPoints() = default;

  struct Arm {
    bool Armed = false;
    bool Periodic = false;
    uint64_t Count = 0; ///< 1-based consultation index (or period).
    uint64_t Seed = 1;
    uint64_t Hits = 0; ///< Consultations so far.
    uint64_t Rng = 1;
  };
  Arm Arms[NumFaultKinds];
};

/// Syscall wrappers the chaos-aware sites use. They inject the armed
/// faults (including one-shot EINTRs) and otherwise behave exactly like
/// the raw syscall — callers keep their own retryEintr/short-transfer
/// loops, which is precisely what the injection verifies.
ssize_t fpRead(int Fd, void *Buf, size_t Len);
ssize_t fpWrite(int Fd, const void *Buf, size_t Len);
ssize_t fpSend(int Fd, const void *Buf, size_t Len, int Flags);
int fpRename(const char *From, const char *To);

} // namespace atom

#endif // ATOM_SUPPORT_FAULTPOINTS_H
