//===- support/FaultPoints.cpp --------------------------------------------===//

#include "support/FaultPoints.h"

#include "support/Support.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace atom;

namespace {

/// Fast-path gate: sites skip the mutex entirely while nothing is armed.
std::atomic<bool> AnyArmed{false};
std::mutex Mu; ///< Guards the instance's Arms.

uint64_t nextRand(uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S;
}

bool parseKind(const std::string &Name, FaultKind &K) {
  for (unsigned I = 0; I < NumFaultKinds; ++I)
    if (Name == faultKindName(FaultKind(I))) {
      K = FaultKind(I);
      return true;
    }
  return false;
}

} // namespace

const char *atom::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::ShortWrite: return "short-write";
  case FaultKind::Eio: return "eio";
  case FaultKind::Enospc: return "enospc";
  case FaultKind::Eintr: return "eintr";
  case FaultKind::TornRename: return "torn-rename";
  }
  return "?";
}

FaultPoints &FaultPoints::instance() {
  static FaultPoints FP = [] {
    FaultPoints P;
    P.configureFromEnv();
    return P;
  }();
  return FP;
}

void FaultPoints::configureFromEnv() {
  const char *Env = std::getenv("ATOMD_FAULTPOINTS");
  std::string Err;
  if (!configure(Env ? Env : "", Err) && !Err.empty()) {
    // A malformed env spec must not silently disable chaos CI sweeps.
    fatalError("ATOMD_FAULTPOINTS: " + Err);
  }
}

bool FaultPoints::configure(const std::string &Spec, std::string &Err) {
  Arm Next[NumFaultKinds];
  bool Any = false;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(';', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string One = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (One.empty())
      continue;

    size_t At = One.find('@');
    if (At == std::string::npos) {
      Err = "fault spec '" + One + "' has no '@' (want kind@count[,seed])";
      return false;
    }
    FaultKind K;
    if (!parseKind(One.substr(0, At), K)) {
      Err = "unknown fault kind '" + One.substr(0, At) +
            "' (want short-write|eio|enospc|eintr|torn-rename)";
      return false;
    }
    std::string Rest = One.substr(At + 1);
    std::string Count = Rest;
    uint64_t Seed = 1;
    size_t Comma = Rest.find(',');
    if (Comma != std::string::npos) {
      Count = Rest.substr(0, Comma);
      std::string SeedStr = Rest.substr(Comma + 1);
      char *EndP = nullptr;
      Seed = strtoull(SeedStr.c_str(), &EndP, 0);
      if (SeedStr.empty() || (EndP && *EndP)) {
        Err = "bad fault seed '" + SeedStr + "'";
        return false;
      }
    }
    bool Periodic = !Count.empty() && Count.back() == '+';
    if (Periodic)
      Count.pop_back();
    char *EndP = nullptr;
    uint64_t N = strtoull(Count.c_str(), &EndP, 0);
    if (Count.empty() || (EndP && *EndP) || N == 0) {
      Err = "bad fault count '" + Count + "' (want a positive integer)";
      return false;
    }
    Arm &A = Next[unsigned(K)];
    A.Armed = true;
    A.Periodic = Periodic;
    A.Count = N;
    A.Seed = Seed ? Seed : 1;
    A.Rng = A.Seed;
    Any = true;
  }

  std::lock_guard<std::mutex> L(Mu);
  for (unsigned I = 0; I < NumFaultKinds; ++I)
    Arms[I] = Next[I];
  AnyArmed.store(Any, std::memory_order_relaxed);
  return true;
}

bool FaultPoints::enabled() const {
  return AnyArmed.load(std::memory_order_relaxed);
}

bool FaultPoints::trip(FaultKind K) {
  if (!enabled())
    return false;
  std::lock_guard<std::mutex> L(Mu);
  Arm &A = Arms[unsigned(K)];
  if (!A.Armed)
    return false;
  ++A.Hits;
  return A.Periodic ? (A.Hits % A.Count) == 0 : A.Hits == A.Count;
}

uint64_t FaultPoints::rand(FaultKind K) {
  std::lock_guard<std::mutex> L(Mu);
  return nextRand(Arms[unsigned(K)].Rng);
}

//===----------------------------------------------------------------------===//
// Syscall wrappers
//===----------------------------------------------------------------------===//

ssize_t atom::fpRead(int Fd, void *Buf, size_t Len) {
  FaultPoints &FP = FaultPoints::instance();
  if (FP.enabled()) {
    if (FP.trip(FaultKind::Eintr)) {
      errno = EINTR;
      return -1;
    }
    if (FP.trip(FaultKind::Eio)) {
      errno = EIO;
      return -1;
    }
  }
  return ::read(Fd, Buf, Len);
}

ssize_t atom::fpWrite(int Fd, const void *Buf, size_t Len) {
  FaultPoints &FP = FaultPoints::instance();
  if (FP.enabled()) {
    if (FP.trip(FaultKind::Eintr)) {
      errno = EINTR;
      return -1;
    }
    if (FP.trip(FaultKind::Eio)) {
      errno = EIO;
      return -1;
    }
    if (FP.trip(FaultKind::Enospc)) {
      errno = ENOSPC;
      return -1;
    }
    if (Len > 1 && FP.trip(FaultKind::ShortWrite))
      Len = 1 + FP.rand(FaultKind::ShortWrite) % (Len - 1);
  }
  return ::write(Fd, Buf, Len);
}

ssize_t atom::fpSend(int Fd, const void *Buf, size_t Len, int Flags) {
  FaultPoints &FP = FaultPoints::instance();
  if (FP.enabled()) {
    if (FP.trip(FaultKind::Eintr)) {
      errno = EINTR;
      return -1;
    }
    if (FP.trip(FaultKind::Eio)) {
      errno = EIO;
      return -1;
    }
    if (Len > 1 && FP.trip(FaultKind::ShortWrite))
      Len = 1 + FP.rand(FaultKind::ShortWrite) % (Len - 1);
  }
  return ::send(Fd, Buf, Len, Flags);
}

int atom::fpRename(const char *From, const char *To) {
  FaultPoints &FP = FaultPoints::instance();
  if (FP.enabled() && FP.trip(FaultKind::TornRename)) {
    // Publish a torn entry: the rename "succeeds" but the file is cut to a
    // seeded fraction — exactly what a crash inside a non-atomic rename
    // would leave. Readers must catch this by checksum, never serve it.
    struct stat St;
    if (::stat(From, &St) == 0 && St.st_size > 1) {
      off_t Keep = 1 + off_t(FP.rand(FaultKind::TornRename) %
                             uint64_t(St.st_size - 1));
      (void)!::truncate(From, Keep);
    }
  }
  return ::rename(From, To);
}
