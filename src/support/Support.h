//===- support/Support.h - Small shared utilities --------------*- C++ -*-===//
//
// Part of the ATOM reproduction. Error reporting, string formatting, and a
// wall-clock stopwatch used by the benchmark harnesses.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_SUPPORT_SUPPORT_H
#define ATOM_SUPPORT_SUPPORT_H

#include <cassert>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace atom {

/// Prints \p Msg to stderr and aborts. Used for violated internal
/// invariants that should never happen on valid inputs.
[[noreturn]] void fatalError(const std::string &Msg);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// A diagnostic produced by the assembler, linker, or mini-C compiler.
struct Diag {
  int Line = 0;
  std::string Message;
};

/// Accumulates diagnostics for user-facing front ends (assembler, mcc).
/// Front ends report errors here instead of aborting so tests can assert
/// on malformed inputs.
class DiagEngine {
public:
  void error(int Line, const std::string &Message) {
    Diags.push_back({Line, Message});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diag> &diags() const { return Diags; }

  /// Renders all diagnostics as "line N: message" lines.
  std::string str() const;

private:
  std::vector<Diag> Diags;
};

/// Wall-clock stopwatch for the Figure 5 instrumentation-time benchmark.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  void reset() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Returns true if \p V fits in a signed \p Bits-bit integer.
inline bool fitsSigned(int64_t V, unsigned Bits) {
  assert(Bits >= 1 && Bits <= 64 && "bit width out of range");
  if (Bits == 64)
    return true;
  int64_t Lo = -(int64_t(1) << (Bits - 1));
  int64_t Hi = (int64_t(1) << (Bits - 1)) - 1;
  return V >= Lo && V <= Hi;
}

/// Sign-extends the low \p Bits bits of \p V.
inline int64_t signExtend(uint64_t V, unsigned Bits) {
  assert(Bits >= 1 && Bits <= 64 && "bit width out of range");
  if (Bits == 64)
    return int64_t(V);
  uint64_t Mask = (uint64_t(1) << Bits) - 1;
  uint64_t Sign = uint64_t(1) << (Bits - 1);
  V &= Mask;
  return int64_t((V ^ Sign) - Sign);
}

/// Rounds \p V up to the next multiple of \p Align (a power of two).
inline uint64_t alignTo(uint64_t V, uint64_t Align) {
  assert(Align && (Align & (Align - 1)) == 0 && "alignment not a power of 2");
  return (V + Align - 1) & ~(Align - 1);
}

/// Retries \p Syscall while it fails with EINTR. Every blocking read/write
/// in the daemon, client, and store goes through this (or an equivalent
/// inline loop) so a signal landing mid-syscall can never drop part of a
/// frame or store entry.
template <typename Fn> inline auto retryEintr(Fn &&Syscall) {
  decltype(Syscall()) R;
  do
    R = Syscall();
  while (R < 0 && errno == EINTR);
  return R;
}

/// Names the calling thread (pthread_setname_np, truncated to the 15-char
/// kernel limit) and remembers the full name thread-locally so obs events
/// emitted from this thread can carry it. Diagnosing a stuck worker from a
/// core dump or /proc/<pid>/task/*/comm needs every long-lived thread
/// named.
void setCurrentThreadName(const std::string &Name);

/// The name set by setCurrentThreadName on this thread ("" if none).
const std::string &currentThreadName();

/// Capped exponential backoff with jitter for retry loops (the atomd
/// client's answer to backpressure and breaker-open replies). Delays are
/// drawn uniformly from [min(Cap, Advise), min(Cap, max(Advise, Base <<
/// Attempt))] — the server's retry_after_ms advice is a hard (capped)
/// floor, and the jitter above it de-synchronizes concurrent clients
/// instead of hammering the daemon in lockstep. Deterministic for a
/// fixed seed.
class Backoff {
public:
  explicit Backoff(uint64_t BaseMs = 5, uint64_t CapMs = 200,
                   uint64_t Seed = 0x9E3779B97F4A7C15ull)
      : BaseMs(BaseMs ? BaseMs : 1), CapMs(CapMs ? CapMs : 1),
        State(Seed ? Seed : 1) {}

  /// The delay before retry number \p Attempt (0-based). \p AdviseMs is
  /// the server's retry_after_ms: a hard floor on the returned delay
  /// (capped at CapMs) as well as on the jitter window's target.
  uint64_t delayMs(unsigned Attempt, uint64_t AdviseMs = 0);

private:
  uint64_t BaseMs, CapMs, State;
};

/// 64-bit FNV-1a content hash; \p Seed chains multi-part keys (the
/// pipeline cache hashes tool sources and executable images with it).
inline uint64_t fnv1a(const void *Data, size_t Len,
                      uint64_t Seed = 14695981039346656037ull) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

inline uint64_t fnv1a(const std::string &S,
                      uint64_t Seed = 14695981039346656037ull) {
  // Mix the length first so concatenation boundaries stay distinct when
  // several strings are chained through one running hash.
  uint64_t Len = S.size();
  uint64_t H = fnv1a(&Len, sizeof(Len), Seed);
  return fnv1a(S.data(), S.size(), H);
}

/// splitmix64 finalizer: a full-avalanche 64-bit bijection.
inline uint64_t avalanche64(uint64_t X) {
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

/// A second 64-bit content hash with mixing unrelated to FNV-1a
/// (word-at-a-time multiply-xor avalanche). Paired with fnv1a it forms an
/// effectively 128-bit content identity (atom::CacheKey): a collision —
/// accidental or crafted against FNV-1a's known weaknesses — must defeat
/// both mixes on the same input simultaneously.
inline uint64_t mixHash(const void *Data, size_t Len,
                        uint64_t Seed = 0x9E3779B97F4A7C15ull) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = avalanche64(Seed ^ (uint64_t(Len) * 0xFF51AFD7ED558CCDull));
  size_t I = 0;
  for (; I + 8 <= Len; I += 8) {
    uint64_t W;
    std::memcpy(&W, P + I, 8);
    H = avalanche64(H ^ W) * 0x2545F4914F6CDD1Dull;
  }
  if (I < Len) {
    uint64_t Tail = 0;
    for (size_t J = 0; I + J < Len; ++J)
      Tail |= uint64_t(P[I + J]) << (8 * J);
    H = avalanche64(H ^ Tail) * 0x2545F4914F6CDD1Dull;
  }
  return avalanche64(H);
}

inline uint64_t mixHash(const std::string &S,
                        uint64_t Seed = 0x9E3779B97F4A7C15ull) {
  uint64_t Len = S.size();
  return mixHash(S.data(), S.size(), mixHash(&Len, sizeof(Len), Seed));
}

} // namespace atom

#endif // ATOM_SUPPORT_SUPPORT_H
