//===- support/ThreadPool.cpp - Small reusable worker pool ----------------===//

#include "support/ThreadPool.h"

#include "support/Support.h"

#include <cassert>

using namespace atom;

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (!Threads)
    Threads = defaultConcurrency();
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] {
      setCurrentThreadName(formatString("atom-pool-%u", I));
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stop = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> L(Mu);
      HasWork.wait(L, [this] { return Stop || !Queue.empty(); });
      if (Queue.empty())
        return; // Stop requested and the queue is drained.
      Task = std::move(Queue.front());
      Queue.pop();
    }
    Task();
    {
      std::lock_guard<std::mutex> L(Mu);
      if (--Pending == 0)
        Idle.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> L(Mu);
    assert(!Stop && "submit after shutdown");
    ++Pending;
    Queue.push(std::move(Task));
  }
  HasWork.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> L(Mu);
  Idle.wait(L, [this] { return Pending == 0; });
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
  for (size_t I = 0; I < N; ++I)
    submit([&Fn, I] { Fn(I); });
  wait();
}
