//===- isa/ConstantSynth.cpp ----------------------------------------------===//

#include "isa/ConstantSynth.h"

using namespace atom;
using namespace atom::isa;

namespace {

/// Exact decomposition Value = Top*2^32 + Mid*2^16 + Lo with Mid and Lo both
/// signed 16-bit, so an ldah/lda pair (which performs 64-bit adds) can apply
/// the low 32 bits without displacement overflow.
struct Decomp {
  int64_t Top;
  int16_t Mid;
  int16_t Lo;
};

Decomp decompose(int64_t Value) {
  // The intermediate subtractions can step past INT64_MAX (e.g.
  // Value = 2^63-1 has Lo = -1), so do them in uint64_t where wrap-around
  // is defined; the ldah/lda adds they model wrap the same way.
  Decomp D;
  D.Lo = int16_t(uint64_t(Value) & 0xFFFF);
  uint64_t Rem = uint64_t(Value) - uint64_t(int64_t(D.Lo));
  D.Mid = int16_t((Rem >> 16) & 0xFFFF);
  uint64_t Rem2 = Rem - (uint64_t(int64_t(D.Mid)) << 16);
  D.Top = int64_t(Rem2) >> 32;
  assert((Rem2 & 0xFFFFFFFF) == 0 && "decomposition not exact");
  return D;
}

unsigned synthImpl(int64_t Value, unsigned Rd, std::vector<Inst> *Out) {
  Decomp D = decompose(Value);
  if (D.Top == 0) {
    // Reachable with at most an ldah/lda pair.
    unsigned N = 0;
    unsigned Base = RegZero;
    if (D.Mid != 0 || (D.Mid == 0 && D.Lo == 0)) {
      if (D.Mid != 0) {
        if (Out)
          Out->push_back(makeMem(Opcode::Ldah, Rd, D.Mid, RegZero));
        Base = Rd;
        ++N;
      }
    }
    if (D.Lo != 0 || N == 0) {
      if (Out)
        Out->push_back(makeMem(Opcode::Lda, Rd, D.Lo, Base));
      ++N;
    }
    return N;
  }

  // General case: build Top, shift left 32, add the middle/low parts.
  unsigned N = synthImpl(D.Top, Rd, Out);
  if (Out)
    Out->push_back(makeOpLit(Opcode::Sll, Rd, 32, Rd));
  ++N;
  if (D.Mid != 0) {
    if (Out)
      Out->push_back(makeMem(Opcode::Ldah, Rd, D.Mid, Rd));
    ++N;
  }
  if (D.Lo != 0) {
    if (Out)
      Out->push_back(makeMem(Opcode::Lda, Rd, D.Lo, Rd));
    ++N;
  }
  return N;
}

} // namespace

void isa::synthesizeConstant(int64_t Value, unsigned Rd,
                             std::vector<Inst> &Out) {
  assert(Rd != RegZero && "cannot synthesize into the zero register");
  synthImpl(Value, Rd, &Out);
}

unsigned isa::constantCost(int64_t Value) {
  return synthImpl(Value, RegT0, nullptr);
}
