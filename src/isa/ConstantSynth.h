//===- isa/ConstantSynth.h - Materialize 64-bit constants ------*- C++ -*-===//
//
// Plans the minimal lda/ldah/sll sequence that builds an arbitrary 64-bit
// constant in a register. ATOM's argument-passing cost model (paper §4:
// "a 16-bit integer constant can be built in 1 instruction, a 32-bit
// constant in two instructions, ...") is realized here.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ISA_CONSTANTSYNTH_H
#define ATOM_ISA_CONSTANTSYNTH_H

#include "isa/Isa.h"

namespace atom {
namespace isa {

/// Appends to \p Out a sequence of instructions that leaves \p Value in
/// register \p Rd. Uses only Rd itself as scratch. Sequence lengths:
/// 1 for 16-bit values, 2 for 32-bit values, up to 5 in the general case.
void synthesizeConstant(int64_t Value, unsigned Rd, std::vector<Inst> &Out);

/// Number of instructions synthesizeConstant() would emit.
unsigned constantCost(int64_t Value);

} // namespace isa
} // namespace atom

#endif // ATOM_ISA_CONSTANTSYNTH_H
