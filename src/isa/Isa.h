//===- isa/Isa.h - The AXP64-lite instruction set ---------------*- C++ -*-===//
//
// A 64-bit Alpha-AXP-flavoured RISC ISA used as the substrate for the ATOM
// reproduction. It keeps the properties ATOM's cost model depends on:
//   * 32 integer registers with the OSF/1 calling-standard roles,
//   * 32-bit fixed-width instructions in Alpha's operate/memory/branch/jump
//     formats (16-bit memory displacements, signed 21-bit branch
//     displacements, 8-bit operate literals),
//   * bsr/jsr subroutine linkage through the ra register.
//
// Deviations from real Alpha (documented in DESIGN.md): integer divide and
// remainder are hardware instructions (real Alpha used software divide), and
// byte/word loads and stores exist (as on later Alphas with BWX).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ISA_ISA_H
#define ATOM_ISA_ISA_H

#include "support/Support.h"

#include <cstdint>
#include <string>
#include <vector>

namespace atom {
namespace isa {

/// Integer register numbers with their OSF/1 calling-standard roles.
enum Reg : unsigned {
  RegV0 = 0,  ///< Function return value (caller-save).
  RegT0 = 1,  ///< t0..t7: scratch (caller-save).
  RegT1 = 2,
  RegT2 = 3,
  RegT3 = 4,
  RegT4 = 5,
  RegT5 = 6,
  RegT6 = 7,
  RegT7 = 8,
  RegS0 = 9,  ///< s0..s5: saved (callee-save).
  RegS1 = 10,
  RegS2 = 11,
  RegS3 = 12,
  RegS4 = 13,
  RegS5 = 14,
  RegFP = 15, ///< Frame pointer / s6 (callee-save).
  RegA0 = 16, ///< a0..a5: argument registers (caller-save).
  RegA1 = 17,
  RegA2 = 18,
  RegA3 = 19,
  RegA4 = 20,
  RegA5 = 21,
  RegT8 = 22, ///< t8..t11: scratch (caller-save).
  RegT9 = 23,
  RegT10 = 24,
  RegT11 = 25,
  RegRA = 26,   ///< Return address.
  RegPV = 27,   ///< Procedure value / t12 (caller-save).
  RegAT = 28,   ///< Assembler temporary (caller-save).
  RegGP = 29,   ///< Global pointer (unused by our code generators).
  RegSP = 30,   ///< Stack pointer.
  RegZero = 31, ///< Hardwired zero.
  NumRegs = 32,
};

/// True for registers a callee may clobber without saving (v0, t0..t11,
/// a0..a5, pv, at). ra is reported caller-save as well: it is clobbered by
/// any call and ATOM always saves it at instrumentation sites.
bool isCallerSaved(unsigned R);

/// True for s0..s5 and fp, which procedures must preserve.
bool isCalleeSaved(unsigned R);

/// OSF/1-style register name ("v0", "t3", "sp", ...).
const char *regName(unsigned R);

/// Parses a register name (either the role name "a0" or "$17" form).
/// Returns NumRegs on failure.
unsigned parseRegName(const std::string &Name);

/// Every machine operation. The encoding (major opcode + function code) is
/// private to encode()/decode(); the rest of the system works with this enum.
enum class Opcode : uint8_t {
  // Memory format: op ra, disp(rb)
  Lda,  ///< ra = rb + sext(disp)
  Ldah, ///< ra = rb + sext(disp) << 16
  Ldbu, ///< ra = zext(mem8[rb + disp])
  Ldwu, ///< ra = zext(mem16[rb + disp])
  Ldl,  ///< ra = sext(mem32[rb + disp])
  Ldq,  ///< ra = mem64[rb + disp]
  Stb,  ///< mem8[rb + disp] = ra
  Stw,  ///< mem16[rb + disp] = ra
  Stl,  ///< mem32[rb + disp] = ra
  Stq,  ///< mem64[rb + disp] = ra

  // Branch format: op ra, disp (target = pc + 4 + 4*disp)
  Br,   ///< Unconditional; ra = return pc (usually zero).
  Bsr,  ///< Subroutine branch; ra = return pc.
  Beq,  ///< Taken iff ra == 0
  Bne,  ///< Taken iff ra != 0
  Blt,  ///< Taken iff ra < 0
  Ble,  ///< Taken iff ra <= 0
  Bgt,  ///< Taken iff ra > 0
  Bge,  ///< Taken iff ra >= 0
  Blbc, ///< Taken iff low bit of ra clear
  Blbs, ///< Taken iff low bit of ra set

  // Jump format: op ra, (rb); ra = return pc, pc = rb & ~3
  Jmp,
  Jsr,
  Ret,

  // Operate format: op ra, rb|#lit, rc
  Addl, ///< rc = sext32(ra + rb)
  Addq,
  Subl, ///< rc = sext32(ra - rb)
  Subq,
  Mull, ///< rc = sext32(ra * rb)
  Mulq,
  Umulh, ///< rc = high 64 bits of unsigned ra * rb
  Divq,  ///< rc = ra / rb (signed; 0 divisor -> 0). ISA extension.
  Remq,  ///< rc = ra % rb (signed; 0 divisor -> 0). ISA extension.
  Divqu, ///< Unsigned divide. ISA extension.
  Remqu, ///< Unsigned remainder. ISA extension.
  And,
  Bic,   ///< rc = ra & ~rb
  Bis,   ///< rc = ra | rb
  Ornot, ///< rc = ra | ~rb
  Xor,
  Eqv,    ///< rc = ra ^ ~rb
  Sll,
  Srl,
  Sra,
  Cmpeq,  ///< rc = (ra == rb)
  Cmplt,  ///< rc = (ra < rb) signed
  Cmple,  ///< rc = (ra <= rb) signed
  Cmpult, ///< rc = (ra < rb) unsigned
  Cmpule, ///< rc = (ra <= rb) unsigned
  Sextb,  ///< rc = sext8(rb)
  Sextw,  ///< rc = sext16(rb)

  // PAL format.
  Callsys, ///< System call: number in v0, args a0..a2, result v0.
  Halt,    ///< Stops the machine (used only by tests).

  NumOpcodes,
};

/// Instruction formats, derivable from the opcode.
enum class Format : uint8_t { Memory, Branch, Jump, Operate, Pal };

/// Returns the format of \p Op.
Format formatOf(Opcode Op);

/// Mnemonic ("ldq", "addq", ...).
const char *opcodeName(Opcode Op);

/// A decoded instruction. Fields that a format does not use are zero
/// (registers default to RegZero).
struct Inst {
  Opcode Op = Opcode::Halt;
  uint8_t Ra = RegZero; ///< Memory/branch: value or link reg. Operate: src1.
  uint8_t Rb = RegZero; ///< Memory: base. Jump: target. Operate: src2.
  uint8_t Rc = RegZero; ///< Operate: destination.
  bool IsLit = false;   ///< Operate: rb field is an 8-bit literal.
  uint8_t Lit = 0;      ///< Operate literal (zero-extended).
  int32_t Disp = 0;     ///< Memory: signed 16-bit. Branch: signed 21-bit
                        ///< instruction count.

  bool operator==(const Inst &O) const = default;
};

/// Convenience constructors.
Inst makeMem(Opcode Op, unsigned Ra, int32_t Disp, unsigned Rb);
Inst makeBranch(Opcode Op, unsigned Ra, int32_t Disp);
Inst makeJump(Opcode Op, unsigned Ra, unsigned Rb);
Inst makeOp(Opcode Op, unsigned Ra, unsigned Rb, unsigned Rc);
Inst makeOpLit(Opcode Op, unsigned Ra, uint8_t Lit, unsigned Rc);
Inst makePal(Opcode Op);
/// bis rs, rs, rd
Inst makeMove(unsigned Src, unsigned Dst);
Inst makeNop(); ///< bis zero, zero, zero

/// Encodes \p I into a 32-bit word. Asserts that immediates fit.
uint32_t encode(const Inst &I);

/// Decodes \p Word. Returns false for words that are not valid encodings.
bool decode(uint32_t Word, Inst &I);

/// Classification predicates used by OM and the ATOM query API.
bool isLoad(Opcode Op);            ///< ldbu/ldwu/ldl/ldq (not lda/ldah)
bool isStore(Opcode Op);
bool isMemRef(Opcode Op);          ///< isLoad || isStore
bool isCondBranch(Opcode Op);
bool isUncondBranch(Opcode Op);    ///< br
bool isDirectCall(Opcode Op);      ///< bsr
bool isIndirectCall(Opcode Op);    ///< jsr
bool isCall(Opcode Op);            ///< bsr or jsr
bool isReturn(Opcode Op);          ///< ret
bool isJump(Opcode Op);            ///< jmp
/// True if the instruction may transfer control (branches, jumps, calls,
/// returns). Callsys and Halt are not control transfers for CFG purposes.
bool isControlTransfer(Opcode Op);
/// Memory access size in bytes for loads/stores, 0 otherwise.
unsigned memAccessSize(Opcode Op);

/// Registers written by \p I as a bitmask (bit R set => register R written).
/// RegZero writes are filtered out.
uint32_t writtenRegs(const Inst &I);
/// Registers read by \p I as a bitmask. RegZero is filtered out.
uint32_t readRegs(const Inst &I);

/// Disassembles \p I; \p PC (the instruction's address) is used to render
/// branch targets as absolute addresses.
std::string disassemble(const Inst &I, uint64_t PC);

} // namespace isa
} // namespace atom

#endif // ATOM_ISA_ISA_H
