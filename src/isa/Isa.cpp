//===- isa/Isa.cpp - AXP64-lite encode/decode and queries -----------------===//

#include "isa/Isa.h"

#include <cstring>
#include <map>

using namespace atom;
using namespace atom::isa;

bool isa::isCallerSaved(unsigned R) {
  if (R == RegV0 || R == RegPV || R == RegAT || R == RegRA)
    return true;
  if (R >= RegT0 && R <= RegT7)
    return true;
  if (R >= RegA0 && R <= RegA5)
    return true;
  if (R >= RegT8 && R <= RegT11)
    return true;
  return false;
}

bool isa::isCalleeSaved(unsigned R) {
  return (R >= RegS0 && R <= RegS5) || R == RegFP;
}

static const char *const RegNames[NumRegs] = {
    "v0", "t0", "t1", "t2", "t3", "t4",  "t5",  "t6",  "t7", "s0", "s1",
    "s2", "s3", "s4", "s5", "fp", "a0",  "a1",  "a2",  "a3", "a4", "a5",
    "t8", "t9", "t10", "t11", "ra", "pv", "at", "gp", "sp", "zero"};

const char *isa::regName(unsigned R) {
  assert(R < NumRegs && "register number out of range");
  return RegNames[R];
}

unsigned isa::parseRegName(const std::string &Name) {
  if (Name.size() >= 2 && Name[0] == '$') {
    unsigned N = 0;
    for (size_t I = 1; I < Name.size(); ++I) {
      if (Name[I] < '0' || Name[I] > '9')
        return NumRegs;
      N = N * 10 + unsigned(Name[I] - '0');
    }
    return N < NumRegs ? N : NumRegs;
  }
  for (unsigned R = 0; R < NumRegs; ++R)
    if (Name == RegNames[R])
      return R;
  return NumRegs;
}

namespace {

/// Encoding descriptor: Alpha-style major opcode plus function code for
/// operate instructions (and the jump-type field for jumps).
struct OpDesc {
  const char *Name;
  Format Fmt;
  uint8_t Major; ///< 6-bit major opcode.
  uint8_t Func;  ///< 7-bit function code (operate) or 2-bit type (jump).
};

} // namespace

static const OpDesc Descs[size_t(Opcode::NumOpcodes)] = {
    // Memory format.
    {"lda", Format::Memory, 0x08, 0},
    {"ldah", Format::Memory, 0x09, 0},
    {"ldbu", Format::Memory, 0x0A, 0},
    {"ldwu", Format::Memory, 0x0C, 0},
    {"ldl", Format::Memory, 0x28, 0},
    {"ldq", Format::Memory, 0x29, 0},
    {"stb", Format::Memory, 0x0E, 0},
    {"stw", Format::Memory, 0x0D, 0},
    {"stl", Format::Memory, 0x2C, 0},
    {"stq", Format::Memory, 0x2D, 0},
    // Branch format.
    {"br", Format::Branch, 0x30, 0},
    {"bsr", Format::Branch, 0x34, 0},
    {"beq", Format::Branch, 0x39, 0},
    {"bne", Format::Branch, 0x3D, 0},
    {"blt", Format::Branch, 0x3A, 0},
    {"ble", Format::Branch, 0x3B, 0},
    {"bgt", Format::Branch, 0x3F, 0},
    {"bge", Format::Branch, 0x3E, 0},
    {"blbc", Format::Branch, 0x38, 0},
    {"blbs", Format::Branch, 0x3C, 0},
    // Jump format (major 0x1A, type field in disp<15:14>).
    {"jmp", Format::Jump, 0x1A, 0},
    {"jsr", Format::Jump, 0x1A, 1},
    {"ret", Format::Jump, 0x1A, 2},
    // Operate format.
    {"addl", Format::Operate, 0x10, 0x00},
    {"addq", Format::Operate, 0x10, 0x20},
    {"subl", Format::Operate, 0x10, 0x09},
    {"subq", Format::Operate, 0x10, 0x29},
    {"mull", Format::Operate, 0x13, 0x00},
    {"mulq", Format::Operate, 0x13, 0x20},
    {"umulh", Format::Operate, 0x13, 0x30},
    {"divq", Format::Operate, 0x14, 0x00},
    {"remq", Format::Operate, 0x14, 0x01},
    {"divqu", Format::Operate, 0x14, 0x02},
    {"remqu", Format::Operate, 0x14, 0x03},
    {"and", Format::Operate, 0x11, 0x00},
    {"bic", Format::Operate, 0x11, 0x08},
    {"bis", Format::Operate, 0x11, 0x20},
    {"ornot", Format::Operate, 0x11, 0x28},
    {"xor", Format::Operate, 0x11, 0x40},
    {"eqv", Format::Operate, 0x11, 0x48},
    {"sll", Format::Operate, 0x12, 0x39},
    {"srl", Format::Operate, 0x12, 0x34},
    {"sra", Format::Operate, 0x12, 0x3C},
    {"cmpeq", Format::Operate, 0x10, 0x2D},
    {"cmplt", Format::Operate, 0x10, 0x4D},
    {"cmple", Format::Operate, 0x10, 0x6D},
    {"cmpult", Format::Operate, 0x10, 0x1D},
    {"cmpule", Format::Operate, 0x10, 0x3D},
    {"sextb", Format::Operate, 0x1C, 0x00},
    {"sextw", Format::Operate, 0x1C, 0x01},
    // PAL format (major 0x00; function in the low 26 bits).
    {"callsys", Format::Pal, 0x00, 0x03},
    {"halt", Format::Pal, 0x00, 0x01},
};

Format isa::formatOf(Opcode Op) { return Descs[size_t(Op)].Fmt; }

const char *isa::opcodeName(Opcode Op) { return Descs[size_t(Op)].Name; }

Inst isa::makeMem(Opcode Op, unsigned Ra, int32_t Disp, unsigned Rb) {
  assert(formatOf(Op) == Format::Memory && "not a memory-format opcode");
  assert(fitsSigned(Disp, 16) && "memory displacement out of range");
  Inst I;
  I.Op = Op;
  I.Ra = uint8_t(Ra);
  I.Rb = uint8_t(Rb);
  I.Disp = Disp;
  return I;
}

Inst isa::makeBranch(Opcode Op, unsigned Ra, int32_t Disp) {
  assert(formatOf(Op) == Format::Branch && "not a branch-format opcode");
  assert(fitsSigned(Disp, 21) && "branch displacement out of range");
  Inst I;
  I.Op = Op;
  I.Ra = uint8_t(Ra);
  I.Disp = Disp;
  return I;
}

Inst isa::makeJump(Opcode Op, unsigned Ra, unsigned Rb) {
  assert(formatOf(Op) == Format::Jump && "not a jump-format opcode");
  Inst I;
  I.Op = Op;
  I.Ra = uint8_t(Ra);
  I.Rb = uint8_t(Rb);
  return I;
}

Inst isa::makeOp(Opcode Op, unsigned Ra, unsigned Rb, unsigned Rc) {
  assert(formatOf(Op) == Format::Operate && "not an operate-format opcode");
  Inst I;
  I.Op = Op;
  I.Ra = uint8_t(Ra);
  I.Rb = uint8_t(Rb);
  I.Rc = uint8_t(Rc);
  return I;
}

Inst isa::makeOpLit(Opcode Op, unsigned Ra, uint8_t Lit, unsigned Rc) {
  assert(formatOf(Op) == Format::Operate && "not an operate-format opcode");
  Inst I;
  I.Op = Op;
  I.Ra = uint8_t(Ra);
  I.IsLit = true;
  I.Lit = Lit;
  I.Rc = uint8_t(Rc);
  return I;
}

Inst isa::makePal(Opcode Op) {
  assert(formatOf(Op) == Format::Pal && "not a PAL-format opcode");
  Inst I;
  I.Op = Op;
  return I;
}

Inst isa::makeMove(unsigned Src, unsigned Dst) {
  return makeOp(Opcode::Bis, Src, Src, Dst);
}

Inst isa::makeNop() { return makeOp(Opcode::Bis, RegZero, RegZero, RegZero); }

uint32_t isa::encode(const Inst &I) {
  const OpDesc &D = Descs[size_t(I.Op)];
  uint32_t W = uint32_t(D.Major) << 26;
  switch (D.Fmt) {
  case Format::Memory:
    assert(fitsSigned(I.Disp, 16) && "memory displacement out of range");
    return W | uint32_t(I.Ra) << 21 | uint32_t(I.Rb) << 16 |
           (uint32_t(I.Disp) & 0xFFFF);
  case Format::Branch:
    assert(fitsSigned(I.Disp, 21) && "branch displacement out of range");
    return W | uint32_t(I.Ra) << 21 | (uint32_t(I.Disp) & 0x1FFFFF);
  case Format::Jump:
    return W | uint32_t(I.Ra) << 21 | uint32_t(I.Rb) << 16 |
           uint32_t(D.Func) << 14;
  case Format::Operate:
    W |= uint32_t(I.Ra) << 21 | uint32_t(D.Func) << 5 | uint32_t(I.Rc);
    if (I.IsLit)
      return W | uint32_t(I.Lit) << 13 | 1u << 12;
    return W | uint32_t(I.Rb) << 16;
  case Format::Pal:
    return W | uint32_t(D.Func);
  }
  fatalError("unknown instruction format");
}

namespace {

/// Lazily-built reverse maps from (major, func) to Opcode.
struct DecodeTables {
  std::map<unsigned, Opcode> MemBr;          // major -> opcode
  std::map<std::pair<unsigned, unsigned>, Opcode> OpFunc; // (major,func)
  std::map<unsigned, Opcode> JumpType;       // jump type field
  std::map<unsigned, Opcode> PalFunc;

  DecodeTables() {
    for (size_t K = 0; K < size_t(Opcode::NumOpcodes); ++K) {
      const OpDesc &D = Descs[K];
      auto Op = Opcode(K);
      switch (D.Fmt) {
      case Format::Memory:
      case Format::Branch:
        MemBr.emplace(D.Major, Op);
        break;
      case Format::Operate:
        OpFunc.emplace(std::make_pair(unsigned(D.Major), unsigned(D.Func)),
                       Op);
        break;
      case Format::Jump:
        JumpType.emplace(D.Func, Op);
        break;
      case Format::Pal:
        PalFunc.emplace(D.Func, Op);
        break;
      }
    }
  }
};

} // namespace

bool isa::decode(uint32_t Word, Inst &I) {
  static const DecodeTables Tables;
  unsigned Major = Word >> 26;
  I = Inst();

  if (Major == 0x00) { // PAL
    auto It = Tables.PalFunc.find(Word & 0x03FFFFFF);
    if (It == Tables.PalFunc.end())
      return false;
    I.Op = It->second;
    return true;
  }

  if (Major == 0x1A) { // Jump
    auto It = Tables.JumpType.find((Word >> 14) & 0x3);
    if (It == Tables.JumpType.end())
      return false;
    I.Op = It->second;
    I.Ra = (Word >> 21) & 31;
    I.Rb = (Word >> 16) & 31;
    return true;
  }

  if (Major == 0x10 || Major == 0x11 || Major == 0x12 || Major == 0x13 ||
      Major == 0x14 || Major == 0x1C) { // Operate
    unsigned Func = (Word >> 5) & 0x7F;
    auto It = Tables.OpFunc.find({Major, Func});
    if (It == Tables.OpFunc.end())
      return false;
    I.Op = It->second;
    I.Ra = (Word >> 21) & 31;
    I.Rc = Word & 31;
    if (Word & (1u << 12)) {
      I.IsLit = true;
      I.Lit = (Word >> 13) & 0xFF;
    } else {
      I.Rb = (Word >> 16) & 31;
    }
    return true;
  }

  auto It = Tables.MemBr.find(Major);
  if (It == Tables.MemBr.end())
    return false;
  I.Op = It->second;
  I.Ra = (Word >> 21) & 31;
  if (formatOf(I.Op) == Format::Memory) {
    I.Rb = (Word >> 16) & 31;
    I.Disp = int32_t(signExtend(Word & 0xFFFF, 16));
  } else {
    I.Disp = int32_t(signExtend(Word & 0x1FFFFF, 21));
  }
  return true;
}

bool isa::isLoad(Opcode Op) {
  switch (Op) {
  case Opcode::Ldbu:
  case Opcode::Ldwu:
  case Opcode::Ldl:
  case Opcode::Ldq:
    return true;
  default:
    return false;
  }
}

bool isa::isStore(Opcode Op) {
  switch (Op) {
  case Opcode::Stb:
  case Opcode::Stw:
  case Opcode::Stl:
  case Opcode::Stq:
    return true;
  default:
    return false;
  }
}

bool isa::isMemRef(Opcode Op) { return isLoad(Op) || isStore(Op); }

bool isa::isCondBranch(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Ble:
  case Opcode::Bgt:
  case Opcode::Bge:
  case Opcode::Blbc:
  case Opcode::Blbs:
    return true;
  default:
    return false;
  }
}

bool isa::isUncondBranch(Opcode Op) { return Op == Opcode::Br; }
bool isa::isDirectCall(Opcode Op) { return Op == Opcode::Bsr; }
bool isa::isIndirectCall(Opcode Op) { return Op == Opcode::Jsr; }
bool isa::isCall(Opcode Op) { return isDirectCall(Op) || isIndirectCall(Op); }
bool isa::isReturn(Opcode Op) { return Op == Opcode::Ret; }
bool isa::isJump(Opcode Op) { return Op == Opcode::Jmp; }

bool isa::isControlTransfer(Opcode Op) {
  return isCondBranch(Op) || isUncondBranch(Op) || isCall(Op) ||
         isReturn(Op) || isJump(Op);
}

unsigned isa::memAccessSize(Opcode Op) {
  switch (Op) {
  case Opcode::Ldbu:
  case Opcode::Stb:
    return 1;
  case Opcode::Ldwu:
  case Opcode::Stw:
    return 2;
  case Opcode::Ldl:
  case Opcode::Stl:
    return 4;
  case Opcode::Ldq:
  case Opcode::Stq:
    return 8;
  default:
    return 0;
  }
}

static uint32_t regBit(unsigned R) {
  return R == RegZero ? 0 : (1u << R);
}

uint32_t isa::writtenRegs(const Inst &I) {
  switch (formatOf(I.Op)) {
  case Format::Memory:
    return isStore(I.Op) ? 0 : regBit(I.Ra);
  case Format::Branch:
    // br/bsr write the link register; conditional branches write nothing.
    return (I.Op == Opcode::Br || I.Op == Opcode::Bsr) ? regBit(I.Ra) : 0;
  case Format::Jump:
    return regBit(I.Ra);
  case Format::Operate:
    return regBit(I.Rc);
  case Format::Pal:
    // callsys returns its result in v0.
    return I.Op == Opcode::Callsys ? regBit(RegV0) : 0;
  }
  return 0;
}

uint32_t isa::readRegs(const Inst &I) {
  switch (formatOf(I.Op)) {
  case Format::Memory:
    if (isStore(I.Op))
      return regBit(I.Ra) | regBit(I.Rb);
    return regBit(I.Rb);
  case Format::Branch:
    return isCondBranch(I.Op) ? regBit(I.Ra) : 0;
  case Format::Jump:
    return regBit(I.Rb);
  case Format::Operate:
    return regBit(I.Ra) | (I.IsLit ? 0 : regBit(I.Rb));
  case Format::Pal:
    if (I.Op == Opcode::Callsys)
      return regBit(RegV0) | regBit(RegA0) | regBit(RegA1) | regBit(RegA2);
    return 0;
  }
  return 0;
}

std::string isa::disassemble(const Inst &I, uint64_t PC) {
  const char *N = opcodeName(I.Op);
  switch (formatOf(I.Op)) {
  case Format::Memory:
    return formatString("%-7s %s, %d(%s)", N, regName(I.Ra), I.Disp,
                        regName(I.Rb));
  case Format::Branch: {
    uint64_t Target = PC + 4 + uint64_t(int64_t(I.Disp)) * 4;
    if (I.Op == Opcode::Br || I.Op == Opcode::Bsr)
      return formatString("%-7s %s, 0x%llx", N, regName(I.Ra),
                          (unsigned long long)Target);
    return formatString("%-7s %s, 0x%llx", N, regName(I.Ra),
                        (unsigned long long)Target);
  }
  case Format::Jump:
    return formatString("%-7s %s, (%s)", N, regName(I.Ra), regName(I.Rb));
  case Format::Operate:
    if (I.IsLit)
      return formatString("%-7s %s, #%u, %s", N, regName(I.Ra),
                          unsigned(I.Lit), regName(I.Rc));
    return formatString("%-7s %s, %s, %s", N, regName(I.Ra), regName(I.Rb),
                        regName(I.Rc));
  case Format::Pal:
    return N;
  }
  return "<bad>";
}
