//===- tools/Tools.cpp - The paper's eleven tools -------------------------===//
//
// Each tool = an instrumentation routine (C++ over the ATOM API — the host
// side, as in the paper where instrumentation routines are linked with OM
// into a custom tool) + analysis routines in mini-C (compiled and linked
// into the instrumented executable's address space).
//
//===----------------------------------------------------------------------===//

#include "tools/Tools.h"

#include "trace/TraceTool.h"

#include <algorithm>
#include <cstdlib>

using namespace atom;
using namespace atom::tools;

namespace {

using Ctx = InstrumentationContext;

//===----------------------------------------------------------------------===//
// branch: prediction using a 2-bit history table
//===----------------------------------------------------------------------===//

const char *BranchAnalysis = R"(
long *bstats;   // per branch: taken, not-taken, mispredicted
char *btable;   // 2-bit saturating counter per branch
long nbranch;

void OpenBranch(long n) {
  nbranch = n;
  bstats = (long *)malloc(n * 3 * sizeof(long));
  memset((char *)bstats, 0, n * 3 * sizeof(long));
  btable = malloc(n);
  memset(btable, 1, n);  // weakly not-taken
}

void CloseBranch() {
  long f = fopen("branch.out", "w");
  long taken = 0;
  long nottaken = 0;
  long mispred = 0;
  long i;
  for (i = 0; i < nbranch; i = i + 1) {
    taken = taken + bstats[i * 3];
    nottaken = nottaken + bstats[i * 3 + 1];
    mispred = mispred + bstats[i * 3 + 2];
  }
  fprintf(f, "branches %ld\n", nbranch);
  fprintf(f, "taken %ld\n", taken);
  fprintf(f, "nottaken %ld\n", nottaken);
  fprintf(f, "mispredicted %ld\n", mispred);
  fclose(f);
}
)";

/// The hot per-branch handler, hand-optimized (the paper's analysis
/// routines were optimized compiled C; mini-C output is deliberately
/// naive, so per-event handlers are written in assembly instead).
/// CondBranch(id=a0, taken=a1, pc=a2): update the 2-bit counter and the
/// taken/not-taken/mispredict counts.
const char *BranchHotAsm = R"(
        .text
        .ent    CondBranch
        .globl  CondBranch
CondBranch:
        laddr   t0, btable
        ldq     t0, 0(t0)
        addq    t0, a0, t0        ; &btable[id]
        ldbu    t1, 0(t0)         ; c
        laddr   t2, bstats
        ldq     t2, 0(t2)
        sll     a0, #1, t3
        addq    t3, a0, t3
        sll     t3, #3, t3
        addq    t2, t3, t2        ; &bstats[id*3]
        cmplt   t1, #2, t4        ; t4 = predicted-not-taken
        bne     a1, CondBranch$taken
        ldq     t3, 8(t2)         ; notTaken++
        addq    t3, #1, t3
        stq     t3, 8(t2)
        beq     t1, CondBranch$mis0
        subq    t1, #1, t1        ; saturating decrement
CondBranch$mis0:
        bne     t4, CondBranch$store
        ldq     t3, 16(t2)        ; mispredicted++
        addq    t3, #1, t3
        stq     t3, 16(t2)
        br      CondBranch$store
CondBranch$taken:
        ldq     t3, 0(t2)         ; taken++
        addq    t3, #1, t3
        stq     t3, 0(t2)
        cmplt   t1, #3, t5
        beq     t5, CondBranch$mis1
        addq    t1, #1, t1        ; saturating increment
CondBranch$mis1:
        beq     t4, CondBranch$store
        ldq     t3, 16(t2)        ; mispredicted++
        addq    t3, #1, t3
        stq     t3, 16(t2)
CondBranch$store:
        stb     t1, 0(t0)
        ret
        .end    CondBranch
)";

void instrumentBranch(Ctx &C) {
  C.addCallProto("OpenBranch(long)");
  C.addCallProto("CondBranch(long, VALUE, long)");
  C.addCallProto("CloseBranch()");
  long NBranch = 0;
  for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
    for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B)) {
      Inst *I = C.getLastInst(B);
      if (!C.isInstType(I, InstType::CondBranch))
        continue;
      C.addCallInst(I, InstPoint::InstBefore, "CondBranch",
                    {Arg::imm(NBranch), Arg::value(RuntimeValue::BrCondValue),
                     Arg::imm(int64_t(C.instPC(I)))});
      ++NBranch;
    }
  C.addCallProgram(ProgramPoint::ProgramBefore, "OpenBranch",
                   {Arg::imm(NBranch)});
  C.addCallProgram(ProgramPoint::ProgramAfter, "CloseBranch", {});
}

//===----------------------------------------------------------------------===//
// cache: direct-mapped 8 KB data cache, 32-byte lines
//===----------------------------------------------------------------------===//

const char *CacheAnalysis = R"(
long tags[256];
long hits;
long misses;

void InitCache() {
  long i;
  for (i = 0; i < 256; i = i + 1)
    tags[i] = -1;
}

void PrintCache() {
  long f = fopen("cache.out", "w");
  fprintf(f, "references %ld\n", hits + misses);
  fprintf(f, "hits %ld\n", hits);
  fprintf(f, "misses %ld\n", misses);
  fclose(f);
}
)";

/// Reference(addr=a0): direct-mapped lookup, 32-byte lines, 256 lines.
const char *CacheHotAsm = R"(
        .text
        .ent    Reference
        .globl  Reference
Reference:
        srl     a0, #5, t0
        and     t0, #255, t0      ; line index
        sll     t0, #3, t0
        laddr   t1, tags
        addq    t1, t0, t1        ; &tags[line]
        ldq     t2, 0(t1)
        sra     a0, #13, t0       ; tag
        cmpeq   t0, t2, t2
        beq     t2, Reference$miss
        laddr   t1, hits
        ldq     t2, 0(t1)
        addq    t2, #1, t2
        stq     t2, 0(t1)
        ret
Reference$miss:
        stq     t0, 0(t1)
        laddr   t1, misses
        ldq     t2, 0(t1)
        addq    t2, #1, t2
        stq     t2, 0(t1)
        ret
        .end    Reference
)";

void instrumentCache(Ctx &C) {
  C.addCallProto("InitCache()");
  C.addCallProto("Reference(VALUE)");
  C.addCallProto("PrintCache()");
  for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
    for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B))
      for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I))
        if (C.isInstType(I, InstType::MemRef))
          C.addCallInst(I, InstPoint::InstBefore, "Reference",
                        {Arg::value(RuntimeValue::EffAddrValue)});
  C.addCallProgram(ProgramPoint::ProgramBefore, "InitCache", {});
  C.addCallProgram(ProgramPoint::ProgramAfter, "PrintCache", {});
}

//===----------------------------------------------------------------------===//
// dyninst: dynamic instruction counts
//===----------------------------------------------------------------------===//

const char *DyninstAnalysis = R"(
long *bcounts;
long nblocks;
long dyninsts;
long dynmem;

void InitDyn(long n) {
  nblocks = n;
  bcounts = (long *)malloc(n * sizeof(long));
  memset((char *)bcounts, 0, n * sizeof(long));
}

void PrintDyn() {
  long f = fopen("dyninst.out", "w");
  long executed = 0;
  long i;
  for (i = 0; i < nblocks; i = i + 1)
    if (bcounts[i])
      executed = executed + 1;
  fprintf(f, "blocks %ld\n", nblocks);
  fprintf(f, "blocks-executed %ld\n", executed);
  fprintf(f, "dynamic-insts %ld\n", dyninsts);
  fprintf(f, "dynamic-memrefs %ld\n", dynmem);
  fclose(f);
}
)";

/// BlockExec(id=a0, ninsts=a1, nmem=a2).
const char *DyninstHotAsm = R"(
        .text
        .ent    BlockExec
        .globl  BlockExec
BlockExec:
        laddr   t0, bcounts
        ldq     t0, 0(t0)
        sll     a0, #3, t1
        addq    t0, t1, t0
        ldq     t1, 0(t0)
        addq    t1, #1, t1
        stq     t1, 0(t0)
        laddr   t0, dyninsts
        ldq     t1, 0(t0)
        addq    t1, a1, t1
        stq     t1, 0(t0)
        laddr   t0, dynmem
        ldq     t1, 0(t0)
        addq    t1, a2, t1
        stq     t1, 0(t0)
        ret
        .end    BlockExec
)";

void instrumentDyninst(Ctx &C) {
  C.addCallProto("InitDyn(long)");
  C.addCallProto("BlockExec(long, long, long)");
  C.addCallProto("PrintDyn()");
  long NBlocks = 0;
  for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
    for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B)) {
      long NMem = 0;
      for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I))
        if (C.isInstType(I, InstType::MemRef))
          ++NMem;
      C.addCallBlock(B, BlockPoint::BlockBefore, "BlockExec",
                     {Arg::imm(NBlocks), Arg::imm(C.instCount(B)),
                      Arg::imm(NMem)});
      ++NBlocks;
    }
  C.addCallProgram(ProgramPoint::ProgramBefore, "InitDyn",
                   {Arg::imm(NBlocks)});
  C.addCallProgram(ProgramPoint::ProgramAfter, "PrintDyn", {});
}

//===----------------------------------------------------------------------===//
// gprof: call-graph-based profiling
//===----------------------------------------------------------------------===//

const char *GprofAnalysis = R"(
long nproc;
long *calls;   // per procedure
long *insts;   // per procedure
long *arcs;    // caller x callee matrix
long stack[4096];
long depth;

void InitGprof(long n) {
  nproc = n;
  calls = (long *)malloc(n * sizeof(long));
  insts = (long *)malloc(n * sizeof(long));
  arcs = (long *)malloc(n * n * sizeof(long));
  memset((char *)calls, 0, n * sizeof(long));
  memset((char *)insts, 0, n * sizeof(long));
  memset((char *)arcs, 0, n * n * sizeof(long));
  stack[0] = -1;
  depth = 0;
}

void Enter(long id, long pc) {
  long caller = stack[depth];
  calls[id] = calls[id] + 1;
  if (caller >= 0)
    arcs[caller * nproc + id] = arcs[caller * nproc + id] + 1;
  if (depth < 4095)
    depth = depth + 1;
  stack[depth] = id;
}

void Leave(long id) {
  if (depth > 0 && stack[depth] == id)
    depth = depth - 1;
}

void PrintGprof() {
  long f = fopen("gprof.out", "w");
  long i;
  long j;
  for (i = 0; i < nproc; i = i + 1)
    if (calls[i] || insts[i])
      fprintf(f, "proc %ld calls %ld insts %ld\n", i, calls[i], insts[i]);
  for (i = 0; i < nproc; i = i + 1)
    for (j = 0; j < nproc; j = j + 1)
      if (arcs[i * nproc + j])
        fprintf(f, "arc %ld -> %ld count %ld\n", i, j, arcs[i * nproc + j]);
  fclose(f);
}
)";

/// Tick(id=a0, ninsts=a1): per-block self-time attribution.
const char *GprofHotAsm = R"(
        .text
        .ent    Tick
        .globl  Tick
Tick:
        laddr   t0, insts
        ldq     t0, 0(t0)
        sll     a0, #3, t1
        addq    t0, t1, t0
        ldq     t1, 0(t0)
        addq    t1, a1, t1
        stq     t1, 0(t0)
        ret
        .end    Tick
)";

void instrumentGprof(Ctx &C) {
  C.addCallProto("InitGprof(long)");
  C.addCallProto("Enter(long, long)");
  C.addCallProto("Leave(long)");
  C.addCallProto("Tick(long, long)");
  C.addCallProto("PrintGprof()");
  long ProcId = 0;
  for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P)) {
    C.addCallProc(P, ProcPoint::ProcBefore, "Enter",
                  {Arg::imm(ProcId), Arg::imm(int64_t(C.procPC(P)))});
    for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B)) {
      C.addCallBlock(B, BlockPoint::BlockBefore, "Tick",
                     {Arg::imm(ProcId), Arg::imm(C.instCount(B))});
      Inst *Last = C.getLastInst(B);
      if (C.isInstType(Last, InstType::Return))
        C.addCallInst(Last, InstPoint::InstBefore, "Leave",
                      {Arg::imm(ProcId)});
    }
    ++ProcId;
  }
  C.addCallProgram(ProgramPoint::ProgramBefore, "InitGprof",
                   {Arg::imm(ProcId)});
  C.addCallProgram(ProgramPoint::ProgramAfter, "PrintGprof", {});
}

//===----------------------------------------------------------------------===//
// inline: potential inlining call sites
//===----------------------------------------------------------------------===//

const char *InlineAnalysis = R"(
long *scount;
long nsites;
long printedHeader;

void InitInline(long n) {
  nsites = n;
  scount = (long *)malloc(n * sizeof(long));
  memset((char *)scount, 0, n * sizeof(long));
}

void CallSite(long id) {
  scount[id] = scount[id] + 1;
}

void PrintSite(long id, long pc, long calleeSize) {
  long f;
  if (!printedHeader) {
    printedHeader = 1;
    f = fopen("inline.out", "w");
  } else {
    f = fopen("inline.out", "a");
  }
  if (scount[id] > 0) {
    fprintf(f, "site 0x%lx count %ld callee-insts %ld", pc, scount[id],
            calleeSize);
    if (scount[id] >= 16 && calleeSize > 0 && calleeSize <= 120)
      fprintf(f, " INLINE-CANDIDATE");
    fprintf(f, "\n");
  }
  fclose(f);
}
)";

void instrumentInline(Ctx &C) {
  C.addCallProto("InitInline(long)");
  C.addCallProto("CallSite(long)");
  C.addCallProto("PrintSite(long, long, long)");
  long NSites = 0;
  for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
    for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B))
      for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I)) {
        if (!C.isInstType(I, InstType::Call))
          continue;
        Proc *Callee = C.callTargetProc(I);
        long CalleeSize = Callee ? C.procInstTotal(Callee) : -1;
        C.addCallInst(I, InstPoint::InstBefore, "CallSite",
                      {Arg::imm(NSites)});
        C.addCallProgram(ProgramPoint::ProgramAfter, "PrintSite",
                         {Arg::imm(NSites), Arg::imm(int64_t(C.instPC(I))),
                          Arg::imm(CalleeSize)});
        ++NSites;
      }
  C.addCallProgram(ProgramPoint::ProgramBefore, "InitInline",
                   {Arg::imm(NSites)});
}

//===----------------------------------------------------------------------===//
// io: input/output summary
//===----------------------------------------------------------------------===//

const char *IoAnalysis = R"(
long wcalls;
long wbytesreq;
long wbytesdone;
long wfds[8];

void WriteCall(long fd, long buf, long len, long id) {
  wcalls = wcalls + 1;
  wbytesreq = wbytesreq + len;
  if (fd >= 0 && fd < 8)
    wfds[fd] = wfds[fd] + len;
}

void WriteRet(long result) {
  if (result > 0)
    wbytesdone = wbytesdone + result;
}

void PrintIo() {
  long f = fopen("io.out", "w");
  long i;
  fprintf(f, "write-calls %ld\n", wcalls);
  fprintf(f, "bytes-requested %ld\n", wbytesreq);
  fprintf(f, "bytes-written %ld\n", wbytesdone);
  for (i = 0; i < 8; i = i + 1)
    if (wfds[i])
      fprintf(f, "fd %ld bytes %ld\n", i, wfds[i]);
  fclose(f);
}
)";

void instrumentIo(Ctx &C) {
  C.addCallProto("WriteCall(REGV, REGV, REGV, long)");
  C.addCallProto("WriteRet(REGV)");
  C.addCallProto("PrintIo()");
  if (Proc *W = C.findProc("__sys_write")) {
    C.addCallProc(W, ProcPoint::ProcBefore, "WriteCall",
                  {Arg::regv(isa::RegA0), Arg::regv(isa::RegA1),
                   Arg::regv(isa::RegA2), Arg::imm(0)});
    C.addCallProc(W, ProcPoint::ProcAfter, "WriteRet",
                  {Arg::regv(isa::RegV0)});
  }
  C.addCallProgram(ProgramPoint::ProgramAfter, "PrintIo", {});
}

//===----------------------------------------------------------------------===//
// malloc: histogram of dynamic memory
//===----------------------------------------------------------------------===//

const char *MallocAnalysis = R"(
long mhist[16];   // power-of-two size classes
long mcalls;
long mbytes;

void MallocCall(long size) {
  long cls = 0;
  long s = size;
  mcalls = mcalls + 1;
  mbytes = mbytes + size;
  while (s > 1 && cls < 15) {
    s = s >> 1;
    cls = cls + 1;
  }
  mhist[cls] = mhist[cls] + 1;
}

void PrintMalloc() {
  long f = fopen("malloc.out", "w");
  long i;
  fprintf(f, "calls %ld\n", mcalls);
  fprintf(f, "bytes %ld\n", mbytes);
  for (i = 0; i < 16; i = i + 1)
    if (mhist[i])
      fprintf(f, "class %ld (<= %ld bytes) count %ld\n", i, (long)2 << i,
              mhist[i]);
  fclose(f);
}
)";

void instrumentMalloc(Ctx &C) {
  C.addCallProto("MallocCall(REGV)");
  C.addCallProto("PrintMalloc()");
  if (Proc *M = C.findProc("malloc"))
    C.addCallProc(M, ProcPoint::ProcBefore, "MallocCall",
                  {Arg::regv(isa::RegA0)});
  C.addCallProgram(ProgramPoint::ProgramAfter, "PrintMalloc", {});
}

//===----------------------------------------------------------------------===//
// pipe: pipeline stall accounting
//===----------------------------------------------------------------------===//

const char *PipeAnalysis = R"(
long totinsts;
long totcycles;

void PrintPipe() {
  long f = fopen("pipe.out", "w");
  fprintf(f, "insts %ld\n", totinsts);
  fprintf(f, "cycles %ld\n", totcycles);
  fprintf(f, "stalls %ld\n", totcycles - totinsts);
  if (totinsts > 0)
    fprintf(f, "cpi-x100 %ld\n", totcycles * 100 / totinsts);
  fclose(f);
}
)";

/// BlockPipe(ninsts=a0, cycles=a1).
const char *PipeHotAsm = R"(
        .text
        .ent    BlockPipe
        .globl  BlockPipe
BlockPipe:
        laddr   t0, totinsts
        ldq     t1, 0(t0)
        addq    t1, a0, t1
        stq     t1, 0(t0)
        laddr   t0, totcycles
        ldq     t1, 0(t0)
        addq    t1, a1, t1
        stq     t1, 0(t0)
        ret
        .end    BlockPipe
)";

/// Static scheduling of one basic block on an in-order single-issue
/// pipeline with result latencies: loads 3 cycles, multiplies 8, divides
/// 16, everything else 1. An instruction stalls until the results it
/// reads are ready. Returns the cycle count for one execution of the
/// block (this is the instrumentation-time work that makes pipe the
/// slowest tool to *apply* in Figure 5, and one of the cheapest to run).
long scheduleBlock(Ctx &C, Block *B) {
  long Ready[isa::NumRegs] = {};
  long Cycle = 0;
  for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I)) {
    isa::Opcode Op = C.instOpcode(I);
    long Lat = 1;
    if (isa::isLoad(Op))
      Lat = 3;
    else if (Op == isa::Opcode::Mulq || Op == isa::Opcode::Mull ||
             Op == isa::Opcode::Umulh)
      Lat = 8;
    else if (Op == isa::Opcode::Divq || Op == isa::Opcode::Remq ||
             Op == isa::Opcode::Divqu || Op == isa::Opcode::Remqu)
      Lat = 16;

    // Issue when all source operands are ready.
    long Issue = Cycle + 1;
    uint32_t Reads = C.instReadRegs(I);
    for (unsigned R = 0; R < isa::NumRegs; ++R)
      if (Reads & (1u << R))
        Issue = std::max(Issue, Ready[R]);
    Cycle = Issue;

    uint32_t Writes = C.instWrittenRegs(I);
    for (unsigned R = 0; R < isa::NumRegs; ++R)
      if (Writes & (1u << R))
        Ready[R] = Issue + Lat;
  }
  return Cycle;
}

void instrumentPipe(Ctx &C) {
  C.addCallProto("BlockPipe(long, long)");
  C.addCallProto("PrintPipe()");
  for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
    for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B)) {
      long Cycles = scheduleBlock(C, B);
      C.addCallBlock(B, BlockPoint::BlockBefore, "BlockPipe",
                     {Arg::imm(C.instCount(B)), Arg::imm(Cycles)});
    }
  C.addCallProgram(ProgramPoint::ProgramAfter, "PrintPipe", {});
}

//===----------------------------------------------------------------------===//
// prof: instruction profiling
//===----------------------------------------------------------------------===//

const char *ProfAnalysis = R"(
long nproc;
long *pcalls;
long *pinsts;

void InitProf(long n) {
  nproc = n;
  pcalls = (long *)malloc(n * sizeof(long));
  pinsts = (long *)malloc(n * sizeof(long));
  memset((char *)pcalls, 0, n * sizeof(long));
  memset((char *)pinsts, 0, n * sizeof(long));
}

void PrintProf() {
  long f = fopen("prof.out", "w");
  long i;
  long total = 0;
  for (i = 0; i < nproc; i = i + 1)
    total = total + pinsts[i];
  fprintf(f, "total-insts %ld\n", total);
  for (i = 0; i < nproc; i = i + 1)
    if (pcalls[i] || pinsts[i])
      fprintf(f, "proc %ld calls %ld insts %ld\n", i, pcalls[i], pinsts[i]);
  fclose(f);
}
)";

/// ProcEnter(id=a0, pc=a1) and ProcInsts(id=a0, ninsts=a1).
const char *ProfHotAsm = R"(
        .text
        .ent    ProcEnter
        .globl  ProcEnter
ProcEnter:
        laddr   t0, pcalls
        ldq     t0, 0(t0)
        sll     a0, #3, t1
        addq    t0, t1, t0
        ldq     t1, 0(t0)
        addq    t1, #1, t1
        stq     t1, 0(t0)
        ret
        .end    ProcEnter

        .ent    ProcInsts
        .globl  ProcInsts
ProcInsts:
        laddr   t0, pinsts
        ldq     t0, 0(t0)
        sll     a0, #3, t1
        addq    t0, t1, t0
        ldq     t1, 0(t0)
        addq    t1, a1, t1
        stq     t1, 0(t0)
        ret
        .end    ProcInsts
)";

void instrumentProf(Ctx &C) {
  C.addCallProto("InitProf(long)");
  C.addCallProto("ProcEnter(long, long)");
  C.addCallProto("ProcInsts(long, long)");
  C.addCallProto("PrintProf()");
  long ProcId = 0;
  for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P)) {
    C.addCallProc(P, ProcPoint::ProcBefore, "ProcEnter",
                  {Arg::imm(ProcId), Arg::imm(int64_t(C.procPC(P)))});
    for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B))
      C.addCallBlock(B, BlockPoint::BlockBefore, "ProcInsts",
                     {Arg::imm(ProcId), Arg::imm(C.instCount(B))});
    ++ProcId;
  }
  C.addCallProgram(ProgramPoint::ProgramBefore, "InitProf",
                   {Arg::imm(ProcId)});
  C.addCallProgram(ProgramPoint::ProgramAfter, "PrintProf", {});
}

//===----------------------------------------------------------------------===//
// syscall: system call summary
//===----------------------------------------------------------------------===//

const char *SyscallAnalysis = R"(
long scount[32];
long serrs;

void SysBefore(long number, long id) {
  if (number >= 0 && number < 32)
    scount[number] = scount[number] + 1;
}

void SysAfter(long result) {
  if (result < 0)
    serrs = serrs + 1;
}

void PrintSys() {
  long f = fopen("syscall.out", "w");
  long i;
  long total = 0;
  for (i = 0; i < 32; i = i + 1)
    total = total + scount[i];
  fprintf(f, "syscalls %ld\n", total);
  fprintf(f, "errors %ld\n", serrs);
  for (i = 0; i < 32; i = i + 1)
    if (scount[i])
      fprintf(f, "sysno %ld count %ld\n", i, scount[i]);
  fclose(f);
}
)";

void instrumentSyscall(Ctx &C) {
  C.addCallProto("SysBefore(REGV, long)");
  C.addCallProto("SysAfter(REGV)");
  C.addCallProto("PrintSys()");
  long Id = 0;
  for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
    for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B))
      for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I)) {
        if (!C.isInstType(I, InstType::Syscall))
          continue;
        // The system call number is in v0 before the call; the result is
        // in v0 after it.
        C.addCallInst(I, InstPoint::InstBefore, "SysBefore",
                      {Arg::regv(isa::RegV0), Arg::imm(Id)});
        C.addCallInst(I, InstPoint::InstAfter, "SysAfter",
                      {Arg::regv(isa::RegV0)});
        ++Id;
      }
  C.addCallProgram(ProgramPoint::ProgramAfter, "PrintSys", {});
}

//===----------------------------------------------------------------------===//
// unalign: unaligned access detection
//===----------------------------------------------------------------------===//

const char *UnalignAnalysis = R"(
long ucount;
long utotal;
long firstpc;

void PrintUnalign() {
  long f = fopen("unalign.out", "w");
  fprintf(f, "accesses %ld\n", utotal);
  fprintf(f, "unaligned %ld\n", ucount);
  if (firstpc)
    fprintf(f, "first-unaligned-pc 0x%lx\n", firstpc);
  fclose(f);
}
)";

/// Access(addr=a0, size=a1, pc=a2): the aligned fast path falls straight
/// through; the unaligned path is cold.
const char *UnalignHotAsm = R"(
        .text
        .ent    Access
        .globl  Access
Access:
        laddr   t0, utotal
        ldq     t1, 0(t0)
        addq    t1, #1, t1
        stq     t1, 0(t0)
        subq    a1, #1, t0
        and     a0, t0, t0
        bne     t0, Access$slow
        ret
Access$slow:
        laddr   t0, ucount
        ldq     t1, 0(t0)
        addq    t1, #1, t1
        stq     t1, 0(t0)
        laddr   t0, firstpc
        ldq     t1, 0(t0)
        bne     t1, Access$done
        stq     a2, 0(t0)
Access$done:
        ret
        .end    Access
)";

void instrumentUnalign(Ctx &C) {
  C.addCallProto("Access(VALUE, long, long)");
  C.addCallProto("PrintUnalign()");
  for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
    for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B))
      for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I)) {
        if (!C.isInstType(I, InstType::MemRef))
          continue;
        unsigned Size = C.instMemSize(I);
        if (Size <= 1)
          continue;
        C.addCallInst(I, InstPoint::InstBefore, "Access",
                      {Arg::value(RuntimeValue::EffAddrValue),
                       Arg::imm(Size), Arg::imm(int64_t(C.instPC(I)))});
      }
  C.addCallProgram(ProgramPoint::ProgramAfter, "PrintUnalign", {});
}

//===----------------------------------------------------------------------===//
// Fault-injection tools (test-only, env-gated)
//===----------------------------------------------------------------------===//

// Deliberately misbehaving "tools" for exercising the daemon's process
// isolation: __crash dies mid-instrumentation, __hang never returns. They
// are resolvable only with ATOM_ENABLE_CRASH_TOOL set (worker processes
// inherit the daemon's environment), so no production daemon can be made
// to run them by a request alone.

void instrumentCrash(Ctx &) {
  volatile int *Null = nullptr;
  *Null = 42; // SIGSEGV inside the pipeline, on purpose
}

void instrumentHang(Ctx &) {
  // The volatile access keeps this loop observable, so the optimizer
  // cannot delete it as side-effect-free UB.
  volatile uint64_t Spin = 0;
  for (;;)
    ++Spin;
}

bool crashToolsEnabled() {
  const char *E = std::getenv("ATOM_ENABLE_CRASH_TOOL");
  return E && *E;
}

const Tool &crashTool() {
  static const Tool T = {"__crash", "test-only: SIGSEGVs mid-pipeline",
                         instrumentCrash, {}, {}};
  return T;
}

const Tool &hangTool() {
  static const Tool T = {"__hang", "test-only: never returns",
                         instrumentHang, {}, {}};
  return T;
}

} // namespace

const std::vector<Tool> &tools::allTools() {
  static const std::vector<Tool> Tools = {
      {"branch", "prediction using 2-bit history table", instrumentBranch,
       {BranchAnalysis}, {BranchHotAsm}},
      {"cache", "model direct mapped 8k byte cache", instrumentCache,
       {CacheAnalysis}, {CacheHotAsm}},
      {"dyninst", "computes dynamic instruction counts", instrumentDyninst,
       {DyninstAnalysis}, {DyninstHotAsm}},
      {"gprof", "call graph based profiling tool", instrumentGprof,
       {GprofAnalysis}, {GprofHotAsm}},
      {"inline", "finds potential inlining call sites", instrumentInline,
       {InlineAnalysis}, {}},
      {"io", "input/output summary tool", instrumentIo, {IoAnalysis}, {}},
      {"malloc", "histogram of dynamic memory", instrumentMalloc,
       {MallocAnalysis}, {}},
      {"pipe", "pipeline stall tool", instrumentPipe, {PipeAnalysis},
       {PipeHotAsm}},
      {"prof", "instruction profiling tool", instrumentProf, {ProfAnalysis},
       {ProfHotAsm}},
      {"syscall", "system call summary tool", instrumentSyscall,
       {SyscallAnalysis}, {}},
      {"unalign", "unalign access tool", instrumentUnalign,
       {UnalignAnalysis}, {UnalignHotAsm}},
  };
  return Tools;
}

const Tool *tools::findTool(const std::string &Name) {
  for (const Tool &T : allTools())
    if (T.Name == Name)
      return &T;
  // The trace recorder is not part of the paper's Figure 5 suite, but it
  // is addressable like any other tool.
  if (Name == trace::traceTool().Name)
    return &trace::traceTool();
  if (crashToolsEnabled()) {
    if (Name == crashTool().Name)
      return &crashTool();
    if (Name == hangTool().Name)
      return &hangTool();
  }
  return nullptr;
}
