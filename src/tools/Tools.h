//===- tools/Tools.h - The paper's eleven analysis tools --------*- C++ -*-===//
//
// The tool suite of the paper's evaluation (Figures 5 and 6):
//   branch   - branch prediction using a 2-bit history table
//   cache    - direct-mapped 8 KB data-cache model
//   dyninst  - dynamic instruction counts
//   gprof    - call-graph-based profiling
//   inline   - potential inlining call sites
//   io       - input/output summary
//   malloc   - histogram of dynamic memory
//   pipe     - pipeline stall accounting (static scheduling at
//              instrumentation time)
//   prof     - instruction profiling per procedure
//   syscall  - system call summary
//   unalign  - unaligned access detection
//
// Each Tool is an instrumentation routine (over the ATOM API) plus mini-C
// analysis routines.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_TOOLS_TOOLS_H
#define ATOM_TOOLS_TOOLS_H

#include "atom/Driver.h"

namespace atom {
namespace tools {

/// All eleven tools, in the order of the paper's Figure 5.
const std::vector<Tool> &allTools();

/// Finds a tool by name; nullptr if unknown.
const Tool *findTool(const std::string &Name);

} // namespace tools
} // namespace atom

#endif // ATOM_TOOLS_TOOLS_H
