//===- trace/Replay.cpp - Trace-driven offline analyzers ------------------===//

#include "trace/Replay.h"

#include "support/Support.h"

#include <unordered_map>

using namespace atom;
using namespace atom::trace;

std::string CacheReplayResult::report() const {
  return formatString("references %lld\nhits %lld\nmisses %lld\n",
                      (long long)(Hits + Misses), (long long)Hits,
                      (long long)Misses);
}

std::string BranchReplayResult::report() const {
  return formatString("branches %lld\ntaken %lld\nnottaken %lld\n"
                      "mispredicted %lld\n",
                      (long long)StaticBranches, (long long)Taken,
                      (long long)NotTaken, (long long)Mispredicted);
}

bool trace::replayCache(AtfReader &R, CacheReplayResult &Out) {
  Out = CacheReplayResult();
  // Mirrors the cache tool's Reference handler: line = bits 5..12 of the
  // address, tag = the address arithmetically shifted right by 13.
  int64_t Tags[256];
  for (int64_t &T : Tags)
    T = -1;
  return R.forEach([&](const Event &E) {
    if (E.Kind != EventKind::Load && E.Kind != EventKind::Store)
      return true;
    unsigned Line = (E.Addr >> 5) & 255;
    int64_t Tag = int64_t(E.Addr) >> 13;
    if (Tags[Line] == Tag) {
      ++Out.Hits;
    } else {
      Tags[Line] = Tag;
      ++Out.Misses;
    }
    return true;
  });
}

bool trace::replayBranch(AtfReader &R, BranchReplayResult &Out) {
  Out = BranchReplayResult();
  Out.StaticBranches = R.stat().StaticCondBranches;
  // Mirrors the branch tool's CondBranch handler: a 2-bit saturating
  // counter per site, initialized to 1; counters >= 2 predict taken.
  std::unordered_map<uint64_t, uint8_t> Counters;
  return R.forEach([&](const Event &E) {
    if (E.Kind != EventKind::CondBranch)
      return true;
    uint8_t &C = Counters.try_emplace(E.PC, uint8_t(1)).first->second;
    bool PredictedTaken = C >= 2;
    if (E.Taken) {
      ++Out.Taken;
      if (C < 3)
        ++C;
    } else {
      ++Out.NotTaken;
      if (C > 0)
        --C;
    }
    if (PredictedTaken != E.Taken)
      ++Out.Mispredicted;
    return true;
  });
}
