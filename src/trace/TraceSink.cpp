//===- trace/TraceSink.cpp - Record ATF from the simulator ----------------===//

#include "trace/TraceSink.h"

#include "om/Lift.h"
#include "obs/Obs.h"

using namespace atom;
using namespace atom::trace;

Event trace::classifyEvent(const sim::TraceEvent &E) {
  Event Out;
  Out.PC = E.PC;
  isa::Opcode Op = E.I.Op;
  if (isa::isLoad(Op) || isa::isStore(Op)) {
    Out.Kind = isa::isLoad(Op) ? EventKind::Load : EventKind::Store;
    Out.Addr = E.EffAddr;
    Out.Size = uint8_t(isa::memAccessSize(Op));
  } else if (isa::isCondBranch(Op)) {
    Out.Kind = EventKind::CondBranch;
    Out.Taken = E.Taken;
  } else if (isa::isCall(Op)) {
    Out.Kind = EventKind::Call;
    // The simulator reports the transfer target in EffAddr for branch and
    // jump instructions (direct and indirect alike).
    Out.Target = E.EffAddr;
  } else if (isa::isReturn(Op)) {
    Out.Kind = EventKind::Return;
  } else if (Op == isa::Opcode::Callsys) {
    Out.Kind = EventKind::Syscall;
    // The simulator reports the syscall number in EffAddr.
    Out.Sysno = E.EffAddr;
  }
  return Out;
}

bool trace::staticCondBranchCount(const obj::Executable &Exe, uint64_t &Out,
                                  DiagEngine &Diags) {
  om::Unit Unit;
  if (!om::liftExecutable(Exe, Unit, Diags))
    return false;
  Out = 0;
  for (const om::Procedure &P : Unit.Procs)
    for (const om::Block &B : P.Blocks)
      if (!B.Insts.empty() && isa::isCondBranch(B.Insts.back().I.Op))
        ++Out;
  return true;
}

bool trace::recordTrace(const obj::Executable &Exe, bool FullRun,
                        std::vector<uint8_t> &Out, sim::RunResult &Run,
                        DiagEngine &Diags, uint32_t EventsPerBlock) {
  uint64_t StaticBranches = 0;
  if (!staticCondBranchCount(Exe, StaticBranches, Diags))
    return false;

  uint64_t StopPC = 0;
  if (!FullRun) {
    int ExitSym = Exe.findSymbol("__exit");
    if (ExitSym >= 0)
      StopPC = Exe.Symbols[size_t(ExitSym)].Value;
  }

  AtfWriter W(EventsPerBlock);
  W.setStaticCondBranches(StaticBranches);
  TraceSink Sink(W, StopPC);
  sim::Machine M(Exe);
  Sink.attach(M);
  Run = M.run();
  if (Run.Status == sim::RunStatus::Trap) {
    // Keep everything recorded up to the fault: flush the partial trace
    // and mark the header truncated so stat/replay know it is incomplete.
    W.markTruncated();
    obs::Registry::global().emitEvent(
        obs::Event("truncated-flush")
            .num("events", W.eventCount())
            .str("kind", sim::trapKindName(Run.Trap))
            .num("pc", Run.FaultPC));
  }
  Out = W.finish();
  return true;
}
