//===- trace/Atf.cpp - ATF encode/decode ----------------------------------===//

#include "trace/Atf.h"

#include <cassert>
#include <cstring>

using namespace atom;
using namespace atom::trace;

//===----------------------------------------------------------------------===//
// Wire constants
//===----------------------------------------------------------------------===//

namespace {

constexpr uint8_t Magic[4] = {'A', 'T', 'F', '1'};
constexpr uint16_t FormatVersion = 1;

// Header layout (see Atf.h). Fixed 104 bytes.
constexpr uint64_t HeaderSize = 104;
constexpr uint64_t OffVersion = 4;
constexpr uint64_t OffFlags = 6;
constexpr uint64_t OffEventsPerBlock = 8;
constexpr uint64_t OffEventCount = 16;
constexpr uint64_t OffBlockCount = 24;
constexpr uint64_t OffIndexOffset = 32;
constexpr uint64_t OffStaticBranches = 40;
constexpr uint64_t OffKindCounts = 48; // 7 x u64 -> ends at 104.

// Block header: u32 payload size, u32 event count, u64 base PC, u64 base
// address. 24 bytes, payload follows.
constexpr uint64_t BlockHeaderSize = 24;

// Index entry: u64 file offset, u64 first event index, u32 event count,
// u32 payload size. 24 bytes.
constexpr uint64_t IndexEntrySize = 24;

// Header flag bits.
constexpr uint16_t FlagTruncated = 1; // Recorded program trapped mid-run.

// Tag byte: bits 0-2 kind, bit 3 sequential-PC, bits 4-7 kind-specific.
constexpr uint8_t TagKindMask = 0x7;
constexpr uint8_t TagSeqPC = 0x8;
constexpr uint8_t TagTaken = 0x10;      // CondBranch
constexpr uint8_t TagHasTarget = 0x10;  // Call
constexpr unsigned TagSizeShift = 4;    // Load/Store: log2(size) in bits 4-5

void put16(std::vector<uint8_t> &B, uint64_t Off, uint16_t V) {
  B[Off] = uint8_t(V);
  B[Off + 1] = uint8_t(V >> 8);
}
void put32(std::vector<uint8_t> &B, uint64_t Off, uint32_t V) {
  for (unsigned I = 0; I < 4; ++I)
    B[Off + I] = uint8_t(V >> (8 * I));
}
void put64(std::vector<uint8_t> &B, uint64_t Off, uint64_t V) {
  for (unsigned I = 0; I < 8; ++I)
    B[Off + I] = uint8_t(V >> (8 * I));
}
uint16_t get16(const uint8_t *B) { return uint16_t(B[0] | (B[1] << 8)); }
uint32_t get32(const uint8_t *B) {
  uint32_t V = 0;
  for (unsigned I = 0; I < 4; ++I)
    V |= uint32_t(B[I]) << (8 * I);
  return V;
}
uint64_t get64(const uint8_t *B) {
  uint64_t V = 0;
  for (unsigned I = 0; I < 8; ++I)
    V |= uint64_t(B[I]) << (8 * I);
  return V;
}

unsigned log2Size(uint8_t Size) {
  switch (Size) {
  case 2: return 1;
  case 4: return 2;
  case 8: return 3;
  default: return 0;
  }
}

} // namespace

const char *trace::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Plain: return "plain";
  case EventKind::Load: return "load";
  case EventKind::Store: return "store";
  case EventKind::CondBranch: return "cond-branch";
  case EventKind::Call: return "call";
  case EventKind::Return: return "return";
  case EventKind::Syscall: return "syscall";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Varint primitives
//===----------------------------------------------------------------------===//

void trace::appendVarint(std::vector<uint8_t> &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(uint8_t(V) | 0x80);
    V >>= 7;
  }
  Out.push_back(uint8_t(V));
}

uint64_t trace::zigzagEncode(int64_t V) {
  return (uint64_t(V) << 1) ^ uint64_t(V >> 63);
}

int64_t trace::zigzagDecode(uint64_t V) {
  return int64_t(V >> 1) ^ -int64_t(V & 1);
}

bool trace::readVarint(const uint8_t *Bytes, size_t &Pos, size_t End,
                       uint64_t &V) {
  V = 0;
  unsigned Shift = 0;
  while (Pos < End && Shift < 70) {
    uint8_t B = Bytes[Pos++];
    V |= uint64_t(B & 0x7F) << Shift;
    if (!(B & 0x80))
      return true;
    Shift += 7;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// AtfWriter
//===----------------------------------------------------------------------===//

AtfWriter::AtfWriter(uint32_t EventsPerBlock)
    : EventsPerBlock(EventsPerBlock ? EventsPerBlock : 1) {}

void AtfWriter::append(const Event &E) {
  assert(!Finished && "append after finish()");
  if (OpenEvents == 0) {
    OpenBasePC = E.PC;
    OpenBaseAddr = PrevAddr;
    PrevPC = E.PC - 4; // First event of a block is "sequential" by design.
  }

  uint8_t Tag = uint8_t(E.Kind);
  bool Seq = E.PC == PrevPC + 4;
  if (Seq)
    Tag |= TagSeqPC;
  switch (E.Kind) {
  case EventKind::Load:
  case EventKind::Store:
    Tag |= uint8_t(log2Size(E.Size) << TagSizeShift);
    break;
  case EventKind::CondBranch:
    if (E.Taken)
      Tag |= TagTaken;
    break;
  case EventKind::Call:
    if (E.Target)
      Tag |= TagHasTarget;
    break;
  default:
    break;
  }
  Payload.push_back(Tag);
  if (!Seq)
    appendVarint(Payload,
                 zigzagEncode((int64_t(E.PC) - int64_t(PrevPC + 4)) / 4));
  switch (E.Kind) {
  case EventKind::Load:
  case EventKind::Store:
    appendVarint(Payload,
                 zigzagEncode(int64_t(E.Addr) - int64_t(PrevAddr)));
    PrevAddr = E.Addr;
    break;
  case EventKind::Call:
    if (E.Target)
      appendVarint(Payload,
                   zigzagEncode((int64_t(E.Target) - int64_t(E.PC + 4)) / 4));
    break;
  case EventKind::Syscall:
    appendVarint(Payload, E.Sysno);
    break;
  default:
    break;
  }
  PrevPC = E.PC;

  ++KindCounts[size_t(E.Kind)];
  ++EventCount;
  if (++OpenEvents >= EventsPerBlock)
    flushBlock();
}

void AtfWriter::flushBlock() {
  if (OpenEvents == 0)
    return;
  IndexEntry Ent;
  Ent.BlockOffset = Blocks.size();
  Ent.FirstEvent = EventCount - OpenEvents;
  Ent.EventCount = OpenEvents;
  Ent.PayloadSize = uint32_t(Payload.size());
  Index.push_back(Ent);

  size_t HdrAt = Blocks.size();
  Blocks.resize(Blocks.size() + BlockHeaderSize);
  put32(Blocks, HdrAt, uint32_t(Payload.size()));
  put32(Blocks, HdrAt + 4, OpenEvents);
  put64(Blocks, HdrAt + 8, OpenBasePC);
  put64(Blocks, HdrAt + 16, OpenBaseAddr);
  Blocks.insert(Blocks.end(), Payload.begin(), Payload.end());

  Payload.clear();
  OpenEvents = 0;
}

std::vector<uint8_t> AtfWriter::finish() {
  assert(!Finished && "finish() called twice");
  Finished = true;
  flushBlock();

  std::vector<uint8_t> Out(HeaderSize);
  std::memcpy(Out.data(), Magic, 4);
  put16(Out, OffVersion, FormatVersion);
  put16(Out, OffFlags, Truncated ? FlagTruncated : 0);
  put32(Out, OffEventsPerBlock, EventsPerBlock);
  put64(Out, OffEventCount, EventCount);
  put64(Out, OffBlockCount, Index.size());
  put64(Out, OffStaticBranches, StaticCondBranches);
  for (unsigned K = 0; K < NumEventKinds; ++K)
    put64(Out, OffKindCounts + 8 * K, KindCounts[K]);

  Out.insert(Out.end(), Blocks.begin(), Blocks.end());
  uint64_t IndexOffset = Out.size();
  put64(Out, OffIndexOffset, IndexOffset);
  size_t At = Out.size();
  Out.resize(Out.size() + Index.size() * IndexEntrySize);
  for (const IndexEntry &Ent : Index) {
    put64(Out, At, HeaderSize + Ent.BlockOffset);
    put64(Out, At + 8, Ent.FirstEvent);
    put32(Out, At + 16, Ent.EventCount);
    put32(Out, At + 20, Ent.PayloadSize);
    At += IndexEntrySize;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// AtfReader
//===----------------------------------------------------------------------===//

const char *AtfReader::errorString(Error E) {
  switch (E) {
  case Error::None: return "no error";
  case Error::TooSmall: return "file shorter than an ATF header";
  case Error::BadMagic: return "not an ATF trace (bad magic)";
  case Error::BadVersion: return "unsupported ATF version";
  case Error::BadHeader: return "corrupt ATF header";
  case Error::BadIndex: return "corrupt ATF block index";
  case Error::BadPayload: return "corrupt ATF event payload";
  }
  return "?";
}

AtfReader::Error AtfReader::open(const std::vector<uint8_t> &InBytes) {
  Bytes = &InBytes;
  BlockRefs.clear();
  Stat = AtfStat();

  const uint8_t *B = InBytes.data();
  uint64_t Size = InBytes.size();
  if (Size < HeaderSize)
    return Err = Error::TooSmall;
  if (std::memcmp(B, Magic, 4) != 0)
    return Err = Error::BadMagic;
  Stat.Version = get16(B + OffVersion);
  if (Stat.Version != FormatVersion)
    return Err = Error::BadVersion;
  Stat.Truncated = (get16(B + OffFlags) & FlagTruncated) != 0;

  Stat.EventCount = get64(B + OffEventCount);
  Stat.BlockCount = get64(B + OffBlockCount);
  Stat.StaticCondBranches = get64(B + OffStaticBranches);
  Stat.FileBytes = Size;
  uint64_t KindTotal = 0;
  for (unsigned K = 0; K < NumEventKinds; ++K) {
    Stat.KindCounts[K] = get64(B + OffKindCounts + 8 * K);
    KindTotal += Stat.KindCounts[K];
  }
  if (KindTotal != Stat.EventCount)
    return Err = Error::BadHeader;

  uint64_t IndexOffset = get64(B + OffIndexOffset);
  if (IndexOffset < HeaderSize || IndexOffset > Size ||
      Stat.BlockCount > (Size - IndexOffset) / IndexEntrySize)
    return Err = Error::BadHeader;

  uint64_t EventsSeen = 0;
  for (uint64_t I = 0; I < Stat.BlockCount; ++I) {
    const uint8_t *Ent = B + IndexOffset + I * IndexEntrySize;
    BlockRef R;
    R.Offset = get64(Ent);
    uint64_t FirstEvent = get64(Ent + 8);
    R.EventCount = get32(Ent + 16);
    R.PayloadSize = get32(Ent + 20);
    if (R.Offset < HeaderSize ||
        R.Offset + BlockHeaderSize + R.PayloadSize > IndexOffset ||
        FirstEvent != EventsSeen || R.EventCount == 0)
      return Err = Error::BadIndex;
    // The block's own header must agree with the index.
    if (get32(B + R.Offset) != R.PayloadSize ||
        get32(B + R.Offset + 4) != R.EventCount)
      return Err = Error::BadIndex;
    EventsSeen += R.EventCount;
    Stat.PayloadBytes += R.PayloadSize;
    BlockRefs.push_back(R);
  }
  if (EventsSeen != Stat.EventCount)
    return Err = Error::BadIndex;
  return Err = Error::None;
}

bool AtfReader::forEach(const std::function<bool(const Event &)> &Fn) {
  return forEachSized([&](const Event &E, uint32_t) { return Fn(E); });
}

bool AtfReader::forEachSized(
    const std::function<bool(const Event &, uint32_t)> &Fn) {
  if (Err != Error::None)
    return false;
  const uint8_t *B = Bytes->data();
  for (const BlockRef &R : BlockRefs) {
    uint64_t PrevPC = get64(B + R.Offset + 8) - 4;
    uint64_t PrevAddr = get64(B + R.Offset + 16);
    size_t Pos = R.Offset + BlockHeaderSize;
    size_t End = Pos + R.PayloadSize;
    for (uint32_t N = 0; N < R.EventCount; ++N) {
      if (Pos >= End) {
        Err = Error::BadPayload;
        return false;
      }
      size_t EventStart = Pos;
      uint8_t Tag = B[Pos++];
      Event E;
      if ((Tag & TagKindMask) >= NumEventKinds) {
        Err = Error::BadPayload;
        return false;
      }
      E.Kind = EventKind(Tag & TagKindMask);
      if (Tag & TagSeqPC) {
        E.PC = PrevPC + 4;
      } else {
        uint64_t Raw;
        if (!readVarint(B, Pos, End, Raw)) {
          Err = Error::BadPayload;
          return false;
        }
        E.PC = uint64_t(int64_t(PrevPC + 4) + zigzagDecode(Raw) * 4);
      }
      PrevPC = E.PC;
      switch (E.Kind) {
      case EventKind::Load:
      case EventKind::Store: {
        E.Size = uint8_t(1u << ((Tag >> TagSizeShift) & 3));
        uint64_t Raw;
        if (!readVarint(B, Pos, End, Raw)) {
          Err = Error::BadPayload;
          return false;
        }
        E.Addr = uint64_t(int64_t(PrevAddr) + zigzagDecode(Raw));
        PrevAddr = E.Addr;
        break;
      }
      case EventKind::CondBranch:
        E.Taken = (Tag & TagTaken) != 0;
        break;
      case EventKind::Call:
        if (Tag & TagHasTarget) {
          uint64_t Raw;
          if (!readVarint(B, Pos, End, Raw)) {
            Err = Error::BadPayload;
            return false;
          }
          E.Target = uint64_t(int64_t(E.PC + 4) + zigzagDecode(Raw) * 4);
        }
        break;
      case EventKind::Syscall:
        if (!readVarint(B, Pos, End, E.Sysno)) {
          Err = Error::BadPayload;
          return false;
        }
        break;
      default:
        break;
      }
      if (!Fn(E, uint32_t(Pos - EventStart)))
        return true;
    }
    if (Pos != End) {
      Err = Error::BadPayload;
      return false;
    }
  }
  return true;
}

std::vector<Event> AtfReader::readAll() {
  std::vector<Event> Out;
  Out.reserve(Stat.EventCount);
  forEach([&](const Event &E) {
    Out.push_back(E);
    return true;
  });
  return Out;
}
