//===- trace/Atf.h - The ATOM Trace Format ----------------------*- C++ -*-===//
//
// ATF is a compact, tool-neutral binary encoding of the dynamic event
// stream every ATOM tool consumes: one event per retired instruction,
// classified (plain / load / store / conditional branch / call / return /
// syscall) and carrying the runtime values the tools need (effective
// address and access size, branch outcome, call target, syscall number).
//
// A trace is recorded once — from the simulator's retired-instruction
// hook, or by the `trace` instrumentation tool — and replayed many times
// by offline analyzers (see Replay.h), turning run-per-tool workflows
// into record-once / analyze-many ones.
//
// Layout (all integers little-endian):
//
//   header   magic "ATF1", version, per-kind event totals, static
//            conditional-branch count (recorder metadata), block count,
//            index offset — enough for `stat` without decoding a byte of
//            payload.
//   blocks   each holds up to EventsPerBlock events: a fixed block header
//            (payload size, event count, base PC, base address) followed
//            by the varint-encoded payload. Blocks decode independently,
//            enabling streaming reads.
//   index    one fixed-size entry per block (file offset, first event
//            index, event count, payload size).
//
// Event encoding: a tag byte (kind, "PC is sequential" bit, kind-specific
// bits), then only the fields the kind needs, as LEB128 varints of deltas:
// PCs are encoded as zigzag instruction-count deltas from the previous
// event's PC + 4 (so straight-line code costs one byte per event), memory
// addresses as zigzag byte deltas from the previous memory event, and
// call targets as zigzag deltas from the fall-through PC.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_TRACE_ATF_H
#define ATOM_TRACE_ATF_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace atom {
namespace trace {

/// Classification of one retired instruction.
enum class EventKind : uint8_t {
  Plain = 0,   ///< Anything not covered below (ALU ops, lda, br, jmp...).
  Load = 1,    ///< Carries effective address + access size.
  Store = 2,   ///< Carries effective address + access size.
  CondBranch = 3, ///< Carries the taken/not-taken outcome.
  Call = 4,    ///< bsr/jsr; carries the target when known (0 = unknown).
  Return = 5,  ///< ret.
  Syscall = 6, ///< callsys; carries the syscall number.
};
constexpr unsigned NumEventKinds = 7;

/// Name of \p K ("load", "cond-branch", ...).
const char *eventKindName(EventKind K);

/// One decoded trace event.
struct Event {
  EventKind Kind = EventKind::Plain;
  uint64_t PC = 0;
  uint64_t Addr = 0;   ///< Load/Store: effective address.
  uint8_t Size = 0;    ///< Load/Store: access size in bytes (1/2/4/8).
  bool Taken = false;  ///< CondBranch: outcome.
  uint64_t Target = 0; ///< Call: callee entry PC (0 if unknown).
  uint64_t Sysno = 0;  ///< Syscall: number.

  bool operator==(const Event &O) const = default;
};

/// Everything `stat` reports — parsed from the header and index alone,
/// without decoding any event payload.
struct AtfStat {
  uint16_t Version = 0;
  uint64_t EventCount = 0;
  uint64_t BlockCount = 0;
  uint64_t PayloadBytes = 0; ///< Total encoded event bytes.
  uint64_t FileBytes = 0;
  uint64_t KindCounts[NumEventKinds] = {};
  /// Static conditional-branch count of the recorded executable (recorder
  /// metadata; what the branch tool reports as "branches"). 0 if unknown.
  uint64_t StaticCondBranches = 0;
  /// True when the recorded program trapped mid-run: the trace holds every
  /// event up to the fault but not a complete execution. Replay works
  /// normally; analyzers just see a shorter stream.
  bool Truncated = false;
};

/// Builds an ATF byte stream. Events are appended one at a time; blocks
/// are flushed as they fill; finish() seals the header and index.
class AtfWriter {
public:
  explicit AtfWriter(uint32_t EventsPerBlock = 4096);

  void setStaticCondBranches(uint64_t N) { StaticCondBranches = N; }

  /// Marks the trace as truncated (the traced program trapped before it
  /// finished). The header flag lets `stat` and replayers tell a partial
  /// trace from a complete one.
  void markTruncated() { Truncated = true; }

  void append(const Event &E);

  uint64_t eventCount() const { return EventCount; }

  /// Flushes the open block and returns the complete file image. The
  /// writer is spent afterwards.
  std::vector<uint8_t> finish();

private:
  void flushBlock();

  uint32_t EventsPerBlock;
  uint64_t StaticCondBranches = 0;
  bool Truncated = false;
  uint64_t EventCount = 0;
  uint64_t KindCounts[NumEventKinds] = {};

  std::vector<uint8_t> Blocks; ///< Concatenated block headers + payloads.
  struct IndexEntry {
    uint64_t FileOffset = 0; ///< Filled in by finish().
    uint64_t BlockOffset = 0; ///< Offset within Blocks.
    uint64_t FirstEvent = 0;
    uint32_t EventCount = 0;
    uint32_t PayloadSize = 0;
  };
  std::vector<IndexEntry> Index;

  // Open block state.
  std::vector<uint8_t> Payload;
  uint32_t OpenEvents = 0;
  uint64_t OpenBasePC = 0;
  uint64_t OpenBaseAddr = 0;
  // Encoder context (carried across blocks via the block header bases).
  uint64_t PrevPC = 0;
  uint64_t PrevAddr = 0;
  bool Finished = false;
};

/// Streaming reader. open() validates the header and index only; event
/// payloads are decoded on demand, block by block.
class AtfReader {
public:
  enum class Error {
    None,
    TooSmall,    ///< Shorter than a header.
    BadMagic,
    BadVersion,
    BadHeader,   ///< Header fields inconsistent with the file size.
    BadIndex,    ///< Index entries out of bounds or inconsistent.
    BadPayload,  ///< Varint stream corrupt or truncated inside a block.
  };
  static const char *errorString(Error E);

  /// Parses header + index of \p Bytes (which must outlive the reader).
  /// On failure the reader is unusable and error() says why.
  Error open(const std::vector<uint8_t> &Bytes);

  const AtfStat &stat() const { return Stat; }
  Error error() const { return Err; }

  /// Decodes every event in order. \p Fn returns false to stop early.
  /// Returns false if a payload was corrupt (error() set) — events
  /// delivered before the corruption point were valid.
  bool forEach(const std::function<bool(const Event &)> &Fn);

  /// Like forEach() but also hands \p Fn each event's encoded size in
  /// bytes (tag + varints; block headers not attributed) — the basis for
  /// `axp-trace stat`'s record-size histogram.
  bool forEachSized(const std::function<bool(const Event &, uint32_t)> &Fn);

  /// Convenience: decodes the whole trace into a vector.
  std::vector<Event> readAll();

private:
  const std::vector<uint8_t> *Bytes = nullptr;
  AtfStat Stat;
  Error Err = Error::TooSmall;
  struct BlockRef {
    uint64_t Offset = 0; ///< File offset of the block header.
    uint32_t EventCount = 0;
    uint32_t PayloadSize = 0;
  };
  std::vector<BlockRef> BlockRefs;
};

//===----------------------------------------------------------------------===//
// Varint primitives (exposed for tests).
//===----------------------------------------------------------------------===//

/// Appends \p V as LEB128.
void appendVarint(std::vector<uint8_t> &Out, uint64_t V);
/// Zigzag-encodes a signed value for varint storage.
uint64_t zigzagEncode(int64_t V);
int64_t zigzagDecode(uint64_t V);
/// Reads a LEB128 varint from Bytes[Pos...End); returns false on overrun
/// or a varint longer than 10 bytes.
bool readVarint(const uint8_t *Bytes, size_t &Pos, size_t End, uint64_t &V);

} // namespace trace
} // namespace atom

#endif // ATOM_TRACE_ATF_H
