//===- trace/TraceSink.h - Record ATF from the simulator --------*- C++ -*-===//
//
// The first ATF producer: a sink on the simulator's retired-instruction
// hook. Classifies each sim::TraceEvent into an ATF event and appends it
// to an AtfWriter. Recording normally stops when control reaches __exit —
// the same measurement window the ATOM tools use (ProgramAfter hooks run
// at __exit, so tool reports never include the shutdown path), which is
// what lets offline replay reproduce live tool outputs bit-for-bit.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_TRACE_TRACESINK_H
#define ATOM_TRACE_TRACESINK_H

#include "sim/Machine.h"
#include "trace/Atf.h"

namespace atom {
namespace trace {

/// Converts a retired-instruction hook event into an ATF event.
Event classifyEvent(const sim::TraceEvent &E);

/// Appends events to \p W until \p StopPC retires (0 = never stop).
class TraceSink {
public:
  explicit TraceSink(AtfWriter &W, uint64_t StopPC = 0)
      : W(W), StopPC(StopPC) {}

  /// Installs this sink as \p M's trace hook. The sink must outlive the
  /// run.
  void attach(sim::Machine &M) {
    M.setTraceHook([this](const sim::TraceEvent &E) { handle(E); });
  }

  void handle(const sim::TraceEvent &E) {
    if (Stopped || (StopPC && E.PC == StopPC)) {
      Stopped = true;
      return;
    }
    W.append(classifyEvent(E));
  }

  bool stopped() const { return Stopped; }

private:
  AtfWriter &W;
  uint64_t StopPC;
  bool Stopped = false;
};

/// Static conditional-branch count of \p Exe, computed with the same
/// proc/block traversal the branch tool uses — this is the "branches"
/// line of branch.out, stored in the ATF header so replay can reproduce
/// it. Returns false (with diagnostics) if the executable cannot be
/// lifted.
bool staticCondBranchCount(const obj::Executable &Exe, uint64_t &Out,
                           DiagEngine &Diags);

/// Records a full ATF trace of \p Exe via the simulator hook. Recording
/// stops at __exit unless \p FullRun is set. On success \p Out holds the
/// serialized trace and \p Run the program's run result. If the program
/// traps mid-run the partial trace is still flushed — with the header's
/// truncated flag set — and \p Run carries the trap; check Run.Status.
bool recordTrace(const obj::Executable &Exe, bool FullRun,
                 std::vector<uint8_t> &Out, sim::RunResult &Run,
                 DiagEngine &Diags, uint32_t EventsPerBlock = 4096);

} // namespace trace
} // namespace atom

#endif // ATOM_TRACE_TRACESINK_H
