//===- trace/Replay.h - Trace-driven offline analyzers ----------*- C++ -*-===//
//
// Offline re-implementations of the memory-system tools that, fed a
// recorded ATF trace, reproduce the corresponding live tool's output file
// bit-for-bit: the 8 KB direct-mapped cache model (cache.out) and the
// 2-bit-counter branch predictor (branch.out). Record a workload once,
// then run as many analyzers over the trace as you like — no simulator,
// no re-instrumentation.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_TRACE_REPLAY_H
#define ATOM_TRACE_REPLAY_H

#include "trace/Atf.h"

namespace atom {
namespace trace {

/// Replay result of the cache tool's model: direct-mapped, 8 KB, 32-byte
/// lines (256 lines), write-allocate, tags initialized to -1.
struct CacheReplayResult {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Exactly the bytes the live cache tool writes to cache.out.
  std::string report() const;
};

/// Replay result of the branch tool's predictor: one 2-bit saturating
/// counter per static branch site, initialized to 1 (weakly not-taken).
struct BranchReplayResult {
  uint64_t StaticBranches = 0; ///< From the trace header.
  uint64_t Taken = 0;
  uint64_t NotTaken = 0;
  uint64_t Mispredicted = 0;
  /// Exactly the bytes the live branch tool writes to branch.out.
  std::string report() const;
};

/// Runs the cache model over every load/store event of \p R.
/// Returns false if the trace payload is corrupt (R.error() set).
bool replayCache(AtfReader &R, CacheReplayResult &Out);

/// Runs the branch predictor over every conditional-branch event of \p R,
/// keying counters by branch PC (equivalent to the live tool's per-site
/// ids — every static site has a unique PC).
bool replayBranch(AtfReader &R, BranchReplayResult &Out);

} // namespace trace
} // namespace atom

#endif // ATOM_TRACE_REPLAY_H
