//===- trace/TraceTool.h - The `trace` instrumentation tool -----*- C++ -*-===//
//
// The second ATF producer: a twelfth ATOM tool that records the dynamic
// event stream via instrumentation, exactly like the paper's eleven tools
// observe theirs. Its analysis routines append fixed-width raw records
// (block executions, memory references, branch outcomes, syscall numbers)
// to a buffer and flush them to the VFS file "trace.raw"; a host-side
// converter then regenerates the full per-instruction ATF stream by
// walking each executed block's decoded instructions — straight-line
// blocks make every intermediate PC reconstructible from the block's
// start address.
//
// Record with a pristine application heap (AtomOptions::AnalysisHeapOffset)
// so recorded effective addresses equal those of the uninstrumented run.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_TRACE_TRACETOOL_H
#define ATOM_TRACE_TRACETOOL_H

#include "atom/Driver.h"
#include "sim/Machine.h"
#include "trace/Atf.h"

namespace atom {
namespace trace {

/// The `trace` tool. Not part of tools::allTools() (that list is the
/// paper's Figure 5 suite); tools::findTool() resolves it by name.
const Tool &traceTool();

/// Name of the VFS file the tool's analysis routines write.
constexpr const char *RawTraceFile = "trace.raw";

/// Raw record kinds (two 64-bit words per record: word0 = kind | aux<<8,
/// word1 = value).
enum RawKind : uint64_t {
  RawBlock = 1,   ///< aux = instruction count, value = block start PC.
  RawMem = 2,     ///< value = effective address.
  RawBranch = 3,  ///< aux = taken (0/1).
  RawSyscall = 4, ///< value = syscall number.
};

/// Options for recording via the trace tool. The heap offset defaults to
/// 16 MB: the analysis buffer lives far above the application heap, so
/// recorded addresses match the uninstrumented run (paper's second
/// pristine-heap method).
struct ToolRecordOptions {
  uint64_t AnalysisHeapOffset = 16 * 1024 * 1024;
};

/// Converts the raw byte stream \p Raw (contents of trace.raw) recorded
/// against \p App into a full ATF trace. Fails with diagnostics on
/// malformed raw streams or if \p App cannot be lifted.
bool convertRawTrace(const obj::Executable &App,
                     const std::vector<uint8_t> &Raw,
                     std::vector<uint8_t> &AtfOut, DiagEngine &Diags,
                     uint32_t EventsPerBlock = 4096);

/// End-to-end: instruments \p App with the trace tool, runs it, converts
/// the raw stream. \p Run receives the instrumented program's run result.
bool recordTraceViaTool(const obj::Executable &App,
                        const ToolRecordOptions &Opts,
                        std::vector<uint8_t> &AtfOut, sim::RunResult &Run,
                        DiagEngine &Diags);

} // namespace trace
} // namespace atom

#endif // ATOM_TRACE_TRACETOOL_H
