//===- trace/TraceTool.cpp - The `trace` instrumentation tool -------------===//

#include "trace/TraceTool.h"

#include "om/Lift.h"
#include "trace/TraceSink.h"

#include <map>

using namespace atom;
using namespace atom::trace;

//===----------------------------------------------------------------------===//
// Analysis routines (mini-C)
//===----------------------------------------------------------------------===//

// 16384 records x 16 bytes, flushed with a single __sys_write. The `tdone`
// flag closes the measurement window at ProgramAfter (anchored at __exit),
// so the shutdown path is never recorded — the same window the other
// tools' reports cover and the TraceSink's __exit stop reproduces.
namespace {

const char *TraceAnalysis = R"(
long *tbuf;
long tn;
long tfd;
long tdone;
long tsavera;

void InitTrace() {
  tbuf = (long *)malloc(16384 * 2 * sizeof(long));
  tn = 0;
  tdone = 0;
  tfd = fopen("trace.raw", "w");
}

void TraceFlush() {
  if (tn > 0)
    __sys_write(tfd, (char *)tbuf, tn * 16);
  tn = 0;
}

void CloseTrace() {
  TraceFlush();
  fclose(tfd);
  tdone = 1;
}
)";

// The per-event handlers are frameless hand-written assembly (mcc always
// emits a frame + ra spill, which would bar --opt=O2 from copying them into
// the sites). Record bytes and flush boundaries are exactly the mini-C
// versions' — the ATF output is byte-identical at every opt level. The
// buffer append is a bump-pointer store pair; the 1-in-16384 overflow path
// spills ra to `tsavera`, calls TraceFlush out of line, and reloads ra (the
// idiom ProbeOpt recognizes as ra-neutral, so inlined sites never save ra
// on the fast path).
const char *TraceHotAsm = R"(
        .text
        .ent    TraceBlock
        .globl  TraceBlock
TraceBlock:
        laddr   t0, tdone
        ldq     t0, 0(t0)
        bne     t0, TraceBlock$done
        laddr   t0, tn
        ldq     t1, 0(t0)
        laddr   t2, tbuf
        ldq     t2, 0(t2)
        sll     t1, #4, t3
        addq    t2, t3, t2        ; &tbuf[tn * 2]
        sll     a1, #8, t3
        addq    t3, #1, t3        ; 1 + (n << 8)
        stq     t3, 0(t2)
        stq     a0, 8(t2)
        addq    t1, #1, t1
        stq     t1, 0(t0)
        lda     t3, 16384(zero)
        cmplt   t1, t3, t3
        bne     t3, TraceBlock$done
        laddr   t0, tsavera
        stq     ra, 0(t0)
        bsr     TraceFlush
        laddr   t0, tsavera
        ldq     ra, 0(t0)
TraceBlock$done:
        ret
        .end    TraceBlock

        .ent    TraceMem
        .globl  TraceMem
TraceMem:
        laddr   t0, tdone
        ldq     t0, 0(t0)
        bne     t0, TraceMem$done
        laddr   t0, tn
        ldq     t1, 0(t0)
        laddr   t2, tbuf
        ldq     t2, 0(t2)
        sll     t1, #4, t3
        addq    t2, t3, t2
        lda     t3, 2(zero)
        stq     t3, 0(t2)
        stq     a0, 8(t2)
        addq    t1, #1, t1
        stq     t1, 0(t0)
        lda     t3, 16384(zero)
        cmplt   t1, t3, t3
        bne     t3, TraceMem$done
        laddr   t0, tsavera
        stq     ra, 0(t0)
        bsr     TraceFlush
        laddr   t0, tsavera
        ldq     ra, 0(t0)
TraceMem$done:
        ret
        .end    TraceMem

        .ent    TraceBr
        .globl  TraceBr
TraceBr:
        laddr   t0, tdone
        ldq     t0, 0(t0)
        bne     t0, TraceBr$done
        laddr   t0, tn
        ldq     t1, 0(t0)
        laddr   t2, tbuf
        ldq     t2, 0(t2)
        sll     t1, #4, t3
        addq    t2, t3, t2
        lda     t3, 3(zero)
        beq     a0, TraceBr$store
        lda     t3, 259(zero)     ; 3 + 256: taken
TraceBr$store:
        stq     t3, 0(t2)
        stq     zero, 8(t2)
        addq    t1, #1, t1
        stq     t1, 0(t0)
        lda     t3, 16384(zero)
        cmplt   t1, t3, t3
        bne     t3, TraceBr$done
        laddr   t0, tsavera
        stq     ra, 0(t0)
        bsr     TraceFlush
        laddr   t0, tsavera
        ldq     ra, 0(t0)
TraceBr$done:
        ret
        .end    TraceBr

        .ent    TraceSys
        .globl  TraceSys
TraceSys:
        laddr   t0, tdone
        ldq     t0, 0(t0)
        bne     t0, TraceSys$done
        laddr   t0, tn
        ldq     t1, 0(t0)
        laddr   t2, tbuf
        ldq     t2, 0(t2)
        sll     t1, #4, t3
        addq    t2, t3, t2
        lda     t3, 4(zero)
        stq     t3, 0(t2)
        stq     a0, 8(t2)
        addq    t1, #1, t1
        stq     t1, 0(t0)
        lda     t3, 16384(zero)
        cmplt   t1, t3, t3
        bne     t3, TraceSys$done
        laddr   t0, tsavera
        stq     ra, 0(t0)
        bsr     TraceFlush
        laddr   t0, tsavera
        ldq     ra, 0(t0)
TraceSys$done:
        ret
        .end    TraceSys
)";

//===----------------------------------------------------------------------===//
// Instrumentation routine
//===----------------------------------------------------------------------===//

void instrumentTrace(InstrumentationContext &C) {
  C.addCallProto("InitTrace()");
  C.addCallProto("TraceBlock(long, long)");
  C.addCallProto("TraceMem(VALUE)");
  C.addCallProto("TraceBr(VALUE)");
  C.addCallProto("TraceSys(REGV)");
  C.addCallProto("CloseTrace()");
  for (Proc *P = C.getFirstProc(); P; P = C.getNextProc(P))
    for (Block *B = C.getFirstBlock(P); B; B = C.getNextBlock(B)) {
      C.addCallBlock(B, BlockPoint::BlockBefore, "TraceBlock",
                     {Arg::imm(int64_t(C.blockPC(B))),
                      Arg::imm(C.instCount(B))});
      for (Inst *I = C.getFirstInst(B); I; I = C.getNextInst(I)) {
        if (C.isInstType(I, InstType::MemRef))
          C.addCallInst(I, InstPoint::InstBefore, "TraceMem",
                        {Arg::value(RuntimeValue::EffAddrValue)});
        else if (C.isInstType(I, InstType::CondBranch))
          C.addCallInst(I, InstPoint::InstBefore, "TraceBr",
                        {Arg::value(RuntimeValue::BrCondValue)});
        else if (C.isInstType(I, InstType::Syscall))
          C.addCallInst(I, InstPoint::InstBefore, "TraceSys",
                        {Arg::regv(isa::RegV0)});
      }
    }
  C.addCallProgram(ProgramPoint::ProgramBefore, "InitTrace", {});
  C.addCallProgram(ProgramPoint::ProgramAfter, "CloseTrace", {});
}

} // namespace

const Tool &trace::traceTool() {
  static const Tool T = {"trace",
                         "records an ATF event stream via instrumentation",
                         instrumentTrace,
                         {TraceAnalysis},
                         {TraceHotAsm}};
  return T;
}

//===----------------------------------------------------------------------===//
// Raw stream -> ATF conversion
//===----------------------------------------------------------------------===//

bool trace::convertRawTrace(const obj::Executable &App,
                            const std::vector<uint8_t> &Raw,
                            std::vector<uint8_t> &AtfOut, DiagEngine &Diags,
                            uint32_t EventsPerBlock) {
  om::Unit Unit;
  if (!om::liftExecutable(App, Unit, Diags))
    return false;

  // Map block start PC -> decoded instruction run. Blocks are
  // straight-line, so instruction I of a block retires at start + 4*I.
  struct BlockInfo {
    uint64_t StartPC = 0;
    std::vector<isa::Inst> Insts;
  };
  std::map<uint64_t, BlockInfo> BlocksByPC;
  uint64_t StaticBranches = 0;
  for (const om::Procedure &P : Unit.Procs)
    for (const om::Block &B : P.Blocks) {
      if (B.Insts.empty())
        continue;
      if (isa::isCondBranch(B.Insts.back().I.Op))
        ++StaticBranches;
      BlockInfo Info;
      Info.StartPC = B.OrigPC;
      Info.Insts.reserve(B.Insts.size());
      for (const om::InstNode &I : B.Insts)
        Info.Insts.push_back(I.I);
      BlocksByPC[B.OrigPC] = std::move(Info);
    }

  if (Raw.size() % 16 != 0) {
    Diags.error(0, "raw trace is not a whole number of 16-byte records");
    return false;
  }
  size_t NumRecords = Raw.size() / 16;
  auto word = [&](size_t Rec, unsigned Half) {
    return obj::read64(Raw, Rec * 16 + Half * 8);
  };

  AtfWriter W(EventsPerBlock);
  W.setStaticCondBranches(StaticBranches);

  // Blocks do not end at calls, so a callee's records interleave with the
  // caller block's: reconstruction needs a stack of suspended blocks. Each
  // frame is a block plus the index of its next unretired instruction;
  // quiet instructions (no raw record: arithmetic, calls, returns,
  // unconditional jumps) are replayed from the decoded block whenever a
  // record forces the frame forward.
  struct Frame {
    const BlockInfo *B;
    size_t Next;
  };
  std::vector<Frame> Stack;

  // True for instructions the analysis routines emit a record for.
  auto needsRecord = [](const isa::Inst &In) {
    return isa::isMemRef(In.Op) || isa::isCondBranch(In.Op) ||
           In.Op == isa::Opcode::Callsys;
  };
  // Appends the ATF event for a quiet instruction. CalleePC carries the
  // machine-observed call target when the callee's block record follows
  // (covers indirect jsr); bsr targets are decodable either way.
  auto emitQuiet = [&](const isa::Inst &In, uint64_t PC, uint64_t CalleePC) {
    Event E;
    E.PC = PC;
    if (isa::isCall(In.Op)) {
      E.Kind = EventKind::Call;
      if (CalleePC)
        E.Target = CalleePC;
      else if (In.Op == isa::Opcode::Bsr)
        E.Target = PC + 4 + uint64_t(int64_t(In.Disp)) * 4;
    } else if (isa::isReturn(In.Op)) {
      E.Kind = EventKind::Return;
    }
    W.append(E);
  };
  auto badRecord = [&](size_t R, const char *What) {
    Diags.error(0, formatString("raw trace: record %zu: %s",
                                R, What));
    return false;
  };

  for (size_t Rec = 0; Rec < NumRecords; ++Rec) {
    uint64_t Word0 = word(Rec, 0);
    uint64_t Kind = Word0 & 0xFF;

    const BlockInfo *Entered = nullptr;
    if (Kind == RawBlock) {
      uint64_t StartPC = word(Rec, 1);
      auto It = BlocksByPC.find(StartPC);
      if (It == BlocksByPC.end() ||
          It->second.Insts.size() != (Word0 >> 8))
        return badRecord(Rec, "block record matches no lifted block");
      Entered = &It->second;
      if (Stack.empty()) {
        Stack.push_back({Entered, 0});
        continue;
      }
    } else if (Stack.empty()) {
      return badRecord(Rec, "expected a block record first");
    }

    // Replay quiet instructions on the top frame until this record's
    // instruction (per-instruction record), the call that entered the new
    // block, or the end of the block. A return pops to the suspended
    // caller and the walk continues there.
    bool Attached = false;
    while (!Attached) {
      if (Stack.empty())
        return badRecord(Rec, "record after the call stack unwound");
      Frame &F = Stack.back();
      const std::vector<isa::Inst> &Insts = F.B->Insts;
      if (F.Next >= Insts.size()) {
        // Fell off the block end (fall-through or a branch/jump already
        // replayed): only a block record can follow.
        if (!Entered)
          return badRecord(Rec, "expected a block record at block end");
        F = {Entered, 0};
        Attached = true;
        break;
      }
      const isa::Inst &In = Insts[F.Next];
      uint64_t PC = F.B->StartPC + 4 * F.Next;
      if (needsRecord(In)) {
        Event E;
        E.PC = PC;
        if (isa::isMemRef(In.Op)) {
          if (Kind != RawMem)
            return badRecord(Rec, "expected a memory record");
          E.Kind = isa::isLoad(In.Op) ? EventKind::Load : EventKind::Store;
          E.Addr = word(Rec, 1);
          E.Size = uint8_t(isa::memAccessSize(In.Op));
        } else if (isa::isCondBranch(In.Op)) {
          if (Kind != RawBranch)
            return badRecord(Rec, "expected a branch record");
          E.Kind = EventKind::CondBranch;
          E.Taken = ((Word0 >> 8) & 0xFF) != 0;
        } else {
          if (Kind != RawSyscall)
            return badRecord(Rec, "expected a syscall record");
          E.Kind = EventKind::Syscall;
          E.Sysno = word(Rec, 1);
        }
        W.append(E);
        ++F.Next;
        Attached = true;
        break;
      }
      if (isa::isCall(In.Op)) {
        if (!Entered)
          return badRecord(Rec, "per-instruction record at a call site");
        emitQuiet(In, PC, Entered->StartPC);
        ++F.Next;
        Stack.push_back({Entered, 0});
        Attached = true;
        break;
      }
      emitQuiet(In, PC, 0);
      ++F.Next;
      if (isa::isReturn(In.Op))
        Stack.pop_back();
    }
  }

  // Records stop when CloseTrace runs at __exit entry; the instructions
  // retired between the last record and __exit are all quiet (anything
  // else would have produced a record). Replay them: unwind through
  // returns and stop at the call that enters __exit (always a noreturn
  // call, never recorded because the window is already closed).
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    const std::vector<isa::Inst> &Insts = F.B->Insts;
    if (F.Next >= Insts.size())
      break;
    const isa::Inst &In = Insts[F.Next];
    uint64_t PC = F.B->StartPC + 4 * F.Next;
    if (needsRecord(In))
      break;
    emitQuiet(In, PC, 0);
    ++F.Next;
    if (isa::isCall(In.Op))
      break;
    if (isa::isReturn(In.Op))
      Stack.pop_back();
  }

  AtfOut = W.finish();
  return true;
}

bool trace::recordTraceViaTool(const obj::Executable &App,
                               const ToolRecordOptions &Opts,
                               std::vector<uint8_t> &AtfOut,
                               sim::RunResult &Run, DiagEngine &Diags) {
  AtomOptions AOpts;
  AOpts.AnalysisHeapOffset = Opts.AnalysisHeapOffset;
  InstrumentedProgram Out;
  if (!runAtom(App, traceTool(), AOpts, Out, Diags))
    return false;

  sim::Machine M(Out.Exe);
  Run = M.run();
  if (Run.Status == sim::RunStatus::Trap) {
    Diags.error(0, "instrumented program faulted: " + Run.FaultMessage);
    return false;
  }
  std::string RawText = M.vfs().fileContents(RawTraceFile);
  std::vector<uint8_t> Raw(RawText.begin(), RawText.end());
  return convertRawTrace(App, Raw, AtfOut, Diags);
}
