//===- om/Serialize.h - Versioned binary form of lifted OM IR ---*- C++ -*-===//
//
// A stable on-disk serialization of om::Unit (magic "AOMU"), in the spirit
// of GTIRB's serialized binary IR: lift results can be cached persistently,
// diffed, and consumed by external tools. The atomd artifact store
// (src/atomd/Store.h) uses it as the persistent tier behind the in-memory
// atom::PipelineCache, so a restarted daemon skips compile/link/lift for
// every tool and application it has seen before.
//
// The format is self-contained and fully bounds-checked on read: a
// truncated or corrupted buffer deserializes to false, never to a crash or
// a half-populated unit. Round-tripping is exact — serialize(deserialize(B))
// == B — and enforced by tests/OmSerializeTests.cpp.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_OM_SERIALIZE_H
#define ATOM_OM_SERIALIZE_H

#include "om/Program.h"

namespace atom {
namespace om {

/// Bumped on any layout change; readers reject other versions (a stale
/// cache entry is rebuilt, never misread).
constexpr uint32_t UnitFormatVersion = 1;

/// Serializes \p U to the versioned "AOMU" binary form.
std::vector<uint8_t> serializeUnit(const Unit &U);

/// Parses a serializeUnit() buffer. Returns false on any malformed input
/// (bad magic, version mismatch, truncation, out-of-range enum or index);
/// \p Out is left in an unspecified state on failure. ProcByName is
/// rebuilt, so the result is ready for instrumentation.
bool deserializeUnit(const std::vector<uint8_t> &Bytes, Unit &Out);

} // namespace om
} // namespace atom

#endif // ATOM_OM_SERIALIZE_H
