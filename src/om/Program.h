//===- om/Program.h - OM link-time intermediate representation -*- C++ -*-===//
//
// OM's symbolic IR: a program is a sequence of procedures, a procedure a
// CFG of basic blocks, a block a sequence of instructions (paper §2).
// Control transfers and address materializations are kept symbolic, so
// instructions can be inserted anywhere and the code regenerated without
// manual address fixups (§4 "Inserting Procedure Calls").
//
// Following the paper, every entity carries "action slots": ordered lists
// of analysis-procedure calls to be inserted before/after the entity.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_OM_PROGRAM_H
#define ATOM_OM_PROGRAM_H

#include "isa/Isa.h"
#include "obj/ObjectModule.h"
#include "support/Support.h"

#include <map>
#include <string>
#include <vector>

namespace atom {
namespace om {

/// Which linked unit a symbolic reference points into. The application and
/// the analysis routines keep separate symbol name spaces (paper §2: "ATOM
/// partitions the symbol name space").
enum class UnitTag : uint8_t { App, Analysis };

/// A symbolic reference: symbol + addend within a unit.
struct SymRef {
  UnitTag Unit = UnitTag::App;
  int SymIndex = -1;
  int64_t Addend = 0;
  bool valid() const { return SymIndex >= 0; }
};

/// One argument of an inserted analysis call (paper §3: standard constants,
/// REGV register contents, and VALUE runtime values).
struct CallArg {
  enum Kind { ConstI64, Regv, EffAddr, BrCond } K = ConstI64;
  int64_t Value = 0; ///< ConstI64.
  unsigned Reg = 0;  ///< Regv.
};

/// An annotation in an action slot: call analysis procedure \p Callee with
/// \p Args. Calls at one point run in the order they were added.
struct Action {
  std::string Callee;
  std::vector<CallArg> Args;
};

/// A lifted (or inserted) instruction.
struct InstNode {
  isa::Inst I;
  uint64_t OrigPC = 0; ///< Pre-instrumentation address; 0 for inserted code.

  /// Symbolic Hi16/Lo16/Br21 operand (from a retained relocation, or
  /// synthesized by ATOM for calls into the analysis unit).
  obj::RelocKind RelKind = obj::RelocKind::Abs64;
  bool HasReloc = false;
  SymRef Ref;

  /// Intra-procedure branch target (block index), used by conditional
  /// branches and br. Mutually exclusive with HasReloc.
  int BranchBlock = -1;

  /// Action slots (instruction-level instrumentation).
  std::vector<Action> Before, After;
};

struct Block {
  std::vector<InstNode> Insts;
  std::vector<int> Succs, Preds;
  uint64_t OrigPC = 0;      ///< Original address of the first instruction.
  uint64_t NewPC = 0;       ///< Assigned during layout.
  std::vector<Action> Before, After;
  /// Edge action slots: (successor index, call). The paper left edge
  /// instrumentation unimplemented ("Currently, adding calls to edges is
  /// not implemented"); this system supports it via trampoline blocks.
  std::vector<std::pair<int, Action>> EdgeActions;

  const InstNode *terminator() const {
    if (Insts.empty())
      return nullptr;
    const InstNode &Last = Insts.back();
    return isa::isControlTransfer(Last.I.Op) && !isa::isCall(Last.I.Op)
               ? &Last
               : nullptr;
  }
};

struct Procedure {
  std::string Name;
  int SymIndex = -1;        ///< Defining symbol in the unit's table.
  uint64_t OrigStart = 0;
  uint64_t NewStart = 0;    ///< Assigned during layout.
  std::vector<Block> Blocks; ///< Blocks[0] is the entry.
  std::vector<Action> Before, After;

  unsigned instCount() const {
    unsigned N = 0;
    for (const Block &B : Blocks)
      N += unsigned(B.Insts.size());
    return N;
  }
};

/// A lifted unit: the application program or the merged analysis routines.
struct Unit {
  UnitTag Tag = UnitTag::App;
  std::vector<obj::Symbol> Symbols; ///< Values are original addresses
                                    ///< (app) or section offsets (analysis).
  std::vector<Procedure> Procs;
  std::map<std::string, int> ProcByName;

  std::vector<uint8_t> Data;
  uint64_t DataStart = 0; ///< 0 for a not-yet-placed analysis unit.
  uint64_t BssSize = 0;
  std::vector<obj::Reloc> DataRelocs;

  /// Program-level action slots (only meaningful on the application unit).
  std::vector<Action> ProgramBefore, ProgramAfter;

  Procedure *findProc(const std::string &Name) {
    auto It = ProcByName.find(Name);
    return It == ProcByName.end() ? nullptr : &Procs[size_t(It->second)];
  }
  const Procedure *findProc(const std::string &Name) const {
    auto It = ProcByName.find(Name);
    return It == ProcByName.end() ? nullptr : &Procs[size_t(It->second)];
  }

  /// Adds a fresh symbol; returns its index.
  int addSymbol(const obj::Symbol &S) {
    Symbols.push_back(S);
    return int(Symbols.size() - 1);
  }
};

/// Total instruction count across all procedures.
unsigned totalInsts(const Unit &U);

/// Approximate heap footprint of a unit in bytes (containers, code,
/// data). Used for the pipeline cache's atom.cache-bytes accounting;
/// small allocations (action args, map nodes) are estimated, not counted.
size_t unitMemoryBytes(const Unit &U);

/// Renders the unit as pseudo-assembly for debugging and golden tests.
std::string dumpUnit(const Unit &U);

} // namespace om
} // namespace atom

#endif // ATOM_OM_PROGRAM_H
