//===- om/Liveness.h - Register liveness analysis ---------------*- C++ -*-===//
//
// Backward liveness over a procedure's CFG. The paper lists live-register
// analysis as a refinement that further shrinks register saves at
// instrumentation points ("Only the live registers need to be saved. OM
// can do interprocedural live variable analysis"); it was not in the
// authors' current system, so it is opt-in here
// (AtomOptions::SaveStrategy::SiteLiveness) and benchmarked as an
// ablation.
//
// Two precision levels:
//  * intraprocedural: calls conservatively read a0..a5 and clobber the
//    caller-save set;
//  * interprocedural: per-procedure USE ("may be read before written") and
//    MOD summaries computed to a fixpoint over the call graph refine what
//    each call site reads and kills.
//
// Assumes convention-following code; the paper's caveat about hand-crafted
// assembly is why this is opt-in.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_OM_LIVENESS_H
#define ATOM_OM_LIVENESS_H

#include "om/Program.h"

namespace atom {
namespace om {

/// Per-procedure USE/MOD register summaries for interprocedural liveness,
/// computed to a fixpoint over the unit's direct-call graph.
class UseDefSummaries {
public:
  /// Computes summaries for every procedure of \p U.
  explicit UseDefSummaries(const Unit &U);

  /// Registers procedure \p Name may read before writing (its entry
  /// live-in), and registers it may modify. Unknown procedures get the
  /// conservative convention-based sets.
  uint32_t useOf(const std::string &Name) const;
  uint32_t modOf(const std::string &Name) const;

  /// Conservative fallback sets (unknown callee): reads the argument
  /// registers and sp, clobbers the caller-save set.
  static uint32_t conservativeUse();
  static uint32_t conservativeMod();

private:
  std::map<std::string, uint32_t> Use, Mod;
};

class LivenessInfo {
public:
  /// Computes liveness for \p P. With \p Summaries (and the owning unit
  /// \p U for call-target resolution), call sites use interprocedural
  /// USE/MOD information instead of the conventions.
  explicit LivenessInfo(const Procedure &P, const Unit *U = nullptr,
                        const UseDefSummaries *Summaries = nullptr);

  /// Registers live immediately before instruction \p InstIdx of block
  /// \p BlockIdx, as a mask.
  uint32_t liveBefore(unsigned BlockIdx, unsigned InstIdx) const;

private:
  uint32_t transferBlock(const Block &B, uint32_t Live) const;
  void useDef(const InstNode &N, uint32_t &UseMask, uint32_t &DefMask) const;

  const Procedure &P;
  const Unit *U;
  const UseDefSummaries *Summaries;
  std::vector<uint32_t> BlockLiveOut;
};

} // namespace om
} // namespace atom

#endif // ATOM_OM_LIVENESS_H
