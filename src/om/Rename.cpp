//===- om/Rename.cpp ------------------------------------------------------===//

#include "om/Rename.h"

using namespace atom;
using namespace atom::om;
using namespace atom::isa;

/// Canonical order of the twelve scratch registers.
static const unsigned ScratchOrder[12] = {RegT0, RegT1, RegT2,  RegT3,
                                          RegT4, RegT5, RegT6,  RegT7,
                                          RegT8, RegT9, RegT10, RegT11};

static bool isScratch(unsigned R) {
  return (R >= RegT0 && R <= RegT7) || (R >= RegT8 && R <= RegT11);
}

unsigned om::renameScratchRegs(Unit &U) {
  unsigned ChangedProcs = 0;
  for (Procedure &P : U.Procs) {
    // Collect scratch registers the procedure touches, in canonical order.
    uint32_t Used = 0;
    for (const Block &B : P.Blocks)
      for (const InstNode &N : B.Insts) {
        uint32_t RW = writtenRegs(N.I) | readRegs(N.I);
        Used |= RW;
      }

    unsigned Map[NumRegs];
    for (unsigned R = 0; R < NumRegs; ++R)
      Map[R] = R;
    unsigned Next = 0;
    bool Changed = false;
    for (unsigned R : ScratchOrder) {
      if (!(Used & (1u << R)))
        continue;
      unsigned To = ScratchOrder[Next++];
      Map[R] = To;
      if (To != R)
        Changed = true;
    }
    if (!Changed)
      continue;

    for (Block &B : P.Blocks)
      for (InstNode &N : B.Insts) {
        Inst &I = N.I;
        auto remap = [&](uint8_t &R) {
          if (isScratch(R))
            R = uint8_t(Map[R]);
        };
        switch (formatOf(I.Op)) {
        case Format::Memory:
          remap(I.Ra);
          remap(I.Rb);
          break;
        case Format::Branch:
          remap(I.Ra);
          break;
        case Format::Jump:
          remap(I.Ra);
          remap(I.Rb);
          break;
        case Format::Operate:
          remap(I.Ra);
          if (!I.IsLit)
            remap(I.Rb);
          remap(I.Rc);
          break;
        case Format::Pal:
          break;
        }
      }
    ++ChangedProcs;
  }
  return ChangedProcs;
}
