//===- om/Serialize.cpp ---------------------------------------------------===//

#include "om/Serialize.h"

using namespace atom;
using namespace atom::om;

namespace {

constexpr char Magic[4] = {'A', 'O', 'M', 'U'};

class Writer {
public:
  void u8(uint8_t V) { Out.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back(uint8_t(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back(uint8_t(V >> (8 * I)));
  }
  void i32(int32_t V) { u32(uint32_t(V)); }
  void i64(int64_t V) { u64(uint64_t(V)); }
  void str(const std::string &S) {
    u32(uint32_t(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }
  void bytes(const std::vector<uint8_t> &B) {
    u64(B.size());
    Out.insert(Out.end(), B.begin(), B.end());
  }
  std::vector<uint8_t> Out;
};

class Reader {
public:
  explicit Reader(const std::vector<uint8_t> &B) : B(B) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > B.size())
      return false;
    V = B[Pos++];
    return true;
  }
  bool u32(uint32_t &V) {
    if (Pos + 4 > B.size())
      return false;
    V = 0;
    for (int I = 3; I >= 0; --I)
      V = (V << 8) | B[Pos + size_t(I)];
    Pos += 4;
    return true;
  }
  bool u64(uint64_t &V) {
    if (Pos + 8 > B.size())
      return false;
    V = 0;
    for (int I = 7; I >= 0; --I)
      V = (V << 8) | B[Pos + size_t(I)];
    Pos += 8;
    return true;
  }
  bool i32(int32_t &V) {
    uint32_t U;
    if (!u32(U))
      return false;
    V = int32_t(U);
    return true;
  }
  bool i64(int64_t &V) {
    uint64_t U;
    if (!u64(U))
      return false;
    V = int64_t(U);
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || Pos + N > B.size())
      return false;
    S.assign(B.begin() + long(Pos), B.begin() + long(Pos + N));
    Pos += N;
    return true;
  }
  bool bytes(std::vector<uint8_t> &V) {
    uint64_t N;
    if (!u64(N) || N > B.size() - Pos)
      return false;
    V.assign(B.begin() + long(Pos), B.begin() + long(Pos + N));
    Pos += N;
    return true;
  }
  /// Reads an element count that is followed by at least \p MinElemBytes
  /// bytes per element, so a corrupted count cannot drive a huge resize.
  bool count(uint32_t &N, size_t MinElemBytes) {
    if (!u32(N))
      return false;
    return MinElemBytes == 0 || size_t(N) <= (B.size() - Pos) / MinElemBytes;
  }
  bool atEnd() const { return Pos >= B.size(); }

private:
  const std::vector<uint8_t> &B;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

void writeActions(Writer &W, const std::vector<Action> &As) {
  W.u32(uint32_t(As.size()));
  for (const Action &A : As) {
    W.str(A.Callee);
    W.u32(uint32_t(A.Args.size()));
    for (const CallArg &Arg : A.Args) {
      W.u8(uint8_t(Arg.K));
      W.i64(Arg.Value);
      W.u32(Arg.Reg);
    }
  }
}

void writeInst(Writer &W, const InstNode &N) {
  W.u8(uint8_t(N.I.Op));
  W.u8(N.I.Ra);
  W.u8(N.I.Rb);
  W.u8(N.I.Rc);
  W.u8(N.I.IsLit);
  W.u8(N.I.Lit);
  W.i32(N.I.Disp);
  W.u64(N.OrigPC);
  W.u8(uint8_t(N.RelKind));
  W.u8(N.HasReloc);
  W.u8(uint8_t(N.Ref.Unit));
  W.i32(N.Ref.SymIndex);
  W.i64(N.Ref.Addend);
  W.i32(N.BranchBlock);
  writeActions(W, N.Before);
  writeActions(W, N.After);
}

void writeRelocs(Writer &W, const std::vector<obj::Reloc> &Rs) {
  W.u32(uint32_t(Rs.size()));
  for (const obj::Reloc &R : Rs) {
    W.u8(uint8_t(R.Kind));
    W.u64(R.Offset);
    W.u32(R.SymIndex);
    W.i64(R.Addend);
  }
}

//===----------------------------------------------------------------------===//
// Reading
//===----------------------------------------------------------------------===//

bool readActions(Reader &R, std::vector<Action> &As) {
  uint32_t N;
  if (!R.count(N, 4))
    return false;
  As.resize(N);
  for (Action &A : As) {
    uint32_t NArgs;
    if (!R.str(A.Callee) || !R.count(NArgs, 13))
      return false;
    A.Args.resize(NArgs);
    for (CallArg &Arg : A.Args) {
      uint8_t K;
      int64_t V;
      uint32_t Reg;
      if (!R.u8(K) || K > uint8_t(CallArg::BrCond) || !R.i64(V) ||
          !R.u32(Reg))
        return false;
      Arg.K = CallArg::Kind(K);
      Arg.Value = V;
      Arg.Reg = Reg;
    }
  }
  return true;
}

bool readInst(Reader &R, InstNode &N, int NumBlocks) {
  uint8_t Op, IsLit, RelKind, HasReloc, RefUnit;
  if (!R.u8(Op) || Op >= uint8_t(isa::Opcode::NumOpcodes))
    return false;
  N.I.Op = isa::Opcode(Op);
  if (!R.u8(N.I.Ra) || !R.u8(N.I.Rb) || !R.u8(N.I.Rc) || !R.u8(IsLit) ||
      !R.u8(N.I.Lit) || !R.i32(N.I.Disp) || !R.u64(N.OrigPC))
    return false;
  N.I.IsLit = IsLit != 0;
  if (!R.u8(RelKind) || RelKind > uint8_t(obj::RelocKind::Br21) ||
      !R.u8(HasReloc) || !R.u8(RefUnit) ||
      RefUnit > uint8_t(UnitTag::Analysis) || !R.i32(N.Ref.SymIndex) ||
      !R.i64(N.Ref.Addend) || !R.i32(N.BranchBlock))
    return false;
  N.RelKind = obj::RelocKind(RelKind);
  N.HasReloc = HasReloc != 0;
  N.Ref.Unit = UnitTag(RefUnit);
  if (N.BranchBlock < -1 || N.BranchBlock >= NumBlocks)
    return false;
  return readActions(R, N.Before) && readActions(R, N.After);
}

bool readRelocs(Reader &R, std::vector<obj::Reloc> &Rs, size_t NumSymbols) {
  uint32_t N;
  if (!R.count(N, 21))
    return false;
  Rs.resize(N);
  for (obj::Reloc &Rel : Rs) {
    uint8_t Kind;
    if (!R.u8(Kind) || Kind > uint8_t(obj::RelocKind::Br21) ||
        !R.u64(Rel.Offset) || !R.u32(Rel.SymIndex) || !R.i64(Rel.Addend) ||
        Rel.SymIndex >= NumSymbols)
      return false;
    Rel.Kind = obj::RelocKind(Kind);
  }
  return true;
}

} // namespace

std::vector<uint8_t> om::serializeUnit(const Unit &U) {
  Writer W;
  for (char C : Magic)
    W.u8(uint8_t(C));
  W.u32(UnitFormatVersion);
  W.u8(uint8_t(U.Tag));

  W.u32(uint32_t(U.Symbols.size()));
  for (const obj::Symbol &S : U.Symbols) {
    W.str(S.Name);
    W.u8(uint8_t(S.Section));
    W.u64(S.Value);
    W.u8(S.Global);
    W.u8(S.IsProc);
    W.u64(S.Size);
  }

  W.u32(uint32_t(U.Procs.size()));
  for (const Procedure &P : U.Procs) {
    W.str(P.Name);
    W.i32(P.SymIndex);
    W.u64(P.OrigStart);
    W.u64(P.NewStart);
    W.u32(uint32_t(P.Blocks.size()));
    for (const Block &B : P.Blocks) {
      W.u32(uint32_t(B.Insts.size()));
      for (const InstNode &N : B.Insts)
        writeInst(W, N);
      W.u32(uint32_t(B.Succs.size()));
      for (int S : B.Succs)
        W.i32(S);
      W.u32(uint32_t(B.Preds.size()));
      for (int S : B.Preds)
        W.i32(S);
      W.u64(B.OrigPC);
      W.u64(B.NewPC);
      writeActions(W, B.Before);
      writeActions(W, B.After);
      W.u32(uint32_t(B.EdgeActions.size()));
      for (const auto &[Succ, A] : B.EdgeActions) {
        W.i32(Succ);
        writeActions(W, {A});
      }
    }
    writeActions(W, P.Before);
    writeActions(W, P.After);
  }

  W.bytes(U.Data);
  W.u64(U.DataStart);
  W.u64(U.BssSize);
  writeRelocs(W, U.DataRelocs);
  writeActions(W, U.ProgramBefore);
  writeActions(W, U.ProgramAfter);
  return std::move(W.Out);
}

bool om::deserializeUnit(const std::vector<uint8_t> &Bytes, Unit &Out) {
  Reader R(Bytes);
  for (char C : Magic) {
    uint8_t V;
    if (!R.u8(V) || V != uint8_t(C))
      return false;
  }
  uint32_t Version;
  uint8_t Tag;
  if (!R.u32(Version) || Version != UnitFormatVersion || !R.u8(Tag) ||
      Tag > uint8_t(UnitTag::Analysis))
    return false;

  Out = Unit();
  Out.Tag = UnitTag(Tag);

  uint32_t NumSymbols;
  if (!R.count(NumSymbols, 23))
    return false;
  Out.Symbols.resize(NumSymbols);
  for (obj::Symbol &S : Out.Symbols) {
    uint8_t Section, Global, IsProc;
    if (!R.str(S.Name) || !R.u8(Section) ||
        Section > uint8_t(obj::SymSection::Undefined) || !R.u64(S.Value) ||
        !R.u8(Global) || !R.u8(IsProc) || !R.u64(S.Size))
      return false;
    S.Section = obj::SymSection(Section);
    S.Global = Global != 0;
    S.IsProc = IsProc != 0;
  }

  uint32_t NumProcs;
  if (!R.count(NumProcs, 24))
    return false;
  Out.Procs.resize(NumProcs);
  for (Procedure &P : Out.Procs) {
    uint32_t NumBlocks;
    if (!R.str(P.Name) || !R.i32(P.SymIndex) ||
        P.SymIndex < -1 || P.SymIndex >= int(NumSymbols) ||
        !R.u64(P.OrigStart) || !R.u64(P.NewStart) || !R.count(NumBlocks, 32))
      return false;
    P.Blocks.resize(NumBlocks);
    for (Block &B : P.Blocks) {
      uint32_t N;
      if (!R.count(N, 35))
        return false;
      B.Insts.resize(N);
      for (InstNode &I : B.Insts)
        if (!readInst(R, I, int(NumBlocks)))
          return false;
      if (!R.count(N, 4))
        return false;
      B.Succs.resize(N);
      for (int &S : B.Succs)
        if (!R.i32(S) || S < 0 || S >= int(NumBlocks))
          return false;
      if (!R.count(N, 4))
        return false;
      B.Preds.resize(N);
      for (int &S : B.Preds)
        if (!R.i32(S) || S < 0 || S >= int(NumBlocks))
          return false;
      if (!R.u64(B.OrigPC) || !R.u64(B.NewPC) || !readActions(R, B.Before) ||
          !readActions(R, B.After) || !R.count(N, 8))
        return false;
      B.EdgeActions.resize(N);
      for (auto &[Succ, A] : B.EdgeActions) {
        std::vector<Action> One;
        if (!R.i32(Succ) || Succ < 0 || Succ >= int(NumBlocks) ||
            !readActions(R, One) || One.size() != 1)
          return false;
        A = std::move(One[0]);
      }
    }
    if (!readActions(R, P.Before) || !readActions(R, P.After))
      return false;
  }

  if (!R.bytes(Out.Data) || !R.u64(Out.DataStart) || !R.u64(Out.BssSize) ||
      !readRelocs(R, Out.DataRelocs, NumSymbols) ||
      !readActions(R, Out.ProgramBefore) || !readActions(R, Out.ProgramAfter))
    return false;
  if (!R.atEnd())
    return false;

  for (size_t I = 0; I < Out.Procs.size(); ++I)
    Out.ProcByName[Out.Procs[I].Name] = int(I);
  return true;
}
