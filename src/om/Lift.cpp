//===- om/Lift.cpp - Symbolic lifting of machine code ---------------------===//

#include "om/Lift.h"

#include <algorithm>
#include <map>
#include <set>

using namespace atom;
using namespace atom::om;
using namespace atom::isa;
using namespace atom::obj;

namespace {

struct Lifter {
  Lifter(UnitTag Tag, const std::vector<Symbol> &Symbols,
         const std::vector<uint8_t> &Text, uint64_t TextBase,
         const std::vector<Reloc> &TextRelocs, DiagEngine &Diags)
      : Tag(Tag), Symbols(Symbols), Text(Text), TextBase(TextBase),
        Diags(Diags) {
    for (const Reloc &R : TextRelocs)
      RelocAt[TextBase + R.Offset] = &R;
  }

  void error(const std::string &Msg) {
    Diags.error(0, Msg);
    Failed = true;
  }

  /// Resolves a Br21 relocation target address (symbol value + addend).
  uint64_t relocTarget(const Reloc &R) const {
    return uint64_t(int64_t(Symbols[R.SymIndex].Value) + R.Addend);
  }

  /// True for calls to procedures known not to return: code after them is
  /// unreachable and must not be attributed to the same basic block.
  bool isNoReturnCall(const Inst &In, const Reloc *R) const {
    if (In.Op != Opcode::Bsr || !R)
      return false;
    const std::string &Name = Symbols[R->SymIndex].Name;
    return Name == "__exit" || Name == "__sys_exit" || Name == "exit";
  }

  bool liftProc(int SymIndex, Procedure &P);
  bool run(Unit &Out);

  UnitTag Tag;
  const std::vector<Symbol> &Symbols;
  const std::vector<uint8_t> &Text;
  uint64_t TextBase;
  DiagEngine &Diags;
  std::map<uint64_t, const Reloc *> RelocAt;
  bool Failed = false;
};

bool Lifter::liftProc(int SymIndex, Procedure &P) {
  const Symbol &Sym = Symbols[size_t(SymIndex)];
  P.Name = Sym.Name;
  P.SymIndex = SymIndex;
  P.OrigStart = Sym.Value;
  uint64_t Start = Sym.Value, End = Sym.Value + Sym.Size;
  if (Sym.Size == 0 || (Sym.Size & 3)) {
    error("procedure '" + P.Name + "' has bad size");
    return false;
  }

  unsigned N = unsigned(Sym.Size / 4);
  std::vector<Inst> Insts(N);
  std::vector<const Reloc *> Relocs(N, nullptr);
  for (unsigned I = 0; I < N; ++I) {
    uint64_t PC = Start + 4 * I;
    uint32_t Word = read32(Text, PC - TextBase);
    if (!decode(Word, Insts[I])) {
      error(formatString("cannot decode instruction at 0x%llx in '%s'",
                         (unsigned long long)PC, P.Name.c_str()));
      return false;
    }
    auto It = RelocAt.find(PC);
    if (It != RelocAt.end())
      Relocs[I] = It->second;
  }

  // Find leaders: entry, intra-procedure branch targets, and the
  // instruction after every non-call control transfer. halt terminates a
  // block too: code after it is unreachable fall-through and must not be
  // attributed to the block (block-counting tools would over-count it).
  std::set<uint64_t> Leaders = {Start};
  for (unsigned I = 0; I < N; ++I) {
    uint64_t PC = Start + 4 * I;
    const Inst &In = Insts[I];
    if (In.Op == Opcode::Halt || isNoReturnCall(In, Relocs[I])) {
      if (PC + 4 < End)
        Leaders.insert(PC + 4);
      continue;
    }
    if (!isControlTransfer(In.Op))
      continue;
    if (!isCall(In.Op) && PC + 4 < End)
      Leaders.insert(PC + 4);
    if (isCondBranch(In.Op) || isUncondBranch(In.Op)) {
      uint64_t Target;
      if (Relocs[I]) {
        if (Relocs[I]->Kind != RelocKind::Br21) {
          error(formatString("branch at 0x%llx has non-branch relocation",
                             (unsigned long long)PC));
          return false;
        }
        Target = relocTarget(*Relocs[I]);
      } else {
        Target = PC + 4 + uint64_t(int64_t(In.Disp)) * 4;
      }
      if (Target < Start || Target >= End) {
        error(formatString(
            "branch at 0x%llx in '%s' targets 0x%llx outside the procedure",
            (unsigned long long)PC, P.Name.c_str(),
            (unsigned long long)Target));
        return false;
      }
      Leaders.insert(Target);
    }
  }

  // Carve blocks.
  std::map<uint64_t, int> BlockAt;
  for (uint64_t L : Leaders) {
    BlockAt[L] = int(P.Blocks.size());
    P.Blocks.emplace_back();
    P.Blocks.back().OrigPC = L;
  }
  for (unsigned I = 0; I < N; ++I) {
    uint64_t PC = Start + 4 * I;
    auto It = Leaders.upper_bound(PC);
    --It;
    Block &B = P.Blocks[size_t(BlockAt[*It])];
    InstNode Node;
    Node.I = Insts[I];
    Node.OrigPC = PC;
    if (Relocs[I]) {
      const Reloc &R = *Relocs[I];
      bool IntraBranch =
          (isCondBranch(Node.I.Op) || isUncondBranch(Node.I.Op)) &&
          R.Kind == RelocKind::Br21;
      if (IntraBranch) {
        Node.BranchBlock = BlockAt[relocTarget(R)];
      } else {
        Node.HasReloc = true;
        Node.RelKind = R.Kind;
        Node.Ref.Unit = Tag;
        Node.Ref.SymIndex = int(R.SymIndex);
        Node.Ref.Addend = R.Addend;
      }
    } else if (isCondBranch(Node.I.Op) || isUncondBranch(Node.I.Op)) {
      Node.BranchBlock = BlockAt[PC + 4 + uint64_t(int64_t(Node.I.Disp)) * 4];
    } else if (Node.I.Op == Opcode::Bsr) {
      error(formatString("bsr at 0x%llx lacks a Br21 relocation",
                         (unsigned long long)PC));
      return false;
    }
    B.Insts.push_back(std::move(Node));
  }

  // Successor/predecessor edges.
  for (size_t BI = 0; BI < P.Blocks.size(); ++BI) {
    Block &B = P.Blocks[BI];
    if (B.Insts.empty()) {
      error("empty basic block in '" + P.Name + "'");
      return false;
    }
    const InstNode &Last = B.Insts.back();
    auto addSucc = [&](int S) {
      B.Succs.push_back(S);
      P.Blocks[size_t(S)].Preds.push_back(int(BI));
    };
    if (isCondBranch(Last.I.Op)) {
      addSucc(Last.BranchBlock);
      if (BI + 1 < P.Blocks.size())
        addSucc(int(BI + 1));
    } else if (isUncondBranch(Last.I.Op)) {
      addSucc(Last.BranchBlock);
    } else if (isReturn(Last.I.Op) || isJump(Last.I.Op) ||
               Last.I.Op == Opcode::Halt ||
               (Last.I.Op == Opcode::Bsr && Last.HasReloc &&
                Last.Ref.SymIndex >= 0 &&
                (Symbols[size_t(Last.Ref.SymIndex)].Name == "__exit" ||
                 Symbols[size_t(Last.Ref.SymIndex)].Name == "__sys_exit" ||
                 Symbols[size_t(Last.Ref.SymIndex)].Name == "exit"))) {
      // No intra-procedure successors (halt and noreturn calls included).
    } else if (BI + 1 < P.Blocks.size()) {
      addSucc(int(BI + 1));
    }
  }
  return true;
}

bool Lifter::run(Unit &Out) {
  Out.Tag = Tag;
  Out.Symbols = Symbols;

  // Procedures, sorted by address.
  std::vector<int> ProcSyms;
  for (size_t I = 0; I < Symbols.size(); ++I)
    if (Symbols[I].IsProc)
      ProcSyms.push_back(int(I));
  std::sort(ProcSyms.begin(), ProcSyms.end(), [&](int A, int B) {
    return Symbols[size_t(A)].Value < Symbols[size_t(B)].Value;
  });

  uint64_t Covered = TextBase;
  for (int SI : ProcSyms) {
    const Symbol &S = Symbols[size_t(SI)];
    if (S.Value < Covered) {
      error("overlapping procedures near '" + S.Name + "'");
      return false;
    }
    Covered = S.Value + S.Size;
    Procedure P;
    if (!liftProc(SI, P))
      return false;
    Out.ProcByName[P.Name] = int(Out.Procs.size());
    Out.Procs.push_back(std::move(P));
  }
  if (Covered != TextBase + Text.size() && !ProcSyms.empty()) {
    // Trailing padding bytes are tolerated only if zero.
    for (uint64_t Off = Covered - TextBase; Off < Text.size(); ++Off)
      if (Text[size_t(Off)] != 0) {
        error("text not covered by .ent/.end procedures");
        return false;
      }
  }
  return !Failed;
}

} // namespace

bool om::liftExecutable(const Executable &Exe, Unit &Out, DiagEngine &Diags) {
  Lifter L(UnitTag::App, Exe.Symbols, Exe.Text, Exe.TextStart, Exe.TextRelocs,
           Diags);
  if (!L.run(Out))
    return false;
  Out.Data = Exe.Data;
  Out.DataStart = Exe.DataStart;
  Out.BssSize = Exe.BssSize;
  Out.DataRelocs = Exe.DataRelocs;
  return true;
}

bool om::liftObjectModule(const ObjectModule &M, UnitTag Tag, Unit &Out,
                          DiagEngine &Diags) {
  // Bias text offsets so that no instruction has "original PC" 0, which is
  // the marker for inserted code.
  constexpr uint64_t Base = 0x1000;
  std::vector<Symbol> Symbols = M.Symbols;
  for (Symbol &S : Symbols)
    if (S.Section == SymSection::Text)
      S.Value += Base;
  // (Relocation offsets stay section-relative; the lifter keys them by
  // TextBase + Offset.)
  Lifter L(Tag, Symbols, M.Text, Base, M.TextRelocs, Diags);
  if (!L.run(Out))
    return false;
  Out.Data = M.Data;
  Out.DataStart = 0;
  Out.BssSize = M.BssSize;
  Out.DataRelocs = M.DataRelocs;
  return true;
}
