//===- om/Liveness.cpp ----------------------------------------------------===//

#include "om/Liveness.h"

#include "om/DataFlow.h"

using namespace atom;
using namespace atom::om;
using namespace atom::isa;

/// Registers live out of any procedure by convention: the return value,
/// the stack pointer, the return address, and the callee-save set.
static uint32_t exitLiveMask() {
  uint32_t M = (1u << RegV0) | (1u << RegSP) | (1u << RegRA);
  for (unsigned R = 0; R < NumRegs; ++R)
    if (isCalleeSaved(R))
      M |= 1u << R;
  return M;
}

uint32_t UseDefSummaries::conservativeUse() {
  return (1u << RegA0) | (1u << RegA1) | (1u << RegA2) | (1u << RegA3) |
         (1u << RegA4) | (1u << RegA5) | (1u << RegSP);
}

uint32_t UseDefSummaries::conservativeMod() { return callerSavedMask(); }

uint32_t UseDefSummaries::useOf(const std::string &Name) const {
  auto It = Use.find(Name);
  return It == Use.end() ? conservativeUse() : It->second;
}

uint32_t UseDefSummaries::modOf(const std::string &Name) const {
  auto It = Mod.find(Name);
  return It == Mod.end() ? conservativeMod() : It->second;
}

UseDefSummaries::UseDefSummaries(const Unit &Un) {
  // MOD comes from the data-flow summary machinery.
  DataFlowResult DF = computeDataFlow(Un);
  for (size_t I = 0; I < Un.Procs.size(); ++I)
    Mod[Un.Procs[I].Name] = DF.Summaries[I].TransMod;

  // USE(P): fixpoint of each procedure's entry live-in, with calls
  // interpreted through the current summaries. Start optimistic (empty)
  // and iterate; the transfer functions are monotone in the summaries.
  for (const Procedure &P : Un.Procs)
    Use[P.Name] = 0;

  bool Changed = true;
  unsigned Rounds = 0;
  constexpr unsigned MaxRounds = 64;
  while (Changed && ++Rounds < MaxRounds) {
    Changed = false;
    for (const Procedure &P : Un.Procs) {
      LivenessInfo L(P, &Un, this);
      uint32_t EntryLive =
          P.Blocks.empty() || P.Blocks[0].Insts.empty()
              ? conservativeUse()
              : L.liveBefore(0, 0);
      // A procedure's USE never includes sp (always live) beyond what the
      // caller naturally keeps; keep it for safety anyway.
      if (EntryLive != Use[P.Name]) {
        Use[P.Name] = EntryLive;
        Changed = true;
      }
    }
  }
  if (Changed) {
    // Did not converge within the bound (pathological call graph): fall
    // back to the sound conservative sets.
    for (auto &[Name, Mask] : Use)
      Mask = conservativeUse();
  }
}

void LivenessInfo::useDef(const InstNode &N, uint32_t &UseMask,
                          uint32_t &DefMask) const {
  const Inst &I = N.I;
  if (isCall(I.Op)) {
    if (Summaries && U && I.Op == Opcode::Bsr && N.HasReloc &&
        N.Ref.SymIndex >= 0) {
      const std::string &Callee = U->Symbols[size_t(N.Ref.SymIndex)].Name;
      UseMask = Summaries->useOf(Callee) | (1u << RegSP);
      DefMask = Summaries->modOf(Callee);
      return;
    }
    UseMask = UseDefSummaries::conservativeUse();
    DefMask = UseDefSummaries::conservativeMod();
    return;
  }
  if (isReturn(I.Op)) {
    UseMask = exitLiveMask();
    DefMask = 0;
    return;
  }
  UseMask = readRegs(I);
  DefMask = writtenRegs(I);
}

uint32_t LivenessInfo::transferBlock(const Block &B, uint32_t Live) const {
  for (size_t I = B.Insts.size(); I-- > 0;) {
    uint32_t UseMask, DefMask;
    useDef(B.Insts[I], UseMask, DefMask);
    Live = (Live & ~DefMask) | UseMask;
  }
  return Live;
}

LivenessInfo::LivenessInfo(const Procedure &Proc, const Unit *Un,
                           const UseDefSummaries *S)
    : P(Proc), U(Un), Summaries(S) {
  BlockLiveOut.assign(P.Blocks.size(), 0);
  const uint32_t ExitLive = exitLiveMask();

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t BI = P.Blocks.size(); BI-- > 0;) {
      const Block &B = P.Blocks[BI];
      uint32_t Out = B.Succs.empty() ? ExitLive : 0;
      for (int Succ : B.Succs)
        Out |= transferBlock(P.Blocks[size_t(Succ)],
                             BlockLiveOut[size_t(Succ)]);
      if (Out != BlockLiveOut[BI]) {
        BlockLiveOut[BI] = Out;
        Changed = true;
      }
    }
  }
}

uint32_t LivenessInfo::liveBefore(unsigned BlockIdx, unsigned InstIdx) const {
  const Block &B = P.Blocks[BlockIdx];
  uint32_t Live = BlockLiveOut[BlockIdx];
  for (size_t I = B.Insts.size(); I-- > InstIdx;) {
    uint32_t UseMask, DefMask;
    useDef(B.Insts[I], UseMask, DefMask);
    Live = (Live & ~DefMask) | UseMask;
  }
  return Live;
}
