//===- om/DataFlow.h - Register data-flow summaries -------------*- C++ -*-===//
//
// Computes, for each analysis procedure, the set of registers that may be
// modified when control reaches it (paper §4 "Reducing Procedure Call
// Overhead"). ATOM saves exactly these registers at instrumentation points.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_OM_DATAFLOW_H
#define ATOM_OM_DATAFLOW_H

#include "om/Program.h"

namespace atom {
namespace om {

struct ProcSummary {
  uint32_t DirectMod = 0; ///< Caller-save registers written by the
                          ///< procedure's own instructions.
  uint32_t TransMod = 0;  ///< DirectMod plus everything callees may modify.
  bool HasCall = false;
  bool HasLoop = false;       ///< CFG back edge present.
  bool HasCallInLoop = false; ///< Conservative: HasCall && HasLoop.
  bool HasIndirectCall = false; ///< jsr: callees unknown.
};

struct DataFlowResult {
  std::vector<ProcSummary> Summaries; ///< Parallel to Unit.Procs.

  const ProcSummary &forProc(const Unit &U, const std::string &Name) const {
    auto It = U.ProcByName.find(Name);
    assert(It != U.ProcByName.end() && "unknown procedure");
    return Summaries[size_t(It->second)];
  }
};

/// All caller-save registers as a mask (what a convention-following callee
/// may clobber): v0, t0..t11, a0..a5, ra, pv, at.
uint32_t callerSavedMask();

/// Computes per-procedure modified-register summaries over the unit's call
/// graph (fixpoint over bsr edges; jsr assumes all caller-save).
DataFlowResult computeDataFlow(const Unit &U);

/// Registers in \p Mask as a list, ascending.
std::vector<unsigned> maskToRegs(uint32_t Mask);

} // namespace om
} // namespace atom

#endif // ATOM_OM_DATAFLOW_H
