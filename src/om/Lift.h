//===- om/Lift.h - Build OM IR from linked code -----------------*- C++ -*-===//

#ifndef ATOM_OM_LIFT_H
#define ATOM_OM_LIFT_H

#include "om/Program.h"

namespace atom {
namespace om {

/// Lifts a fully linked executable (with retained relocations) into OM IR.
/// Every control transfer must carry either a Br21 relocation or a
/// numeric displacement landing inside its procedure; all text must be
/// covered by .ent/.end procedure symbols.
bool liftExecutable(const obj::Executable &Exe, Unit &Out, DiagEngine &Diags);

/// Lifts a merged relocatable module (the analysis unit) into OM IR with
/// text offsets based at 0.
bool liftObjectModule(const obj::ObjectModule &M, UnitTag Tag, Unit &Out,
                      DiagEngine &Diags);

} // namespace om
} // namespace atom

#endif // ATOM_OM_LIFT_H
