//===- om/Layout.cpp ------------------------------------------------------===//

#include "om/Layout.h"

#include <algorithm>
#include <map>

using namespace atom;
using namespace atom::om;
using namespace atom::isa;
using namespace atom::obj;

namespace {

struct LayoutEngine {
  LayoutEngine(Unit &App, Unit *Anal, DiagEngine &Diags)
      : App(App), Anal(Anal), Diags(Diags) {}

  void error(const std::string &Msg) {
    Diags.error(0, Msg);
    Failed = true;
  }

  bool run(Executable &OutExe, LayoutResult &Result);

  /// Assigns NewPC to every block of \p U starting at \p PC; returns the
  /// end address.
  uint64_t assignAddresses(Unit &U, uint64_t PC);

  /// New absolute value for symbol \p SI of unit \p U.
  bool symbolValue(const Unit &U, int SI, uint64_t &V);

  /// Computes old-PC -> new-PC maps used to relocate text symbols.
  void buildPCMap(const Unit &U, std::map<uint64_t, uint64_t> &Map);
  void buildSymbolPCMap(const Unit &U, std::map<uint64_t, uint64_t> &Map);

  bool emitText(const Unit &U, std::vector<uint8_t> &Text, uint64_t TextStart);

  bool applyDataRelocs(const Unit &U, std::vector<uint8_t> &Data);

  Unit &App;
  Unit *Anal;
  DiagEngine &Diags;
  bool Failed = false;

  std::map<uint64_t, uint64_t> AppPCMap, AnalPCMap;
  std::map<uint64_t, uint64_t> AppSymMap, AnalSymMap;
  uint64_t AnalysisDataStart = 0;
  uint64_t AppHeapStart = 0;
};

uint64_t LayoutEngine::assignAddresses(Unit &U, uint64_t PC) {
  for (Procedure &P : U.Procs) {
    P.NewStart = PC;
    for (Block &B : P.Blocks) {
      B.NewPC = PC;
      PC += 4 * uint64_t(B.Insts.size());
    }
  }
  return PC;
}

void LayoutEngine::buildPCMap(const Unit &U,
                              std::map<uint64_t, uint64_t> &Map) {
  for (const Procedure &P : U.Procs)
    for (const Block &B : P.Blocks) {
      uint64_t PC = B.NewPC;
      for (const InstNode &N : B.Insts) {
        if (N.OrigPC)
          Map[N.OrigPC] = PC;
        PC += 4;
      }
    }
}

void LayoutEngine::buildSymbolPCMap(const Unit &U,
                                    std::map<uint64_t, uint64_t> &Map) {
  // Symbols (procedure entries, branch-target labels) must resolve to the
  // *block* start, not the first retained instruction: instrumentation
  // inserted at a procedure or block entry has to execute when control
  // arrives through the symbol (ProgramBefore/ProcBefore/BlockBefore).
  for (const Procedure &P : U.Procs)
    for (const Block &B : P.Blocks)
      if (B.OrigPC)
        Map[B.OrigPC] = B.NewPC;
}

bool LayoutEngine::symbolValue(const Unit &U, int SI, uint64_t &V) {
  const Symbol &S = U.Symbols[size_t(SI)];
  switch (S.Section) {
  case SymSection::Absolute:
    V = S.Value;
    return true;
  case SymSection::Text: {
    const std::map<uint64_t, uint64_t> &SymMap =
        U.Tag == UnitTag::App ? AppSymMap : AnalSymMap;
    auto It = SymMap.find(S.Value);
    if (It == SymMap.end()) {
      const std::map<uint64_t, uint64_t> &Map =
          U.Tag == UnitTag::App ? AppPCMap : AnalPCMap;
      It = Map.find(S.Value);
      if (It != Map.end()) {
        V = It->second;
        return true;
      }
      error("reference to deleted or interior text symbol '" + S.Name + "'");
      return false;
    }
    V = It->second;
    return true;
  }
  case SymSection::Data:
    // Application data does not move; analysis data is placed at
    // AnalysisDataStart.
    V = U.Tag == UnitTag::App ? S.Value : AnalysisDataStart + S.Value;
    return true;
  case SymSection::Bss:
    // Analysis bss is converted to zero-initialized data right after the
    // analysis data (paper §4). Application bss symbols were already
    // rewritten to Data by the linker.
    if (U.Tag == UnitTag::App) {
      V = S.Value;
      return true;
    }
    V = AnalysisDataStart + U.Data.size() + S.Value;
    return true;
  case SymSection::Undefined:
    if (S.Name == "__heap_start") {
      V = AppHeapStart;
      return true;
    }
    error("undefined symbol '" + S.Name + "' during layout");
    return false;
  }
  return false;
}

bool LayoutEngine::emitText(const Unit &U, std::vector<uint8_t> &Text,
                            uint64_t TextStart) {
  for (const Procedure &P : U.Procs) {
    for (size_t BI = 0; BI < P.Blocks.size(); ++BI) {
      const Block &B = P.Blocks[BI];
      uint64_t PC = B.NewPC;
      for (const InstNode &N : B.Insts) {
        Inst I = N.I;
        if (N.BranchBlock >= 0) {
          int64_t Delta =
              int64_t(P.Blocks[size_t(N.BranchBlock)].NewPC) -
              int64_t(PC + 4);
          int64_t Disp = Delta / 4;
          if (!fitsSigned(Disp, 21)) {
            error(formatString("branch in '%s' out of range after "
                               "instrumentation (%lld instructions)",
                               P.Name.c_str(), (long long)Disp));
            return false;
          }
          I.Disp = int32_t(Disp);
        } else if (N.HasReloc) {
          const Unit &RefUnit =
              N.Ref.Unit == UnitTag::App ? App : *Anal;
          uint64_t SV;
          if (!symbolValue(RefUnit, N.Ref.SymIndex, SV))
            return false;
          int64_t V = int64_t(SV) + N.Ref.Addend;
          switch (N.RelKind) {
          case RelocKind::Hi16:
          case RelocKind::Lo16: {
            int16_t Lo = int16_t(uint64_t(V) & 0xFFFF);
            int64_t Hi = (V - Lo) >> 16;
            if (!fitsSigned(Hi, 16)) {
              error(formatString("address 0x%llx out of ldah/lda range",
                                 (unsigned long long)V));
              return false;
            }
            I.Disp = N.RelKind == RelocKind::Hi16 ? int32_t(Hi)
                                                  : int32_t(Lo);
            break;
          }
          case RelocKind::Br21: {
            int64_t Delta = V - int64_t(PC + 4);
            if (Delta % 4 != 0) {
              error("call target not instruction aligned");
              return false;
            }
            int64_t Disp = Delta / 4;
            if (!fitsSigned(Disp, 21)) {
              error(formatString(
                  "call from '%s' to 0x%llx out of bsr range; enable "
                  "ForceJsr in AtomOptions",
                  P.Name.c_str(), (unsigned long long)V));
              return false;
            }
            I.Disp = int32_t(Disp);
            break;
          }
          case RelocKind::Abs64:
            error("Abs64 relocation in text is not supported");
            return false;
          }
        }
        uint64_t Off = PC - TextStart;
        if (Off + 4 > Text.size())
          Text.resize(Off + 4);
        write32(Text, Off, encode(I));
        PC += 4;
      }
    }
  }
  return true;
}

bool LayoutEngine::applyDataRelocs(const Unit &U, std::vector<uint8_t> &Data) {
  for (const Reloc &R : U.DataRelocs) {
    if (R.Kind != RelocKind::Abs64) {
      error("non-Abs64 relocation in data");
      return false;
    }
    uint64_t SV;
    if (!symbolValue(U, int(R.SymIndex), SV))
      return false;
    if (R.Offset + 8 > Data.size()) {
      error("data relocation out of bounds");
      return false;
    }
    write64(Data, R.Offset, uint64_t(int64_t(SV) + R.Addend));
  }
  return true;
}

bool LayoutEngine::run(Executable &OutExe, LayoutResult &Result) {
  const uint64_t TextStart = DefaultTextStart;
  const uint64_t DataStart = App.DataStart;

  AppHeapStart = alignTo(DataStart + App.Data.size() + App.BssSize, PageSize);

  uint64_t AppEnd = assignAddresses(App, TextStart);
  uint64_t AnalStart = alignTo(AppEnd, 16);
  uint64_t AnalEnd = Anal ? assignAddresses(*Anal, AnalStart) : AnalStart;

  AnalysisDataStart = alignTo(AnalEnd, 16);
  uint64_t AnalysisDataEnd =
      Anal ? AnalysisDataStart + Anal->Data.size() + Anal->BssSize
           : AnalysisDataStart;
  if (AnalysisDataEnd > DataStart) {
    error("instrumented text + analysis routines overflow into the "
          "program data segment");
    return false;
  }

  buildPCMap(App, AppPCMap);
  buildSymbolPCMap(App, AppSymMap);
  if (Anal) {
    buildPCMap(*Anal, AnalPCMap);
    buildSymbolPCMap(*Anal, AnalSymMap);
  }

  OutExe = Executable();
  OutExe.TextStart = TextStart;
  OutExe.DataStart = DataStart;
  OutExe.StackStart = TextStart;
  OutExe.BssSize = App.BssSize;
  OutExe.HeapStart = AppHeapStart;

  if (!emitText(App, OutExe.Text, TextStart))
    return false;
  if (Anal) {
    // The analysis text lives in the same contiguous text image.
    if (!emitText(*Anal, OutExe.Text, TextStart))
      return false;
  }

  OutExe.Data = App.Data;
  if (!applyDataRelocs(App, OutExe.Data))
    return false;

  if (Anal && (!Anal->Data.empty() || Anal->BssSize)) {
    Segment S;
    S.Addr = AnalysisDataStart;
    S.Bytes = Anal->Data;
    if (!applyDataRelocs(*Anal, S.Bytes))
      return false;
    // Uninitialized analysis data becomes zero-initialized data (§4).
    S.Bytes.resize(S.Bytes.size() + Anal->BssSize, 0);
    OutExe.Segments.push_back(std::move(S));
  }

  // Output symbol table: application symbols with updated text addresses,
  // then analysis symbols tagged "@anal".
  for (size_t I = 0; I < App.Symbols.size(); ++I) {
    Symbol S = App.Symbols[I];
    if (S.Section == SymSection::Text) {
      auto It = AppSymMap.find(S.Value);
      if (It != AppSymMap.end()) {
        S.Value = It->second;
      } else {
        auto It2 = AppPCMap.find(S.Value);
        if (It2 != AppPCMap.end())
          S.Value = It2->second;
      }
    }
    OutExe.Symbols.push_back(std::move(S));
  }
  if (Anal) {
    for (size_t I = 0; I < Anal->Symbols.size(); ++I) {
      Symbol S = Anal->Symbols[I];
      uint64_t V;
      // Deleted (unreachable) procedures keep a dangling name, and stray
      // undefined symbols may be unreferenced; skip both in the output
      // table (references to them would have failed in emitText already).
      if (S.Section == SymSection::Text && !AnalPCMap.count(S.Value))
        continue;
      if (S.Section == SymSection::Undefined && S.Name != "__heap_start")
        continue;
      if (!symbolValue(*Anal, int(I), V))
        return false;
      S.Value = V;
      S.Section = SymSection::Absolute;
      S.Name += "@anal";
      OutExe.Symbols.push_back(std::move(S));
    }
  }

  int EntryIdx = OutExe.findSymbol("_start");
  if (EntryIdx < 0) {
    error("no _start symbol in instrumented program");
    return false;
  }
  OutExe.Entry = OutExe.Symbols[size_t(EntryIdx)].Value;

  // New -> old PC map.
  Result.NewToOldPC.clear();
  for (const auto &[Old, New] : AppPCMap)
    Result.NewToOldPC.emplace_back(New, Old);
  std::sort(Result.NewToOldPC.begin(), Result.NewToOldPC.end());
  Result.AppTextEnd = AppEnd;
  Result.AnalysisTextStart = AnalStart;
  Result.AnalysisTextEnd = AnalEnd;
  Result.AnalysisDataStart = AnalysisDataStart;
  Result.AnalysisDataEnd = AnalysisDataEnd;
  return !Failed;
}

} // namespace

uint64_t LayoutResult::origPC(uint64_t NewPC) const {
  auto It = std::lower_bound(
      NewToOldPC.begin(), NewToOldPC.end(),
      std::make_pair(NewPC, uint64_t(0)));
  if (It != NewToOldPC.end() && It->first == NewPC)
    return It->second;
  return 0;
}

bool om::layoutProgram(Unit &App, Unit *Anal, Executable &OutExe,
                       LayoutResult &Result, DiagEngine &Diags) {
  LayoutEngine E(App, Anal, Diags);
  return E.run(OutExe, Result);
}
