//===- om/DataFlow.cpp ----------------------------------------------------===//

#include "om/DataFlow.h"

using namespace atom;
using namespace atom::om;
using namespace atom::isa;

uint32_t om::callerSavedMask() {
  uint32_t M = 0;
  for (unsigned R = 0; R < NumRegs; ++R)
    if (isCallerSaved(R))
      M |= 1u << R;
  return M;
}

std::vector<unsigned> om::maskToRegs(uint32_t Mask) {
  std::vector<unsigned> Out;
  for (unsigned R = 0; R < NumRegs; ++R)
    if (Mask & (1u << R))
      Out.push_back(R);
  return Out;
}

/// DFS back-edge detection for HasLoop.
static bool hasBackEdge(const Procedure &P) {
  if (P.Blocks.empty())
    return false;
  std::vector<int> State(P.Blocks.size(), 0); // 0 new, 1 on stack, 2 done
  std::vector<std::pair<int, size_t>> Stack = {{0, 0}};
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    const Block &Blk = P.Blocks[size_t(B)];
    if (NextSucc >= Blk.Succs.size()) {
      State[size_t(B)] = 2;
      Stack.pop_back();
      continue;
    }
    int S = Blk.Succs[NextSucc++];
    if (State[size_t(S)] == 1)
      return true;
    if (State[size_t(S)] == 0) {
      State[size_t(S)] = 1;
      Stack.push_back({S, 0});
    }
  }
  return false;
}

DataFlowResult om::computeDataFlow(const Unit &U) {
  DataFlowResult R;
  R.Summaries.resize(U.Procs.size());
  const uint32_t CallerSave = callerSavedMask();

  // Direct facts and the call graph.
  std::vector<std::vector<int>> Callees(U.Procs.size());
  for (size_t PI = 0; PI < U.Procs.size(); ++PI) {
    const Procedure &P = U.Procs[PI];
    ProcSummary &S = R.Summaries[PI];
    for (const Block &B : P.Blocks) {
      for (const InstNode &N : B.Insts) {
        S.DirectMod |= writtenRegs(N.I) & CallerSave;
        if (N.I.Op == Opcode::Bsr) {
          S.HasCall = true;
          if (N.HasReloc && N.Ref.SymIndex >= 0) {
            const std::string &Callee =
                U.Symbols[size_t(N.Ref.SymIndex)].Name;
            auto It = U.ProcByName.find(Callee);
            if (It != U.ProcByName.end())
              Callees[PI].push_back(It->second);
            else
              S.HasIndirectCall = true; // out-of-unit target: be conservative
          }
        } else if (N.I.Op == Opcode::Jsr) {
          S.HasCall = true;
          S.HasIndirectCall = true;
        }
      }
    }
    S.HasLoop = hasBackEdge(P);
    S.TransMod = S.DirectMod;
    if (S.HasIndirectCall)
      S.TransMod = CallerSave;
  }

  // Fixpoint over the call graph.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t PI = 0; PI < U.Procs.size(); ++PI) {
      ProcSummary &S = R.Summaries[PI];
      uint32_t NewMod = S.TransMod;
      for (int C : Callees[PI])
        NewMod |= R.Summaries[size_t(C)].TransMod;
      if (NewMod != S.TransMod) {
        S.TransMod = NewMod;
        Changed = true;
      }
    }
  }

  for (size_t PI = 0; PI < U.Procs.size(); ++PI) {
    ProcSummary &S = R.Summaries[PI];
    S.HasCallInLoop = S.HasCall && S.HasLoop;
  }
  return R;
}
