//===- om/Program.cpp -----------------------------------------------------===//

#include "om/Program.h"

using namespace atom;
using namespace atom::om;

unsigned om::totalInsts(const Unit &U) {
  unsigned N = 0;
  for (const Procedure &P : U.Procs)
    N += P.instCount();
  return N;
}

size_t om::unitMemoryBytes(const Unit &U) {
  size_t N = sizeof(Unit) + U.Data.capacity() +
             U.DataRelocs.capacity() * sizeof(obj::Reloc) +
             U.Symbols.capacity() * sizeof(obj::Symbol);
  for (const obj::Symbol &S : U.Symbols)
    N += S.Name.size();
  for (const Procedure &P : U.Procs) {
    N += sizeof(Procedure) + P.Name.size();
    for (const Block &B : P.Blocks)
      N += sizeof(Block) + B.Insts.capacity() * sizeof(InstNode) +
           (B.Succs.capacity() + B.Preds.capacity()) * sizeof(int);
  }
  return N;
}

std::string om::dumpUnit(const Unit &U) {
  std::string Out;
  for (const Procedure &P : U.Procs) {
    Out += formatString("proc %s (orig 0x%llx, %u insts, %zu blocks)\n",
                        P.Name.c_str(), (unsigned long long)P.OrigStart,
                        P.instCount(), P.Blocks.size());
    for (size_t BI = 0; BI < P.Blocks.size(); ++BI) {
      const Block &B = P.Blocks[BI];
      Out += formatString("  block %zu (orig 0x%llx) succs:",
                          BI, (unsigned long long)B.OrigPC);
      for (int S : B.Succs)
        Out += formatString(" %d", S);
      Out += "\n";
      for (const InstNode &N : B.Insts) {
        Out += "    " + isa::disassemble(N.I, N.OrigPC);
        if (N.BranchBlock >= 0)
          Out += formatString("  -> block %d", N.BranchBlock);
        if (N.HasReloc && N.Ref.SymIndex >= 0) {
          const char *Kind = N.RelKind == obj::RelocKind::Hi16   ? "hi16"
                             : N.RelKind == obj::RelocKind::Lo16 ? "lo16"
                                                                 : "br21";
          const std::vector<obj::Symbol> &Syms = U.Symbols;
          std::string SymName =
              N.Ref.Unit == U.Tag && N.Ref.SymIndex < int(Syms.size())
                  ? Syms[size_t(N.Ref.SymIndex)].Name
                  : formatString("<unit%d:%d>", int(N.Ref.Unit),
                                 N.Ref.SymIndex);
          Out += formatString("  [%s %s%+lld]", Kind, SymName.c_str(),
                              (long long)N.Ref.Addend);
        }
        Out += "\n";
      }
    }
  }
  return Out;
}
