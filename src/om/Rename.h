//===- om/Rename.h - Caller-save register renaming --------------*- C++ -*-===//
//
// "We use register renaming to minimize the number of different caller-save
// registers used in the analysis routines" (paper §4). Permutes the scratch
// registers (t0..t11) used inside each analysis procedure onto the smallest
// prefix, shrinking the save sets ATOM must emit.
//
// This is sound for convention-following code because t-registers carry no
// value across procedure boundaries (they are dead at entry and exit, and
// dead across every call).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_OM_RENAME_H
#define ATOM_OM_RENAME_H

#include "om/Program.h"

namespace atom {
namespace om {

/// Renames scratch registers in every procedure of \p U. Returns the number
/// of procedures changed.
unsigned renameScratchRegs(Unit &U);

} // namespace om
} // namespace atom

#endif // ATOM_OM_RENAME_H
