//===- om/Layout.h - Code regeneration and executable layout ---*- C++ -*-===//
//
// Regenerates an executable from (possibly instrumented) OM IR, producing
// the memory layout of paper Figure 4:
//
//   textstart:  instrumented program text        (addresses change)
//               analysis text (incl. wrappers)
//               analysis data (+ analysis bss converted to zeroed data)
//   datastart:  program data                     (addresses unchanged)
//               program bss                      (unchanged)
//   heap:       starts where it always started
//   stack:      grows down from textstart, as before
//
// All branches and address materializations are re-resolved from symbolic
// form; a static new->old PC map is produced so ATOM can report original
// text addresses.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_OM_LAYOUT_H
#define ATOM_OM_LAYOUT_H

#include "om/Program.h"

namespace atom {
namespace om {

struct LayoutResult {
  /// (new PC, original PC) for every retained application instruction,
  /// sorted by new PC.
  std::vector<std::pair<uint64_t, uint64_t>> NewToOldPC;
  uint64_t AppTextEnd = 0;
  uint64_t AnalysisTextStart = 0;
  uint64_t AnalysisTextEnd = 0;
  uint64_t AnalysisDataStart = 0;
  uint64_t AnalysisDataEnd = 0;

  /// Original PC for \p NewPC, or 0 for inserted/analysis code.
  uint64_t origPC(uint64_t NewPC) const;
};

/// Regenerates \p App (plus the optional analysis unit \p Anal) into an
/// executable. \p App procedures keep their relative order; the analysis
/// unit is placed after the application text. Mutates NewStart/NewPC
/// fields in both units. Returns false on relocation/range errors.
bool layoutProgram(Unit &App, Unit *Anal, obj::Executable &OutExe,
                   LayoutResult &Result, DiagEngine &Diags);

} // namespace om
} // namespace atom

#endif // ATOM_OM_LAYOUT_H
