//===- atomd/Protocol.h - atomd request/reply wire protocol -----*- C++ -*-===//
//
// The length-prefixed JSON protocol spoken over the atomd Unix-domain
// socket (docs/DAEMON.md). Every message is one frame:
//
//   u32 magic "ATMD" | u32 jsonLen | u64 binLen | json | binary
//
// The JSON document (parsed with obs::json, written with obs::JsonWriter —
// no new dependencies) carries the operation and its parameters; the
// binary attachment carries bulk payloads (the AEXE image of the
// application on requests, the instrumented AEXE on replies) so
// executables are never base64'd through the JSON layer.
//
// Requests:  {"op":"instrument","id":N,"tool":"cache","client":"ci",
//             "options":{...},"timeout_ms":M,
//             "trace_id":"<32hex>","parent_span":"<16hex>"}
//                                                   + bin = application AEXE
//                                                   (timeout_ms optional: a
//                                                    client-requested deadline,
//                                                    capped by the server's;
//                                                    trace fields optional:
//                                                    the caller's v3 trace
//                                                    context, minted server-
//                                                    side when absent)
//            {"op":"status","id":N}
//            {"op":"metrics","id":N}                -> registry JSON
//            {"op":"ping","id":N}
//            {"op":"trace","id":N,"trace":"<32hex>"} -> stitched trace doc
//            {"op":"tail","id":N}                   -> recent trace summaries
//            {"op":"stall","id":N,"ms":M}           (test/debug: occupies a
//                                                    worker slot for M ms)
//            {"op":"shutdown","id":N}
// Replies:   {"id":N,"ok":true,...}                 (+ bin where noted)
//            {"id":N,"ok":false,"error":...,"diags":[{"line":L,"message":M}]}
//            {"id":N,"ok":false,"retry":true,"reason":"queue-full"|"quota",
//             "retry_after_ms":M}                   (backpressure: resend)
//            {"id":N,"ok":false,"error":"worker-crashed","signal":S,
//             "exit":E,"tool":T}                    (isolated worker died)
//            {"id":N,"ok":false,"error":"deadline-exceeded",
//             "deadline_ms":M,"tool":T}             (worker killed at deadline)
//            {"id":N,"ok":false,"error":"breaker-open","tool":T,
//             "retry_after_ms":M}                   (fail-fast: tool keeps
//                                                    crashing; final, not a
//                                                    backpressure retry)
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOMD_PROTOCOL_H
#define ATOM_ATOMD_PROTOCOL_H

#include "atom/Batch.h"
#include "obs/Json.h"
#include "obs/Obs.h"
#include "obs/Trace.h"

namespace atom {
namespace atomd {

/// v2 added timeout_ms on instrument requests and the worker-crashed /
/// deadline-exceeded / breaker-open failure replies (docs/RESILIENCE.md).
/// v3 adds optional trace_id/parent_span header fields on instrument
/// requests, trace_id/postmortem on replies, and the trace/tail ops
/// (docs/OBSERVABILITY.md, "Tracing"). All trace fields are optional both
/// ways, so v2 peers interoperate: an untraced request simply gets a
/// server-minted trace id.
constexpr uint32_t ProtocolVersion = 3;

/// Sanity caps on frame sizes; a frame beyond these is a protocol error
/// (protects the daemon from allocation bombs on a garbage connection).
constexpr uint32_t MaxJsonBytes = 16u << 20;
constexpr uint64_t MaxBinBytes = 1ull << 30;

struct Frame {
  std::string Json;
  std::vector<uint8_t> Bin;
};

/// Reads one frame, blocking until complete. Returns false with \p Err on
/// EOF, I/O error, or malformed framing. A clean EOF before any byte sets
/// \p Err to "eof".
bool readFrame(int Fd, Frame &F, std::string &Err);

/// readFrame with a wall-clock budget: gives up once \p DeadlineMs have
/// elapsed without a complete frame (sets \p TimedOut; \p Err = "timeout").
/// Negative \p DeadlineMs waits forever. The worker pool uses this to kill
/// hung workers.
bool readFrameDeadline(int Fd, Frame &F, std::string &Err, int64_t DeadlineMs,
                       bool &TimedOut);

/// Writes one frame, blocking until fully sent (SIGPIPE-safe).
bool writeFrame(int Fd, const Frame &F, std::string &Err);

/// writeFrame with a wall-clock budget: gives up once \p DeadlineMs have
/// elapsed without the frame fully sent (sets \p TimedOut; \p Err =
/// "timeout"). Negative \p DeadlineMs blocks forever. The worker pool uses
/// this so a worker that stops draining its channel mid-request cannot
/// wedge a daemon thread in a blocking send.
bool writeFrameDeadline(int Fd, const Frame &F, std::string &Err,
                        int64_t DeadlineMs, bool &TimedOut);

/// Name/parse of AtomOptions::SaveStrategy, shared by the CLIs and the
/// protocol ("wrapper", "direct", "distributed", "save-all", "liveness").
const char *saveStrategyName(AtomOptions::SaveStrategy S);
bool parseSaveStrategy(const std::string &Name, AtomOptions::SaveStrategy &S);

/// Serializes every AtomOptions field that affects output bytes as a JSON
/// object value (the scheduling fields Jobs/CachePipeline/CacheBytes stay
/// daemon-side). parseAtomOptions accepts what writeAtomOptions emits,
/// with absent fields keeping their defaults.
void writeAtomOptions(obs::JsonWriter &W, const AtomOptions &O);
bool parseAtomOptions(const obs::json::Value &V, AtomOptions &O,
                      std::string &Err);

/// Builds the JSON document of an instrument request (application image
/// travels as the frame's binary attachment). A nonzero \p TimeoutMs asks
/// the daemon to kill the request past that many milliseconds (the server
/// caps it at its own --deadline-ms). A valid \p Trace becomes the v3
/// trace_id/parent_span header fields (parent_span = Trace.SpanId, the
/// caller's span the callee should parent under).
std::string makeInstrumentRequest(uint64_t Id, const std::string &Tool,
                                  const std::string &Client,
                                  const AtomOptions &O,
                                  uint64_t TimeoutMs = 0,
                                  const obs::TraceContext &Trace = {});

/// Builds an argument-free request ("status", "ping", "shutdown", ...).
std::string makeSimpleRequest(uint64_t Id, const std::string &Op);

/// Builds the {"id":N,"ok":false,"error":...,"diags":[...]} failure reply
/// document (shared by the daemon and the worker service loop). A
/// non-empty \p TraceId (32-hex) tags the failure with the request's
/// trace; a non-empty \p Postmortem names the flight-recorder dump that
/// describes it.
std::string makeErrorReply(uint64_t Id, const std::string &Error,
                           const std::vector<Diag> &Diags = {},
                           const std::string &TraceId = {},
                           const std::string &Postmortem = {});

/// A parsed reply. Doc keeps the whole document for op-specific fields
/// (status counters etc.).
struct Reply {
  uint64_t Id = 0;
  bool Ok = false;
  bool Retry = false;          ///< Backpressure: resend after RetryAfterMs.
  uint64_t RetryAfterMs = 0;
  std::string Error;           ///< Reason ("queue-full", "quota") or error.
  std::vector<Diag> Diags;     ///< Pipeline diagnostics on failure.
  InstrStats Stats;            ///< Instrument replies.
  std::string TraceId;         ///< v3: the request's 32-hex trace id.
  std::string Postmortem;      ///< v3: flight-recorder dump path, if any.
  obs::json::Value Doc;
};

bool parseReply(const Frame &F, Reply &R, std::string &Err);

} // namespace atomd
} // namespace atom

#endif // ATOM_ATOMD_PROTOCOL_H
