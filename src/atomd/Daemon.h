//===- atomd/Daemon.h - Instrumentation-as-a-service daemon -----*- C++ -*-===//
//
// The long-running service of ROADMAP item 2: accepts instrument/status
// requests from many concurrent clients over a Unix-domain socket
// (atomd/Protocol.h), schedules them on the shared support::ThreadPool
// with a bounded request queue, backpressure (queue-full -> explicit
// retry-after reply), and per-client in-flight quotas. Requests hit the
// in-process atom::PipelineCache first, then the persistent atomd::Store,
// so only the first request for a (tool, app) key anywhere in the
// daemon's lifetime — or its predecessors' — pays compile/link/lift.
//
// Outputs are byte-identical to standalone `atom` runs of the same pairs
// (the PR 5 immutable-artifact contract; ctest-enforced, including after
// a restart that reloads the on-disk store). Queue depth, request latency
// histograms, per-client counters, and store hit/miss/evict metrics are
// published through obs::Registry, with an optional live Prometheus
// endpoint on a loopback TCP port (docs/DAEMON.md).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOMD_DAEMON_H
#define ATOM_ATOMD_DAEMON_H

#include "atomd/Breaker.h"
#include "atomd/Protocol.h"
#include "atomd/Store.h"
#include "atomd/Worker.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <thread>

namespace atom {
namespace atomd {

/// Distinct per-client request counters tracked before further labels
/// fold into one "other" bucket — labels are client-controlled, so the
/// metrics registry must not grow with them without bound.
constexpr size_t MaxClientLabels = 64;

/// Stitched trace documents kept for the trace/tail ops. Old traces fall
/// off the front; this bounds daemon memory no matter the request rate.
constexpr size_t MaxTraceIndex = 128;

struct DaemonOptions {
  std::string SocketPath;
  unsigned Jobs = 0;        ///< Worker threads (0 = one per hardware thread).
  unsigned QueueMax = 64;   ///< Queued + running requests before backpressure.
  unsigned ClientQuota = 8; ///< Per-connection in-flight cap.
  uint64_t CacheBytes = 0;  ///< In-memory pipeline cache cap (0 = unbounded).
  std::string StoreDir;     ///< On-disk artifact store (empty = disabled).
  uint64_t StoreBytes = 0;  ///< Store byte cap (0 = unbounded).
  int MetricsPort = -1;     ///< Prometheus port on 127.0.0.1; 0 picks a free
                            ///< port (see metricsPort()); -1 disables.

  // Resilience (docs/RESILIENCE.md).
  bool Isolate = false;     ///< Run pipelines in worker processes, not in
                            ///< the daemon's own address space.
  std::string WorkerExe;    ///< The atomd binary to spawn as `__worker`
                            ///< (required when Isolate is set).
  uint64_t DeadlineMs = 0;  ///< Server cap on per-request wall time; the
                            ///< worker is killed past it (0 = none;
                            ///< enforced only under Isolate).
  unsigned WorkerRequests = 0;  ///< Recycle each worker after this many
                                ///< requests (0 = keep forever).
  unsigned BreakerThreshold = 3;    ///< Consecutive worker crashes/deadline
                                    ///< kills per tool before failing fast.
  uint64_t BreakerCooldownMs = 1000; ///< Open time before a half-open probe.
};

class Daemon {
public:
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds the socket, opens the store, and starts the accept loop,
  /// worker pool, and metrics endpoint. Returns false with \p Err on any
  /// setup failure (socket in use, store directory unwritable, ...).
  bool start(std::string &Err);

  /// Blocks until a shutdown request arrives (socket op or
  /// requestShutdown()), then drains in-flight work, closes every
  /// connection, and releases the socket.
  void wait();

  /// Initiates shutdown from any thread; idempotent.
  void requestShutdown();

  /// The bound Prometheus port (useful with MetricsPort = 0), or -1.
  int metricsPort() const { return BoundMetricsPort; }

  const DaemonOptions &options() const { return Opts; }

  /// Connections currently registered (closed ones are reaped as they
  /// exit, not accumulated for the daemon's lifetime). Exposed for tests.
  size_t liveConnections() const;

  /// Per-request segment timings, recorded as labeled histograms (with
  /// trace-id exemplars) and echoed in the stitched trace document.
  struct Segments {
    uint64_t QueueWaitUs = 0; ///< Admission -> pool thread pickup.
    uint64_t DispatchUs = 0;  ///< Worker round-trip minus pipeline time.
    uint64_t PipelineUs = 0;  ///< The instrument pipeline itself.
    uint64_t StoreIoUs = 0;   ///< Time inside Store::load/store.
    uint64_t TotalUs = 0;
  };

private:
  struct Conn {
    int Fd = -1;
    std::mutex FdMu; ///< Guards Fd lifecycle (shutdown/close vs. use).
    std::atomic<unsigned> InFlight{0};

    // Outbound replies, drained by a per-connection writer thread so
    // neither the reader thread nor a pool worker ever blocks on a slow
    // client's socket buffer (reply order is enqueue order). The frame
    // being written stays at the front until fully sent, so an empty
    // queue means every reply reached the kernel.
    std::mutex QMu; ///< Guards the queue state below.
    std::condition_variable QCv;
    std::deque<Frame> OutQ;
    uint64_t QueuedBytes = 0;
    bool CloseWriter = false; ///< Reader gone: drain OutQ, then exit.
    bool WriterDone = false;  ///< Writer exited; later replies are dropped.
    std::thread Writer;
    std::thread Reader;
  };

  void acceptLoop();
  void serveConnection(std::shared_ptr<Conn> C);
  void connWriter(std::shared_ptr<Conn> C);
  void reapConnections();
  void handleFrame(const std::shared_ptr<Conn> &C, Frame F);
  void executeInstrument(const std::shared_ptr<Conn> &C, uint64_t Id,
                         const std::string &ToolName, const AtomOptions &O,
                         const std::vector<uint8_t> &AppBytes,
                         uint64_t DeadlineMs, const obs::TraceContext &Ctx,
                         uint64_t QueueWaitUs);
  void metricsLoop();
  void publishAll();

  void reply(const std::shared_ptr<Conn> &C, const std::string &Json,
             const std::vector<uint8_t> &Bin = {});
  void replyError(const std::shared_ptr<Conn> &C, uint64_t Id,
                  const std::string &Error,
                  const std::vector<Diag> &Diags = {},
                  const std::string &TraceId = {},
                  const std::string &Postmortem = {});
  void replyRetry(const std::shared_ptr<Conn> &C, uint64_t Id,
                  const char *Reason, const std::string &TraceId = {});
  std::string statusJson(uint64_t Id);
  std::string healthJson();
  void countClient(const std::string &Label);

  /// Indexes a finished request's stitched trace for the trace/tail ops.
  void recordTrace(const obs::TraceContext &Ctx, const std::string &Tool,
                   const std::string &Outcome, const Segments &Seg,
                   const std::vector<obs::TraceRecordRow> &Rows,
                   const std::string &Postmortem);

  /// Dumps the daemon's flight-recorder ring to
  /// <store>/postmortem/<trace>.json ("" when no store directory). Call
  /// under the request's TraceScope so the dump header names the trace.
  std::string writePostmortem(const obs::TraceContext &Ctx);

  DaemonOptions Opts;
  int ListenFd = -1;
  int MetricsFd = -1;
  int BoundMetricsPort = -1;
  bool Started = false;

  std::unique_ptr<ThreadPool> Pool;
  std::unique_ptr<WorkerPool> Workers; ///< Isolate mode only.
  std::unique_ptr<Breaker> Brk;
  std::unique_ptr<Store> DiskStore;
  PipelineCache Cache;
  Stopwatch Uptime;

  std::thread AcceptThread, MetricsThread;
  mutable std::mutex ConnMu; ///< Guards Conns and DoneReaders.
  std::vector<std::shared_ptr<Conn>> Conns; ///< Registered connections.
  std::vector<std::thread> DoneReaders; ///< Exited readers awaiting join.

  std::atomic<bool> ShuttingDown{false};
  std::mutex PoolMu; ///< Fences request admission against Pool teardown.
  std::atomic<unsigned> QueueDepth{0}; ///< Admitted, not yet replied.
  std::mutex StopMu;
  std::condition_variable StopCv;

  std::mutex ClientMu; ///< Guards ClientRequests.
  std::map<std::string, uint64_t> ClientRequests;

  struct TraceEntry {
    std::string IdHex;   ///< 32-hex trace id.
    std::string Doc;     ///< Stitched trace document (JSON object).
    std::string Summary; ///< One-line JSON for the tail op.
  };
  std::string PostmortemDir; ///< <store>/postmortem ("" = no store).
  mutable std::mutex TraceMu; ///< Guards Traces.
  std::deque<TraceEntry> Traces; ///< Most recent last; MaxTraceIndex cap.
};

} // namespace atomd
} // namespace atom

#endif // ATOM_ATOMD_DAEMON_H
