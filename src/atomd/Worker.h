//===- atomd/Worker.h - Process-isolated instrument workers -----*- C++ -*-===//
//
// The crash-isolation layer of atomd (docs/RESILIENCE.md). In --isolate
// mode the daemon never runs tool pipelines in its own address space:
// each instrument request is forwarded over a private socketpair (child
// fd support::SubprocessChannelFd) to a persistent worker process —
// `atomd __worker`, the same binary in a hidden mode — which runs the
// pipeline and sends the reply frame back. A worker that SIGSEGVs,
// aborts, is OOM-killed, or hangs past its deadline costs exactly one
// structured error reply ({"error":"worker-crashed"|"deadline-exceeded"})
// and one respawn; the daemon, its connections, and the on-disk store are
// untouched.
//
// Workers share artifacts through the persistent atomd::Store (each
// process keeps its own in-memory PipelineCache over the same store
// directory), so isolation costs one process spawn amortized over many
// requests, not a cold pipeline per request.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOMD_WORKER_H
#define ATOM_ATOMD_WORKER_H

#include "atom/Batch.h"
#include "atomd/Protocol.h"
#include "support/Subprocess.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

namespace atom {
namespace atomd {

/// Runs one instrument request against \p Cache and returns the complete
/// reply frame (success with stats + serialized executable, or an error
/// document with diagnostics). The single implementation behind both the
/// in-process path (Daemon, --no-isolate) and workerMain, so the reply
/// bytes cannot depend on where the pipeline ran.
Frame buildInstrumentReply(PipelineCache &Cache, uint64_t Id,
                           const std::string &ToolName, const AtomOptions &O,
                           const std::vector<uint8_t> &AppBytes);

/// Configuration of one worker process (mirrors the daemon's cache/store
/// options; passed on the hidden __worker command line).
struct WorkerConfig {
  std::string StoreDir;    ///< Shared artifact store ("" = none).
  uint64_t StoreBytes = 0;
  uint64_t CacheBytes = 0;
};

/// The `atomd __worker` service loop: reads request frames from
/// SubprocessChannelFd, replies on the same descriptor, exits 0 on EOF
/// (the pool closed the channel). Returns the process exit code.
int workerMain(const WorkerConfig &C);

struct WorkerPoolOptions {
  /// Argv prefix of a worker, e.g. {"/path/atomd", "__worker", ...}; the
  /// pool spawns it verbatim.
  std::vector<std::string> WorkerArgv;
  unsigned NumWorkers = 0;     ///< Concurrent workers (0 = one per hw thread).
  unsigned WorkerRequests = 0; ///< Recycle a worker after this many requests
                               ///< (0 = keep forever).
};

/// A fixed-size pool of persistent worker processes. execute() checks out
/// an idle worker (spawning lazily), round-trips one frame, and classifies
/// every way that can go wrong.
class WorkerPool {
public:
  explicit WorkerPool(WorkerPoolOptions O);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  enum class Outcome {
    Ok,             ///< Reply holds the worker's verbatim reply frame.
    Crashed,        ///< Worker died mid-request (signal or nonzero exit).
    DeadlineKilled, ///< No reply within the deadline; worker killed.
    SpawnFailed,    ///< Could not start a worker process.
  };

  struct Result {
    Outcome Out = Outcome::SpawnFailed;
    Frame Reply;        ///< Valid when Out == Ok.
    int TermSignal = 0; ///< Crashed: the fatal signal (0 if it exited).
    int ExitCode = -1;  ///< Crashed: the exit status (-1 if signaled).
    std::string Error;  ///< SpawnFailed detail.
  };

  /// Round-trips \p Request through an idle worker. \p DeadlineMs <= 0
  /// means no deadline. Blocks while all workers are busy (the daemon's
  /// admission queue bounds how many callers can be here).
  Result execute(const Frame &Request, int64_t DeadlineMs);

  struct PoolStats {
    uint64_t Spawns = 0;
    uint64_t Crashes = 0;
    uint64_t DeadlineKills = 0;
    uint64_t Recycles = 0;
  };
  PoolStats stats() const;
  unsigned size() const { return unsigned(Slots.size()); }

private:
  struct Slot {
    std::unique_ptr<Subprocess> Proc; ///< Live worker, or null (spawn lazily).
    unsigned Served = 0;              ///< Requests since (re)spawn.
    bool Busy = false;
  };

  /// Ensures Slots[I].Proc is a live worker. Requires the slot checked
  /// out (Busy) by the caller; runs unlocked.
  bool ensureWorker(Slot &S, std::string &Err);

  WorkerPoolOptions Opts;
  mutable std::mutex Mu; ///< Guards Busy flags and Stats.
  std::condition_variable Cv;
  std::vector<Slot> Slots;
  PoolStats Stats;
  bool Shutdown = false;
};

} // namespace atomd
} // namespace atom

#endif // ATOM_ATOMD_WORKER_H
