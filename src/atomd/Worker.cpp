//===- atomd/Worker.cpp ---------------------------------------------------===//

#include "atomd/Worker.h"

#include "atom/Driver.h"
#include "atomd/Store.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "support/Support.h"
#include "support/ThreadPool.h"
#include "tools/Tools.h"

#include <csignal>
#include <sys/stat.h>

using namespace atom;
using namespace atom::atomd;

//===----------------------------------------------------------------------===//
// Shared instrument service
//===----------------------------------------------------------------------===//

Frame atomd::buildInstrumentReply(PipelineCache &Cache, uint64_t Id,
                                  const std::string &ToolName,
                                  const AtomOptions &O,
                                  const std::vector<uint8_t> &AppBytes) {
  Frame R;
  const Tool *T = tools::findTool(ToolName);
  if (!T) {
    R.Json = makeErrorReply(Id, "unknown tool '" + ToolName + "'");
    return R;
  }
  obj::Executable App;
  if (!obj::Executable::deserialize(AppBytes, App)) {
    R.Json = makeErrorReply(Id, "malformed application image");
    return R;
  }

  // Identical artifact flow to the batch driver's RunOne: the immutable
  // cached units feed the pipeline through PipelineReuse deep copies, so
  // the reply bytes match a standalone `atom` run exactly — wherever the
  // pipeline runs (daemon thread or isolated worker process).
  PipelineCache::UnitPtr TA = Cache.analysisUnit(*T);
  if (!TA->Ok) {
    R.Json = makeErrorReply(
        Id, "analysis build failed for tool '" + ToolName + "'", TA->Diags);
    return R;
  }
  PipelineCache::UnitPtr AA = Cache.liftedApp(App);
  if (!AA->Ok) {
    R.Json = makeErrorReply(Id, "application lift failed", AA->Diags);
    return R;
  }
  PipelineReuse Reuse;
  Reuse.AnalysisUnit = &TA->U;
  Reuse.LiftedApp = &AA->U;
  InstrumentedProgram Out;
  DiagEngine D;
  if (!runAtomPipeline(App, *T, O, &Reuse, Out, D)) {
    R.Json = makeErrorReply(Id, "instrumentation failed", D.diags());
    return R;
  }
  publishInstrumentStats(*T, Out.Stats);

  obs::JsonWriter W;
  W.beginObject();
  W.key("id");
  W.value(Id);
  W.key("ok");
  W.value(true);
  W.key("tool");
  W.value(ToolName);
  W.key("stats");
  W.beginObject();
  W.key("points");
  W.value(uint64_t(Out.Stats.Points));
  W.key("inserted-insts");
  W.value(uint64_t(Out.Stats.InsertedInsts));
  W.key("wrappers");
  W.value(uint64_t(Out.Stats.Wrappers));
  W.key("patched-procs");
  W.value(uint64_t(Out.Stats.PatchedProcs));
  W.key("analysis-procs");
  W.value(uint64_t(Out.Stats.AnalysisProcs));
  W.key("stripped-procs");
  W.value(uint64_t(Out.Stats.StrippedProcs));
  W.key("save-slots");
  W.value(uint64_t(Out.Stats.SaveSlots));
  W.key("probe-inlined-sites");
  W.value(uint64_t(Out.Stats.ProbeInlinedSites));
  W.key("probe-guarded-sites");
  W.value(uint64_t(Out.Stats.ProbeGuardedSites));
  W.key("probe-args-elided");
  W.value(uint64_t(Out.Stats.ProbeArgsElided));
  W.key("probe-consts-folded");
  W.value(uint64_t(Out.Stats.ProbeConstsFolded));
  W.endObject();
  W.endObject();
  R.Json = W.take();
  R.Bin = Out.Exe.serialize();
  return R;
}

//===----------------------------------------------------------------------===//
// Worker service loop (the hidden `atomd __worker` mode)
//===----------------------------------------------------------------------===//

int atomd::workerMain(const WorkerConfig &C) {
  setCurrentThreadName("atomd-worker");
  // The channel is a socketpair; a pool that vanished mid-write must
  // surface as a failed send, not process death.
  std::signal(SIGPIPE, SIG_IGN);
  // Tracing needs the registry live in this process: pipeline spans reach
  // the flight recorder through the Span destructor hook, which is what
  // the stitched trace and the crash postmortem are made of.
  obs::Registry::global().setEnabled(true);

  PipelineCache Cache(C.CacheBytes);
  std::unique_ptr<Store> DiskStore;
  std::string PostmortemDir;
  if (!C.StoreDir.empty()) {
    DiskStore.reset(new Store(C.StoreDir, C.StoreBytes));
    std::string Err;
    if (DiskStore->open(Err))
      Cache.setTier(DiskStore.get());
    else
      DiskStore.reset(); // store trouble degrades to cache-only, never fatal
    PostmortemDir = C.StoreDir + "/postmortem";
    ::mkdir(PostmortemDir.c_str(), 0755); // best-effort; daemon makes it too
  }

  const int Fd = SubprocessChannelFd;
  for (;;) {
    Frame F;
    std::string Err;
    if (!readFrame(Fd, F, Err))
      return Err == "eof" ? 0 : 1;

    obs::json::Value Doc;
    Frame R;
    if (!obs::json::parse(F.Json, Doc, Err) ||
        Doc.K != obs::json::Value::Obj) {
      R.Json = makeErrorReply(0, "malformed worker request: " + Err);
    } else {
      uint64_t Id = Doc.u64("id");
      // v3 trace context: adopt the daemon's trace id (v2 callers send
      // none — mint locally so this process still records coherently) and
      // open this hop's span under the daemon's parent_span.
      obs::TraceContext Ctx = obs::TraceContext::mint();
      obs::TraceContext::parseTraceId(Doc.str("trace_id"), Ctx.Hi, Ctx.Lo);
      obs::TraceContext::parseHex64(Doc.str("parent_span"), Ctx.ParentSpan);
      obs::TraceScope Scope(Ctx);
      // Arm the crash dump before touching the pipeline: if this request
      // takes the process down, the fatal-signal handler dumps the ring
      // to a file the daemon can name in its error reply. Arming is just
      // a path swap (handlers install once, the file is created only by
      // an actual crash), so the per-request cost on the success path is
      // two atomic stores.
      std::string PmPath;
      if (!PostmortemDir.empty()) {
        PmPath = PostmortemDir + "/" + Ctx.traceIdHex() + ".worker.json";
        obs::FlightRecorder::global().arm(PmPath);
      }
      AtomOptions O;
      std::string OptErr;
      const obs::json::Value *OV = Doc.find("options");
      if (OV && !parseAtomOptions(*OV, O, OptErr)) {
        R.Json = makeErrorReply(Id, OptErr, {}, Ctx.traceIdHex());
      } else {
        {
          obs::Span Request("request");
          R = buildInstrumentReply(Cache, Id, Doc.str("tool"), O, F.Bin);
        }
        // Ship this hop's records back with the reply so the daemon can
        // stitch the cross-process tree and price the pipeline phases.
        obs::spliceTraceIntoReply(
            R.Json, Ctx,
            obs::rowsFromRecords(obs::FlightRecorder::global().snapshot(),
                                 "worker", Ctx.Hi, Ctx.Lo));
      }
      if (!PmPath.empty())
        obs::FlightRecorder::global().disarm();
    }
    if (!writeFrame(Fd, R, Err))
      return 1;
  }
}

//===----------------------------------------------------------------------===//
// WorkerPool
//===----------------------------------------------------------------------===//

namespace {

/// One frame exchange with a worker under a single wall-clock budget: the
/// request send consumes part of \p DeadlineMs (a worker that stops
/// draining its channel mid-request must not block the pool thread past
/// the deadline) and the reply read gets whatever remains.
bool roundTrip(int Fd, const Frame &Request, Frame &Reply, int64_t DeadlineMs,
               std::string &Err, bool &TimedOut) {
  Stopwatch W;
  if (!writeFrameDeadline(Fd, Request, Err, DeadlineMs, TimedOut))
    return false;
  int64_t Left = DeadlineMs;
  if (DeadlineMs >= 0) {
    Left = DeadlineMs - int64_t(W.seconds() * 1000.0);
    if (Left < 0)
      Left = 0;
  }
  return readFrameDeadline(Fd, Reply, Err, Left, TimedOut);
}

} // namespace

WorkerPool::WorkerPool(WorkerPoolOptions O) : Opts(std::move(O)) {
  unsigned N = Opts.NumWorkers ? Opts.NumWorkers
                               : ThreadPool::defaultConcurrency();
  Slots.resize(N);
}

WorkerPool::~WorkerPool() {
  std::unique_lock<std::mutex> L(Mu);
  Shutdown = true;
  Cv.wait(L, [this] {
    for (const Slot &S : Slots)
      if (S.Busy)
        return false;
    return true;
  });
  for (Slot &S : Slots)
    if (S.Proc) {
      // EOF on the channel asks the worker to exit cleanly; give it a
      // moment before the Subprocess destructor escalates to SIGKILL.
      S.Proc->closeChannel();
      S.Proc->waitExit(200);
      S.Proc.reset();
    }
}

bool WorkerPool::ensureWorker(Slot &S, std::string &Err) {
  if (S.Proc && S.Proc->alive())
    return true;
  S.Proc.reset(new Subprocess());
  S.Served = 0;
  Subprocess::Options O;
  O.Argv = Opts.WorkerArgv;
  O.Mode = Subprocess::Io::Channel;
  if (!S.Proc->spawn(O, Err)) {
    S.Proc.reset();
    return false;
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    ++Stats.Spawns;
  }
  obs::Registry::global().addCounter("atomd.worker-spawns");
  return true;
}

WorkerPool::Result WorkerPool::execute(const Frame &Request,
                                       int64_t DeadlineMs) {
  Result R;
  Slot *S = nullptr;
  {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] {
      if (Shutdown)
        return true;
      for (Slot &Sl : Slots)
        if (!Sl.Busy) {
          S = &Sl;
          return true;
        }
      return false;
    });
    if (Shutdown || !S) {
      R.Error = "worker pool shutting down";
      return R;
    }
    S->Busy = true;
  }

  std::string Err;
  bool TimedOut = false;
  if (!ensureWorker(*S, Err)) {
    R.Out = Outcome::SpawnFailed;
    R.Error = "cannot spawn worker: " + Err;
  } else if (!roundTrip(S->Proc->channelFd(), Request, R.Reply,
                        DeadlineMs > 0 ? DeadlineMs : -1, Err, TimedOut)) {
    if (TimedOut) {
      // Past deadline — either the worker stopped draining the request or
      // produced no reply in time. It is hung (or hopelessly slow): kill
      // it; the next request on this slot respawns.
      S->Proc->kill();
      S->Proc->waitExit(-1);
      S->Proc.reset();
      R.Out = Outcome::DeadlineKilled;
      std::lock_guard<std::mutex> L(Mu);
      ++Stats.DeadlineKills;
    } else {
      // Broken channel: the worker died underneath us — usually. A
      // protocol violation (bad magic, oversized frame) or an injected
      // channel fault reaches here with the worker still alive, and an
      // unbounded reap would wedge this thread and deadlock shutdown, so
      // close the channel (EOF), give it a moment, then SIGKILL. A
      // SIGKILL on an already-dead child cannot overwrite the real exit
      // status the kernel has queued.
      S->Proc->closeChannel();
      if (!S->Proc->waitExit(200)) {
        S->Proc->kill();
        S->Proc->waitExit(-1);
      }
      // Report how it went down. Under ASan a SIGSEGV becomes exit(1),
      // so both signal and exit-code channels matter.
      R.Out = Outcome::Crashed;
      R.TermSignal = S->Proc->termSignal();
      R.ExitCode = S->Proc->exitCode();
      S->Proc.reset();
      std::lock_guard<std::mutex> L(Mu);
      ++Stats.Crashes;
    }
  } else {
    R.Out = Outcome::Ok;
    if (Opts.WorkerRequests && ++S->Served >= Opts.WorkerRequests) {
      // Planned recycling (leak hygiene): retire gracefully via EOF.
      S->Proc->closeChannel();
      S->Proc->waitExit(200);
      S->Proc.reset();
      std::lock_guard<std::mutex> L(Mu);
      ++Stats.Recycles;
    }
  }

  std::lock_guard<std::mutex> L(Mu);
  S->Busy = false;
  Cv.notify_all();
  return R;
}

WorkerPool::PoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Stats;
}
