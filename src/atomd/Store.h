//===- atomd/Store.h - Persistent content-addressed artifact store -*-C++-*===//
//
// The disk tier behind atom::PipelineCache (docs/DAEMON.md): one file per
// cached pipeline artifact, named by its 128-bit content key (both lanes
// of atom::CacheKey, re-verified in the entry header on load), each
// holding a versioned, checksummed serialization of the CachedUnit (build
// outcome + diagnostics + om IR via om::serializeUnit). A restarted daemon
// reloads lift results instead of recompiling, so cold starts are cheap.
//
// Durability contract: entries are written to a temporary file and
// rename()d into place, so a crash mid-write never publishes a torn entry;
// a corrupted or truncated entry fails its checksum on load, is deleted,
// and the artifact is rebuilt (tests/StoreTests.cpp, tests/AtomdTests.cpp).
// The store is size-capped with LRU eviction.
//
// Degraded mode (docs/RESILIENCE.md): the store is an accelerator, never a
// correctness dependency, so persistent syscall-level disk errors (EIO,
// ENOSPC — not checksum corruption) must not take the daemon down. After
// StoreDegradeThreshold consecutive I/O errors the store flips to a
// read-through bypass: loads miss without touching the disk and stores are
// dropped, except that every StoreProbeInterval-th operation is tried for
// real; the first probe that completes cleanly restores normal service.
// All file I/O goes through support::FaultPoints (fpRead/fpWrite/fpRename)
// so the chaos harness can drive every one of these paths deterministically.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOMD_STORE_H
#define ATOM_ATOMD_STORE_H

#include "atom/Batch.h"

#include <map>
#include <mutex>
#include <string>

namespace atom {
namespace atomd {

/// Bumped on any entry-format change; readers treat other versions as
/// misses (the entry is deleted and rebuilt). v2 widened the entry key to
/// the full 128-bit atom::CacheKey.
constexpr uint32_t StoreFormatVersion = 2;

/// Consecutive syscall-level I/O errors that flip the store into degraded
/// (read-through bypass) mode, and how often a degraded store retries one
/// real operation to probe for recovery.
constexpr unsigned StoreDegradeThreshold = 3;
constexpr unsigned StoreProbeInterval = 16;

struct StoreStats {
  uint64_t Hits = 0;         ///< load() calls that returned an entry.
  uint64_t Misses = 0;       ///< load() calls with no (valid) entry.
  uint64_t LoadFailures = 0; ///< Entries rejected (checksum/format) and
                             ///< deleted; every one is also a miss.
  uint64_t Writes = 0;       ///< Entries persisted by store().
  uint64_t Evictions = 0;    ///< Entries deleted to respect the byte cap.
  uint64_t Bytes = 0;        ///< Current on-disk footprint.
  uint64_t IoErrors = 0;     ///< Reads/writes/renames failed at the syscall
                             ///< level (checksum corruption not included).
  uint64_t Degrades = 0;     ///< Times the store entered degraded mode.
};

/// A directory of "<32-hex-key>.au" entry files plus LRU bookkeeping.
/// Thread-safe; every operation takes one internal mutex (entries are
/// small and local-disk I/O is not the pipeline bottleneck).
class Store : public CacheTier {
public:
  /// \p MaxBytes caps the on-disk footprint (0 = unbounded).
  Store(std::string Dir, uint64_t MaxBytes = 0);

  /// Creates the directory if needed and scans existing entries (initial
  /// LRU order by file mtime; stale temporary files are removed). Returns
  /// false with \p Err if the directory cannot be created or read.
  bool open(std::string &Err);

  // CacheTier: the PipelineCache consults the store on an in-memory miss
  // and spills every completed build.
  bool load(CacheKey Key, CachedUnit &Out) override;
  void store(CacheKey Key, const CachedUnit &U) override;

  bool contains(CacheKey Key) const;
  size_t entryCount() const;
  StoreStats stats() const;
  const std::string &dir() const { return Dir; }

  /// True while the store is bypassing the disk after persistent I/O
  /// errors (still probing every StoreProbeInterval-th operation).
  bool degraded() const;

  /// Adds activity since the last publish to the global registry as
  /// atomd.store-hits / -misses / -load-failures / -writes / -evictions
  /// counter deltas plus the atomd.store-bytes gauge.
  void publishStats();

  /// Serializes \p U as one store entry payload (exposed for tests).
  static std::vector<uint8_t> encodeEntry(CacheKey Key, const CachedUnit &U);
  /// Parses and validates an entry file image; false on any corruption
  /// (including either word of the 128-bit key disagreeing with \p Key).
  static bool decodeEntry(const std::vector<uint8_t> &Bytes, CacheKey Key,
                          CachedUnit &Out);

  /// Entry file path for \p Key under \p Dir ("<dir>/<32-hex>.au").
  static std::string entryPath(const std::string &Dir, CacheKey Key);

private:
  struct Entry {
    uint64_t Bytes = 0;
    uint64_t LastUse = 0;
  };

  void evictLocked();   ///< Requires Mu.
  void dropLocked(CacheKey Key, bool CountEviction); ///< Requires Mu.
  /// Feeds the degrade state machine with one real I/O outcome. Requires Mu.
  void noteIoLocked(bool Ok);
  /// True when this (counted) operation must skip the disk. Requires Mu.
  bool bypassLocked();

  std::string Dir;
  uint64_t MaxBytes;
  mutable std::mutex Mu;
  std::map<CacheKey, Entry> Entries;
  uint64_t UseClock = 0;
  StoreStats Stats;
  StoreStats Published;
  unsigned ConsecIoErrors = 0;
  bool DegradedFlag = false;
  uint64_t ProbeClock = 0; ///< Operations seen while degraded.
};

} // namespace atomd
} // namespace atom

#endif // ATOM_ATOMD_STORE_H
