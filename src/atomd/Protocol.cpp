//===- atomd/Protocol.cpp -------------------------------------------------===//

#include "atomd/Protocol.h"

#include "support/FaultPoints.h"
#include "support/Support.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace atom;
using namespace atom::atomd;

namespace {

constexpr uint32_t FrameMagic = 0x444D5441; // "ATMD" little-endian

/// Waits until \p Fd is readable or the stopwatch passes \p DeadlineMs
/// (negative = no deadline). False only on timeout.
bool awaitReadable(int Fd, int64_t DeadlineMs, const Stopwatch &W) {
  for (;;) {
    int64_t WaitMs = -1;
    if (DeadlineMs >= 0) {
      int64_t Left = DeadlineMs - int64_t(W.seconds() * 1000.0);
      if (Left <= 0)
        return false;
      WaitMs = Left;
    }
    pollfd P{Fd, POLLIN, 0};
    int R = retryEintr([&] { return ::poll(&P, 1, int(WaitMs)); });
    if (R > 0)
      return true;
    if (R == 0 && DeadlineMs >= 0)
      return false;
    // R == 0 with no deadline (cannot happen with -1) or poll error: let
    // the read itself surface the failure.
    if (R < 0)
      return true;
  }
}

bool readFull(int Fd, void *Buf, size_t Len, std::string &Err, bool &AtStart,
              int64_t DeadlineMs = -1, const Stopwatch *W = nullptr,
              bool *TimedOut = nullptr) {
  uint8_t *P = static_cast<uint8_t *>(Buf);
  size_t Got = 0;
  while (Got < Len) {
    if (W && !awaitReadable(Fd, DeadlineMs, *W)) {
      if (TimedOut)
        *TimedOut = true;
      Err = "timeout";
      return false;
    }
    ssize_t N = retryEintr([&] { return fpRead(Fd, P + Got, Len - Got); });
    if (N == 0) {
      Err = AtStart && Got == 0 ? "eof" : "unexpected eof mid-frame";
      return false;
    }
    if (N < 0) {
      Err = std::string("read: ") + std::strerror(errno);
      return false;
    }
    Got += size_t(N);
    AtStart = false;
  }
  return true;
}

/// Waits until \p Fd accepts more bytes or the stopwatch passes
/// \p DeadlineMs (negative = no deadline). False only on timeout.
bool awaitWritable(int Fd, int64_t DeadlineMs, const Stopwatch &W) {
  for (;;) {
    int64_t WaitMs = -1;
    if (DeadlineMs >= 0) {
      int64_t Left = DeadlineMs - int64_t(W.seconds() * 1000.0);
      if (Left <= 0)
        return false;
      WaitMs = Left;
    }
    pollfd P{Fd, POLLOUT, 0};
    int R = retryEintr([&] { return ::poll(&P, 1, int(WaitMs)); });
    if (R > 0)
      return true;
    if (R == 0 && DeadlineMs >= 0)
      return false;
    if (R < 0)
      return true; // let the send itself surface the failure
  }
}

bool writeFull(int Fd, const void *Buf, size_t Len, std::string &Err,
               int64_t DeadlineMs = -1, const Stopwatch *W = nullptr,
               bool *TimedOut = nullptr) {
  const uint8_t *P = static_cast<const uint8_t *>(Buf);
  size_t Sent = 0;
  while (Sent < Len) {
    // MSG_NOSIGNAL: a vanished client yields EPIPE, not process death.
    // fpSend lets the chaos harness inject EINTR/EIO/short transfers here;
    // retryEintr plus this loop must absorb the recoverable ones. Under a
    // deadline the send is non-blocking and EAGAIN waits in poll, so a
    // peer that stops draining can only cost the remaining budget.
    int Flags = MSG_NOSIGNAL | (W ? MSG_DONTWAIT : 0);
    ssize_t N =
        retryEintr([&] { return fpSend(Fd, P + Sent, Len - Sent, Flags); });
    if (N < 0 && W && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!awaitWritable(Fd, DeadlineMs, *W)) {
        if (TimedOut)
          *TimedOut = true;
        Err = "timeout";
        return false;
      }
      continue;
    }
    if (N < 0) {
      Err = std::string("write: ") + std::strerror(errno);
      return false;
    }
    Sent += size_t(N);
  }
  return true;
}

void put32(uint8_t *P, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    P[I] = uint8_t(V >> (8 * I));
}

void put64(uint8_t *P, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    P[I] = uint8_t(V >> (8 * I));
}

uint32_t get32(const uint8_t *P) {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | P[I];
  return V;
}

uint64_t get64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | P[I];
  return V;
}

} // namespace

bool atomd::readFrame(int Fd, Frame &F, std::string &Err) {
  bool TimedOut = false;
  return readFrameDeadline(Fd, F, Err, -1, TimedOut);
}

bool atomd::readFrameDeadline(int Fd, Frame &F, std::string &Err,
                              int64_t DeadlineMs, bool &TimedOut) {
  TimedOut = false;
  Stopwatch W;
  const Stopwatch *WP = DeadlineMs >= 0 ? &W : nullptr;
  uint8_t Header[16];
  bool AtStart = true;
  if (!readFull(Fd, Header, sizeof(Header), Err, AtStart, DeadlineMs, WP,
                &TimedOut))
    return false;
  if (get32(Header) != FrameMagic) {
    Err = "bad frame magic";
    return false;
  }
  uint32_t JsonLen = get32(Header + 4);
  uint64_t BinLen = get64(Header + 8);
  if (JsonLen > MaxJsonBytes || BinLen > MaxBinBytes) {
    Err = "frame too large";
    return false;
  }
  F.Json.resize(JsonLen);
  F.Bin.resize(BinLen);
  if (JsonLen && !readFull(Fd, F.Json.data(), JsonLen, Err, AtStart,
                           DeadlineMs, WP, &TimedOut))
    return false;
  if (BinLen && !readFull(Fd, F.Bin.data(), BinLen, Err, AtStart, DeadlineMs,
                          WP, &TimedOut))
    return false;
  return true;
}

bool atomd::writeFrame(int Fd, const Frame &F, std::string &Err) {
  if (F.Json.size() > MaxJsonBytes || F.Bin.size() > MaxBinBytes) {
    Err = "frame too large";
    return false;
  }
  uint8_t Header[16];
  put32(Header, FrameMagic);
  put32(Header + 4, uint32_t(F.Json.size()));
  put64(Header + 8, F.Bin.size());
  return writeFull(Fd, Header, sizeof(Header), Err) &&
         writeFull(Fd, F.Json.data(), F.Json.size(), Err) &&
         writeFull(Fd, F.Bin.data(), F.Bin.size(), Err);
}

bool atomd::writeFrameDeadline(int Fd, const Frame &F, std::string &Err,
                               int64_t DeadlineMs, bool &TimedOut) {
  TimedOut = false;
  if (F.Json.size() > MaxJsonBytes || F.Bin.size() > MaxBinBytes) {
    Err = "frame too large";
    return false;
  }
  Stopwatch W;
  const Stopwatch *WP = DeadlineMs >= 0 ? &W : nullptr;
  uint8_t Header[16];
  put32(Header, FrameMagic);
  put32(Header + 4, uint32_t(F.Json.size()));
  put64(Header + 8, F.Bin.size());
  return writeFull(Fd, Header, sizeof(Header), Err, DeadlineMs, WP,
                   &TimedOut) &&
         writeFull(Fd, F.Json.data(), F.Json.size(), Err, DeadlineMs, WP,
                   &TimedOut) &&
         writeFull(Fd, F.Bin.data(), F.Bin.size(), Err, DeadlineMs, WP,
                   &TimedOut);
}

//===----------------------------------------------------------------------===//
// Options transport
//===----------------------------------------------------------------------===//

const char *atomd::saveStrategyName(AtomOptions::SaveStrategy S) {
  switch (S) {
  case AtomOptions::SaveStrategy::WrapperSummary: return "wrapper";
  case AtomOptions::SaveStrategy::DirectInline: return "direct";
  case AtomOptions::SaveStrategy::Distributed: return "distributed";
  case AtomOptions::SaveStrategy::SaveAll: return "save-all";
  case AtomOptions::SaveStrategy::SiteLiveness: return "liveness";
  }
  return "wrapper";
}

bool atomd::parseSaveStrategy(const std::string &Name,
                              AtomOptions::SaveStrategy &S) {
  if (Name == "wrapper")
    S = AtomOptions::SaveStrategy::WrapperSummary;
  else if (Name == "direct")
    S = AtomOptions::SaveStrategy::DirectInline;
  else if (Name == "distributed")
    S = AtomOptions::SaveStrategy::Distributed;
  else if (Name == "save-all")
    S = AtomOptions::SaveStrategy::SaveAll;
  else if (Name == "liveness")
    S = AtomOptions::SaveStrategy::SiteLiveness;
  else
    return false;
  return true;
}

void atomd::writeAtomOptions(obs::JsonWriter &W, const AtomOptions &O) {
  W.beginObject();
  W.key("strategy");
  W.value(saveStrategyName(O.Strategy));
  W.key("rename");
  W.value(O.RenameAnalysisRegs);
  W.key("force-jsr");
  W.value(O.ForceJsr);
  W.key("strip-unreachable");
  W.value(O.StripUnreachableAnalysis);
  W.key("heap-offset");
  W.value(uint64_t(O.AnalysisHeapOffset));
  W.key("inline");
  W.value(O.InlineAnalysis);
  W.key("inline-limit");
  W.value(uint64_t(O.InlineLimit));
  W.key("branchy-inline");
  W.value(O.BranchyInline);
  W.key("guard-hoist");
  W.value(O.GuardHoist);
  W.key("elide-dead-args");
  W.value(O.ElideDeadArgs);
  W.key("opt");
  W.value(optPresetName(O.Opt));
  W.endObject();
}

bool atomd::parseAtomOptions(const obs::json::Value &V, AtomOptions &O,
                             std::string &Err) {
  if (V.K != obs::json::Value::Obj) {
    Err = "options is not an object";
    return false;
  }
  std::string Strategy = V.str("strategy", saveStrategyName(O.Strategy));
  if (!parseSaveStrategy(Strategy, O.Strategy)) {
    Err = "unknown strategy '" + Strategy + "'";
    return false;
  }
  O.RenameAnalysisRegs = V.boolean("rename", O.RenameAnalysisRegs);
  O.ForceJsr = V.boolean("force-jsr", O.ForceJsr);
  O.StripUnreachableAnalysis =
      V.boolean("strip-unreachable", O.StripUnreachableAnalysis);
  O.AnalysisHeapOffset = V.u64("heap-offset", O.AnalysisHeapOffset);
  O.InlineAnalysis = V.boolean("inline", O.InlineAnalysis);
  O.InlineLimit = unsigned(V.u64("inline-limit", O.InlineLimit));
  O.BranchyInline = V.boolean("branchy-inline", O.BranchyInline);
  O.GuardHoist = V.boolean("guard-hoist", O.GuardHoist);
  O.ElideDeadArgs = V.boolean("elide-dead-args", O.ElideDeadArgs);
  std::string Opt = V.str("opt", optPresetName(O.Opt));
  if (!parseOptPreset(Opt, O.Opt)) {
    Err = "unknown opt preset '" + Opt + "'";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Request/reply documents
//===----------------------------------------------------------------------===//

std::string atomd::makeInstrumentRequest(uint64_t Id, const std::string &Tool,
                                         const std::string &Client,
                                         const AtomOptions &O,
                                         uint64_t TimeoutMs,
                                         const obs::TraceContext &Trace) {
  obs::JsonWriter W;
  W.beginObject();
  W.key("op");
  W.value("instrument");
  W.key("id");
  W.value(Id);
  W.key("tool");
  W.value(Tool);
  if (!Client.empty()) {
    W.key("client");
    W.value(Client);
  }
  if (TimeoutMs) {
    W.key("timeout_ms");
    W.value(TimeoutMs);
  }
  if (Trace.valid()) {
    W.key("trace_id");
    W.value(Trace.traceIdHex());
    W.key("parent_span");
    W.value(Trace.spanIdHex());
  }
  W.key("options");
  writeAtomOptions(W, O);
  W.endObject();
  return W.take();
}

std::string atomd::makeErrorReply(uint64_t Id, const std::string &Error,
                                  const std::vector<Diag> &Diags,
                                  const std::string &TraceId,
                                  const std::string &Postmortem) {
  obs::JsonWriter W;
  W.beginObject();
  W.key("id");
  W.value(Id);
  W.key("ok");
  W.value(false);
  W.key("error");
  W.value(Error);
  if (!TraceId.empty()) {
    W.key("trace_id");
    W.value(TraceId);
  }
  if (!Postmortem.empty()) {
    W.key("postmortem");
    W.value(Postmortem);
  }
  if (!Diags.empty()) {
    W.key("diags");
    W.beginArray();
    for (const Diag &D : Diags) {
      W.beginObject();
      W.key("line");
      W.value(int64_t(D.Line));
      W.key("message");
      W.value(D.Message);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
  return W.take();
}

std::string atomd::makeSimpleRequest(uint64_t Id, const std::string &Op) {
  obs::JsonWriter W;
  W.beginObject();
  W.key("op");
  W.value(Op);
  W.key("id");
  W.value(Id);
  W.endObject();
  return W.take();
}

bool atomd::parseReply(const Frame &F, Reply &R, std::string &Err) {
  R = Reply();
  if (!obs::json::parse(F.Json, R.Doc, Err))
    return false;
  if (R.Doc.K != obs::json::Value::Obj) {
    Err = "reply is not an object";
    return false;
  }
  R.Id = R.Doc.u64("id");
  R.Ok = R.Doc.boolean("ok");
  R.Retry = R.Doc.boolean("retry");
  R.RetryAfterMs = R.Doc.u64("retry_after_ms");
  R.Error = R.Doc.str(R.Retry ? "reason" : "error");
  R.TraceId = R.Doc.str("trace_id");
  R.Postmortem = R.Doc.str("postmortem");
  if (const obs::json::Value *Ds = R.Doc.find("diags"))
    for (const obs::json::Value &D : Ds->Items)
      R.Diags.push_back({int(D.u64("line")), D.str("message")});
  if (const obs::json::Value *S = R.Doc.find("stats")) {
    R.Stats.Points = unsigned(S->u64("points"));
    R.Stats.InsertedInsts = unsigned(S->u64("inserted-insts"));
    R.Stats.Wrappers = unsigned(S->u64("wrappers"));
    R.Stats.PatchedProcs = unsigned(S->u64("patched-procs"));
    R.Stats.AnalysisProcs = unsigned(S->u64("analysis-procs"));
    R.Stats.StrippedProcs = unsigned(S->u64("stripped-procs"));
    R.Stats.SaveSlots = unsigned(S->u64("save-slots"));
    R.Stats.ProbeInlinedSites = unsigned(S->u64("probe-inlined-sites"));
    R.Stats.ProbeGuardedSites = unsigned(S->u64("probe-guarded-sites"));
    R.Stats.ProbeArgsElided = unsigned(S->u64("probe-args-elided"));
    R.Stats.ProbeConstsFolded = unsigned(S->u64("probe-consts-folded"));
  }
  return true;
}
