//===- atomd/Client.h - atomd client connection -----------------*- C++ -*-===//
//
// The client side of the atomd protocol: one Unix-socket connection that
// sends request frames and receives replies. Used by `atom --connect` and
// the atomd CLI's status/shutdown subcommands. call() implements the
// backpressure contract: a {"retry":true} reply is resent after a capped,
// jittered exponential backoff (at least the daemon's advised
// retry_after_ms), so callers see only final outcomes and a herd of
// retrying clients decorrelates instead of hammering the daemon in
// lockstep. Attempts are bounded; exhaustion reports how many were made.
// Requests may also be pipelined (several send()s before recv()s); replies
// carry the request id and may arrive in any order.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOMD_CLIENT_H
#define ATOM_ATOMD_CLIENT_H

#include "atomd/Protocol.h"
#include "support/Support.h"

#include <unistd.h>

namespace atom {
namespace atomd {

class Client {
public:
  /// The backoff jitter is seeded per process and per instance, so
  /// concurrent clients spread their retries apart.
  Client()
      : Retry(5, 250,
              0x9E3779B97F4A7C15ull ^ (uint64_t(getpid()) << 32) ^
                  uint64_t(reinterpret_cast<uintptr_t>(this))) {}
  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to a daemon at \p SocketPath.
  bool connect(const std::string &SocketPath, std::string &Err);
  void close();
  bool connected() const { return Fd >= 0; }

  /// Sends one request frame.
  bool send(const std::string &Json, const std::vector<uint8_t> &Bin,
            std::string &Err);

  /// Receives one reply frame (any id) into \p R / \p F.
  bool recv(Reply &R, Frame &F, std::string &Err);

  /// Round-trip: send, receive, and transparently resend on backpressure
  /// (jittered exponential delay of at least the advised retry_after_ms,
  /// up to \p MaxRetries resends). Returns false only on transport/parse
  /// errors or retry exhaustion; application failures come back as
  /// R.Ok = false.
  bool call(const std::string &Json, const std::vector<uint8_t> &Bin,
            Reply &R, Frame &F, std::string &Err, unsigned MaxRetries = 100);

  /// Monotonic request-id source for this connection.
  uint64_t nextId() { return ++LastId; }

private:
  int Fd = -1;
  uint64_t LastId = 0;
  Backoff Retry;
};

} // namespace atomd
} // namespace atom

#endif // ATOM_ATOMD_CLIENT_H
