//===- atomd/Store.cpp ----------------------------------------------------===//

#include "atomd/Store.h"

#include "obs/Obs.h"
#include "om/Serialize.h"
#include "support/FaultPoints.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>

using namespace atom;
using namespace atom::atomd;

namespace {

constexpr char Magic[4] = {'A', 'S', 'T', 'R'};

void put32(std::vector<uint8_t> &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(uint8_t(V >> (8 * I)));
}

void put64(std::vector<uint8_t> &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(uint8_t(V >> (8 * I)));
}

bool get32(const std::vector<uint8_t> &B, size_t &Pos, uint32_t &V) {
  if (Pos + 4 > B.size())
    return false;
  V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | B[Pos + size_t(I)];
  Pos += 4;
  return true;
}

bool get64(const std::vector<uint8_t> &B, size_t &Pos, uint64_t &V) {
  if (Pos + 8 > B.size())
    return false;
  V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | B[Pos + size_t(I)];
  Pos += 8;
  return true;
}

/// Reads \p Path fully through the fault-injectable fd path. On failure
/// \p IoErr distinguishes a disk-level error (EIO and friends — feeds the
/// degrade state machine) from a merely missing file.
bool readWhole(const std::string &Path, std::vector<uint8_t> &Out,
               bool &IoErr) {
  IoErr = false;
  int Fd =
      retryEintr([&] { return ::open(Path.c_str(), O_RDONLY | O_CLOEXEC); });
  if (Fd < 0) {
    IoErr = errno != ENOENT;
    return false;
  }
  Out.clear();
  uint8_t Buf[64 << 10];
  for (;;) {
    ssize_t N = retryEintr([&] { return fpRead(Fd, Buf, sizeof(Buf)); });
    if (N < 0) {
      ::close(Fd);
      IoErr = true;
      return false;
    }
    if (N == 0)
      break;
    Out.insert(Out.end(), Buf, Buf + N);
  }
  ::close(Fd);
  return true;
}

/// Writes \p Bytes to \p Path through the fault-injectable fd path,
/// looping over short transfers. False on any syscall failure.
bool writeWhole(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  int Fd = retryEintr([&] {
    return ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  });
  if (Fd < 0)
    return false;
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = retryEintr(
        [&] { return fpWrite(Fd, Bytes.data() + Off, Bytes.size() - Off); });
    if (N <= 0) {
      ::close(Fd);
      return false;
    }
    Off += size_t(N);
  }
  return ::close(Fd) == 0;
}

/// True when the tmp file \p Name ("tmp.<pid>.<hex>") may be swept: its
/// writer is this process (no write is in flight during open()) or a dead
/// one. A live sibling sharing the store keeps its in-flight tmp files.
bool tmpFileIsStale(const std::string &Name) {
  int OwnerPid = 0;
  if (std::sscanf(Name.c_str(), "tmp.%d.", &OwnerPid) != 1 || OwnerPid <= 0)
    return true; // unparseable (legacy) name: sweep it
  if (OwnerPid == int(getpid()))
    return true;
  return ::kill(pid_t(OwnerPid), 0) != 0 && errno == ESRCH;
}

bool parseHex64(const std::string &Name, size_t At, uint64_t &Word) {
  Word = 0;
  for (size_t I = 0; I < 16; ++I) {
    char C = Name[At + I];
    Word <<= 4;
    if (C >= '0' && C <= '9')
      Word |= uint64_t(C - '0');
    else if (C >= 'a' && C <= 'f')
      Word |= uint64_t(C - 'a' + 10);
    else
      return false;
  }
  return true;
}

/// Parses a "<32 hex>.au" entry file name into its 128-bit key.
bool parseEntryName(const std::string &Name, CacheKey &Key) {
  if (Name.size() != 35 || Name.compare(32, 3, ".au") != 0)
    return false;
  return parseHex64(Name, 0, Key.K0) && parseHex64(Name, 16, Key.K1);
}

} // namespace

Store::Store(std::string Dir, uint64_t MaxBytes)
    : Dir(std::move(Dir)), MaxBytes(MaxBytes) {}

std::string Store::entryPath(const std::string &Dir, CacheKey Key) {
  return Dir + "/" + formatString("%016llx%016llx.au",
                                  (unsigned long long)Key.K0,
                                  (unsigned long long)Key.K1);
}

bool Store::open(std::string &Err) {
  if (mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    Err = "cannot create store directory '" + Dir + "': " +
          std::strerror(errno);
    return false;
  }
  DIR *D = opendir(Dir.c_str());
  if (!D) {
    Err = "cannot read store directory '" + Dir + "': " +
          std::strerror(errno);
    return false;
  }
  // Initial LRU order: file mtime (coarse, but only seeds the in-memory
  // clock); interrupted writes left behind as tmp.* files are removed.
  std::vector<std::pair<int64_t, std::pair<CacheKey, uint64_t>>> Found;
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.rfind("tmp.", 0) == 0) {
      if (tmpFileIsStale(Name))
        ::unlink((Dir + "/" + Name).c_str());
      continue;
    }
    CacheKey Key;
    if (!parseEntryName(Name, Key))
      continue;
    struct stat St;
    if (stat((Dir + "/" + Name).c_str(), &St) != 0)
      continue;
    Found.push_back({int64_t(St.st_mtime), {Key, uint64_t(St.st_size)}});
  }
  closedir(D);
  std::sort(Found.begin(), Found.end());
  std::lock_guard<std::mutex> L(Mu);
  for (const auto &[Mtime, KeySize] : Found) {
    (void)Mtime;
    Entry &En = Entries[KeySize.first];
    En.Bytes = KeySize.second;
    En.LastUse = ++UseClock;
    Stats.Bytes += En.Bytes;
  }
  evictLocked();
  return true;
}

std::vector<uint8_t> Store::encodeEntry(CacheKey Key, const CachedUnit &U) {
  // Payload: ok flag, diagnostics, serialized unit (empty when !Ok).
  std::vector<uint8_t> Payload;
  Payload.push_back(U.Ok ? 1 : 0);
  put32(Payload, uint32_t(U.Diags.size()));
  for (const Diag &D : U.Diags) {
    put32(Payload, uint32_t(D.Line));
    put32(Payload, uint32_t(D.Message.size()));
    Payload.insert(Payload.end(), D.Message.begin(), D.Message.end());
  }
  std::vector<uint8_t> Unit;
  if (U.Ok)
    Unit = om::serializeUnit(U.U);
  put64(Payload, Unit.size());
  Payload.insert(Payload.end(), Unit.begin(), Unit.end());

  std::vector<uint8_t> Out;
  for (char C : Magic)
    Out.push_back(uint8_t(C));
  put32(Out, StoreFormatVersion);
  put64(Out, Key.K0);
  put64(Out, Key.K1);
  put64(Out, Payload.size());
  put64(Out, fnv1a(Payload.data(), Payload.size()));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

bool Store::decodeEntry(const std::vector<uint8_t> &Bytes, CacheKey Key,
                        CachedUnit &Out) {
  size_t Pos = 0;
  if (Bytes.size() < 4)
    return false;
  for (char C : Magic)
    if (Bytes[Pos++] != uint8_t(C))
      return false;
  uint32_t Version;
  uint64_t FileK0, FileK1, PayloadLen, Checksum;
  if (!get32(Bytes, Pos, Version) || Version != StoreFormatVersion ||
      !get64(Bytes, Pos, FileK0) || !get64(Bytes, Pos, FileK1) ||
      CacheKey(FileK0, FileK1) != Key ||
      !get64(Bytes, Pos, PayloadLen) || !get64(Bytes, Pos, Checksum))
    return false;
  // The payload must be exactly the rest of the file and checksum clean:
  // a truncated or torn entry fails here and is rebuilt.
  if (PayloadLen != Bytes.size() - Pos)
    return false;
  if (fnv1a(Bytes.data() + Pos, PayloadLen) != Checksum)
    return false;

  if (Pos >= Bytes.size())
    return false;
  uint8_t Ok = Bytes[Pos++];
  if (Ok > 1)
    return false;
  Out.Ok = Ok != 0;
  uint32_t NumDiags;
  if (!get32(Bytes, Pos, NumDiags) ||
      size_t(NumDiags) > (Bytes.size() - Pos) / 8)
    return false;
  Out.Diags.resize(NumDiags);
  for (Diag &D : Out.Diags) {
    uint32_t Line, Len;
    if (!get32(Bytes, Pos, Line) || !get32(Bytes, Pos, Len) ||
        Len > Bytes.size() - Pos)
      return false;
    D.Line = int(Line);
    D.Message.assign(Bytes.begin() + long(Pos), Bytes.begin() + long(Pos + Len));
    Pos += Len;
  }
  uint64_t UnitLen;
  if (!get64(Bytes, Pos, UnitLen) || UnitLen != Bytes.size() - Pos)
    return false;
  if (!Out.Ok)
    return UnitLen == 0;
  std::vector<uint8_t> Unit(Bytes.begin() + long(Pos), Bytes.end());
  return om::deserializeUnit(Unit, Out.U);
}

bool Store::load(CacheKey Key, CachedUnit &Out) {
  obs::Span IoSpan("store-load"); // store-I/O segment of the request trace
  std::lock_guard<std::mutex> L(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Stats.Misses;
    return false;
  }
  if (bypassLocked()) {
    ++Stats.Misses;
    return false;
  }
  std::vector<uint8_t> Bytes;
  std::string Path = entryPath(Dir, Key);
  bool IoErr = false;
  if (!readWhole(Path, Bytes, IoErr)) {
    // A flaky disk is not evidence against the entry itself: keep it and
    // let a later (or recovered) load retry; the caller rebuilds for now.
    ++Stats.Misses;
    noteIoLocked(!IoErr);
    if (!IoErr) {
      // Entry file vanished underneath us: forget it.
      ++Stats.LoadFailures;
      dropLocked(Key, /*CountEviction=*/false);
    }
    Out = CachedUnit();
    return false;
  }
  noteIoLocked(true);
  if (!decodeEntry(Bytes, Key, Out)) {
    // Corrupted (torn write, bit rot, stale format): drop it and let the
    // caller rebuild; the rebuilt unit will be re-spilled.
    ++Stats.Misses;
    ++Stats.LoadFailures;
    dropLocked(Key, /*CountEviction=*/false);
    Out = CachedUnit();
    return false;
  }
  ++Stats.Hits;
  It->second.LastUse = ++UseClock;
  return true;
}

void Store::store(CacheKey Key, const CachedUnit &U) {
  obs::Span IoSpan("store-store"); // store-I/O segment of the request trace
  std::lock_guard<std::mutex> L(Mu);
  if (Entries.count(Key))
    return; // content-addressed: an existing entry is already identical
  if (bypassLocked())
    return;
  std::vector<uint8_t> Bytes = encodeEntry(Key, U);
  // Write-then-rename so a crash mid-write never publishes a torn entry.
  std::string Tmp =
      Dir + "/" + formatString("tmp.%d.%016llx%016llx", int(getpid()),
                               (unsigned long long)Key.K0,
                               (unsigned long long)Key.K1);
  if (!writeWhole(Tmp, Bytes)) {
    ::unlink(Tmp.c_str());
    noteIoLocked(false);
    return;
  }
  if (fpRename(Tmp.c_str(), entryPath(Dir, Key).c_str()) != 0) {
    ::unlink(Tmp.c_str());
    noteIoLocked(false);
    return;
  }
  noteIoLocked(true);
  Entry &En = Entries[Key];
  En.Bytes = Bytes.size();
  En.LastUse = ++UseClock;
  Stats.Bytes += En.Bytes;
  ++Stats.Writes;
  evictLocked();
}

bool Store::degraded() const {
  std::lock_guard<std::mutex> L(Mu);
  return DegradedFlag;
}

void Store::noteIoLocked(bool Ok) {
  if (Ok) {
    ConsecIoErrors = 0;
    if (DegradedFlag) {
      DegradedFlag = false;
      ProbeClock = 0;
      obs::Registry::global().emitEvent(
          obs::Event("store-recovered").str("dir", Dir));
    }
    return;
  }
  ++Stats.IoErrors;
  if (!DegradedFlag && ++ConsecIoErrors >= StoreDegradeThreshold) {
    DegradedFlag = true;
    ProbeClock = 0;
    ++Stats.Degrades;
    obs::Registry::global().emitEvent(
        obs::Event("store-degraded")
            .str("dir", Dir)
            .num("consecutive-errors", ConsecIoErrors));
  }
}

bool Store::bypassLocked() {
  if (!DegradedFlag)
    return false;
  // Every StoreProbeInterval-th operation runs for real; its outcome
  // (through noteIoLocked) decides whether the disk is back.
  return ++ProbeClock % StoreProbeInterval != 0;
}

void Store::dropLocked(CacheKey Key, bool CountEviction) {
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return;
  Stats.Bytes -= It->second.Bytes;
  if (CountEviction)
    ++Stats.Evictions;
  Entries.erase(It);
  ::unlink(entryPath(Dir, Key).c_str());
}

void Store::evictLocked() {
  while (MaxBytes && Stats.Bytes > MaxBytes && !Entries.empty()) {
    auto Victim = Entries.begin();
    for (auto It = Entries.begin(); It != Entries.end(); ++It)
      if (It->second.LastUse < Victim->second.LastUse)
        Victim = It;
    dropLocked(Victim->first, /*CountEviction=*/true);
  }
}

bool Store::contains(CacheKey Key) const {
  std::lock_guard<std::mutex> L(Mu);
  return Entries.count(Key) != 0;
}

size_t Store::entryCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return Entries.size();
}

StoreStats Store::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Stats;
}

void Store::publishStats() {
  obs::Registry &Reg = obs::Registry::global();
  if (!Reg.enabled())
    return;
  std::lock_guard<std::mutex> L(Mu);
  Reg.addCounter("atomd.store-hits", Stats.Hits - Published.Hits);
  Reg.addCounter("atomd.store-misses", Stats.Misses - Published.Misses);
  Reg.addCounter("atomd.store-load-failures",
                 Stats.LoadFailures - Published.LoadFailures);
  Reg.addCounter("atomd.store-writes", Stats.Writes - Published.Writes);
  Reg.addCounter("atomd.store-evictions",
                 Stats.Evictions - Published.Evictions);
  Reg.addCounter("atomd.store-io-errors",
                 Stats.IoErrors - Published.IoErrors);
  Reg.addCounter("atomd.store-degraded", Stats.Degrades - Published.Degrades);
  Reg.setGauge("atomd.store-bytes", double(Stats.Bytes));
  Reg.setGauge("atomd.store-degraded-now", DegradedFlag ? 1 : 0);
  Published = Stats;
}
