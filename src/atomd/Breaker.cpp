//===- atomd/Breaker.cpp --------------------------------------------------===//

#include "atomd/Breaker.h"

#include "obs/Obs.h"

#include <chrono>

using namespace atom;
using namespace atom::atomd;

Breaker::Breaker(BreakerOptions O, std::function<uint64_t()> C)
    : Opts(O), Clock(std::move(C)) {
  if (Opts.Threshold == 0)
    Opts.Threshold = 1;
}

uint64_t Breaker::nowMs() const {
  if (Clock)
    return Clock();
  return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

const char *Breaker::stateName(State S) {
  switch (S) {
  case State::Closed: return "closed";
  case State::Open: return "open";
  case State::HalfOpen: return "half-open";
  }
  return "?";
}

Breaker::Decision Breaker::admit(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return {};
  Entry &E = It->second;
  if (E.St == State::Closed)
    return {};
  uint64_t Now = nowMs();
  if (E.St == State::Open) {
    uint64_t Since = Now - E.OpenedAtMs;
    if (Since < Opts.CooldownMs) {
      obs::Registry::global().addCounter("atomd.breaker-fast-fails");
      return {false, false, Opts.CooldownMs - Since};
    }
    E.St = State::HalfOpen;
    E.ProbeInFlight = true;
    obs::Registry::global().emitEvent(
        obs::Event("breaker-half-open").str("tool", Key));
    return {true, true, 0};
  }
  // HalfOpen: one probe at a time; everyone else keeps waiting.
  if (!E.ProbeInFlight) {
    E.ProbeInFlight = true;
    return {true, true, 0};
  }
  obs::Registry::global().addCounter("atomd.breaker-fast-fails");
  return {false, false, Opts.CooldownMs};
}

void Breaker::recordSuccess(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return;
  Entry &E = It->second;
  bool WasOpen = E.St != State::Closed;
  Entries.erase(It); // back to pristine Closed
  if (WasOpen)
    obs::Registry::global().emitEvent(
        obs::Event("breaker-close").str("tool", Key));
}

void Breaker::recordFailure(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  Entry &E = Entries[Key];
  ++E.ConsecFailures;
  if (E.St == State::HalfOpen) {
    // The probe failed too: straight back to Open for another cooldown.
    E.St = State::Open;
    E.OpenedAtMs = nowMs();
    E.ProbeInFlight = false;
    obs::Registry::global().addCounter("atomd.breaker-open");
    obs::Registry::global().emitEvent(obs::Event("breaker-open")
                                          .str("tool", Key)
                                          .num("failures", E.ConsecFailures)
                                          .boolean("probe-failed", true));
    return;
  }
  if (E.St == State::Closed && E.ConsecFailures >= Opts.Threshold) {
    E.St = State::Open;
    E.OpenedAtMs = nowMs();
    obs::Registry::global().addCounter("atomd.breaker-open");
    obs::Registry::global().emitEvent(obs::Event("breaker-open")
                                          .str("tool", Key)
                                          .num("failures", E.ConsecFailures)
                                          .boolean("probe-failed", false));
  }
}

void Breaker::releaseProbe(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Entries.find(Key);
  if (It != Entries.end() && It->second.St == State::HalfOpen)
    It->second.ProbeInFlight = false;
}

Breaker::State Breaker::state(const std::string &Key) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Entries.find(Key);
  return It == Entries.end() ? State::Closed : It->second.St;
}

std::vector<Breaker::KeyState> Breaker::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<KeyState> Out;
  for (const auto &[Key, E] : Entries)
    Out.push_back({Key, E.St, E.ConsecFailures});
  return Out;
}
