//===- atomd/Breaker.h - Per-tool-key circuit breaker -----------*- C++ -*-===//
//
// Fail-fast protection for the daemon's instrument path
// (docs/RESILIENCE.md): a tool whose requests keep crashing workers (or
// blowing their deadlines) is almost certainly broken for everyone, so
// after Threshold consecutive such failures the breaker for that tool key
// opens and later requests are rejected immediately with a retry_after_ms
// hint — no worker is burned re-proving a known-bad tool. After CooldownMs
// the breaker admits exactly one half-open probe request; if it completes,
// the breaker closes, otherwise it re-opens for another cooldown.
//
// Only infrastructure failures feed the breaker: worker crashes and
// deadline kills. Ordinary pipeline failures (bad tool source, malformed
// application) are deterministic per-request outcomes the client must see
// every time.
//
// The clock is injectable so tests can drive open -> half-open -> closed
// transitions without sleeping.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOMD_BREAKER_H
#define ATOM_ATOMD_BREAKER_H

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace atom {
namespace atomd {

struct BreakerOptions {
  unsigned Threshold = 3;     ///< Consecutive failures that open the breaker.
  uint64_t CooldownMs = 1000; ///< Open time before the half-open probe.
};

class Breaker {
public:
  enum class State { Closed, Open, HalfOpen };

  /// \p Clock returns monotonic milliseconds; nullptr uses steady_clock.
  explicit Breaker(BreakerOptions O = {},
                   std::function<uint64_t()> Clock = nullptr);

  struct Decision {
    bool Allow = true;
    bool Probe = false;        ///< This request is the half-open probe.
    uint64_t RetryAfterMs = 0; ///< Advice when !Allow.
  };

  /// Admission check for one request on tool \p Key. An Open breaker past
  /// its cooldown flips to HalfOpen and admits this request as the probe;
  /// while a probe is in flight everything else is rejected.
  Decision admit(const std::string &Key);

  /// The admitted request completed without infrastructure failure (the
  /// pipeline outcome is irrelevant). Closes a half-open breaker.
  void recordSuccess(const std::string &Key);

  /// The admitted request crashed its worker or was deadline-killed.
  /// Opens the breaker at Threshold consecutive failures; a failed probe
  /// re-opens immediately.
  void recordFailure(const std::string &Key);

  /// An admitted probe was never executed (backpressure-rejected further
  /// down the admission path): return the half-open slot so the next
  /// request can probe instead.
  void releaseProbe(const std::string &Key);

  State state(const std::string &Key) const;

  struct KeyState {
    std::string Key;
    State St = State::Closed;
    unsigned ConsecFailures = 0;
  };
  /// Every key with a non-default state (for statusJson).
  std::vector<KeyState> snapshot() const;

  static const char *stateName(State S);

private:
  struct Entry {
    State St = State::Closed;
    unsigned ConsecFailures = 0;
    uint64_t OpenedAtMs = 0;
    bool ProbeInFlight = false;
  };

  uint64_t nowMs() const;

  BreakerOptions Opts;
  std::function<uint64_t()> Clock;
  mutable std::mutex Mu;
  std::map<std::string, Entry> Entries;
};

} // namespace atomd
} // namespace atom

#endif // ATOM_ATOMD_BREAKER_H
