//===- atomd/Client.cpp ---------------------------------------------------===//

#include "atomd/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace atom;
using namespace atom::atomd;

bool Client::connect(const std::string &SocketPath, std::string &Err) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: '" + SocketPath + "'";
    return false;
  }
  std::strcpy(Addr.sun_path, SocketPath.c_str());
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "cannot connect to '" + SocketPath +
          "': " + std::strerror(errno);
    ::close(Fd);
    Fd = -1;
    return false;
  }
  return true;
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::send(const std::string &Json, const std::vector<uint8_t> &Bin,
                  std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  Frame F;
  F.Json = Json;
  F.Bin = Bin;
  return writeFrame(Fd, F, Err);
}

bool Client::recv(Reply &R, Frame &F, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  return readFrame(Fd, F, Err) && parseReply(F, R, Err);
}

bool Client::call(const std::string &Json, const std::vector<uint8_t> &Bin,
                  Reply &R, Frame &F, std::string &Err,
                  unsigned MaxRetries) {
  for (unsigned Attempt = 0;; ++Attempt) {
    if (!send(Json, Bin, Err) || !recv(R, F, Err))
      return false;
    if (!R.Retry)
      return true;
    if (Attempt >= MaxRetries) {
      Err = "daemon kept pushing back (" + R.Error + ") after " +
            formatString("%u", Attempt + 1) + " attempts";
      return false;
    }
    // Jittered exponential delay, floored at the daemon's advice: retrying
    // herds decorrelate instead of re-arriving together.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Retry.delayMs(Attempt, R.RetryAfterMs)));
  }
}
