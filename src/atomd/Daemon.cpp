//===- atomd/Daemon.cpp ---------------------------------------------------===//

#include "atomd/Daemon.h"

#include "support/Support.h"
#include "tools/Tools.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace atom;
using namespace atom::atomd;

namespace {

/// Advised client wait before resending a backpressured request.
constexpr uint64_t RetryAfterMs = 20;
/// Cap on the "stall" debug op so a bad client can't park a worker forever.
constexpr uint64_t MaxStallMs = 10000;
/// Once a connection's outbound reply queue holds this many bytes, the
/// reader stops pulling new frames until the writer drains below it — a
/// client that floods requests without reading replies is throttled at
/// the socket instead of growing the queue without bound.
constexpr uint64_t MaxOutboundBytes = 32u << 20;

/// Client labels feed metric names; restrict them to a safe alphabet.
std::string sanitizeLabel(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (Out.size() == 32)
      break;
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '-' || C == '_' || C == '.';
    Out.push_back(Ok ? C : '_');
  }
  return Out.empty() ? "anon" : Out;
}

} // namespace

Daemon::Daemon(DaemonOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheBytes) {}

Daemon::~Daemon() {
  requestShutdown();
  wait();
}

bool Daemon::start(std::string &Err) {
  if (Opts.SocketPath.empty()) {
    Err = "no socket path";
    return false;
  }
  if (Opts.Isolate && Opts.WorkerExe.empty()) {
    Err = "isolate mode needs the worker executable path";
    return false;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: '" + Opts.SocketPath + "'";
    return false;
  }
  std::strcpy(Addr.sun_path, Opts.SocketPath.c_str());

  if (!Opts.StoreDir.empty()) {
    DiskStore.reset(new Store(Opts.StoreDir, Opts.StoreBytes));
    if (!DiskStore->open(Err)) {
      DiskStore.reset();
      return false;
    }
    Cache.setTier(DiskStore.get());
    // Postmortem dumps live next to the artifacts they explain. Failure
    // to create the directory degrades to no-postmortem, never fatal.
    PostmortemDir = Opts.StoreDir + "/postmortem";
    if (::mkdir(PostmortemDir.c_str(), 0755) != 0 && errno != EEXIST)
      PostmortemDir.clear();
  }

  // CLOEXEC throughout: worker processes must not inherit the listen or
  // connection sockets, or a closed client connection would stay half-open
  // in every worker and EOF-based lifecycle tracking would break.
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    // A leftover socket file from a crashed daemon is reclaimed iff no
    // live daemon answers on it.
    bool Stale = false;
    if (errno == EADDRINUSE) {
      int Probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (Probe >= 0) {
        Stale = ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                          sizeof(Addr)) != 0;
        ::close(Probe);
      }
    }
    if (Stale) {
      ::unlink(Opts.SocketPath.c_str());
      Stale = ::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)) == 0;
    }
    if (!Stale) {
      Err = "cannot bind '" + Opts.SocketPath +
            "': " + std::strerror(errno) +
            (errno == EADDRINUSE ? " (daemon already running?)" : "");
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
  }
  if (::listen(ListenFd, 128) != 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
    return false;
  }

  if (Opts.MetricsPort >= 0) {
    MetricsFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (MetricsFd < 0) {
      Err = std::string("metrics socket: ") + std::strerror(errno);
      ::close(ListenFd);
      ListenFd = -1;
      ::unlink(Opts.SocketPath.c_str());
      return false;
    }
    int One = 1;
    ::setsockopt(MetricsFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in In{};
    In.sin_family = AF_INET;
    In.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    In.sin_port = htons(uint16_t(Opts.MetricsPort));
    socklen_t InLen = sizeof(In);
    if (::bind(MetricsFd, reinterpret_cast<sockaddr *>(&In), InLen) != 0 ||
        ::listen(MetricsFd, 16) != 0 ||
        ::getsockname(MetricsFd, reinterpret_cast<sockaddr *>(&In),
                      &InLen) != 0) {
      Err = std::string("metrics endpoint: ") + std::strerror(errno);
      ::close(MetricsFd);
      MetricsFd = -1;
      ::close(ListenFd);
      ListenFd = -1;
      ::unlink(Opts.SocketPath.c_str());
      return false;
    }
    BoundMetricsPort = int(ntohs(In.sin_port));
    MetricsThread = std::thread([this] { metricsLoop(); });
  }

  Brk.reset(new Breaker({Opts.BreakerThreshold, Opts.BreakerCooldownMs}));
  if (Opts.Isolate) {
    WorkerPoolOptions WO;
    WO.WorkerArgv = {Opts.WorkerExe, "__worker"};
    if (!Opts.StoreDir.empty()) {
      WO.WorkerArgv.push_back("--store-dir");
      WO.WorkerArgv.push_back(Opts.StoreDir);
      if (Opts.StoreBytes) {
        WO.WorkerArgv.push_back("--store-bytes");
        WO.WorkerArgv.push_back(
            formatString("%llu", (unsigned long long)Opts.StoreBytes));
      }
    }
    if (Opts.CacheBytes) {
      WO.WorkerArgv.push_back("--cache-bytes");
      WO.WorkerArgv.push_back(
          formatString("%llu", (unsigned long long)Opts.CacheBytes));
    }
    WO.NumWorkers = Opts.Jobs;
    WO.WorkerRequests = Opts.WorkerRequests;
    Workers.reset(new WorkerPool(WO));
  }

  Pool.reset(new ThreadPool(Opts.Jobs));
  Uptime.reset();
  AcceptThread = std::thread([this] { acceptLoop(); });
  Started = true;
  return true;
}

void Daemon::requestShutdown() {
  bool Expected = false;
  if (!ShuttingDown.compare_exchange_strong(Expected, true))
    return;
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR); // unblocks accept()
  StopCv.notify_all();
}

void Daemon::wait() {
  if (!Started)
    return;
  {
    std::unique_lock<std::mutex> L(StopMu);
    StopCv.wait(L, [this] { return ShuttingDown.load(); });
  }
  if (AcceptThread.joinable())
    AcceptThread.join();
  {
    // Every admitted request finishes and its reply is enqueued before any
    // connection is torn down; PoolMu fences late submissions (handleFrame
    // rejects once ShuttingDown is set, and a request that slipped past
    // the flag completes inside reset()'s drain).
    std::lock_guard<std::mutex> L(PoolMu);
    Pool.reset();
  }
  // Only pool tasks touch the worker pool, so it is idle now; its
  // destructor retires every worker via channel EOF.
  Workers.reset();
  // Flush: every enqueued reply is written (or its client proved dead)
  // before the sockets come down. Conns can only shrink from here — the
  // accept thread is gone — so a snapshot covers them all.
  std::vector<std::shared_ptr<Conn>> Snapshot;
  {
    std::lock_guard<std::mutex> L(ConnMu);
    Snapshot = Conns;
  }
  for (const std::shared_ptr<Conn> &C : Snapshot) {
    std::unique_lock<std::mutex> QL(C->QMu);
    C->QCv.wait(QL, [&] { return C->OutQ.empty() || C->WriterDone; });
  }
  for (const std::shared_ptr<Conn> &C : Snapshot) {
    std::lock_guard<std::mutex> FL(C->FdMu);
    if (C->Fd >= 0)
      ::shutdown(C->Fd, SHUT_RDWR); // unblocks the reader thread
  }
  std::vector<std::thread> Join;
  {
    std::lock_guard<std::mutex> L(ConnMu);
    for (const std::shared_ptr<Conn> &C : Conns)
      if (C->Reader.joinable())
        Join.push_back(std::move(C->Reader));
    for (std::thread &T : DoneReaders)
      Join.push_back(std::move(T));
    DoneReaders.clear();
  }
  for (std::thread &T : Join)
    T.join();
  {
    std::lock_guard<std::mutex> L(ConnMu);
    Conns.clear();
    DoneReaders.clear();
  }
  if (MetricsFd >= 0) {
    ::shutdown(MetricsFd, SHUT_RDWR);
    ::close(MetricsFd);
    MetricsFd = -1;
  }
  if (MetricsThread.joinable())
    MetricsThread.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  ::unlink(Opts.SocketPath.c_str());
  publishAll();
  Started = false;
}

void Daemon::reapConnections() {
  std::vector<std::thread> Join;
  {
    std::lock_guard<std::mutex> L(ConnMu);
    Join.swap(DoneReaders);
  }
  for (std::thread &T : Join)
    T.join();
}

size_t Daemon::liveConnections() const {
  std::lock_guard<std::mutex> L(ConnMu);
  return Conns.size();
}

void Daemon::acceptLoop() {
  setCurrentThreadName("atomd-accept");
  while (true) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr, SOCK_CLOEXEC);
    reapConnections(); // closed connections are joined as we go, not
                       // accumulated until shutdown
    if (Fd < 0) {
      if (errno == EINTR && !ShuttingDown)
        continue;
      break;
    }
    if (ShuttingDown) {
      ::close(Fd);
      break;
    }
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    std::lock_guard<std::mutex> L(ConnMu);
    Conns.push_back(C);
    C->Writer = std::thread([this, C] { connWriter(C); });
    C->Reader = std::thread([this, C] { serveConnection(C); });
  }
}

void Daemon::serveConnection(std::shared_ptr<Conn> C) {
  setCurrentThreadName("atomd-conn");
  obs::Registry::global().addCounter("atomd.connections");
  while (true) {
    {
      // Outbound backpressure: past the byte bound we stop reading, so
      // the client's sends eventually block instead of the reply queue
      // growing without limit. The writer wakes us as it drains.
      std::unique_lock<std::mutex> QL(C->QMu);
      C->QCv.wait(QL, [&] {
        return C->QueuedBytes < MaxOutboundBytes || C->WriterDone;
      });
    }
    Frame F;
    std::string Err;
    if (!readFrame(C->Fd, F, Err))
      break;
    handleFrame(C, std::move(F));
  }
  // Let the writer flush what is already queued, then close and
  // deregister; replies enqueued after this point are dropped (the
  // client is gone).
  {
    std::lock_guard<std::mutex> QL(C->QMu);
    C->CloseWriter = true;
    C->QCv.notify_all();
  }
  if (C->Writer.joinable())
    C->Writer.join();
  {
    std::lock_guard<std::mutex> FL(C->FdMu);
    if (C->Fd >= 0) {
      ::close(C->Fd);
      C->Fd = -1;
    }
  }
  std::lock_guard<std::mutex> L(ConnMu);
  if (C->Reader.joinable()) // not already claimed by wait()
    DoneReaders.push_back(std::move(C->Reader));
  for (auto It = Conns.begin(); It != Conns.end(); ++It)
    if (It->get() == C.get()) {
      Conns.erase(It);
      break;
    }
}

void Daemon::connWriter(std::shared_ptr<Conn> C) {
  setCurrentThreadName("atomd-write");
  while (true) {
    const Frame *F;
    {
      std::unique_lock<std::mutex> QL(C->QMu);
      C->QCv.wait(QL, [&] { return !C->OutQ.empty() || C->CloseWriter; });
      if (C->OutQ.empty())
        break;
      // Only this thread pops, and deque growth never moves elements, so
      // the front frame is stable while we write it unlocked.
      F = &C->OutQ.front();
    }
    int Fd;
    {
      std::lock_guard<std::mutex> FL(C->FdMu);
      Fd = C->Fd;
    }
    std::string Err;
    bool Sent = Fd >= 0 && writeFrame(Fd, *F, Err);
    std::lock_guard<std::mutex> QL(C->QMu);
    C->QueuedBytes -= F->Json.size() + F->Bin.size();
    C->OutQ.pop_front();
    if (!Sent) {
      // A vanished client is not our problem: drop its pending replies.
      C->OutQ.clear();
      C->QueuedBytes = 0;
      C->WriterDone = true;
      C->QCv.notify_all();
      return;
    }
    C->QCv.notify_all();
  }
  std::lock_guard<std::mutex> QL(C->QMu);
  C->WriterDone = true;
  C->QCv.notify_all();
}

void Daemon::reply(const std::shared_ptr<Conn> &C, const std::string &Json,
                   const std::vector<uint8_t> &Bin) {
  std::lock_guard<std::mutex> L(C->QMu);
  if (C->CloseWriter || C->WriterDone)
    return;
  C->QueuedBytes += Json.size() + Bin.size();
  Frame F;
  F.Json = Json;
  F.Bin = Bin;
  C->OutQ.push_back(std::move(F));
  C->QCv.notify_all();
}

void Daemon::replyError(const std::shared_ptr<Conn> &C, uint64_t Id,
                        const std::string &Error,
                        const std::vector<Diag> &Diags,
                        const std::string &TraceId,
                        const std::string &Postmortem) {
  reply(C, makeErrorReply(Id, Error, Diags, TraceId, Postmortem));
}

void Daemon::replyRetry(const std::shared_ptr<Conn> &C, uint64_t Id,
                        const char *Reason, const std::string &TraceId) {
  obs::JsonWriter W;
  W.beginObject();
  W.key("id");
  W.value(Id);
  W.key("ok");
  W.value(false);
  W.key("retry");
  W.value(true);
  W.key("reason");
  W.value(Reason);
  W.key("retry_after_ms");
  W.value(RetryAfterMs);
  if (!TraceId.empty()) {
    W.key("trace_id");
    W.value(TraceId);
  }
  W.endObject();
  reply(C, W.take());
}

void Daemon::countClient(const std::string &Label) {
  // Labels are client-controlled: once the map is full, new labels fold
  // into one "other" bucket so neither it nor the metric registry can be
  // grown without bound by a hostile client.
  std::string Counted;
  {
    std::lock_guard<std::mutex> L(ClientMu);
    auto It = ClientRequests.find(Label);
    if (It == ClientRequests.end() &&
        ClientRequests.size() >= MaxClientLabels)
      It = ClientRequests.try_emplace("other").first;
    else if (It == ClientRequests.end())
      It = ClientRequests.try_emplace(Label).first;
    ++It->second;
    Counted = It->first;
  }
  obs::Registry::global().addCounter("atomd.client-requests." + Counted);
}

void Daemon::handleFrame(const std::shared_ptr<Conn> &C, Frame F) {
  obs::Registry &Reg = obs::Registry::global();
  obs::json::Value Doc;
  std::string Err;
  if (!obs::json::parse(F.Json, Doc, Err) ||
      Doc.K != obs::json::Value::Obj) {
    replyError(C, 0, "malformed request: " + Err);
    return;
  }
  uint64_t Id = Doc.u64("id");
  std::string Op = Doc.str("op");

  if (Op == "ping") {
    obs::JsonWriter W;
    W.beginObject();
    W.key("id");
    W.value(Id);
    W.key("ok");
    W.value(true);
    W.key("version");
    W.value(uint64_t(ProtocolVersion));
    W.endObject();
    reply(C, W.take());
    return;
  }
  if (Op == "status") {
    reply(C, statusJson(Id));
    return;
  }
  if (Op == "metrics") {
    publishAll();
    obs::JsonWriter W;
    W.beginObject();
    W.key("id");
    W.value(Id);
    W.key("ok");
    W.value(true);
    W.endObject();
    std::string Json = Reg.toJson();
    reply(C, W.take(), std::vector<uint8_t>(Json.begin(), Json.end()));
    return;
  }
  if (Op == "shutdown") {
    obs::JsonWriter W;
    W.beginObject();
    W.key("id");
    W.value(Id);
    W.key("ok");
    W.value(true);
    W.endObject();
    reply(C, W.take());
    requestShutdown();
    return;
  }
  if (Op == "trace") {
    std::string Want = Doc.str("trace");
    std::string Found;
    {
      std::lock_guard<std::mutex> TL(TraceMu);
      for (const TraceEntry &E : Traces)
        if (E.IdHex == Want) {
          Found = E.Doc;
          break;
        }
    }
    if (Found.empty()) {
      replyError(C, Id, "unknown trace '" + Want + "'");
      return;
    }
    reply(C, formatString("{\"id\":%llu,\"ok\":true,\"trace\":",
                          (unsigned long long)Id) +
                 Found + "}");
    return;
  }
  if (Op == "tail") {
    std::string Body;
    {
      std::lock_guard<std::mutex> TL(TraceMu);
      for (const TraceEntry &E : Traces) {
        if (!Body.empty())
          Body += ',';
        Body += E.Summary;
      }
    }
    reply(C, formatString("{\"id\":%llu,\"ok\":true,\"traces\":[",
                          (unsigned long long)Id) +
                 Body + "]}");
    return;
  }
  if (Op != "instrument" && Op != "stall") {
    replyError(C, Id, "unknown op '" + Op + "'");
    return;
  }

  // Work requests. Parse the payload up front — admission below briefly
  // holds PoolMu, and nothing slow belongs under it.
  std::string Client = sanitizeLabel(Doc.str("client", "anon"));
  uint64_t StallMs = 0;
  std::shared_ptr<std::string> Tool;
  std::shared_ptr<AtomOptions> O;
  std::shared_ptr<std::vector<uint8_t>> AppBytes;
  uint64_t DeadlineMs = 0;
  bool BreakerProbe = false;
  // v3 trace context: adopt the client's trace id (v2 callers send none —
  // mint server-side so every request is traced either way) and open this
  // hop's span under the client's parent_span.
  obs::TraceContext Ctx = obs::TraceContext::mint();
  obs::TraceContext::parseTraceId(Doc.str("trace_id"), Ctx.Hi, Ctx.Lo);
  obs::TraceContext::parseHex64(Doc.str("parent_span"), Ctx.ParentSpan);
  if (Op == "stall") {
    StallMs = std::min<uint64_t>(Doc.u64("ms"), MaxStallMs);
  } else {
    Tool = std::make_shared<std::string>(Doc.str("tool"));
    O = std::make_shared<AtomOptions>();
    std::string OptErr;
    const obs::json::Value *OV = Doc.find("options");
    if (OV && !parseAtomOptions(*OV, *O, OptErr)) {
      replyError(C, Id, OptErr, {}, Ctx.traceIdHex());
      return;
    }
    AppBytes = std::make_shared<std::vector<uint8_t>>(std::move(F.Bin));

    // Effective deadline: the tighter of the server cap and the client's
    // requested timeout (a client cannot extend past the server's).
    DeadlineMs = Opts.DeadlineMs;
    uint64_t TimeoutMs = Doc.u64("timeout_ms");
    if (TimeoutMs && (!DeadlineMs || TimeoutMs < DeadlineMs))
      DeadlineMs = TimeoutMs;

    // Circuit breaker: a tool that keeps crashing workers fails fast here
    // — a final error (no retry flag), with advice on when to try again.
    Breaker::Decision BD = Brk->admit(*Tool);
    BreakerProbe = BD.Probe;
    if (!BD.Allow) {
      // A fail-fast still gets the full postmortem treatment: emit the
      // event under the request's trace scope (so the ring holds it),
      // dump the ring, and name both in the reply.
      obs::TraceScope Scope(Ctx);
      Reg.emitEvent(obs::Event("breaker-open").str("tool", *Tool));
      std::string Pm = writePostmortem(Ctx);
      recordTrace(Ctx, *Tool, "breaker-open", {},
                  obs::rowsFromRecords(obs::FlightRecorder::global()
                                           .snapshot(),
                                       "daemon", Ctx.Hi, Ctx.Lo),
                  Pm);
      obs::JsonWriter W;
      W.beginObject();
      W.key("id");
      W.value(Id);
      W.key("ok");
      W.value(false);
      W.key("error");
      W.value("breaker-open");
      W.key("tool");
      W.value(*Tool);
      W.key("retry_after_ms");
      W.value(BD.RetryAfterMs);
      W.key("trace_id");
      W.value(Ctx.traceIdHex());
      if (!Pm.empty()) {
        W.key("postmortem");
        W.value(Pm);
      }
      W.endObject();
      reply(C, W.take());
      return;
    }
  }

  // Admission: per-client quota first, then the global queue bound. Both
  // rejections are explicit retry replies, never silent drops. PoolMu is
  // scoped to the checks + submit only, so no reply is ever produced (let
  // alone written) while holding the admission path.
  std::unique_lock<std::mutex> L(PoolMu);
  if (ShuttingDown || !Pool) {
    L.unlock();
    if (BreakerProbe)
      Brk->releaseProbe(*Tool);
    replyError(C, Id, "daemon is shutting down");
    return;
  }
  if (C->InFlight.load() >= Opts.ClientQuota) {
    L.unlock();
    if (BreakerProbe)
      Brk->releaseProbe(*Tool);
    Reg.addCounter("atomd.rejects-quota");
    replyRetry(C, Id, "quota", Ctx.traceIdHex());
    return;
  }
  if (QueueDepth.load() >= Opts.QueueMax) {
    L.unlock();
    if (BreakerProbe)
      Brk->releaseProbe(*Tool);
    Reg.addCounter("atomd.rejects-queue");
    replyRetry(C, Id, "queue-full", Ctx.traceIdHex());
    return;
  }
  ++C->InFlight;
  Reg.setGauge("atomd.queue-depth", double(++QueueDepth));
  Reg.addCounter("atomd.requests");
  countClient(Client);

  if (Op == "stall") {
    Pool->submit([this, C, Id, StallMs] {
      std::this_thread::sleep_for(std::chrono::milliseconds(StallMs));
      obs::JsonWriter W;
      W.beginObject();
      W.key("id");
      W.value(Id);
      W.key("ok");
      W.value(true);
      W.endObject();
      reply(C, W.take());
      --C->InFlight;
      obs::Registry::global().setGauge("atomd.queue-depth",
                                       double(--QueueDepth));
    });
    return;
  }

  Stopwatch Admitted; // queue-wait: admission -> pool thread pickup
  Pool->submit([this, C, Id, Tool, O, AppBytes, DeadlineMs, Ctx, Admitted] {
    obs::TraceScope Scope(Ctx);
    uint64_t QueueWaitUs = uint64_t(Admitted.seconds() * 1e6);
    obs::Registry &R = obs::Registry::global();
    R.recordValue("atomd.queue-wait-us", QueueWaitUs);
    obs::FlightRecorder::global().recordSpan(
        Ctx, "queue-wait", obs::traceNowUs() - int64_t(QueueWaitUs),
        QueueWaitUs);
    Stopwatch Watch;
    executeInstrument(C, Id, *Tool, *O, *AppBytes, DeadlineMs, Ctx,
                      QueueWaitUs);
    R.recordValue("atomd.request-latency-us",
                  uint64_t(Watch.seconds() * 1e6));
    --C->InFlight;
    R.setGauge("atomd.queue-depth", double(--QueueDepth));
  });
}

namespace {

/// Sums the store-I/O rows and finds the pipeline ("request") span among
/// trace rows, filling the matching segments.
void priceRows(const std::vector<obs::TraceRecordRow> &Rows,
               Daemon::Segments &Seg) {
  for (const obs::TraceRecordRow &Row : Rows) {
    if (Row.Name == "request" && Row.Kind == "span")
      Seg.PipelineUs = Row.DurUs;
    else if (Row.Name == "store-load" || Row.Name == "store-store")
      Seg.StoreIoUs += Row.DurUs;
  }
}

/// The daemon's own ring records stamped with this trace.
std::vector<obs::TraceRecordRow> daemonRows(const obs::TraceContext &Ctx) {
  return obs::rowsFromRecords(obs::FlightRecorder::global().snapshot(),
                              "daemon", Ctx.Hi, Ctx.Lo);
}

} // namespace

void Daemon::executeInstrument(const std::shared_ptr<Conn> &C, uint64_t Id,
                               const std::string &ToolName,
                               const AtomOptions &O,
                               const std::vector<uint8_t> &AppBytes,
                               uint64_t DeadlineMs,
                               const obs::TraceContext &Ctx,
                               uint64_t QueueWaitUs) {
  obs::Registry &Reg = obs::Registry::global();
  Segments Seg;
  Seg.QueueWaitUs = QueueWaitUs;

  if (!Workers) {
    // In-process path (--no-isolate): no process boundary, so a crashing
    // tool takes the daemon down and deadlines cannot kill anything — the
    // historical trade for skipping the worker round-trip.
    Stopwatch Total;
    Frame R;
    {
      obs::Span Request("request");
      R = buildInstrumentReply(Cache, Id, ToolName, O, AppBytes);
    }
    Brk->recordSuccess(ToolName);
    std::vector<obs::TraceRecordRow> Rows = daemonRows(Ctx);
    priceRows(Rows, Seg);
    Seg.TotalUs = QueueWaitUs + uint64_t(Total.seconds() * 1e6);
    Reg.recordValue("atomd.pipeline-us", Seg.PipelineUs);
    Reg.recordValue("atomd.store-io-us", Seg.StoreIoUs);
    obs::spliceTraceIntoReply(R.Json, Ctx, Rows);
    recordTrace(Ctx, ToolName, R.Bin.empty() ? "error" : "ok", Seg, Rows,
                "");
    reply(C, R.Json, R.Bin);
    return;
  }

  Frame Req;
  // Propagate the trace over the fd-3 channel: the worker parents its
  // span under this request's daemon span (Ctx.SpanId).
  Req.Json = makeInstrumentRequest(Id, ToolName, "", O, 0, Ctx);
  Req.Bin = AppBytes;
  int64_t DispatchStart = obs::traceNowUs();
  Stopwatch RoundTrip;
  WorkerPool::Result R =
      Workers->execute(Req, DeadlineMs ? int64_t(DeadlineMs) : -1);
  uint64_t RoundTripUs = uint64_t(RoundTrip.seconds() * 1e6);
  obs::FlightRecorder::global().recordSpan(Ctx, "dispatch", DispatchStart,
                                           RoundTripUs);
  Seg.TotalUs = QueueWaitUs + RoundTripUs;
  switch (R.Out) {
  case WorkerPool::Outcome::Ok: {
    // The worker built the reply (including pipeline failures, which are
    // request outcomes, not infrastructure failures); pass it through
    // verbatim — it already carries this request's id and its hop of the
    // trace. Parse that hop back out to price the segments and stitch
    // the cross-process tree for the trace/tail ops.
    Brk->recordSuccess(ToolName);
    std::vector<obs::TraceRecordRow> Rows;
    obs::json::Value RDoc;
    std::string PErr;
    if (obs::json::parse(R.Reply.Json, RDoc, PErr))
      if (const obs::json::Value *TR = RDoc.find("trace"))
        for (const obs::json::Value &RV : TR->Items) {
          obs::TraceRecordRow Row;
          if (obs::parseTraceRow(RV, Row))
            Rows.push_back(std::move(Row));
        }
    priceRows(Rows, Seg);
    // Dispatch overhead = everything the round trip spent outside the
    // worker's pipeline (channel transfer, frame codec, scheduling).
    Seg.DispatchUs =
        RoundTripUs > Seg.PipelineUs ? RoundTripUs - Seg.PipelineUs : 0;
    Reg.recordValue("atomd.dispatch-us", Seg.DispatchUs);
    Reg.recordValue("atomd.pipeline-us", Seg.PipelineUs);
    Reg.recordValue("atomd.store-io-us", Seg.StoreIoUs);
    std::vector<obs::TraceRecordRow> DRows = daemonRows(Ctx);
    Rows.insert(Rows.end(), DRows.begin(), DRows.end());
    recordTrace(Ctx, ToolName, R.Reply.Bin.empty() ? "error" : "ok", Seg,
                Rows, "");
    reply(C, R.Reply.Json, R.Reply.Bin);
    return;
  }
  case WorkerPool::Outcome::Crashed: {
    Reg.addCounter("atomd.worker-crashes");
    Reg.emitEvent(obs::Event("worker-crashed")
                      .str("tool", ToolName)
                      .num("signal", uint64_t(R.TermSignal))
                      .num("exit", uint64_t(R.ExitCode < 0 ? 0
                                                           : R.ExitCode)));
    Brk->recordFailure(ToolName);
    // The crashing worker best-effort dumped its own ring from the signal
    // handler (<store>/postmortem/<trace>.worker.json); the daemon's dump
    // is the guaranteed artifact and the one the reply names.
    std::string Pm = writePostmortem(Ctx);
    recordTrace(Ctx, ToolName, "worker-crashed", Seg, daemonRows(Ctx), Pm);
    obs::JsonWriter W;
    W.beginObject();
    W.key("id");
    W.value(Id);
    W.key("ok");
    W.value(false);
    W.key("error");
    W.value("worker-crashed");
    W.key("tool");
    W.value(ToolName);
    W.key("signal");
    W.value(uint64_t(R.TermSignal));
    W.key("exit");
    W.value(int64_t(R.ExitCode));
    W.key("trace_id");
    W.value(Ctx.traceIdHex());
    if (!Pm.empty()) {
      W.key("postmortem");
      W.value(Pm);
    }
    W.endObject();
    reply(C, W.take());
    return;
  }
  case WorkerPool::Outcome::DeadlineKilled: {
    Reg.addCounter("atomd.deadline-kills");
    Reg.emitEvent(obs::Event("deadline-exceeded")
                      .str("tool", ToolName)
                      .num("deadline-ms", DeadlineMs));
    Brk->recordFailure(ToolName);
    // A SIGKILLed worker cannot run a signal handler, so there is no
    // worker-side dump here — the daemon's is the only record.
    std::string Pm = writePostmortem(Ctx);
    recordTrace(Ctx, ToolName, "deadline-exceeded", Seg, daemonRows(Ctx),
                Pm);
    obs::JsonWriter W;
    W.beginObject();
    W.key("id");
    W.value(Id);
    W.key("ok");
    W.value(false);
    W.key("error");
    W.value("deadline-exceeded");
    W.key("tool");
    W.value(ToolName);
    W.key("deadline_ms");
    W.value(DeadlineMs);
    W.key("trace_id");
    W.value(Ctx.traceIdHex());
    if (!Pm.empty()) {
      W.key("postmortem");
      W.value(Pm);
    }
    W.endObject();
    reply(C, W.take());
    return;
  }
  case WorkerPool::Outcome::SpawnFailed:
    // A spawn failure is a daemon-side resource problem (fork/exec), not
    // evidence against the tool, so it does not feed the breaker — but if
    // this request was the half-open probe, the probe never ran and its
    // slot must be returned or the breaker wedges with ProbeInFlight set
    // forever. Any request reaching execution while its breaker is
    // half-open *is* the probe, so an unconditional release is safe.
    Brk->releaseProbe(ToolName);
    replyError(C, Id, R.Error.empty() ? "worker spawn failed" : R.Error,
               {}, Ctx.traceIdHex());
    return;
  }
}

void Daemon::recordTrace(const obs::TraceContext &Ctx,
                         const std::string &Tool,
                         const std::string &Outcome, const Segments &Seg,
                         const std::vector<obs::TraceRecordRow> &Rows,
                         const std::string &Postmortem) {
  obs::JsonWriter W;
  W.beginObject();
  W.key("trace_id");
  W.value(Ctx.traceIdHex());
  W.key("tool");
  W.value(Tool);
  W.key("outcome");
  W.value(Outcome);
  W.key("segments");
  W.beginObject();
  W.key("queue-wait-us");
  W.value(Seg.QueueWaitUs);
  W.key("dispatch-us");
  W.value(Seg.DispatchUs);
  W.key("pipeline-us");
  W.value(Seg.PipelineUs);
  W.key("store-io-us");
  W.value(Seg.StoreIoUs);
  W.endObject();
  W.key("total-us");
  W.value(Seg.TotalUs);
  if (!Postmortem.empty()) {
    W.key("postmortem");
    W.value(Postmortem);
  }
  W.key("records");
  W.beginArray();
  for (const obs::TraceRecordRow &R : Rows)
    obs::writeTraceRow(W, R);
  W.endArray();
  W.endObject();

  obs::JsonWriter S;
  S.beginObject();
  S.key("trace_id");
  S.value(Ctx.traceIdHex());
  S.key("tool");
  S.value(Tool);
  S.key("outcome");
  S.value(Outcome);
  S.key("total-us");
  S.value(Seg.TotalUs);
  S.endObject();

  std::lock_guard<std::mutex> L(TraceMu);
  Traces.push_back({Ctx.traceIdHex(), W.take(), S.take()});
  while (Traces.size() > MaxTraceIndex)
    Traces.pop_front();
}

std::string Daemon::writePostmortem(const obs::TraceContext &Ctx) {
  if (PostmortemDir.empty())
    return "";
  std::string Path = PostmortemDir + "/" + Ctx.traceIdHex() + ".json";
  int Fd =
      ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (Fd < 0)
    return "";
  bool Ok = obs::FlightRecorder::global().dumpToFd(Fd);
  ::close(Fd);
  if (!Ok) {
    ::unlink(Path.c_str());
    return "";
  }
  obs::Registry::global().addCounter("atomd.postmortems-written");
  return Path;
}

std::string Daemon::statusJson(uint64_t Id) {
  publishAll();
  CacheStats CS = Cache.stats();
  obs::JsonWriter W;
  W.beginObject();
  W.key("id");
  W.value(Id);
  W.key("ok");
  W.value(true);
  W.key("version");
  W.value(uint64_t(ProtocolVersion));
  W.key("uptime-s");
  W.value(Uptime.seconds());
  W.key("workers");
  W.value(uint64_t(Pool ? Pool->threadCount() : 0));
  W.key("isolate");
  W.value(Workers != nullptr);
  W.key("deadline-ms");
  W.value(Opts.DeadlineMs);
  if (Workers) {
    WorkerPool::PoolStats PS = Workers->stats();
    W.key("worker-pool");
    W.beginObject();
    W.key("processes");
    W.value(uint64_t(Workers->size()));
    W.key("spawns");
    W.value(PS.Spawns);
    W.key("crashes");
    W.value(PS.Crashes);
    W.key("deadline-kills");
    W.value(PS.DeadlineKills);
    W.key("recycles");
    W.value(PS.Recycles);
    W.endObject();
  }
  if (Brk) {
    std::vector<Breaker::KeyState> BS = Brk->snapshot();
    if (!BS.empty()) {
      W.key("breakers");
      W.beginObject();
      for (const Breaker::KeyState &K : BS) {
        W.key(K.Key);
        W.beginObject();
        W.key("state");
        W.value(Breaker::stateName(K.St));
        W.key("consecutive-failures");
        W.value(uint64_t(K.ConsecFailures));
        W.endObject();
      }
      W.endObject();
    }
  }
  W.key("queue-depth");
  W.value(uint64_t(QueueDepth.load()));
  W.key("queue-max");
  W.value(uint64_t(Opts.QueueMax));
  W.key("client-quota");
  W.value(uint64_t(Opts.ClientQuota));
  W.key("cache");
  W.beginObject();
  W.key("hits");
  W.value(CS.Hits);
  W.key("misses");
  W.value(CS.Misses);
  W.key("tier-hits");
  W.value(CS.TierHits);
  W.key("evictions");
  W.value(CS.Evictions);
  W.key("resident-bytes");
  W.value(CS.Resident);
  W.endObject();
  if (DiskStore) {
    StoreStats SS = DiskStore->stats();
    W.key("store");
    W.beginObject();
    W.key("hits");
    W.value(SS.Hits);
    W.key("misses");
    W.value(SS.Misses);
    W.key("load-failures");
    W.value(SS.LoadFailures);
    W.key("writes");
    W.value(SS.Writes);
    W.key("evictions");
    W.value(SS.Evictions);
    W.key("bytes");
    W.value(SS.Bytes);
    W.key("entries");
    W.value(uint64_t(DiskStore->entryCount()));
    W.key("io-errors");
    W.value(SS.IoErrors);
    W.key("degraded");
    W.value(DiskStore->degraded());
    W.endObject();
  }
  W.key("clients");
  W.beginObject();
  {
    std::lock_guard<std::mutex> L(ClientMu);
    for (const auto &[Name, Count] : ClientRequests) {
      W.key(Name);
      W.value(Count);
    }
  }
  W.endObject();
  W.endObject();
  return W.take();
}

void Daemon::publishAll() {
  Cache.publishStats();
  if (DiskStore)
    DiskStore->publishStats();
  obs::Registry::global().setGauge(
      "obs.flightrec-dropped",
      double(obs::FlightRecorder::global().dropped()));
}

std::string Daemon::healthJson() {
  obs::JsonWriter W;
  W.beginObject();
  W.key("ok");
  W.value(true);
  W.key("version");
  W.value(uint64_t(ProtocolVersion));
  W.key("uptime-s");
  W.value(Uptime.seconds());
  W.key("live-connections");
  W.value(uint64_t(liveConnections()));
  W.endObject();
  return W.take();
}

void Daemon::metricsLoop() {
  setCurrentThreadName("atomd-metrics");
  while (true) {
    int Fd = ::accept4(MetricsFd, nullptr, nullptr, SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR && !ShuttingDown)
        continue;
      break;
    }
    // One best-effort read of the request head; /healthz gets a liveness
    // document, any other GET gets the full exposition (this is a scrape
    // endpoint, not a web server). Exemplars are OpenMetrics-only syntax,
    // so they are served only to scrapers whose Accept header negotiates
    // application/openmetrics-text; everyone else gets the classic
    // text/plain exposition their parser can read.
    char Buf[4096];
    ssize_t N = retryEintr([&] { return ::read(Fd, Buf, sizeof(Buf)); });
    std::string ReqLine(Buf, N > 0 ? size_t(N) : 0);
    bool Health = ReqLine.find(" /healthz") != std::string::npos;
    bool OpenMetrics =
        ReqLine.find("application/openmetrics-text") != std::string::npos;
    publishAll();
    std::string Body;
    const char *ContentType;
    if (Health) {
      Body = healthJson();
      ContentType = "application/json";
    } else if (OpenMetrics) {
      Body = obs::Registry::global().toPrometheus(/*OpenMetrics=*/true);
      ContentType = "application/openmetrics-text; version=1.0.0; "
                    "charset=utf-8";
    } else {
      Body = obs::Registry::global().toPrometheus();
      ContentType = "text/plain; version=0.0.4";
    }
    std::string Resp = "HTTP/1.0 200 OK\r\n"
                       "Content-Type: " +
                       std::string(ContentType) +
                       "\r\n"
                       "Content-Length: " +
                       formatString("%zu", Body.size()) +
                       "\r\n"
                       "Connection: close\r\n\r\n" +
                       Body;
    size_t Sent = 0;
    while (Sent < Resp.size()) {
      ssize_t Wr = ::send(Fd, Resp.data() + Sent, Resp.size() - Sent,
                          MSG_NOSIGNAL);
      if (Wr <= 0) {
        if (Wr < 0 && errno == EINTR)
          continue;
        break;
      }
      Sent += size_t(Wr);
    }
    ::close(Fd);
  }
}
