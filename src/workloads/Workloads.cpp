//===- workloads/Workloads.cpp - The 20 synthetic programs ----------------===//
//
// ExpectedStdout is left empty here: the authoritative oracle is the
// pristine-behaviour property (the instrumented program must produce
// byte-identical application output), and spot goldens live in the tests.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace atom;
using namespace atom::workloads;

static const char *BubbleSrc = R"(
long a[300];

int main() {
  long i;
  long j;
  long n = 300;
  for (i = 0; i < n; i = i + 1)
    a[i] = (i * 7919 + 13) % 1000;
  for (i = 0; i < n - 1; i = i + 1)
    for (j = 0; j < n - 1 - i; j = j + 1)
      if (a[j] > a[j + 1]) {
        long t = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
  long sum = 0;
  for (i = 0; i < n; i = i + 1)
    sum = sum + a[i] * i;
  printf("bubble %ld %ld %ld\n", a[0], a[299], sum);
  return 0;
}
)";

static const char *QsortSrc = R"(
long a[2000];

void qsortr(long lo, long hi) {
  if (lo >= hi)
    return;
  long pivot = a[(lo + hi) / 2];
  long i = lo;
  long j = hi;
  while (i <= j) {
    while (a[i] < pivot)
      i = i + 1;
    while (a[j] > pivot)
      j = j - 1;
    if (i <= j) {
      long t = a[i];
      a[i] = a[j];
      a[j] = t;
      i = i + 1;
      j = j - 1;
    }
  }
  qsortr(lo, j);
  qsortr(i, hi);
}

int main() {
  long i;
  long seed = 12345;
  for (i = 0; i < 2000; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    a[i] = seed % 100000;
  }
  qsortr(0, 1999);
  long ok = 1;
  for (i = 1; i < 2000; i = i + 1)
    if (a[i - 1] > a[i])
      ok = 0;
  printf("qsort %ld %ld %ld %ld\n", ok, a[0], a[1000], a[1999]);
  return 0;
}
)";

static const char *SieveSrc = R"(
char comp[8000];

int main() {
  long i;
  long j;
  long count = 0;
  long last = 0;
  for (i = 2; i < 8000; i = i + 1) {
    if (comp[i])
      continue;
    count = count + 1;
    last = i;
    for (j = i + i; j < 8000; j = j + i)
      comp[j] = 1;
  }
  printf("sieve %ld %ld\n", count, last);
  return 0;
}
)";

static const char *MatmulSrc = R"(
long a[24][24];
long b[24][24];
long c[24][24];

int main() {
  long i;
  long j;
  long k;
  long r;
  for (i = 0; i < 24; i = i + 1)
    for (j = 0; j < 24; j = j + 1) {
      a[i][j] = i * 3 + j;
      b[i][j] = i - 2 * j;
    }
  for (r = 0; r < 3; r = r + 1)
    for (i = 0; i < 24; i = i + 1)
      for (j = 0; j < 24; j = j + 1) {
        long s = 0;
        for (k = 0; k < 24; k = k + 1)
          s = s + a[i][k] * b[k][j];
        c[i][j] = s;
      }
  long sum = 0;
  for (i = 0; i < 24; i = i + 1)
    sum = sum + c[i][i];
  printf("matmul %ld %ld\n", sum, c[3][5]);
  return 0;
}
)";

static const char *FibSrc = R"(
long fib(long n) {
  if (n < 2)
    return n;
  return fib(n - 1) + fib(n - 2);
}

int main() {
  printf("fib %ld\n", fib(18));
  return 0;
}
)";

static const char *HashSrc = R"(
struct hnode {
  long key;
  long value;
  struct hnode *next;
};

struct hnode *buckets[128];

void hinsert(long key, long value) {
  long b = (key * 2654435761) & 127;
  if (b < 0)
    b = -b;
  struct hnode *n = (struct hnode *)malloc(sizeof(struct hnode));
  n->key = key;
  n->value = value;
  n->next = buckets[b];
  buckets[b] = n;
}

long hlookup(long key) {
  long b = (key * 2654435761) & 127;
  if (b < 0)
    b = -b;
  struct hnode *n = buckets[b];
  while (n) {
    if (n->key == key)
      return n->value;
    n = n->next;
  }
  return -1;
}

int main() {
  long i;
  long hits = 0;
  long sum = 0;
  for (i = 0; i < 1500; i = i + 1)
    hinsert(i * 17 % 3001, i);
  for (i = 0; i < 1500; i = i + 1) {
    long v = hlookup(i * 13 % 3001);
    if (v >= 0) {
      hits = hits + 1;
      sum = sum + v;
    }
  }
  printf("hash %ld %ld\n", hits, sum);
  return 0;
}
)";

static const char *StringsSrc = R"(
char buf[256];
char buf2[256];

int main() {
  long i;
  long total = 0;
  for (i = 0; i < 200; i = i + 1) {
    long j;
    long len = 3 + i % 60;
    for (j = 0; j < len; j = j + 1)
      buf[j] = (char)('a' + (i + j) % 26);
    buf[len] = 0;
    strcpy(buf2, buf);
    total = total + strlen(buf2);
    if (strcmp(buf, buf2) != 0)
      total = total - 1000000;
  }
  printf("strings %ld\n", total);
  return 0;
}
)";

static const char *ListSrc = R"(
struct node {
  long v;
  struct node *next;
};

int main() {
  struct node *head = 0;
  long i;
  for (i = 0; i < 800; i = i + 1) {
    struct node *n = (struct node *)malloc(sizeof(struct node));
    n->v = i * i % 97;
    n->next = head;
    head = n;
  }
  long sum = 0;
  long count = 0;
  struct node *p = head;
  while (p) {
    sum = sum + p->v;
    count = count + 1;
    p = p->next;
  }
  // Free every other node to exercise the free list.
  p = head;
  while (p && p->next) {
    struct node *dead = p->next;
    p->next = dead->next;
    free((char *)dead);
    p = p->next;
  }
  printf("list %ld %ld\n", count, sum);
  return 0;
}
)";

static const char *TreeSrc = R"(
struct tnode {
  long key;
  struct tnode *l;
  struct tnode *r;
};

struct tnode *insert(struct tnode *t, long key) {
  if (!t) {
    struct tnode *n = (struct tnode *)malloc(sizeof(struct tnode));
    n->key = key;
    n->l = 0;
    n->r = 0;
    return n;
  }
  if (key < t->key)
    t->l = insert(t->l, key);
  else if (key > t->key)
    t->r = insert(t->r, key);
  return t;
}

long height(struct tnode *t) {
  if (!t)
    return 0;
  long hl = height(t->l);
  long hr = height(t->r);
  if (hl > hr)
    return hl + 1;
  return hr + 1;
}

long count(struct tnode *t) {
  if (!t)
    return 0;
  return 1 + count(t->l) + count(t->r);
}

int main() {
  struct tnode *root = 0;
  long seed = 7;
  long i;
  for (i = 0; i < 600; i = i + 1) {
    seed = (seed * 75 + 74) % 65537;
    root = insert(root, seed);
  }
  printf("tree %ld %ld\n", count(root), height(root));
  return 0;
}
)";

static const char *QueensSrc = R"(
long cols[8];
long solutions;

long safe(long row, long col) {
  long r;
  for (r = 0; r < row; r = r + 1) {
    if (cols[r] == col)
      return 0;
    if (cols[r] - col == row - r)
      return 0;
    if (col - cols[r] == row - r)
      return 0;
  }
  return 1;
}

void place(long row) {
  long c;
  if (row == 8) {
    solutions = solutions + 1;
    return;
  }
  for (c = 0; c < 8; c = c + 1)
    if (safe(row, c)) {
      cols[row] = c;
      place(row + 1);
    }
}

int main() {
  place(0);
  printf("queens %ld\n", solutions);
  return 0;
}
)";

static const char *CrcSrc = R"(
char data[16384];
long table[256];

int main() {
  long i;
  long j;
  for (i = 0; i < 256; i = i + 1) {
    long c = i;
    for (j = 0; j < 8; j = j + 1) {
      if (c & 1)
        c = (c >> 1) ^ 0xedb88320;
      else
        c = c >> 1;
      c = c & 0xffffffff;
    }
    table[i] = c;
  }
  for (i = 0; i < 16384; i = i + 1)
    data[i] = (char)(i * 31 + (i >> 5));
  long crc = 0xffffffff;
  for (i = 0; i < 16384; i = i + 1) {
    long idx = (crc ^ (long)data[i]) & 255;
    crc = ((crc >> 8) & 0xffffff) ^ table[idx];
  }
  crc = crc ^ 0xffffffff;
  printf("crc 0x%lx\n", crc & 0xffffffff);
  return 0;
}
)";

static const char *RleSrc = R"(
char src[4096];
char enc[8192];
char dec[4096];

int main() {
  long i;
  for (i = 0; i < 4096; i = i + 1)
    src[i] = (char)((i / 7) % 11 + 'a');
  // Encode as (count, byte) pairs.
  long e = 0;
  i = 0;
  while (i < 4096) {
    long run = 1;
    while (i + run < 4096 && src[i + run] == src[i] && run < 255)
      run = run + 1;
    enc[e] = (char)run;
    enc[e + 1] = src[i];
    e = e + 2;
    i = i + run;
  }
  // Decode and verify.
  long d = 0;
  for (i = 0; i < e; i = i + 2) {
    long k;
    for (k = 0; k < (long)enc[i]; k = k + 1) {
      dec[d] = enc[i + 1];
      d = d + 1;
    }
  }
  long ok = d == 4096;
  for (i = 0; i < 4096; i = i + 1)
    if (dec[i] != src[i])
      ok = 0;
  printf("rle %ld %ld %ld\n", ok, e, d);
  return 0;
}
)";

static const char *DijkstraSrc = R"(
long dist[256];
long done[256];

long weight(long a, long b) {
  return 1 + (a * 7 + b * 13) % 9;
}

int main() {
  long i;
  for (i = 0; i < 256; i = i + 1) {
    dist[i] = 1000000000;
    done[i] = 0;
  }
  dist[0] = 0;
  long iter;
  for (iter = 0; iter < 256; iter = iter + 1) {
    long best = -1;
    long bestd = 1000000000;
    for (i = 0; i < 256; i = i + 1)
      if (!done[i] && dist[i] < bestd) {
        bestd = dist[i];
        best = i;
      }
    if (best < 0)
      break;
    done[best] = 1;
    long r = best / 16;
    long c = best % 16;
    if (r > 0 && dist[best - 16] > bestd + weight(best, best - 16))
      dist[best - 16] = bestd + weight(best, best - 16);
    if (r < 15 && dist[best + 16] > bestd + weight(best, best + 16))
      dist[best + 16] = bestd + weight(best, best + 16);
    if (c > 0 && dist[best - 1] > bestd + weight(best, best - 1))
      dist[best - 1] = bestd + weight(best, best - 1);
    if (c < 15 && dist[best + 1] > bestd + weight(best, best + 1))
      dist[best + 1] = bestd + weight(best, best + 1);
  }
  printf("dijkstra %ld %ld\n", dist[255], dist[136]);
  return 0;
}
)";

static const char *InterpSrc = R"(
// A tiny stack-machine interpreter (standing in for SPEC92's lisp
// interpreter li): opcode dispatch through a switch, a data stack, and a
// loop counter in a virtual register.
//   0: push imm   1: add   2: sub   3: mul   4: dup   5: swap
//   6: jnz rel    7: store reg  8: load reg  9: halt
long stack[64];
long regs[8];
char prog[64];
long operand[64];

long run() {
  long sp = 0;
  long pc = 0;
  long steps = 0;
  while (steps < 200000) {
    long op = (long)prog[pc];
    long arg = operand[pc];
    pc = pc + 1;
    steps = steps + 1;
    switch (op) {
    case 0:
      stack[sp] = arg;
      sp = sp + 1;
      break;
    case 1:
      sp = sp - 1;
      stack[sp - 1] = stack[sp - 1] + stack[sp];
      break;
    case 2:
      sp = sp - 1;
      stack[sp - 1] = stack[sp - 1] - stack[sp];
      break;
    case 3:
      sp = sp - 1;
      stack[sp - 1] = stack[sp - 1] * stack[sp];
      break;
    case 4:
      stack[sp] = stack[sp - 1];
      sp = sp + 1;
      break;
    case 5: {
      long t = stack[sp - 1];
      stack[sp - 1] = stack[sp - 2];
      stack[sp - 2] = t;
      break;
    }
    case 6:
      sp = sp - 1;
      if (stack[sp])
        pc = pc + arg;
      break;
    case 7:
      sp = sp - 1;
      regs[arg] = stack[sp];
      break;
    case 8:
      stack[sp] = regs[arg];
      sp = sp + 1;
      break;
    default:
      return stack[sp - 1];
    }
  }
  return -1;
}

void emit(long at, long op, long arg) {
  prog[at] = (char)op;
  operand[at] = arg;
}

int main() {
  // regs[0] = counter, regs[1] = accumulator:
  // acc = sum of i*i for i in [1, 400]
  emit(0, 0, 400);  // push 400
  emit(1, 7, 0);    // store r0
  emit(2, 0, 0);    // push 0
  emit(3, 7, 1);    // store r1
  // loop:
  emit(4, 8, 0);    // load r0
  emit(5, 4, 0);    // dup
  emit(6, 3, 0);    // mul        -> i*i
  emit(7, 8, 1);    // load r1
  emit(8, 1, 0);    // add
  emit(9, 7, 1);    // store r1
  emit(10, 8, 0);   // load r0
  emit(11, 0, 1);   // push 1
  emit(12, 2, 0);   // sub
  emit(13, 4, 0);   // dup
  emit(14, 7, 0);   // store r0
  emit(15, 6, -12); // jnz loop
  emit(16, 8, 1);   // load r1
  emit(17, 9, 0);   // halt
  printf("interp %ld\n", run());
  return 0;
}
)";

static const char *AckermannSrc = R"(
long ack(long m, long n) {
  if (m == 0)
    return n + 1;
  if (n == 0)
    return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}

int main() {
  printf("ackermann %ld\n", ack(3, 4));
  return 0;
}
)";

static const char *BitopsSrc = R"(
long popcount(long v) {
  long c = 0;
  while (v) {
    c = c + (v & 1);
    v = (v >> 1) & 0x7fffffffffffffff;
  }
  return c;
}

long reverse(long v) {
  long r = 0;
  long i;
  for (i = 0; i < 32; i = i + 1) {
    r = (r << 1) | (v & 1);
    v = v >> 1;
  }
  return r;
}

int main() {
  long i;
  long pc = 0;
  long rv = 0;
  for (i = 0; i < 3000; i = i + 1) {
    pc = pc + popcount(i * 2654435761);
    rv = rv ^ reverse(i * 40503);
  }
  printf("bitops %ld 0x%lx\n", pc, rv & 0xffffffff);
  return 0;
}
)";

static const char *UnalignedSrc = R"(
char buf[4096];

int main() {
  long i;
  long sum = 0;
  // Deliberate unaligned 8-byte and 4-byte accesses through char*.
  for (i = 0; i < 300; i = i + 1) {
    long *p = (long *)(buf + (i % 32) + 1);
    *p = i * 1234567;
    sum = sum + *p;
  }
  for (i = 0; i < 300; i = i + 1) {
    int *q = (int *)(buf + 64 + (i % 16) * 4 + 2);
    *q = (int)(i * 99);
    sum = sum + *q;
  }
  printf("unaligned %ld\n", sum);
  return 0;
}
)";

static const char *IoboundSrc = R"(
int main() {
  long f = fopen("iobound.tmp", "w");
  long i;
  for (i = 0; i < 120; i = i + 1)
    fprintf(f, "line %ld value %ld\n", i, i * i % 37);
  fclose(f);
  puts("iobound done");
  return 0;
}
)";

static const char *MallocmixSrc = R"(
char *ptrs[256];

int main() {
  long i;
  long round;
  long checksum = 0;
  for (round = 0; round < 4; round = round + 1) {
    for (i = 0; i < 256; i = i + 1) {
      long size = 8 + (i * 37 + round * 11) % 480;
      ptrs[i] = malloc(size);
      ptrs[i][0] = (char)i;
      ptrs[i][size - 1] = (char)round;
    }
    for (i = 0; i < 256; i = i + 1) {
      checksum = checksum + (long)ptrs[i][0];
      if (i % 2 == 0)
        free(ptrs[i]);
    }
    for (i = 1; i < 256; i = i + 2)
      free(ptrs[i]);
  }
  printf("mallocmix %ld\n", checksum);
  return 0;
}
)";

static const char *FftSrc = R"(
long re[256];
long im[256];

int main() {
  long i;
  long pass;
  for (i = 0; i < 256; i = i + 1) {
    re[i] = (i * 13) % 101 - 50;
    im[i] = 0;
  }
  // Integer butterfly passes (a decimation-style mixing kernel standing in
  // for SPEC92's FP codes).
  long span = 128;
  for (pass = 0; pass < 8; pass = pass + 1) {
    for (i = 0; i < 256; i = i + 1) {
      long j = i ^ span;
      if (j > i) {
        long tr = re[i] - re[j];
        long ti = im[i] - im[j];
        re[i] = re[i] + re[j];
        im[i] = im[i] + im[j];
        re[j] = (tr * 181) / 256;
        im[j] = (ti * 181) / 256 + (tr % 7);
      }
    }
    span = span / 2;
    if (span == 0)
      span = 128;
  }
  long s1 = 0;
  long s2 = 0;
  for (i = 0; i < 256; i = i + 1) {
    s1 = s1 + re[i];
    s2 = s2 ^ im[i];
  }
  printf("fft %ld %ld\n", s1, s2);
  return 0;
}
)";

const std::vector<Workload> &workloads::allWorkloads() {
  static const std::vector<Workload> W = {
      {"bubble", BubbleSrc, ""},       {"qsort", QsortSrc, ""},
      {"sieve", SieveSrc, ""},         {"matmul", MatmulSrc, ""},
      {"fib", FibSrc, "fib 2584\n"},   {"hash", HashSrc, ""},
      {"strings", StringsSrc, ""},     {"list", ListSrc, ""},
      {"tree", TreeSrc, ""},           {"queens", QueensSrc, "queens 92\n"},
      {"crc", CrcSrc, ""},             {"rle", RleSrc, ""},
      {"dijkstra", DijkstraSrc, ""},
      {"interp", InterpSrc, "interp 21413400\n"},
      {"ackermann", AckermannSrc, "ackermann 125\n"},
      {"bitops", BitopsSrc, ""},       {"unaligned", UnalignedSrc, ""},
      {"iobound", IoboundSrc, ""},     {"mallocmix", MallocmixSrc, ""},
      {"fft", FftSrc, ""},
  };
  return W;
}

const Workload *workloads::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (Name == W.Name)
      return &W;
  return nullptr;
}
