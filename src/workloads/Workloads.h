//===- workloads/Workloads.h - Synthetic benchmark suite --------*- C++ -*-===//
//
// Twenty synthetic workloads standing in for the paper's 20 SPEC92
// programs (DESIGN.md "Substitutions"). They span the axes the evaluation
// cares about: memory-reference density (cache/unalign), branch density
// (branch), call density (gprof/prof/inline), allocation behaviour
// (malloc), I/O (io/syscall), and mixed integer compute (dyninst/pipe).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_WORKLOADS_WORKLOADS_H
#define ATOM_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace atom {
namespace workloads {

struct Workload {
  const char *Name;
  const char *Source;          ///< mini-C program text.
  const char *ExpectedStdout;  ///< Golden output (also the oracle for the
                               ///< pristine-behaviour property tests).
};

const std::vector<Workload> &allWorkloads();
const Workload *findWorkload(const std::string &Name);

} // namespace workloads
} // namespace atom

#endif // ATOM_WORKLOADS_WORKLOADS_H
