//===- runtime/Runtime.cpp ------------------------------------------------===//

#include "runtime/Runtime.h"

#include "asm/Assembler.h"
#include "mcc/Compiler.h"

using namespace atom;
using namespace atom::runtime;

const char *runtime::crtSource() {
  return R"(
; crt0.s - program startup.
        .text

; _start: initialize the heap break (unless ATOM pre-initialized it for a
; shared heap), call main, exit with its return value.
        .ent    _start
        .globl  _start
_start:
        lda     sp, -64(sp)
        laddr   t1, __heap_break
        ldq     t2, 0(t1)
        bne     t2, _start$skip
        laddr   t0, __heap_start
        stq     t0, 0(t1)
_start$skip:
        bsr     ra, main
        mov     v0, a0
        bsr     ra, __exit
        halt
        .end    _start
)";
}

const char *runtime::sysSource() {
  return R"(
; sys.s - syscall veneers and the heap-break cell.
        .text
        .ent    __sys_exit
        .globl  __sys_exit
__sys_exit:
        lda     v0, 1(zero)
        callsys
        halt
        .end    __sys_exit

        .ent    __sys_read
        .globl  __sys_read
__sys_read:
        lda     v0, 2(zero)
        callsys
        ret
        .end    __sys_read

        .ent    __sys_write
        .globl  __sys_write
__sys_write:
        lda     v0, 3(zero)
        callsys
        ret
        .end    __sys_write

        .ent    __sys_open
        .globl  __sys_open
__sys_open:
        lda     v0, 4(zero)
        callsys
        ret
        .end    __sys_open

        .ent    __sys_close
        .globl  __sys_close
__sys_close:
        lda     v0, 5(zero)
        callsys
        ret
        .end    __sys_close

        .data
        .align  3
        .globl  __heap_break
__heap_break:
        .quad   0
)";
}

const char *runtime::libSource() {
  return R"(
// lib.mc - the mini-C runtime library.
extern void __sys_exit(long code);
extern long __heap_break;

// ----- heap ---------------------------------------------------------------

char *sbrk(long n) {
  long p = __heap_break;
  __heap_break = p + n;
  return (char *)p;
}

struct __mblk {
  long size;
  struct __mblk *next;
};

struct __mblk *__freelist;

char *malloc(long n) {
  long need = ((n + 7) & ~7) + 16;
  struct __mblk *prev = 0;
  struct __mblk *b = __freelist;
  while (b) {
    if (b->size >= need) {
      if (prev)
        prev->next = b->next;
      else
        __freelist = b->next;
      return (char *)b + 16;
    }
    prev = b;
    b = b->next;
  }
  b = (struct __mblk *)sbrk(need);
  b->size = need;
  b->next = 0;
  return (char *)b + 16;
}

void free(char *p) {
  if (!p)
    return;
  struct __mblk *b = (struct __mblk *)(p - 16);
  b->next = __freelist;
  __freelist = b;
}

char *calloc(long n, long size) {
  long total = n * size;
  char *p = malloc(total);
  memset(p, 0, total);
  return p;
}

// ----- strings ------------------------------------------------------------

long strlen(char *s) {
  long n = 0;
  while (s[n])
    n = n + 1;
  return n;
}

long strcmp(char *a, char *b) {
  long i = 0;
  while (a[i] && a[i] == b[i])
    i = i + 1;
  return (long)a[i] - (long)b[i];
}

char *strcpy(char *d, char *s) {
  long i = 0;
  while (s[i]) {
    d[i] = s[i];
    i = i + 1;
  }
  d[i] = 0;
  return d;
}

char *memset(char *d, long c, long n) {
  long i;
  for (i = 0; i < n; i = i + 1)
    d[i] = (char)c;
  return d;
}

char *memcpy(char *d, char *s, long n) {
  long i;
  for (i = 0; i < n; i = i + 1)
    d[i] = s[i];
  return d;
}

long atoi(char *s) {
  long v = 0;
  long neg = 0;
  long i = 0;
  if (s[0] == '-') {
    neg = 1;
    i = 1;
  }
  while (s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    i = i + 1;
  }
  if (neg)
    return -v;
  return v;
}

// ----- program termination --------------------------------------------------
// __exit is the single point every program passes through on termination;
// ATOM anchors ProgramAfter instrumentation at its entry.

void __exit(long code) {
  __sys_exit(code);
}

void exit(long code) {
  __exit(code);
}

// ----- formatted output -----------------------------------------------------

long __emit_dec(char *buf, long len, long v) {
  char tmp[24];
  long n = 0;
  if (v < 0) {
    // Peel one digit before negating so the most negative value (whose
    // negation does not exist) is handled too.
    buf[len] = '-';
    len = len + 1;
    long r = v % 10;  // in (-10, 0]
    tmp[0] = (char)('0' - r);
    n = 1;
    v = -(v / 10);
  }
  if (v == 0 && n == 0) {
    tmp[0] = '0';
    n = 1;
  }
  while (v > 0) {
    tmp[n] = (char)('0' + v % 10);
    n = n + 1;
    v = v / 10;
  }
  while (n > 0) {
    n = n - 1;
    buf[len] = tmp[n];
    len = len + 1;
  }
  return len;
}

long __emit_hex(char *buf, long len, long v) {
  long j = 15;
  long started = 0;
  while (j >= 0) {
    long d = (v >> (j * 4)) & 15;
    if (d || started || j == 0) {
      started = 1;
      if (d < 10)
        buf[len] = (char)('0' + d);
      else
        buf[len] = (char)('a' + d - 10);
      len = len + 1;
    }
    j = j - 1;
  }
  return len;
}

long __vformat(long fd, char *fmt, long *args) {
  char buf[800];
  long len = 0;
  long total = 0;
  long vi = 0;
  long i = 0;
  while (fmt[i]) {
    if (len > 700) {
      __sys_write(fd, buf, len);
      total = total + len;
      len = 0;
    }
    char c = fmt[i];
    if (c != '%') {
      buf[len] = c;
      len = len + 1;
      i = i + 1;
      continue;
    }
    i = i + 1;
    c = fmt[i];
    i = i + 1;
    if (c == 'l') {
      c = fmt[i];
      i = i + 1;
    }
    if (c == '%') {
      buf[len] = '%';
      len = len + 1;
      continue;
    }
    if (c == 'c') {
      buf[len] = (char)args[vi];
      vi = vi + 1;
      len = len + 1;
      continue;
    }
    if (c == 's') {
      char *s = (char *)args[vi];
      vi = vi + 1;
      long j = 0;
      while (s[j]) {
        if (len > 700) {
          __sys_write(fd, buf, len);
          total = total + len;
          len = 0;
        }
        buf[len] = s[j];
        len = len + 1;
        j = j + 1;
      }
      continue;
    }
    if (c == 'd' || c == 'u') {
      len = __emit_dec(buf, len, args[vi]);
      vi = vi + 1;
      continue;
    }
    if (c == 'x') {
      len = __emit_hex(buf, len, args[vi]);
      vi = vi + 1;
      continue;
    }
    buf[len] = c;
    len = len + 1;
  }
  if (len > 0)
    __sys_write(fd, buf, len);
  return total + len;
}

long printf(char *fmt, ...) {
  long args[14];
  long i;
  for (i = 0; i < 14; i = i + 1)
    args[i] = __vararg(i);
  return __vformat(1, fmt, args);
}

long fprintf(long f, char *fmt, ...) {
  long args[14];
  long i;
  for (i = 0; i < 14; i = i + 1)
    args[i] = __vararg(i);
  return __vformat(f, fmt, args);
}

long puts(char *s) {
  __sys_write(1, s, strlen(s));
  __sys_write(1, "\n", 1);
  return 0;
}

// ----- files ----------------------------------------------------------------

long fopen(char *path, char *mode) {
  long flags = 0;
  if (mode[0] == 'w')
    flags = 1;
  if (mode[0] == 'a')
    flags = 2;
  return __sys_open(path, flags);
}

long fclose(long f) {
  return __sys_close(f);
}
)";
}

const runtime::RuntimeImage &runtime::image() {
  static const RuntimeImage Img = [] {
    RuntimeImage R;
    DiagEngine Diags;
    obj::ObjectModule Crt, Sys, Lib;
    if (!assembler::assemble(crtSource(), "crt0", Crt, Diags)) {
      R.Error = "runtime crt0.s failed to assemble:\n" + Diags.str();
      return R;
    }
    if (!assembler::assemble(sysSource(), "sys", Sys, Diags)) {
      R.Error = "runtime sys.s failed to assemble:\n" + Diags.str();
      return R;
    }
    if (!mcc::compile(libSource(), "lib", Lib, Diags)) {
      R.Error = "runtime lib.mc failed to compile:\n" + Diags.str();
      return R;
    }
    R.Library = {Sys, Lib};
    R.Full = {std::move(Crt), std::move(Sys), std::move(Lib)};
    R.Ok = true;
    return R;
  }();
  return Img;
}

const std::vector<obj::ObjectModule> &runtime::modules() {
  return image().Full;
}

const std::vector<obj::ObjectModule> &runtime::libraryModules() {
  return image().Library;
}
