//===- runtime/Runtime.h - The mini-C runtime library -----------*- C++ -*-===//
//
// Startup code, syscall veneers, sbrk/malloc, printf, and string routines.
// Every linked unit (the application, and separately the analysis routines)
// gets its own copy — the paper's "two copies of printf" property, and the
// basis of the two-sbrk heap schemes (§4 "Keeping Pristine Behavior").
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_RUNTIME_RUNTIME_H
#define ATOM_RUNTIME_RUNTIME_H

#include "obj/ObjectModule.h"

#include <vector>

namespace atom {
namespace runtime {

/// The runtime's object modules, built once from the embedded sources.
/// Building can fail (e.g. when hacking on the embedded assembly/mini-C);
/// that failure is carried here as data so callers report a diagnostic
/// and exit nonzero instead of abort()ing the host process.
struct RuntimeImage {
  bool Ok = false;
  std::string Error;                      ///< Build diagnostics when !Ok.
  std::vector<obj::ObjectModule> Full;    ///< crt0 + library (applications).
  std::vector<obj::ObjectModule> Library; ///< Library only (analysis unit;
                                          ///< it has no _start of its own).
};

/// Builds (once) and returns the runtime image.
const RuntimeImage &image();

/// The full runtime (startup + library), for linking applications.
/// Empty when the build failed — check image().Ok for the reason.
const std::vector<obj::ObjectModule> &modules();

/// Library only (syscall veneers, heap cell, mini-C library) — what the
/// analysis unit links. Empty when the build failed.
const std::vector<obj::ObjectModule> &libraryModules();

/// Assembly source of the startup module (_start).
const char *crtSource();

/// Assembly source of the syscall veneers and heap-break cell.
const char *sysSource();

/// Mini-C source of the library (sbrk/malloc/printf/...).
const char *libSource();

} // namespace runtime
} // namespace atom

#endif // ATOM_RUNTIME_RUNTIME_H
