//===- runtime/Runtime.h - The mini-C runtime library -----------*- C++ -*-===//
//
// Startup code, syscall veneers, sbrk/malloc, printf, and string routines.
// Every linked unit (the application, and separately the analysis routines)
// gets its own copy — the paper's "two copies of printf" property, and the
// basis of the two-sbrk heap schemes (§4 "Keeping Pristine Behavior").
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_RUNTIME_RUNTIME_H
#define ATOM_RUNTIME_RUNTIME_H

#include "obj/ObjectModule.h"

#include <vector>

namespace atom {
namespace runtime {

/// The full runtime (startup + library), for linking applications.
const std::vector<obj::ObjectModule> &modules();

/// Library only (syscall veneers, heap cell, mini-C library) — what the
/// analysis unit links; it has no _start of its own.
const std::vector<obj::ObjectModule> &libraryModules();

/// Assembly source of the startup module (_start).
const char *crtSource();

/// Assembly source of the syscall veneers and heap-break cell.
const char *sysSource();

/// Mini-C source of the library (sbrk/malloc/printf/...).
const char *libSource();

} // namespace runtime
} // namespace atom

#endif // ATOM_RUNTIME_RUNTIME_H
