//===- link/Linker.cpp ----------------------------------------------------===//

#include "link/Linker.h"

#include "isa/Isa.h"

#include <map>

using namespace atom;
using namespace atom::link;
using namespace atom::obj;

namespace {

/// Per-input-module placement of its sections in the merged image.
struct ModuleLayout {
  uint64_t TextOff = 0;
  uint64_t DataOff = 0;
  uint64_t BssOff = 0;
};

/// Shared merging machinery for both link modes.
struct Merger {
  explicit Merger(DiagEngine &Diags) : Diags(Diags) {}

  DiagEngine &Diags;
  bool Failed = false;

  std::vector<ModuleLayout> Layouts;
  uint64_t TextSize = 0, DataSize = 0, BssSize = 0;

  /// Output symbols and the mapping (module, local index) -> output index.
  std::vector<Symbol> OutSymbols;
  std::vector<std::vector<uint32_t>> SymMap;
  std::map<std::string, uint32_t> GlobalDefs;   // name -> out index
  std::map<std::string, uint32_t> UndefGlobals; // name -> out index

  void error(const std::string &Msg) {
    Diags.error(0, Msg);
    Failed = true;
  }

  void computeLayout(const std::vector<ObjectModule> &Modules) {
    for (const ObjectModule &M : Modules) {
      ModuleLayout L;
      L.TextOff = alignTo(TextSize, 4);
      L.DataOff = alignTo(DataSize, 8);
      L.BssOff = alignTo(BssSize, 8);
      TextSize = L.TextOff + M.Text.size();
      DataSize = L.DataOff + M.Data.size();
      BssSize = L.BssOff + M.BssSize;
      Layouts.push_back(L);
    }
  }

  /// Converts a symbol's section-relative value into a merged-image
  /// section-relative value.
  uint64_t placeValue(const Symbol &S, const ModuleLayout &L) {
    switch (S.Section) {
    case SymSection::Text:
      return L.TextOff + S.Value;
    case SymSection::Data:
      return L.DataOff + S.Value;
    case SymSection::Bss:
      return L.BssOff + S.Value;
    case SymSection::Absolute:
    case SymSection::Undefined:
      return S.Value;
    }
    return S.Value;
  }

  void mergeSymbols(const std::vector<ObjectModule> &Modules) {
    for (size_t MI = 0; MI < Modules.size(); ++MI) {
      const ObjectModule &M = Modules[MI];
      SymMap.emplace_back(M.Symbols.size(), 0);
      for (size_t SI = 0; SI < M.Symbols.size(); ++SI) {
        const Symbol &S = M.Symbols[SI];
        Symbol Placed = S;
        Placed.Value = placeValue(S, Layouts[MI]);

        if (S.Global || S.Section == SymSection::Undefined) {
          // Globals and external references share one slot per name.
          auto DefIt = GlobalDefs.find(S.Name);
          if (S.Section != SymSection::Undefined) {
            if (DefIt != GlobalDefs.end()) {
              error("duplicate global symbol '" + S.Name + "' (in " + M.Name +
                    ")");
              SymMap[MI][SI] = DefIt->second;
              continue;
            }
            uint32_t Idx;
            auto UIt = UndefGlobals.find(S.Name);
            if (UIt != UndefGlobals.end()) {
              Idx = UIt->second;
              OutSymbols[Idx] = Placed;
              UndefGlobals.erase(UIt);
            } else {
              Idx = uint32_t(OutSymbols.size());
              OutSymbols.push_back(Placed);
            }
            GlobalDefs.emplace(S.Name, Idx);
            SymMap[MI][SI] = Idx;
            continue;
          }
          // Undefined reference.
          if (DefIt != GlobalDefs.end()) {
            SymMap[MI][SI] = DefIt->second;
            continue;
          }
          auto UIt = UndefGlobals.find(S.Name);
          if (UIt != UndefGlobals.end()) {
            SymMap[MI][SI] = UIt->second;
            continue;
          }
          uint32_t Idx = uint32_t(OutSymbols.size());
          Placed.Global = true;
          OutSymbols.push_back(Placed);
          UndefGlobals.emplace(S.Name, Idx);
          SymMap[MI][SI] = Idx;
          continue;
        }

        // Local symbol: always gets its own slot.
        SymMap[MI][SI] = uint32_t(OutSymbols.size());
        OutSymbols.push_back(Placed);
      }
    }
  }

  void mergeSections(const std::vector<ObjectModule> &Modules,
                     std::vector<uint8_t> &Text, std::vector<uint8_t> &Data,
                     std::vector<Reloc> &TextRelocs,
                     std::vector<Reloc> &DataRelocs) {
    Text.assign(TextSize, 0);
    Data.assign(DataSize, 0);
    for (size_t MI = 0; MI < Modules.size(); ++MI) {
      const ObjectModule &M = Modules[MI];
      const ModuleLayout &L = Layouts[MI];
      std::copy(M.Text.begin(), M.Text.end(), Text.begin() + long(L.TextOff));
      std::copy(M.Data.begin(), M.Data.end(), Data.begin() + long(L.DataOff));
      for (const Reloc &R : M.TextRelocs)
        TextRelocs.push_back({R.Kind, R.Offset + L.TextOff,
                              SymMap[MI][R.SymIndex], R.Addend});
      for (const Reloc &R : M.DataRelocs)
        DataRelocs.push_back({R.Kind, R.Offset + L.DataOff,
                              SymMap[MI][R.SymIndex], R.Addend});
    }
  }
};

} // namespace

bool link::linkRelocatable(const std::vector<ObjectModule> &Modules,
                           const std::string &Name, ObjectModule &Out,
                           DiagEngine &Diags, bool RequireResolved) {
  Merger M(Diags);
  M.computeLayout(Modules);
  M.mergeSymbols(Modules);
  if (RequireResolved)
    for (const auto &[SymName, Idx] : M.UndefGlobals)
      M.error("undefined symbol '" + SymName + "'");
  if (M.Failed)
    return false;

  Out = ObjectModule();
  Out.Name = Name;
  Out.BssSize = M.BssSize;
  Out.Symbols = std::move(M.OutSymbols);
  M.mergeSections(Modules, Out.Text, Out.Data, Out.TextRelocs,
                  Out.DataRelocs);
  return true;
}

/// Applies one relocation into the image. \p SValue is the resolved symbol
/// address, \p Place the absolute address of the relocated field.
static bool applyReloc(const Reloc &R, uint64_t SValue, uint64_t Place,
                       std::vector<uint8_t> &Section, uint64_t SectionOffset,
                       DiagEngine &Diags) {
  int64_t V = int64_t(SValue) + R.Addend;
  switch (R.Kind) {
  case RelocKind::Abs64:
    write64(Section, SectionOffset, uint64_t(V));
    return true;
  case RelocKind::Hi16:
  case RelocKind::Lo16: {
    int16_t Lo = int16_t(uint64_t(V) & 0xFFFF);
    int64_t Hi = (V - Lo) >> 16;
    if (!fitsSigned(Hi, 16)) {
      Diags.error(0, formatString(
                         "Hi16/Lo16 relocation target 0x%llx out of range",
                         (unsigned long long)V));
      return false;
    }
    uint32_t Word = read32(Section, SectionOffset);
    uint16_t Field = R.Kind == RelocKind::Hi16 ? uint16_t(Hi) : uint16_t(Lo);
    Word = (Word & 0xFFFF0000u) | Field;
    write32(Section, SectionOffset, Word);
    return true;
  }
  case RelocKind::Br21: {
    int64_t Delta = V - int64_t(Place + 4);
    if (Delta % 4 != 0) {
      Diags.error(0, "branch target not instruction aligned");
      return false;
    }
    int64_t Disp = Delta / 4;
    if (!fitsSigned(Disp, 21)) {
      Diags.error(0, formatString("branch displacement %lld out of range",
                                  (long long)Disp));
      return false;
    }
    uint32_t Word = read32(Section, SectionOffset);
    Word = (Word & ~0x1FFFFFu) | (uint32_t(Disp) & 0x1FFFFF);
    write32(Section, SectionOffset, Word);
    return true;
  }
  }
  return false;
}

bool link::linkExecutable(const std::vector<ObjectModule> &Modules,
                          Executable &Out, DiagEngine &Diags,
                          const LinkOptions &Opts) {
  ObjectModule Merged;
  if (!linkRelocatable(Modules, "a.out", Merged, Diags,
                       /*RequireResolved=*/false))
    return false;

  Out = Executable();
  Out.TextStart = Opts.TextStart;
  Out.DataStart = Opts.DataStart;
  Out.StackStart = Opts.TextStart;
  Out.Text = std::move(Merged.Text);
  Out.Data = std::move(Merged.Data);
  Out.BssSize = alignTo(Merged.BssSize, 8);
  Out.HeapStart =
      alignTo(Out.DataStart + Out.Data.size() + Out.BssSize, PageSize);
  Out.Symbols = std::move(Merged.Symbols);
  Out.TextRelocs = std::move(Merged.TextRelocs);
  Out.DataRelocs = std::move(Merged.DataRelocs);

  if (Out.TextStart + Out.Text.size() > Out.DataStart) {
    Diags.error(0, "text segment overflows into data segment");
    return false;
  }

  // Resolve linker-provided symbols and convert section-relative symbol
  // values to absolute addresses.
  bool Failed = false;
  for (Symbol &S : Out.Symbols) {
    switch (S.Section) {
    case SymSection::Text:
      S.Value += Out.TextStart;
      break;
    case SymSection::Data:
      S.Value += Out.DataStart;
      break;
    case SymSection::Bss:
      S.Value += Out.DataStart + Out.Data.size();
      S.Section = SymSection::Data; // bss sits right after data in memory
      break;
    case SymSection::Absolute:
      break;
    case SymSection::Undefined:
      if (S.Name == "__heap_start") {
        S.Section = SymSection::Absolute;
        S.Value = Out.HeapStart;
        break;
      }
      Diags.error(0, "undefined symbol '" + S.Name + "'");
      Failed = true;
      break;
    }
  }
  if (Failed)
    return false;

  for (const Reloc &R : Out.TextRelocs)
    if (!applyReloc(R, Out.Symbols[R.SymIndex].Value, Out.TextStart + R.Offset,
                    Out.Text, R.Offset, Diags))
      Failed = true;
  for (const Reloc &R : Out.DataRelocs)
    if (!applyReloc(R, Out.Symbols[R.SymIndex].Value, Out.DataStart + R.Offset,
                    Out.Data, R.Offset, Diags))
      Failed = true;
  if (Failed)
    return false;

  // Statically initialize the runtime's heap-break cell so execution does
  // not depend on _start's lazy-init path. ATOM performs the same
  // initialization on instrumented executables; doing it here keeps the
  // dynamic branch/instruction counts of instrumented and uninstrumented
  // runs aligned.
  for (const Symbol &S : Out.Symbols)
    if (S.Name == "__heap_break" && S.Section == SymSection::Data) {
      uint64_t Off = S.Value - Out.DataStart;
      if (Off + 8 <= Out.Data.size())
        write64(Out.Data, Off, Out.HeapStart);
      break;
    }

  int EntryIdx = Out.findSymbol(Opts.EntrySymbol);
  Out.Entry = EntryIdx >= 0 ? Out.Symbols[EntryIdx].Value : Out.TextStart;
  return true;
}
