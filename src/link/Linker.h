//===- link/Linker.h - Static linker ----------------------------*- C++ -*-===//
//
// Links object modules into either an executable image (with relocations
// retained for OM) or a single merged relocatable module (used by ATOM to
// combine the user's analysis routines with their private copy of the
// runtime library).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_LINK_LINKER_H
#define ATOM_LINK_LINKER_H

#include "obj/ObjectModule.h"
#include "support/Support.h"

#include <vector>

namespace atom {
namespace link {

struct LinkOptions {
  uint64_t TextStart = obj::DefaultTextStart;
  uint64_t DataStart = obj::DefaultDataStart;
  /// Entry symbol; if absent from the inputs, entry falls back to TextStart.
  std::string EntrySymbol = "_start";
};

/// Links \p Modules into an executable. Returns false with diagnostics on
/// duplicate/undefined globals or relocation overflow.
bool linkExecutable(const std::vector<obj::ObjectModule> &Modules,
                    obj::Executable &Out, DiagEngine &Diags,
                    const LinkOptions &Opts = LinkOptions());

/// Merges \p Modules into one relocatable module ("ld -r"). Global symbol
/// references are bound to their definitions; no addresses are assigned and
/// relocations are kept. Returns false on duplicate globals or (if
/// \p RequireResolved) remaining undefined references.
bool linkRelocatable(const std::vector<obj::ObjectModule> &Modules,
                     const std::string &Name, obj::ObjectModule &Out,
                     DiagEngine &Diags, bool RequireResolved = true);

} // namespace link
} // namespace atom

#endif // ATOM_LINK_LINKER_H
