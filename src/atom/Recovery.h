//===- atom/Recovery.h - Crash-surviving analysis ---------------*- C++ -*-===//
//
// ATOM tools report at program exit: ProgramAfter hooks are anchored at
// the runtime's __exit entry. When the *application* traps, those hooks
// would never run and the tool's report would be lost with the crash.
// runWithRecovery() runs an instrumented executable and, on a trap,
// restarts the machine at __exit with a fresh stack so the registered
// finalization (and therefore the report) still executes — the analysis
// survives the application's crash.
//
// The fault PC is translated back to pristine addresses via the PCMap the
// engine embeds in instrumented executables (paper §3: statically-known
// addresses are reported in original terms).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOM_RECOVERY_H
#define ATOM_ATOM_RECOVERY_H

#include "obj/ObjectModule.h"
#include "sim/Machine.h"

namespace atom {

/// True if \p Exe carries an instrumentation PC map (i.e. was produced by
/// the engine).
inline bool isInstrumented(const obj::Executable &Exe) {
  return !Exe.PCMap.empty();
}

/// Original (uninstrumented) PC for \p NewPC. Identity when \p Exe is not
/// instrumented; 0 for inserted/analysis code with no original address.
uint64_t originalPC(const obj::Executable &Exe, uint64_t NewPC);

struct RecoveryResult {
  /// The application's own run result; a trap is preserved here even when
  /// the report path was recovered afterwards.
  sim::RunResult Result;
  /// On a trap: the fault PC translated to uninstrumented addresses
  /// (0 = the trap hit inserted/analysis code, or no map was available).
  uint64_t OrigFaultPC = 0;
  /// The __exit finalization path ran to completion after a trap.
  bool Recovered = false;
};

/// Runs \p M (already loaded with \p Exe) to completion. If the program
/// traps and \p Exe is instrumented, re-enters it at __exit with a reset
/// stack so ProgramAfter finalization runs and tool reports survive the
/// crash. Inspect \p M's VFS afterwards for program output and reports.
RecoveryResult runWithRecovery(const obj::Executable &Exe, sim::Machine &M,
                               uint64_t Fuel = 2'000'000'000);

} // namespace atom

#endif // ATOM_ATOM_RECOVERY_H
