//===- atom/Recovery.h - Crash-surviving analysis ---------------*- C++ -*-===//
//
// ATOM tools report at program exit: ProgramAfter hooks are anchored at
// the runtime's __exit entry. When the *application* traps, those hooks
// would never run and the tool's report would be lost with the crash.
// runWithRecovery() runs an instrumented executable and, on a trap,
// restarts the machine at __exit with a fresh stack so the registered
// finalization (and therefore the report) still executes — the analysis
// survives the application's crash.
//
// The fault PC is translated back to pristine addresses via the PCMap the
// engine embeds in instrumented executables (paper §3: statically-known
// addresses are reported in original terms).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOM_RECOVERY_H
#define ATOM_ATOM_RECOVERY_H

#include "obj/ObjectModule.h"
#include "sim/Machine.h"

namespace atom {

/// True if \p Exe carries an instrumentation PC map (i.e. was produced by
/// the engine).
inline bool isInstrumented(const obj::Executable &Exe) {
  return !Exe.PCMap.empty();
}

/// Original (uninstrumented) PC for \p NewPC. Identity when \p Exe is not
/// instrumented; 0 for inserted/analysis code with no original address.
uint64_t originalPC(const obj::Executable &Exe, uint64_t NewPC);

struct RecoveryResult {
  /// The application's own run result; a trap is preserved here even when
  /// the report path was recovered afterwards.
  sim::RunResult Result;
  /// On a trap: the fault PC translated to uninstrumented addresses
  /// (0 = the trap hit inserted/analysis code, or no map was available).
  uint64_t OrigFaultPC = 0;
  /// The __exit finalization path ran to completion after a trap.
  bool Recovered = false;
};

/// Runs \p M (already loaded with \p Exe) to completion. If the program
/// traps and \p Exe is instrumented, re-enters it at __exit with a reset
/// stack so ProgramAfter finalization runs and tool reports survive the
/// crash. Inspect \p M's VFS afterwards for program output and reports.
///
/// Emits structured events into the global obs registry (when enabled):
/// "trap" with the kind and both PCs, and "recovery-reentry" when the
/// finalization path is restarted.
RecoveryResult runWithRecovery(const obj::Executable &Exe, sim::Machine &M,
                               uint64_t Fuel = 2'000'000'000);

/// One row of the hotspot profile: an executed basic block, with its PC
/// translated back to the original, uninstrumented address — the paper's
/// pristine-address contract extends to profiles (0 = the block is
/// inserted or analysis code with no original address).
struct HotBlock {
  uint64_t PC = 0;     ///< Block-leader PC in the executable that ran.
  uint64_t OrigPC = 0; ///< Original address via the PCMap; identity when
                       ///< the executable is not instrumented.
  uint64_t Count = 0;  ///< Times the block started executing.
};

/// \p M's block profile (enableBlockProfile() must have been on during the
/// run) sorted hottest-first, addresses translated through \p Exe's PCMap.
std::vector<HotBlock> hotBlocks(const obj::Executable &Exe,
                                const sim::Machine &M);

/// Renders hotBlocks() as the `axp-run --profile` report: one row per
/// block, hottest first, capped at \p Max rows (0 = unlimited).
std::string hotProfileReport(const obj::Executable &Exe,
                             const sim::Machine &M, size_t Max = 0);

} // namespace atom

#endif // ATOM_ATOM_RECOVERY_H
