//===- atom/Api.h - The ATOM instrumentation API ----------------*- C++ -*-===//
//
// The user-facing half of ATOM (paper §3): instrumentation routines receive
// an InstrumentationContext and use the traversal primitives
// (getFirstProc/getNextProc/...), query primitives (isInstType/instPC/...),
// and annotation primitives (addCallProto/addCallInst/addCallBlock/
// addCallProc/addCallProgram) to describe where analysis procedures are
// called and what arguments they receive.
//
// Argument kinds mirror the paper: integer constants, REGV (the run-time
// contents of a register), and VALUE (EffAddrValue for the effective
// address of a load/store, BrCondValue for the outcome of a conditional
// branch).
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOM_API_H
#define ATOM_ATOM_API_H

#include "om/Program.h"

#include <string>
#include <vector>

namespace atom {

/// Opaque traversal handles. Pointers stay valid for the lifetime of the
/// InstrumentationContext.
struct Proc {
  int PIdx = -1;
};
struct Block {
  int PIdx = -1, BIdx = -1;
};
struct Inst {
  int PIdx = -1, BIdx = -1, IIdx = -1;
};

enum class InstPoint { InstBefore, InstAfter };
enum class BlockPoint { BlockBefore, BlockAfter };
enum class ProcPoint { ProcBefore, ProcAfter };
enum class ProgramPoint { ProgramBefore, ProgramAfter };

/// Instruction classes for isInstType (paper: IsInstType(inst,
/// InstTypeCondBr) etc.).
enum class InstType {
  CondBranch,
  UncondBranch,
  Call,    ///< bsr or jsr.
  Return,
  Jump,    ///< jmp.
  Load,
  Store,
  MemRef,  ///< Load or store.
  Syscall, ///< callsys.
};

/// VALUE argument kinds.
enum class RuntimeValue {
  EffAddrValue, ///< Effective address of the load/store being instrumented.
  BrCondValue,  ///< Nonzero iff the conditional branch will be taken.
};

/// One argument of an analysis call.
class Arg {
public:
  /// Integer constant (matches an 'int' or 'long' prototype slot).
  static Arg imm(int64_t V) {
    Arg A;
    A.CA.K = om::CallArg::ConstI64;
    A.CA.Value = V;
    return A;
  }
  /// Run-time register contents (matches a 'REGV' slot).
  static Arg regv(unsigned Reg) {
    Arg A;
    A.CA.K = om::CallArg::Regv;
    A.CA.Reg = Reg;
    return A;
  }
  /// Run-time value (matches a 'VALUE' slot).
  static Arg value(RuntimeValue V) {
    Arg A;
    A.CA.K = V == RuntimeValue::EffAddrValue ? om::CallArg::EffAddr
                                             : om::CallArg::BrCond;
    return A;
  }

  const om::CallArg &raw() const { return CA; }

private:
  om::CallArg CA;
};

/// Handed to the user's Instrument routine. Wraps the application's OM IR
/// and records prototypes and call annotations. All addCall* methods return
/// false (and record a diagnostic) on misuse; instrumentation fails if any
/// error was recorded.
class InstrumentationContext {
public:
  explicit InstrumentationContext(om::Unit &App);

  //===--- prototypes -----------------------------------------------------===
  /// Registers an analysis-procedure prototype, e.g.
  /// "CondBranch(int, VALUE)". Parameter kinds: int, long, REGV, VALUE.
  bool addCallProto(const std::string &Proto);

  //===--- traversal (paper §3) -------------------------------------------===
  Proc *getFirstProc();
  Proc *getNextProc(Proc *P);
  Proc *findProc(const std::string &Name);
  Block *getFirstBlock(Proc *P);
  Block *getNextBlock(Block *B);
  Inst *getFirstInst(Block *B);
  Inst *getNextInst(Inst *I);
  Inst *getLastInst(Block *B);

  //===--- queries ----------------------------------------------------------
  bool isInstType(Inst *I, InstType T) const;
  /// Original (uninstrumented) PC of the instruction — ATOM always presents
  /// pre-instrumentation text addresses (paper §4).
  uint64_t instPC(Inst *I) const;
  isa::Opcode instOpcode(Inst *I) const;
  /// Access size in bytes for loads/stores, 0 otherwise.
  unsigned instMemSize(Inst *I) const;
  /// Registers read/written by the instruction, as bitmasks (bit R set =>
  /// register R). Used by tools that do static scheduling (pipe).
  uint32_t instReadRegs(Inst *I) const;
  uint32_t instWrittenRegs(Inst *I) const;
  std::string procName(Proc *P) const;
  uint64_t procPC(Proc *P) const;
  uint64_t blockPC(Block *B) const;
  int procCount() const;
  int blockCount(Proc *P) const;
  /// Number of CFG successors of a block, and the handle of one of them.
  int blockSuccCount(Block *B) const;
  Block *blockSucc(Block *B, unsigned SuccIdx);
  int instCount(Block *B) const;
  /// Total instructions in a procedure.
  int procInstTotal(Proc *P) const;
  /// For a direct call (bsr), the callee procedure; nullptr for indirect
  /// calls or non-call instructions.
  Proc *callTargetProc(Inst *I);

  //===--- annotation -------------------------------------------------------
  bool addCallInst(Inst *I, InstPoint Where, const std::string &Callee,
                   const std::vector<Arg> &Args);
  bool addCallBlock(Block *B, BlockPoint Where, const std::string &Callee,
                    const std::vector<Arg> &Args);
  /// Adds a call on the CFG edge from \p B to its \p SuccIdx-th
  /// successor: the call runs exactly when control flows along that edge
  /// (the paper's unimplemented edge instrumentation, realized here with
  /// trampoline blocks for taken edges).
  bool addCallEdge(Block *B, unsigned SuccIdx, const std::string &Callee,
                   const std::vector<Arg> &Args);
  bool addCallProc(Proc *P, ProcPoint Where, const std::string &Callee,
                   const std::vector<Arg> &Args);
  bool addCallProgram(ProgramPoint Where, const std::string &Callee,
                      const std::vector<Arg> &Args);

  //===--- error reporting --------------------------------------------------
  bool hasErrors() const { return !Errors.empty(); }
  const std::vector<std::string> &errors() const { return Errors; }

  /// Analysis procedures referenced by at least one annotation.
  const std::vector<std::string> &referencedProcs() const {
    return Referenced;
  }
  /// Total number of annotations added.
  unsigned pointCount() const { return Points; }
  /// Prototype parameter kinds (engine use).
  struct ProtoInfo {
    enum Kind { Int, Long, Regv, Value };
    std::vector<Kind> Params;
  };
  const ProtoInfo *findProto(const std::string &Name) const;

private:
  bool fail(const std::string &Msg) {
    Errors.push_back(Msg);
    return false;
  }
  const om::InstNode &node(const Inst *I) const;
  /// Validates an annotation against its prototype; returns the action.
  bool makeAction(const std::string &Callee, const std::vector<Arg> &Args,
                  om::Action &Out, const om::InstNode *Site);
  void noteReference(const std::string &Callee);

  om::Unit &App;
  std::vector<Proc> ProcHandles;
  std::vector<std::vector<Block>> BlockHandles;
  std::vector<std::vector<std::vector<Inst>>> InstHandles;
  std::map<std::string, ProtoInfo> Protos;
  std::vector<std::string> Referenced;
  std::vector<std::string> Errors;
  unsigned Points = 0;
};

} // namespace atom

#endif // ATOM_ATOM_API_H
