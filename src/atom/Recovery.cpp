//===- atom/Recovery.cpp - Crash-surviving analysis -----------------------===//

#include "atom/Recovery.h"

#include <algorithm>

using namespace atom;

uint64_t atom::originalPC(const obj::Executable &Exe, uint64_t NewPC) {
  if (Exe.PCMap.empty())
    return NewPC;
  auto It = std::lower_bound(
      Exe.PCMap.begin(), Exe.PCMap.end(), NewPC,
      [](const std::pair<uint64_t, uint64_t> &P, uint64_t PC) {
        return P.first < PC;
      });
  if (It != Exe.PCMap.end() && It->first == NewPC)
    return It->second;
  return 0; // inserted or analysis code
}

RecoveryResult atom::runWithRecovery(const obj::Executable &Exe,
                                     sim::Machine &M, uint64_t Fuel) {
  RecoveryResult R;
  R.Result = M.run(Fuel);
  if (R.Result.Status != sim::RunStatus::Trap)
    return R;

  R.OrigFaultPC = originalPC(Exe, R.Result.FaultPC);
  int ExitSym = Exe.findSymbol("__exit");
  if (!isInstrumented(Exe) || ExitSym < 0)
    return R;

  // Re-enter at __exit on a fresh stack: the ProgramAfter hooks inserted
  // at its entry run the tool's registered finalization against the
  // analysis state accumulated so far. The trapped application state is
  // otherwise abandoned (exit code 0 is what the hooks would have seen
  // from a clean exit; the trap itself is preserved in R.Result).
  M.memory().clearMemFault();
  M.setReg(isa::RegSP, Exe.StackStart);
  M.setReg(isa::RegA0, 0);
  M.setPC(Exe.Symbols[size_t(ExitSym)].Value);
  sim::RunResult Final = M.run(Fuel);
  R.Recovered = Final.Status == sim::RunStatus::Exited;
  return R;
}
