//===- atom/Recovery.cpp - Crash-surviving analysis -----------------------===//

#include "atom/Recovery.h"

#include "obs/Obs.h"
#include "support/Support.h"

#include <algorithm>

using namespace atom;

uint64_t atom::originalPC(const obj::Executable &Exe, uint64_t NewPC) {
  if (Exe.PCMap.empty())
    return NewPC;
  auto It = std::lower_bound(
      Exe.PCMap.begin(), Exe.PCMap.end(), NewPC,
      [](const std::pair<uint64_t, uint64_t> &P, uint64_t PC) {
        return P.first < PC;
      });
  if (It != Exe.PCMap.end() && It->first == NewPC)
    return It->second;
  return 0; // inserted or analysis code
}

RecoveryResult atom::runWithRecovery(const obj::Executable &Exe,
                                     sim::Machine &M, uint64_t Fuel) {
  RecoveryResult R;
  R.Result = M.run(Fuel);
  if (R.Result.Status != sim::RunStatus::Trap)
    return R;

  R.OrigFaultPC = originalPC(Exe, R.Result.FaultPC);
  obs::Registry::global().emitEvent(
      obs::Event("trap")
          .str("kind", sim::trapKindName(R.Result.Trap))
          .num("pc", R.Result.FaultPC)
          .num("original-pc", R.OrigFaultPC)
          .num("addr", R.Result.FaultAddr));
  int ExitSym = Exe.findSymbol("__exit");
  if (!isInstrumented(Exe) || ExitSym < 0)
    return R;

  // Re-enter at __exit on a fresh stack: the ProgramAfter hooks inserted
  // at its entry run the tool's registered finalization against the
  // analysis state accumulated so far. The trapped application state is
  // otherwise abandoned (exit code 0 is what the hooks would have seen
  // from a clean exit; the trap itself is preserved in R.Result).
  M.memory().clearMemFault();
  M.setReg(isa::RegSP, Exe.StackStart);
  M.setReg(isa::RegA0, 0);
  uint64_t ExitPC = Exe.Symbols[size_t(ExitSym)].Value;
  M.setPC(ExitPC);
  obs::Registry::global().emitEvent(
      obs::Event("recovery-reentry").num("pc", ExitPC));
  sim::RunResult Final = M.run(Fuel);
  R.Recovered = Final.Status == sim::RunStatus::Exited;
  return R;
}

// Original address identifying the block that starts at \p LeaderPC. An
// instrumented block usually *starts* with inserted analysis-call code
// (which has no original address), so an exact PCMap lookup would report
// almost every block as inserted; the block's identity is the first
// original instruction at or after its leader. Analysis procedures sit
// past the last mapped instruction and still report 0.
static uint64_t originalBlockPC(const obj::Executable &Exe,
                                uint64_t LeaderPC) {
  if (Exe.PCMap.empty())
    return LeaderPC;
  auto It = std::lower_bound(
      Exe.PCMap.begin(), Exe.PCMap.end(), LeaderPC,
      [](const std::pair<uint64_t, uint64_t> &P, uint64_t PC) {
        return P.first < PC;
      });
  return It != Exe.PCMap.end() ? It->second : 0;
}

std::vector<HotBlock> atom::hotBlocks(const obj::Executable &Exe,
                                      const sim::Machine &M) {
  std::vector<HotBlock> Blocks;
  Blocks.reserve(M.blockProfile().size());
  for (const auto &[PC, Count] : M.blockProfile())
    Blocks.push_back({PC, originalBlockPC(Exe, PC), Count});
  std::sort(Blocks.begin(), Blocks.end(),
            [](const HotBlock &A, const HotBlock &B) {
              if (A.Count != B.Count)
                return A.Count > B.Count;
              return A.PC < B.PC;
            });
  return Blocks;
}

std::string atom::hotProfileReport(const obj::Executable &Exe,
                                   const sim::Machine &M, size_t Max) {
  std::vector<HotBlock> Blocks = hotBlocks(Exe, M);
  uint64_t Total = 0;
  for (const HotBlock &B : Blocks)
    Total += B.Count;

  std::string Out;
  Out += formatString("hot blocks: %zu distinct, %llu entries total\n",
                      Blocks.size(), (unsigned long long)Total);
  Out += formatString("%16s  %16s  %12s  %6s\n", "pc", "original", "count",
                      "%");
  size_t Rows = (Max && Max < Blocks.size()) ? Max : Blocks.size();
  for (size_t I = 0; I < Rows; ++I) {
    const HotBlock &B = Blocks[I];
    double Pct = Total ? 100.0 * double(B.Count) / double(Total) : 0.0;
    std::string Orig =
        B.OrigPC ? formatString("0x%llx", (unsigned long long)B.OrigPC)
                 : std::string("-"); // inserted/analysis code
    Out += formatString("%#16llx  %16s  %12llu  %5.1f%%\n",
                        (unsigned long long)B.PC, Orig.c_str(),
                        (unsigned long long)B.Count, Pct);
  }
  if (Rows < Blocks.size())
    Out += formatString("... %zu more\n", Blocks.size() - Rows);
  return Out;
}
