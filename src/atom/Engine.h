//===- atom/Engine.h - The instrumentation engine ---------------*- C++ -*-===//
//
// Consumes the annotations recorded by the user's instrumentation routine
// and produces the instrumented executable (paper §4): synthesizes call
// sequences (stack allocation, register saves, argument setup, the call,
// restores), creates wrapper routines or patches analysis prologues,
// minimizes register saves using data-flow summaries and register renaming,
// lays the executable out per Figure 4, and links or partitions the two
// sbrk heaps.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOM_ENGINE_H
#define ATOM_ATOM_ENGINE_H

#include "atom/Api.h"
#include "atom/ProbeOpt.h"
#include "om/Layout.h"

#include <functional>

namespace atom {

struct AtomOptions {
  /// How caller-save registers are preserved around analysis calls.
  enum class SaveStrategy {
    /// Default (paper): a wrapper routine per analysis procedure saves the
    /// registers the data-flow summary proves may be modified.
    WrapperSummary,
    /// Higher optimization (paper): saves/restores are added to the
    /// analysis routine's own prologue (frame is bumped, stack references
    /// fixed); calls go directly to the analysis routine.
    DirectInline,
    /// Delayed saves (paper): scratch-register saves are distributed to
    /// the analysis procedures that actually touch them, so cold paths
    /// (e.g. error reporting) don't tax the common case.
    Distributed,
    /// Ablation baseline: save every caller-save register at every call.
    SaveAll,
    /// Refinement (paper "future work"): no wrapper; each site saves only
    /// the registers that are live in the application at that point.
    SiteLiveness,
  };

  SaveStrategy Strategy = SaveStrategy::WrapperSummary;
  /// Register renaming in analysis routines (paper §4). On by default.
  bool RenameAnalysisRegs = true;
  /// Call analysis routines with ldah/lda+jsr instead of bsr (used when
  /// the analysis text is out of branch range).
  bool ForceJsr = false;
  /// Remove analysis procedures unreachable from any instrumentation point
  /// (the authors' unreachable-procedure elimination, reference [13]).
  bool StripUnreachableAnalysis = true;
  /// 0: the two sbrks are linked and share the application heap (paper's
  /// default). Nonzero: the analysis heap is partitioned to start at
  /// application-heap-start + offset, and application heap addresses are
  /// exactly those of the uninstrumented run even if analysis routines
  /// allocate (paper's second method; no overflow check, as in the paper).
  uint64_t AnalysisHeapOffset = 0;
  /// Implements the paper's future-work refinement: "Optimizations such as
  /// inlining further reduce the overhead of procedure calls at the cost of
  /// increasing the code size." Straight-line leaf analysis routines are
  /// copied into the instrumentation site, eliminating the call, the
  /// return, and the ra save.
  bool InlineAnalysis = false;
  /// Maximum body size (instructions, excluding ret) eligible for inlining.
  unsigned InlineLimit = 24;
  /// Branching inliner (probeopt::planInline): handlers with forward-branch
  /// internal control flow — early-exit diamonds, bracketed cold calls —
  /// are copied into the site too, not just straight-line leaves.
  bool BranchyInline = false;
  /// Guard hoisting (probeopt::planGuard): when a non-inlinable handler
  /// opens with a cheap pure test-and-skip predicate, the site runs only
  /// the predicate and branches over the whole call sequence.
  bool GuardHoist = false;
  /// Dead-argument elision and constant-argument folding from the
  /// handler's USE summary. For out-of-line calls this composes with
  /// SaveStrategy::SiteLiveness only (other strategies size wrapper and
  /// prologue saves assuming every argument register is staged).
  bool ElideDeadArgs = false;

  /// Named optimization presets (`atom --opt=...`). Default defers to the
  /// ATOM_OPT environment variable if set (used by CI sweeps), else leaves
  /// the individual knobs exactly as configured. Explicit presets
  /// overwrite the knobs; O2 from the field (not the environment) also
  /// selects SaveStrategy::SiteLiveness.
  enum class OptPreset { Default, O0, O1, O2 };
  OptPreset Opt = OptPreset::Default;
  /// Worker threads for runAtomBatch(). 0 means one per hardware thread;
  /// 1 runs every (tool, application) pipeline on the calling thread.
  /// Outputs are byte-identical for every value (enforced by tests).
  unsigned Jobs = 0;
  /// Memoize per-tool analysis units and per-application lifted IR across
  /// the pipelines of one runAtomBatch() call (atom.cache-* counters).
  bool CachePipeline = true;
  /// Byte cap on the in-memory pipeline cache (0 = unbounded); the
  /// least-recently-used artifacts are evicted past the cap
  /// (atom.cache-evictions). The `--cache-bytes` knob on atom and atomd.
  uint64_t CacheBytes = 0;
};

/// Preset name ("O2"); "default" for OptPreset::Default.
const char *optPresetName(AtomOptions::OptPreset P);

/// Parses "O0"/"O1"/"O2" (case-sensitive, as documented everywhere) or
/// "default". Returns false on anything else.
bool parseOptPreset(const std::string &Name, AtomOptions::OptPreset &Out);

/// Applies \p O's preset (and, when the preset is Default, the ATOM_OPT
/// environment variable) to the individual optimization knobs, returning
/// the resolved options. The engine calls this itself; it is exposed so
/// CLIs and tests can report the effective configuration.
AtomOptions resolveAtomOptions(const AtomOptions &O);

/// Precomputed pipeline inputs a caller may supply to instrument(): the
/// application already lifted to OM IR, and/or the tool's analysis unit
/// already compiled, linked, and lifted (see buildAnalysisUnit). The engine
/// deep-copies what it is given — cached units are never mutated, so one
/// artifact can feed many concurrent pipelines.
struct PipelineReuse {
  const om::Unit *LiftedApp = nullptr;     ///< Tag must be UnitTag::App.
  const om::Unit *AnalysisUnit = nullptr;  ///< Tag must be UnitTag::Analysis.
};

/// Statistics about one instrumentation run (feeds the benches).
struct InstrStats {
  unsigned Points = 0;         ///< Instrumentation points annotated.
  unsigned InsertedInsts = 0;  ///< Instructions inserted into the program.
  unsigned Wrappers = 0;       ///< Wrapper routines created.
  unsigned PatchedProcs = 0;   ///< Analysis prologues patched.
  unsigned AnalysisProcs = 0;  ///< Analysis procedures kept after stripping.
  unsigned StrippedProcs = 0;  ///< Unreachable analysis procedures removed.
  unsigned SaveSlots = 0;      ///< Registers saved across wrappers/sites.

  // Probe-codegen optimization counters (the atom.probe-* metrics).
  unsigned ProbeInlinedSites = 0; ///< Sites that got a full body copy.
  unsigned ProbeGuardedSites = 0; ///< Sites that got a hoisted guard.
  unsigned ProbeArgsElided = 0;   ///< Arguments dropped (unread by handler).
  unsigned ProbeConstsFolded = 0; ///< Arguments folded to operate literals.
  /// Routines rejected by the planners, indexed by probeopt::Reject.
  unsigned ProbeRejects[probeopt::NumRejectReasons] = {};
};

struct InstrumentedProgram {
  obj::Executable Exe;
  om::LayoutResult Layout;
  InstrStats Stats;
};

/// Links \p AnalysisModules with a private copy of the runtime library and
/// lifts the merged module to OM IR. The result depends only on the
/// analysis modules (not on any application), so it can be built once per
/// tool and reused across applications via PipelineReuse.
bool buildAnalysisUnit(const std::vector<obj::ObjectModule> &AnalysisModules,
                       om::Unit &Out, DiagEngine &Diags);

/// Instruments \p App: runs \p InstrumentFn over its IR, links
/// \p AnalysisModules with a private copy of the runtime, and produces the
/// instrumented executable. Returns false with diagnostics on any error.
/// When \p Reuse supplies a lifted application and/or analysis unit, the
/// corresponding phases start from a copy of it; \p App (respectively
/// \p AnalysisModules) is then ignored and may be empty.
bool instrument(const obj::Executable &App,
                const std::function<void(InstrumentationContext &)>
                    &InstrumentFn,
                const std::vector<obj::ObjectModule> &AnalysisModules,
                const AtomOptions &Opts, InstrumentedProgram &Out,
                DiagEngine &Diags, const PipelineReuse *Reuse = nullptr);

} // namespace atom

#endif // ATOM_ATOM_ENGINE_H
