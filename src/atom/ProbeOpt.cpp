//===- atom/ProbeOpt.cpp - Optimizing probe code generation ---------------===//
//
// Planning for the branching inliner and for guard hoisting. Emission lives
// in Engine.cpp (genCallSeq); this file only decides eligibility and
// records the facts emission needs, so the decision logic is unit-testable
// without building a whole instrumented program.
//
//===----------------------------------------------------------------------===//

#include "atom/ProbeOpt.h"

#include <cassert>

using namespace atom;
using namespace atom::isa;

namespace atom {
namespace probeopt {

const char *rejectName(Reject R) {
  static const char *const Names[NumRejectReasons] = {
      "none",
      "too-many-args",
      "empty-body",
      "no-return",
      "too-big",
      "backward-branch",
      "indirect-flow",
      "syscall",
      "stack-use",
      "reads-undefined",
      "writes-protected",
      "call-clobber-read",
      "not-guardable",
  };
  unsigned I = unsigned(R);
  return I < NumRejectReasons ? Names[I] : "unknown";
}

Opcode invertCondBranch(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
    return Opcode::Bne;
  case Opcode::Bne:
    return Opcode::Beq;
  case Opcode::Blt:
    return Opcode::Bge;
  case Opcode::Bge:
    return Opcode::Blt;
  case Opcode::Ble:
    return Opcode::Bgt;
  case Opcode::Bgt:
    return Opcode::Ble;
  case Opcode::Blbc:
    return Opcode::Blbs;
  case Opcode::Blbs:
    return Opcode::Blbc;
  default:
    assert(false && "not a conditional branch");
    return Op;
  }
}

namespace {

/// Per-block data-flow state for the forward walk over the body's DAG.
/// All edges point forward (validated during the walk), so one pass in
/// block order sees every predecessor before its successors.
struct BlockState {
  uint32_t Defined = ~0u; ///< Registers defined on every path (intersect).
  uint32_t MaybeArg = 0;  ///< Argument regs still holding the incoming
                          ///< value on some path (union).
  uint32_t Poison = 0;    ///< Regs an internal cold call may have left in
                          ///< a state that diverges between the called and
                          ///< inlined worlds (union).
};

/// True when Insts[At..At+6] is the hand-written ra-spill idiom around an
/// internal call:
///
///     laddr  tA, CELL        (ldah + lda, Hi16/Lo16 relocs)
///     stq    ra, 0(tA)
///     bsr    Callee
///     laddr  tB, CELL        (same symbol, re-materialized after the call)
///     ldq    ra, 0(tB)
///
/// The store/reload pair is value-preserving for ra in both the called and
/// the inlined world (whatever was in ra comes back), so the reload need
/// not enter BodyMod and the call bracket need not save ra — the handler
/// already did the work, exactly so its fast path costs nothing at a site.
bool matchesRaSpillIdiom(const std::vector<om::InstNode> &Insts, size_t At) {
  if (At + 6 >= Insts.size())
    return false;
  auto laddr = [&](size_t K, int &Reg, int &Sym) {
    const om::InstNode &Hi = Insts[K], &Lo = Insts[K + 1];
    if (Hi.I.Op != Opcode::Ldah || !Hi.HasReloc ||
        Hi.RelKind != obj::RelocKind::Hi16)
      return false;
    if (Lo.I.Op != Opcode::Lda || !Lo.HasReloc ||
        Lo.RelKind != obj::RelocKind::Lo16 || Lo.I.Ra != Hi.I.Ra ||
        Lo.I.Rb != Hi.I.Ra)
      return false;
    if (Hi.Ref.SymIndex != Lo.Ref.SymIndex || Hi.Ref.Addend != Lo.Ref.Addend)
      return false;
    Reg = Hi.I.Ra;
    Sym = Hi.Ref.SymIndex;
    return true;
  };
  int RegA_, SymA, RegB_, SymB;
  if (!laddr(At, RegA_, SymA) || !laddr(At + 4, RegB_, SymB) || SymA != SymB ||
      Insts[At].Ref.Addend != Insts[At + 4].Ref.Addend)
    return false;
  const om::InstNode &St = Insts[At + 2], &Ld = Insts[At + 6];
  if (St.I.Op != Opcode::Stq || St.I.Ra != RegRA || St.I.Rb != RegA_ ||
      St.I.Disp != 0 || St.HasReloc)
    return false;
  if (Insts[At + 3].I.Op != Opcode::Bsr)
    return false;
  if (Ld.I.Op != Opcode::Ldq || Ld.I.Ra != RegRA || Ld.I.Rb != RegB_ ||
      Ld.I.Disp != 0 || Ld.HasReloc)
    return false;
  return true;
}

} // namespace

Reject planInline(const om::Unit &Anal, int ProcIdx, unsigned NumArgs,
                  unsigned InlineLimit, const om::DataFlowResult &DF,
                  InlinePlan &Plan) {
  const om::Procedure &P = Anal.Procs[size_t(ProcIdx)];
  if (NumArgs > 6)
    return Reject::TooManyArgs;

  size_t NumBlocks = P.Blocks.size();
  if (NumBlocks == 0)
    return Reject::EmptyBody;

  std::vector<int> BlockStart(NumBlocks, 0);
  unsigned Total = 0;
  for (size_t B = 0; B < NumBlocks; ++B) {
    BlockStart[B] = int(Total);
    Total += unsigned(P.Blocks[B].Insts.size());
  }
  if (Total == 0)
    return Reject::EmptyBody;

  const uint32_t CallerSave = om::callerSavedMask();
  const uint32_t ArgRegMask = NumArgs ? ((1u << NumArgs) - 1) << RegA0 : 0;
  const uint32_t RaBit = 1u << RegRA;
  const uint32_t SpBit = 1u << RegSP;

  Plan = InlinePlan();
  Plan.NumArgs = NumArgs;
  Plan.FoldableArgs = NumArgs ? (1u << NumArgs) - 1 : 0;
  Plan.Elems.reserve(Total);

  auto argIdxBits = [&](uint32_t RegMask) {
    uint32_t Bits = 0;
    for (unsigned J = 0; J < NumArgs; ++J)
      if (RegMask & (1u << (RegA0 + J)))
        Bits |= 1u << J;
    return Bits;
  };

  std::vector<BlockState> BS(NumBlocks);
  BS[0].Defined = ArgRegMask | RaBit | (1u << RegZero);
  BS[0].MaybeArg = ArgRegMask;

  unsigned Cost = 0;
  uint32_t UsedArgRegs = 0;

  for (size_t B = 0; B < NumBlocks; ++B) {
    const om::Block &Blk = P.Blocks[B];
    uint32_t Defined = BS[B].Defined;
    uint32_t MaybeArg = BS[B].MaybeArg;
    uint32_t Poison = BS[B].Poison;
    bool FallsThrough = true;

    // Positions of ra-spill idioms in this block: the bsr needs no ra in
    // its bracket, and the reload does not put ra into BodyMod.
    std::vector<bool> ProtectedCall(Blk.Insts.size(), false);
    std::vector<bool> RaNeutralLoad(Blk.Insts.size(), false);
    for (size_t K = 0; K + 6 < Blk.Insts.size(); ++K)
      if (matchesRaSpillIdiom(Blk.Insts, K)) {
        ProtectedCall[K + 3] = true;
        RaNeutralLoad[K + 6] = true;
      }

    auto mergeInto = [&](size_t S) {
      BS[S].Defined &= Defined;
      BS[S].MaybeArg |= MaybeArg;
      BS[S].Poison |= Poison;
    };

    for (size_t Idx = 0; Idx < Blk.Insts.size(); ++Idx) {
      const om::InstNode &N = Blk.Insts[Idx];
      const Inst &I = N.I;
      bool IsLast = Idx + 1 == Blk.Insts.size();
      bool IsFinalElem = B + 1 == NumBlocks && IsLast;

      InlineElem E;
      E.N = N;
      E.N.OrigPC = 0;
      E.N.BranchBlock = -1;
      E.N.Before.clear();
      E.N.After.clear();

      if (I.Op == Opcode::Callsys || I.Op == Opcode::Halt)
        return Reject::Syscall;
      if (I.Op == Opcode::Jsr || I.Op == Opcode::Jmp)
        return Reject::IndirectFlow;

      if (I.Op == Opcode::Ret) {
        // Rewritten at the site into a branch past the body copy (the
        // final one just falls through); its ra read never happens there,
        // so it is exempt from the read checks.
        if (!IsLast)
          return Reject::IndirectFlow;
        E.IsRet = true;
        Plan.Elems.push_back(E);
        if (!IsFinalElem)
          ++Cost;
        FallsThrough = false;
        continue;
      }

      if (I.Op == Opcode::Bsr) {
        // Kept as an out-of-line cold call; the site brackets it with
        // saves of whatever the callee may clobber (ra included) that the
        // site did not already save. Anything the callee may leave behind
        // is poisoned: a later read before redefinition would observe the
        // bracket's restored application value where the called handler
        // would have observed the callee's leftovers.
        if (!N.HasReloc || N.Ref.SymIndex < 0)
          return Reject::IndirectFlow;
        const std::string &Callee = Anal.Symbols[size_t(N.Ref.SymIndex)].Name;
        auto It = Anal.ProcByName.find(Callee);
        if (It == Anal.ProcByName.end())
          return Reject::IndirectFlow;
        const om::ProcSummary &CS = DF.Summaries[size_t(It->second)];
        if (CS.HasIndirectCall)
          return Reject::IndirectFlow;
        E.IsCall = true;
        E.CalleeTransMod = CS.TransMod;
        E.RaProtected = ProtectedCall[Idx];
        Plan.Elems.push_back(E);
        Plan.HasColdCall = true;
        ++Cost;
        // The callee may read any argument register still holding the
        // incoming actual, so those must be staged and cannot be folded.
        UsedArgRegs |= MaybeArg;
        Plan.FoldableArgs &= ~argIdxBits(MaybeArg);
        Defined |= RaBit;
        Poison |= (CS.TransMod | RaBit) & CallerSave;
        continue;
      }

      uint32_t R = readRegs(I);
      uint32_t W = writtenRegs(I);

      if ((R | W) & SpBit)
        return Reject::StackUse;

      if (R & RaBit) {
        // The incoming ra differs between the worlds (return address vs.
        // the application's value), so only the save/restore idiom may
        // touch it: ra as a store's source (paired with a bracketed bsr
        // and a reload). Anything else could leak the difference.
        if (!(isStore(I.Op) && I.Ra == RegRA))
          return Reject::ReadsUndefined;
      }
      if (R & Poison)
        return Reject::CallClobberRead;
      if (R & ~Defined)
        return Reject::ReadsUndefined;

      UsedArgRegs |= R & MaybeArg;
      uint32_t ArgReads = R & ArgRegMask;
      if (ArgReads) {
        // Folding replaces every read of the argument with an 8-bit
        // operate literal, so each read must be exactly the Rb operand of
        // a non-literal operate instruction.
        bool OperateRb = formatOf(I.Op) == Format::Operate && !I.IsLit;
        for (unsigned J = 0; J < NumArgs; ++J) {
          unsigned AR = RegA0 + J;
          if (!(ArgReads & (1u << AR)))
            continue;
          if (!(OperateRb && I.Rb == AR && I.Ra != AR))
            Plan.FoldableArgs &= ~(1u << J);
        }
      }

      if (W & ~CallerSave)
        return Reject::WritesProtected;
      Plan.BodyMod |= RaNeutralLoad[Idx] ? (W & ~RaBit) : W;
      Defined |= W;
      MaybeArg &= ~W;
      Poison &= ~W;
      if (W & ArgRegMask)
        Plan.FoldableArgs &= ~argIdxBits(W);

      if (I.Op == Opcode::Br || isCondBranch(I.Op)) {
        if (N.HasReloc)
          return Reject::IndirectFlow;
        int T = N.BranchBlock;
        if (T < 0 || size_t(T) >= NumBlocks || !IsLast)
          return Reject::IndirectFlow;
        if (size_t(T) <= B)
          return Reject::BackwardBranch;
        E.BranchTo = BlockStart[size_t(T)];
        Plan.Elems.push_back(E);
        ++Cost;
        mergeInto(size_t(T));
        if (I.Op == Opcode::Br)
          FallsThrough = false;
        continue;
      }

      Plan.Elems.push_back(E);
      ++Cost;
    }

    if (FallsThrough) {
      if (B + 1 >= NumBlocks)
        return Reject::NoReturn;
      mergeInto(B + 1);
    }
  }

  if (Cost > InlineLimit)
    return Reject::TooBig;

  Plan.UsedArgs = argIdxBits(UsedArgRegs);
  Plan.FoldableArgs &= Plan.UsedArgs; // folding only matters for read args
  return Reject::None;
}

Reject planGuard(const om::Procedure &P, GuardPlan &Plan) {
  Plan = GuardPlan();
  if (P.Blocks.empty() || P.Blocks[0].Insts.empty())
    return Reject::EmptyBody;

  const uint32_t CallerSave = om::callerSavedMask();
  const om::Block &B0 = P.Blocks[0];
  size_t NumInsts = B0.Insts.size();
  size_t Idx = 0;

  // Skip the standard mini-C prologue — the frame push and the ra /
  // parameter spills into it. The called slow path re-executes all of it;
  // the site emits none of it.
  if (Idx < NumInsts) {
    const Inst &I = B0.Insts[Idx].I;
    if (I.Op == Opcode::Lda && I.Ra == RegSP && I.Rb == RegSP && I.Disp < 0)
      ++Idx;
  }
  while (Idx < NumInsts && isStore(B0.Insts[Idx].I.Op) &&
         B0.Insts[Idx].I.Rb == RegSP)
    ++Idx;

  // Collect the predicate: loads from analysis globals and arithmetic over
  // values the predicate itself defines, ending at the entry block's
  // conditional branch. Purity (no stores, no calls, no argument or frame
  // reads) is what makes re-executing it in the slow-path handler safe.
  uint32_t Defined = 1u << RegZero;
  bool FoundBranch = false;
  for (; Idx < NumInsts; ++Idx) {
    const om::InstNode &N = B0.Insts[Idx];
    const Inst &I = N.I;
    if (isCondBranch(I.Op)) {
      if (Idx + 1 != NumInsts || N.BranchBlock < 0)
        return Reject::NotGuardable;
      if (readRegs(I) & ~Defined)
        return Reject::NotGuardable;
      Plan.Branch = I;
      FoundBranch = true;
      break;
    }
    if (isControlTransfer(I.Op) || isStore(I.Op) || I.Op == Opcode::Callsys ||
        I.Op == Opcode::Halt)
      return Reject::NotGuardable;
    uint32_t R = readRegs(I);
    uint32_t W = writtenRegs(I);
    if ((R | W) & (1u << RegSP))
      return Reject::NotGuardable;
    if (R & ~Defined)
      return Reject::NotGuardable;
    if ((W & ~CallerSave) || (W & (1u << RegRA)))
      return Reject::NotGuardable;
    if (Plan.Pred.size() >= 8) // predicate is no longer cheap
      return Reject::NotGuardable;
    om::InstNode C = N;
    C.OrigPC = 0;
    C.BranchBlock = -1;
    C.Before.clear();
    C.After.clear();
    Plan.Pred.push_back(C);
    Defined |= W;
    Plan.PredMod |= W & CallerSave;
  }
  if (!FoundBranch || Plan.Pred.empty())
    return Reject::NotGuardable;

  // One side of the branch must be a trivial return: only frame restores,
  // the frame pop, an unconditional hop, and ret. Nothing observable
  // happens on it, so the site can skip the entire call sequence.
  auto isTrivialReturn = [&](int BI) {
    unsigned Insts = 0;
    for (unsigned Steps = 0;
         BI > 0 && size_t(BI) < P.Blocks.size() && Steps < 3; ++Steps) {
      const om::Block &Blk = P.Blocks[size_t(BI)];
      int Next = BI + 1;
      bool Hopped = false;
      for (size_t K = 0; K < Blk.Insts.size(); ++K) {
        const Inst &I = Blk.Insts[K].I;
        if (++Insts > 8)
          return false;
        if (I.Op == Opcode::Ret)
          return true;
        if (isLoad(I.Op) && I.Rb == RegSP)
          continue;
        if (I.Op == Opcode::Lda && I.Ra == RegSP && I.Rb == RegSP &&
            I.Disp > 0)
          continue;
        if (I.Op == Opcode::Br && Blk.Insts[K].BranchBlock > 0 &&
            K + 1 == Blk.Insts.size()) {
          Next = Blk.Insts[K].BranchBlock;
          Hopped = true;
          break;
        }
        return false;
      }
      if (!Hopped && Blk.terminator())
        return false;
      BI = Next;
    }
    return false;
  };

  int Taken = B0.Insts.back().BranchBlock;
  int Fall = P.Blocks.size() > 1 ? 1 : -1;
  if (isTrivialReturn(Taken))
    Plan.SkipOnTaken = true;
  else if (isTrivialReturn(Fall))
    Plan.SkipOnTaken = false;
  else
    return Reject::NotGuardable;
  return Reject::None;
}

} // namespace probeopt
} // namespace atom
