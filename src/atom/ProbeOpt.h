//===- atom/ProbeOpt.h - Optimizing probe code generation -------*- C++ -*-===//
//
// The analysis pieces behind `atom --opt=O2` (ROADMAP item 3): deciding
// which analysis routines can be copied *into* instrumentation sites even
// when they contain internal control flow, and which routines with a cheap
// leading test-and-skip predicate can have just that predicate hoisted to
// the site so the common case never pays for the call.
//
// The contract for every transformation here is byte-identity of tool
// output: an inlined or guarded probe must leave the application's
// registers, the analysis routines' memory, and every report/trace byte
// exactly as the called probe would (ToolsTests enforces this across
// O0/O1/O2). The planners therefore reject anything whose behaviour they
// cannot prove equivalent, and record *why* — the reject reasons surface
// as atom.probe-reject-* counters.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOM_PROBEOPT_H
#define ATOM_ATOM_PROBEOPT_H

#include "om/DataFlow.h"
#include "om/Program.h"

namespace atom {
namespace probeopt {

/// Why a routine was not inlined (or guarded). Stable order: these index
/// InstrStats::ProbeRejects and name the atom.probe-reject-* counters.
enum class Reject : uint8_t {
  None = 0,
  TooManyArgs,     ///< More than six register arguments.
  EmptyBody,       ///< No instructions to copy.
  NoReturn,        ///< Body can fall off the end (malformed for inlining).
  TooBig,          ///< Over AtomOptions::InlineLimit instructions.
  BackwardBranch,  ///< Internal loop: only forward (DAG) control flow can
                   ///< be flattened into a site.
  IndirectFlow,    ///< jsr/jmp/external br, or a call to a procedure the
                   ///< data-flow pass cannot see.
  Syscall,         ///< callsys/halt must not run with site-local state.
  StackUse,        ///< Reads or writes sp: the body would observe the
                   ///< site's shifted stack pointer.
  ReadsUndefined,  ///< Reads a register that is neither an argument nor
                   ///< defined on every path to the read.
  WritesProtected, ///< Writes a callee-save register or ra (outside bsr).
  CallClobberRead, ///< After an internal cold call, reads a register the
                   ///< call bracket may restore to the application's value
                   ///< (the called routine would have left garbage there).
  NotGuardable,    ///< No pure leading test-and-skip predicate.
  Count
};

constexpr unsigned NumRejectReasons = unsigned(Reject::Count);

/// Kebab-case name ("backward-branch") for counters and diagnostics.
const char *rejectName(Reject R);

/// One instruction of a flattened (branch-resolved) inline body.
struct InlineElem {
  om::InstNode N;    ///< Relocations preserved; BranchBlock cleared.
  int BranchTo = -1; ///< Intra-body branch: index of the target elem.
  bool IsRet = false;  ///< Rewritten to a branch past the body copy.
  bool IsCall = false; ///< Internal bsr kept as an out-of-line cold call.
  /// IsCall: the body spills and reloads ra itself around this call (the
  /// `laddr/stq ra/bsr/laddr/ldq ra` idiom), so the bracket omits ra.
  bool RaProtected = false;
  uint32_t CalleeTransMod = 0; ///< IsCall: callee's transitive mod set.
};

/// Everything genCallSeq needs to copy a routine into a site: the body in
/// flattened order (blocks concatenated; branches resolved to elem
/// indices, turned into raw forward displacements at emission), plus the
/// register facts that size the site's save set.
struct InlinePlan {
  std::vector<InlineElem> Elems;
  unsigned NumArgs = 0;
  /// Bit j: the body reads a0+j while it still holds the incoming value
  /// on some path. Unused arguments need no staging and no save at the
  /// site.
  uint32_t UsedArgs = 0;
  /// Caller-save registers the body itself writes (internal calls'
  /// transitive effects and bsr's ra write excluded — those are bracketed
  /// around the cold call instead, so the fast path never pays for them).
  uint32_t BodyMod = 0;
  /// Bit j: every read of a0+j is the Rb operand of a non-literal operate
  /// instruction and the register is never overwritten, so a
  /// small-constant actual (0..255) can be folded into the copied body as
  /// a literal, eliding the argument entirely. Subset of UsedArgs.
  uint32_t FoldableArgs = 0;
  bool HasColdCall = false;
};

/// Plans the branching inliner for Anal.Procs[ProcIdx] called with
/// \p NumArgs register arguments. Returns Reject::None and fills \p Plan
/// on success. \p DF must be the data-flow result for \p Anal (used for
/// internal callees' transitive mod sets).
Reject planInline(const om::Unit &Anal, int ProcIdx, unsigned NumArgs,
                  unsigned InlineLimit, const om::DataFlowResult &DF,
                  InlinePlan &Plan);

/// A hoistable guard: the routine opens with a pure predicate over
/// analysis globals (no arguments, no stores, no calls) and one side of
/// its first conditional branch is a trivial return. The site runs just
/// the predicate and skips the whole call sequence on the early-exit
/// side; the slow path re-executes the predicate inside the routine,
/// which is deterministic because nothing runs in between.
struct GuardPlan {
  std::vector<om::InstNode> Pred; ///< Predicate instructions (copies).
  isa::Inst Branch;               ///< The routine's conditional branch.
  /// True: the branch's taken edge is the trivial return (site skips when
  /// taken). False: the fallthrough side returns, so the site branches
  /// with the *inverted* condition to skip.
  bool SkipOnTaken = false;
  uint32_t PredMod = 0; ///< Registers the predicate writes.
};

/// Plans guard hoisting for \p P (typically attempted after planInline
/// rejected). Standard mini-C prologues (frame allocation, ra/parameter
/// spills) are skipped when extracting the predicate, since the site
/// emits neither.
Reject planGuard(const om::Procedure &P, GuardPlan &Plan);

/// The inverted sense of a conditional branch opcode (beq <-> bne, ...).
isa::Opcode invertCondBranch(isa::Opcode Op);

} // namespace probeopt
} // namespace atom

#endif // ATOM_ATOM_PROBEOPT_H
