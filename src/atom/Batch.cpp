//===- atom/Batch.cpp -----------------------------------------------------===//

#include "atom/Batch.h"

#include "obs/Obs.h"
#include "obs/Trace.h"
#include "om/Lift.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace atom;
using namespace atom::obj;

//===----------------------------------------------------------------------===//
// PipelineCache
//===----------------------------------------------------------------------===//

/// Domain-separating seeds so a tool key can never collide with an app
/// key; both lanes of the 128-bit key chain over the same field sequence.
CacheKey atom::toolCacheKey(const Tool &T) {
  CacheKey K{fnv1a(std::string("tool")), mixHash(std::string("tool"))};
  auto Chain = [&K](const std::string &S) {
    K.K0 = fnv1a(S, K.K0);
    K.K1 = mixHash(S, K.K1);
  };
  Chain(T.Name);
  for (const std::string &S : T.AnalysisSources)
    Chain(S);
  Chain("asm");
  for (const std::string &S : T.AnalysisAsmSources)
    Chain(S);
  return K;
}

CacheKey atom::appCacheKey(const Executable &App) {
  std::vector<uint8_t> Bytes = App.serialize();
  return CacheKey{
      fnv1a(Bytes.data(), Bytes.size(), fnv1a(std::string("app"))),
      mixHash(Bytes.data(), Bytes.size(), mixHash(std::string("app")))};
}

void PipelineCache::evictLocked() {
  while (MaxBytes && Stats.Resident > MaxBytes) {
    // Least-recently-used completed entry; in-flight builds (not Ready)
    // are never evicted — their footprint is not yet charged.
    auto Victim = Slots.end();
    for (auto It = Slots.begin(); It != Slots.end(); ++It)
      if (It->second->Ready &&
          (Victim == Slots.end() ||
           It->second->LastUse < Victim->second->LastUse))
        Victim = It;
    if (Victim == Slots.end())
      return;
    Stats.Resident -= Victim->second->Bytes;
    ++Stats.Evictions;
    Slots.erase(Victim); // outstanding UnitPtrs keep the artifact alive
  }
}

PipelineCache::UnitPtr PipelineCache::getOrBuild(
    CacheKey Key,
    const std::function<bool(om::Unit &, DiagEngine &)> &Build) {
  std::shared_ptr<Slot> S;
  {
    std::lock_guard<std::mutex> L(Mu);
    std::shared_ptr<Slot> &P = Slots[Key];
    if (!P)
      P = std::make_shared<Slot>();
    S = P;
  }
  std::lock_guard<std::mutex> SL(S->Mu);
  if (!S->Done) {
    auto Art = std::make_shared<CachedUnit>();
    bool FromTier = Tier && Tier->load(Key, *Art);
    if (!FromTier) {
      DiagEngine D;
      Art->Ok = Build(Art->U, D);
      Art->Diags = D.diags();
      if (Tier)
        Tier->store(Key, *Art);
    }
    S->Art = Art;
    S->Done = true;
    uint64_t Bytes = Art->Ok ? om::unitMemoryBytes(Art->U) : 0;
    std::lock_guard<std::mutex> L(Mu);
    ++Stats.Misses;
    if (FromTier)
      ++Stats.TierHits;
    Stats.Bytes += Bytes;
    Stats.Resident += Bytes;
    S->Bytes = Bytes;
    S->Ready = true;
    S->LastUse = ++UseClock;
    evictLocked();
    return Art;
  }
  std::lock_guard<std::mutex> L(Mu);
  ++Stats.Hits;
  S->LastUse = ++UseClock;
  return S->Art;
}

PipelineCache::UnitPtr PipelineCache::analysisUnit(const Tool &T) {
  return getOrBuild(toolCacheKey(T), [&T](om::Unit &U, DiagEngine &D) {
    std::vector<ObjectModule> Modules;
    if (!compileAnalysisModules(T, Modules, D))
      return false;
    obs::Span S("link-analysis");
    return buildAnalysisUnit(Modules, U, D);
  });
}

PipelineCache::UnitPtr PipelineCache::liftedApp(const Executable &App) {
  return getOrBuild(appCacheKey(App), [&App](om::Unit &U, DiagEngine &D) {
    obs::Span S("lift");
    return om::liftExecutable(App, U, D);
  });
}

CacheStats PipelineCache::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Stats;
}

void PipelineCache::publishStats() {
  obs::Registry &Reg = obs::Registry::global();
  if (!Reg.enabled())
    return;
  std::lock_guard<std::mutex> L(Mu);
  Reg.addCounter("atom.cache-hits", Stats.Hits - Published.Hits);
  Reg.addCounter("atom.cache-misses", Stats.Misses - Published.Misses);
  Reg.addCounter("atom.cache-tier-hits", Stats.TierHits - Published.TierHits);
  Reg.addCounter("atom.cache-evictions",
                 Stats.Evictions - Published.Evictions);
  Reg.addCounter("atom.cache-bytes", Stats.Bytes - Published.Bytes);
  Reg.setGauge("atom.cache-resident-bytes", double(Stats.Resident));
  Published = Stats;
}

//===----------------------------------------------------------------------===//
// runAtomBatch
//===----------------------------------------------------------------------===//

bool atom::runAtomBatch(const std::vector<const Executable *> &Apps,
                        const std::vector<const Tool *> &Tools,
                        const AtomOptions &Opts,
                        std::vector<BatchResult> &Results, DiagEngine &Diags,
                        PipelineCache *Cache) {
  Results.clear();
  Results.resize(Tools.size() * Apps.size());
  if (Results.empty())
    return true;

  obs::Registry &Reg = obs::Registry::global();
  obs::Span Batch("atom-batch");

  PipelineCache Local(Opts.CacheBytes);
  if (Opts.CachePipeline && !Cache)
    Cache = &Local;
  else if (!Opts.CachePipeline)
    Cache = nullptr;

  auto RunOne = [&](size_t Idx) {
    const Tool &T = *Tools[Idx / Apps.size()];
    const Executable &App = *Apps[Idx % Apps.size()];
    BatchResult &R = Results[Idx];
    // Each (tool, app) pair is one traced request: its pipeline spans land
    // in the flight recorder under a fresh trace id, mirroring what the
    // daemon does per connection request.
    obs::TraceScope Scope(obs::TraceContext::mint());
    PipelineReuse Reuse;
    PipelineCache::UnitPtr TA, AA; // keep cached units alive for this run
    if (Cache) {
      // Build (or reuse) the memoized artifacts first so a bad tool or
      // application fails every pairing with identical diagnostics.
      TA = Cache->analysisUnit(T);
      if (!TA->Ok) {
        R.Diags = TA->Diags;
        return;
      }
      AA = Cache->liftedApp(App);
      if (!AA->Ok) {
        R.Diags = AA->Diags;
        return;
      }
      Reuse.AnalysisUnit = &TA->U;
      Reuse.LiftedApp = &AA->U;
    }
    DiagEngine D;
    R.Ok = runAtomPipeline(App, T, Opts, Cache ? &Reuse : nullptr, R.Prog, D);
    R.Diags = D.diags();
  };

  size_t N = Results.size();
  unsigned Jobs = Opts.Jobs ? Opts.Jobs : ThreadPool::defaultConcurrency();
  if (Jobs <= 1 || N == 1) {
    for (size_t I = 0; I < N; ++I)
      RunOne(I);
  } else {
    // Stitch worker span trees in under the batch span, then fan out.
    obs::ThreadSpanAnchor Anchor(Reg);
    ThreadPool Pool(unsigned(std::min<size_t>(Jobs, N)));
    Pool.parallelFor(N, RunOne);
  }

  // Deterministic replay on the calling thread: per-run statistics and
  // failure diagnostics in tool-major order, independent of Jobs.
  bool AllOk = true;
  for (size_t TI = 0; TI < Tools.size(); ++TI)
    for (size_t AI = 0; AI < Apps.size(); ++AI) {
      BatchResult &R = Results[TI * Apps.size() + AI];
      if (R.Ok) {
        publishInstrumentStats(*Tools[TI], R.Prog.Stats);
        continue;
      }
      AllOk = false;
      for (const Diag &D : R.Diags)
        Diags.error(D.Line,
                    formatString("tool '%s', app #%zu: ",
                                 Tools[TI]->Name.c_str(), AI) +
                        D.Message);
    }
  if (Cache)
    Cache->publishStats();
  return AllOk;
}
