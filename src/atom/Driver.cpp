//===- atom/Driver.cpp ----------------------------------------------------===//

#include "atom/Driver.h"

#include "asm/Assembler.h"
#include "link/Linker.h"
#include "mcc/Compiler.h"
#include "obs/Obs.h"
#include "runtime/Runtime.h"

using namespace atom;
using namespace atom::obj;

bool atom::buildApplication(
    const std::vector<std::pair<std::string, std::string>> &Sources,
    Executable &Out, DiagEngine &Diags) {
  std::vector<ObjectModule> Modules;
  for (const auto &[Name, Source] : Sources) {
    ObjectModule M;
    if (!mcc::compile(Source, Name, M, Diags))
      return false;
    Modules.push_back(std::move(M));
  }
  if (!runtime::image().Ok) {
    Diags.error(0, runtime::image().Error);
    return false;
  }
  for (const ObjectModule &M : runtime::modules())
    Modules.push_back(M);
  return link::linkExecutable(Modules, Out, Diags);
}

bool atom::buildApplication(const std::string &Source, Executable &Out,
                            DiagEngine &Diags) {
  return buildApplication({{"app", Source}}, Out, Diags);
}

bool atom::runAtom(const Executable &App, const Tool &T,
                   const AtomOptions &Opts, InstrumentedProgram &Out,
                   DiagEngine &Diags) {
  obs::Span Pipeline("atom");
  std::vector<ObjectModule> AnalysisModules;
  {
    obs::Span S("compile-analysis");
    for (size_t I = 0; I < T.AnalysisSources.size(); ++I) {
      ObjectModule M;
      std::string Name = formatString("%s-anal%zu", T.Name.c_str(), I);
      if (!mcc::compile(T.AnalysisSources[I], Name, M, Diags))
        return false;
      AnalysisModules.push_back(std::move(M));
    }
    for (size_t I = 0; I < T.AnalysisAsmSources.size(); ++I) {
      ObjectModule M;
      std::string Name = formatString("%s-asm%zu", T.Name.c_str(), I);
      if (!assembler::assemble(T.AnalysisAsmSources[I], Name, M, Diags))
        return false;
      AnalysisModules.push_back(std::move(M));
    }
  }
  if (!T.Instrument) {
    Diags.error(0, "tool '" + T.Name + "' has no instrumentation routine");
    return false;
  }
  if (!instrument(App, T.Instrument, AnalysisModules, Opts, Out, Diags))
    return false;

  // Export the run's instrumentation statistics as registry counters so a
  // --metrics-out document carries them next to the phase spans.
  obs::Registry &Reg = obs::Registry::global();
  Reg.addCounter("atom.points", Out.Stats.Points);
  Reg.addCounter("atom.inserted-insts", Out.Stats.InsertedInsts);
  Reg.addCounter("atom.wrappers", Out.Stats.Wrappers);
  Reg.addCounter("atom.patched-procs", Out.Stats.PatchedProcs);
  Reg.addCounter("atom.analysis-procs", Out.Stats.AnalysisProcs);
  Reg.addCounter("atom.stripped-procs", Out.Stats.StrippedProcs);
  Reg.addCounter("atom.save-slots", Out.Stats.SaveSlots);
  return true;
}
