//===- atom/Driver.cpp ----------------------------------------------------===//

#include "atom/Driver.h"

#include "asm/Assembler.h"
#include "link/Linker.h"
#include "mcc/Compiler.h"
#include "obs/Obs.h"
#include "runtime/Runtime.h"

using namespace atom;
using namespace atom::obj;

bool atom::buildApplication(
    const std::vector<std::pair<std::string, std::string>> &Sources,
    Executable &Out, DiagEngine &Diags) {
  std::vector<ObjectModule> Modules;
  for (const auto &[Name, Source] : Sources) {
    ObjectModule M;
    if (!mcc::compile(Source, Name, M, Diags))
      return false;
    Modules.push_back(std::move(M));
  }
  if (!runtime::image().Ok) {
    Diags.error(0, runtime::image().Error);
    return false;
  }
  for (const ObjectModule &M : runtime::modules())
    Modules.push_back(M);
  return link::linkExecutable(Modules, Out, Diags);
}

bool atom::buildApplication(const std::string &Source, Executable &Out,
                            DiagEngine &Diags) {
  return buildApplication({{"app", Source}}, Out, Diags);
}

bool atom::compileAnalysisModules(const Tool &T,
                                  std::vector<ObjectModule> &Out,
                                  DiagEngine &Diags) {
  obs::Span S("compile-analysis");
  for (size_t I = 0; I < T.AnalysisSources.size(); ++I) {
    ObjectModule M;
    std::string Name = formatString("%s-anal%zu", T.Name.c_str(), I);
    if (!mcc::compile(T.AnalysisSources[I], Name, M, Diags))
      return false;
    Out.push_back(std::move(M));
  }
  for (size_t I = 0; I < T.AnalysisAsmSources.size(); ++I) {
    ObjectModule M;
    std::string Name = formatString("%s-asm%zu", T.Name.c_str(), I);
    if (!assembler::assemble(T.AnalysisAsmSources[I], Name, M, Diags))
      return false;
    Out.push_back(std::move(M));
  }
  return true;
}

bool atom::runAtomPipeline(const Executable &App, const Tool &T,
                           const AtomOptions &Opts,
                           const PipelineReuse *Reuse,
                           InstrumentedProgram &Out, DiagEngine &Diags) {
  obs::Span Pipeline("atom");
  std::vector<ObjectModule> AnalysisModules;
  if (!(Reuse && Reuse->AnalysisUnit) &&
      !compileAnalysisModules(T, AnalysisModules, Diags))
    return false;
  if (!T.Instrument) {
    Diags.error(0, "tool '" + T.Name + "' has no instrumentation routine");
    return false;
  }
  return instrument(App, T.Instrument, AnalysisModules, Opts, Out, Diags,
                    Reuse);
}

void atom::publishInstrumentStats(const Tool &T, const InstrStats &S) {
  obs::Registry &Reg = obs::Registry::global();
  if (!Reg.enabled())
    return;
  // Cumulative counters for dashboards; the per-run event keeps each run's
  // values recoverable when several runs share one registry (previously
  // the counters silently summed across runs with no way to split them).
  Reg.addCounter("atom.runs");
  Reg.addCounter("atom.points", S.Points);
  Reg.addCounter("atom.inserted-insts", S.InsertedInsts);
  Reg.addCounter("atom.wrappers", S.Wrappers);
  Reg.addCounter("atom.patched-procs", S.PatchedProcs);
  Reg.addCounter("atom.analysis-procs", S.AnalysisProcs);
  Reg.addCounter("atom.stripped-procs", S.StrippedProcs);
  Reg.addCounter("atom.save-slots", S.SaveSlots);
  Reg.addCounter("atom.probe-inlined-sites", S.ProbeInlinedSites);
  Reg.addCounter("atom.probe-guarded-sites", S.ProbeGuardedSites);
  Reg.addCounter("atom.probe-args-elided", S.ProbeArgsElided);
  Reg.addCounter("atom.probe-consts-folded", S.ProbeConstsFolded);
  for (unsigned R = 1; R < probeopt::NumRejectReasons; ++R)
    if (S.ProbeRejects[R])
      Reg.addCounter(std::string("atom.probe-reject-") +
                         probeopt::rejectName(probeopt::Reject(R)),
                     S.ProbeRejects[R]);
  Reg.emitEvent(obs::Event("instrument-run")
                    .str("tool", T.Name)
                    .num("points", S.Points)
                    .num("inserted-insts", S.InsertedInsts)
                    .num("wrappers", S.Wrappers)
                    .num("patched-procs", S.PatchedProcs)
                    .num("analysis-procs", S.AnalysisProcs)
                    .num("stripped-procs", S.StrippedProcs)
                    .num("save-slots", S.SaveSlots)
                    .num("probe-inlined-sites", S.ProbeInlinedSites)
                    .num("probe-guarded-sites", S.ProbeGuardedSites)
                    .num("probe-args-elided", S.ProbeArgsElided)
                    .num("probe-consts-folded", S.ProbeConstsFolded));
}

bool atom::runAtom(const Executable &App, const Tool &T,
                   const AtomOptions &Opts, InstrumentedProgram &Out,
                   DiagEngine &Diags) {
  if (!runAtomPipeline(App, T, Opts, /*Reuse=*/nullptr, Out, Diags))
    return false;
  publishInstrumentStats(T, Out.Stats);
  return true;
}
