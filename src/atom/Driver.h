//===- atom/Driver.h - End-to-end ATOM pipeline ----------------*- C++ -*-===//
//
// The equivalent of the paper's command line
//     atom prog inst.c anal.c -o prog.atom
// A Tool bundles an instrumentation routine (host code operating on the
// ATOM API) with analysis-routine sources (mini-C, compiled and linked with
// a private copy of the runtime). runAtom() produces the instrumented
// executable, which runs on the simulator like any other executable.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOM_DRIVER_H
#define ATOM_ATOM_DRIVER_H

#include "atom/Engine.h"

namespace atom {

struct Tool {
  std::string Name;
  std::string Description;
  /// The user's instrumentation routine (paper: Instrument(argc, argv)).
  std::function<void(InstrumentationContext &)> Instrument;
  /// Analysis-routine sources in mini-C.
  std::vector<std::string> AnalysisSources;
  /// Optional hand-optimized analysis routines in assembly (hot per-event
  /// handlers; ATOM is language-independent because it works on object
  /// modules).
  std::vector<std::string> AnalysisAsmSources;
};

/// Builds an application executable from mini-C sources, linking the
/// runtime library. Each element of \p Sources is (module name, source).
bool buildApplication(
    const std::vector<std::pair<std::string, std::string>> &Sources,
    obj::Executable &Out, DiagEngine &Diags);

/// Convenience overload for one source module named "app".
bool buildApplication(const std::string &Source, obj::Executable &Out,
                      DiagEngine &Diags);

/// Compiles \p T's analysis routines (mini-C and assembly) into object
/// modules. Depends only on the tool, so the result is memoized by the
/// batch pipeline cache.
bool compileAnalysisModules(const Tool &T,
                            std::vector<obj::ObjectModule> &Out,
                            DiagEngine &Diags);

/// The pipeline body shared by runAtom() and runAtomBatch(): compiles the
/// analysis routines (unless \p Reuse already carries the tool's analysis
/// unit) and instruments \p App. Publishes no metrics and emits no events,
/// so batch workers can run it concurrently and the caller can replay
/// results in a deterministic order.
bool runAtomPipeline(const obj::Executable &App, const Tool &T,
                     const AtomOptions &Opts, const PipelineReuse *Reuse,
                     InstrumentedProgram &Out, DiagEngine &Diags);

/// Publishes one finished run's statistics to the global registry:
/// cumulative atom.* counters, an atom.runs counter, and one
/// "instrument-run" event carrying the per-run values labeled with the
/// tool name (so multiple runs stay distinguishable in --metrics-out).
void publishInstrumentStats(const Tool &T, const InstrStats &S);

/// The full ATOM pipeline: compiles \p T's analysis routines, runs its
/// instrumentation routine over \p App, and produces the instrumented
/// executable.
bool runAtom(const obj::Executable &App, const Tool &T,
             const AtomOptions &Opts, InstrumentedProgram &Out,
             DiagEngine &Diags);

} // namespace atom

#endif // ATOM_ATOM_DRIVER_H
