//===- atom/Driver.h - End-to-end ATOM pipeline ----------------*- C++ -*-===//
//
// The equivalent of the paper's command line
//     atom prog inst.c anal.c -o prog.atom
// A Tool bundles an instrumentation routine (host code operating on the
// ATOM API) with analysis-routine sources (mini-C, compiled and linked with
// a private copy of the runtime). runAtom() produces the instrumented
// executable, which runs on the simulator like any other executable.
//
//===----------------------------------------------------------------------===//

#ifndef ATOM_ATOM_DRIVER_H
#define ATOM_ATOM_DRIVER_H

#include "atom/Engine.h"

namespace atom {

struct Tool {
  std::string Name;
  std::string Description;
  /// The user's instrumentation routine (paper: Instrument(argc, argv)).
  std::function<void(InstrumentationContext &)> Instrument;
  /// Analysis-routine sources in mini-C.
  std::vector<std::string> AnalysisSources;
  /// Optional hand-optimized analysis routines in assembly (hot per-event
  /// handlers; ATOM is language-independent because it works on object
  /// modules).
  std::vector<std::string> AnalysisAsmSources;
};

/// Builds an application executable from mini-C sources, linking the
/// runtime library. Each element of \p Sources is (module name, source).
bool buildApplication(
    const std::vector<std::pair<std::string, std::string>> &Sources,
    obj::Executable &Out, DiagEngine &Diags);

/// Convenience overload for one source module named "app".
bool buildApplication(const std::string &Source, obj::Executable &Out,
                      DiagEngine &Diags);

/// The full ATOM pipeline: compiles \p T's analysis routines, runs its
/// instrumentation routine over \p App, and produces the instrumented
/// executable.
bool runAtom(const obj::Executable &App, const Tool &T,
             const AtomOptions &Opts, InstrumentedProgram &Out,
             DiagEngine &Diags);

} // namespace atom

#endif // ATOM_ATOM_DRIVER_H
