//===- atom/Api.cpp - Traversal, query, and annotation primitives ---------===//

#include "atom/Api.h"

using namespace atom;
using namespace atom::isa;
using om::Action;
using om::InstNode;
using om::Procedure;

InstrumentationContext::InstrumentationContext(om::Unit &App) : App(App) {
  ProcHandles.resize(App.Procs.size());
  BlockHandles.resize(App.Procs.size());
  InstHandles.resize(App.Procs.size());
  for (size_t PI = 0; PI < App.Procs.size(); ++PI) {
    ProcHandles[PI] = {int(PI)};
    const Procedure &P = App.Procs[PI];
    BlockHandles[PI].resize(P.Blocks.size());
    InstHandles[PI].resize(P.Blocks.size());
    for (size_t BI = 0; BI < P.Blocks.size(); ++BI) {
      BlockHandles[PI][BI] = {int(PI), int(BI)};
      InstHandles[PI][BI].resize(P.Blocks[BI].Insts.size());
      for (size_t II = 0; II < P.Blocks[BI].Insts.size(); ++II)
        InstHandles[PI][BI][II] = {int(PI), int(BI), int(II)};
    }
  }
}

//===----------------------------------------------------------------------===//
// Prototypes
//===----------------------------------------------------------------------===//

static std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

bool InstrumentationContext::addCallProto(const std::string &Proto) {
  size_t LP = Proto.find('(');
  size_t RP = Proto.rfind(')');
  if (LP == std::string::npos || RP == std::string::npos || RP < LP)
    return fail("malformed prototype: " + Proto);
  std::string Name = trim(Proto.substr(0, LP));
  if (Name.empty())
    return fail("prototype has no procedure name: " + Proto);
  if (Protos.count(Name))
    return fail("duplicate prototype for '" + Name + "'");

  ProtoInfo Info;
  std::string Inner = Proto.substr(LP + 1, RP - LP - 1);
  size_t Pos = 0;
  while (Pos <= Inner.size() && !trim(Inner).empty()) {
    size_t Comma = Inner.find(',', Pos);
    std::string Tok = trim(Inner.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos));
    if (Tok == "int")
      Info.Params.push_back(ProtoInfo::Int);
    else if (Tok == "long")
      Info.Params.push_back(ProtoInfo::Long);
    else if (Tok == "REGV")
      Info.Params.push_back(ProtoInfo::Regv);
    else if (Tok == "VALUE")
      Info.Params.push_back(ProtoInfo::Value);
    else
      return fail("unknown parameter kind '" + Tok + "' in prototype of '" +
                  Name + "'");
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  if (Info.Params.size() > 16)
    return fail("too many parameters in prototype of '" + Name + "'");
  Protos.emplace(Name, std::move(Info));
  return true;
}

const InstrumentationContext::ProtoInfo *
InstrumentationContext::findProto(const std::string &Name) const {
  auto It = Protos.find(Name);
  return It == Protos.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// Traversal
//===----------------------------------------------------------------------===//

atom::Proc *InstrumentationContext::getFirstProc() {
  return ProcHandles.empty() ? nullptr : &ProcHandles[0];
}

atom::Proc *InstrumentationContext::getNextProc(Proc *P) {
  if (!P || size_t(P->PIdx + 1) >= ProcHandles.size())
    return nullptr;
  return &ProcHandles[size_t(P->PIdx + 1)];
}

atom::Proc *InstrumentationContext::findProc(const std::string &Name) {
  auto It = App.ProcByName.find(Name);
  return It == App.ProcByName.end() ? nullptr
                                    : &ProcHandles[size_t(It->second)];
}

atom::Block *InstrumentationContext::getFirstBlock(Proc *P) {
  if (!P || BlockHandles[size_t(P->PIdx)].empty())
    return nullptr;
  return &BlockHandles[size_t(P->PIdx)][0];
}

atom::Block *InstrumentationContext::getNextBlock(Block *B) {
  if (!B)
    return nullptr;
  auto &Blocks = BlockHandles[size_t(B->PIdx)];
  if (size_t(B->BIdx + 1) >= Blocks.size())
    return nullptr;
  return &Blocks[size_t(B->BIdx + 1)];
}

atom::Inst *InstrumentationContext::getFirstInst(Block *B) {
  if (!B || InstHandles[size_t(B->PIdx)][size_t(B->BIdx)].empty())
    return nullptr;
  return &InstHandles[size_t(B->PIdx)][size_t(B->BIdx)][0];
}

atom::Inst *InstrumentationContext::getNextInst(Inst *I) {
  if (!I)
    return nullptr;
  auto &Insts = InstHandles[size_t(I->PIdx)][size_t(I->BIdx)];
  if (size_t(I->IIdx + 1) >= Insts.size())
    return nullptr;
  return &Insts[size_t(I->IIdx + 1)];
}

atom::Inst *InstrumentationContext::getLastInst(Block *B) {
  if (!B)
    return nullptr;
  auto &Insts = InstHandles[size_t(B->PIdx)][size_t(B->BIdx)];
  return Insts.empty() ? nullptr : &Insts.back();
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

const InstNode &InstrumentationContext::node(const Inst *I) const {
  return App.Procs[size_t(I->PIdx)]
      .Blocks[size_t(I->BIdx)]
      .Insts[size_t(I->IIdx)];
}

bool InstrumentationContext::isInstType(Inst *I, InstType T) const {
  if (!I)
    return false;
  Opcode Op = node(I).I.Op;
  switch (T) {
  case InstType::CondBranch: return isCondBranch(Op);
  case InstType::UncondBranch: return isUncondBranch(Op);
  case InstType::Call: return isCall(Op);
  case InstType::Return: return isReturn(Op);
  case InstType::Jump: return isJump(Op);
  case InstType::Load: return isLoad(Op);
  case InstType::Store: return isStore(Op);
  case InstType::MemRef: return isMemRef(Op);
  case InstType::Syscall: return Op == Opcode::Callsys;
  }
  return false;
}

uint64_t InstrumentationContext::instPC(Inst *I) const {
  return I ? node(I).OrigPC : 0;
}

Opcode InstrumentationContext::instOpcode(Inst *I) const {
  return node(I).I.Op;
}

unsigned InstrumentationContext::instMemSize(Inst *I) const {
  return I ? memAccessSize(node(I).I.Op) : 0;
}

uint32_t InstrumentationContext::instReadRegs(Inst *I) const {
  return I ? readRegs(node(I).I) : 0;
}

uint32_t InstrumentationContext::instWrittenRegs(Inst *I) const {
  return I ? writtenRegs(node(I).I) : 0;
}

std::string InstrumentationContext::procName(Proc *P) const {
  return P ? App.Procs[size_t(P->PIdx)].Name : "";
}

uint64_t InstrumentationContext::procPC(Proc *P) const {
  return P ? App.Procs[size_t(P->PIdx)].OrigStart : 0;
}

uint64_t InstrumentationContext::blockPC(Block *B) const {
  return B ? App.Procs[size_t(B->PIdx)].Blocks[size_t(B->BIdx)].OrigPC : 0;
}

int InstrumentationContext::procCount() const {
  return int(App.Procs.size());
}

int InstrumentationContext::blockCount(Proc *P) const {
  return P ? int(App.Procs[size_t(P->PIdx)].Blocks.size()) : 0;
}

int InstrumentationContext::instCount(Block *B) const {
  return B ? int(App.Procs[size_t(B->PIdx)]
                     .Blocks[size_t(B->BIdx)]
                     .Insts.size())
           : 0;
}

int InstrumentationContext::blockSuccCount(Block *B) const {
  return B ? int(App.Procs[size_t(B->PIdx)]
                     .Blocks[size_t(B->BIdx)]
                     .Succs.size())
           : 0;
}

atom::Block *InstrumentationContext::blockSucc(Block *B, unsigned SuccIdx) {
  if (!B)
    return nullptr;
  const om::Block &Blk =
      App.Procs[size_t(B->PIdx)].Blocks[size_t(B->BIdx)];
  if (SuccIdx >= Blk.Succs.size())
    return nullptr;
  return &BlockHandles[size_t(B->PIdx)][size_t(Blk.Succs[SuccIdx])];
}

int InstrumentationContext::procInstTotal(Proc *P) const {
  return P ? int(App.Procs[size_t(P->PIdx)].instCount()) : 0;
}

atom::Proc *InstrumentationContext::callTargetProc(Inst *I) {
  if (!I)
    return nullptr;
  const InstNode &N = node(I);
  if (N.I.Op != Opcode::Bsr || !N.HasReloc || N.Ref.SymIndex < 0)
    return nullptr;
  return findProc(App.Symbols[size_t(N.Ref.SymIndex)].Name);
}

//===----------------------------------------------------------------------===//
// Annotation
//===----------------------------------------------------------------------===//

void InstrumentationContext::noteReference(const std::string &Callee) {
  for (const std::string &R : Referenced)
    if (R == Callee)
      return;
  Referenced.push_back(Callee);
}

bool InstrumentationContext::makeAction(const std::string &Callee,
                                        const std::vector<Arg> &Args,
                                        om::Action &Out,
                                        const om::InstNode *Site) {
  const ProtoInfo *Proto = findProto(Callee);
  if (!Proto)
    return fail("no prototype for analysis procedure '" + Callee +
                "' (AddCallProto it first)");
  if (Args.size() != Proto->Params.size())
    return fail(formatString(
        "'%s' takes %zu arguments but %zu were supplied", Callee.c_str(),
        Proto->Params.size(), Args.size()));

  Out.Callee = Callee;
  for (size_t I = 0; I < Args.size(); ++I) {
    const om::CallArg &CA = Args[I].raw();
    ProtoInfo::Kind K = Proto->Params[I];
    switch (CA.K) {
    case om::CallArg::ConstI64:
      if (K != ProtoInfo::Int && K != ProtoInfo::Long)
        return fail(formatString("argument %zu of '%s' is a constant but "
                                 "the prototype slot is not int/long",
                                 I + 1, Callee.c_str()));
      break;
    case om::CallArg::Regv:
      if (K != ProtoInfo::Regv)
        return fail(formatString("argument %zu of '%s' is REGV but the "
                                 "prototype slot is not REGV",
                                 I + 1, Callee.c_str()));
      if (CA.Reg >= NumRegs)
        return fail("REGV register out of range");
      break;
    case om::CallArg::EffAddr:
      if (K != ProtoInfo::Value)
        return fail("EffAddrValue requires a VALUE prototype slot");
      if (!Site || !isMemRef(Site->I.Op))
        return fail("EffAddrValue is only valid when instrumenting a load "
                    "or store instruction");
      break;
    case om::CallArg::BrCond:
      if (K != ProtoInfo::Value)
        return fail("BrCondValue requires a VALUE prototype slot");
      if (!Site || !isCondBranch(Site->I.Op))
        return fail("BrCondValue is only valid when instrumenting a "
                    "conditional branch");
      break;
    }
    Out.Args.push_back(CA);
  }
  return true;
}

bool InstrumentationContext::addCallInst(Inst *I, InstPoint Where,
                                         const std::string &Callee,
                                         const std::vector<Arg> &Args) {
  if (!I)
    return fail("addCallInst on null instruction");
  om::InstNode &N = App.Procs[size_t(I->PIdx)]
                        .Blocks[size_t(I->BIdx)]
                        .Insts[size_t(I->IIdx)];
  if (Where == InstPoint::InstAfter && isControlTransfer(N.I.Op) &&
      !isCall(N.I.Op))
    return fail("InstAfter is not supported on branches, jumps, or returns "
                "(add the call to the successor blocks instead)");
  om::Action A;
  if (!makeAction(Callee, Args, A, &N))
    return false;
  (Where == InstPoint::InstBefore ? N.Before : N.After)
      .push_back(std::move(A));
  noteReference(Callee);
  ++Points;
  return true;
}

bool InstrumentationContext::addCallBlock(Block *B, BlockPoint Where,
                                          const std::string &Callee,
                                          const std::vector<Arg> &Args) {
  if (!B)
    return fail("addCallBlock on null block");
  om::Block &Blk = App.Procs[size_t(B->PIdx)].Blocks[size_t(B->BIdx)];
  om::Action A;
  if (!makeAction(Callee, Args, A, nullptr))
    return false;
  (Where == BlockPoint::BlockBefore ? Blk.Before : Blk.After)
      .push_back(std::move(A));
  noteReference(Callee);
  ++Points;
  return true;
}

bool InstrumentationContext::addCallEdge(Block *B, unsigned SuccIdx,
                                         const std::string &Callee,
                                         const std::vector<Arg> &Args) {
  if (!B)
    return fail("addCallEdge on null block");
  om::Block &Blk = App.Procs[size_t(B->PIdx)].Blocks[size_t(B->BIdx)];
  if (SuccIdx >= Blk.Succs.size())
    return fail(formatString(
        "edge successor index %u out of range (block has %zu successors)",
        SuccIdx, Blk.Succs.size()));
  om::Action A;
  if (!makeAction(Callee, Args, A, nullptr))
    return false;
  Blk.EdgeActions.emplace_back(int(SuccIdx), std::move(A));
  noteReference(Callee);
  ++Points;
  return true;
}

bool InstrumentationContext::addCallProc(Proc *P, ProcPoint Where,
                                         const std::string &Callee,
                                         const std::vector<Arg> &Args) {
  if (!P)
    return fail("addCallProc on null procedure");
  om::Procedure &Pr = App.Procs[size_t(P->PIdx)];
  om::Action A;
  if (!makeAction(Callee, Args, A, nullptr))
    return false;
  (Where == ProcPoint::ProcBefore ? Pr.Before : Pr.After)
      .push_back(std::move(A));
  noteReference(Callee);
  ++Points;
  return true;
}

bool InstrumentationContext::addCallProgram(ProgramPoint Where,
                                            const std::string &Callee,
                                            const std::vector<Arg> &Args) {
  om::Action A;
  if (!makeAction(Callee, Args, A, nullptr))
    return false;
  (Where == ProgramPoint::ProgramBefore ? App.ProgramBefore
                                        : App.ProgramAfter)
      .push_back(std::move(A));
  noteReference(Callee);
  ++Points;
  return true;
}
